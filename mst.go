// Package mst is Multiprocessor Smalltalk in Go: a reproduction of
// Pallas & Ungar, "Multiprocessor Smalltalk: A Case Study of a
// Multiprocessor-Based Programming Environment" (PLDI 1988).
//
// The package boots a complete Smalltalk-80-style system — bytecode
// compiler, replicated interpreters, Generation Scavenging object
// memory, Process/Semaphore scheduler, and a kernel class library — on
// a deterministic simulated multiprocessor modelled on the DEC-SRC
// Firefly running the V kernel. All times are virtual; every run is
// reproducible.
//
// Quick start:
//
//	sys, err := mst.NewSystem(mst.DefaultConfig())
//	if err != nil { ... }
//	defer sys.Shutdown()
//	out, err := sys.Evaluate("(1 to: 100) inject: 0 into: [:a :b | a + b]")
//	// out == "5050"
//
// The configuration surface exposes everything the paper evaluates: the
// baseline (BS) versus multiprocessor (MS) system, the processor count,
// and each concurrency strategy alternative — serialized versus
// replicated method caches, free context lists, and allocation areas.
package mst

import (
	"io"

	"mst/internal/core"
	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/interp"
	"mst/internal/trace"
)

// System is a booted Multiprocessor Smalltalk system.
type System = core.System

// Config configures a system: mode, processors, strategy alternatives,
// and object-memory sizing.
type Config = core.Config

// Stats aggregates heap, interpreter, lock, and per-processor
// statistics.
type Stats = core.Stats

// Mode selects baseline BS or Multiprocessor Smalltalk.
type Mode = core.Mode

// Modes.
const (
	ModeMS       = core.ModeMS
	ModeBaseline = core.ModeBaseline
)

// CachePolicy selects the method-cache strategy (paper §3.2).
type CachePolicy = interp.CachePolicy

// Method-cache policies.
const (
	CacheReplicated   = interp.CacheReplicated
	CacheSharedLocked = interp.CacheSharedLocked
)

// FreeCtxPolicy selects the free-context-list strategy (paper §3.2).
type FreeCtxPolicy = interp.FreeCtxPolicy

// Free-context-list policies.
const (
	FreeCtxPerProcessor = interp.FreeCtxPerProcessor
	FreeCtxSharedLocked = interp.FreeCtxSharedLocked
)

// ICPolicy selects the per-send-site inline-cache strategy (an MS+
// extension beyond the paper; off by default for paper fidelity).
type ICPolicy = interp.ICPolicy

// Inline-cache policies.
const (
	ICOff  = interp.ICOff
	ICMono = interp.ICMono
	ICPoly = interp.ICPoly
)

// AllocPolicy selects the allocation strategy (paper §3.1 and §4).
type AllocPolicy = heap.AllocPolicy

// Allocation policies.
const (
	AllocSerialized   = heap.AllocSerialized
	AllocPerProcessor = heap.AllocPerProcessor
)

// Time is virtual time in ticks (1000 ticks per virtual millisecond).
type Time = firefly.Time

// TicksPerMS is the number of virtual ticks in one virtual millisecond.
const TicksPerMS = firefly.TicksPerMS

// Metrics is the unified metrics registry snapshot: every machine,
// lock, heap, and interpreter counter in one versioned struct (see
// System.Metrics).
type Metrics = trace.Metrics

// MetricsSchemaVersion versions the Metrics struct and the msbench
// -json schema built on it.
const MetricsSchemaVersion = trace.MetricsSchemaVersion

// DefaultTraceEvents is the default flight-recorder ring capacity for
// Config.TraceEvents.
const DefaultTraceEvents = trace.DefaultRingSize

// NewSystem boots a system under cfg: a simulated multiprocessor, the
// object memory, one interpreter per processor, and the full kernel
// image filed in from source.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// DefaultConfig is the production MS configuration: five processors
// (the Firefly's complement), replicated method caches and free context
// lists, serialized allocation.
func DefaultConfig() Config { return core.DefaultConfig() }

// BaselineConfig is the paper's reference point: baseline Berkeley
// Smalltalk on the Firefly with no multiprocessor support, one
// processor.
func BaselineConfig() Config { return core.BaselineConfig() }

// MSPlusConfig is MS extended past the paper: polymorphic per-send-site
// inline caches in front of the replicated method caches, and a 2-way
// set-associative method cache.
func MSPlusConfig() Config { return core.MSPlusConfig() }

// LoadImage boots a system from a snapshot written by System.SaveImage
// or by `Smalltalk snapshotTo: 'path'`. Processes on the snapshotted
// ready queue — including the snapshotting Process, per the paper's
// activeProcess protocol — resume when evaluation next drives the
// machine.
func LoadImage(processors int, r io.Reader) (*System, error) {
	return core.LoadImage(processors, r)
}
