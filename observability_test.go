package mst_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mst/internal/bench"
	"mst/internal/core"
	"mst/internal/trace"
)

// End-to-end observability tests: run a real benchmark with the flight
// recorder and profiler attached and check the whole pipeline — event
// stream, Perfetto export, selector profile, metrics registry.

// observedBusySystem boots the ms-busy standard state with both
// observers on and runs one macro benchmark.
func observedBusySystem(t *testing.T) *core.System {
	t.Helper()
	states := bench.StandardStates()
	st := states[len(states)-1] // ms-busy
	base := st.Config
	st.Config = func() core.Config {
		cfg := base()
		cfg.TraceEvents = trace.DefaultRingSize
		cfg.Profile = true
		return cfg
	}
	sys, err := bench.NewBenchSystem(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.RunMacro(sys, "printClassHierarchy"); err != nil {
		sys.Shutdown()
		t.Fatal(err)
	}
	return sys
}

func TestTraceEventOrderingPerTrack(t *testing.T) {
	sys := observedBusySystem(t)
	defer sys.Shutdown()

	events := sys.VM.M.Recorder().Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// Virtual time never runs backwards on any processor's track.
	last := map[int32]int64{}
	kinds := map[trace.Kind]bool{}
	for i, ev := range events {
		kinds[ev.Kind] = true
		if prev, ok := last[ev.Proc]; ok && ev.At < prev {
			t.Fatalf("event %d (%v) on proc %d at t=%d, after t=%d",
				i, ev.Kind, ev.Proc, ev.At, prev)
		}
		last[ev.Proc] = ev.At
	}
	// A busy run must exercise the scheduler, the locks, the sends,
	// and the scavenger. Process switches all happen at spawn time, so
	// they survive in the ring only when nothing was overwritten.
	must := []trace.Kind{trace.KQuantumStart, trace.KQuantumEnd,
		trace.KLockAcquire, trace.KLockRelease, trace.KSend,
		trace.KScavengeBegin, trace.KScavengeEnd}
	if sys.VM.M.Recorder().Dropped() == 0 {
		must = append(must, trace.KProcessSwitch)
	}
	for _, k := range must {
		if !kinds[k] {
			t.Errorf("busy run emitted no %v events", k)
		}
	}
}

func TestPerfettoExportWellFormed(t *testing.T) {
	sys := observedBusySystem(t)
	defer sys.Shutdown()

	var buf bytes.Buffer
	if err := sys.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	numProcs := sys.Metrics().Machine.NumProcs
	procTracks := map[int]bool{}      // tids named on pid 1
	lockTracks := map[int]bool{}      // tids named on pid 2
	gcTracks := map[int]bool{}        // tids named on pid 3
	slicesOn := map[int]bool{}        // pids with at least one complete slice
	counterTracks := map[string]int{} // counter series name -> samples
	for _, ev := range doc.TraceEvents {
		if ev.Name == "thread_name" && ev.Ph == "M" {
			switch ev.Pid {
			case 1:
				procTracks[ev.Tid] = true
			case 2:
				lockTracks[ev.Tid] = true
			case 3:
				gcTracks[ev.Tid] = true
			}
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete slice %q without non-negative dur", ev.Name)
			}
			slicesOn[ev.Pid] = true
		case "C":
			if ev.Args == nil || ev.Args["value"] == nil {
				t.Fatalf("counter event %q without a value", ev.Name)
			}
			counterTracks[ev.Name]++
		case "M", "i":
		default:
			t.Fatalf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}
	// The heap emits occupancy and pause counter samples at every GC
	// boundary; a busy run scavenges, so the tracks must be populated.
	for _, name := range []string{"eden words", "old words", "scavenge pause ticks"} {
		if counterTracks[name] == 0 {
			t.Errorf("no %q counter samples in the export", name)
		}
	}
	for i := 0; i < numProcs; i++ {
		if !procTracks[i] {
			t.Errorf("no named track for processor %d", i)
		}
	}
	if len(lockTracks) == 0 {
		t.Error("no lock tracks")
	}
	if len(gcTracks) == 0 {
		t.Error("no gc track")
	}
	for pid := 1; pid <= 3; pid++ {
		if !slicesOn[pid] {
			t.Errorf("pid %d has no slices", pid)
		}
	}
}

func TestProfilerCoverage(t *testing.T) {
	sys := observedBusySystem(t)
	defer sys.Shutdown()

	sys.VM.ProfilerFlush()
	pf := sys.VM.Profiler()
	if pf == nil {
		t.Fatal("profiler not enabled")
	}
	if cov := pf.Coverage(); cov < 0.95 {
		t.Errorf("profiler attributes %.1f%% of busy time to named selectors, want >= 95%%\n%s",
			cov*100, pf.Report(20))
	}
	rep, err := sys.ProfileReport(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flat%", "cum%", "coverage:"} {
		if !bytes.Contains([]byte(rep), []byte(want)) {
			t.Errorf("profile report missing %q:\n%s", want, rep)
		}
	}
}

// observedJITSystem boots the template tier in its designed
// configuration (MS+, inline caches on) with both observers attached
// and runs two send-heavy macros — enough to cross the compile
// threshold everywhere and retire at least one send site to
// megamorphic, which forces a deopt.
func observedJITSystem(t *testing.T) *core.System {
	t.Helper()
	st := bench.State{
		Name: "ms-plus-jit",
		Config: func() core.Config {
			cfg := core.MSPlusConfig()
			cfg.Processors = 1
			cfg.JIT = true
			cfg.TraceEvents = trace.DefaultRingSize
			cfg.Profile = true
			return cfg
		},
	}
	sys, err := bench.NewBenchSystem(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"printClassHierarchy", "findAllImplementors"} {
		if _, err := bench.RunMacro(sys, w); err != nil {
			sys.Shutdown()
			t.Fatal(err)
		}
	}
	return sys
}

func TestJITObservability(t *testing.T) {
	sys := observedJITSystem(t)
	defer sys.Shutdown()

	// The tier ran: compile and deopt counters moved, and every compile
	// and deopt left a flight-recorder event on the jit track.
	st := sys.Stats().Interp
	if st.JITCompiles == 0 || st.JITBytecodes == 0 {
		t.Fatalf("tier did not run: compiles=%d bytecodes=%d", st.JITCompiles, st.JITBytecodes)
	}
	if st.JITDeopts == 0 {
		t.Fatalf("no deopt: the workload's megamorphic sites should retire at least one compiled method")
	}
	var compiles, deopts int
	for _, ev := range sys.VM.M.Recorder().Events() {
		switch ev.Kind {
		case trace.KJITCompile:
			compiles++
			if ev.Str == "" {
				t.Error("KJITCompile event without a selector")
			}
		case trace.KJITDeopt:
			deopts++
			if ev.Str == "" {
				t.Error("KJITDeopt event without a reason name")
			}
		}
	}
	if compiles == 0 {
		t.Error("no KJITCompile events in the ring")
	}
	if deopts == 0 {
		t.Error("no KJITDeopt events in the ring")
	}

	// The Perfetto export carries them as instants on the jit track
	// (pid 4), which is named.
	var buf bytes.Buffer
	if err := sys.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	jitNamed, jitInstants := false, 0
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 4 {
			continue
		}
		if ev.Ph == "M" && ev.Name == "process_name" || ev.Ph == "M" && ev.Name == "thread_name" {
			jitNamed = true
		}
		if ev.Ph == "i" {
			jitInstants++
		}
	}
	if !jitNamed {
		t.Error("jit track (pid 4) is not named in the Perfetto export")
	}
	if jitInstants == 0 {
		t.Error("no jit instants (compiles/deopts) in the Perfetto export")
	}

	// The profiler attributes time to the compiled tier.
	sys.VM.ProfilerFlush()
	pf := sys.VM.Profiler()
	if pf == nil {
		t.Fatal("profiler not enabled")
	}
	interpreted, compiled := pf.TierBreakdown()
	if compiled == 0 {
		t.Errorf("profiler attributes no time to the compiled tier (interpreted=%d)", interpreted)
	}
	if interpreted == 0 {
		t.Errorf("profiler attributes no time to the interpreted tier (compiled=%d)", compiled)
	}
}

func TestMetricsRegistryMatchesStats(t *testing.T) {
	sys := observedBusySystem(t)
	defer sys.Shutdown()

	m := sys.Metrics()
	st := sys.Stats()

	if m.SchemaVersion != trace.MetricsSchemaVersion {
		t.Errorf("schema version = %d, want %d", m.SchemaVersion, trace.MetricsSchemaVersion)
	}
	if m.Interp.Sends != st.Interp.Sends || m.Interp.Bytecodes != st.Interp.Bytecodes {
		t.Errorf("interp counters diverge: metrics %d/%d, stats %d/%d",
			m.Interp.Sends, m.Interp.Bytecodes, st.Interp.Sends, st.Interp.Bytecodes)
	}
	if m.Heap.Allocations != st.Heap.Allocations || m.Heap.Scavenges != st.Heap.Scavenges {
		t.Errorf("heap counters diverge: metrics %d/%d, stats %d/%d",
			m.Heap.Allocations, m.Heap.Scavenges, st.Heap.Allocations, st.Heap.Scavenges)
	}
	// Lock names flow from Machine.LockStats registration into both
	// views; they must agree name-for-name, in order.
	if len(m.Locks) != len(st.Locks) {
		t.Fatalf("lock count: metrics %d, stats %d", len(m.Locks), len(st.Locks))
	}
	for i := range m.Locks {
		if m.Locks[i].Name != st.Locks[i].Name {
			t.Errorf("lock %d name: metrics %q, stats %q", i, m.Locks[i].Name, st.Locks[i].Name)
		}
		if m.Locks[i].Acquisitions != st.Locks[i].Acquisitions {
			t.Errorf("lock %q acquisitions: metrics %d, stats %d",
				m.Locks[i].Name, m.Locks[i].Acquisitions, st.Locks[i].Acquisitions)
		}
	}
	if m.Machine.VirtualTimeTicks <= 0 ||
		m.Machine.VirtualTimeMS != m.Machine.VirtualTimeTicks/1000 {
		t.Errorf("virtual time: %d ticks / %d ms", m.Machine.VirtualTimeTicks, m.Machine.VirtualTimeMS)
	}
	if len(m.Procs) != m.Machine.NumProcs {
		t.Fatalf("procs: %d entries for %d processors", len(m.Procs), m.Machine.NumProcs)
	}
	for _, p := range m.Procs {
		if p.BusyTicks+p.SpinTicks+p.StallTicks+p.IdleTicks > p.ClockTicks {
			t.Errorf("proc %d accounting exceeds clock: busy=%d spin=%d stall=%d idle=%d clock=%d",
				p.Proc, p.BusyTicks, p.SpinTicks, p.StallTicks, p.IdleTicks, p.ClockTicks)
		}
	}
	if m.Trace.Events == 0 {
		t.Error("trace metrics report no events from an observed run")
	}
}
