// Package jit is the target-independent half of the template-compiled
// execution tier (msjit): it decodes a method's bytecode once, up
// front, into a flat instruction template — operands widened, jump
// targets resolved, uncommon opcodes marked — and pre-specializes the
// per-instruction virtual dispatch cost from the shared firefly cost
// table. The interpreter package turns each templated instruction into
// one pre-bound Go closure ("threaded code"), so the hot loop becomes
// `code[pc]()` with no fetch/decode switch.
//
// The split keeps the abstract semantics decoupled from the execution
// substrate (Marr et al.): everything that affects virtual time lives
// here, flows from *firefly.Costs, and is identical to what the
// interpreter charges — a compiled method is bit-identical in virtual
// time and pays off only in host nanoseconds. The msvet costcharge rule
// enforces that no literal tick constant ever enters this package.
package jit

import (
	"fmt"

	"mst/internal/bytecode"
	"mst/internal/firefly"
)

// CompileThreshold is the invocation count at which a method becomes
// hot. Template compilation is a one-time cost per method — compiled
// bodies capture no heap addresses and persist across scavenges — so
// the threshold is deliberately aggressive: it exists only to keep
// one-shot doit methods interpreted.
const CompileThreshold = 2

// DeoptReason says why compiled code was abandoned mid-method and
// execution fell back to the interpreter at a bytecode boundary.
type DeoptReason uint8

const (
	// DeoptMegamorphic: an inline-cache site of the running method was
	// retired megamorphic; the method is no longer polymorphic-stable.
	DeoptMegamorphic DeoptReason = iota
	// DeoptDecompile: the decompiler/debugger attached to the method.
	DeoptDecompile
	// DeoptSnapshot: the image is being snapshotted; every context must
	// be parked in a pure interpreter state.
	DeoptSnapshot
	// DeoptUncommon: an uncommon bytecode (thisContext) executed; it is
	// compiled as a trap that performs the operation and then bails.
	DeoptUncommon
	// DeoptDNU: the running compiled method hit doesNotUnderstand:.
	DeoptDNU

	numReasons
)

var reasonNames = [numReasons]string{
	"megamorphic", "decompile", "snapshot", "uncommon-bytecode", "dnu",
}

func (r DeoptReason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("DeoptReason(%d)", int(r))
}

// Instr is one decoded bytecode instance. Operands are widened to ints
// and jump targets resolved to absolute pcs, so the execution tier
// never re-reads the code bytes.
type Instr struct {
	PC   int         // pc of the opcode byte
	Op   bytecode.Op // the opcode
	A, B int         // u8 operands (temp/ivar/literal index; nargs, firstArg)
	Next int         // pc of the following instruction
	// Target is the resolved jump target (OpJump*), or the pc just past
	// the block body (OpPushBlock, whose body the block executes later).
	Target int
	// Cost is the virtual dispatch charge for this instruction,
	// pre-resolved from the cost table by Specialize. Zero until then.
	Cost firefly.Time
	// Uncommon marks opcodes the execution tier compiles as deopt traps
	// (thisContext): the trap performs the operation exactly, then
	// abandons compiled code.
	Uncommon bool
}

// Program is the compiled template of one method: its instructions in
// pc order. CodeLen is the bytecode length, so the execution tier can
// size its pc-indexed closure array.
type Program struct {
	Instrs  []Instr
	CodeLen int
	// DispatchCost is the uniform per-bytecode dispatch charge from the
	// cost table (Specialize). The tiers share one cost model, so a
	// compiled bytecode advances the virtual clock exactly as an
	// interpreted one does.
	DispatchCost firefly.Time
}

// Compile decodes code into a Program. It fails — making the method
// ineligible for the compiled tier — on any opcode outside the known
// set, on truncated operands, and on jump targets outside the method:
// such methods stay on the interpreter, which shares the error paths
// with the debugger.
func Compile(code []byte) (*Program, error) {
	p := &Program{CodeLen: len(code)}
	for pc := 0; pc < len(code); {
		op := bytecode.Op(code[pc])
		if op >= bytecode.NumOps {
			return nil, fmt.Errorf("jit: bad opcode %d at pc %d", op, pc)
		}
		opLen := 1 + bytecode.OperandLen(op)
		if pc+opLen > len(code) {
			return nil, fmt.Errorf("jit: truncated operands for %s at pc %d", op.Name(), pc)
		}
		ins := Instr{PC: pc, Op: op, Next: pc + opLen}
		switch op {
		case bytecode.OpPushTemp, bytecode.OpPushInstVar, bytecode.OpPushLiteral,
			bytecode.OpPushGlobal, bytecode.OpStoreTemp, bytecode.OpStoreInstVar,
			bytecode.OpStoreGlobal, bytecode.OpPopTemp, bytecode.OpPopInstVar,
			bytecode.OpPopGlobal:
			ins.A = int(code[pc+1])
		case bytecode.OpPushInt8:
			ins.A = int(int8(code[pc+1]))
		case bytecode.OpJump, bytecode.OpJumpFalse, bytecode.OpJumpTrue:
			off := int(int16(uint16(code[pc+1])<<8 | uint16(code[pc+2])))
			ins.Target = ins.Next + off
			if ins.Target < 0 || ins.Target > len(code) {
				return nil, fmt.Errorf("jit: jump target %d out of range at pc %d", ins.Target, pc)
			}
		case bytecode.OpPushBlock:
			ins.A = int(code[pc+1]) // nargs
			ins.B = int(code[pc+2]) // firstArg
			bodyLen := int(uint16(code[pc+3])<<8 | uint16(code[pc+4]))
			ins.Target = ins.Next + bodyLen // pc just past the block body
			if ins.Target > len(code) {
				return nil, fmt.Errorf("jit: block body runs past end at pc %d", pc)
			}
		case bytecode.OpSend, bytecode.OpSendSuper:
			ins.A = int(code[pc+1]) // selector literal index
			ins.B = int(code[pc+2]) // nargs
		case bytecode.OpPushThisContext:
			// thisContext reifies the interpreter state; compiled as a
			// trap that executes the push and then deoptimizes.
			ins.Uncommon = true
		}
		p.Instrs = append(p.Instrs, ins)
		pc += opLen
	}
	return p, nil
}

// Specialize pre-resolves every instruction's virtual dispatch cost
// from the shared cost table. This is the only place the compiled tier
// derives tick values, and they come exclusively from costs — the
// msvet costcharge rule rejects any literal constant here.
func (p *Program) Specialize(costs *firefly.Costs) {
	p.DispatchCost = costs.Bytecode
	for i := range p.Instrs {
		p.Instrs[i].Cost = costs.Bytecode
	}
}
