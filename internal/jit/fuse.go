package jit

import (
	"mst/internal/bytecode"
	"mst/internal/firefly"
	"mst/internal/object"
)

// Superinstruction fusion: a maximal straight-line group of simple
// bytecodes (stack shuffles, temp/ivar/literal reads, SmallInteger
// arithmetic and comparison fast paths, and one trailing jump, branch,
// or return) is compiled into a single micro-program the execution
// tier runs as one closure. The win is not the dispatch alone: the
// micro-program evaluates the group symbolically in host registers, so
// intermediate operand-stack traffic — push-then-pop heap stores the
// interpreter performs and immediately undoes — never touches the
// heap.
//
// Exactness argument. A group runs under a gate the execution tier
// checks at entry:
//
//   - enough quantum budget remains that none of the group's internal
//     CheckYield safepoints could fire (a CheckYield below the yield
//     deadline is a pure no-op, so skipping it is unobservable, and
//     nothing else — no allocation, no send, no trace emission — can
//     observe the machine mid-group);
//   - the context is in new space (or already in the remembered set),
//     so the elided stack stores could never have inserted a
//     remembered-set entry or charged a store-check;
//   - every runtime proof (operands are SmallIntegers, arithmetic does
//     not overflow, the at: fast path applies, a branch condition is a
//     real Boolean) passes during a pure read-only evaluation phase.
//
// If any condition fails the tier falls back to the head bytecode's
// singleton closure before any state change, so the group is
// failure-atomic. On success the tier charges exactly the bytecodes'
// costs (batched — the partial sums are unobservable without a yield)
// and commits the group's net effect: final temp and ivar stores, the
// surviving stack values, nils where the interpreter's pops would have
// nilled, and the final pc. The committed heap state is bit-identical
// to the interpreter's at the next bytecode boundary.

// MicroKind is one micro-instruction of a fused group's evaluation
// phase. Loads are pure reads; arithmetic bails out of the group (to
// the singleton fallback) unless its SmallInteger proof holds.
type MicroKind uint8

const (
	// MLoadTemp: R[Dst] = temp A (via the home context).
	MLoadTemp MicroKind = iota
	// MLoadStack: R[Dst] = the stack slot A below the group's entry top.
	MLoadStack
	// MLoadIVar: R[Dst] = receiver instance variable A.
	MLoadIVar
	// MLoadLit: R[Dst] = literal frame entry A.
	MLoadLit
	// MLoadGlobal: R[Dst] = value slot of the association at literal A.
	MLoadGlobal
	// MLoadSelf: R[Dst] = the receiver.
	MLoadSelf
	// MConst: R[Dst] = the oop K (a SmallInteger or an immortal
	// constant — nil, true, false — so it is scavenge-stable).
	MConst
	// MArith: R[Dst] = R[A] <Op> R[B]; bails unless both operands are
	// SmallIntegers and the result fits (the specialFast conditions).
	MArith
	// MCompare: R[Dst] = true/false from R[A] <Op> R[B]; bails unless
	// both operands are SmallIntegers.
	MCompare
	// MIdent / MNotIdent: R[Dst] = true/false from oop identity.
	MIdent
	MNotIdent
	// MIsNil / MNotNil: R[Dst] = true/false from a nil test of R[A].
	MIsNil
	MNotNil
	// MNot: R[Dst] = the other Boolean; bails unless R[A] is a Boolean.
	MNot
	// MAt: R[Dst] = R[A] at: R[B] via the indexed-access fast path;
	// bails whenever basicAt would fall back to a real send.
	MAt
)

// Micro is one micro-instruction. A, B, Dst index the group's register
// file (for loads, A is the temp/ivar/literal/stack index instead).
type Micro struct {
	Kind MicroKind
	Op   bytecode.Op // MArith/MCompare: the special-send opcode
	A    uint8
	B    uint8
	Dst  uint8
	K    int64 // MConst: the raw oop bits
}

// FuseTerm is how a fused group transfers control at its end.
type FuseTerm uint8

const (
	// TermFall: fall through to NextPC.
	TermFall FuseTerm = iota
	// TermJump: unconditional jump to Target.
	TermJump
	// TermBranch: branch to Target when R[Cond] is the Boolean Want,
	// else fall through to NextPC.
	TermBranch
	// TermReturn: method return of R[Ret] (the ^-return machinery,
	// including the non-local block case, runs as usual).
	TermReturn
)

// SlotWrite is one committed store: temp or ivar index Slot takes
// R[Reg]. Only the last write per slot survives analysis; reads inside
// the group see pending writes by substitution.
type SlotWrite struct {
	Slot uint8
	Reg  uint8
}

// Fused is one compiled group.
type Fused struct {
	N      int // bytecodes covered, including the head
	NextPC int // pc following the group (fall-through)
	Target int // TermJump/TermBranch destination
	Want   bool
	Cond   uint8
	Ret    uint8
	Term   FuseTerm

	Prog       []Micro     // pure evaluation phase
	TempWrites []SlotWrite // committed temp stores, slot order
	IVarWrites []SlotWrite // committed ivar stores, slot order
	Pops       int         // entry-stack slots the group consumes
	Push       []uint8     // regs materialized above the consumed slots

	// Charge is the batched dispatch cost of bytecodes 1..N-1 (the
	// head's charge is applied by the quantum loop), resolved from the
	// shared cost table via Specialize like every other charge.
	Charge firefly.Time

	// Gain estimates saved work (dispatches plus elided heap stores);
	// the execution tier only installs groups that clear its bar.
	Gain int
}

// Analysis caps: the register file the executor allocates, and bounds
// keeping micro-programs small enough to stay cache-friendly.
const (
	fuseMaxRegs  = 16
	fuseMaxProg  = 24
	fuseMaxDepth = 12
	fuseMaxLen   = 16
)

type fuser struct {
	p      *Program
	f      Fused
	vstack []uint8 // symbolic operand stack (register ids)
	vbuf   [fuseMaxDepth]uint8
	// Pending temp/ivar writes: slot -> reg+1 (0 = none), plus the
	// touched slots in emission order. Arrays, not maps: Fuse runs at
	// every pc of every compiled method, including the recompiles that
	// follow a decompiler detach, so its constant factor shows up.
	temps  [256]int16
	ivars  [256]int16
	ttouch []uint8
	itouch []uint8
	nreg   int
	writes int // heap stores the interpreter would have performed
}

// fsnap checkpoints the analysis before each bytecode, so an op that
// fails mid-translation (register exhaustion after one operand popped)
// rolls back cleanly and the group ends before it.
type fsnap struct {
	prog   int
	vlen   int
	vcopy  [fuseMaxDepth]uint8
	pops   int
	nreg   int
	writes int
}

func (z *fuser) save() fsnap {
	s := fsnap{prog: len(z.f.Prog), vlen: len(z.vstack),
		pops: z.f.Pops, nreg: z.nreg, writes: z.writes}
	copy(s.vcopy[:], z.vstack)
	return s
}

func (z *fuser) restore(s fsnap) {
	z.f.Prog = z.f.Prog[:s.prog]
	z.vstack = append(z.vstack[:0], s.vcopy[:s.vlen]...)
	z.f.Pops = s.pops
	z.nreg = s.nreg
	z.writes = s.writes
}

func (z *fuser) reg() (uint8, bool) {
	if z.nreg >= fuseMaxRegs {
		return 0, false
	}
	r := uint8(z.nreg)
	z.nreg++
	return r, true
}

func (z *fuser) emit(m Micro) { z.f.Prog = append(z.f.Prog, m) }

func (z *fuser) setTemp(slot, r uint8) {
	if z.temps[slot] == 0 {
		z.ttouch = append(z.ttouch, slot)
	}
	z.temps[slot] = int16(r) + 1
	z.writes++
}

func (z *fuser) setIVar(slot, r uint8) {
	if z.ivars[slot] == 0 {
		z.itouch = append(z.itouch, slot)
	}
	z.ivars[slot] = int16(r) + 1
	z.writes++
}

// vpop pops the symbolic stack, loading from the real entry stack when
// the symbolic one underflows (the group then consumes a slot the
// previous bytecodes left behind).
func (z *fuser) vpop() (uint8, bool) {
	if n := len(z.vstack); n > 0 {
		r := z.vstack[n-1]
		z.vstack = z.vstack[:n-1]
		z.writes++ // the interpreter's pop would nil the slot
		return r, true
	}
	r, ok := z.reg()
	if !ok {
		return 0, false
	}
	z.emit(Micro{Kind: MLoadStack, A: uint8(z.f.Pops), Dst: r})
	z.f.Pops++
	z.writes++
	return r, true
}

// vtop reads the symbolic top without popping (dup, storeTemp).
func (z *fuser) vtop() (uint8, bool) {
	if n := len(z.vstack); n > 0 {
		return z.vstack[n-1], true
	}
	// The real top: only valid while nothing symbolic is stacked, and
	// it stays on the real stack (not consumed).
	if z.f.Pops > 0 {
		// Slots below already-consumed ones are not addressable as a
		// live top; give up on the group here.
		return 0, false
	}
	r, ok := z.reg()
	if !ok {
		return 0, false
	}
	z.emit(Micro{Kind: MLoadStack, A: 0, Dst: r})
	return r, true
}

func (z *fuser) vpush(r uint8) bool {
	if len(z.vstack) >= fuseMaxDepth {
		return false
	}
	z.vstack = append(z.vstack, r)
	z.writes++ // the interpreter's push would store the slot
	return true
}

// load emits a pure load micro-op and pushes its register.
func (z *fuser) load(kind MicroKind, a uint8, k int64) bool {
	if kind == MLoadTemp {
		if r := z.temps[a]; r != 0 {
			return z.vpush(uint8(r - 1))
		}
	}
	if kind == MLoadIVar {
		if r := z.ivars[a]; r != 0 {
			return z.vpush(uint8(r - 1))
		}
	}
	r, ok := z.reg()
	if !ok {
		return false
	}
	z.emit(Micro{Kind: kind, A: a, Dst: r, K: k})
	return z.vpush(r)
}

// binary emits a two-operand micro-op over the symbolic stack.
func (z *fuser) binary(kind MicroKind, op bytecode.Op) bool {
	b, ok := z.vpop()
	if !ok {
		return false
	}
	a, ok := z.vpop()
	if !ok {
		return false
	}
	r, ok := z.reg()
	if !ok {
		return false
	}
	z.emit(Micro{Kind: kind, Op: op, A: a, B: b, Dst: r})
	z.writes++ // the interpreter's result push
	return z.vpush(r)
}

func (z *fuser) unary(kind MicroKind) bool {
	a, ok := z.vpop()
	if !ok {
		return false
	}
	r, ok := z.reg()
	if !ok {
		return false
	}
	z.emit(Micro{Kind: kind, A: a, Dst: r})
	z.writes++
	return z.vpush(r)
}

func isFuseArith(op bytecode.Op) bool {
	switch op {
	case bytecode.OpSendAdd, bytecode.OpSendSub, bytecode.OpSendMul,
		bytecode.OpSendIntDiv, bytecode.OpSendMod,
		bytecode.OpSendBitAnd, bytecode.OpSendBitOr, bytecode.OpSendBitXor,
		bytecode.OpSendBitShift:
		return true
	}
	return false
}

func isFuseCompare(op bytecode.Op) bool {
	switch op {
	case bytecode.OpSendLT, bytecode.OpSendGT, bytecode.OpSendLE,
		bytecode.OpSendGE, bytecode.OpSendEq, bytecode.OpSendNE:
		return true
	}
	return false
}

// Fuse analyzes the maximal fusable group starting at instruction
// index start. It returns nil when the group is too short or saves too
// little to be worth a fused closure.
// fuseHead reports whether a group starting at op could be profitable:
// only non-terminal family members qualify (a lone jump or return has
// nothing to fuse with), which lets Fuse return before allocating.
func fuseHead(op bytecode.Op) bool {
	switch op {
	case bytecode.OpPushSelf, bytecode.OpPushNil, bytecode.OpPushTrue,
		bytecode.OpPushFalse, bytecode.OpPushInt8, bytecode.OpPushTemp,
		bytecode.OpPushInstVar, bytecode.OpPushLiteral, bytecode.OpPushGlobal,
		bytecode.OpDup, bytecode.OpPop,
		bytecode.OpStoreTemp, bytecode.OpPopTemp,
		bytecode.OpStoreInstVar, bytecode.OpPopInstVar,
		bytecode.OpSendIdent, bytecode.OpSendNotIdent,
		bytecode.OpSendIsNil, bytecode.OpSendNotNil, bytecode.OpSendNot,
		bytecode.OpSendAt:
		return true
	}
	return isFuseArith(op) || isFuseCompare(op)
}

func Fuse(p *Program, start int) *Fused {
	if p.Instrs[start].Uncommon || !fuseHead(p.Instrs[start].Op) {
		return nil
	}
	z := &fuser{p: p}
	z.vstack = z.vbuf[:0]
	z.f.Prog = make([]Micro, 0, fuseMaxProg)
	i := start
	terminated := false

loop:
	for i < len(p.Instrs) && z.f.N < fuseMaxLen && len(z.f.Prog) < fuseMaxProg {
		ins := &p.Instrs[i]
		if ins.Uncommon {
			break
		}
		snap := z.save()
		ok := false
		switch ins.Op {
		case bytecode.OpPushSelf:
			ok = z.load(MLoadSelf, 0, 0)
		case bytecode.OpPushNil:
			ok = z.load(MConst, 0, int64(object.Nil))
		case bytecode.OpPushTrue:
			ok = z.load(MConst, 0, int64(object.True))
		case bytecode.OpPushFalse:
			ok = z.load(MConst, 0, int64(object.False))
		case bytecode.OpPushInt8:
			ok = z.load(MConst, 0, int64(object.FromInt(int64(ins.A))))
		case bytecode.OpPushTemp:
			ok = z.load(MLoadTemp, uint8(ins.A), 0)
		case bytecode.OpPushInstVar:
			ok = z.load(MLoadIVar, uint8(ins.A), 0)
		case bytecode.OpPushLiteral:
			ok = z.load(MLoadLit, uint8(ins.A), 0)
		case bytecode.OpPushGlobal:
			ok = z.load(MLoadGlobal, uint8(ins.A), 0)
		case bytecode.OpDup:
			var r uint8
			if r, ok = z.vtop(); ok {
				ok = z.vpush(r)
			}
		case bytecode.OpPop:
			_, ok = z.vpop()
		case bytecode.OpStoreTemp:
			var r uint8
			if r, ok = z.vtop(); ok {
				z.setTemp(uint8(ins.A), r)
			}
		case bytecode.OpPopTemp:
			var r uint8
			if r, ok = z.vpop(); ok {
				z.setTemp(uint8(ins.A), r)
			}
		case bytecode.OpStoreInstVar:
			var r uint8
			if r, ok = z.vtop(); ok {
				z.setIVar(uint8(ins.A), r)
			}
		case bytecode.OpPopInstVar:
			var r uint8
			if r, ok = z.vpop(); ok {
				z.setIVar(uint8(ins.A), r)
			}

		case bytecode.OpSendIdent:
			ok = z.binary(MIdent, ins.Op)
		case bytecode.OpSendNotIdent:
			ok = z.binary(MNotIdent, ins.Op)
		case bytecode.OpSendIsNil:
			ok = z.unary(MIsNil)
		case bytecode.OpSendNotNil:
			ok = z.unary(MNotNil)
		case bytecode.OpSendNot:
			ok = z.unary(MNot)
			z.writes-- // the interpreter's not replaces the top in place
		case bytecode.OpSendAt:
			ok = z.binary(MAt, ins.Op)

		case bytecode.OpJump:
			z.f.Term = TermJump
			z.f.Target = ins.Target
			z.f.N++
			z.f.NextPC = ins.Next
			terminated = true
			break loop
		case bytecode.OpJumpFalse, bytecode.OpJumpTrue:
			var r uint8
			if r, ok = z.vpop(); !ok {
				break
			}
			z.f.Term = TermBranch
			z.f.Target = ins.Target
			z.f.Want = ins.Op == bytecode.OpJumpTrue
			z.f.Cond = r
			z.f.N++
			z.f.NextPC = ins.Next
			terminated = true
			break loop
		case bytecode.OpReturnTop:
			var r uint8
			if r, ok = z.vpop(); !ok {
				break
			}
			z.f.Term = TermReturn
			z.f.Ret = r
			z.f.N++
			z.f.NextPC = ins.Next
			terminated = true
			break loop

		default:
			if isFuseArith(ins.Op) {
				ok = z.binary(MArith, ins.Op)
			} else if isFuseCompare(ins.Op) {
				ok = z.binary(MCompare, ins.Op)
			}
		}
		if !ok {
			z.restore(snap)
			break
		}
		z.f.N++
		z.f.NextPC = ins.Next
		i++
	}
	_ = terminated
	if z.f.N < 2 {
		return nil
	}

	// Commit plan: surviving stack values, then final writes in slot
	// order (deterministic; only the last write per slot matters, and
	// in-group reads already saw pending writes by substitution).
	z.f.Push = append(z.f.Push, z.vstack...)
	for _, slot := range z.ttouch {
		z.f.TempWrites = append(z.f.TempWrites, SlotWrite{Slot: slot, Reg: uint8(z.temps[slot] - 1)})
	}
	for _, slot := range z.itouch {
		z.f.IVarWrites = append(z.f.IVarWrites, SlotWrite{Slot: slot, Reg: uint8(z.ivars[slot] - 1)})
	}

	commit := len(z.f.Push) + len(z.f.TempWrites) + len(z.f.IVarWrites)
	if nils := z.f.Pops - len(z.f.Push); nils > 0 {
		commit += nils
	}
	z.f.Charge = firefly.Time(z.f.N-1) * p.DispatchCost
	z.f.Gain = (z.f.N - 1) + z.writes - commit
	if z.f.Gain < 2 {
		return nil
	}
	return &z.f
}
