package jit

import (
	"testing"

	"mst/internal/bytecode"
	"mst/internal/firefly"
)

// assemble builds a small method body covering every operand shape.
func assemble() []byte {
	var a bytecode.Assembler
	a.Emit(bytecode.OpPushSelf)           // pc 0
	a.EmitU8(bytecode.OpPushTemp, 3)      // pc 1
	a.EmitI8(bytecode.OpPushInt8, -7)     // pc 3
	a.Emit(bytecode.OpSendAdd)            // pc 5
	p := a.EmitJump(bytecode.OpJumpFalse) // pc 6
	a.EmitSend(bytecode.OpSend, 2, 1)     // pc 9
	a.PatchJump(p)                        // jumpFalse lands here (pc 12)
	bp := a.EmitPushBlock(1, 0)           // pc 12
	a.Emit(bytecode.OpBlockReturn)        // pc 17 (block body)
	a.PatchBlock(bp)                      // body ends at pc 18
	a.Emit(bytecode.OpPushThisContext)    // pc 18
	a.Emit(bytecode.OpReturnTop)          // pc 19
	return a.Code()
}

func TestCompileDecodesOperandsAndTargets(t *testing.T) {
	code := assemble()
	p, err := Compile(code)
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeLen != len(code) {
		t.Errorf("CodeLen = %d, want %d", p.CodeLen, len(code))
	}
	byPC := map[int]Instr{}
	for _, ins := range p.Instrs {
		byPC[ins.PC] = ins
	}
	if ins := byPC[1]; ins.Op != bytecode.OpPushTemp || ins.A != 3 || ins.Next != 3 {
		t.Errorf("pushTemp decoded as %+v", ins)
	}
	if ins := byPC[3]; ins.Op != bytecode.OpPushInt8 || ins.A != -7 {
		t.Errorf("pushInt8 decoded as %+v", ins)
	}
	if ins := byPC[6]; ins.Op != bytecode.OpJumpFalse || ins.Target != 12 {
		t.Errorf("jumpFalse decoded as %+v (want target 12)", ins)
	}
	if ins := byPC[9]; ins.Op != bytecode.OpSend || ins.A != 2 || ins.B != 1 {
		t.Errorf("send decoded as %+v", ins)
	}
	if ins := byPC[12]; ins.Op != bytecode.OpPushBlock || ins.A != 1 || ins.B != 0 || ins.Target != 18 {
		t.Errorf("pushBlock decoded as %+v (want end pc 18)", ins)
	}
	if ins := byPC[18]; !ins.Uncommon {
		t.Errorf("pushThisContext not marked uncommon: %+v", ins)
	}
	// Instructions tile the code: each Next is the following PC.
	for i := 0; i+1 < len(p.Instrs); i++ {
		if p.Instrs[i].Next != p.Instrs[i+1].PC {
			t.Errorf("instr %d Next=%d but next instr at pc %d",
				i, p.Instrs[i].Next, p.Instrs[i+1].PC)
		}
	}
}

func TestCompileRejectsBadCode(t *testing.T) {
	cases := map[string][]byte{
		"unknown opcode":     {byte(bytecode.NumOps)},
		"truncated operand":  {byte(bytecode.OpPushTemp)},
		"truncated jump":     {byte(bytecode.OpJump), 0},
		"jump out of range":  {byte(bytecode.OpJump), 0x7F, 0xFF},
		"block past the end": {byte(bytecode.OpPushBlock), 0, 0, 0x10, 0x00},
	}
	for name, code := range cases {
		if _, err := Compile(code); err == nil {
			t.Errorf("%s: Compile accepted %v", name, code)
		}
	}
}

func TestSpecializeChargesFromCostTable(t *testing.T) {
	p, err := Compile(assemble())
	if err != nil {
		t.Fatal(err)
	}
	costs := firefly.DefaultCosts()
	p.Specialize(&costs)
	if p.DispatchCost != costs.Bytecode {
		t.Errorf("DispatchCost = %d, want cost-table Bytecode = %d", p.DispatchCost, costs.Bytecode)
	}
	for _, ins := range p.Instrs {
		if ins.Cost != costs.Bytecode {
			t.Errorf("instr at pc %d charges %d, want %d", ins.PC, ins.Cost, costs.Bytecode)
		}
	}
}
