// Package image builds the Multiprocessor Smalltalk virtual image: it
// bootstraps the kernel classes (interp.Genesis), then files in the
// embedded Smalltalk source library using the classic chunk format, the
// same way a Smalltalk-80 image is built from sources. The library
// replaces the ParcPlace VI2.1 image the paper used (see DESIGN.md §3).
package image

import (
	"fmt"
	"strings"

	"mst/internal/compiler"
	"mst/internal/firefly"
	"mst/internal/interp"
	"mst/internal/object"
)

// Chunk-format reader. The format, from Smalltalk-80's sources files:
//
//   - text up to an unescaped '!' is one chunk ("!!" escapes a bang);
//   - a chunk is normally an expression to evaluate;
//   - a '!' immediately preceding a chunk makes that chunk a *reader
//     command*: `Class methodsFor: 'category'` switches to method mode,
//     in which following chunks are method bodies until an empty chunk.
//
// Class-definition expressions (`Super subclass: #Name ...`) are
// interpreted structurally; all other expression chunks are evaluated
// as DoIts.

type chunkReader struct {
	src []rune
	pos int
	// line tracks the 1-based line of pos for error messages.
	line int
}

func newChunkReader(src string) *chunkReader {
	return &chunkReader{src: []rune(src), line: 1}
}

// next returns the next top-level chunk, whether it was introduced by
// '!' (a reader command), and whether a chunk was available at all.
// Inside a method-reading section use nextRaw, where a bang never means
// "command" and a whitespace-only chunk terminates the section.
func (r *chunkReader) next() (chunk string, command bool, ok bool) {
	// Skip whitespace (between top-level chunks only).
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			break
		}
		if c == '\n' {
			r.line++
		}
		r.pos++
	}
	if r.pos >= len(r.src) {
		return "", false, false
	}
	if r.src[r.pos] == '!' {
		command = true
		r.pos++
	}
	chunk, ok = r.nextRaw()
	return chunk, command, ok
}

// nextRaw reads one raw chunk: text up to an unescaped '!' ("!!" is a
// literal bang). A whitespace-only result is the empty chunk that ends
// a method-reading section.
func (r *chunkReader) nextRaw() (string, bool) {
	if r.pos >= len(r.src) {
		return "", false
	}
	var b strings.Builder
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		if c == '\n' {
			r.line++
		}
		if c == '!' {
			if r.pos+1 < len(r.src) && r.src[r.pos+1] == '!' {
				b.WriteRune('!')
				r.pos += 2
				continue
			}
			r.pos++
			return b.String(), true
		}
		b.WriteRune(c)
		r.pos++
	}
	// Trailing text without a bang: a final chunk (or nothing).
	s := b.String()
	if strings.TrimSpace(s) == "" {
		return "", false
	}
	return s, true
}

// FileIn reads Smalltalk source in chunk format into the image. name is
// used in error messages.
func FileIn(vm *interp.VM, name, source string) error {
	r := newChunkReader(source)
	for {
		startLine := r.line
		chunk, command, ok := r.next()
		if !ok {
			return nil
		}
		body := strings.TrimSpace(chunk)
		if body == "" {
			continue
		}
		if command {
			if err := fileInMethods(vm, r, name, body); err != nil {
				return fmt.Errorf("%s:%d: %w", name, startLine, err)
			}
			continue
		}
		if err := fileInExpression(vm, name, startLine, body); err != nil {
			return err
		}
	}
}

// fileInMethods handles `Class methodsFor: 'cat'` followed by method
// chunks up to an empty chunk.
func fileInMethods(vm *interp.VM, r *chunkReader, name, header string) error {
	class, category, err := parseMethodsFor(vm, header)
	if err != nil {
		return err
	}
	for {
		startLine := r.line
		chunk, ok := r.nextRaw()
		if !ok {
			return fmt.Errorf("unterminated methodsFor: %q", header)
		}
		body := strings.TrimSpace(chunk)
		if body == "" {
			return nil
		}
		if err := vm.InstallSource(class, body, category); err != nil {
			return fmt.Errorf("%s:%d: %w", name, startLine, err)
		}
	}
}

// parseMethodsFor interprets `Name methodsFor: 'cat'` and
// `Name class methodsFor: 'cat'`.
func parseMethodsFor(vm *interp.VM, header string) (object.OOP, string, error) {
	node, err := compiler.ParseExpression(header)
	if err != nil {
		return object.Nil, "", fmt.Errorf("bad methodsFor header %q: %v", header, err)
	}
	if len(node.Body) != 1 {
		return object.Nil, "", fmt.Errorf("bad methodsFor header %q", header)
	}
	ret, okRet := node.Body[0].(*compiler.ReturnStmt)
	if !okRet {
		return object.Nil, "", fmt.Errorf("bad methodsFor header %q", header)
	}
	send, okSend := ret.X.(*compiler.SendNode)
	if !okSend || send.Selector != "methodsFor:" || len(send.Args) != 1 {
		return object.Nil, "", fmt.Errorf("expected `Class methodsFor: 'category'`, got %q", header)
	}
	lit, okLit := send.Args[0].(*compiler.LiteralNode)
	if !okLit || lit.Kind != compiler.LitString {
		return object.Nil, "", fmt.Errorf("methodsFor: category must be a string in %q", header)
	}
	category := lit.Str

	meta := false
	recv := send.Receiver
	if inner, okInner := recv.(*compiler.SendNode); okInner && inner.Selector == "class" && len(inner.Args) == 0 {
		meta = true
		recv = inner.Receiver
	}
	v, okVar := recv.(*compiler.VarNode)
	if !okVar {
		return object.Nil, "", fmt.Errorf("bad class reference in %q", header)
	}
	cls := vm.SysDictAt(v.Name)
	if cls == object.Invalid || cls == object.Nil {
		return object.Nil, "", fmt.Errorf("unknown class %q", v.Name)
	}
	if meta {
		cls = vm.H.ClassOf(cls)
	}
	return cls, category, nil
}

// classDefSelectors maps class-definition message selectors to layouts.
var classDefSelectors = map[string]interp.ClassKind{
	"subclass:instanceVariableNames:category:":             interp.KindFixed,
	"variableSubclass:instanceVariableNames:category:":     interp.KindIdxPointers,
	"variableByteSubclass:instanceVariableNames:category:": interp.KindIdxBytes,
	"variableWordSubclass:instanceVariableNames:category:": interp.KindIdxWords,
}

// fileInExpression evaluates one expression chunk: class definitions
// are interpreted structurally, everything else runs as a DoIt.
func fileInExpression(vm *interp.VM, name string, line int, body string) error {
	node, err := compiler.ParseExpression(body)
	if err != nil {
		return fmt.Errorf("%s:%d: %v", name, line, err)
	}
	if send := classDefSend(node); send != nil {
		if err := defineClass(vm, send); err != nil {
			return fmt.Errorf("%s:%d: %w", name, line, err)
		}
		return nil
	}
	if _, err := vm.Evaluate(body); err != nil {
		return fmt.Errorf("%s:%d: %w", name, line, err)
	}
	return nil
}

// classDefSend returns the class-definition send when the parsed chunk
// is exactly one.
func classDefSend(node *compiler.MethodNode) *compiler.SendNode {
	if len(node.Body) != 1 {
		return nil
	}
	ret, ok := node.Body[0].(*compiler.ReturnStmt)
	if !ok {
		return nil
	}
	send, ok := ret.X.(*compiler.SendNode)
	if !ok {
		return nil
	}
	if _, ok := classDefSelectors[send.Selector]; !ok {
		return nil
	}
	return send
}

func defineClass(vm *interp.VM, send *compiler.SendNode) error {
	kind := classDefSelectors[send.Selector]
	superVar, ok := send.Receiver.(*compiler.VarNode)
	if !ok {
		return fmt.Errorf("class definition needs a superclass name")
	}
	super := vm.SysDictAt(superVar.Name)
	if super == object.Invalid || (super == object.Nil && superVar.Name != "nil") {
		return fmt.Errorf("unknown superclass %q", superVar.Name)
	}
	nameLit, ok := send.Args[0].(*compiler.LiteralNode)
	if !ok || nameLit.Kind != compiler.LitSymbol {
		return fmt.Errorf("class name must be a symbol literal")
	}
	ivLit, ok := send.Args[1].(*compiler.LiteralNode)
	if !ok || ivLit.Kind != compiler.LitString {
		return fmt.Errorf("instanceVariableNames: must be a string literal")
	}
	catLit, ok := send.Args[2].(*compiler.LiteralNode)
	if !ok || catLit.Kind != compiler.LitString {
		return fmt.Errorf("category: must be a string literal")
	}
	if existing := vm.SysDictAt(nameLit.Str); existing != object.Invalid && existing != object.Nil {
		return fmt.Errorf("class %q already defined", nameLit.Str)
	}
	return vm.Do(func(p *firefly.Proc) {
		vm.CreateClass(p, nameLit.Str, super, fieldsOf(ivLit.Str), kind, catLit.Str)
	})
}

func fieldsOf(s string) []string {
	return strings.Fields(s)
}
