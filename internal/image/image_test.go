package image

import (
	"strings"
	"testing"

	"mst/internal/heap"
	"mst/internal/interp"
)

func testImage(t *testing.T, nprocs int) *interp.VM {
	t.Helper()
	hcfg := heap.DefaultConfig()
	hcfg.OldWords = 2 << 20
	hcfg.EdenWords = 32 << 10
	hcfg.SurvivorWords = 8 << 10
	vcfg := interp.DefaultConfig()
	vm, err := Boot(nprocs, hcfg, vcfg)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	vm.M.SetTimeLimit(1 << 40)
	t.Cleanup(vm.M.Shutdown)
	return vm
}

// sharedImage boots one image for the read-only print tests.
var sharedVM *interp.VM

func sharedImage(t *testing.T) *interp.VM {
	t.Helper()
	if sharedVM == nil {
		hcfg := heap.DefaultConfig()
		hcfg.OldWords = 2 << 20
		hcfg.EdenWords = 32 << 10
		hcfg.SurvivorWords = 8 << 10
		vm, err := Boot(2, hcfg, interp.DefaultConfig())
		if err != nil {
			t.Fatalf("Boot: %v", err)
		}
		sharedVM = vm
	}
	return sharedVM
}

func wantPrint(t *testing.T, vm *interp.VM, src, want string) {
	t.Helper()
	got, err := EvaluateToString(vm, src)
	if err != nil {
		t.Fatalf("%s: %v (vm errors: %v)", src, err, vm.Errors())
	}
	if got != want {
		t.Errorf("%s = %q, want %q", src, got, want)
	}
}

func TestKernelBoots(t *testing.T) {
	vm := sharedImage(t)
	if len(vm.Errors()) != 0 {
		t.Fatalf("boot errors: %v", vm.Errors())
	}
}

func TestPrintingProtocol(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "42", "42")
	wantPrint(t, vm, "-7", "-7")
	wantPrint(t, vm, "0", "0")
	wantPrint(t, vm, "true", "true")
	wantPrint(t, vm, "nil printString", "'nil'")
	wantPrint(t, vm, "'hi'", "'hi'")
	wantPrint(t, vm, "'it''s'", "'it''s'")
	wantPrint(t, vm, "#foo", "#foo")
	wantPrint(t, vm, "$a", "$a")
	wantPrint(t, vm, "3/4", "0.75")
	wantPrint(t, vm, "255 printString: 16", "'FF'")
	wantPrint(t, vm, "1 -> 2", "1->2")
	wantPrint(t, vm, "Array with: 1 with: 2", "(1 2 )")
	wantPrint(t, vm, "Object new", "an Object")
	wantPrint(t, vm, "Array", "Array")
	wantPrint(t, vm, "(1 to: 3) asArray", "(1 2 3 )")
}

func TestCollectionProtocol(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "((1 to: 10) select: [:i | i even]) asArray", "(2 4 6 8 10 )")
	wantPrint(t, vm, "(1 to: 4) collect: [:i | i * i]", "(1 4 9 16 )")
	wantPrint(t, vm, "(1 to: 100) inject: 0 into: [:a :b | a + b]", "5050")
	wantPrint(t, vm, "#(3 1 2) includes: 2", "true")
	wantPrint(t, vm, "#(3 1 2) detect: [:x | x > 2]", "3")
	wantPrint(t, vm, "#(1 2 3) , #(4 5)", "(1 2 3 4 5 )")
	wantPrint(t, vm, "#(1 2 3) reversed", "(3 2 1 )")
	wantPrint(t, vm, "#(10 20 30) indexOf: 20", "2")
	wantPrint(t, vm, "(#(1 2 3 4 5) copyFrom: 2 to: 4)", "(2 3 4 )")
}

func TestOrderedCollection(t *testing.T) {
	vm := sharedImage(t)
	src := `| oc |
		oc := OrderedCollection new.
		1 to: 20 do: [:i | oc add: i * i].
		oc removeFirst.
		oc addFirst: 0.
		(oc at: 1) + (oc at: 20) + oc size`
	wantPrint(t, vm, src, "420")
	wantPrint(t, vm, "(OrderedCollection new add: 7; yourself) first", "7")
}

func TestDictionary(t *testing.T) {
	vm := sharedImage(t)
	src := `| d |
		d := Dictionary new.
		d at: #one put: 1.
		d at: #two put: 2.
		d at: 'three' put: 3.
		1 to: 30 do: [:i | d at: i put: i * 2].
		(d at: #one) + (d at: 'three') + (d at: 15) + d size`
	wantPrint(t, vm, src, "67")
	wantPrint(t, vm, "Dictionary new at: #x ifAbsent: [99]", "99")
	src2 := `| d |
		d := Dictionary new.
		d at: #k put: 5.
		d removeKey: #k.
		d includesKey: #k`
	wantPrint(t, vm, src2, "false")
}

func TestSetAndIdentityDictionary(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "| s | s := Set new. s add: 1; add: 2; add: 1. s size", "2")
	src := `| d k |
		d := IdentityDictionary new.
		k := 'key' copy.
		d at: k put: 1.
		d at: 'key' ifAbsent: [42]`
	wantPrint(t, vm, src, "42")
}

func TestStrings(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "'hello' asUppercase", "'HELLO'")
	wantPrint(t, vm, "'hello' < 'world'", "true")
	wantPrint(t, vm, "'abc' = 'abc'", "true")
	wantPrint(t, vm, "'abc' = 'abd'", "false")
	wantPrint(t, vm, "'hello world' substrings size", "2")
	wantPrint(t, vm, "('a,b,c' substringsSeparatedBy: $,) size", "3")
	wantPrint(t, vm, "'hello' indexOfSubstring: 'll'", "3")
	wantPrint(t, vm, "'  x  ' trimmed", "'x'")
	wantPrint(t, vm, "'-42' asNumber", "-42")
	wantPrint(t, vm, "'abc' startsWith: 'ab'", "true")
	wantPrint(t, vm, "'abc' endsWith: 'bc'", "true")
	wantPrint(t, vm, "('foo' , 'bar')", "'foobar'")
}

func TestStreams(t *testing.T) {
	vm := sharedImage(t)
	src := `| ws |
		ws := WriteStream on: (String new: 4).
		ws nextPutAll: 'sum='.
		ws print: 6 * 7.
		ws contents`
	wantPrint(t, vm, src, "'sum=42'")
	src2 := `| rs total |
		rs := ReadStream on: #(1 2 3 4).
		total := 0.
		[rs atEnd] whileFalse: [total := total + rs next].
		total`
	wantPrint(t, vm, src2, "10")
	wantPrint(t, vm, "(ReadStream on: 'a bc d') upTo: $ ", "'a'")
}

func TestReflection(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "3 class name", "#SmallInteger")
	wantPrint(t, vm, "3 isKindOf: Magnitude", "true")
	wantPrint(t, vm, "3 isKindOf: Collection", "false")
	wantPrint(t, vm, "3 respondsTo: #printString", "true")
	wantPrint(t, vm, "3 respondsTo: #frobnicate", "false")
	wantPrint(t, vm, "SmallInteger superclass name", "#Number")
	wantPrint(t, vm, "Array instSize", "0")
	wantPrint(t, vm, "(Smalltalk classNamed: 'Array') == Array", "true")
	wantPrint(t, vm, "Smalltalk allClasses size > 20", "true")
	wantPrint(t, vm, "(Array includesSelector: #printOn:) ", "true")
	wantPrint(t, vm, "Object class printString", "'Object class'")
}

func TestBrowsingQueries(t *testing.T) {
	vm := sharedImage(t)
	// find all implementors
	wantPrint(t, vm, "(Smalltalk allImplementorsOf: #printOn:) size > 5", "true")
	wantPrint(t, vm, "(Smalltalk allImplementorsOf: #zorkBlatFroz) size", "0")
	// find all calls
	wantPrint(t, vm, "(Smalltalk allCallsOn: #subclassResponsibility) size > 1", "true")
	// class definition printing
	def, err := EvaluateToString(vm, "Semaphore definitionString")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(def, "LinkedList subclass: #Semaphore") ||
		!strings.Contains(def, "excessSignals") {
		t.Errorf("definitionString = %q", def)
	}
	// hierarchy printing
	hier, err := EvaluateToString(vm, "Collection printHierarchy")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Collection", "SequenceableCollection", "Array", "Dictionary"} {
		if !strings.Contains(hier, want) {
			t.Errorf("hierarchy missing %s:\n%s", want, hier)
		}
	}
}

func TestCompileAndDecompileInImage(t *testing.T) {
	vm := testImage(t, 1)
	src := `Object subclass: 'ImgScratch' instanceVariableNames: '' category: 'Tests'.
		ImgScratch compile: 'double: x ^x * 2' classified: 'arithmetic'.
		ImgScratch new double: 21`
	wantPrint(t, vm, src, "42")
	dis, err := EvaluateToString(vm, "(ImgScratch compiledMethodAt: #double:) decompileString")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dis, "send *") {
		t.Errorf("decompiled = %q", dis)
	}
	wantPrint(t, vm, "(ImgScratch selectorsInCategory: 'arithmetic') size", "1")
	wantPrint(t, vm, "ImgScratch removeSelector: #double:. ImgScratch selectors size", "0")
}

func TestInspector(t *testing.T) {
	vm := sharedImage(t)
	src := `| i |
		i := Inspector on: (1 -> 'two').
		(i fieldNamed: 'key') , '/' , (i fieldNamed: 'value')`
	wantPrint(t, vm, src, "'1/''two'''")
	wantPrint(t, vm, "(Inspector on: #(7 8 9)) fields size", "4")
}

func TestTranscript(t *testing.T) {
	vm := testImage(t, 1)
	if _, err := vm.Evaluate("Transcript show: 'hello'; space; print: 42; cr"); err != nil {
		t.Fatal(err)
	}
	if got := vm.Disp.TranscriptText(); got != "hello 42\n" {
		t.Errorf("transcript = %q", got)
	}
}

func TestProcessesInImage(t *testing.T) {
	vm := testImage(t, 4)
	src := `| sem counter |
		sem := Semaphore new.
		counter := Array with: 0.
		[counter at: 1 put: (counter at: 1) + 100. sem signal] fork.
		[counter at: 1 put: (counter at: 1) + 10. sem signal] fork.
		sem wait. sem wait.
		counter at: 1`
	wantPrint(t, vm, src, "110")
}

func TestDelayInImage(t *testing.T) {
	vm := testImage(t, 1)
	before := vm.Interps[0].Proc().Now()
	if _, err := vm.Evaluate("(Delay forMilliseconds: 3) wait"); err != nil {
		t.Fatal(err)
	}
	if vm.Interps[0].Proc().Now()-before < 3000 {
		t.Error("delay did not advance virtual time")
	}
}

func TestSemaphoreCritical(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "| m | m := Semaphore forMutualExclusion. m critical: [21 * 2]", "42")
}

func TestClassOrganization(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "(Array categories includes: 'printing')", "true")
	wantPrint(t, vm, "Array category", "'Kernel'")
}

func TestFileInErrors(t *testing.T) {
	vm := testImage(t, 1)
	cases := []string{
		"!NoSuchClass methodsFor: 'x'!\nfoo ^1! !",
		"!Object methodsFor 'x'!\nfoo ^1! !",
		"!Object methodsFor: 'x'!\nfoo ^^^! !",
		"Frobnicate subclass: #Zap instanceVariableNames: '' category: 'x'",
	}
	for _, src := range cases {
		if err := FileIn(vm, "bad", src); err == nil {
			t.Errorf("FileIn(%q) succeeded", src)
		}
	}
}

func TestChunkReader(t *testing.T) {
	r := newChunkReader("first chunk!\n!command!\nmethod one!  !\nlast")
	c, cmd, ok := r.next()
	if !ok || cmd || strings.TrimSpace(c) != "first chunk" {
		t.Fatalf("chunk 1 = %q cmd=%v", c, cmd)
	}
	c, cmd, ok = r.next()
	if !ok || !cmd || strings.TrimSpace(c) != "command" {
		t.Fatalf("chunk 2 = %q cmd=%v", c, cmd)
	}
	// Method-mode reading: raw chunks, whitespace-only ends the section.
	c, ok = r.nextRaw()
	if !ok || strings.TrimSpace(c) != "method one" {
		t.Fatalf("chunk 3 = %q", c)
	}
	c, ok = r.nextRaw() // the empty terminator chunk
	if !ok || strings.TrimSpace(c) != "" {
		t.Fatalf("chunk 4 = %q", c)
	}
	c, cmd, ok = r.next()
	if !ok || cmd || strings.TrimSpace(c) != "last" {
		t.Fatalf("chunk 5 = %q", c)
	}
	if _, _, ok = r.next(); ok {
		t.Fatal("extra chunk")
	}
}

func TestBangEscape(t *testing.T) {
	r := newChunkReader("a !! b!")
	c, _, _ := r.next()
	if strings.TrimSpace(c) != "a ! b" {
		t.Fatalf("chunk = %q", c)
	}
}

func TestSorting(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "#(5 3 9 1 7) copy sort", "(1 3 5 7 9 )")
	wantPrint(t, vm, "#(5 3 9 1 7) copy sort: [:a :b | a >= b]", "(9 7 5 3 1 )")
	wantPrint(t, vm, "#() copy sort", "()")
	wantPrint(t, vm, "#(1) copy sort isSorted", "true")
	wantPrint(t, vm, "(#(3 1 2) asSortedArray) isSorted", "true")
	wantPrint(t, vm, "#('pear' 'apple' 'plum') copy sort", "('apple' 'pear' 'plum' )")
	src := `| oc |
		oc := OrderedCollection new.
		9 to: 1 by: -1 do: [:i | oc add: i].
		oc sort asArray`
	wantPrint(t, vm, src, "(1 2 3 4 5 6 7 8 9 )")
}

func TestCollectionArithmetic(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "#(1 2 3 4) sum", "10")
	wantPrint(t, vm, "#(4 9 2) max", "9")
	wantPrint(t, vm, "#(4 9 2) min", "2")
	wantPrint(t, vm, "(1 to: 9) average", "5")
	wantPrint(t, vm, "#(1 2 3) copyWith: 4", "(1 2 3 4 )")
}

func TestBag(t *testing.T) {
	vm := sharedImage(t)
	src := `| b |
		b := Bag new.
		b add: #x; add: #y; add: #x.
		b add: #z withOccurrences: 3.
		Array with: b size with: (b occurrencesOf: #x) with: (b includes: #y) with: (b occurrencesOf: #missing)`
	wantPrint(t, vm, src, "(6 2 true 0 )")
	src2 := `| b |
		b := Bag new.
		b add: #x; add: #x.
		b remove: #x ifAbsent: [nil].
		b occurrencesOf: #x`
	wantPrint(t, vm, src2, "1")
}

func TestDoSeparatedBy(t *testing.T) {
	vm := sharedImage(t)
	src := `| ws |
		ws := WriteStream on: (String new: 8).
		#(1 2 3) do: [:e | ws print: e] separatedBy: [ws nextPutAll: ', '].
		ws contents`
	wantPrint(t, vm, src, "'1, 2, 3'")
}

func TestSharedQueue(t *testing.T) {
	vm := testImage(t, 3)
	src := `| q done sum |
		q := SharedQueue new.
		done := Semaphore new.
		sum := Array with: 0.
		"A consumer Process drains five items, then signals."
		[1 to: 5 do: [:i | sum at: 1 put: (sum at: 1) + q next]. done signal] fork.
		1 to: 5 do: [:i | q nextPut: i * 10].
		done wait.
		sum at: 1`
	wantPrint(t, vm, src, "150")
	wantPrint(t, vm, "SharedQueue new isEmpty", "true")
	wantPrint(t, vm, "| q | q := SharedQueue new. q nextPut: 7. q peek", "7")
	wantPrint(t, vm, "| q | q := SharedQueue new. q nextPut: 1; nextPut: 2. q next. q next", "2")
}

func TestNumberMathematics(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "2 raisedTo: 10", "1024")
	wantPrint(t, vm, "3 raisedTo: 0", "1")
	wantPrint(t, vm, "(2 raisedTo: 40)", "1099511627776")
	wantPrint(t, vm, "(16 sqrt) truncated", "4")
	wantPrint(t, vm, "1000000 sqrtFloor", "1000")
	wantPrint(t, vm, "99 sqrtFloor", "9")
	wantPrint(t, vm, "(7 quo: 2)", "3")
	wantPrint(t, vm, "(-7 quo: 2)", "-3")
	wantPrint(t, vm, "(-7 rem: 2)", "-1")
	wantPrint(t, vm, "(7 rem: -2)", "1")
	wantPrint(t, vm, "4 lcm: 6", "12")
	wantPrint(t, vm, "12 gcd: 18", "6")
	wantPrint(t, vm, "10 factorial", "3628800")
}

func TestThisContext(t *testing.T) {
	vm := testImage(t, 1)
	// EvaluateToString wraps sources in a block, so thisContext here is
	// a BlockContext whose home is the DoIt method context.
	wantPrint(t, vm, "thisContext class name", "#BlockContext")
	wantPrint(t, vm, "thisContext home class name", "#MethodContext")
	wantPrint(t, vm, "thisContext method class name", "#CompiledMethod")
	// Inside a real method, thisContext is the method context itself.
	src := `Object subclass: 'CtxProbe' instanceVariableNames: '' category: 'T'.
		CtxProbe compile: 'probe ^thisContext class name' classified: 'x'.
		CtxProbe new probe`
	wantPrint(t, vm, src, "#MethodContext")
}

func TestClassSideCompilation(t *testing.T) {
	vm := testImage(t, 1)
	src := `Object subclass: 'Widget' instanceVariableNames: 'n' category: 'T'.
		Widget compile: 'setN: x n := x' classified: 'priv'.
		Widget compile: 'n ^n' classified: 'acc'.
		Widget class compile: 'withN: x ^self new setN: x; yourself' classified: 'creation'.
		(Widget withN: 9) n`
	wantPrint(t, vm, src, "9")
}

func TestFloatPrinting(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "3.5", "3.5")
	wantPrint(t, vm, "2.5e2", "250")
	wantPrint(t, vm, "0.125 + 0.125", "0.25")
	wantPrint(t, vm, "(1 / 3) < 0.34", "true")
	wantPrint(t, vm, "3.9 truncated", "3")
	wantPrint(t, vm, "3.9 rounded", "4")
	wantPrint(t, vm, "-1.5 floor", "-2")
	wantPrint(t, vm, "-1.5 ceiling", "-1")
}

func TestCharacterProtocol(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "$a asUppercase", "$A")
	wantPrint(t, vm, "$Z asLowercase", "$z")
	wantPrint(t, vm, "$5 digitValue", "5")
	wantPrint(t, vm, "$a isVowel", "true")
	wantPrint(t, vm, "$  isSeparator", "true")
	wantPrint(t, vm, "$a < $b", "true")
	wantPrint(t, vm, "65 asCharacter", "$A")
	wantPrint(t, vm, "($a value to: $e value) size", "5")
}

func TestWhileTrueOnBlockVariable(t *testing.T) {
	vm := sharedImage(t)
	// The general (non-inlined) whileTrue: — block held in a variable.
	src := `| i cond |
		i := 0.
		cond := [i < 5].
		cond whileTrue: [i := i + 1].
		i`
	wantPrint(t, vm, src, "5")
}

func TestSymbolNumArgs(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "#foo numArgs", "0")
	wantPrint(t, vm, "#at:put: numArgs", "2")
	wantPrint(t, vm, "#+ numArgs", "1")
}

func TestMessageProtocol(t *testing.T) {
	vm := testImage(t, 1)
	// A message captured by a custom doesNotUnderstand: exposes its
	// selector and arguments.
	src := `Object subclass: 'Capture' instanceVariableNames: '' category: 'T'.
		Capture compile: 'doesNotUnderstand: aMessage ^aMessage selector' classified: 'x'.
		Capture new blargh: 1 blergh: 2`
	wantPrint(t, vm, src, "#blargh:blergh:")
}

func TestStreamEdgeCases(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "(ReadStream on: #(1 2 3)) next: 2", "(1 2 )")
	wantPrint(t, vm, "| rs | rs := ReadStream on: #(1 2 3 4). rs skip: 2. rs next", "3")
	wantPrint(t, vm, "| rs | rs := ReadStream on: 'abc'. rs next. rs upToEnd", "'bc'")
	wantPrint(t, vm, "(ReadStream on: #()) atEnd", "true")
	wantPrint(t, vm, "(ReadStream on: #(9)) peek", "9")
	wantPrint(t, vm, "| rs | rs := ReadStream on: #(9). rs next. rs next", "nil")
	wantPrint(t, vm, "(WriteStream on: (String new: 0)) nextPutAll: 'grow me please'; contents", "'grow me please'")
}

func TestCollectionEdgeCases(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "#() isEmpty", "true")
	wantPrint(t, vm, "#(1) notEmpty", "true")
	wantPrint(t, vm, "#(1 2 2 3 2) occurrencesOf: 2", "3")
	wantPrint(t, vm, "(10 to: 1) size", "0")
	wantPrint(t, vm, "(10 to: 1 by: -3) asArray", "(10 7 4 1 )")
	wantPrint(t, vm, "#(1 2 3) detect: [:x | x > 9] ifNone: [-1]", "-1")
	wantPrint(t, vm, "| s | s := 0. #(1 2) with: #(10 20) do: [:a :b | s := s + (a * b)]. s", "50")
	wantPrint(t, vm, "| s | s := WriteStream on: (String new: 4). 'abc' reverseDo: [:c | s nextPut: c]. s contents", "'cba'")
	wantPrint(t, vm, "Dictionary new at: #k ifAbsentPut: [7]; at: #k", "7")
	wantPrint(t, vm, "| b | b := Bag new. b remove: #x ifAbsent: [#none]", "#none")
	wantPrint(t, vm, "#(5 6 7) doWithIndex: [:e :i | nil]. 1", "1")
	wantPrint(t, vm, "(OrderedCollection new addAll: #(1 2 3); yourself) size", "3")
	wantPrint(t, vm, "#(1 2 3) asOrderedCollection removeLast", "3")
}

func TestEqualityAndHashingLaws(t *testing.T) {
	vm := sharedImage(t)
	wantPrint(t, vm, "#(1 2) = #(1 2)", "true")
	wantPrint(t, vm, "#(1 2) = #(1 3)", "false")
	wantPrint(t, vm, "#(1 2) = 'ab'", "false")
	wantPrint(t, vm, "'ab' = #(97 98)", "false")
	wantPrint(t, vm, "('ab' hash) = ('ab' copy hash)", "true")
	wantPrint(t, vm, "3 = 3.0", "true")
	wantPrint(t, vm, "3.0 = 3", "true")
	wantPrint(t, vm, "3 < 3.5", "true")
}
