package image

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/interp"
)

// snapshotMagic identifies MS image files.
const snapshotMagic = "MS-IMAGE-1"

// snapshotFile is the on-disk image: the heap, the VM tables, and the
// VM configuration the image was running under.
type snapshotFile struct {
	Magic  string
	Heap   *heap.SnapshotState
	Tables *interp.VMTables
	VMCfg  interp.Config
}

// WriteSnapshot serializes a quiesced image to w. Callers inside the
// machine (the snapshot primitive) have already parked every Process;
// Go-side callers should use core.System.SaveImage, which quiesces
// first.
func WriteSnapshot(vm *interp.VM, w io.Writer) error {
	f := snapshotFile{
		Magic:  snapshotMagic,
		Heap:   vm.H.SnapshotState(),
		Tables: vm.SnapshotTables(),
		VMCfg:  vm.Cfg,
	}
	return gob.NewEncoder(w).Encode(&f)
}

// ReadSnapshot rebuilds an image from r on a fresh machine with nprocs
// processors. The loaded image's ready queue (background Processes, and
// the snapshotting Process if the snapshot was taken from Smalltalk)
// resumes when the machine runs.
func ReadSnapshot(m *firefly.Machine, r io.Reader) (*interp.VM, error) {
	var f snapshotFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("image: corrupt snapshot: %w", err)
	}
	if f.Magic != snapshotMagic {
		return nil, fmt.Errorf("image: not an MS image (magic %q)", f.Magic)
	}
	h, err := heap.RestoreHeap(m, f.Heap)
	if err != nil {
		return nil, err
	}
	vm, err := interp.RestoreVM(m, h, f.VMCfg, f.Tables)
	if err != nil {
		return nil, err
	}
	installSnapshotPrim(vm)
	return vm, nil
}

// State is an in-memory image snapshot: the same three pieces the
// on-disk format serializes, held as live structures instead of gob
// bytes. One State can seed any number of clones — the multi-tenant
// image server captures the booted base image once and materializes a
// private copy per tenant session (the copy happens at CloneVM; until
// then every tenant shares the single immutable State).
type State struct {
	Heap   *heap.SnapshotState
	Tables *interp.VMTables
	VMCfg  interp.Config
}

// CaptureState snapshots a quiesced image in memory. Callers must have
// parked every Process first (core.System.Checkpoint does); the
// captured slices are private copies, so the running image may continue
// mutating afterwards.
func CaptureState(vm *interp.VM) *State {
	return &State{
		Heap:   vm.H.SnapshotState(),
		Tables: vm.SnapshotTables(),
		VMCfg:  vm.Cfg,
	}
}

// CloneVM materializes an independent VM from a captured State on a
// fresh machine. The State is read-only here: the heap restore and the
// table restore copy every word, so clones of the same State share
// nothing mutable — one clone's stores, scavenges, and full collections
// cannot reach a sibling.
func CloneVM(m *firefly.Machine, s *State) (*interp.VM, error) {
	h, err := heap.RestoreHeap(m, s.Heap)
	if err != nil {
		return nil, err
	}
	vm, err := interp.RestoreVM(m, h, s.VMCfg, s.Tables)
	if err != nil {
		return nil, err
	}
	installSnapshotPrim(vm)
	return vm, nil
}

// installSnapshotPrim hooks primitive 139 up to a file-writing snapshot.
func installSnapshotPrim(vm *interp.VM) {
	vm.SetSnapshotFunc(func(vm *interp.VM, path string) error {
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := WriteSnapshot(vm, out); err != nil {
			return err
		}
		return out.Close()
	})
}
