package image

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyIntegerPrintParseRoundTrip: for any SmallInteger within a
// broad range, `n printString` evaluates back to n, and printing in any
// base re-parses consistently.
func TestPropertyIntegerPrintParseRoundTrip(t *testing.T) {
	vm := sharedImage(t)
	prop := func(raw int32) bool {
		n := int64(raw)
		got, err := EvaluateToString(vm, fmt.Sprintf("%d printString asNumber", n))
		if err != nil {
			t.Logf("%d: %v", n, err)
			return false
		}
		return got == fmt.Sprintf("%d", n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIntegerArithmeticMatchesGo: Smalltalk SmallInteger
// arithmetic agrees with Go for +, -, *, //, \\ (floored division).
func TestPropertyIntegerArithmeticMatchesGo(t *testing.T) {
	vm := sharedImage(t)
	floorDiv := func(a, b int64) int64 {
		q := a / b
		if a%b != 0 && (a < 0) != (b < 0) {
			q--
		}
		return q
	}
	prop := func(ar, br int16) bool {
		a, b := int64(ar), int64(br)
		if b == 0 {
			b = 1
		}
		src := fmt.Sprintf("Array with: %d + %d with: %d - %d with: %d * %d with: (%d // %d) with: (%d \\\\ %d)",
			a, b, a, b, a, b, a, b, a, b)
		got, err := EvaluateToString(vm, src)
		if err != nil {
			t.Logf("%s: %v", src, err)
			return false
		}
		want := fmt.Sprintf("(%d %d %d %d %d )",
			a+b, a-b, a*b, floorDiv(a, b), a-floorDiv(a, b)*b)
		if got != want {
			t.Logf("a=%d b=%d: got %q want %q", a, b, got, want)
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// stRandomWord makes an identifier-safe lowercase token.
func stRandomWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// TestPropertyDictionaryMatchesGoMap: a random sequence of at:put:,
// removeKey:, and lookups on a Smalltalk Dictionary agrees with a Go
// map, including final size.
func TestPropertyDictionaryMatchesGoMap(t *testing.T) {
	vm := sharedImage(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := map[string]int{}
		var ops []string
		keys := make([]string, 4+rng.Intn(5))
		for i := range keys {
			keys[i] = stRandomWord(rng) + fmt.Sprint(i)
		}
		for i := 0; i < 30; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Intn(100)
				model[k] = v
				ops = append(ops, fmt.Sprintf("d at: #%s put: %d.", k, v))
			case 2:
				delete(model, k)
				ops = append(ops, fmt.Sprintf("d removeKey: #%s ifAbsent: [nil].", k))
			}
		}
		// Final check expression: sum of present values plus size.
		sum := 0
		for _, v := range model {
			sum += v
		}
		src := "| d | d := Dictionary new. " + strings.Join(ops, " ") +
			" (d inject: 0 into: [:acc :v | acc + v]) + (d size * 1000)"
		got, err := EvaluateToString(vm, src)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := fmt.Sprint(sum + len(model)*1000)
		if got != want {
			t.Logf("seed %d: got %s want %s", seed, got, want)
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOrderedCollectionMatchesSlice: random add/removeFirst/
// removeLast sequences agree with a Go slice model.
func TestPropertyOrderedCollectionMatchesSlice(t *testing.T) {
	vm := sharedImage(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var model []int
		var ops []string
		for i := 0; i < 40; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Intn(100)
				model = append(model, v)
				ops = append(ops, fmt.Sprintf("oc add: %d.", v))
			case 2:
				if len(model) > 0 {
					model = model[1:]
					ops = append(ops, "oc removeFirst.")
				}
			case 3:
				if len(model) > 0 {
					model = model[:len(model)-1]
					ops = append(ops, "oc removeLast.")
				}
			}
		}
		src := "| oc | oc := OrderedCollection new. " + strings.Join(ops, " ") + " oc asArray"
		got, err := EvaluateToString(vm, src)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var b strings.Builder
		b.WriteString("(")
		for _, v := range model {
			fmt.Fprintf(&b, "%d ", v)
		}
		b.WriteString(")")
		if got != b.String() {
			t.Logf("seed %d: got %s want %s", seed, got, b.String())
		}
		return got == b.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStringRoundTrip: any string over a safe alphabet survives
// printString re-evaluation (with quote doubling).
func TestPropertyStringRoundTrip(t *testing.T) {
	vm := sharedImage(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := "abcXYZ 09_'!?.,"
		n := rng.Intn(20)
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(raw)
		lit := "'" + strings.ReplaceAll(s, "'", "''") + "'"
		// The chunk layer is not involved for Evaluate, but avoid the
		// bang anyway when embedding in this test corpus.
		got, err := EvaluateToString(vm, lit+" size")
		if err != nil {
			t.Logf("%q: %v", s, err)
			return false
		}
		if got != fmt.Sprint(len(s)) {
			return false
		}
		printed, err := EvaluateToString(vm, lit)
		if err != nil {
			return false
		}
		return printed == "'"+strings.ReplaceAll(s, "'", "''")+"'"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySymbolInterning: equal-text symbols are identical objects;
// different texts are not.
func TestPropertySymbolInterning(t *testing.T) {
	vm := sharedImage(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := stRandomWord(rng)
		b := stRandomWord(rng)
		src := fmt.Sprintf("Array with: ('%s' asSymbol == '%s' asSymbol) with: ('%s' asSymbol == '%sx' asSymbol)",
			a, a, b, b)
		got, err := EvaluateToString(vm, src)
		if err != nil {
			return false
		}
		return got == "(true false )"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
