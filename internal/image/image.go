package image

import (
	"embed"
	"fmt"
	"sort"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/interp"
	"mst/internal/object"
)

//go:embed st/*.st
var kernelFS embed.FS

// KernelSources returns the embedded kernel source files in load order.
func KernelSources() []struct{ Name, Source string } {
	entries, err := kernelFS.ReadDir("st")
	if err != nil {
		panic("image: embedded sources missing: " + err.Error())
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	out := make([]struct{ Name, Source string }, 0, len(names))
	for _, n := range names {
		b, err := kernelFS.ReadFile("st/" + n)
		if err != nil {
			panic("image: " + err.Error())
		}
		out = append(out, struct{ Name, Source string }{n, string(b)})
	}
	return out
}

// Boot builds a complete virtual image: a machine with nprocs
// processors, heap, VM, genesis, and the full kernel library filed in.
// Extra sources (benchmarks, applications) are filed in afterwards.
func Boot(nprocs int, hcfg heap.Config, vcfg interp.Config, extraSources ...string) (*interp.VM, error) {
	m := firefly.New(nprocs, firefly.DefaultCosts())
	return BootOn(m, hcfg, vcfg, extraSources...)
}

// BootOn builds the image on an existing machine (so callers can
// configure quantum, time limits, or costs first).
func BootOn(m *firefly.Machine, hcfg heap.Config, vcfg interp.Config, extraSources ...string) (*interp.VM, error) {
	hcfg.LocksEnabled = vcfg.MSMode
	h := heap.New(m, hcfg)
	vm := interp.New(m, h, vcfg)
	vm.Genesis()
	vm.StartInterpreters()
	for _, src := range KernelSources() {
		if err := FileIn(vm, src.Name, src.Source); err != nil {
			return nil, fmt.Errorf("image: kernel file-in: %w", err)
		}
	}
	for i, src := range extraSources {
		if err := FileIn(vm, fmt.Sprintf("extra-%d", i), src); err != nil {
			return nil, fmt.Errorf("image: extra file-in: %w", err)
		}
	}
	installSnapshotPrim(vm)
	return vm, nil
}

// EvaluateToString evaluates source and answers the result's
// printString, using the image's own printing code. The source is
// evaluated inside a block so that it may open with temporary
// declarations and contain multiple statements.
func EvaluateToString(vm *interp.VM, source string) (string, error) {
	res, err := vm.Evaluate("([" + source + "] value) printString")
	if err != nil {
		return "", err
	}
	if res.Value == object.Nil {
		return "nil", nil
	}
	if !res.Value.IsPtr() {
		return vm.DescribeOOP(res.Value), nil
	}
	return vm.GoString(res.Value), nil
}
