package trace

// Latency histograms: deterministic fixed-bucket log-linear histograms
// over virtual-time tick values, HDR-style. Values are bucketed into 16
// linear sub-buckets per power-of-two range, so relative error is
// bounded by 1/16 everywhere while the bucket layout is a pure function
// of the value — two runs that observe the same virtual-time samples
// produce bit-identical bucket counts, which is what lets msbench -gate
// compare them exactly.
//
// Recording uses atomic adds so the same histogram works unchanged in
// the true-parallel host mode (where samples arrive from many
// goroutines); determinism of the *counts* then depends only on the
// determinism of the samples, which holds in the deterministic mode.

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// histSubBits: 16 linear sub-buckets per power-of-two range.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // 16
	// Values 0..15 occupy indices 0..15; every wider value v has
	// bits.Len64(v) in 5..64, giving exponents 0..59 of histSub
	// buckets each.
	histBuckets = histSub + 60*histSub // 976
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(u uint64) int {
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits - 1
	sub := u >> uint(exp) // in [histSub, 2*histSub)
	return exp*histSub + int(sub)
}

// bucketLo returns the smallest value that maps to bucket i.
func bucketLo(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := i/histSub - 1
	sub := i%histSub + histSub
	return int64(sub) << uint(exp)
}

// bucketHi returns the largest value that maps to bucket i.
func bucketHi(i int) int64 {
	if i < histSub-1 {
		return int64(i)
	}
	next := i + 1
	exp := next/histSub - 1
	sub := next%histSub + histSub
	return int64(sub)<<uint(exp) - 1
}

// Histogram is a fixed-bucket log-linear histogram of non-negative
// int64 samples (virtual-time ticks). The zero value is ready to use.
// All methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]uint64
	count  int64
	sum    int64
	max    int64
}

// Record adds one sample. Negative samples are clamped to zero (they
// cannot occur for well-formed virtual durations, but a clamp keeps the
// bucket math total).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.counts[bucketIndex(uint64(v))], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	for {
		old := atomic.LoadInt64(&h.max)
		if v <= old || atomic.CompareAndSwapInt64(&h.max, old, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return atomic.LoadInt64(&h.sum) }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return atomic.LoadInt64(&h.max) }

// Merge adds other's samples into h. Merging is exact: the resulting
// bucket counts equal those of a histogram that recorded both sample
// streams, in any order — merge is associative and commutative.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if n := atomic.LoadUint64(&other.counts[i]); n > 0 {
			atomic.AddUint64(&h.counts[i], n)
		}
	}
	atomic.AddInt64(&h.count, atomic.LoadInt64(&other.count))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&other.sum))
	om := atomic.LoadInt64(&other.max)
	for {
		old := atomic.LoadInt64(&h.max)
		if om <= old || atomic.CompareAndSwapInt64(&h.max, old, om) {
			return
		}
	}
}

// Percentile returns the value at or below which p percent of samples
// fall, reported as the upper edge of the bucket containing that rank
// (capped at Max). p >= 100 returns Max; an empty histogram returns 0.
// The result is a pure function of the bucket counts, so it is as
// deterministic as the samples themselves.
func (h *Histogram) Percentile(p float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if p >= 100 {
		return h.Max()
	}
	if p < 0 {
		p = 0
	}
	rank := int64(p/100*float64(total) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += int64(atomic.LoadUint64(&h.counts[i]))
		if cum >= rank {
			hi := bucketHi(i)
			if m := h.Max(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.Max()
}

// HistBucket is one non-empty bucket in a snapshot: Lo is the bucket's
// inclusive lower edge, N its sample count.
type HistBucket struct {
	Lo int64  `json:"lo"`
	N  uint64 `json:"n"`
}

// HistSnapshot is the exported form of a Histogram: summary statistics,
// derived percentiles, and the sparse bucket vector. Bucket contents
// are exact, so two snapshots of deterministic runs compare equal
// field-for-field.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P95     int64        `json:"p95"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
	}
	for i := range h.counts {
		if n := atomic.LoadUint64(&h.counts[i]); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Lo: bucketLo(i), N: n})
		}
	}
	return s
}

// GCCriticalPath records one parallel scavenge's critical path: which
// worker was the long pole, how long it worked relative to the sum of
// all workers, and how much stealing happened. Efficiency — how close
// the parallel window came to a perfect split — is SumTicks divided by
// Workers times LongPoleTicks.
type GCCriticalPath struct {
	Scavenge      uint64 `json:"scavenge"`  // 1-based scavenge ordinal
	LongPole      int    `json:"long_pole"` // worker (processor) id
	LongPoleTicks int64  `json:"long_pole_ticks"`
	SumTicks      int64  `json:"sum_ticks"`
	Workers       int    `json:"workers"`
	Steals        uint64 `json:"steals"`
}

// Efficiency returns SumTicks/(Workers·LongPoleTicks) in [0,1]: 1.0
// means every worker finished together, 1/Workers means one worker did
// everything.
func (c GCCriticalPath) Efficiency() float64 {
	if c.Workers == 0 || c.LongPoleTicks == 0 {
		return 0
	}
	return float64(c.SumTicks) / (float64(c.Workers) * float64(c.LongPoleTicks))
}

// LatencyHists is the registry of virtual-time latency distributions.
// Attach one to the machine (Machine.SetLatencyHists) before boot;
// instrumented layers record into it through nil-guarded hooks, so a
// detached registry costs one pointer test per site.
type LatencyHists struct {
	ScavengePause  Histogram // full STW pause per scavenge
	ScavRendezvous Histogram // pause share: stopping/synchronizing processors
	ScavCopy       Histogram // pause share: copying survivors
	ScavTerm       Histogram // pause share: termination detection
	FullGCPause    Histogram // full STW pause per full collection
	Dispatch       Histogram // scheduler dispatch latency per quantum
	ConcMarkPause  Histogram // STW window (snapshot or finalize) per concurrent-mark cycle
	ConcMarkSlice  Histogram // ticks per bounded concurrent mark slice

	mu        sync.Mutex
	lockNames []string
	lockHists []*Histogram

	//msvet:stw-safe critical-path accumulator lock: AddCriticalPath is called once at scavenge end while the world is still stopped; bounded append, no nesting
	cpMu      sync.Mutex
	critPaths []GCCriticalPath
}

// NewLatencyHists returns an empty registry.
func NewLatencyHists() *LatencyHists { return &LatencyHists{} }

// LockHist returns the acquire-wait histogram for the named lock,
// creating it on first use. Locks registered under the same name share
// one histogram.
func (l *LatencyHists) LockHist(name string) *Histogram {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, n := range l.lockNames {
		if n == name {
			return l.lockHists[i]
		}
	}
	h := &Histogram{}
	l.lockNames = append(l.lockNames, name)
	l.lockHists = append(l.lockHists, h)
	return h
}

// AddCriticalPath appends one parallel scavenge's critical-path record.
func (l *LatencyHists) AddCriticalPath(c GCCriticalPath) {
	l.cpMu.Lock()
	l.critPaths = append(l.critPaths, c)
	l.cpMu.Unlock()
}

// CriticalPaths returns a copy of the recorded critical paths.
func (l *LatencyHists) CriticalPaths() []GCCriticalPath {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	return append([]GCCriticalPath(nil), l.critPaths...)
}

// LockWaitSnapshot pairs a lock name with its wait distribution.
type LockWaitSnapshot struct {
	Name string       `json:"name"`
	Hist HistSnapshot `json:"hist"`
}

// LatencyMetrics is the metrics-registry section for the latency
// distributions (Metrics.Latency, schema version 3).
type LatencyMetrics struct {
	ScavengePause  HistSnapshot       `json:"scavenge_pause"`
	ScavRendezvous HistSnapshot       `json:"scav_rendezvous"`
	ScavCopy       HistSnapshot       `json:"scav_copy"`
	ScavTerm       HistSnapshot       `json:"scav_term"`
	FullGCPause    HistSnapshot       `json:"full_gc_pause"`
	Dispatch       HistSnapshot       `json:"dispatch"`
	ConcMarkPause  HistSnapshot       `json:"conc_mark_pause"`
	ConcMarkSlice  HistSnapshot       `json:"conc_mark_slice"`
	LockWait       []LockWaitSnapshot `json:"lock_wait,omitempty"`
	CriticalPaths  []GCCriticalPath   `json:"critical_paths,omitempty"`
}

// Snapshot captures every distribution in the registry. Lock-wait
// entries appear in registration order — the same naming authority the
// lock metrics use.
func (l *LatencyHists) Snapshot() *LatencyMetrics {
	m := &LatencyMetrics{
		ScavengePause:  l.ScavengePause.Snapshot(),
		ScavRendezvous: l.ScavRendezvous.Snapshot(),
		ScavCopy:       l.ScavCopy.Snapshot(),
		ScavTerm:       l.ScavTerm.Snapshot(),
		FullGCPause:    l.FullGCPause.Snapshot(),
		Dispatch:       l.Dispatch.Snapshot(),
		ConcMarkPause:  l.ConcMarkPause.Snapshot(),
		ConcMarkSlice:  l.ConcMarkSlice.Snapshot(),
		CriticalPaths:  l.CriticalPaths(),
	}
	l.mu.Lock()
	for i, name := range l.lockNames {
		m.LockWait = append(m.LockWait, LockWaitSnapshot{Name: name, Hist: l.lockHists[i].Snapshot()})
	}
	l.mu.Unlock()
	return m
}

// histLine renders one distribution as a fixed-width report row.
func histLine(name string, s HistSnapshot) string {
	if s.Count == 0 {
		return fmt.Sprintf("  %-16s %8s\n", name, "-")
	}
	mean := float64(s.Sum) / float64(s.Count)
	return fmt.Sprintf("  %-16s %8d %10.1f %8d %8d %8d %8d\n",
		name, s.Count, mean, s.P50, s.P90, s.P99, s.Max)
}

// Report renders the registry as the human-readable section of the
// gcreport rollup: every GC distribution, the dispatch latency, the
// busiest lock waits, and the parallel-scavenge critical paths.
func (l *LatencyHists) Report() string {
	var b strings.Builder
	m := l.Snapshot()
	b.WriteString("latency distributions (virtual ticks)\n")
	fmt.Fprintf(&b, "  %-16s %8s %10s %8s %8s %8s %8s\n",
		"series", "count", "mean", "p50", "p90", "p99", "max")
	b.WriteString(histLine("scavenge.pause", m.ScavengePause))
	b.WriteString(histLine("  rendezvous", m.ScavRendezvous))
	b.WriteString(histLine("  copy", m.ScavCopy))
	b.WriteString(histLine("  termination", m.ScavTerm))
	b.WriteString(histLine("fullgc.pause", m.FullGCPause))
	b.WriteString(histLine("concmark.pause", m.ConcMarkPause))
	b.WriteString(histLine("  slice", m.ConcMarkSlice))
	b.WriteString(histLine("dispatch", m.Dispatch))

	// Lock waits, busiest (by total wait) first.
	waits := append([]LockWaitSnapshot(nil), m.LockWait...)
	sort.SliceStable(waits, func(i, j int) bool { return waits[i].Hist.Sum > waits[j].Hist.Sum })
	shown := 0
	for _, w := range waits {
		if w.Hist.Count == 0 {
			continue
		}
		if shown == 0 {
			b.WriteString("lock acquire-wait (virtual ticks)\n")
		}
		b.WriteString(histLine(w.Name, w.Hist))
		if shown++; shown >= 8 {
			break
		}
	}

	if len(m.CriticalPaths) > 0 {
		b.WriteString("parallel scavenge critical path\n")
		fmt.Fprintf(&b, "  %-9s %9s %10s %10s %8s %7s %6s\n",
			"scavenge", "long-pole", "pole-ticks", "sum-ticks", "workers", "steals", "eff")
		var sumEff float64
		for _, c := range m.CriticalPaths {
			fmt.Fprintf(&b, "  %-9d proc %-4d %10d %10d %8d %7d %5.0f%%\n",
				c.Scavenge, c.LongPole, c.LongPoleTicks, c.SumTicks, c.Workers, c.Steals,
				100*c.Efficiency())
			sumEff += c.Efficiency()
		}
		fmt.Fprintf(&b, "  mean steal efficiency: %.0f%% over %d parallel scavenges\n",
			100*sumEff/float64(len(m.CriticalPaths)), len(m.CriticalPaths))
	}
	return b.String()
}
