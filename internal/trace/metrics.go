package trace

// The unified metrics registry: one typed snapshot of every counter the
// simulator keeps — per-processor time accounting, per-lock contention,
// heap/scavenge activity, and interpreter counters — with derived
// percentages precomputed. Layers fill in their sections with plain
// int64/uint64 values (this package stays dependency-free); the core
// package assembles the whole struct, and every report (msbench -json,
// -contention, mst -stats) reads from it instead of re-collecting
// ad hoc.

// MetricsSchemaVersion versions the Metrics struct and every JSON
// document embedding it. Bump it whenever a field changes meaning or
// is removed; additions alone may keep the version. Version 3 added
// the latency-distribution section and the heap pause fields.
const MetricsSchemaVersion = 3

// MachineMetrics summarizes the virtual machine room: the simulated
// multiprocessor itself.
type MachineMetrics struct {
	NumProcs         int    `json:"num_procs"`
	Switches         uint64 `json:"switches"` // processor quantum dispatches
	VirtualTimeTicks int64  `json:"virtual_time_ticks"`
	VirtualTimeMS    int64  `json:"virtual_time_ms"`
}

// ProcMetrics is one virtual processor's time accounting. The
// percentage fields are fractions of the processor's own clock — the
// per-processor spin/stall shares the contention report quotes.
type ProcMetrics struct {
	Proc       int   `json:"proc"`
	BusyTicks  int64 `json:"busy_ticks"`
	SpinTicks  int64 `json:"spin_ticks"`
	StallTicks int64 `json:"stall_ticks"`
	IdleTicks  int64 `json:"idle_ticks"`
	ClockTicks int64 `json:"clock_ticks"`

	BusyPct  float64 `json:"busy_pct"`
	SpinPct  float64 `json:"spin_pct"`
	StallPct float64 `json:"stall_pct"`
}

// LockMetrics is one registered virtual lock's history. Name is the
// lock's registration name — the single naming authority every report
// shares.
type LockMetrics struct {
	Name          string  `json:"name"`
	Acquisitions  uint64  `json:"acquisitions"`
	Contentions   uint64  `json:"contentions"`
	SpinTicks     int64   `json:"spin_ticks"`
	ContentionPct float64 `json:"contention_pct"` // contended acquires / acquires
}

// HeapMetrics snapshots the object memory counters.
type HeapMetrics struct {
	Allocations       uint64 `json:"allocations"`
	AllocatedWords    uint64 `json:"allocated_words"`
	TLABRefills       uint64 `json:"tlab_refills"`
	Scavenges         uint64 `json:"scavenges"`
	CopiedObjects     uint64 `json:"copied_objects"`
	CopiedWords       uint64 `json:"copied_words"`
	TenuredObjects    uint64 `json:"tenured_objects"`
	TenuredWords      uint64 `json:"tenured_words"`
	StoreChecks       uint64 `json:"store_checks"`
	ParScavenges      uint64 `json:"par_scavenges"`
	ScavengeSteals    uint64 `json:"scavenge_steals"`
	ScavengeTicks     int64  `json:"scavenge_ticks"`
	ScavengeMaxPause  int64  `json:"scavenge_max_pause_ticks"`
	LastSurvivors     uint64 `json:"last_survivors"`
	RememberedPeak    int    `json:"remembered_peak"`
	OldWordsInUse     uint64 `json:"old_words_in_use"`
	EdenWordsInUse    uint64 `json:"eden_words_in_use"`
	FullCollections   uint64 `json:"full_collections"`
	FullGCTicks       int64  `json:"full_gc_ticks"`
	FullGCMaxPause    int64  `json:"full_gc_max_pause_ticks"`
	ReclaimedOldWords uint64 `json:"reclaimed_old_words"`
	ConcMarkCycles    uint64 `json:"conc_mark_cycles"`
	ConcMarkSlices    uint64 `json:"conc_mark_slices"`
	ConcMarkMarked    uint64 `json:"conc_mark_marked_objects"`
	ConcMarkShaded    uint64 `json:"conc_mark_barrier_shades"`
}

// InterpMetrics snapshots the interpreter counters with hit rates
// derived.
type InterpMetrics struct {
	Bytecodes        uint64 `json:"bytecodes"`
	Sends            uint64 `json:"sends"`
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	ICHits           uint64 `json:"ic_hits"`
	ICMisses         uint64 `json:"ic_misses"`
	ICFills          uint64 `json:"ic_fills"`
	ICPolySites      uint64 `json:"ic_poly_sites"`
	ICMegaSites      uint64 `json:"ic_mega_sites"`
	DictProbes       uint64 `json:"dict_probes"`
	DNUs             uint64 `json:"dnus"`
	Primitives       uint64 `json:"primitives"`
	PrimFailures     uint64 `json:"prim_failures"`
	ContextsAlloc    uint64 `json:"contexts_alloc"`
	ContextsRecycled uint64 `json:"contexts_recycled"`
	ProcessSwitches  uint64 `json:"process_switches"`
	SemWaits         uint64 `json:"sem_waits"`
	SemSignals       uint64 `json:"sem_signals"`
	VMErrors         uint64 `json:"vm_errors"`
	JITCompiles      uint64 `json:"jit_compiles"`
	JITDeopts        uint64 `json:"jit_deopts"`
	JITBytecodes     uint64 `json:"jit_bytecodes"`

	CacheHitPct float64 `json:"cache_hit_pct"`
	ICHitPct    float64 `json:"ic_hit_pct"`
}

// TraceMetrics reports on the flight recorder itself.
type TraceMetrics struct {
	Events  uint64 `json:"events"`  // events ever emitted
	Dropped uint64 `json:"dropped"` // overwritten by the ring
}

// Metrics is the unified snapshot of every simulator counter.
type Metrics struct {
	SchemaVersion int            `json:"schema_version"`
	Machine       MachineMetrics `json:"machine"`
	Procs         []ProcMetrics  `json:"procs"`
	Locks         []LockMetrics  `json:"locks"`
	Heap          HeapMetrics    `json:"heap"`
	Interp        InterpMetrics  `json:"interp"`
	Trace         TraceMetrics   `json:"trace"`

	// Latency is present when the latency-histogram registry was
	// attached (Config.Histograms); its distributions are over virtual
	// ticks and deterministic in the deterministic mode.
	Latency *LatencyMetrics `json:"latency,omitempty"`
}

// Derive fills in every percentage/rate field from the raw counters and
// stamps the schema version. Call once after the raw sections are set.
func (m *Metrics) Derive() {
	m.SchemaVersion = MetricsSchemaVersion
	m.Machine.VirtualTimeMS = m.Machine.VirtualTimeTicks / 1000
	for i := range m.Procs {
		p := &m.Procs[i]
		if p.ClockTicks > 0 {
			c := float64(p.ClockTicks)
			p.BusyPct = 100 * float64(p.BusyTicks) / c
			p.SpinPct = 100 * float64(p.SpinTicks) / c
			p.StallPct = 100 * float64(p.StallTicks) / c
		}
	}
	for i := range m.Locks {
		l := &m.Locks[i]
		if l.Acquisitions > 0 {
			l.ContentionPct = 100 * float64(l.Contentions) / float64(l.Acquisitions)
		}
	}
	if probes := m.Interp.CacheHits + m.Interp.CacheMisses; probes > 0 {
		m.Interp.CacheHitPct = 100 * float64(m.Interp.CacheHits) / float64(probes)
	}
	if probes := m.Interp.ICHits + m.Interp.ICMisses; probes > 0 {
		m.Interp.ICHitPct = 100 * float64(m.Interp.ICHits) / float64(probes)
	}
}
