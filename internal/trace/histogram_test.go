package trace

import (
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Values below histSub land in exact unit buckets.
	for v := int64(0); v < histSub; v++ {
		i := bucketIndex(uint64(v))
		if int64(i) != v {
			t.Errorf("bucketIndex(%d) = %d, want exact unit bucket", v, i)
		}
		if bucketLo(i) != v || bucketHi(i) != v {
			t.Errorf("bucket %d spans [%d,%d], want exactly %d", i, bucketLo(i), bucketHi(i), v)
		}
	}
	// Every value falls inside its bucket's [lo,hi] span, and indices
	// never decrease as values grow.
	prev := -1
	for _, v := range []uint64{16, 17, 31, 32, 100, 1000, 4095, 4096, 1 << 20, 1 << 40, 1<<63 - 1} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		if lo, hi := bucketLo(i), bucketHi(i); int64(v) < lo || int64(v) > hi {
			t.Errorf("value %d outside its bucket %d span [%d,%d]", v, i, lo, hi)
		}
		if i < prev {
			t.Errorf("bucketIndex(%d) = %d < previous index %d: not monotonic", v, i, prev)
		}
		prev = i
	}
	// Log-linear resolution: the bucket's relative width stays under
	// 1/histSub (≈6.25% worst case).
	for _, v := range []uint64{100, 999, 12345, 1 << 30} {
		i := bucketIndex(v)
		lo, hi := bucketLo(i), bucketHi(i)
		if width := float64(hi-lo+1) / float64(lo); width > 1.0/float64(histSub)+1e-9 {
			t.Errorf("bucket %d at value %d: relative width %.4f exceeds 1/%d", i, v, width, histSub)
		}
	}
}

func TestHistogramMergeExactAndAssociative(t *testing.T) {
	samples := [][]int64{
		{0, 1, 2, 3, 100, 100, 5000},
		{17, 17, 17, 1 << 30},
		{42, 4096, 9999999},
	}
	build := func(groups ...[]int64) *Histogram {
		h := &Histogram{}
		for _, g := range groups {
			for _, v := range g {
				h.Record(v)
			}
		}
		return h
	}
	all := build(samples...)

	// (a+b)+c == a+(b+c) == recording everything into one histogram.
	ab := build(samples[0], samples[1])
	ab.Merge(build(samples[2]))
	bc := build(samples[1], samples[2])
	a := build(samples[0])
	a.Merge(bc)
	for name, m := range map[string]*Histogram{"(a+b)+c": ab, "a+(b+c)": a} {
		if !reflect.DeepEqual(m.Snapshot(), all.Snapshot()) {
			t.Errorf("%s merge diverges from direct recording:\n%+v\nvs\n%+v",
				name, m.Snapshot(), all.Snapshot())
		}
	}
	wantCount := int64(len(samples[0]) + len(samples[1]) + len(samples[2]))
	if all.Count() != wantCount {
		t.Errorf("count = %d, want %d", all.Count(), wantCount)
	}
	if all.Max() != 1<<30 {
		t.Errorf("max = %d, want %d", all.Max(), 1<<30)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(50) != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", h.Percentile(50))
	}
	// Unit-bucket range: percentiles are exact.
	for v := int64(0); v < 10; v++ {
		h.Record(v)
	}
	for _, tc := range []struct {
		p    float64
		want int64
	}{
		{10, 0}, {50, 4}, {90, 8}, {99, 9}, {100, 9},
	} {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("p%v over 0..9 = %d, want %d", tc.p, got, tc.want)
		}
	}
	// A single large sample: every percentile is the sample itself
	// (capped at Max, not the bucket's upper edge).
	g := &Histogram{}
	g.Record(1000)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := g.Percentile(p); got != 1000 {
			t.Errorf("p%v of single sample 1000 = %d", p, got)
		}
	}
	// Negative samples clamp to zero rather than corrupting buckets.
	n := &Histogram{}
	n.Record(-5)
	if n.Count() != 1 || n.Percentile(50) != 0 {
		t.Errorf("negative sample: count=%d p50=%d, want 1 and 0", n.Count(), n.Percentile(50))
	}
}

func TestHistogramSnapshotDerivedFields(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("snapshot count=%d max=%d", s.Count, s.Max)
	}
	if s.Sum != 5050 {
		t.Errorf("sum = %d, want 5050", s.Sum)
	}
	// Log-linear buckets bound the percentile error at one sub-bucket.
	if s.P50 < 50 || s.P50 > 53 {
		t.Errorf("p50 = %d, want 50..53", s.P50)
	}
	if s.P90 < 90 || s.P90 > 95 {
		t.Errorf("p90 = %d, want 90..95", s.P90)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Errorf("p99 = %d, want 99..100", s.P99)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.N
	}
	if int64(n) != s.Count {
		t.Errorf("bucket populations sum to %d, count is %d", n, s.Count)
	}
}

func TestLatencyHistsLockRegistry(t *testing.T) {
	lh := NewLatencyHists()
	a := lh.LockHist("alloc")
	b := lh.LockHist("scheduler")
	if lh.LockHist("alloc") != a {
		t.Error("same name must return the same histogram")
	}
	a.Record(10)
	a.Record(200)
	b.Record(0)
	m := lh.Snapshot()
	if len(m.LockWait) != 2 {
		t.Fatalf("lock-wait series = %d, want 2", len(m.LockWait))
	}
	if m.LockWait[0].Name != "alloc" || m.LockWait[0].Hist.Count != 2 {
		t.Errorf("alloc series: %+v", m.LockWait[0])
	}
	rep := lh.Report()
	for _, want := range []string{"latency distributions", "alloc", "scheduler"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestAllocProfilerAccounting(t *testing.T) {
	ap := NewAllocProfiler()
	foo := ap.SiteID("Foo>>bar")
	baz := ap.SiteID("Baz>>quux")
	if ap.SiteID("Foo>>bar") != foo {
		t.Error("interning must return a stable id")
	}
	ap.RecordAlloc(foo, 10)
	ap.RecordAlloc(foo, 30)
	ap.RecordAlloc(baz, 60)
	ap.NoteSurvived(foo, 10)
	ap.NoteTenured(baz, 60)
	ap.NoteAge(1, 10)
	ap.NoteAge(5, 60)
	ap.NoteAge(99, 1) // clamps to the top census bin

	if ap.TotalWords() != 100 {
		t.Errorf("total words = %d, want 100", ap.TotalWords())
	}
	if cov := ap.TopCoverage(1); cov < 0.59 || cov > 0.61 {
		t.Errorf("top-1 coverage = %.2f, want 0.60", cov)
	}
	if cov := ap.TopCoverage(10); cov != 1.0 {
		t.Errorf("top-10 coverage = %.2f, want 1.0", cov)
	}
	rep := ap.Report(10)
	for _, want := range []string{"Foo>>bar", "Baz>>quux", "surv%", "ten%", "object demographics"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
