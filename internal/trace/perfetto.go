package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event / Perfetto export. The recorder's virtual-tick
// timestamps map directly onto the format's microsecond `ts` field, so
// a trace loads in ui.perfetto.dev with the virtual-time axis intact.
//
// Track layout:
//
//	pid 1 "virtual processors" — one thread per processor: quantum
//	      slices, lock-hold and lock-spin slices, gc-stall slices,
//	      scavenge slices, and instants for sends, cache misses, etc.
//	pid 2 "locks" — one thread per registered lock: its exclusive hold
//	      intervals across all processors (read-side holds overlap in
//	      virtual time and stay on the processor tracks only).
//	pid 3 "gc" — scavenge and full-collection slices plus eden-full and
//	      tenure instants, and counter tracks for heap occupancy and the
//	      pause series (phase "C").
//	pid 4 "jit" — template-tier compile and deopt instants, one thread
//	      per compiling processor (declared lazily, so traces from runs
//	      with the tier off are unchanged).
//	pid 5 "serve" — one thread per tenant session: request slices from
//	      pickup to response (named by request kind, with executor and
//	      latency args) and admission-rejection instants (declared
//	      lazily, so non-server traces are unchanged).
//
// The ring buffer may have overwritten the oldest events, so pairing is
// tolerant: an end with no matching begin is dropped, and a begin with
// no end is closed at the last recorded timestamp.

const (
	pidProcs = 1
	pidLocks = 2
	pidGC    = 3
	pidJIT   = 4
	pidServe = 5
)

type pfEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type pfTrace struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

type openSlice struct {
	name string
	ts   int64
}

// pfBuilder accumulates trace-event JSON objects.
type pfBuilder struct {
	out []pfEvent
}

func (b *pfBuilder) meta(pid int, name string) {
	b.out = append(b.out, pfEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

func (b *pfBuilder) thread(pid, tid int, name string) {
	b.out = append(b.out, pfEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

func (b *pfBuilder) slice(pid, tid int, name string, ts, dur int64, args map[string]any) {
	if dur < 0 {
		dur = 0
	}
	d := dur
	b.out = append(b.out, pfEvent{Name: name, Ph: "X", Ts: ts, Dur: &d,
		Pid: pid, Tid: tid, Args: args})
}

func (b *pfBuilder) instant(pid, tid int, name string, ts int64, args map[string]any) {
	b.out = append(b.out, pfEvent{Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid,
		Scope: "t", Args: args})
}

// counter emits one sample on a Perfetto counter track (phase "C"):
// tracks with the same name form a stepped series over time.
func (b *pfBuilder) counter(pid int, name string, ts, value int64) {
	b.out = append(b.out, pfEvent{Name: name, Ph: "C", Ts: ts, Pid: pid,
		Args: map[string]any{"value": value}})
}

// procTrack pairs begin/end events on one processor's thread with a
// name-matched stack; mismatches from ring truncation are dropped.
type procTrack struct {
	b    *pfBuilder
	tid  int
	open []openSlice
}

func (t *procTrack) begin(name string, ts int64) {
	t.open = append(t.open, openSlice{name: name, ts: ts})
}

func (t *procTrack) end(name string, ts int64) {
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i].name == name {
			// Anything opened above the match was orphaned by ring
			// truncation; close it here too.
			for j := len(t.open) - 1; j >= i; j-- {
				s := t.open[j]
				t.b.slice(pidProcs, t.tid, s.name, s.ts, ts-s.ts, nil)
			}
			t.open = t.open[:i]
			return
		}
	}
	// End with no begin: the begin fell off the ring; drop it.
}

func (t *procTrack) closeAll(ts int64) {
	for j := len(t.open) - 1; j >= 0; j-- {
		s := t.open[j]
		t.b.slice(pidProcs, t.tid, s.name, s.ts, ts-s.ts, nil)
	}
	t.open = nil
}

// WritePerfetto exports events (oldest first, as returned by
// Recorder.Events) as Chrome trace-event JSON loadable in
// ui.perfetto.dev. numProcs fixes the processor-track count so empty
// processors still get a named track.
func WritePerfetto(w io.Writer, events []Event, numProcs int) error {
	b := &pfBuilder{}
	b.meta(pidProcs, "virtual processors")
	b.meta(pidLocks, "locks")
	b.meta(pidGC, "gc")
	for i := 0; i < numProcs; i++ {
		b.thread(pidProcs, i, "cpu "+itoa(i))
	}
	b.thread(pidGC, 0, "collector")

	var maxTs int64
	for i := range events {
		if events[i].At > maxTs {
			maxTs = events[i].At
		}
	}

	tracks := make([]*procTrack, numProcs)
	for i := range tracks {
		tracks[i] = &procTrack{b: b, tid: i}
	}
	track := func(proc int32) *procTrack {
		if int(proc) < len(tracks) {
			return tracks[proc]
		}
		return nil
	}

	// Lock tracks: exclusive holds per lock, in ring order (which is
	// virtual-time order per lock: an acquire can only follow the
	// release that freed the lock).
	lockTids := map[string]int{}
	lockOpen := map[string]int64{} // name -> hold start ts, -1 when free
	lockTid := func(name string) int {
		tid, ok := lockTids[name]
		if !ok {
			tid = len(lockTids)
			lockTids[name] = tid
			b.thread(pidLocks, tid, name)
			lockOpen[name] = -1
		}
		return tid
	}

	// GC track: scavenge and full-gc slices (stop-the-world, so they
	// never overlap themselves; a full gc contains its eden-emptying
	// scavenge, which nests).
	gcOpen := map[Kind]int64{KScavengeBegin: -1, KFullGCBegin: -1}

	// Parallel-scavenge worker tracks nest under the gc process, one
	// thread per worker (tid = 1 + worker, the collector keeps tid 0).
	// Threads are declared lazily so serial traces stay unchanged.
	scavWorkerSeen := map[int32]bool{}
	scavWorkerOpen := map[int32]int64{}
	scavWorkerTid := func(worker int32) int {
		if !scavWorkerSeen[worker] {
			scavWorkerSeen[worker] = true
			b.thread(pidGC, 1+int(worker), "scavenge worker "+itoa(int(worker)))
		}
		return 1 + int(worker)
	}

	// Image-server tracks: one thread per tenant, declared lazily like
	// the template-tier tracks. A request opens at KServeStart and
	// closes at the tenant's next KServeDone — a tenant's requests never
	// overlap (one conflict class runs one request at a time), so the
	// pairing needs no stack.
	serveSeen := map[int64]bool{}
	serveMeta := false
	serveOpen := map[int64]openSlice{}
	serveTid := func(tenant int64) int {
		if !serveMeta {
			serveMeta = true
			b.meta(pidServe, "serve")
		}
		if !serveSeen[tenant] {
			serveSeen[tenant] = true
			b.thread(pidServe, int(tenant), "tenant "+itoa(int(tenant)))
		}
		return int(tenant)
	}

	// Template-tier tracks: compile/deopt instants per processor,
	// declared lazily like the scavenge workers.
	jitSeen := map[int32]bool{}
	jitMeta := false
	jitTid := func(proc int32) int {
		if !jitMeta {
			jitMeta = true
			b.meta(pidJIT, "jit")
		}
		if !jitSeen[proc] {
			jitSeen[proc] = true
			b.thread(pidJIT, int(proc), "cpu "+itoa(int(proc)))
		}
		return int(proc)
	}

	for i := range events {
		e := &events[i]
		pt := track(e.Proc)
		switch e.Kind {
		case KQuantumStart:
			if pt != nil {
				pt.begin("quantum", e.At)
			}
		case KQuantumEnd:
			if pt != nil {
				pt.end("quantum", e.At)
			}
		case KHandoff:
			if pt != nil {
				b.instant(pidProcs, pt.tid, "handoff", e.At, map[string]any{"to": e.Arg1})
			}
		case KLockAcquire:
			if pt != nil {
				pt.begin("hold "+e.Str, e.At)
			}
			if e.Arg2 == 1 {
				tid := lockTid(e.Str)
				if prev := lockOpen[e.Str]; prev >= 0 {
					// Release lost to ring truncation: close at this
					// acquire so holds stay disjoint.
					b.slice(pidLocks, tid, "held", prev, e.At-prev, nil)
				}
				lockOpen[e.Str] = e.At
			}
		case KLockRelease:
			if pt != nil {
				pt.end("hold "+e.Str, e.At)
			}
			if e.Arg2 == 1 {
				tid := lockTid(e.Str)
				if start := lockOpen[e.Str]; start >= 0 {
					b.slice(pidLocks, tid, "held", start, e.At-start,
						map[string]any{"proc": e.Proc})
					lockOpen[e.Str] = -1
				}
			}
		case KLockContend:
			if pt == nil {
				break
			}
			if e.Arg1 > 0 {
				b.slice(pidProcs, pt.tid, "spin "+e.Str, e.At, e.Arg1, nil)
			} else {
				b.instant(pidProcs, pt.tid, "try-fail "+e.Str, e.At, nil)
			}
		case KStall:
			if pt != nil {
				b.slice(pidProcs, pt.tid, "gc-stall", e.At, e.Arg1, nil)
			}
		case KScavengeBegin:
			if pt != nil {
				pt.begin("scavenge", e.At)
			}
			gcOpen[KScavengeBegin] = e.At
		case KScavengeEnd:
			if pt != nil {
				pt.end("scavenge", e.At)
			}
			if start := gcOpen[KScavengeBegin]; start >= 0 {
				b.slice(pidGC, 0, "scavenge", start, e.At-start,
					map[string]any{"objects": e.Arg1, "words": e.Arg2})
				gcOpen[KScavengeBegin] = -1
			}
		case KFullGCBegin:
			gcOpen[KFullGCBegin] = e.At
		case KFullGCEnd:
			if start := gcOpen[KFullGCBegin]; start >= 0 {
				b.slice(pidGC, 0, "full-gc", start, e.At-start,
					map[string]any{"reclaimed_words": e.Arg1})
				gcOpen[KFullGCBegin] = -1
			}
		case KScavWorkerBegin:
			scavWorkerTid(e.Proc)
			scavWorkerOpen[e.Proc] = e.At
		case KScavWorkerEnd:
			tid := scavWorkerTid(e.Proc)
			if start, ok := scavWorkerOpen[e.Proc]; ok {
				b.slice(pidGC, tid, "copy", start, e.At-start,
					map[string]any{"objects": e.Arg1, "words": e.Arg2})
				delete(scavWorkerOpen, e.Proc)
			}
		case KScavSteal:
			b.instant(pidGC, scavWorkerTid(e.Proc), "steal", e.At,
				map[string]any{"victim": e.Arg1})
		case KEdenFull:
			b.instant(pidGC, 0, "eden-full", e.At, map[string]any{"need_words": e.Arg1})
		case KTenure:
			b.instant(pidGC, 0, "tenure", e.At, map[string]any{"words": e.Arg1})
		case KSend:
			if pt != nil {
				name := e.Str
				if name == "" {
					name = "send"
				}
				b.instant(pidProcs, pt.tid, name, e.At, nil)
			}
		case KServeStart:
			tid := serveTid(e.Arg1)
			if prev, ok := serveOpen[e.Arg1]; ok {
				// Done lost to ring truncation: close at this pickup so
				// a tenant's request slices stay disjoint.
				b.slice(pidServe, tid, prev.name, prev.ts, e.At-prev.ts, nil)
			}
			name := e.Str
			if name == "" {
				name = "request"
			}
			serveOpen[e.Arg1] = openSlice{name: name, ts: e.At}
		case KServeDone:
			tid := serveTid(e.Arg1)
			if start, ok := serveOpen[e.Arg1]; ok {
				b.slice(pidServe, tid, start.name, start.ts, e.At-start.ts,
					map[string]any{"executor": e.Proc, "latency_ticks": e.Arg2})
				delete(serveOpen, e.Arg1)
			}
		case KServeReject:
			why := "queue-full"
			if e.Arg2 == 1 {
				why = "tenant-share"
			}
			b.instant(pidServe, serveTid(e.Arg1), "rejected: "+why, e.At,
				map[string]any{"executor": e.Proc})
		case KJITCompile:
			b.instant(pidJIT, jitTid(e.Proc), "compile "+e.Str, e.At,
				map[string]any{"instrs": e.Arg1})
		case KJITDeopt:
			b.instant(pidJIT, jitTid(e.Proc), "deopt: "+e.Str, e.At, nil)
		case KHeapOccupancy:
			b.counter(pidGC, "eden words", e.At, e.Arg1)
			b.counter(pidGC, "old words", e.At, e.Arg2)
		case KGCPause:
			if e.Arg2 == 1 {
				b.counter(pidGC, "fullgc pause ticks", e.At, e.Arg1)
			} else {
				b.counter(pidGC, "scavenge pause ticks", e.At, e.Arg1)
			}
		default:
			if pt != nil {
				var args map[string]any
				if e.Str != "" {
					args = map[string]any{"str": e.Str}
				}
				b.instant(pidProcs, pt.tid, e.Kind.String(), e.At, args)
			}
		}
	}

	for _, pt := range tracks {
		pt.closeAll(maxTs)
	}
	// Close trailing opens in deterministic (registration) order.
	lockNames := make([]string, len(lockTids))
	for name, tid := range lockTids {
		lockNames[tid] = name
	}
	for tid, name := range lockNames {
		if start := lockOpen[name]; start >= 0 {
			b.slice(pidLocks, tid, "held", start, maxTs-start, nil)
		}
	}
	if start := gcOpen[KScavengeBegin]; start >= 0 {
		b.slice(pidGC, 0, "scavenge", start, maxTs-start, nil)
	}
	if start := gcOpen[KFullGCBegin]; start >= 0 {
		b.slice(pidGC, 0, "full-gc", start, maxTs-start, nil)
	}
	var openWorkers []int32
	for w := range scavWorkerOpen {
		openWorkers = append(openWorkers, w)
	}
	sort.Slice(openWorkers, func(i, j int) bool { return openWorkers[i] < openWorkers[j] })
	for _, w := range openWorkers {
		b.slice(pidGC, scavWorkerTid(w), "copy", scavWorkerOpen[w], maxTs-scavWorkerOpen[w], nil)
	}
	var openTenants []int64
	for t := range serveOpen {
		openTenants = append(openTenants, t)
	}
	sort.Slice(openTenants, func(i, j int) bool { return openTenants[i] < openTenants[j] })
	for _, t := range openTenants {
		s := serveOpen[t]
		b.slice(pidServe, serveTid(t), s.name, s.ts, maxTs-s.ts, nil)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(pfTrace{TraceEvents: b.out, DisplayTimeUnit: "ms"})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
