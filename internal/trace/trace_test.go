package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(2000) // rounds up to 2048
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("fresh recorder not empty: len=%d total=%d dropped=%d",
			r.Len(), r.Total(), r.Dropped())
	}
	for i := 0; i < 100; i++ {
		r.Emit(KSend, i%4, int64(i), int64(i), 0, "sel")
	}
	if r.Len() != 100 || r.Total() != 100 || r.Dropped() != 0 {
		t.Fatalf("after 100 emits: len=%d total=%d dropped=%d",
			r.Len(), r.Total(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 100 {
		t.Fatalf("Events returned %d", len(ev))
	}
	for i, e := range ev {
		if e.At != int64(i) || e.Kind != KSend || e.Str != "sel" {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Reset did not clear")
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(100) // rounds up to the 1024 minimum
	n := 1024
	total := 3*n + 17
	for i := 0; i < total; i++ {
		r.Emit(KQuantumStart, 0, int64(i), 0, 0, "")
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	if got, want := r.Dropped(), uint64(total-n); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	ev := r.Events()
	if len(ev) != n {
		t.Fatalf("Events len = %d, want %d", len(ev), n)
	}
	// Oldest first: the surviving window is [total-n, total).
	for i, e := range ev {
		if want := int64(total - n + i); e.At != want {
			t.Fatalf("event %d At = %d, want %d", i, e.At, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatalf("out-of-range kind string: %s", Kind(200).String())
	}
}

// decodePerfetto unmarshals exporter output for inspection.
func decodePerfetto(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	return doc.TraceEvents
}

func TestPerfettoSyntheticPairing(t *testing.T) {
	events := []Event{
		{Kind: KQuantumStart, Proc: 0, At: 10},
		{Kind: KLockAcquire, Proc: 0, At: 12, Str: "alloc", Arg2: 1},
		{Kind: KLockRelease, Proc: 0, At: 15, Str: "alloc", Arg2: 1},
		{Kind: KQuantumEnd, Proc: 0, At: 20},
		{Kind: KQuantumStart, Proc: 1, At: 11},
		{Kind: KLockContend, Proc: 1, At: 13, Str: "alloc", Arg1: 4},
		{Kind: KLockAcquire, Proc: 1, At: 17, Str: "alloc", Arg2: 1},
		// Release lost to ring truncation; quantum 1 left open.
		{Kind: KScavengeBegin, Proc: 0, At: 30},
		{Kind: KScavengeEnd, Proc: 0, At: 42, Arg1: 7, Arg2: 70},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events, 2); err != nil {
		t.Fatal(err)
	}
	out := decodePerfetto(t, &buf)

	type slice struct{ ts, dur int64 }
	slices := map[string][]slice{} // name@pid/tid
	for _, e := range out {
		if e["ph"] != "X" {
			continue
		}
		key := e["name"].(string)
		slices[key] = append(slices[key], slice{
			ts:  int64(e["ts"].(float64)),
			dur: int64(e["dur"].(float64)),
		})
	}

	// Proc 0's quantum closed normally; proc 1's closed at maxTs (42).
	q := slices["quantum"]
	if len(q) != 2 {
		t.Fatalf("quantum slices = %d, want 2: %+v", len(q), q)
	}
	if q[0].ts != 10 || q[0].dur != 10 {
		t.Fatalf("quantum[0] = %+v", q[0])
	}
	if q[1].ts != 11 || q[1].dur != 42-11 {
		t.Fatalf("quantum[1] (trailing-open) = %+v", q[1])
	}
	// Lock holds: proc 0's [12,15]; proc 1's acquire closed at maxTs.
	held := slices["held"]
	if len(held) != 2 {
		t.Fatalf("held slices = %d, want 2: %+v", len(held), held)
	}
	if held[0].ts != 12 || held[0].dur != 3 {
		t.Fatalf("held[0] = %+v", held[0])
	}
	if held[1].ts != 17 || held[1].dur != 42-17 {
		t.Fatalf("held[1] = %+v", held[1])
	}
	// Spin slice from the contend event.
	spin := slices["spin alloc"]
	if len(spin) != 1 || spin[0].ts != 13 || spin[0].dur != 4 {
		t.Fatalf("spin = %+v", spin)
	}
	// Scavenge shows on both the proc track and the gc track.
	scav := slices["scavenge"]
	if len(scav) != 2 {
		t.Fatalf("scavenge slices = %d, want 2: %+v", len(scav), scav)
	}
}

func TestPerfettoUnmatchedEndDropped(t *testing.T) {
	events := []Event{
		// Ring truncation left a bare quantum-end and lock-release.
		{Kind: KQuantumEnd, Proc: 0, At: 5},
		{Kind: KLockRelease, Proc: 0, At: 6, Str: "sched", Arg2: 1},
		{Kind: KQuantumStart, Proc: 0, At: 8},
		{Kind: KQuantumEnd, Proc: 0, At: 9},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, events, 1); err != nil {
		t.Fatal(err)
	}
	out := decodePerfetto(t, &buf)
	quanta := 0
	for _, e := range out {
		if e["ph"] == "X" && e["name"] == "quantum" {
			quanta++
			if ts := int64(e["ts"].(float64)); ts != 8 {
				t.Fatalf("quantum ts = %d, want 8", ts)
			}
		}
		if e["ph"] == "X" && e["name"] == "held" {
			t.Fatalf("orphan release produced a hold slice: %+v", e)
		}
	}
	if quanta != 1 {
		t.Fatalf("quantum slices = %d, want 1", quanta)
	}
}

func TestProfilerAttribution(t *testing.T) {
	pf := NewProfiler(1)
	pf.Prime(0, 100)

	// Enter A (charges nothing yet), run 50 ticks in A, call A->B.
	pf.Sync(0, []string{"A"}, 100)
	pf.Sync(0, []string{"A", "B"}, 150)
	// Run 30 ticks in B, return to A.
	pf.Sync(0, []string{"A"}, 180)
	// Run 20 ticks in A, go idle.
	pf.Sync(0, nil, 200)
	// 10 idle-loop busy ticks, then a fresh stack C->A (recursion-free
	// process switch shape).
	pf.Sync(0, []string{"C", "A"}, 210)
	pf.Sync(0, nil, 260) // 50 ticks in A (inner), flush

	if got := pf.flat["A"]; got != 120 {
		t.Fatalf("flat[A] = %d, want 120", got)
	}
	if got := pf.flat["B"]; got != 30 {
		t.Fatalf("flat[B] = %d, want 30", got)
	}
	if got := pf.flat[BucketIdle]; got != 10 {
		t.Fatalf("flat[(idle)] = %d, want 10", got)
	}
	// Cum A: on stack [100,200] and [210,260] -> 150. Cum B: [150,180].
	if got := pf.cum["A"]; got != 150 {
		t.Fatalf("cum[A] = %d, want 150", got)
	}
	if got := pf.cum["B"]; got != 30 {
		t.Fatalf("cum[B] = %d, want 30", got)
	}
	if got := pf.cum["C"]; got != 50 {
		t.Fatalf("cum[C] = %d, want 50", got)
	}
	if total := pf.TotalBusy(); total != 160 {
		t.Fatalf("TotalBusy = %d, want 160", total)
	}
	// Coverage: 150 named of 160 charged.
	if cov := pf.Coverage(); cov < 0.93 || cov > 0.94 {
		t.Fatalf("Coverage = %f, want 150/160", cov)
	}
	entries := pf.Entries()
	if entries[0].Name != "A" {
		t.Fatalf("top entry = %+v, want A", entries[0])
	}
	rep := pf.Report(10)
	if !bytes.Contains([]byte(rep), []byte("A")) || !bytes.Contains([]byte(rep), []byte("coverage")) {
		t.Fatalf("report missing content:\n%s", rep)
	}
}

func TestProfilerRecursion(t *testing.T) {
	pf := NewProfiler(1)
	// A -> A -> A recursion: cum must count the outermost interval once.
	pf.Sync(0, []string{"A"}, 0)
	pf.Sync(0, []string{"A", "A"}, 10)
	pf.Sync(0, []string{"A", "A", "A"}, 20)
	pf.Sync(0, []string{"A"}, 30)
	pf.Sync(0, nil, 40)
	if got := pf.flat["A"]; got != 40 {
		t.Fatalf("flat[A] = %d, want 40", got)
	}
	if got := pf.cum["A"]; got != 40 {
		t.Fatalf("cum[A] = %d, want 40 (outermost interval once)", got)
	}
}

func TestMetricsDerive(t *testing.T) {
	m := Metrics{
		Machine: MachineMetrics{NumProcs: 2, VirtualTimeTicks: 5500},
		Procs: []ProcMetrics{
			{Proc: 0, BusyTicks: 50, SpinTicks: 25, StallTicks: 25, ClockTicks: 100},
			{Proc: 1, ClockTicks: 0},
		},
		Locks:  []LockMetrics{{Name: "alloc", Acquisitions: 200, Contentions: 50}},
		Interp: InterpMetrics{CacheHits: 90, CacheMisses: 10},
	}
	m.Derive()
	if m.SchemaVersion != MetricsSchemaVersion {
		t.Fatalf("SchemaVersion = %d", m.SchemaVersion)
	}
	if m.Machine.VirtualTimeMS != 5 {
		t.Fatalf("VirtualTimeMS = %d", m.Machine.VirtualTimeMS)
	}
	if m.Procs[0].SpinPct != 25 || m.Procs[0].StallPct != 25 || m.Procs[0].BusyPct != 50 {
		t.Fatalf("proc pct = %+v", m.Procs[0])
	}
	if m.Locks[0].ContentionPct != 25 {
		t.Fatalf("ContentionPct = %f", m.Locks[0].ContentionPct)
	}
	if m.Interp.CacheHitPct != 90 {
		t.Fatalf("CacheHitPct = %f", m.Interp.CacheHitPct)
	}
}

func TestShardedRecorder(t *testing.T) {
	r := NewShardedRecorder(8192, 4)
	if !r.Sharded() {
		t.Fatal("NewShardedRecorder not sharded")
	}
	// Interleave emissions across processors with overlapping times;
	// the merged stream must come back ordered by (At, Proc) with each
	// shard's own order preserved.
	for i := 0; i < 50; i++ {
		for proc := 3; proc >= 0; proc-- {
			r.Emit(KSend, proc, int64(i), int64(proc), 0, "sel")
		}
	}
	if r.Total() != 200 || r.Len() != 200 || r.Dropped() != 0 {
		t.Fatalf("total=%d len=%d dropped=%d", r.Total(), r.Len(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 200 {
		t.Fatalf("Events returned %d", len(ev))
	}
	for i, e := range ev {
		wantAt, wantProc := int64(i/4), int32(i%4)
		if e.At != wantAt || e.Proc != wantProc {
			t.Fatalf("event %d = at %d proc %d, want at %d proc %d",
				i, e.At, e.Proc, wantAt, wantProc)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("Reset did not clear the shards")
	}
}

func TestShardedRecorderConcurrent(t *testing.T) {
	const procs, per = 4, 5000
	r := NewShardedRecorder(procs*8192, procs)
	done := make(chan struct{})
	for p := 0; p < procs; p++ {
		go func(p int) {
			for i := 0; i < per; i++ {
				r.Emit(KCacheHit, p, int64(i), 0, 0, "")
			}
			done <- struct{}{}
		}(p)
	}
	for p := 0; p < procs; p++ {
		<-done
	}
	if r.Total() != procs*per {
		t.Fatalf("total = %d, want %d", r.Total(), procs*per)
	}
	ev := r.Events()
	last := make(map[int32]int64)
	for _, e := range ev {
		if prev, ok := last[e.Proc]; ok && e.At < prev {
			t.Fatalf("proc %d events out of order: %d after %d", e.Proc, e.At, prev)
		}
		last[e.Proc] = e.At
	}
}
