// Package trace is the virtual-time flight recorder: a fixed-size ring
// buffer of events emitted from the hot paths of the simulator (machine
// scheduling, locks, GC, interpreter, devices), plus the host-side
// consumers built on it — a Perfetto/Chrome trace-event exporter, a
// selector-level virtual-time profiler, and the unified metrics
// registry.
//
// The package sits below every other layer (it imports nothing from the
// repository) so that firefly, heap, interp, and display can all emit
// into one recorder. Times are raw virtual ticks (int64; one tick is
// one virtual microsecond).
//
// Everything here is observability only: recording an event never
// charges virtual time, never touches the simulated heap, and never
// registers GC roots, so a traced run is bit-identical — in every
// virtual clock and every counter — to an untraced one. The golden
// determinism test asserts this invariant.
package trace

import (
	"fmt"
	"sort"
)

// Kind classifies one flight-recorder event.
type Kind uint8

const (
	// Machine-level events (emitted by internal/firefly).
	KQuantumStart Kind = iota // proc begins a scheduling quantum
	KQuantumEnd               // proc yields; Arg1 unused
	KHandoff                  // baton handoff; Arg1 = target proc
	KLockAcquire              // lock taken; Str = lock name, Arg2 = 1 if exclusive
	KLockContend              // contended acquire; Arg1 = spin ticks (0: TryAcquire failure)
	KLockRelease              // lock released; Str = lock name, Arg2 = 1 if exclusive
	KStall                    // stop-the-world stall; Arg1 = stall ticks

	// Heap events (emitted by internal/heap).
	KScavengeBegin // scavenge starts on this proc
	KScavengeEnd   // Arg1 = copied objects, Arg2 = copied words
	KEdenFull      // eden exhausted; Arg1 = words requested
	KTenure        // object promoted to old space; Arg1 = words
	KFullGCBegin   // full mark-compact collection starts
	KFullGCEnd     // Arg1 = reclaimed old-space words

	// Interpreter events (emitted by internal/interp).
	KSend          // message send; Str = selector, Arg1 = nargs
	KCacheHit      // method-cache hit
	KCacheMiss     // method-cache miss; Str = selector
	KICHit         // inline-cache hit
	KICMiss        // inline-cache miss; Str = selector
	KProcessSwitch // interpreter switched Smalltalk Processes; Arg1 = process oop
	KPrimitive     // primitive invoked; Arg1 = primitive index
	KCtxAlloc      // context allocated from the heap
	KCtxRecycle    // context returned to a free list

	// Device events (emitted by internal/display).
	KDisplayOp // command posted to the display output queue
	KInputOp   // input event transferred from the sensor

	// Parallel-scavenge worker events (emitted by internal/heap when
	// Config.ParScavenge is on). Proc is the worker's processor.
	KScavWorkerBegin // worker joins the cooperative copy; Arg1 = steals
	KScavWorkerEnd   // worker done; Arg1 = copied objects, Arg2 = copied words
	KScavSteal       // worker stole a grey object; Arg1 = victim worker

	// Template-tier events (emitted by internal/interp when Config.JIT
	// is on). Proc is the compiling/deopting processor.
	KJITCompile // method template-compiled; Str = selector, Arg1 = instrs
	KJITDeopt   // compiled body bailed out; Arg1 = reason, Str = reason name

	// Counter samples (emitted by internal/heap at GC boundaries;
	// rendered as Perfetto counter tracks).
	KHeapOccupancy // Arg1 = eden words in use, Arg2 = old words in use
	KGCPause       // Arg1 = pause ticks, Arg2 = 0 scavenge / 1 full gc

	// Image-server events (emitted by internal/serve). Proc is the
	// executor processor; Arg1 is the tenant, so the Perfetto export can
	// lay requests out on one track per tenant.
	KServeStart  // request picked up; Str = request kind, Arg1 = tenant, Arg2 = queue wait ticks
	KServeDone   // response produced; Arg1 = tenant, Arg2 = request latency ticks
	KServeReject // request shed at admission; Arg1 = tenant, Arg2 = 1 tenant-share / 0 queue-full

	// Concurrent old-space marking events (emitted by internal/heap when
	// Config.ConcMark is on). Proc is the marking processor.
	KConcMarkBegin // snapshot window done; Arg1 = objects shaded from roots/young
	KConcMarkSlice // one bounded mark slice drained; Arg1 = objects scanned, Arg2 = slice ticks
	KConcMarkFinal // finalize window done; Arg1 = residual objects drained, Arg2 = pause ticks
	KConcMarkSweep // lazy sweep done; Arg1 = objects reclaimed, Arg2 = words reclaimed

	numKinds
)

var kindNames = [numKinds]string{
	"quantum-start", "quantum-end", "handoff",
	"lock-acquire", "lock-contend", "lock-release", "stall",
	"scavenge-begin", "scavenge-end", "eden-full", "tenure",
	"fullgc-begin", "fullgc-end",
	"send", "cache-hit", "cache-miss", "ic-hit", "ic-miss",
	"process-switch", "primitive", "ctx-alloc", "ctx-recycle",
	"display-op", "input-op",
	"scav-worker-begin", "scav-worker-end", "scav-steal",
	"jit-compile", "jit-deopt",
	"heap-occupancy", "gc-pause",
	"serve-start", "serve-done", "serve-reject",
	"concmark-begin", "concmark-slice", "concmark-final", "concmark-sweep",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one flight-recorder entry. At is virtual ticks; Proc is the
// virtual processor the event belongs to (its track). Str carries an
// interned name (selector, lock) — recording it copies only the string
// header, never the bytes.
type Event struct {
	At   int64
	Arg1 int64
	Arg2 int64
	Str  string
	Proc int32
	Kind Kind
}

// Recorder is the flight-recorder ring buffer. It is not synchronized:
// the simulator's baton protocol guarantees a single writer at a time,
// and readers (export, tests) run while the machine is parked.
//
// In parallel host mode that guarantee disappears, so a recorder can be
// sharded (NewShardedRecorder): each virtual processor then owns a
// private ring and emissions stay contention-free without a lock. The
// shards are merged, ordered by virtual time, when events are read.
type Recorder struct {
	buf    []Event
	mask   uint64
	n      uint64 // events ever emitted
	shards []*Recorder
}

// DefaultRingSize is the event capacity used by the -trace CLI flags:
// large enough to hold the tail of a macro benchmark, small enough that
// the exported JSON stays loadable in ui.perfetto.dev.
const DefaultRingSize = 1 << 17

// NewRecorder creates a recorder holding the most recent events.
// capacity is rounded up to a power of two, minimum 1024.
func NewRecorder(capacity int) *Recorder {
	n := 1024
	for n < capacity {
		n <<= 1
	}
	return &Recorder{buf: make([]Event, n), mask: uint64(n - 1)}
}

// NewShardedRecorder creates a recorder with one private ring per
// virtual processor, for parallel host mode: each processor emits only
// into its own shard, so recording needs no synchronization even with
// every processor running on its own goroutine. capacity is the total
// event budget, divided across the shards (each shard still gets the
// NewRecorder minimum).
func NewShardedRecorder(capacity, procs int) *Recorder {
	if procs < 1 {
		procs = 1
	}
	r := &Recorder{shards: make([]*Recorder, procs)}
	for i := range r.shards {
		r.shards[i] = NewRecorder(capacity / procs)
	}
	return r
}

// Sharded reports whether the recorder keeps per-processor rings.
func (r *Recorder) Sharded() bool { return r.shards != nil }

// Emit records one event, overwriting the oldest when the ring is full.
// It never allocates. On a sharded recorder the event goes to the
// emitting processor's private ring.
func (r *Recorder) Emit(k Kind, proc int, at, arg1, arg2 int64, str string) {
	if r.shards != nil {
		s := r.shards[0]
		if proc >= 0 && proc < len(r.shards) {
			s = r.shards[proc]
		}
		s.Emit(k, proc, at, arg1, arg2, str)
		return
	}
	e := &r.buf[r.n&r.mask]
	e.At, e.Arg1, e.Arg2, e.Str, e.Proc, e.Kind = at, arg1, arg2, str, int32(proc), k
	r.n++
}

// Len returns how many events are currently held.
func (r *Recorder) Len() int {
	if r.shards != nil {
		total := 0
		for _, s := range r.shards {
			total += s.Len()
		}
		return total
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Total returns how many events were ever emitted.
func (r *Recorder) Total() uint64 {
	if r.shards != nil {
		var total uint64
		for _, s := range r.shards {
			total += s.n
		}
		return total
	}
	return r.n
}

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r.shards != nil {
		var total uint64
		for _, s := range r.shards {
			total += s.Dropped()
		}
		return total
	}
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the recorded events, oldest first. A sharded
// recorder's per-processor rings are merged into one stream ordered by
// (virtual time, processor), preserving each shard's emission order —
// the export is deterministic for a given set of shard contents even
// though the shards filled concurrently. Readers run only while the
// machine is stopped.
func (r *Recorder) Events() []Event {
	if r.shards != nil {
		type seqEvent struct {
			e   Event
			seq int
		}
		var all []seqEvent
		for _, s := range r.shards {
			for i, e := range s.Events() {
				all = append(all, seqEvent{e, i})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.e.At != b.e.At {
				return a.e.At < b.e.At
			}
			if a.e.Proc != b.e.Proc {
				return a.e.Proc < b.e.Proc
			}
			return a.seq < b.seq
		})
		out := make([]Event, len(all))
		for i, se := range all {
			out[i] = se.e
		}
		return out
	}
	out := make([]Event, 0, r.Len())
	start := uint64(0)
	if r.n > uint64(len(r.buf)) {
		start = r.n - uint64(len(r.buf))
	}
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// Reset discards every recorded event (the rings keep their capacity).
func (r *Recorder) Reset() {
	for _, s := range r.shards {
		s.n = 0
	}
	r.n = 0
}
