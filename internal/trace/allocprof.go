package trace

// The allocation-site profiler: attributes allocated objects and words
// to the allocating Class>>selector, and follows each site's objects
// through the scavenger to derive survivor and tenure rates. The heap
// reports events by interned site id; the interpreter supplies names
// through a callback, so this package stays dependency-free.
//
// An object-demographics age census rides along: at every scavenge the
// copying pass reports each survivor's age, building the population
// pyramid the tenure-threshold policy acts on.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MaxObjectAge mirrors the heap's age-field saturation; the census
// clamps to it.
const MaxObjectAge = 31

type allocSite struct {
	objects      uint64
	words        uint64
	survObjects  uint64 // eden-born objects that survived a first scavenge
	survWords    uint64
	tenureObject uint64 // objects promoted to old space
	tenureWords  uint64
}

// AllocProfiler accumulates per-site allocation statistics. It is
// mutex-guarded: the deterministic mode is single-goroutine, so the
// lock is uncontended there, and the profiler refuses parallel mode at
// the config layer anyway (site attribution needs the interpreter's
// per-processor state mid-bytecode).
type AllocProfiler struct {
	//msvet:stw-safe profiler table lock: the GC hooks (NoteSurvived/NoteTenured) fire from inside the scavenge window and the lock is held only for bounded map/slice updates; the profiler refuses parallel mode anyway
	mu    sync.Mutex
	names []string
	index map[string]int
	sites []allocSite
	ages  [MaxObjectAge + 1]struct{ objects, words uint64 }
}

// NewAllocProfiler returns an empty profiler.
func NewAllocProfiler() *AllocProfiler {
	return &AllocProfiler{index: make(map[string]int)}
}

// SiteID interns a site name ("Class>>selector") and returns its id.
func (a *AllocProfiler) SiteID(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id, ok := a.index[name]; ok {
		return id
	}
	id := len(a.names)
	a.index[name] = id
	a.names = append(a.names, name)
	a.sites = append(a.sites, allocSite{})
	return id
}

func (a *AllocProfiler) site(id int) *allocSite {
	if id < 0 || id >= len(a.sites) {
		return nil
	}
	return &a.sites[id]
}

// RecordAlloc attributes one allocation of the given word size
// (including the header) to the site.
func (a *AllocProfiler) RecordAlloc(id int, words int64) {
	a.mu.Lock()
	if s := a.site(id); s != nil {
		s.objects++
		s.words += uint64(words)
	}
	a.mu.Unlock()
}

// NoteSurvived reports that an eden-born object from the site survived
// its first scavenge (was copied to a survivor space).
func (a *AllocProfiler) NoteSurvived(id int, words int64) {
	a.mu.Lock()
	if s := a.site(id); s != nil {
		s.survObjects++
		s.survWords += uint64(words)
	}
	a.mu.Unlock()
}

// NoteTenured reports that an object from the site was promoted to old
// space.
func (a *AllocProfiler) NoteTenured(id int, words int64) {
	a.mu.Lock()
	if s := a.site(id); s != nil {
		s.tenureObject++
		s.tenureWords += uint64(words)
	}
	a.mu.Unlock()
}

// NoteAge adds one surviving object of the given age (in scavenges
// survived) to the demographics census.
func (a *AllocProfiler) NoteAge(age int, words int64) {
	if age < 0 {
		age = 0
	}
	if age > MaxObjectAge {
		age = MaxObjectAge
	}
	a.mu.Lock()
	a.ages[age].objects++
	a.ages[age].words += uint64(words)
	a.mu.Unlock()
}

// TotalWords returns the total allocated words across all sites.
func (a *AllocProfiler) TotalWords() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t uint64
	for i := range a.sites {
		t += a.sites[i].words
	}
	return t
}

// TopCoverage returns the fraction of all allocated words attributed to
// the n largest sites (1.0 when there are at most n sites).
func (a *AllocProfiler) TopCoverage(n int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	words := make([]uint64, len(a.sites))
	var total uint64
	for i := range a.sites {
		words[i] = a.sites[i].words
		total += a.sites[i].words
	}
	if total == 0 {
		return 0
	}
	sort.Slice(words, func(i, j int) bool { return words[i] > words[j] })
	var top uint64
	for i := 0; i < n && i < len(words); i++ {
		top += words[i]
	}
	return float64(top) / float64(total)
}

// Report renders the top-n allocation sites by words, with survivor and
// tenure rates, followed by the age census.
func (a *AllocProfiler) Report(topN int) string {
	a.mu.Lock()
	type row struct {
		name string
		s    allocSite
	}
	rows := make([]row, len(a.sites))
	var totObjects, totWords uint64
	for i := range a.sites {
		rows[i] = row{a.names[i], a.sites[i]}
		totObjects += a.sites[i].objects
		totWords += a.sites[i].words
	}
	ages := a.ages
	a.mu.Unlock()

	sort.SliceStable(rows, func(i, j int) bool { return rows[i].s.words > rows[j].s.words })

	var b strings.Builder
	fmt.Fprintf(&b, "allocation sites: %d sites, %d objects, %d words\n",
		len(rows), totObjects, totWords)
	fmt.Fprintf(&b, "  %8s %8s %6s %6s %6s %6s  %s\n",
		"objects", "words", "wrd%", "cum%", "surv%", "ten%", "site")
	var cum uint64
	shown := 0
	for _, r := range rows {
		if shown >= topN || r.s.words == 0 {
			break
		}
		cum += r.s.words
		surv, ten := "-", "-"
		if r.s.objects > 0 {
			surv = fmt.Sprintf("%.1f", 100*float64(r.s.survObjects)/float64(r.s.objects))
			ten = fmt.Sprintf("%.1f", 100*float64(r.s.tenureObject)/float64(r.s.objects))
		}
		fmt.Fprintf(&b, "  %8d %8d %6.1f %6.1f %6s %6s  %s\n",
			r.s.objects, r.s.words,
			100*float64(r.s.words)/float64(totWords),
			100*float64(cum)/float64(totWords),
			surv, ten, r.name)
		shown++
	}
	if shown < len(rows) {
		fmt.Fprintf(&b, "  (%d more sites, %.1f%% of words)\n",
			len(rows)-shown, 100*float64(totWords-cum)/float64(totWords))
	}

	var censusObjects uint64
	for _, c := range ages {
		censusObjects += c.objects
	}
	if censusObjects > 0 {
		b.WriteString("object demographics (age in scavenges survived, per copy)\n")
		fmt.Fprintf(&b, "  %4s %10s %10s %6s\n", "age", "objects", "words", "obj%")
		for age, c := range ages {
			if c.objects == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %4d %10d %10d %6.1f\n",
				age, c.objects, c.words, 100*float64(c.objects)/float64(censusObjects))
		}
	}
	return b.String()
}
