package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Selector-level virtual-time profiler. The interpreter calls Sync at
// every context switch (loadContext) with the current virtual-method
// call chain and the processor's busy tick counter; the profiler
// charges the ticks elapsed since the previous sync to the method that
// was executing (flat time) and maintains a shadow stack per processor
// for gprof-style cumulative attribution (time a method spends anywhere
// on the stack, counted once per processor even under recursion).
//
// Everything is host-side: the profiler holds only Go strings (never
// oops), charges no virtual time, and so cannot perturb the run.

// Special attribution buckets: busy ticks spent before the first
// context load ("(vm)") and in the idle loop's polling ("(idle)").
const (
	BucketVM   = "(vm)"
	BucketIdle = "(idle)"
)

type procProf struct {
	stack    []string
	onStack  map[string]int   // name -> occurrences on stack
	entry    map[string]int64 // name -> busy at outermost entry
	lastBusy int64
	current  string
}

// Profiler attributes virtual busy time to qualified method names.
type Profiler struct {
	flat  map[string]int64
	cum   map[string]int64
	procs []*procProf
}

// NewProfiler creates a profiler for numProcs processors.
func NewProfiler(numProcs int) *Profiler {
	pf := &Profiler{flat: map[string]int64{}, cum: map[string]int64{}}
	for i := 0; i < numProcs; i++ {
		pf.procs = append(pf.procs, &procProf{
			onStack: map[string]int{},
			entry:   map[string]int64{},
			current: BucketVM,
		})
	}
	return pf
}

// Prime sets a processor's busy-tick baseline; call once when the
// profiler is attached so pre-attachment (boot) time is not counted.
func (pf *Profiler) Prime(proc int, busy int64) {
	pf.procs[proc].lastBusy = busy
}

// Sync charges the busy ticks elapsed since the previous sync to the
// bucket that was executing, then reconciles the processor's shadow
// stack with frames (the current call chain, outermost first). Empty
// frames mean the processor went idle. Reconciliation is by longest
// common prefix, which handles sends, returns, non-local returns, and
// whole-stack process switches uniformly.
func (pf *Profiler) Sync(proc int, frames []string, busy int64) {
	pp := pf.procs[proc]
	if delta := busy - pp.lastBusy; delta > 0 {
		pf.flat[pp.current] += delta
	}
	pp.lastBusy = busy

	i := 0
	for i < len(pp.stack) && i < len(frames) && pp.stack[i] == frames[i] {
		i++
	}
	for j := len(pp.stack) - 1; j >= i; j-- {
		pf.popFrame(pp, pp.stack[j], busy)
	}
	pp.stack = pp.stack[:i]
	for _, name := range frames[i:] {
		pf.pushFrame(pp, name, busy)
		pp.stack = append(pp.stack, name)
	}
	if len(frames) == 0 {
		pp.current = BucketIdle
	} else {
		pp.current = frames[len(frames)-1]
	}
}

func (pf *Profiler) pushFrame(pp *procProf, name string, busy int64) {
	if pp.onStack[name] == 0 {
		pp.entry[name] = busy
	}
	pp.onStack[name]++
}

func (pf *Profiler) popFrame(pp *procProf, name string, busy int64) {
	pp.onStack[name]--
	if pp.onStack[name] <= 0 {
		pf.cum[name] += busy - pp.entry[name]
		delete(pp.entry, name)
		delete(pp.onStack, name)
	}
}

// Flush finalizes attribution: charges each processor's outstanding
// busy ticks and unwinds its shadow stack (closing cumulative
// intervals). Call before reading Entries/Coverage/Report.
func (pf *Profiler) Flush(busyByProc []int64) {
	for i, busy := range busyByProc {
		if i < len(pf.procs) {
			pf.Sync(i, nil, busy)
		}
	}
}

// Reset clears all attribution and re-primes each processor's baseline.
func (pf *Profiler) Reset(busyByProc []int64) {
	pf.flat = map[string]int64{}
	pf.cum = map[string]int64{}
	for i, pp := range pf.procs {
		pp.stack = pp.stack[:0]
		pp.onStack = map[string]int{}
		pp.entry = map[string]int64{}
		pp.current = BucketVM
		if i < len(busyByProc) {
			pp.lastBusy = busyByProc[i]
		}
	}
}

// ProfEntry is one method's attribution.
type ProfEntry struct {
	Name string
	Flat int64 // busy ticks with the method itself executing
	Cum  int64 // busy ticks with the method anywhere on a stack
}

// Entries returns every bucket sorted by flat time (descending, name as
// tiebreak for determinism).
func (pf *Profiler) Entries() []ProfEntry {
	names := map[string]bool{}
	for n := range pf.flat {
		names[n] = true
	}
	for n := range pf.cum {
		names[n] = true
	}
	out := make([]ProfEntry, 0, len(names))
	for n := range names {
		out = append(out, ProfEntry{Name: n, Flat: pf.flat[n], Cum: pf.cum[n]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalBusy returns every busy tick charged since attach (or Reset).
func (pf *Profiler) TotalBusy() int64 {
	var t int64
	for _, v := range pf.flat {
		t += v
	}
	return t
}

// Coverage returns the fraction of charged busy ticks attributed to
// named selectors (everything except the (vm) and (idle) buckets).
func (pf *Profiler) Coverage() float64 {
	total := pf.TotalBusy()
	if total == 0 {
		return 0
	}
	named := total - pf.flat[BucketVM] - pf.flat[BucketIdle]
	return float64(named) / float64(total)
}

// JITTag is the suffix the interpreter appends to a frame name when its
// busy ticks accrued in the msjit template tier, so the same selector
// shows up as two buckets — interpreted and compiled.
const JITTag = " [jit]"

// TierBreakdown splits the charged busy ticks by execution tier:
// compiled = flat time in frames carrying the JITTag suffix,
// interpreted = every other named-selector tick.
func (pf *Profiler) TierBreakdown() (interpreted, compiled int64) {
	for n, v := range pf.flat {
		switch {
		case n == BucketVM || n == BucketIdle:
		case strings.HasSuffix(n, JITTag):
			compiled += v
		default:
			interpreted += v
		}
	}
	return interpreted, compiled
}

// Report renders the top-N flat-time table with a coverage line.
func (pf *Profiler) Report(topN int) string {
	entries := pf.Entries()
	total := pf.TotalBusy()
	if total == 0 {
		total = 1
	}
	var b strings.Builder
	b.WriteString("Selector profile (virtual busy ticks; flat = executing, cum = on stack):\n\n")
	fmt.Fprintf(&b, "%7s %7s %12s %12s  %s\n", "flat%", "cum%", "flat", "cum", "method")
	n := 0
	for _, e := range entries {
		if topN > 0 && n >= topN {
			break
		}
		if e.Flat == 0 && e.Cum == 0 {
			continue
		}
		fmt.Fprintf(&b, "%6.2f%% %6.2f%% %12d %12d  %s\n",
			100*float64(e.Flat)/float64(total),
			100*float64(e.Cum)/float64(total),
			e.Flat, e.Cum, e.Name)
		n++
	}
	fmt.Fprintf(&b, "\ncoverage: %.1f%% of %d busy ticks attributed to named selectors\n",
		100*pf.Coverage(), pf.TotalBusy())
	return b.String()
}
