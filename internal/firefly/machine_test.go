package firefly

import (
	"testing"
)

func TestSingleProcessorRunsToCompletion(t *testing.T) {
	m := New(1, DefaultCosts())
	steps := 0
	m.Start(0, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(10)
			steps++
			p.CheckYield()
		}
	})
	if r := m.Run(nil); r != StopAllDone {
		t.Fatalf("Run = %v, want StopAllDone", r)
	}
	if steps != 100 {
		t.Fatalf("steps = %d, want 100", steps)
	}
	if got := m.Proc(0).Now(); got != 1000 {
		t.Fatalf("clock = %d, want 1000", got)
	}
}

func TestMinTimeFirstInterleaving(t *testing.T) {
	// A slow and a fast processor: the driver must interleave so that
	// their clocks stay within one quantum of each other.
	m := New(2, DefaultCosts())
	m.SetQuantum(50)
	var maxSkew Time
	finished := [2]bool{}
	run := func(cost Time, iters int) func(*Proc) {
		return func(p *Proc) {
			other := m.Proc(1 - p.ID())
			for i := 0; i < iters; i++ {
				p.Advance(cost)
				if d := p.Now() - other.Now(); d > maxSkew && !finished[other.ID()] {
					maxSkew = d
				}
				p.CheckYield()
			}
			finished[p.ID()] = true
		}
	}
	m.Start(0, run(5, 1000))  // finishes at t=5000
	m.Start(1, run(10, 1000)) // finishes at t=10000
	if r := m.Run(nil); r != StopAllDone {
		t.Fatalf("Run = %v, want StopAllDone", r)
	}
	// Skew can exceed the quantum only by one step's cost.
	if maxSkew > 50+10 {
		t.Fatalf("max clock skew %d exceeds quantum+step", maxSkew)
	}
}

func TestUntilPredicateStopsRun(t *testing.T) {
	m := New(1, DefaultCosts())
	var n int
	m.Start(0, func(p *Proc) {
		for !p.Stopped() {
			n++
			p.Advance(1)
			p.Yield()
		}
	})
	r := m.Run(func() bool { return n >= 10 })
	if r != StopUntil {
		t.Fatalf("Run = %v, want StopUntil", r)
	}
	if n < 10 {
		t.Fatalf("n = %d, want >= 10", n)
	}
	// The machine can be continued.
	r = m.Run(func() bool { return n >= 20 })
	if r != StopUntil || n < 20 {
		t.Fatalf("second Run = %v, n = %d", r, n)
	}
	m.Shutdown()
}

func TestTimeLimit(t *testing.T) {
	m := New(1, DefaultCosts())
	m.SetTimeLimit(500)
	m.Start(0, func(p *Proc) {
		for !p.Stopped() {
			p.Advance(100)
			p.Yield()
		}
	})
	if r := m.Run(nil); r != StopTimeLimit {
		t.Fatalf("Run = %v, want StopTimeLimit", r)
	}
	m.Shutdown()
}

func TestSpinlockMutualExclusionInVirtualTime(t *testing.T) {
	// Two processors increment a shared counter inside a critical
	// section whose virtual duration is long; without the lock their
	// critical sections would overlap in virtual time.
	m := New(2, DefaultCosts())
	m.SetQuantum(10)
	l := m.NewSpinlock("test", true)
	type interval struct{ start, end Time }
	var intervals []interval
	body := func(p *Proc) {
		for i := 0; i < 25; i++ {
			l.Acquire(p)
			start := p.Now()
			p.Advance(60) // long (host-atomic) critical section
			intervals = append(intervals, interval{start, p.Now()})
			l.Release(p)
			p.Advance(7)
			p.CheckYield()
		}
	}
	m.Start(0, body)
	m.Start(1, body)
	if r := m.Run(nil); r != StopAllDone {
		t.Fatalf("Run = %v, want StopAllDone", r)
	}
	if len(intervals) != 50 {
		t.Fatalf("got %d critical sections, want 50", len(intervals))
	}
	for i := range intervals {
		for j := i + 1; j < len(intervals); j++ {
			a, b := intervals[i], intervals[j]
			if a.start < b.end && b.start < a.end {
				t.Fatalf("critical sections overlap in virtual time: %+v and %+v", a, b)
			}
		}
	}
	ls := m.LockStats()
	if len(ls) != 1 || ls[0].Acquisitions != 50 {
		t.Fatalf("lock stats = %+v, want 50 acquisitions", ls)
	}
	if ls[0].Contentions == 0 {
		t.Fatalf("expected contention on a hot lock, got none")
	}
}

func TestDisabledSpinlockIsFree(t *testing.T) {
	m := New(1, DefaultCosts())
	l := m.NewSpinlock("off", false)
	m.Start(0, func(p *Proc) {
		before := p.Now()
		l.Acquire(p)
		l.Release(p)
		if p.Now() != before {
			t.Errorf("disabled lock charged time: %d -> %d", before, p.Now())
		}
	})
	m.Run(nil)
}

func TestRecursiveAcquirePanics(t *testing.T) {
	m := New(1, DefaultCosts())
	l := m.NewSpinlock("rec", true)
	panicked := false
	m.Start(0, func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		l.Acquire(p)
		l.Acquire(p)
	})
	m.Run(nil)
	if !panicked {
		t.Fatal("recursive acquire did not panic")
	}
}

func TestEventsDeliverInOrderAtVirtualTime(t *testing.T) {
	m := New(2, DefaultCosts())
	var log []int
	var logTimes []Time
	m.At(250, func() { log = append(log, 1) })
	m.At(100, func() { log = append(log, 0) })
	m.At(250, func() { log = append(log, 2) }) // same time: FIFO by insertion
	stepper := func(p *Proc) {
		for i := 0; i < 40; i++ {
			p.Advance(10)
			logTimes = append(logTimes, p.Now())
			p.CheckYield()
		}
	}
	m.Start(0, stepper)
	m.Start(1, stepper)
	m.Run(nil)
	if len(log) != 3 || log[0] != 0 || log[1] != 1 || log[2] != 2 {
		t.Fatalf("event order = %v, want [0 1 2]", log)
	}
}

func TestStallOthersAdvancesClocks(t *testing.T) {
	m := New(3, DefaultCosts())
	m.Start(0, func(p *Proc) {
		p.Advance(100)
		m.StallOthers(p, 5000)
	})
	m.Start(1, func(p *Proc) { p.Advance(10) })
	m.Start(2, func(p *Proc) { p.Advance(10); p.Yield(); p.Advance(1) })
	m.Run(nil)
	if got := m.Proc(2).Stats().Stall; got == 0 {
		t.Fatalf("processor 2 stall = %d, want > 0", got)
	}
	if got := m.Proc(2).Now(); got < 5000 {
		t.Fatalf("processor 2 clock = %d, want >= 5000", got)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func() []int {
		m := New(3, DefaultCosts())
		m.SetQuantum(17)
		l := m.NewSpinlock("l", true)
		var order []int
		for i := 0; i < 3; i++ {
			m.Start(i, func(p *Proc) {
				for k := 0; k < 50; k++ {
					l.Acquire(p)
					order = append(order, p.ID())
					p.Advance(Time(3 + p.ID()))
					l.Release(p)
					p.Advance(2)
					p.CheckYield()
				}
			})
		}
		m.Run(nil)
		return order
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProcStatsAccounting(t *testing.T) {
	m := New(1, DefaultCosts())
	m.Start(0, func(p *Proc) {
		p.Advance(5)
		p.AdvanceSpin(7)
		p.AdvanceIdle(11)
		p.StallUntil(p.Now() + 13)
	})
	m.Run(nil)
	s := m.Proc(0).Stats()
	if s.Busy != 5 || s.Spin != 7 || s.Idle != 11 || s.Stall != 13 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Clock != 5+7+11+13 {
		t.Fatalf("clock = %d, want %d", s.Clock, 5+7+11+13)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1234).String(); got != "1.234ms" {
		t.Fatalf("Time(1234) = %q", got)
	}
	if got := Time(1234).Ms(); got != 1 {
		t.Fatalf("Ms = %d", got)
	}
}

func TestRWSpinlockReadersOverlapWritersExclude(t *testing.T) {
	m := New(3, DefaultCosts())
	m.SetQuantum(10)
	l := m.NewRWSpinlock("rw", true)
	type span struct {
		kind       string
		start, end Time
	}
	var spans []span
	reader := func(p *Proc) {
		for i := 0; i < 10; i++ {
			l.AcquireRead(p)
			s := p.Now()
			p.Advance(20)
			spans = append(spans, span{"r", s, p.Now()})
			l.ReleaseRead(p)
			p.Advance(5)
			p.CheckYield()
		}
	}
	m.Start(0, reader)
	m.Start(1, reader)
	m.Start(2, func(p *Proc) {
		for i := 0; i < 10; i++ {
			l.AcquireWrite(p)
			s := p.Now()
			p.Advance(15)
			spans = append(spans, span{"w", s, p.Now()})
			l.ReleaseWrite(p)
			p.Advance(30)
			p.CheckYield()
		}
	})
	if r := m.Run(nil); r != StopAllDone {
		t.Fatalf("Run = %v", r)
	}
	overlapsRead := false
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				if a.kind == "r" && b.kind == "r" {
					overlapsRead = true
				} else {
					t.Fatalf("writer overlapped in virtual time: %+v / %+v", a, b)
				}
			}
		}
	}
	if !overlapsRead {
		t.Error("readers never overlapped (two-level lock behaving exclusively)")
	}
}

func TestRWSpinlockDisabledIsFree(t *testing.T) {
	m := New(1, DefaultCosts())
	l := m.NewRWSpinlock("off", false)
	m.Start(0, func(p *Proc) {
		before := p.Now()
		l.AcquireRead(p)
		l.ReleaseRead(p)
		l.AcquireWrite(p)
		l.ReleaseWrite(p)
		if p.Now() != before {
			t.Errorf("disabled RW lock charged time")
		}
	})
	m.Run(nil)
}
