package firefly

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// startCounters boots n processors deterministically (one trivial
// quantum each) so the machine is in the between-Runs state the
// parallel flip requires.
func startParallel(t *testing.T, n int, work func(p *Proc)) *Machine {
	t.Helper()
	m := New(n, DefaultCosts())
	for i := 0; i < n; i++ {
		m.Start(i, work)
	}
	m.SetParallel(true)
	if !m.Parallel() {
		t.Fatal("SetParallel did not take")
	}
	return m
}

// TestParallelSpinlockMutualExclusion: the CAS spinlock really
// serializes — concurrent increments of an unsynchronized counter
// under the lock lose no updates, and the invariant "a == b inside
// the critical section" holds.
func TestParallelSpinlockMutualExclusion(t *testing.T) {
	const procs, per = 4, 2000
	var a, b int // guarded by l; intentionally not atomic
	var l *Spinlock
	var doneProcs atomic.Int32
	work := func(p *Proc) {
		for i := 0; i < per; i++ {
			if p.Stopped() {
				return
			}
			l.Acquire(p)
			a++
			if a != b+1 {
				panic("lock did not exclude")
			}
			b++
			l.Release(p)
			p.Advance(10)
			p.CheckYield()
		}
		doneProcs.Add(1)
		for !p.Stopped() {
			p.AdvanceIdle(10)
			p.Yield()
		}
	}
	m := New(procs, DefaultCosts())
	l = m.NewSpinlock("test", true)
	for i := 0; i < procs; i++ {
		m.Start(i, work)
	}
	m.SetParallel(true)
	reason := m.Run(func() bool { return doneProcs.Load() == procs })
	if reason != StopUntil {
		t.Fatalf("Run returned %v", reason)
	}
	if a != procs*per || b != procs*per {
		t.Fatalf("lost updates: a=%d b=%d want %d", a, b, procs*per)
	}
	st := m.LockStats()
	if len(st) != 1 || st[0].Acquisitions != procs*per {
		t.Fatalf("lock stats: %+v", st)
	}
	m.Shutdown()
}

// TestParallelStopTheWorldRendezvous: while the world is stopped the
// owner sees every mutator at a safepoint — the two-step unlocked
// mutation (x++ ... y++) is never visible half-done — and a second
// simultaneous stopper observes that a collection already ran and
// backs off (returns false).
func TestParallelStopTheWorldRendezvous(t *testing.T) {
	const stoppers = 2
	var x, y int64 // mutated without locks, but only between safepoints
	var arrived atomic.Int32
	var trueCount, falseCount atomic.Int32
	var mutatorDone, stopperDone atomic.Int32

	mutator := func(p *Proc) {
		for i := 0; i < 5000 && !p.Stopped(); i++ {
			x++
			y++
			p.Advance(5)
			p.CheckYield()
		}
		mutatorDone.Store(1)
		for !p.Stopped() {
			p.AdvanceIdle(10)
			p.Yield()
		}
	}
	stopper := func(p *Proc) {
		// Host-level barrier so both stoppers collide on the world.
		arrived.Add(1)
		for arrived.Load() < stoppers {
			runtime.Gosched()
		}
		if p.m.StopTheWorld(p) {
			if x != y {
				panic("world not stopped: x != y")
			}
			before := x
			p.Advance(100) // simulated collection work
			if x != before {
				panic("mutator ran during the pause")
			}
			trueCount.Add(1)
			p.m.ResumeTheWorld(p)
		} else {
			falseCount.Add(1)
		}
		stopperDone.Add(1)
		for !p.Stopped() {
			p.AdvanceIdle(10)
			p.Yield()
		}
	}

	m := New(3, DefaultCosts())
	m.Start(0, mutator)
	m.Start(1, stopper)
	m.Start(2, stopper)
	m.SetParallel(true)
	reason := m.Run(func() bool {
		return mutatorDone.Load() == 1 && stopperDone.Load() == stoppers
	})
	if reason != StopUntil {
		t.Fatalf("Run returned %v", reason)
	}
	if trueCount.Load() != 1 || falseCount.Load() != 1 {
		t.Fatalf("simultaneous stoppers: %d owned the world, %d backed off; want exactly 1 and 1",
			trueCount.Load(), falseCount.Load())
	}
	if x != 5000 || y != 5000 {
		t.Fatalf("mutator work lost: x=%d y=%d", x, y)
	}
	m.Shutdown()
}

// TestParallelRunRepeats: Run can be called repeatedly in parallel
// mode, the time limit stops a runaway run, and stall/clock accounting
// survives the mode. Also exercises Shutdown with processors parked.
func TestParallelRunRepeatsAndTimeLimit(t *testing.T) {
	var phase atomic.Int32
	work := func(p *Proc) {
		for !p.Stopped() {
			p.Advance(20)
			if phase.Load() == 0 {
				phase.Store(1)
			}
			p.CheckYield()
		}
	}
	m := startParallel(t, 2, work)
	if r := m.Run(func() bool { return phase.Load() >= 1 }); r != StopUntil {
		t.Fatalf("first Run returned %v", r)
	}
	m.SetTimeLimit(m.Proc(0).Now() + 10000)
	if r := m.Run(func() bool { return false }); r != StopTimeLimit {
		t.Fatalf("limited Run returned %v", r)
	}
	for i := 0; i < m.NumProcs(); i++ {
		st := m.Proc(i).Stats()
		if st.Clock <= 0 {
			t.Fatalf("proc %d clock did not advance: %+v", i, st)
		}
	}
	m.Shutdown()
	// Shutdown is idempotent.
	m.Shutdown()
}

// TestParallelRWSpinlock: writers exclude each other and all readers;
// reader counts really overlap.
func TestParallelRWSpinlock(t *testing.T) {
	const procs = 4
	var shared [2]int64 // written only by writers, under the write lock
	var rw *RWSpinlock
	var done atomic.Int32
	work := func(p *Proc) {
		for i := 0; i < 1500; i++ {
			if p.Stopped() {
				return
			}
			if p.ID()%2 == 0 {
				rw.AcquireWrite(p)
				shared[0]++
				if shared[0] != shared[1]+1 {
					panic("write lock did not exclude")
				}
				shared[1]++
				rw.ReleaseWrite(p)
			} else {
				rw.AcquireRead(p)
				if shared[0] != shared[1] {
					panic("reader saw a half-done write")
				}
				rw.ReleaseRead(p)
			}
			p.Advance(7)
			p.CheckYield()
		}
		done.Add(1)
		for !p.Stopped() {
			p.AdvanceIdle(10)
			p.Yield()
		}
	}
	m := New(procs, DefaultCosts())
	rw = m.NewRWSpinlock("rwtest", true)
	for i := 0; i < procs; i++ {
		m.Start(i, work)
	}
	m.SetParallel(true)
	if r := m.Run(func() bool { return done.Load() == procs }); r != StopUntil {
		t.Fatalf("Run returned %v", r)
	}
	if want := int64(2 * 1500); shared[0] != want || shared[1] != want {
		t.Fatalf("writer updates lost: %v want %d", shared, want)
	}
	m.Shutdown()
}
