package firefly

// Costs is the machine's cost model, in ticks of virtual time. The values
// are loosely calibrated to a microVAX-class processor where one tick is
// roughly one microsecond (≈1 simple instruction sequence). The absolute
// scale is irrelevant to the reproduced experiments — all results are
// ratios against the baseline system — but the *relative* weights matter:
// a message send costs several bytecodes, a lock acquisition costs a few
// interlocked bus operations, a spin retry includes the V kernel's
// minimal-timeout Delay, and a scavenge is proportional to surviving data.
type Costs struct {
	// Interpreter.
	Bytecode      Time // dispatch + execute one simple bytecode
	SendExtra     Time // extra work to activate/return a method context
	CacheProbe    Time // one method-cache probe (hit or first probe of miss)
	CacheReplica  Time // extra per-probe cost of indexing a replicated cache
	LookupPerDict Time // probing one method dictionary on a cache miss
	ICProbe       Time // probing a send site's inline cache (Deutsch–Schiffman)
	ICFill        Time // (re)binding an inline-cache entry after a miss
	PrimBase      Time // entering a primitive
	FreeListPop   Time // recycling a context from a free list
	ProcessSwitch Time // switching the interpreter to another Process
	SchedOp       Time // one ready-queue manipulation (link/unlink/scan)
	IdlePoll      Time // one poll of the ready queue when idle
	EventPoll     Time // one per-quantum poll of device queues

	// Synchronization.
	LockTAS       Time // interlocked test-and-set
	LockSpinRetry Time // failed test-and-set + minimal-timeout Delay
	LockRelease   Time // releasing a spinlock

	// Storage.
	Alloc        Time // bump allocation (check + increment)
	AllocPerWord Time // zero-filling, per word
	TLABRefill   Time // refilling a per-processor allocation chunk
	StoreCheck   Time // a *taken* store check (recording in the entry table)

	// Scavenging.
	ScavengeBase      Time // fixed rendezvous + root-scan cost
	ScavengePerObject Time // per surviving object
	ScavengePerWord   Time // per surviving word copied

	// Parallel scavenging (heap Config.ParScavenge): the cooperative
	// copying workers pay for their coordination traffic in addition to
	// the per-object/per-word copy costs above.
	ScavengeSteal Time // stealing one grey object from another worker's deque
	ScavengeChunk Time // carving a copy-buffer chunk from a shared space
	ScavengeTerm  Time // the termination-detection barrier before the world resumes

	// Concurrent old-space marking (heap Config.ConcMark): the cycle
	// pays two short stop-the-world windows (snapshot and finalize)
	// plus per-object/per-word scan work spread over bounded slices
	// that interleave with mutator quanta; the sweep runs after the
	// world resumes.
	ConcMarkBegin     Time // snapshot window base: root scan + young-space shading
	ConcMarkPerObject Time // scanning one grey old object to black
	ConcMarkPerWord   Time // per word of a scanned old object (and of the begin-window young walk)
	ConcMarkFinal     Time // finalize window base: termination + remembered-set prune
	ConcMarkSweepObj  Time // per old object walked by the post-cycle sweep

	// Devices.
	DisplayOp Time // posting one command to the display output queue
	InputOp   Time // transferring one input event from the device

	// Memory-bus contention: each bytecode executed while k processors
	// are actively running Smalltalk Processes accrues (k-1)/BusDivisor
	// extra ticks (fractional, via an accumulator). This models the
	// Firefly's shared memory bus degrading under parallel load — the
	// effect behind the paper's idle-competition overhead. Zero
	// disables the model.
	BusDivisor Time
}

// DefaultCosts returns the cost model used throughout the reproduction.
func DefaultCosts() Costs {
	return Costs{
		Bytecode:      1,
		SendExtra:     4,
		CacheProbe:    1,
		CacheReplica:  1,
		LookupPerDict: 10,
		ICProbe:       1,
		ICFill:        2,
		PrimBase:      2,
		FreeListPop:   2,
		ProcessSwitch: 30,
		SchedOp:       6,
		IdlePoll:      25,
		EventPoll:     1,

		LockTAS:       3,
		LockSpinRetry: 15,
		LockRelease:   1,

		Alloc:        5,
		AllocPerWord: 1,
		TLABRefill:   20,
		StoreCheck:   3,

		ScavengeBase:      400,
		ScavengePerObject: 3,
		ScavengePerWord:   1,

		ScavengeSteal: 8,
		ScavengeChunk: 12,
		ScavengeTerm:  60,

		ConcMarkBegin:     300,
		ConcMarkPerObject: 3,
		ConcMarkPerWord:   1,
		ConcMarkFinal:     200,
		ConcMarkSweepObj:  1,

		DisplayOp: 40,
		InputOp:   15,

		BusDivisor: 14,
	}
}
