package firefly

import (
	"reflect"
	"strings"
	"testing"

	"mst/internal/sanitize"
)

// Fault injection: a work function that accesses a guarded structure
// without acquiring its lock must trip the lockset checker; the same
// access under the lock must be clean.
func TestLocksetCatchesSkippedLock(t *testing.T) {
	run := func(skipLock bool) *sanitize.Checker {
		m := New(2, DefaultCosts())
		san := sanitize.New()
		m.SetSanitizer(san)
		san.RegisterGuard("shared-counter", "counter")
		l := m.NewSpinlock("counter", true)
		counter := 0
		body := func(p *Proc) {
			for i := 0; i < 5; i++ {
				if skipLock && p.ID() == 1 {
					// BUG UNDER TEST: unguarded access.
					san.OnAccess(p.ID(), int64(p.Now()), "shared-counter")
					counter++
				} else {
					l.Acquire(p)
					san.OnAccess(p.ID(), int64(p.Now()), "shared-counter")
					counter++
					l.Release(p)
				}
				p.Advance(10)
				p.CheckYield()
			}
		}
		m.Start(0, body)
		m.Start(1, body)
		if r := m.Run(nil); r != StopAllDone {
			t.Fatalf("Run = %v", r)
		}
		return san
	}

	if san := run(false); !san.Clean() {
		t.Fatalf("locked accesses flagged:\n%s", san.Report())
	}
	san := run(true)
	vs := san.Violations()
	if len(vs) != 5 {
		t.Fatalf("got %d violations, want 5 (one per skipped acquisition):\n%s", len(vs), san.Report())
	}
	for _, v := range vs {
		if v.Kind != sanitize.KindUnlockedAccess || v.Proc != 1 || v.Structure != "shared-counter" {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

// A disabled lock (baseline BS: multiprocessor support compiled out)
// exempts its structure — the single-threaded baseline must stay clean
// without ever acquiring.
func TestLocksetDisabledLockExemption(t *testing.T) {
	m := New(1, DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	san.RegisterGuard("shared-counter", "counter")
	l := m.NewSpinlock("counter", false)
	m.Start(0, func(p *Proc) {
		l.Acquire(p) // free no-op; emits no hook
		san.OnAccess(p.ID(), int64(p.Now()), "shared-counter")
		l.Release(p)
		san.OnAccess(p.ID(), int64(p.Now()), "shared-counter")
	})
	m.Run(nil)
	if !san.Clean() {
		t.Fatalf("baseline accesses flagged:\n%s", san.Report())
	}
	if san.Stats().AccessChecks != 2 {
		t.Errorf("access checks = %d, want 2", san.Stats().AccessChecks)
	}
}

// SetSanitizer after lock creation must backfill registrations, so the
// disabled-lock exemption works regardless of attach order.
func TestSanitizerBackfillsLockRegistration(t *testing.T) {
	m := New(1, DefaultCosts())
	l := m.NewSpinlock("late", false)
	san := sanitize.New()
	m.SetSanitizer(san)
	san.RegisterGuard("thing", "late")
	m.Start(0, func(p *Proc) {
		san.OnAccess(p.ID(), int64(p.Now()), "thing")
		_ = l
	})
	m.Run(nil)
	if !san.Clean() {
		t.Fatalf("backfilled disabled lock not exempt:\n%s", san.Report())
	}
}

// Release by a processor that does not hold the lock: the simulator
// panics (host-atomicity enforcement), and the checker — fed directly,
// as it would be by a lock implementation without the panic — reports
// release-not-held.
func TestReleaseByNonHolderPanics(t *testing.T) {
	m := New(2, DefaultCosts())
	l := m.NewSpinlock("owned", true)
	panicked := ""
	m.Start(0, func(p *Proc) {
		l.Acquire(p)
		p.Advance(5)
		p.Yield()
		l.Release(p)
	})
	m.Start(1, func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				panicked = r.(string)
			}
			// Unwind cleanly so proc 0 can finish.
		}()
		p.Advance(1)
		l.Release(p) // BUG UNDER TEST: not the holder
	})
	m.Run(nil)
	if !strings.Contains(panicked, "does not hold") {
		t.Fatalf("release by non-holder did not panic correctly: %q", panicked)
	}
}

// Lock-order cycle: two processors acquiring two real machine locks in
// opposite orders must produce exactly one deterministic cycle report.
func TestLocksetLockOrderCycle(t *testing.T) {
	runOnce := func() []string {
		m := New(2, DefaultCosts())
		san := sanitize.New()
		m.SetSanitizer(san)
		a := m.NewSpinlock("lock-a", true)
		b := m.NewSpinlock("lock-b", true)
		m.Start(0, func(p *Proc) {
			a.Acquire(p)
			b.Acquire(p)
			p.Advance(3)
			b.Release(p)
			a.Release(p)
		})
		m.Start(1, func(p *Proc) {
			p.Advance(50) // in virtual time, after proc 0's critical section
			b.Acquire(p)
			a.Acquire(p)
			p.Advance(3)
			a.Release(p)
			b.Release(p)
		})
		if r := m.Run(nil); r != StopAllDone {
			t.Fatalf("Run = %v", r)
		}
		if len(san.Violations()) != 0 {
			t.Fatalf("order cycle must not produce event violations:\n%s", san.Report())
		}
		return san.LockOrderCycles()
	}
	want := []string{"lock-a -> lock-b -> lock-a"}
	first := runOnce()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("cycles = %v, want %v", first, want)
	}
	// Determinism: identical report on every rerun.
	for i := 0; i < 5; i++ {
		if got := runOnce(); !reflect.DeepEqual(got, first) {
			t.Fatalf("cycle report not deterministic: %v vs %v", got, first)
		}
	}
}

// RW lock hooks: a reader and a writer both satisfy the lockset for
// the guarded structure.
func TestLocksetRWLockCoversGuard(t *testing.T) {
	m := New(1, DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	san.RegisterGuard("shared-cache", "cache")
	l := m.NewRWSpinlock("cache", true)
	m.Start(0, func(p *Proc) {
		l.AcquireRead(p)
		san.OnAccess(p.ID(), int64(p.Now()), "shared-cache")
		l.ReleaseRead(p)
		l.AcquireWrite(p)
		san.OnAccess(p.ID(), int64(p.Now()), "shared-cache")
		l.ReleaseWrite(p)
		// BUG UNDER TEST: access after release.
		san.OnAccess(p.ID(), int64(p.Now()), "shared-cache")
	})
	m.Run(nil)
	vs := san.Violations()
	if len(vs) != 1 || vs[0].Kind != sanitize.KindUnlockedAccess {
		t.Fatalf("want exactly one unlocked-access after release, got:\n%s", san.Report())
	}
}

// The sanitizer must not perturb the simulation: identical virtual
// clocks and lock stats with and without it.
func TestSanitizerMachineDeterminism(t *testing.T) {
	run := func(sanitized bool) (Time, []LockStats) {
		m := New(2, DefaultCosts())
		if sanitized {
			m.SetSanitizer(sanitize.New())
		}
		m.SetQuantum(10)
		l := m.NewSpinlock("hot", true)
		var end Time
		body := func(p *Proc) {
			for i := 0; i < 20; i++ {
				l.Acquire(p)
				p.Advance(15)
				l.Release(p)
				p.CheckYield()
			}
			if p.Now() > end {
				end = p.Now()
			}
		}
		m.Start(0, body)
		m.Start(1, body)
		m.Run(nil)
		return end, m.LockStats()
	}
	plainEnd, plainLocks := run(false)
	checkedEnd, checkedLocks := run(true)
	if plainEnd != checkedEnd {
		t.Errorf("virtual end time diverges: off=%v on=%v", plainEnd, checkedEnd)
	}
	if !reflect.DeepEqual(plainLocks, checkedLocks) {
		t.Errorf("lock stats diverge: off=%+v on=%+v", plainLocks, checkedLocks)
	}
}
