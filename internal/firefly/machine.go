// Package firefly simulates a small shared-memory multiprocessor in the
// spirit of the DEC-SRC Firefly running the V kernel, the hardware and
// operating-system base of the Multiprocessor Smalltalk (MS) project
// (Pallas & Ungar, PLDI 1988).
//
// The simulator is deterministic: each virtual processor has its own
// virtual-time clock, and a driver interleaves bounded quanta of work,
// always resuming the runnable processor with the smallest clock. Work
// running on a processor charges virtual time through the cost model
// (Costs). Virtual spinlocks make lock hold intervals and contention
// windows overlap in virtual time exactly as they would on real parallel
// hardware, so contention, stalls, and utilization are emergent properties
// of the workload; only the primitive operation costs are assumed.
//
// Each processor's work function runs on its own goroutine, but a baton
// protocol guarantees that exactly one goroutine (or the driver) executes
// at any moment, so the simulated machine state needs no host-level
// synchronization and every run is reproducible. The baton passes from a
// yielding processor directly to the next scheduled processor (or stays
// put when the yielder is scheduled again); the driver goroutine is only
// involved when Run has to return. The scheduling decisions are the same
// ones a driver-centered loop would make — only the host goroutine that
// computes them differs — so virtual times are unaffected.
package firefly

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"

	"mst/internal/sanitize"
	"mst/internal/trace"
)

// Time is virtual time in ticks. One tick is one microsecond of simulated
// time; TicksPerMS ticks make one virtual millisecond, the unit reported by
// the Smalltalk millisecond clock and by all benchmarks.
type Time int64

// TicksPerMS is the number of virtual ticks per virtual millisecond.
const TicksPerMS Time = 1000

// Ms converts a tick count to whole virtual milliseconds.
func (t Time) Ms() int64 { return int64(t / TicksPerMS) }

// String formats a Time as fractional virtual milliseconds.
func (t Time) String() string {
	return fmt.Sprintf("%d.%03dms", t/TicksPerMS, t%TicksPerMS)
}

// StopReason reports why Machine.Run returned.
type StopReason int

const (
	// StopUntil means the caller's until predicate became true.
	StopUntil StopReason = iota
	// StopAllDone means every processor's work function returned.
	StopAllDone
	// StopTimeLimit means virtual time exceeded the machine's limit.
	StopTimeLimit
)

func (r StopReason) String() string {
	switch r {
	case StopUntil:
		return "until-satisfied"
	case StopAllDone:
		return "all-done"
	case StopTimeLimit:
		return "time-limit"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Proc is one virtual processor. All methods must be called from the
// processor's own work function (they run under the machine baton).
type Proc struct {
	id      int
	m       *Machine
	clock   Time
	yieldAt Time

	resume  chan struct{}
	started bool
	done    bool
	active  bool

	// Statistics, all in ticks of virtual time.
	busy  Time // productive work
	spin  Time // spinning on contended locks
	stall Time // stalled for stop-the-world collection
	idle  Time // idling with no Smalltalk process to run
}

// ID returns the processor number, 0-based.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's current virtual time.
func (p *Proc) Now() Time { return p.clock }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Advance charges c ticks of productive virtual time to this processor.
func (p *Proc) Advance(c Time) {
	p.clock += c
	p.busy += c
}

// AdvanceSpin charges c ticks of lock-spinning time.
func (p *Proc) AdvanceSpin(c Time) {
	p.clock += c
	p.spin += c
}

// AdvanceIdle charges c ticks of idle (no runnable process) time.
func (p *Proc) AdvanceIdle(c Time) {
	p.clock += c
	p.idle += c
}

// StallUntil advances the processor's clock to t (if t is later),
// accounting the gap as garbage-collection stall time.
func (p *Proc) StallUntil(t Time) {
	if t > p.clock {
		if r := p.m.rec; r != nil {
			r.Emit(trace.KStall, p.id, int64(p.clock), int64(t-p.clock), 0, "")
		}
		p.stall += t - p.clock
		p.clock = t
	}
}

// Stopped reports whether the machine has been shut down; work functions
// must poll it and return promptly when it becomes true.
func (p *Proc) Stopped() bool { return p.m.shutdown.Load() }

// Yield ends this processor's quantum. The next scheduling decision is
// made right here, on this goroutine: when this processor is scheduled
// again Yield simply returns; when another is, the baton passes to it
// directly; only a stop condition (until-predicate, time limit, all
// done) routes through the driver goroutine so Run can return.
func (p *Proc) Yield() {
	m := p.m
	if m.parallel {
		p.parYield()
		return
	}
	if m.shutdown.Load() {
		// Shutdown resumes each processor so its work function can
		// observe Stopped and return; don't reschedule.
		return
	}
	if r := m.rec; r != nil {
		r.Emit(trace.KQuantumEnd, p.id, int64(p.clock), 0, 0, "")
	}
	next, reason, stop := m.schedule()
	if stop {
		m.pendingStop = true
		m.stopReason = reason
		m.toDriver <- struct{}{}
		<-p.resume
		return
	}
	if next == p {
		return
	}
	if r := m.rec; r != nil {
		r.Emit(trace.KHandoff, p.id, int64(p.clock), int64(next.id), 0, "")
	}
	next.resume <- struct{}{}
	<-p.resume
}

// CheckYield yields only when this processor has run past its current
// quantum deadline. Call it at safepoints (all live object references
// flushed to registered GC roots): the stop-the-world scavenger may run on
// another processor while this one is parked here.
func (p *Proc) CheckYield() {
	if p.clock >= p.yieldAt {
		p.Yield()
	}
}

// YieldSlack is the virtual time left before CheckYield would fire. A
// caller that will advance the clock strictly less than the slack can
// skip its intermediate CheckYield safepoints exactly: below the
// deadline they are pure no-ops, and nothing — scheduling, events, a
// stop-the-world rendezvous — can observe the processor in between.
// The compiled execution tier uses this to run fused bytecode groups
// without per-bytecode safepoints.
func (p *Proc) YieldSlack() Time { return p.yieldAt - p.clock }

// Stats is a snapshot of one processor's time accounting.
type ProcStats struct {
	Busy  Time
	Spin  Time
	Stall Time
	Idle  Time
	Clock Time
}

// Stats returns the processor's current time accounting.
func (p *Proc) Stats() ProcStats {
	return ProcStats{Busy: p.busy, Spin: p.spin, Stall: p.stall, Idle: p.idle, Clock: p.clock}
}

// SetActive marks whether this processor is executing a Smalltalk
// Process (true) or idling (false); the count feeds the memory-bus
// contention model.
func (p *Proc) SetActive(active bool) {
	if active == p.active {
		return
	}
	p.active = active
	if active {
		p.m.activeProcs.Add(1)
	} else {
		p.m.activeProcs.Add(-1)
	}
}

// ActiveProcs returns how many processors are executing Smalltalk
// Processes right now. The count is atomic because in parallel host
// mode the bus model reads it from every processor concurrently.
func (m *Machine) ActiveProcs() int { return int(m.activeProcs.Load()) }

type event struct {
	at  Time
	seq int
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Machine is the simulated multiprocessor.
type Machine struct {
	procs   []*Proc
	costs   Costs
	quantum Time
	limit   Time

	events   eventQueue
	eventSeq int

	locks []*Spinlock

	toDriver chan struct{}
	running  bool
	shutdown atomic.Bool

	// until is Run's stop predicate, checked between quanta wherever the
	// scheduling decision happens; pendingStop/stopReason carry a stop
	// detected on a processor goroutine back to Run.
	until       func() bool
	pendingStop bool
	stopReason  StopReason

	switches atomic.Uint64

	// rec is the optional flight recorder; nil means tracing is off and
	// every emission site reduces to one pointer check.
	rec *trace.Recorder

	// san is the optional Table-3 invariant sanitizer (mscheck); nil
	// means checking is off and every hook site reduces to one pointer
	// check. Like the recorder it is pure observation: it never charges
	// virtual time.
	san *sanitize.Checker

	// lat is the optional latency-histogram registry; nil means the
	// latency distributions are off and every recording site reduces to
	// one pointer check. Like the recorder it is pure observation: it
	// never charges virtual time.
	lat *trace.LatencyHists

	// activeProcs counts processors currently executing Smalltalk
	// Processes (not idling). The shared memory bus degrades as more
	// processors actively execute; see Costs.BusDivisor.
	activeProcs atomic.Int32

	// Parallel host mode (see parallel.go). parallel is flipped once,
	// between Runs, while every processor goroutine is parked, so the
	// plain reads on the hot paths are race-free by happens-before.
	parallel bool
	//msvet:stw-safe rendezvous bookkeeping lock: taken only for bounded counter/cond sections by the stopper and by parked processors, never while holding any simulated lock, so it cannot deadlock against the window
	parMu       sync.Mutex
	parCond     *sync.Cond
	parReleased bool // baton-parked goroutines released into free running
	parkedStop  int  // procs parked waiting for the next Run
	parkedSTW   int  // procs parked at a stop-the-world rendezvous
	runGen      uint64
	stopPending bool
	stwOwner    *Proc
	stwDepth    int // re-entrant StopTheWorld nesting by the owner
	gcGen       uint64
	stwEnd      Time // virtual end time of the last stop-the-world pause
	shutdownPar bool

	// GC-assist handoff (RunStopped): while the world is stopped the
	// owner may publish a worker function; processors parked at the
	// rendezvous pick it up once per generation instead of idling.
	gcAssist        func(*Proc)
	gcAssistGen     uint64
	gcAssistSeen    []uint64 // per processor: last assist generation joined
	gcAssistRunning int      // processors currently inside the assist function

	// parFlag is the parallel safepoint fast path: true whenever any
	// processor must divert into parSlow (stop requested, world being
	// stopped, or shutdown).
	parFlag atomic.Bool

	// Concurrent-mark assist (heap Config.ConcMark): while a concurrent
	// mark cycle is active (concMarkOn), every processor reaching a
	// parallel-mode safepoint drains one bounded mark slice through
	// concAssist before resuming its quantum. Both stay nil/false unless
	// the feature is configured, so the safepoint fast paths are
	// unchanged — and virtual times bit-identical — when it is off.
	concAssist func(*Proc)
	concMarkOn atomic.Bool
}

// New creates a machine with n processors and the given cost model.
// The scheduling quantum defaults to 200 ticks.
func New(n int, costs Costs) *Machine {
	if n < 1 {
		panic("firefly: machine needs at least one processor")
	}
	m := &Machine{
		costs:    costs,
		quantum:  200,
		limit:    1 << 62,
		toDriver: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		m.procs = append(m.procs, &Proc{id: i, m: m, resume: make(chan struct{})})
	}
	m.gcAssistSeen = make([]uint64, n)
	return m
}

// NumProcs returns the number of virtual processors.
func (m *Machine) NumProcs() int { return len(m.procs) }

// Proc returns processor i.
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// Costs returns the machine's cost model.
func (m *Machine) Costs() *Costs { return &m.costs }

// SetQuantum sets the scheduling quantum in ticks. Smaller quanta give a
// finer-grained (more faithful) interleaving at more host overhead.
func (m *Machine) SetQuantum(q Time) {
	if q < 1 {
		q = 1
	}
	m.quantum = q
}

// SetTimeLimit caps virtual time; Run returns StopTimeLimit beyond it.
func (m *Machine) SetTimeLimit(t Time) { m.limit = t }

// Switches returns how many processor resumptions the driver performed.
func (m *Machine) Switches() uint64 { return m.switches.Load() }

// SetRecorder attaches a flight recorder; nil detaches it. Recording
// never changes virtual time or any counter, only observes them.
func (m *Machine) SetRecorder(r *trace.Recorder) { m.rec = r }

// Recorder returns the attached flight recorder, or nil.
func (m *Machine) Recorder() *trace.Recorder { return m.rec }

// SetSanitizer attaches an invariant checker; nil detaches it. Locks
// registered before attachment are backfilled so the attach order
// relative to subsystem construction does not matter.
func (m *Machine) SetSanitizer(s *sanitize.Checker) {
	m.san = s
	if s != nil {
		for _, l := range m.locks {
			s.RegisterLock(l.name, l.enabled)
		}
	}
}

// Sanitizer returns the attached invariant checker, or nil.
func (m *Machine) Sanitizer() *sanitize.Checker { return m.san }

// SetLatencyHists attaches the latency-distribution registry; nil
// detaches it. Locks registered before attachment are backfilled with
// their acquire-wait histograms so the attach order relative to
// subsystem construction does not matter.
func (m *Machine) SetLatencyHists(l *trace.LatencyHists) {
	m.lat = l
	for _, lk := range m.locks {
		if l != nil && lk.enabled {
			lk.waitHist = l.LockHist(lk.name)
		} else {
			lk.waitHist = nil
		}
	}
}

// LatencyHists returns the attached latency registry, or nil.
func (m *Machine) LatencyHists() *trace.LatencyHists { return m.lat }

// SetConcAssist installs the concurrent-marking assist function. The
// heap registers it once at construction when Config.ConcMark is on;
// it runs at parallel-mode safepoints while SetConcMarkActive(true)
// holds, letting every processor drain bounded mark slices
// cooperatively. nil detaches it.
func (m *Machine) SetConcAssist(fn func(p *Proc)) { m.concAssist = fn }

// SetConcMarkActive flips the safepoint-visible "a concurrent mark
// cycle is in progress" flag. The collector sets it after the snapshot
// window and clears it before the finalize window.
func (m *Machine) SetConcMarkActive(on bool) { m.concMarkOn.Store(on) }

// Start installs fn as processor i's work function and starts its
// goroutine, parked until the driver first schedules it. The function
// should loop until p.Stopped() reports true.
func (m *Machine) Start(i int, fn func(p *Proc)) {
	p := m.procs[i]
	if p.started {
		panic(fmt.Sprintf("firefly: processor %d already started", i))
	}
	p.started = true
	go func() {
		<-p.resume
		fn(p)
		if m.parallel {
			m.parMu.Lock()
			p.done = true
			m.parCond.Broadcast()
			m.parMu.Unlock()
			return
		}
		p.done = true
		m.toDriver <- struct{}{}
	}()
}

// At schedules fn to run at virtual time t (from the driver, between
// processor quanta, once every processor clock has reached t). Use it to
// inject external stimuli such as input events; fn must only touch
// device-level state, never the Smalltalk heap.
func (m *Machine) At(t Time, fn func()) {
	m.eventSeq++
	heap.Push(&m.events, &event{at: t, seq: m.eventSeq, fn: fn})
}

// minClock returns the smallest clock among live processors and that
// processor, or nil when all processors are done.
func (m *Machine) minClock() (*Proc, Time) {
	var best *Proc
	for _, p := range m.procs {
		if p.done || !p.started {
			continue
		}
		if best == nil || p.clock < best.clock {
			best = p
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, best.clock
}

// secondClock returns the smallest clock among live processors other
// than p, or p's own clock when p is the only live processor.
func (m *Machine) secondClock(p *Proc) Time {
	best := Time(-1)
	for _, q := range m.procs {
		if q == p || q.done || !q.started {
			continue
		}
		if best < 0 || q.clock < best {
			best = q.clock
		}
	}
	if best < 0 {
		return p.clock
	}
	return best
}

// schedule makes one driver-loop decision: check the stop conditions,
// deliver external events that are due at or before the current virtual
// moment, and pick the processor with the smallest clock for its next
// quantum. It runs on whichever goroutine holds the baton. stop=true
// means Run must return reason instead of dispatching.
func (m *Machine) schedule() (next *Proc, reason StopReason, stop bool) {
	if m.until != nil && m.until() {
		return nil, StopUntil, true
	}
	p, min := m.minClock()
	if p == nil {
		return nil, StopAllDone, true
	}
	for len(m.events) > 0 && m.events[0].at <= min {
		e := heap.Pop(&m.events).(*event)
		e.fn()
	}
	if min > m.limit {
		return nil, StopTimeLimit, true
	}
	second := m.secondClock(p)
	p.yieldAt = second + m.quantum
	if lh := m.lat; lh != nil {
		// Dispatch latency: how far the chosen (minimum-clock) processor
		// lags the rest of the system when its quantum starts. Purely
		// derived from the clocks; recording charges nothing.
		lh.Dispatch.Record(int64(second - p.clock))
	}
	m.switches.Add(1)
	if m.rec != nil {
		m.rec.Emit(trace.KQuantumStart, p.id, int64(p.clock), 0, 0, "")
	}
	return p, 0, false
}

// Run drives the machine until the predicate becomes true (checked between
// quanta), every work function returns, or virtual time passes the limit.
// Run may be called repeatedly to continue the same machine.
func (m *Machine) Run(until func() bool) StopReason {
	if m.running {
		panic("firefly: Run is not reentrant")
	}
	if m.shutdown.Load() {
		panic("firefly: machine is shut down")
	}
	m.running = true
	defer func() { m.running = false }()
	if m.parallel {
		return m.runParallel(until)
	}
	m.until = until
	defer func() { m.until = nil }()

	for {
		next, reason, stop := m.schedule()
		if stop {
			return reason
		}
		next.resume <- struct{}{}
		<-m.toDriver
		if m.pendingStop {
			// A processor's Yield detected a stop condition and handed
			// the baton back.
			m.pendingStop = false
			return m.stopReason
		}
		// Otherwise a work function returned; dispatch the next
		// processor from here.
	}
}

// StallOthers advances every processor except p to time t, accounting the
// gap as stop-the-world stall. The scavenger calls this when it finishes.
// In parallel host mode the stall is real (the rendezvous barrier in
// StopTheWorld); each processor accounts its own pause as it wakes, so
// this cross-processor clock write must not happen.
func (m *Machine) StallOthers(p *Proc, t Time) {
	if m.parallel {
		return
	}
	for _, q := range m.procs {
		if q != p && !q.done {
			q.StallUntil(t)
		}
	}
}

// Shutdown tells every work function to return and waits for them. The
// machine cannot be used afterwards.
func (m *Machine) Shutdown() {
	if m.shutdown.Load() {
		return
	}
	m.shutdown.Store(true)
	if m.parallel {
		m.shutdownParallel()
		return
	}
	for _, p := range m.procs {
		for p.started && !p.done {
			p.resume <- struct{}{}
			<-m.toDriver
		}
	}
}

// LockStats describes one virtual spinlock's history.
type LockStats struct {
	Name         string
	Acquisitions uint64
	Contentions  uint64
	SpinTime     Time
}

// LockStats returns statistics for every registered lock, in registration
// order.
func (m *Machine) LockStats() []LockStats {
	out := make([]LockStats, 0, len(m.locks))
	for _, l := range m.locks {
		out = append(out, LockStats{
			Name:         l.name,
			Acquisitions: l.acquisitions.Load(),
			Contentions:  l.contentions.Load(),
			SpinTime:     Time(l.spinTime.Load()),
		})
	}
	return out
}
