package firefly

import (
	"fmt"
	"sync/atomic"

	"mst/internal/trace"
)

// Spinlock is a virtual spinlock in the style of the V system locks used
// by MS: an interlocked test-and-set, and on failure a minimal-timeout
// Delay before retrying.
//
// The simulation exploits a structural property of MS's locks: every
// critical section is *brief and host-atomic* — it performs no operation
// that could hand control to another virtual processor (the paper's
// criterion for choosing serialization: "access is brief and relatively
// infrequent"). The lock therefore never needs to block at the host
// level; it is a virtual-time reservation. Acquire at clock t on a lock
// last free at time f charges test-and-set time, and when t < f — the
// lock was held during [t, f) by a processor that is ahead in virtual
// time — the acquirer spins in Delay-retry quanta until f. Contention,
// spin time, and serialization delays are thus fully modelled in virtual
// time while the host execution stays simple and deterministic, and
// acquiring a lock is never a garbage-collection point.
//
// The held flag exists only to enforce the host-atomicity invariant: a
// critical section that yields (or scavenges, which stalls the other
// processors but leaves the holder marked) would be a simulator bug and
// panics.
//
// A disabled lock (baseline-BS mode, with multiprocessor support
// compiled out) costs nothing and keeps no state.
// In parallel host mode the virtual-time reservation no longer works
// (there is no global ordering of clocks to reserve against), so the
// lock becomes what it models: an interlocked test-and-set word
// (state; 0 free, holder id + 1 otherwise) acquired with CAS and
// host-level exponential backoff. The same cost model still charges
// the test-and-set and each spin retry to the acquirer's own virtual
// clock, so contention remains visible in the virtual statistics.
type Spinlock struct {
	name    string
	enabled bool
	m       *Machine
	held    bool
	holder  int
	freeAt  Time // virtual time of the most recent release

	// state is the parallel-mode lock word: 0 free, holder id + 1.
	state atomic.Int32

	acquisitions atomic.Uint64
	contentions  atomic.Uint64
	spinTime     atomic.Int64 // ticks

	// waitHist, when the latency registry is attached, receives every
	// acquire's virtual wait (spin ticks; 0 when uncontended). Pure
	// observation: recording never charges virtual time.
	waitHist *trace.Histogram
}

// NewSpinlock registers a named spinlock with the machine (for
// statistics) and returns it. When enabled is false the lock is a free
// no-op, modelling the baseline system.
func (m *Machine) NewSpinlock(name string, enabled bool) *Spinlock {
	l := &Spinlock{name: name, enabled: enabled, m: m}
	m.locks = append(m.locks, l)
	if s := m.san; s != nil {
		s.RegisterLock(name, enabled)
	}
	if lh := m.lat; lh != nil && enabled {
		l.waitHist = lh.LockHist(name)
	}
	return l
}

// recordWait feeds one acquire's virtual wait (0 when uncontended) to
// the lock's latency histogram, when one is attached.
func (l *Spinlock) recordWait(spin Time) {
	if hh := l.waitHist; hh != nil {
		hh.Record(int64(spin))
	}
}

// Acquire takes the lock at the processor's current virtual time,
// spinning (in virtual time only) while the lock was held.
func (l *Spinlock) Acquire(p *Proc) {
	if !l.enabled {
		return
	}
	if l.m.parallel {
		l.acquirePar(p)
		return
	}
	c := p.m.costs
	p.Advance(c.LockTAS)
	if l.held {
		panic(fmt.Sprintf("firefly: processor %d acquired lock %q while processor %d is inside the critical section (a critical section must not yield)",
			p.id, l.name, l.holder))
	}
	var spin Time
	if p.clock < l.freeAt {
		// The lock is held during [p.clock, freeAt) by a processor
		// ahead in virtual time: spin in test-and-set + Delay rounds.
		l.contentions.Add(1)
		wait := l.freeAt - p.clock
		rounds := (wait + c.LockSpinRetry - 1) / c.LockSpinRetry
		spin = rounds * c.LockSpinRetry
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockContend, p.id, int64(p.clock), int64(spin), 0, l.name)
		}
		p.AdvanceSpin(spin)
		l.spinTime.Add(int64(spin))
	}
	l.held = true
	l.holder = p.id
	l.acquisitions.Add(1)
	l.recordWait(spin)
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 1, l.name)
	}
	if s := p.m.san; s != nil {
		s.OnAcquire(p.id, int64(p.clock), l.name)
	}
}

// acquirePar is the parallel-host-mode Acquire: a real CAS loop with
// exponential host backoff. Virtual time is charged exactly as the
// model prescribes — one test-and-set, then one LockSpinRetry round
// per failed retry.
func (l *Spinlock) acquirePar(p *Proc) {
	c := p.m.costs
	p.Advance(c.LockTAS)
	me := int32(p.id) + 1
	if l.state.CompareAndSwap(0, me) {
		l.acquisitions.Add(1)
		l.recordWait(0)
		l.emitAcquire(p)
		return
	}
	l.contentions.Add(1)
	var spin Time
	backoff := 1
	for {
		backoff = parBackoff(backoff)
		p.AdvanceSpin(c.LockSpinRetry)
		spin += c.LockSpinRetry
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, me) {
			break
		}
	}
	l.spinTime.Add(int64(spin))
	l.acquisitions.Add(1)
	l.recordWait(spin)
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockContend, p.id, int64(p.clock), int64(spin), 0, l.name)
	}
	l.emitAcquire(p)
}

func (l *Spinlock) emitAcquire(p *Proc) {
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 1, l.name)
	}
	if s := p.m.san; s != nil {
		s.OnAcquire(p.id, int64(p.clock), l.name)
	}
}

// TryAcquire takes the lock if it is free at the processor's current
// virtual time, charging only test-and-set time. It reports whether the
// lock was acquired.
func (l *Spinlock) TryAcquire(p *Proc) bool {
	if !l.enabled {
		return true
	}
	if l.m.parallel {
		p.Advance(p.m.costs.LockTAS)
		if l.state.CompareAndSwap(0, int32(p.id)+1) {
			l.acquisitions.Add(1)
			l.recordWait(0)
			l.emitAcquire(p)
			return true
		}
		l.contentions.Add(1)
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockContend, p.id, int64(p.clock), 0, 0, l.name)
		}
		return false
	}
	p.Advance(p.m.costs.LockTAS)
	if l.held {
		panic(fmt.Sprintf("firefly: processor %d probed lock %q inside processor %d's critical section",
			p.id, l.name, l.holder))
	}
	if p.clock < l.freeAt {
		l.contentions.Add(1)
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockContend, p.id, int64(p.clock), 0, 0, l.name)
		}
		return false
	}
	l.held = true
	l.holder = p.id
	l.acquisitions.Add(1)
	l.recordWait(0)
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 1, l.name)
	}
	if s := p.m.san; s != nil {
		s.OnAcquire(p.id, int64(p.clock), l.name)
	}
	return true
}

// Release frees the lock; the critical section's virtual duration is the
// holder's clock advance between Acquire and Release.
func (l *Spinlock) Release(p *Proc) {
	if !l.enabled {
		return
	}
	if l.m.parallel {
		if l.state.Load() != int32(p.id)+1 {
			panic(fmt.Sprintf("firefly: processor %d releasing lock %q it does not hold", p.id, l.name))
		}
		p.Advance(p.m.costs.LockRelease)
		l.state.Store(0)
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockRelease, p.id, int64(p.clock), 0, 1, l.name)
		}
		if s := p.m.san; s != nil {
			s.OnRelease(p.id, int64(p.clock), l.name)
		}
		return
	}
	if !l.held || l.holder != p.id {
		panic(fmt.Sprintf("firefly: processor %d releasing lock %q it does not hold", p.id, l.name))
	}
	l.held = false
	p.Advance(p.m.costs.LockRelease)
	l.freeAt = p.clock
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockRelease, p.id, int64(p.clock), 0, 1, l.name)
	}
	if s := p.m.san; s != nil {
		s.OnRelease(p.id, int64(p.clock), l.name)
	}
}

// Held reports whether the lock is currently held (always false when
// disabled, and false between host operations by construction in the
// deterministic mode).
func (l *Spinlock) Held() bool {
	if l.m != nil && l.m.parallel {
		return l.state.Load() != 0
	}
	return l.held
}

// Name returns the lock's registration name.
func (l *Spinlock) Name() string { return l.name }

// RWSpinlock is a virtual two-level (readers-writer) lock, the scheme
// MS first used for its shared method cache ("a two-level locking
// scheme to allow multiple readers"). Readers overlap freely; a writer
// waits for every outstanding read and excludes everything until it
// releases. Like Spinlock it is a virtual-time reservation: critical
// sections are host-atomic and only the timing is modelled.
// In parallel host mode the lock is a real reader-count word (rw: -1
// writer, otherwise the number of readers inside), CAS-acquired with
// host backoff like Spinlock.
type RWSpinlock struct {
	inner *Spinlock // carries name/enabled/stats; its freeAt is the write horizon
	// readsEnd is the virtual time the last overlapping read finishes.
	readsEnd Time

	rw atomic.Int32
}

// NewRWSpinlock registers a named readers-writer lock.
func (m *Machine) NewRWSpinlock(name string, enabled bool) *RWSpinlock {
	return &RWSpinlock{inner: m.NewSpinlock(name, enabled)}
}

// AcquireRead enters a read-side critical section at the processor's
// virtual time: it waits only for a pending writer, never for other
// readers.
func (l *RWSpinlock) AcquireRead(p *Proc) {
	in := l.inner
	if !in.enabled {
		return
	}
	c := p.m.costs
	if in.m.parallel {
		p.Advance(c.LockTAS)
		in.acquisitions.Add(1)
		contended := false
		var spin Time
		backoff := 1
		for {
			if v := l.rw.Load(); v >= 0 && l.rw.CompareAndSwap(v, v+1) {
				break
			}
			if !contended {
				contended = true
				in.contentions.Add(1)
			}
			backoff = parBackoff(backoff)
			p.AdvanceSpin(c.LockSpinRetry)
			spin += c.LockSpinRetry
		}
		if contended {
			in.spinTime.Add(int64(spin))
			if r := p.m.rec; r != nil {
				r.Emit(trace.KLockContend, p.id, int64(p.clock), int64(spin), 0, in.name)
			}
		}
		in.recordWait(spin)
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 0, in.name)
		}
		if s := p.m.san; s != nil {
			s.OnAcquire(p.id, int64(p.clock), in.name)
		}
		return
	}
	p.Advance(c.LockTAS)
	in.acquisitions.Add(1)
	var spin Time
	if p.clock < in.freeAt { // a writer holds the lock until freeAt
		in.contentions.Add(1)
		wait := in.freeAt - p.clock
		rounds := (wait + c.LockSpinRetry - 1) / c.LockSpinRetry
		spin = rounds * c.LockSpinRetry
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockContend, p.id, int64(p.clock), int64(spin), 0, in.name)
		}
		p.AdvanceSpin(spin)
		in.spinTime.Add(int64(spin))
	}
	in.recordWait(spin)
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 0, in.name)
	}
	if s := p.m.san; s != nil {
		s.OnAcquire(p.id, int64(p.clock), in.name)
	}
}

// ReleaseRead leaves the read-side section, extending the read horizon
// a writer must wait for.
func (l *RWSpinlock) ReleaseRead(p *Proc) {
	if !l.inner.enabled {
		return
	}
	p.Advance(p.m.costs.LockRelease)
	if l.inner.m.parallel {
		if l.rw.Add(-1) < 0 {
			panic(fmt.Sprintf("firefly: processor %d read-releasing lock %q it does not read-hold", p.id, l.inner.name))
		}
	} else if p.clock > l.readsEnd {
		l.readsEnd = p.clock
	}
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockRelease, p.id, int64(p.clock), 0, 0, l.inner.name)
	}
	if s := p.m.san; s != nil {
		s.OnRelease(p.id, int64(p.clock), l.inner.name)
	}
}

// AcquireWrite enters the exclusive section: it waits for the previous
// writer and for every outstanding reader.
func (l *RWSpinlock) AcquireWrite(p *Proc) {
	in := l.inner
	if !in.enabled {
		return
	}
	c := p.m.costs
	if in.m.parallel {
		p.Advance(c.LockTAS)
		in.acquisitions.Add(1)
		contended := false
		var spin Time
		backoff := 1
		for !l.rw.CompareAndSwap(0, -1) {
			if !contended {
				contended = true
				in.contentions.Add(1)
			}
			backoff = parBackoff(backoff)
			p.AdvanceSpin(c.LockSpinRetry)
			spin += c.LockSpinRetry
		}
		if contended {
			in.spinTime.Add(int64(spin))
			if r := p.m.rec; r != nil {
				r.Emit(trace.KLockContend, p.id, int64(p.clock), int64(spin), 0, in.name)
			}
		}
		in.recordWait(spin)
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 1, in.name)
		}
		if s := p.m.san; s != nil {
			s.OnAcquire(p.id, int64(p.clock), in.name)
		}
		return
	}
	p.Advance(c.LockTAS)
	in.acquisitions.Add(1)
	horizon := in.freeAt
	if l.readsEnd > horizon {
		horizon = l.readsEnd
	}
	var spin Time
	if p.clock < horizon {
		in.contentions.Add(1)
		wait := horizon - p.clock
		rounds := (wait + c.LockSpinRetry - 1) / c.LockSpinRetry
		spin = rounds * c.LockSpinRetry
		if r := p.m.rec; r != nil {
			r.Emit(trace.KLockContend, p.id, int64(p.clock), int64(spin), 0, in.name)
		}
		p.AdvanceSpin(spin)
		in.spinTime.Add(int64(spin))
	}
	in.recordWait(spin)
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockAcquire, p.id, int64(p.clock), 0, 1, in.name)
	}
	if s := p.m.san; s != nil {
		s.OnAcquire(p.id, int64(p.clock), in.name)
	}
}

// ReleaseWrite leaves the exclusive section.
func (l *RWSpinlock) ReleaseWrite(p *Proc) {
	if !l.inner.enabled {
		return
	}
	p.Advance(p.m.costs.LockRelease)
	if l.inner.m.parallel {
		if !l.rw.CompareAndSwap(-1, 0) {
			panic(fmt.Sprintf("firefly: processor %d write-releasing lock %q it does not write-hold", p.id, l.inner.name))
		}
	} else {
		l.inner.freeAt = p.clock
	}
	if r := p.m.rec; r != nil {
		r.Emit(trace.KLockRelease, p.id, int64(p.clock), 0, 1, l.inner.name)
	}
	if s := p.m.san; s != nil {
		s.OnRelease(p.id, int64(p.clock), l.inner.name)
	}
}
