// Parallel host mode: the virtual processors run concurrently on real
// goroutines instead of under the deterministic baton protocol.
//
// The machine still boots deterministically (image construction is a
// single-threaded program), then flips once, between Runs, with
// SetParallel(true). From the first parallel Run on, every live
// processor goroutine runs freely; virtual time is still charged per
// processor through the same cost model, but the interleaving is
// whatever the host scheduler produces, so virtual clocks are no
// longer reproducible run to run. What is preserved — and what the
// parallel stress tests check — are the workload's own invariants:
// the work gets done, the heap stays consistent, and the Table 3
// concurrency disciplines hold under the Go race detector.
//
// Coordination points:
//
//   - parYield is the parallel safepoint, reached from the same
//     Yield/CheckYield sites as the baton scheduler. The fast path is
//     one atomic flag load; the slow path (parSlow) parks the
//     processor under parMu for a stop request, a stop-the-world
//     rendezvous, or shutdown.
//   - Run(until) wakes the processors, then sleeps on parCond until
//     some processor's safepoint sees the predicate become true (or
//     the time limit pass) and every other processor has parked.
//   - StopTheWorld/ResumeTheWorld implement the paper's serialized-GC
//     strategy for real: the scavenging processor sets parFlag and
//     waits until every other live processor is parked at a
//     safepoint, runs alone, then releases the world. Waking
//     processors account the pause against their own clocks as stall
//     time, mirroring what StallOthers does in the baton mode.
package firefly

import (
	"runtime"
	"sync"

	"mst/internal/trace"
)

// SetParallel flips the machine into parallel host mode. It must be
// called between Runs (every processor parked); the flip is one-way.
// The deterministic baton mode stays the default for machines that
// never call this.
func (m *Machine) SetParallel(on bool) {
	if !on || m.parallel {
		return
	}
	if m.running {
		panic("firefly: SetParallel while the machine is running")
	}
	if m.shutdown.Load() {
		panic("firefly: SetParallel on a shut-down machine")
	}
	m.parCond = sync.NewCond(&m.parMu)
	m.parallel = true
}

// Parallel reports whether the machine is in parallel host mode.
func (m *Machine) Parallel() bool { return m.parallel }

// parLive counts started, not-done processors. Callers hold parMu.
func (m *Machine) parLive() int {
	n := 0
	for _, p := range m.procs {
		if p.started && !p.done {
			n++
		}
	}
	return n
}

// parStop requests that the current parallel Run stop for reason. The
// first request wins; every processor will park at its next safepoint.
func (m *Machine) parStop(reason StopReason) {
	m.parMu.Lock()
	if !m.stopPending {
		m.stopPending = true
		m.stopReason = reason
		m.parFlag.Store(true)
		m.parCond.Broadcast()
	}
	m.parMu.Unlock()
}

// parYield is the parallel-mode body of Proc.Yield: start a fresh
// quantum, evaluate the run's stop conditions, and divert into the
// slow path when anything needs a rendezvous. The quantum here is
// per-processor wall-clock-free bookkeeping — it only bounds how much
// virtual time passes between safepoint checks.
func (p *Proc) parYield() {
	m := p.m
	if r := m.rec; r != nil {
		r.Emit(trace.KQuantumEnd, p.id, int64(p.clock), 0, 0, "")
	}
	p.yieldAt = p.clock + m.quantum
	if u := m.until; u != nil && u() {
		m.parStop(StopUntil)
	} else if p.clock > m.limit {
		m.parStop(StopTimeLimit)
	}
	if m.parFlag.Load() {
		m.parSlow(p)
	}
	if m.concMarkOn.Load() {
		if f := m.concAssist; f != nil {
			f(p)
		}
	}
	if r := m.rec; r != nil {
		r.Emit(trace.KQuantumStart, p.id, int64(p.clock), 0, 0, "")
	}
}

// parSlow handles everything the safepoint fast path diverted: park
// for a stop-the-world pause, park for the end of the current Run, or
// fall through on shutdown (the work function will observe Stopped and
// return). A processor parked for the Run's end stays parked until the
// next Run bumps runGen.
func (m *Machine) parSlow(p *Proc) {
	m.parMu.Lock()
	for {
		if m.shutdownPar {
			break
		}
		if owner := m.stwOwner; owner != nil && owner != p {
			gen := m.gcGen
			m.parkedSTW++
			m.parCond.Broadcast()
			for m.stwOwner != nil && m.gcGen == gen && !m.shutdownPar {
				if m.parAssist(p) {
					continue
				}
				m.parCond.Wait()
			}
			m.parkedSTW--
			// The world ran again at stwEnd; the pause was a real GC
			// stall, accounted on this processor's own clock.
			if m.stwEnd > p.clock {
				p.stall += m.stwEnd - p.clock
				p.clock = m.stwEnd
			}
			continue
		}
		if m.stopPending {
			gen := m.runGen
			m.parkedStop++
			m.parCond.Broadcast()
			for m.runGen == gen && !m.shutdownPar {
				if m.parAssist(p) {
					continue
				}
				m.parCond.Wait()
			}
			m.parkedStop--
			continue
		}
		break
	}
	m.parMu.Unlock()
}

// runParallel is Run's parallel-mode body: wake every processor, wait
// for a stop condition to park them all, report why.
func (m *Machine) runParallel(until func() bool) StopReason {
	if until != nil && until() {
		return StopUntil
	}
	m.parMu.Lock()
	m.until = until
	m.stopPending = false
	m.stopReason = StopUntil
	m.shutdownParCheck()
	m.runGen++
	m.recomputeParFlag()
	m.parCond.Broadcast()
	first := !m.parReleased
	m.parReleased = true
	m.parMu.Unlock()

	if first {
		// Every processor goroutine is still parked on its baton
		// channel (boot ran under the deterministic driver). Release
		// them into free running; from here on they only ever park on
		// parCond.
		for _, p := range m.procs {
			if p.started && !p.done {
				p.resume <- struct{}{}
			}
		}
	}

	m.parMu.Lock()
	for {
		live := m.parLive()
		if live == 0 {
			m.stopPending = true
			m.stopReason = StopAllDone
			break
		}
		if m.stopPending && m.stwOwner == nil && m.parkedStop == live {
			break
		}
		m.parCond.Wait()
	}
	reason := m.stopReason
	m.until = nil
	m.parMu.Unlock()
	return reason
}

// recomputeParFlag derives the safepoint flag from the slow-path
// conditions. Callers hold parMu.
func (m *Machine) recomputeParFlag() {
	m.parFlag.Store(m.stopPending || m.stwOwner != nil || m.shutdownPar)
}

func (m *Machine) shutdownParCheck() {
	if m.shutdownPar {
		panic("firefly: Run after Shutdown")
	}
}

// StopTheWorld brings every other live processor to a safepoint and
// parks it there; on return the calling processor runs alone. It
// reports false when another processor's collection ran while the
// caller was waiting its turn — the caller should then skip its own
// collection and re-examine the heap. In deterministic baton mode the
// world is always stopped by construction and the call is a no-op
// returning true.
func (m *Machine) StopTheWorld(p *Proc) bool {
	if !m.parallel {
		return true
	}
	m.parMu.Lock()
	if m.stwOwner == p {
		// Nested stop by the owner (a full collection scavenges first):
		// the world is already stopped.
		m.stwDepth++
		m.parMu.Unlock()
		return true
	}
	for m.stwOwner != nil {
		gen := m.gcGen
		m.parkedSTW++
		m.parCond.Broadcast()
		for m.stwOwner != nil && m.gcGen == gen && !m.shutdownPar {
			if m.parAssist(p) {
				continue
			}
			m.parCond.Wait()
		}
		m.parkedSTW--
		if m.stwEnd > p.clock {
			p.stall += m.stwEnd - p.clock
			p.clock = m.stwEnd
		}
		if m.gcGen != gen || m.shutdownPar {
			m.parCond.Broadcast()
			m.parMu.Unlock()
			return false
		}
	}
	m.stwOwner = p
	m.parFlag.Store(true)
	for m.parkedStop+m.parkedSTW < m.parLive()-1 && !m.shutdownPar {
		m.parCond.Wait()
	}
	m.parMu.Unlock()
	return true
}

// ResumeTheWorld releases the processors parked by StopTheWorld. The
// caller's current virtual time is published as the pause's end; each
// waking processor advances its own clock to it as stall time.
func (m *Machine) ResumeTheWorld(p *Proc) {
	if !m.parallel {
		return
	}
	m.parMu.Lock()
	if m.stwOwner != p {
		panic("firefly: ResumeTheWorld by a processor that did not stop it")
	}
	if m.stwDepth > 0 {
		m.stwDepth--
		m.parMu.Unlock()
		return
	}
	m.stwOwner = nil
	m.gcGen++
	if p.clock > m.stwEnd {
		m.stwEnd = p.clock
	}
	m.recomputeParFlag()
	m.parCond.Broadcast()
	m.parMu.Unlock()
}

// parAssist lets a processor parked at a rendezvous join the
// stop-the-world owner's published worker function (RunStopped) instead
// of idling through the pause. Called with parMu held from the park
// loops; returns true after running the function (the caller re-checks
// its wait condition). Each processor joins a given assist generation
// at most once.
func (m *Machine) parAssist(p *Proc) bool {
	fn := m.gcAssist
	if fn == nil || m.gcAssistSeen[p.id] == m.gcAssistGen {
		return false
	}
	m.gcAssistSeen[p.id] = m.gcAssistGen
	m.gcAssistRunning++
	m.parMu.Unlock()
	fn(p)
	m.parMu.Lock()
	m.gcAssistRunning--
	m.parCond.Broadcast()
	return true
}

// RunStopped runs fn on the stop-the-world owner p and, in parallel
// host mode, publishes it to every processor parked at the rendezvous:
// each parked processor runs fn(q) on its own goroutine exactly once,
// concurrently with the owner. RunStopped returns only after the owner
// and every joined helper have finished, so callers may rely on fn's
// effects being complete and on running alone again. Correctness must
// never depend on helpers joining: a processor that reaches its park
// loop late (or not at all, in deterministic mode) simply never runs
// fn, and the owner's own invocation must be able to finish the whole
// job. In deterministic baton mode the world is stopped by
// construction and RunStopped is just fn(p).
func (m *Machine) RunStopped(p *Proc, fn func(q *Proc)) {
	if !m.parallel {
		fn(p)
		return
	}
	m.parMu.Lock()
	if m.stwOwner != p {
		m.parMu.Unlock()
		panic("firefly: RunStopped without owning the stopped world")
	}
	m.gcAssist = fn
	m.gcAssistGen++
	m.parCond.Broadcast()
	m.parMu.Unlock()

	fn(p)

	m.parMu.Lock()
	m.gcAssist = nil
	for m.gcAssistRunning > 0 {
		m.parCond.Wait()
	}
	m.parMu.Unlock()
}

// shutdownParallel implements Shutdown for a machine in parallel mode:
// set the flags every loop polls, wake all parked processors, and wait
// for every work function to return.
func (m *Machine) shutdownParallel() {
	m.parMu.Lock()
	m.shutdownPar = true
	m.parFlag.Store(true)
	m.parCond.Broadcast()
	released := m.parReleased
	m.parReleased = true
	m.parMu.Unlock()

	if !released {
		// Shutdown before the first parallel Run: the goroutines are
		// still baton-parked.
		for _, p := range m.procs {
			if p.started && !p.done {
				p.resume <- struct{}{}
			}
		}
	}

	m.parMu.Lock()
	for m.parLive() > 0 {
		m.parCond.Wait()
	}
	m.parMu.Unlock()
}

// parBackoff spins briefly at the host level between lock retries,
// yielding the OS thread so single-core hosts make progress. The
// returned next backoff doubles up to a cap.
func parBackoff(n int) int {
	for i := 0; i < n; i++ {
		// busy wait
	}
	runtime.Gosched()
	if n < 1<<12 {
		return n << 1
	}
	return n
}
