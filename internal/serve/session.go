package serve

// The tenant session protocol: every tenant image carries one
// ServeSession instance (the global `Session`), installed in the base
// image before the checkpoint is captured, so every clone starts from
// the same session state and mutates only its own copy.
//
// The request catalog below is the server's workload vocabulary: each
// open-loop arrival names one catalog entry, and the generator picks
// entries deterministically. The mix covers the server-relevant axes —
// pure compute, session-state mutation, allocation pressure (scavenge
// traffic), and string building — without any request depending on host
// state, so a tenant's virtual service time is a pure function of its
// request history.

// sessionSource is the chunk-format source filed into the base image.
const sessionSource = `
Object subclass: #ServeSession
	instanceVariableNames: 'hits notes'
	category: 'Server'!

!ServeSession class methodsFor: 'instance creation'!
open
	| s |
	s := self new.
	s setUp.
	^s! !

!ServeSession methodsFor: 'initialization'!
setUp
	hits := 0.
	notes := Array new: 0! !

!ServeSession methodsFor: 'serving'!
bump
	"Session-state mutation: count a hit."
	hits := hits + 1.
	^hits!
hits
	^hits!
note: x
	"Append to the session log, growing it by copy: steady allocation
	 that scales with session age, the way a real session's working set
	 creeps."
	| n |
	n := Array new: notes size + 1.
	1 to: notes size do: [:i | n at: i put: (notes at: i)].
	n at: n size put: x.
	notes := n.
	^n size!
digest
	"Render the session state: sends, allocation, string building."
	| s |
	s := WriteStream on: (String new: 16).
	hits printOn: s.
	s nextPut: $/.
	notes size printOn: s.
	^s contents! !
`

// sessionInstall runs in the base image after file-in: every clone
// inherits its own private copy of the Session object.
const sessionInstall = `Smalltalk at: 'Session' put: ServeSession open. Session hits`

// RequestKind is one catalog entry.
type RequestKind struct {
	Name   string
	Source string
}

// Catalog is the request vocabulary, indexed by Request.Kind.
var Catalog = []RequestKind{
	{"bump", "Session bump"},
	{"digest", "Session digest"},
	{"note", "Session note: Session hits"},
	{"sum", "(1 to: 50) inject: 0 into: [:a :b | a + b]"},
	{"alloc", "| a | a := Array new: 48. 1 to: 48 do: [:i | a at: i put: i * i]. a at: 48"},
}
