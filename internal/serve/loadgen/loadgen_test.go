package loadgen

import (
	"reflect"
	"testing"
)

// TestScheduleDeterministic: the schedule is a pure function of the
// config — same seed, bit-identical schedule; different seed, a
// different one.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Requests: 500, MeanGapTicks: 800, Tenants: 4, Kinds: 5, HotTenant: -1}
	a := Schedule(cfg)
	b := Schedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	cfg.Seed = 43
	c := Schedule(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleShape: arrival times are strictly increasing (gaps are
// at least mean/2 >= 1), tenants and kinds stay in range, and the
// request count is exact.
func TestScheduleShape(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 1000, MeanGapTicks: 300, Tenants: 6, Kinds: 5, HotTenant: -1}
	s := Schedule(cfg)
	if len(s) != cfg.Requests {
		t.Fatalf("got %d arrivals, want %d", len(s), cfg.Requests)
	}
	var prev int64
	for i, a := range s {
		if a.At <= prev {
			t.Fatalf("arrival %d at %d not after %d", i, a.At, prev)
		}
		prev = a.At
		if a.Tenant < 0 || a.Tenant >= cfg.Tenants {
			t.Fatalf("arrival %d tenant %d out of range", i, a.Tenant)
		}
		if a.Kind < 0 || a.Kind >= cfg.Kinds {
			t.Fatalf("arrival %d kind %d out of range", i, a.Kind)
		}
	}
	// Mean gap stays near the configured mean (uniform on
	// [mean/2, 3*mean/2]): the last arrival lands within 25% of
	// requests*mean.
	want := int64(cfg.Requests) * cfg.MeanGapTicks
	if last := s[len(s)-1].At; last < want*3/4 || last > want*5/4 {
		t.Fatalf("span %d far from expected %d", last, want)
	}
}

// TestScheduleHotTenant: the skewed generator routes roughly
// HotPercent of arrivals to the hot tenant and still exercises every
// cold tenant.
func TestScheduleHotTenant(t *testing.T) {
	cfg := Config{Seed: 11, Requests: 2000, MeanGapTicks: 100, Tenants: 4, Kinds: 5, HotTenant: 2, HotPercent: 80}
	s := Schedule(cfg)
	counts := make([]int, cfg.Tenants)
	for _, a := range s {
		counts[a.Tenant]++
	}
	hot := counts[cfg.HotTenant]
	if hot < cfg.Requests*70/100 || hot > cfg.Requests*90/100 {
		t.Fatalf("hot tenant got %d of %d arrivals, want ~80%%", hot, cfg.Requests)
	}
	for id, n := range counts {
		if id != cfg.HotTenant && n == 0 {
			t.Fatalf("cold tenant %d received no arrivals", id)
		}
	}
}

// TestScheduleEmpty: degenerate configs produce empty schedules
// instead of panicking.
func TestScheduleEmpty(t *testing.T) {
	if s := Schedule(Config{}); s != nil {
		t.Fatalf("zero config: got %d arrivals, want none", len(s))
	}
	if s := Schedule(Config{Requests: 5}); s != nil {
		t.Fatal("zero tenants: got arrivals, want none")
	}
}
