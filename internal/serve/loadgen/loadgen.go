// Package loadgen generates open-loop request arrivals for the
// multi-tenant image server (internal/serve).
//
// Open-loop means the arrival schedule is fixed before the server runs:
// requests arrive at their scheduled virtual times whether or not
// earlier requests have finished, so a slow server builds queue depth
// (and sheds load) instead of silently slowing the offered rate the way
// the closed-loop macro benchmarks do. This is the property that makes
// p99 latency meaningful: under closed-loop driving, coordinated
// omission hides exactly the samples the tail is made of.
//
// The generator is deterministic: the schedule is a pure function of
// the seed and the configuration, computed with integer arithmetic only
// (a splitmix64 stream, no floats, no host randomness), so two runs
// with the same seed produce bit-identical arrival schedules on every
// platform — which is what lets the serve benchmark rows ride the exact
// regression gate and the determinism fingerprint.
package loadgen

// Arrival is one scheduled request: a virtual arrival time in ticks,
// the tenant it addresses (its conflict class), and the catalog index
// of the request kind.
type Arrival struct {
	At     int64
	Tenant int
	Kind   int
}

// Config parameterizes a schedule.
type Config struct {
	Seed     uint64
	Requests int
	// MeanGapTicks is the mean virtual inter-arrival time. Gaps are
	// drawn uniformly from [mean/2, 3*mean/2], so the offered rate is
	// 1/MeanGapTicks requests per tick with bounded jitter.
	MeanGapTicks int64
	Tenants      int
	Kinds        int // catalog size; 0 means one kind
	// HotTenant (when >= 0) receives HotPercent of the arrivals; the
	// remainder spread uniformly over the other tenants. Used to drive
	// the per-tenant fairness path of admission control.
	HotTenant  int
	HotPercent int
}

// rng is a splitmix64 stream: deterministic, integer-only, and good
// enough to decorrelate gaps from tenant and kind picks.
type rng struct{ x uint64 }

func (r *rng) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Schedule computes the arrival schedule: Requests arrivals in
// nondecreasing virtual time. It is a pure function of cfg.
func Schedule(cfg Config) []Arrival {
	if cfg.Requests <= 0 || cfg.Tenants <= 0 {
		return nil
	}
	mean := cfg.MeanGapTicks
	if mean < 2 {
		mean = 2
	}
	kinds := cfg.Kinds
	if kinds < 1 {
		kinds = 1
	}
	r := &rng{x: cfg.Seed}
	out := make([]Arrival, 0, cfg.Requests)
	var at int64
	for i := 0; i < cfg.Requests; i++ {
		at += mean/2 + int64(r.next()%uint64(mean+1))
		tenant := 0
		if cfg.HotTenant >= 0 && cfg.HotTenant < cfg.Tenants && cfg.Tenants > 1 {
			if int(r.next()%100) < cfg.HotPercent {
				tenant = cfg.HotTenant
			} else {
				tenant = int(r.next() % uint64(cfg.Tenants-1))
				if tenant >= cfg.HotTenant {
					tenant++
				}
			}
		} else {
			tenant = int(r.next() % uint64(cfg.Tenants))
		}
		out = append(out, Arrival{
			At:     at,
			Tenant: tenant,
			Kind:   int(r.next() % uint64(kinds)),
		})
	}
	return out
}
