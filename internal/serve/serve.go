// Package serve is the multi-tenant Smalltalk image server: a
// long-running host that boots the base image once, checkpoints it, and
// serves N independent tenant sessions, each a snapshot clone of the
// base heap, from an in-process request queue.
//
// Scheduling follows the conflict-class playbook of parallel state
// machine replication: every request names a tenant, the tenant is the
// request's conflict class (requests on the same session conflict;
// requests on different sessions are independent), and classes are
// assigned to executors by a fixed deterministic map (class mod
// executors). Each executor is one processor of a simulated Firefly
// front-end machine and drains its classes' requests in arrival order.
// Because an executor owns its classes outright, admission control and
// queueing are executor-local, and the served schedule — every latency,
// every rejection — is a pure function of the arrival schedule. That
// holds in -parallel mode too: real executor goroutines serve disjoint
// tenant sets concurrently and produce bit-identical virtual results,
// which is exactly the determinism-under-parallelism property early
// scheduling buys in replicated state machines.
//
// Admission control is a front door per executor: a request arriving
// when its executor already holds QueueDepth undone requests is shed
// (counted, never executed), and a tenant may hold at most TenantShare
// of the queue so one hot session cannot starve its neighbours.
// Request latency (completion minus arrival), queue wait, and service
// time feed trace.Histogram distributions — the PR 7 latency substrate
// — so the serve report carries exact-gateable p50/p95/p99/max columns.
package serve

import (
	"fmt"
	"sync"

	"mst/internal/core"
	"mst/internal/firefly"
	"mst/internal/serve/loadgen"
	"mst/internal/trace"
)

// Defaults for Config zero values.
const (
	DefaultQueueDepth = 8
	// dispatchCost is the front-end virtual cost of picking a request
	// off the class queue and switching to the tenant session: the
	// V-kernel-ish message dispatch the paper charges for cross-activity
	// work. Charged once per admitted request.
	dispatchCost = firefly.Time(25)
)

// Config configures a server.
type Config struct {
	Tenants   int // independent sessions (>= 1)
	Executors int // simulated front-end processors (>= 1)

	// QueueDepth bounds each executor's undone-request backlog
	// (in-service plus queued); arrivals beyond it are shed. 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// TenantShare bounds one tenant's slots within the executor queue;
	// 0 means half the queue (minimum 1).
	TenantShare int

	// Parallel runs the executors as real goroutines (the front-end
	// machine's parallel host mode). Tenant sessions stay deterministic
	// single-processor machines, and executors own disjoint tenant
	// sets, so the virtual results are bit-identical to the
	// deterministic mode — only host wall time changes.
	Parallel bool

	// TraceEvents is the front-end flight-recorder capacity (0: off).
	// The exported Perfetto trace carries one track per tenant.
	TraceEvents int

	// Checkpoint reuses a prebooted base image (BootCheckpoint); nil
	// boots one. Sharing a checkpoint across servers amortizes the base
	// boot when sweeping configurations.
	Checkpoint *core.Checkpoint
}

// BootCheckpoint boots the base image — kernel plus the ServeSession
// protocol and the per-image `Session` instance — and captures the
// checkpoint every tenant session clones from. The boot runs on the
// production MS configuration with a right-sized old space (the kernel
// image occupies ~17k words; the default 4M-word geometry would cost
// 32 MB of host memory per tenant clone for nothing).
func BootCheckpoint() (*core.Checkpoint, error) {
	cfg := core.DefaultConfig()
	cfg.Processors = 1
	cfg.OldWords = 128 << 10
	cfg.ExtraSources = []string{sessionSource}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: base boot: %w", err)
	}
	defer sys.Shutdown()
	if _, err := sys.EvaluateInt(sessionInstall); err != nil {
		return nil, fmt.Errorf("serve: session install: %w", err)
	}
	cp, err := sys.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	return cp, nil
}

// tenant is one session: a private clone of the base image,
// materialized lazily on first use so idle tenants cost nothing beyond
// the shared checkpoint.
type tenant struct {
	id   int
	once sync.Once
	sys  *core.System
	err  error
}

// Server hosts the tenant sessions.
type Server struct {
	cfg Config
	cp  *core.Checkpoint
	ten []*tenant
}

// NewServer builds a server. The base image is booted (or the supplied
// checkpoint reused); tenant sessions materialize on first request.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("serve: need at least one tenant")
	}
	if cfg.Executors < 1 {
		cfg.Executors = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.TenantShare <= 0 {
		cfg.TenantShare = cfg.QueueDepth / 2
		if cfg.TenantShare < 1 {
			cfg.TenantShare = 1
		}
	}
	if cfg.TenantShare > cfg.QueueDepth {
		cfg.TenantShare = cfg.QueueDepth
	}
	cp := cfg.Checkpoint
	if cp == nil {
		var err error
		cp, err = BootCheckpoint()
		if err != nil {
			return nil, err
		}
	}
	s := &Server{cfg: cfg, cp: cp}
	for i := 0; i < cfg.Tenants; i++ {
		s.ten = append(s.ten, &tenant{id: i})
	}
	return s, nil
}

// Tenants returns the configured tenant count.
func (s *Server) Tenants() int { return s.cfg.Tenants }

// Executors returns the configured executor count.
func (s *Server) Executors() int { return s.cfg.Executors }

// ExecutorFor returns the executor a conflict class (tenant) is
// deterministically assigned to.
func (s *Server) ExecutorFor(class int) int { return class % s.cfg.Executors }

// session materializes (once) and returns tenant i's system.
func (s *Server) session(i int) (*core.System, error) {
	t := s.ten[i]
	t.once.Do(func() {
		t.sys, t.err = core.NewFromCheckpoint(1, s.cp)
	})
	return t.sys, t.err
}

// Eval is the synchronous request/response path: evaluate source
// against tenant's session and answer its printString. It bypasses
// admission control (no arrival schedule to admit against) and must not
// race an open-loop Run.
func (s *Server) Eval(tenantID int, source string) (string, error) {
	if tenantID < 0 || tenantID >= s.cfg.Tenants {
		return "", fmt.Errorf("serve: no tenant %d (have %d)", tenantID, s.cfg.Tenants)
	}
	sys, err := s.session(tenantID)
	if err != nil {
		return "", err
	}
	return sys.Evaluate(source)
}

// Shutdown stops every materialized tenant session.
func (s *Server) Shutdown() {
	for _, t := range s.ten {
		if t.sys != nil {
			t.sys.Shutdown()
		}
	}
}

// execState is one executor's run-local accumulator. Executors touch
// only their own state during a run, so the parallel mode needs no
// host locks here.
type execState struct {
	arrivals []loadgen.Arrival

	// done holds the completion times of admitted requests in
	// completion order (nondecreasing: the executor serves FIFO).
	// Backlog at an arrival is the count of completions still in the
	// future at that instant.
	done       []firefly.Time
	tenantDone map[int][]firefly.Time

	hists *serveHists

	perTenant map[int]*TenantStats
	admitted  int
	rejected  int
	rejShare  int
	completed int
	errors    int
	evalErr   error // first tenant materialization/VM failure, fatal
}

// serveHists is the executor's latency observer set, held behind one
// pointer so the recording sites follow the repo-wide nil-guarded hook
// idiom (traceguard).
type serveHists struct {
	latency trace.Histogram
	wait    trace.Histogram
	service trace.Histogram
}

// backlog counts entries of done that are still undone at virtual time
// at. done is nondecreasing, so scan from the tail.
func backlog(done []firefly.Time, at firefly.Time) int {
	n := 0
	for i := len(done) - 1; i >= 0; i-- {
		if done[i] <= at {
			break
		}
		n++
	}
	return n
}

// tenantStats returns (creating) the per-tenant accumulator.
func (e *execState) tenantStats(id int) *TenantStats {
	ts := e.perTenant[id]
	if ts == nil {
		ts = &TenantStats{Tenant: id}
		e.perTenant[id] = ts
	}
	return ts
}

// runExecutor drains one executor's arrival stream on its front-end
// processor. Every scheduling decision reads only executor-local state
// and tenant sessions owned by this executor, so the routine is
// identical in deterministic and parallel host modes.
func (s *Server) runExecutor(p *firefly.Proc, e *execState, rec *trace.Recorder) {
	for _, a := range e.arrivals {
		if p.Stopped() {
			return
		}
		at := firefly.Time(a.At)
		ts := e.tenantStats(a.Tenant)
		ts.Offered++

		// The front door: shed at arrival time when the executor queue
		// (or the tenant's share of it) is full. A shed request never
		// occupies the executor.
		if backlog(e.done, at) >= s.cfg.QueueDepth {
			e.rejected++
			ts.Rejected++
			if rec != nil {
				rec.Emit(trace.KServeReject, p.ID(), a.At, int64(a.Tenant), 0, "")
			}
			continue
		}
		if backlog(e.tenantDone[a.Tenant], at) >= s.cfg.TenantShare {
			e.rejected++
			e.rejShare++
			ts.Rejected++
			ts.RejectedShare++
			if rec != nil {
				rec.Emit(trace.KServeReject, p.ID(), a.At, int64(a.Tenant), 1, "")
			}
			continue
		}

		e.admitted++
		ts.Admitted++
		if p.Now() < at {
			// Open-loop: the executor idles until the next arrival.
			p.AdvanceIdle(at - p.Now())
		}
		start := p.Now()
		p.Advance(dispatchCost)

		k := a.Kind % len(Catalog)
		source, kindName := Catalog[k].Source, Catalog[k].Name
		sys, err := s.session(a.Tenant)
		if err != nil {
			e.evalErr = err
			return
		}
		vt0 := sys.VirtualTime()
		if _, err := sys.Evaluate(source); err != nil {
			e.errors++
			ts.Errors++
		}
		// The session ran on its own single-processor machine; its
		// virtual-time delta is the request's service time, charged to
		// the executor that ran it.
		serviceT := sys.VirtualTime() - vt0
		p.Advance(serviceT)
		doneAt := p.Now()

		e.done = append(e.done, doneAt)
		e.tenantDone[a.Tenant] = append(e.tenantDone[a.Tenant], doneAt)
		e.completed++
		ts.Completed++
		lat := doneAt - at
		if h := e.hists; h != nil {
			h.latency.Record(int64(lat))
			h.wait.Record(int64(start - at))
			h.service.Record(int64(doneAt - start))
		}
		ts.LatencySum += int64(lat)
		if int64(lat) > ts.LatencyMax {
			ts.LatencyMax = int64(lat)
		}
		if rec != nil {
			rec.Emit(trace.KServeStart, p.ID(), int64(start), int64(a.Tenant), int64(start-at), kindName)
			rec.Emit(trace.KServeDone, p.ID(), int64(doneAt), int64(a.Tenant), int64(lat), "")
		}
		// Quantum boundary: in the deterministic mode the front-end
		// driver resumes the executor with the smallest clock next, so
		// executors interleave in virtual-time order.
		p.Yield()
	}
}

// Run serves one open-loop arrival schedule to completion and reports
// the outcome. Arrivals must be in nondecreasing At order (as
// loadgen.Schedule produces). Run may be called repeatedly; tenant
// sessions persist across runs.
func (s *Server) Run(arrivals []loadgen.Arrival) (*Report, error) {
	execs := make([]*execState, s.cfg.Executors)
	for i := range execs {
		execs[i] = &execState{
			tenantDone: map[int][]firefly.Time{},
			perTenant:  map[int]*TenantStats{},
			hists:      &serveHists{},
		}
	}
	for _, a := range arrivals {
		if a.Tenant < 0 || a.Tenant >= s.cfg.Tenants {
			return nil, fmt.Errorf("serve: arrival for tenant %d, have %d", a.Tenant, s.cfg.Tenants)
		}
		x := execs[s.ExecutorFor(a.Tenant)]
		x.arrivals = append(x.arrivals, a)
	}

	// The front-end machine: one simulated processor per executor. A
	// fresh machine per run keeps Run re-entrant (processor work
	// functions are one-shot); the tenant sessions — the expensive part
	// — persist on the server.
	front := firefly.New(s.cfg.Executors, firefly.DefaultCosts())
	var rec *trace.Recorder
	if s.cfg.TraceEvents > 0 {
		if s.cfg.Parallel {
			rec = trace.NewShardedRecorder(s.cfg.TraceEvents, s.cfg.Executors)
		} else {
			rec = trace.NewRecorder(s.cfg.TraceEvents)
		}
		front.SetRecorder(rec)
	}
	for i := 0; i < s.cfg.Executors; i++ {
		e := execs[i]
		front.Start(i, func(p *firefly.Proc) { s.runExecutor(p, e, rec) })
	}
	if s.cfg.Parallel {
		front.SetParallel(true)
	}
	if r := front.Run(nil); r != firefly.StopAllDone {
		front.Shutdown()
		return nil, fmt.Errorf("serve: front-end stopped early: %v", r)
	}
	front.Shutdown()
	for _, e := range execs {
		if e.evalErr != nil {
			return nil, e.evalErr
		}
	}
	return s.report(arrivals, execs, rec), nil
}

// report merges the executor-local accumulators into one Report.
func (s *Server) report(arrivals []loadgen.Arrival, execs []*execState, rec *trace.Recorder) *Report {
	r := &Report{
		Tenants:     s.cfg.Tenants,
		Executors:   s.cfg.Executors,
		QueueDepth:  s.cfg.QueueDepth,
		TenantShare: s.cfg.TenantShare,
		Parallel:    s.cfg.Parallel,
		Offered:     len(arrivals),
		recorder:    rec,
		numProcs:    s.cfg.Executors,
	}
	var latency, wait, service trace.Histogram
	perTenant := map[int]*TenantStats{}
	for _, e := range execs {
		r.Admitted += e.admitted
		r.Rejected += e.rejected
		r.RejectedShare += e.rejShare
		r.Completed += e.completed
		r.Errors += e.errors
		latency.Merge(&e.hists.latency)
		wait.Merge(&e.hists.wait)
		service.Merge(&e.hists.service)
		for id, ts := range e.perTenant {
			perTenant[id] = ts
		}
		for _, d := range e.done {
			if int64(d) > r.MakespanTicks {
				r.MakespanTicks = int64(d)
			}
		}
	}
	r.Latency = latency.Snapshot()
	r.Wait = wait.Snapshot()
	r.Service = service.Snapshot()
	for i := 0; i < s.cfg.Tenants; i++ {
		ts := perTenant[i]
		if ts == nil {
			ts = &TenantStats{Tenant: i}
		}
		ts.Executor = s.ExecutorFor(i)
		r.PerTenant = append(r.PerTenant, *ts)
	}
	return r
}
