package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mst/internal/core"
	"mst/internal/serve/loadgen"
)

// The base checkpoint is shared across tests: booting the kernel plus
// the session protocol takes tens of milliseconds, cloning takes
// microseconds, and sharing is exactly the production configuration.
var baseCP struct {
	once sync.Once
	cp   *core.Checkpoint
	err  error
}

func testCheckpoint(t *testing.T) *core.Checkpoint {
	t.Helper()
	baseCP.once.Do(func() { baseCP.cp, baseCP.err = BootCheckpoint() })
	if baseCP.err != nil {
		t.Fatalf("BootCheckpoint: %v", baseCP.err)
	}
	return baseCP.cp
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Checkpoint = testCheckpoint(t)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// TestSessionProtocol: every tenant boots with the Session instance
// installed and the whole request catalog evaluates cleanly.
func TestSessionProtocol(t *testing.T) {
	s2 := newTestServer(t, Config{Tenants: 1})
	for _, step := range []struct{ src, want string }{
		{"Session bump", "1"},
		{"Session bump", "2"},
		{"Session note: Session hits", "1"},
		{"Session digest", "'2/1'"},
	} {
		got, err := s2.Eval(0, step.src)
		if err != nil {
			t.Fatalf("Eval(%q): %v", step.src, err)
		}
		if got != step.want {
			t.Fatalf("Eval(%q) = %q, want %q", step.src, got, step.want)
		}
	}
	for _, k := range Catalog {
		if _, err := s2.Eval(0, k.Source); err != nil {
			t.Fatalf("catalog %q: %v", k.Name, err)
		}
	}
	if _, err := s2.Eval(5, "1"); err == nil {
		t.Fatal("Eval on missing tenant succeeded")
	}
}

// TestTenantIsolation: one tenant's heap mutations, allocation
// pressure, and garbage collections never leak into a sibling clone.
// The sibling's image bytes must stay bit-identical to a fresh clone
// that ran the same (tiny) request history.
func TestTenantIsolation(t *testing.T) {
	s := newTestServer(t, Config{Tenants: 2})

	// Materialize tenant 1 with a minimal, replayable history.
	if got, _ := s.Eval(1, "Session hits"); got != "0" {
		t.Fatalf("tenant 1 initial hits = %q, want 0", got)
	}

	// Hammer tenant 0: session mutation, allocation churn, a scavenge,
	// and a full mark-compact collection.
	for _, src := range []string{
		"1 to: 200 do: [:i | Session bump]",
		"1 to: 100 do: [:i | Session note: i]",
		"| a | 1 to: 300 do: [:i | a := Array new: 64]. a size",
		"Smalltalk scavenge. Session hits",
		"Smalltalk garbageCollect. Session hits",
	} {
		if _, err := s.Eval(0, src); err != nil {
			t.Fatalf("tenant 0 Eval(%q): %v", src, err)
		}
	}
	if got, _ := s.Eval(0, "Session hits"); got != "200" {
		t.Fatalf("tenant 0 hits = %q, want 200", got)
	}

	// Tenant 1 is untouched by any of it.
	if got, _ := s.Eval(1, "Session hits"); got != "0" {
		t.Fatalf("tenant 1 hits after sibling churn = %q, want 0", got)
	}
	if got, _ := s.Eval(1, "Session digest"); got != "'0/0'" {
		t.Fatalf("tenant 1 digest = %q, want '0/0'", got)
	}

	// Strong form: replay tenant 1's exact request history on a fresh
	// clone of the same checkpoint and compare canonical image bytes.
	// Single-processor sessions are deterministic, so any divergence
	// means sibling state leaked through the clone.
	fresh, err := core.NewFromCheckpoint(1, testCheckpoint(t))
	if err != nil {
		t.Fatalf("NewFromCheckpoint: %v", err)
	}
	defer fresh.Shutdown()
	for _, src := range []string{"Session hits", "Session hits", "Session digest"} {
		if _, err := fresh.Evaluate(src); err != nil {
			t.Fatalf("fresh Evaluate(%q): %v", src, err)
		}
	}
	var a, b bytes.Buffer
	sib, err := s.session(1)
	if err != nil {
		t.Fatalf("session(1): %v", err)
	}
	if err := sib.SaveImage(&a); err != nil {
		t.Fatalf("sibling SaveImage: %v", err)
	}
	if err := fresh.SaveImage(&b); err != nil {
		t.Fatalf("fresh SaveImage: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sibling image diverged from fresh clone: %d vs %d bytes", a.Len(), b.Len())
	}
}

// overloadSchedule is a schedule hot enough to overflow small queues:
// arrivals come much faster than the ~thousands-of-ticks service
// times.
func overloadSchedule(tenants, requests int) []loadgen.Arrival {
	return loadgen.Schedule(loadgen.Config{
		Seed: 99, Requests: requests, MeanGapTicks: 50,
		Tenants: tenants, Kinds: len(Catalog), HotTenant: -1,
	})
}

// TestAdmissionQueueFull: a saturating open-loop schedule against a
// shallow queue sheds load through the counted rejection path, the
// request accounting balances exactly, and a second identical run
// reproduces the report byte for byte.
func TestAdmissionQueueFull(t *testing.T) {
	cfg := Config{Tenants: 4, Executors: 1, QueueDepth: 2, TenantShare: 2}
	arr := overloadSchedule(4, 300)

	s := newTestServer(t, cfg)
	r, err := s.Run(arr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Errors != 0 {
		t.Fatalf("%d request errors", r.Errors)
	}
	if r.Offered != len(arr) {
		t.Fatalf("offered %d, want %d", r.Offered, len(arr))
	}
	if r.Admitted+r.Rejected != r.Offered {
		t.Fatalf("admitted %d + rejected %d != offered %d", r.Admitted, r.Rejected, r.Offered)
	}
	if r.Completed != r.Admitted {
		t.Fatalf("completed %d != admitted %d", r.Completed, r.Admitted)
	}
	if full := r.Rejected - r.RejectedShare; full == 0 {
		t.Fatal("no queue-full rejections under a saturating schedule")
	}
	if r.Completed == 0 {
		t.Fatal("shed everything: no requests completed")
	}
	var perSum int
	for _, ts := range r.PerTenant {
		perSum += ts.Offered
		if ts.Admitted+ts.Rejected != ts.Offered {
			t.Fatalf("tenant %d: admitted %d + rejected %d != offered %d",
				ts.Tenant, ts.Admitted, ts.Rejected, ts.Offered)
		}
	}
	if perSum != r.Offered {
		t.Fatalf("per-tenant offered sums to %d, want %d", perSum, r.Offered)
	}

	// Determinism: a fresh server serving the same schedule renders the
	// identical report.
	s2 := newTestServer(t, cfg)
	r2, err := s2.Run(arr)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if r.Format() != r2.Format() {
		t.Fatalf("reports differ across identical runs:\n--- first\n%s--- second\n%s", r.Format(), r2.Format())
	}
}

// TestTenantShareFairness: a hot tenant that floods a shared executor
// is clipped by its queue share while its cold neighbours keep
// completing requests.
func TestTenantShareFairness(t *testing.T) {
	arr := loadgen.Schedule(loadgen.Config{
		Seed: 5, Requests: 400, MeanGapTicks: 60,
		Tenants: 4, Kinds: len(Catalog), HotTenant: 0, HotPercent: 85,
	})
	s := newTestServer(t, Config{Tenants: 4, Executors: 1, QueueDepth: 8, TenantShare: 2})
	r, err := s.Run(arr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hot := r.PerTenant[0]
	if hot.RejectedShare == 0 {
		t.Fatal("hot tenant was never clipped by its queue share")
	}
	for _, ts := range r.PerTenant[1:] {
		if ts.Offered > 0 && ts.Completed == 0 {
			t.Fatalf("cold tenant %d starved: offered %d, completed 0", ts.Tenant, ts.Offered)
		}
	}
	// The share bound caps the hot tenant's completion fraction well
	// below its 85% offered fraction.
	if hot.Completed*2 > r.Completed {
		t.Fatalf("hot tenant completed %d of %d despite share bound", hot.Completed, r.Completed)
	}
}

// TestDetReportStable: the deterministic serve path is bit-stable —
// and its report carries the gateable latency columns.
func TestDetReportStable(t *testing.T) {
	arr := loadgen.Schedule(loadgen.Config{
		Seed: 1234, Requests: 200, MeanGapTicks: 2000,
		Tenants: 4, Kinds: len(Catalog), HotTenant: -1,
	})
	cfg := Config{Tenants: 4, Executors: 2}
	a, err := newTestServer(t, cfg).Run(arr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := newTestServer(t, cfg).Run(arr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Format() != b.Format() {
		t.Fatalf("det reports differ:\n--- a\n%s--- b\n%s", a.Format(), b.Format())
	}
	txt := a.Format()
	for _, tok := range []string{"p99", "p95", "p50", "latency", "per tenant"} {
		if !strings.Contains(txt, tok) {
			t.Fatalf("report missing %q:\n%s", tok, txt)
		}
	}
	if a.Latency.Count == 0 || a.Latency.P99 < a.Latency.P50 {
		t.Fatalf("implausible latency snapshot: %+v", a.Latency)
	}
	if a.Latency.Max < a.Latency.P99 {
		t.Fatalf("latency max %d below p99 %d", a.Latency.Max, a.Latency.P99)
	}
}

// TestParallelMatchesDet: executors own disjoint tenant sets, so the
// parallel host mode must reproduce the deterministic mode's virtual
// results exactly — the early-scheduling property the conflict-class
// design buys.
func TestParallelMatchesDet(t *testing.T) {
	arr := loadgen.Schedule(loadgen.Config{
		Seed: 77, Requests: 240, MeanGapTicks: 400,
		Tenants: 6, Kinds: len(Catalog), HotTenant: -1,
	})
	det, err := newTestServer(t, Config{Tenants: 6, Executors: 3}).Run(arr)
	if err != nil {
		t.Fatalf("det Run: %v", err)
	}
	par, err := newTestServer(t, Config{Tenants: 6, Executors: 3, Parallel: true}).Run(arr)
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}
	// Reports differ only in the mode banner.
	a := strings.Replace(det.Format(), "(det)", "(parallel)", 1)
	if a != par.Format() {
		t.Fatalf("parallel diverged from det:\n--- det\n%s--- parallel\n%s", det.Format(), par.Format())
	}
}

// TestSessionsPersistAcrossRuns: tenant state carries across Run
// calls (a second identical schedule sees warmer sessions, so hit
// counters keep growing).
func TestSessionsPersistAcrossRuns(t *testing.T) {
	arr := loadgen.Schedule(loadgen.Config{
		Seed: 3, Requests: 60, MeanGapTicks: 3000,
		Tenants: 2, Kinds: 1, HotTenant: -1, // kind 0: Session bump
	})
	s := newTestServer(t, Config{Tenants: 2})
	if _, err := s.Run(arr); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	h0, _ := s.Eval(0, "Session hits")
	if _, err := s.Run(arr); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	h1, _ := s.Eval(0, "Session hits")
	if h0 == "0" || h1 <= h0 {
		t.Fatalf("hits did not accumulate across runs: %q then %q", h0, h1)
	}
}

// TestWriteTrace: with the flight recorder on, the exported trace
// carries the serve track and per-tenant threads.
func TestWriteTrace(t *testing.T) {
	arr := overloadSchedule(4, 120)
	s := newTestServer(t, Config{Tenants: 4, Executors: 2, QueueDepth: 2, TenantShare: 1, TraceEvents: 4096})
	r, err := s.Run(arr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	for _, tok := range []string{"serve", "tenant 0", "reject"} {
		if !strings.Contains(buf.String(), tok) {
			t.Fatalf("trace missing %q", tok)
		}
	}
	// Tracing off: WriteTrace reports it rather than panicking.
	r2, err := newTestServer(t, Config{Tenants: 1}).Run(nil)
	if err != nil {
		t.Fatalf("empty Run: %v", err)
	}
	if err := r2.WriteTrace(&buf); err == nil {
		t.Fatal("WriteTrace with tracing off succeeded")
	}
}
