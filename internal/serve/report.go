package serve

import (
	"fmt"
	"io"
	"strings"

	"mst/internal/trace"
)

// TenantStats is one tenant's request accounting for a run.
type TenantStats struct {
	Tenant        int   `json:"tenant"`
	Executor      int   `json:"executor"`
	Offered       int   `json:"offered"`
	Admitted      int   `json:"admitted"`
	Rejected      int   `json:"rejected"`
	RejectedShare int   `json:"rejected_share"`
	Completed     int   `json:"completed"`
	Errors        int   `json:"errors"`
	LatencySum    int64 `json:"latency_sum_ticks"`
	LatencyMax    int64 `json:"latency_max_ticks"`
}

// Report is the outcome of serving one open-loop schedule. Every field
// is virtual-time-derived and deterministic (host wall time is measured
// by callers that care, outside this package), so the serve benchmark
// gates these columns exactly.
type Report struct {
	Tenants       int  `json:"tenants"`
	Executors     int  `json:"executors"`
	QueueDepth    int  `json:"queue_depth"`
	TenantShare   int  `json:"tenant_share"`
	Parallel      bool `json:"parallel"`
	Offered       int  `json:"offered"`
	Admitted      int  `json:"admitted"`
	Rejected      int  `json:"rejected"`
	RejectedShare int  `json:"rejected_share"`
	Completed     int  `json:"completed"`
	Errors        int  `json:"errors"`
	// MakespanTicks is the virtual time of the last completion.
	MakespanTicks int64 `json:"makespan_ticks"`

	// Request-latency distributions in virtual ticks (the PR 7
	// histogram substrate): end-to-end latency (completion - arrival),
	// queue wait (pickup - arrival), and service (completion - pickup).
	Latency trace.HistSnapshot `json:"latency"`
	Wait    trace.HistSnapshot `json:"wait"`
	Service trace.HistSnapshot `json:"service"`

	PerTenant []TenantStats `json:"per_tenant"`

	recorder *trace.Recorder
	numProcs int
}

// ThroughputRPS is the served throughput in requests per virtual
// second (ticks are virtual microseconds).
func (r *Report) ThroughputRPS() float64 {
	if r.MakespanTicks <= 0 {
		return 0
	}
	return float64(r.Completed) * 1e6 / float64(r.MakespanTicks)
}

// WriteTrace exports the run's front-end flight recording (request
// slices on one Perfetto track per tenant, plus the executor quantum
// tracks) as Chrome trace-event JSON. It errors when tracing was off.
func (r *Report) WriteTrace(w io.Writer) error {
	if r.recorder == nil {
		return fmt.Errorf("serve: tracing was not enabled (Config.TraceEvents)")
	}
	return trace.WritePerfetto(w, r.recorder.Events(), r.numProcs)
}

// Format renders the report as deterministic text: every number is
// virtual, so two runs of the same schedule in the same mode render
// byte-identical reports (the serve-smoke CI job diffs exactly this).
func (r *Report) Format() string {
	var b strings.Builder
	mode := "det"
	if r.Parallel {
		mode = "parallel"
	}
	fmt.Fprintf(&b, "msserve: %d tenants on %d executors (%s), queue depth %d, tenant share %d\n",
		r.Tenants, r.Executors, mode, r.QueueDepth, r.TenantShare)
	fmt.Fprintf(&b, "  offered %d  admitted %d  rejected %d (%d by tenant share)  completed %d  errors %d\n",
		r.Offered, r.Admitted, r.Rejected, r.RejectedShare, r.Completed, r.Errors)
	fmt.Fprintf(&b, "  makespan %d ticks  throughput %.1f req/s (virtual)\n",
		r.MakespanTicks, r.ThroughputRPS())
	b.WriteString("  request latency (virtual ticks)\n")
	fmt.Fprintf(&b, "  %-10s %8s %10s %8s %8s %8s %8s\n",
		"series", "count", "mean", "p50", "p95", "p99", "max")
	b.WriteString(histRow("latency", r.Latency))
	b.WriteString(histRow("wait", r.Wait))
	b.WriteString(histRow("service", r.Service))
	b.WriteString("  per tenant\n")
	fmt.Fprintf(&b, "  %-8s %4s %8s %9s %9s %10s %7s %12s\n",
		"tenant", "exec", "offered", "admitted", "rejected", "completed", "errors", "max-lat")
	for _, ts := range r.PerTenant {
		fmt.Fprintf(&b, "  %-8d %4d %8d %9d %9d %10d %7d %12d\n",
			ts.Tenant, ts.Executor, ts.Offered, ts.Admitted, ts.Rejected,
			ts.Completed, ts.Errors, ts.LatencyMax)
	}
	return b.String()
}

// histRow renders one distribution with the p95 column the server SLOs
// are stated in.
func histRow(name string, s trace.HistSnapshot) string {
	if s.Count == 0 {
		return fmt.Sprintf("  %-10s %8s\n", name, "-")
	}
	mean := float64(s.Sum) / float64(s.Count)
	return fmt.Sprintf("  %-10s %8d %10.1f %8d %8d %8d %8d\n",
		name, s.Count, mean, s.P50, s.P95, s.P99, s.Max)
}
