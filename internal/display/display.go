// Package display simulates the MS I/O subsystem: a display with a
// serialized output command queue and an input sensor whose events are
// transferred from the device by the interpreters. Both directions
// follow the paper's serialization strategy: "the interpreter places
// input events on a queue which is shared (potentially) by several
// processes. There is also an output queue associated with the display
// controller... access to the shared resource is for very brief
// intervals."
package display

import (
	"strings"

	"mst/internal/firefly"
	"mst/internal/trace"
)

// Command is one display output command.
type Command struct {
	Text string
	X, Y int
	At   firefly.Time
}

// EventKind classifies input events.
type EventKind int

const (
	// EvKey is a keystroke.
	EvKey EventKind = iota
	// EvMouse is a pointer event.
	EvMouse
)

// Event is one input event.
type Event struct {
	Kind EventKind
	Key  rune
	X, Y int
	At   firefly.Time
}

// Display is the virtual display controller plus the Transcript sink.
type Display struct {
	lock       *firefly.Spinlock
	commands   []Command
	transcript strings.Builder
	width      int
	height     int
}

// NewDisplay creates a display on machine m. locksEnabled selects MS
// mode; the baseline system runs without the output-queue lock.
func NewDisplay(m *firefly.Machine, locksEnabled bool) *Display {
	if s := m.Sanitizer(); s != nil {
		s.RegisterGuard("display-queue", "display")
	}
	return &Display{
		lock:   m.NewSpinlock("display", locksEnabled),
		width:  80,
		height: 24,
	}
}

// Width returns the display width in character cells.
func (d *Display) Width() int { return d.width }

// Height returns the display height in character cells.
func (d *Display) Height() int { return d.height }

// PostText places a draw-text command on the output queue, serialized
// under the display lock and charged as one display operation.
func (d *Display) PostText(p *firefly.Proc, text string, x, y int) {
	d.lock.Acquire(p)
	if s := p.Machine().Sanitizer(); s != nil {
		s.OnAccess(p.ID(), int64(p.Now()), "display-queue")
	}
	p.Advance(p.Machine().Costs().DisplayOp)
	d.commands = append(d.commands, Command{Text: text, X: x, Y: y, At: p.Now()})
	if r := p.Machine().Recorder(); r != nil {
		r.Emit(trace.KDisplayOp, p.ID(), int64(p.Now()), int64(len(d.commands)), 0, "")
	}
	d.lock.Release(p)
}

// TranscriptShow appends text to the Transcript, through the same
// serialized output queue.
func (d *Display) TranscriptShow(p *firefly.Proc, text string) {
	d.lock.Acquire(p)
	if s := p.Machine().Sanitizer(); s != nil {
		s.OnAccess(p.ID(), int64(p.Now()), "display-queue")
	}
	p.Advance(p.Machine().Costs().DisplayOp)
	d.transcript.WriteString(text)
	d.commands = append(d.commands, Command{Text: text, X: -1, Y: -1, At: p.Now()})
	if r := p.Machine().Recorder(); r != nil {
		r.Emit(trace.KDisplayOp, p.ID(), int64(p.Now()), int64(len(d.commands)), 0, "")
	}
	d.lock.Release(p)
}

// Commands returns every command posted so far.
func (d *Display) Commands() []Command { return d.commands }

// CommandCount returns the number of commands posted so far.
func (d *Display) CommandCount() int { return len(d.commands) }

// TranscriptText returns everything shown on the Transcript.
func (d *Display) TranscriptText() string { return d.transcript.String() }

// Sensor is the input device. Injection happens at the device level (from
// machine event callbacks, no virtual processor); interpreters transfer
// events out under the input lock.
type Sensor struct {
	lock    *firefly.Spinlock
	pending []Event
}

// NewSensor creates a sensor on machine m.
func NewSensor(m *firefly.Machine, locksEnabled bool) *Sensor {
	if s := m.Sanitizer(); s != nil {
		s.RegisterGuard("input-queue", "input")
	}
	return &Sensor{lock: m.NewSpinlock("input", locksEnabled)}
}

// Inject adds a device-level event; called from Machine.At callbacks.
func (s *Sensor) Inject(e Event) { s.pending = append(s.pending, e) }

// HasPending reports whether any event is waiting (an unsynchronized
// peek, as a polling interpreter would perform).
func (s *Sensor) HasPending() bool { return len(s.pending) > 0 }

// Take removes and returns the oldest event under the input lock,
// charging one input operation. ok is false when no event is pending.
func (s *Sensor) Take(p *firefly.Proc) (e Event, ok bool) {
	s.lock.Acquire(p)
	if san := p.Machine().Sanitizer(); san != nil {
		san.OnAccess(p.ID(), int64(p.Now()), "input-queue")
	}
	if len(s.pending) > 0 {
		e = s.pending[0]
		copy(s.pending, s.pending[1:])
		s.pending = s.pending[:len(s.pending)-1]
		ok = true
		p.Advance(p.Machine().Costs().InputOp)
		if r := p.Machine().Recorder(); r != nil {
			r.Emit(trace.KInputOp, p.ID(), int64(p.Now()), int64(len(s.pending)), 0, "")
		}
	}
	s.lock.Release(p)
	return e, ok
}
