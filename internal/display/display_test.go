package display

import (
	"testing"

	"mst/internal/firefly"
)

func TestDisplaySerializesCommands(t *testing.T) {
	m := firefly.New(2, firefly.DefaultCosts())
	d := NewDisplay(m, true)
	for i := 0; i < 2; i++ {
		m.Start(i, func(p *firefly.Proc) {
			for k := 0; k < 20; k++ {
				d.PostText(p, "x", k, p.ID())
				p.CheckYield()
			}
		})
	}
	m.Run(nil)
	if d.CommandCount() != 40 {
		t.Fatalf("commands = %d, want 40", d.CommandCount())
	}
	// Timestamps must be non-decreasing per processor and distinct
	// overall (the lock serializes them in virtual time).
	times := map[firefly.Time]bool{}
	for _, c := range d.Commands() {
		if times[c.At] {
			t.Fatalf("two commands posted at the same instant %v", c.At)
		}
		times[c.At] = true
	}
	var contended bool
	for _, ls := range m.LockStats() {
		if ls.Name == "display" && ls.Contentions > 0 {
			contended = true
		}
	}
	if !contended {
		t.Fatal("expected display lock contention with two busy writers")
	}
}

func TestTranscriptAccumulates(t *testing.T) {
	m := firefly.New(1, firefly.DefaultCosts())
	d := NewDisplay(m, false)
	m.Start(0, func(p *firefly.Proc) {
		d.TranscriptShow(p, "hello ")
		d.TranscriptShow(p, "world")
	})
	m.Run(nil)
	if d.TranscriptText() != "hello world" {
		t.Fatalf("transcript = %q", d.TranscriptText())
	}
}

func TestSensorInjectAndTake(t *testing.T) {
	m := firefly.New(1, firefly.DefaultCosts())
	s := NewSensor(m, true)
	m.At(50, func() { s.Inject(Event{Kind: EvKey, Key: 'a'}) })
	m.At(60, func() { s.Inject(Event{Kind: EvKey, Key: 'b'}) })
	var got []rune
	m.Start(0, func(p *firefly.Proc) {
		for len(got) < 2 && p.Now() < 10000 {
			if s.HasPending() {
				if e, ok := s.Take(p); ok {
					got = append(got, e.Key)
				}
			}
			p.Advance(10)
			p.CheckYield()
		}
	})
	m.Run(nil)
	if len(got) != 2 || got[0] != 'a' || got[1] != 'b' {
		t.Fatalf("events = %v", got)
	}
}

func TestTakeOnEmptySensor(t *testing.T) {
	m := firefly.New(1, firefly.DefaultCosts())
	s := NewSensor(m, false)
	m.Start(0, func(p *firefly.Proc) {
		if _, ok := s.Take(p); ok {
			t.Error("Take on empty sensor returned an event")
		}
	})
	m.Run(nil)
}
