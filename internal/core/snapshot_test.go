package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveAndLoadImage(t *testing.T) {
	s := newSystem(t, nil)
	// Mutate the image: a new class, a global, some state.
	if _, err := s.EvaluateRaw(
		"Object subclass: 'SnapState' instanceVariableNames: 'n' category: 'Tests'"); err != nil {
		t.Fatal(err)
	}
	if err := s.FileIn("snap.st", `!SnapState methodsFor: 'counting'!
bump
	n isNil ifTrue: [n := 0].
	n := n + 1.
	^n! !
`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EvaluateRaw("Smalltalk at: 'TheCounter' put: SnapState new"); err != nil {
		t.Fatal(err)
	}
	if n, err := s.EvaluateInt("TheCounter bump. TheCounter bump"); err != nil || n != 2 {
		t.Fatalf("bump = %d, %v", n, err)
	}

	var buf bytes.Buffer
	if err := s.SaveImage(&buf); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	// The running system keeps working after the snapshot.
	if n, err := s.EvaluateInt("TheCounter bump"); err != nil || n != 3 {
		t.Fatalf("post-snapshot bump = %d, %v", n, err)
	}

	// Load into a fresh machine: the counter resumes from the
	// snapshotted value (2), not the later one.
	loaded, err := LoadImage(5, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	defer loaded.Shutdown()
	if n, err := loaded.EvaluateInt("TheCounter bump"); err != nil || n != 3 {
		t.Fatalf("loaded bump = %d, %v (errors: %v)", n, err, loaded.VM.Errors())
	}
	// The whole library still works in the loaded image.
	if out, err := loaded.Evaluate("(1 to: 10) inject: 0 into: [:a :b | a + b]"); err != nil || out != "55" {
		t.Fatalf("loaded eval = %q, %v", out, err)
	}
	if out, err := loaded.Evaluate("Collection printHierarchy size > 10"); err != nil || out != "true" {
		t.Fatalf("loaded browse = %q, %v", out, err)
	}
}

func TestSnapshotFromSmalltalk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.image")
	s := newSystem(t, nil)
	if _, err := s.EvaluateRaw("Smalltalk at: 'Marker' put: 77"); err != nil {
		t.Fatal(err)
	}
	// The snapshot primitive follows the paper's activeProcess
	// protocol and the snapshotting Process continues afterwards.
	if n, err := s.EvaluateInt("Smalltalk snapshotTo: '" + path + "'. Marker + 1"); err != nil || n != 78 {
		t.Fatalf("continue after snapshot = %d, %v", n, err)
	}
	// The scheduler's activeProcess slot is empty again.
	if out, err := s.Evaluate("(Processor instVarAt: 2) isNil"); err != nil || out != "true" {
		t.Fatalf("activeProcess slot = %q, %v", out, err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := LoadImage(2, f)
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	defer loaded.Shutdown()
	if n, err := loaded.EvaluateInt("Marker"); err != nil || n != 77 {
		t.Fatalf("loaded marker = %d, %v", n, err)
	}
}

func TestSnapshotPreservesBackgroundProcesses(t *testing.T) {
	s := newSystem(t, nil)
	// A background process that keeps incrementing a global counter.
	if _, err := s.EvaluateRaw("Smalltalk at: 'Ticks' put: (Array with: 0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EvaluateRaw(
		"[[true] whileTrue: [Ticks at: 1 put: (Ticks at: 1) + 1. Processor yield]] fork"); err != nil {
		t.Fatal(err)
	}
	if n, err := s.EvaluateInt("Ticks at: 1"); err != nil || n == 0 {
		t.Fatalf("background not ticking: %d, %v", n, err)
	}
	var buf bytes.Buffer
	if err := s.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadImage(3, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Shutdown()
	// In the loaded image the background Process resumes and keeps
	// ticking.
	a, err := loaded.EvaluateInt("Ticks at: 1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.EvaluateInt("| t | t := Ticks at: 1. 1 to: 500 do: [:i | Processor yield]. Ticks at: 1")
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("background process did not resume: %d -> %d", a, b)
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(1, bytes.NewReader([]byte("not an image"))); err == nil {
		t.Fatal("garbage accepted as image")
	}
}
