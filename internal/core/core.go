// Package core assembles Multiprocessor Smalltalk: a virtual Firefly, the
// object memory, the replicated interpreters, and the virtual image, under
// one configuration surface that expresses every system state and design
// alternative the paper measures — baseline BS versus MS, the number of
// processors, serialized versus replicated method caches and free context
// lists, and serialized versus per-processor allocation.
package core

import (
	"fmt"
	"io"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/image"
	"mst/internal/interp"
	"mst/internal/object"
	"mst/internal/sanitize"
	"mst/internal/trace"
)

// Mode selects baseline BS or Multiprocessor Smalltalk.
type Mode int

const (
	// ModeMS is Multiprocessor Smalltalk: multiprocessor support
	// enabled (virtual locks, store-check serialization, replicated
	// caches with their access overhead).
	ModeMS Mode = iota
	// ModeBaseline is "baseline BS": the identical interpreter with
	// all multiprocessor support compiled out, the paper's reference
	// point. Always runs on one processor.
	ModeBaseline
)

func (m Mode) String() string {
	if m == ModeBaseline {
		return "baseline-BS"
	}
	return "MS"
}

// Config configures a complete system.
type Config struct {
	Mode       Mode
	Processors int // the Firefly had five

	// The paper's strategy alternatives (§3.2 and §4).
	MethodCache  interp.CachePolicy
	FreeContexts interp.FreeCtxPolicy
	Alloc        heap.AllocPolicy

	// Extensions beyond the paper (MS+): per-send-site inline caches
	// and a 2-way set-associative method cache. Both off/1 in
	// DefaultConfig and BaselineConfig so the reproduced Table 2 /
	// Figure 2 numbers are bit-identical to the paper-faithful system.
	InlineCache interp.ICPolicy
	CacheWays   int

	// Object memory sizing, in 8-byte words.
	EdenWords     int
	SurvivorWords int
	OldWords      int
	TenureAge     int

	QuantumBytecodes int
	TimeLimit        firefly.Time // 0: none

	// Observability (zero cost when off; never changes virtual time or
	// any counter when on). TraceEvents is the flight-recorder ring
	// capacity in events (0 disables tracing); Profile attaches the
	// selector-level virtual-time profiler after boot; Histograms
	// attaches the latency-distribution registry (GC pauses, scavenge
	// phases, dispatch latency, per-lock acquire waits — Metrics
	// schemaVersion 3's latency section); AllocProfile attaches the
	// allocation-site profiler after boot (deterministic mode only).
	TraceEvents  int
	Profile      bool
	Histograms   bool
	AllocProfile bool
	// Sanitize attaches the mscheck invariant sanitizer (lockset +
	// write-barrier verifier); violations are collected, never fatal.
	// Like tracing, it reads virtual clocks but never advances them:
	// a sanitized run is bit-identical to an unsanitized one.
	Sanitize bool

	// ParScavenge enables the cooperative parallel scavenger: during the
	// stop-the-world window every processor copies survivors through a
	// per-worker buffer, feeding a work-stealing grey deque. Off by
	// default; with it off the serial paper-faithful scavenger runs and
	// every golden number is bit-identical.
	ParScavenge bool

	// ConcMark enables the concurrent old-space marker: full
	// collections become snapshot-at-the-beginning marking cycles with
	// two short stop-the-world windows, mark slices interleaved with
	// mutator quanta, and a lazy free-list sweep in place of
	// compaction. Off by default; with it off the serial mark-compact
	// runs and every golden number is bit-identical.
	ConcMark bool

	// JIT enables the msjit template tier: hot methods are compiled
	// into arrays of pre-specialized closures under the inline caches.
	// Off by default; compiled code charges the same virtual costs as
	// the interpreter, so virtual times and goldens are bit-identical
	// either way — only host time changes.
	JIT bool

	// Parallel runs the virtual processors on real goroutines after a
	// deterministic boot: virtual spinlocks become CAS test-and-set
	// words, scavenges stop the world via a safepoint rendezvous, and
	// the flight recorder (if any) shards per processor. Virtual
	// clocks are then host-schedule-dependent — determinism and the
	// golden numbers hold only with Parallel off (the default).
	Parallel bool

	// ExtraSources are additional chunk-format sources filed in after
	// the kernel (applications, benchmarks).
	ExtraSources []string
}

// DefaultConfig is the production MS configuration on a five-processor
// Firefly.
func DefaultConfig() Config {
	return Config{
		Mode:          ModeMS,
		Processors:    5,
		MethodCache:   interp.CacheReplicated,
		FreeContexts:  interp.FreeCtxPerProcessor,
		Alloc:         heap.AllocSerialized,
		EdenWords:     16 << 10, // ~128 KB: near the paper's 80 KB eden
		SurvivorWords: 4 << 10,
		OldWords:      4 << 20,
		TenureAge:     4,
	}
}

// BaselineConfig is the paper's reference point: BS ported to the
// Firefly, no multiprocessor support, one processor.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeBaseline
	c.Processors = 1
	return c
}

// MSPlusConfig is MS extended past the paper: polymorphic per-send-site
// inline caches in front of the replicated method caches, and a 2-way
// set-associative method cache. This is the configuration the
// inline-cache ablation measures against DefaultConfig.
func MSPlusConfig() Config {
	c := DefaultConfig()
	c.InlineCache = interp.ICPoly
	c.CacheWays = 2
	return c
}

// System is a booted Multiprocessor Smalltalk.
type System struct {
	Cfg Config
	VM  *interp.VM

	background int // background Processes spawned
}

// busyWorkerSource defines the paper's "busy" competitor: modeled on the
// sweep-hand background Process, "it includes message sends and object
// allocations, and also contends for the display."
const busyWorkerSource = `
Object subclass: #BusyWorker
	instanceVariableNames: 'ticks'
	category: 'Benchmarks'!

!BusyWorker methodsFor: 'running'!
step
	"One sweep-hand tick: sends, allocations, display contention."
	| a s |
	ticks := ticks + 1.
	a := Array new: 12.
	1 to: 6 do: [:i | a at: i put: (self nudge: ticks + i)].
	s := WriteStream on: (String new: 8).
	ticks printOn: s.
	a at: 7 put: s contents.
	Display displayString: (a at: 7) at: ticks \\ 70 + 1 at: 23.
	^a!
nudge: x
	^x + 1!
run
	ticks := 0.
	[true] whileTrue: [self step]! !

!BusyWorker class methodsFor: 'instance creation'!
spawn
	| w |
	w := self new.
	w setTicks.
	[w run] fork.
	^w! !

!BusyWorker methodsFor: 'initialization'!
setTicks
	ticks := 0! !
`

// NewSystem boots a system under cfg.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("core: need at least one processor")
	}
	if cfg.Mode == ModeBaseline && cfg.Processors != 1 {
		return nil, fmt.Errorf("core: baseline BS is single-threaded; use one processor")
	}
	if cfg.Parallel && cfg.Profile {
		// The profiler's name caches are unsynchronized host maps keyed
		// by oops; profile deterministic runs instead.
		return nil, fmt.Errorf("core: -profile requires the deterministic mode (drop -parallel)")
	}
	if cfg.Parallel && cfg.AllocProfile {
		// Site attribution reads the per-processor interpreter state
		// mid-bytecode and keeps unsynchronized address maps.
		return nil, fmt.Errorf("core: -allocprofile requires the deterministic mode (drop -parallel)")
	}
	hcfg := heap.Config{
		OldWords:      cfg.OldWords,
		EdenWords:     cfg.EdenWords,
		SurvivorWords: cfg.SurvivorWords,
		TenureAge:     cfg.TenureAge,
		Policy:        cfg.Alloc,
	}
	if hcfg.OldWords == 0 {
		hcfg = heap.DefaultConfig()
		hcfg.Policy = cfg.Alloc
	}
	hcfg.Parallel = cfg.Parallel
	hcfg.ParScavenge = cfg.ParScavenge
	hcfg.ConcMark = cfg.ConcMark
	vcfg := interp.Config{
		MSMode:           cfg.Mode == ModeMS,
		MethodCache:      cfg.MethodCache,
		CacheWays:        cfg.CacheWays,
		InlineCache:      cfg.InlineCache,
		FreeContexts:     cfg.FreeContexts,
		QuantumBytecodes: cfg.QuantumBytecodes,
		PanicOnVMError:   true,
		Parallel:         cfg.Parallel,
		JIT:              cfg.JIT,
	}
	m := firefly.New(cfg.Processors, firefly.DefaultCosts())
	if cfg.TimeLimit > 0 {
		m.SetTimeLimit(cfg.TimeLimit)
	}
	if cfg.TraceEvents > 0 {
		// Attach before boot so every layer caches the recorder. In
		// parallel mode each processor gets a private ring, merged by
		// virtual time at export.
		if cfg.Parallel {
			m.SetRecorder(trace.NewShardedRecorder(cfg.TraceEvents, cfg.Processors))
		} else {
			m.SetRecorder(trace.NewRecorder(cfg.TraceEvents))
		}
	}
	if cfg.Sanitize {
		// Likewise before boot: heap and VM cache the checker and
		// register their guarded structures during construction.
		m.SetSanitizer(sanitize.New())
	}
	if cfg.Histograms {
		// Likewise before boot: the heap caches the registry and locks
		// pick up their wait histograms as they are registered.
		m.SetLatencyHists(trace.NewLatencyHists())
	}
	sources := append([]string{busyWorkerSource}, cfg.ExtraSources...)
	vm, err := image.BootOn(m, hcfg, vcfg, sources...)
	if err != nil {
		return nil, err
	}
	if cfg.Profile {
		vm.EnableProfiler()
	}
	if cfg.AllocProfile {
		vm.EnableAllocProfiler()
	}
	if cfg.Parallel {
		// Boot (image construction) ran deterministically; from here on
		// the processors run on real goroutines.
		m.SetParallel(true)
	}
	return &System{Cfg: cfg, VM: vm}, nil
}

// Evaluate runs source as a user-priority Process to completion and
// answers the result's printString (computed by image code).
func (s *System) Evaluate(source string) (string, error) {
	return image.EvaluateToString(s.VM, source)
}

// EvaluateRaw runs source and answers the raw result oop, without
// invoking image printing.
func (s *System) EvaluateRaw(source string) (object.OOP, error) {
	res, err := s.VM.Evaluate(source)
	if err != nil {
		return object.Nil, err
	}
	return res.Value, nil
}

// EvaluateInt runs source expecting a SmallInteger result.
func (s *System) EvaluateInt(source string) (int64, error) {
	o, err := s.EvaluateRaw(source)
	if err != nil {
		return 0, err
	}
	if !o.IsInt() {
		return 0, fmt.Errorf("core: %q answered %s, not an integer",
			source, s.VM.DescribeOOP(o))
	}
	return o.Int(), nil
}

// FileIn loads additional chunk-format source.
func (s *System) FileIn(name, source string) error {
	return image.FileIn(s.VM, name, source)
}

// SpawnIdleProcesses forks n of the paper's idle Processes: the trivial
// expression [true] whileTrue, which the compiler translates "into
// bytecode which neither looks up messages nor allocates memory".
func (s *System) SpawnIdleProcesses(n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.EvaluateRaw("[[true] whileTrue] fork"); err != nil {
			return err
		}
		s.background++
	}
	return nil
}

// SpawnBusyProcesses forks n sweep-hand-style busy Processes (sends,
// allocations, display contention).
func (s *System) SpawnBusyProcesses(n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.EvaluateRaw("BusyWorker spawn"); err != nil {
			return err
		}
		s.background++
	}
	return nil
}

// BackgroundProcesses returns how many background Processes were spawned.
func (s *System) BackgroundProcesses() int { return s.background }

// Stats aggregates every layer's statistics.
type Stats struct {
	Heap   heap.Stats
	Interp interp.Stats
	Locks  []firefly.LockStats
	Procs  []firefly.ProcStats
}

// Stats returns a snapshot of the system's statistics.
func (s *System) Stats() Stats {
	m := s.VM.M
	procs := make([]firefly.ProcStats, m.NumProcs())
	for i := range procs {
		procs[i] = m.Proc(i).Stats()
	}
	return Stats{
		Heap:   s.VM.H.Stats(),
		Interp: s.VM.Stats(),
		Locks:  m.LockStats(),
		Procs:  procs,
	}
}

// Metrics assembles the unified metrics registry: every layer's
// counters in one typed, versioned snapshot with derived percentages.
// All reports (msbench -json, -contention, mst -stats) read from it.
func (s *System) Metrics() trace.Metrics {
	m := s.VM.M
	hs := s.VM.H.Stats()
	is := s.VM.Stats()
	var mt trace.Metrics
	mt.Machine = trace.MachineMetrics{
		NumProcs:         m.NumProcs(),
		Switches:         m.Switches(),
		VirtualTimeTicks: int64(s.VirtualTime()),
	}
	for i := 0; i < m.NumProcs(); i++ {
		ps := m.Proc(i).Stats()
		mt.Procs = append(mt.Procs, trace.ProcMetrics{
			Proc:       i,
			BusyTicks:  int64(ps.Busy),
			SpinTicks:  int64(ps.Spin),
			StallTicks: int64(ps.Stall),
			IdleTicks:  int64(ps.Idle),
			ClockTicks: int64(ps.Clock),
		})
	}
	for _, l := range m.LockStats() {
		mt.Locks = append(mt.Locks, trace.LockMetrics{
			Name:         l.Name,
			Acquisitions: l.Acquisitions,
			Contentions:  l.Contentions,
			SpinTicks:    int64(l.SpinTime),
		})
	}
	mt.Heap = trace.HeapMetrics{
		Allocations:       hs.Allocations,
		AllocatedWords:    hs.AllocatedWords,
		TLABRefills:       hs.TLABRefills,
		Scavenges:         hs.Scavenges,
		CopiedObjects:     hs.CopiedObjects,
		CopiedWords:       hs.CopiedWords,
		TenuredObjects:    hs.TenuredObjects,
		TenuredWords:      hs.TenuredWords,
		StoreChecks:       hs.StoreChecks,
		ParScavenges:      hs.ParScavenges,
		ScavengeSteals:    hs.ScavengeSteals,
		ScavengeTicks:     int64(hs.ScavengeTime),
		ScavengeMaxPause:  int64(hs.ScavengeMaxPause),
		LastSurvivors:     hs.LastSurvivors,
		RememberedPeak:    hs.RememberedPeak,
		OldWordsInUse:     hs.OldWordsInUse,
		EdenWordsInUse:    hs.EdenWordsInUse,
		FullCollections:   hs.FullCollections,
		FullGCTicks:       int64(hs.FullGCTime),
		FullGCMaxPause:    int64(hs.FullGCMaxPause),
		ReclaimedOldWords: hs.ReclaimedOldWords,
		ConcMarkCycles:    hs.ConcMarkCycles,
		ConcMarkSlices:    hs.ConcMarkSlices,
		ConcMarkMarked:    hs.ConcMarkMarked,
		ConcMarkShaded:    hs.ConcMarkShaded,
	}
	mt.Interp = trace.InterpMetrics{
		Bytecodes:        is.Bytecodes,
		Sends:            is.Sends,
		CacheHits:        is.CacheHits,
		CacheMisses:      is.CacheMisses,
		ICHits:           is.ICHits,
		ICMisses:         is.ICMisses,
		ICFills:          is.ICFills,
		ICPolySites:      is.ICPolySites,
		ICMegaSites:      is.ICMegaSites,
		DictProbes:       is.DictProbes,
		DNUs:             is.DNUs,
		Primitives:       is.Primitives,
		PrimFailures:     is.PrimFailures,
		ContextsAlloc:    is.ContextsAlloc,
		ContextsRecycled: is.ContextsRecycled,
		ProcessSwitches:  is.ProcessSwitches,
		SemWaits:         is.SemWaits,
		SemSignals:       is.SemSignals,
		VMErrors:         is.VMErrors,
		JITCompiles:      is.JITCompiles,
		JITDeopts:        is.JITDeopts,
		JITBytecodes:     is.JITBytecodes,
	}
	if r := m.Recorder(); r != nil {
		mt.Trace = trace.TraceMetrics{Events: r.Total(), Dropped: r.Dropped()}
	}
	if lh := m.LatencyHists(); lh != nil {
		mt.Latency = lh.Snapshot()
	}
	mt.Derive()
	return mt
}

// WriteTrace exports the flight recorder's contents as Chrome
// trace-event / Perfetto JSON. It errors when tracing was not enabled.
func (s *System) WriteTrace(w io.Writer) error {
	r := s.VM.M.Recorder()
	if r == nil {
		return fmt.Errorf("core: tracing was not enabled (Config.TraceEvents)")
	}
	return trace.WritePerfetto(w, r.Events(), s.VM.M.NumProcs())
}

// ProfileReport finalizes the selector profiler and renders its top-N
// table. It errors when profiling was not enabled.
func (s *System) ProfileReport(topN int) (string, error) {
	pf := s.VM.Profiler()
	if pf == nil {
		return "", fmt.Errorf("core: profiling was not enabled (Config.Profile)")
	}
	s.VM.ProfilerFlush()
	return pf.Report(topN), nil
}

// GCReport renders the latency-distribution rollup: GC pause and
// scavenge-phase percentiles, dispatch latency, lock waits, and the
// parallel-scavenge critical paths. It errors when histograms were not
// enabled.
func (s *System) GCReport() (string, error) {
	lh := s.VM.M.LatencyHists()
	if lh == nil {
		return "", fmt.Errorf("core: histograms were not enabled (Config.Histograms)")
	}
	return lh.Report(), nil
}

// AllocProfileReport renders the allocation-site profiler's top-N table
// and the object-demographics census. It errors when allocation
// profiling was not enabled.
func (s *System) AllocProfileReport(topN int) (string, error) {
	ap := s.VM.AllocProfiler()
	if ap == nil {
		return "", fmt.Errorf("core: allocation profiling was not enabled (Config.AllocProfile)")
	}
	return ap.Report(topN), nil
}

// Sanitizer returns the attached invariant checker, or nil when
// Config.Sanitize was off.
func (s *System) Sanitizer() *sanitize.Checker { return s.VM.M.Sanitizer() }

// SanitizeReport renders the checker's findings. It errors when the
// sanitizer was not enabled.
func (s *System) SanitizeReport() (string, error) {
	san := s.Sanitizer()
	if san == nil {
		return "", fmt.Errorf("core: sanitizer was not enabled (Config.Sanitize)")
	}
	return san.Report(), nil
}

// VirtualTime returns the maximum virtual clock across processors.
func (s *System) VirtualTime() firefly.Time {
	var max firefly.Time
	for i := 0; i < s.VM.M.NumProcs(); i++ {
		if t := s.VM.M.Proc(i).Now(); t > max {
			max = t
		}
	}
	return max
}

// TranscriptText returns everything written to the Transcript.
func (s *System) TranscriptText() string { return s.VM.Disp.TranscriptText() }

// SaveImage writes a snapshot of the running image to w after parking
// every Process (including background workers); the running system
// continues afterwards. Smalltalk code can snapshot itself with
// `Smalltalk snapshotTo: 'path'`.
func (s *System) SaveImage(w io.Writer) error {
	var snapErr error
	err := s.VM.Do(func(p *firefly.Proc) {
		s.VM.ParkAllProcesses(p)
		snapErr = image.WriteSnapshot(s.VM, w)
	})
	if err != nil {
		return err
	}
	return snapErr
}

// Checkpoint is an in-memory snapshot of a booted system, reusable as
// the base of any number of clones. The multi-tenant image server
// captures one checkpoint of the booted base image and materializes a
// private session per tenant from it; the checkpoint itself is
// immutable after capture, so clones share it safely.
type Checkpoint struct {
	state *image.State
	cfg   Config
}

// Checkpoint captures the system in memory after parking every Process
// (the same quiesce SaveImage performs); the running system continues
// afterwards.
func (s *System) Checkpoint() (*Checkpoint, error) {
	cp := &Checkpoint{cfg: s.Cfg}
	err := s.VM.Do(func(p *firefly.Proc) {
		s.VM.ParkAllProcesses(p)
		cp.state = image.CaptureState(s.VM)
	})
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// NewFromCheckpoint boots an independent system from a checkpoint on a
// fresh machine with the given processor count. Like LoadImage, but
// without a serialization round trip: the clone copies the checkpoint's
// heap words directly, so cloning N tenants from one checkpoint costs N
// heap copies and no gob decode.
func NewFromCheckpoint(processors int, cp *Checkpoint) (*System, error) {
	if processors < 1 {
		return nil, fmt.Errorf("core: need at least one processor")
	}
	m := firefly.New(processors, firefly.DefaultCosts())
	vm, err := image.CloneVM(m, cp.state)
	if err != nil {
		return nil, err
	}
	cfg := cp.cfg
	cfg.Processors = processors
	cfg.Parallel = false
	return &System{Cfg: cfg, VM: vm}, nil
}

// LoadImage boots a system from a snapshot on a fresh machine with the
// given processor count. Processes that were on the ready queue at
// snapshot time resume when evaluation next drives the machine.
func LoadImage(processors int, r io.Reader) (*System, error) {
	if processors < 1 {
		return nil, fmt.Errorf("core: need at least one processor")
	}
	m := firefly.New(processors, firefly.DefaultCosts())
	vm, err := image.ReadSnapshot(m, r)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.Processors = processors
	if !vm.Cfg.MSMode {
		cfg.Mode = ModeBaseline
	}
	return &System{Cfg: cfg, VM: vm}, nil
}

// Shutdown stops the machine; the system is unusable afterwards.
func (s *System) Shutdown() { s.VM.M.Shutdown() }
