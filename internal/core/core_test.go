package core

import (
	"testing"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/interp"
)

func smallConfig(mutate func(*Config)) Config {
	c := DefaultConfig()
	c.EdenWords = 16 << 10
	c.SurvivorWords = 4 << 10
	c.OldWords = 2 << 20
	c.TimeLimit = 1 << 40
	if mutate != nil {
		mutate(&c)
	}
	return c
}

func newSystem(t *testing.T, mutate func(*Config)) *System {
	t.Helper()
	s, err := NewSystem(smallConfig(mutate))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestSystemBootsAndEvaluates(t *testing.T) {
	s := newSystem(t, nil)
	got, err := s.Evaluate("(1 to: 10) inject: 0 into: [:a :b | a + b]")
	if err != nil {
		t.Fatal(err)
	}
	if got != "55" {
		t.Fatalf("sum = %q", got)
	}
	if n, err := s.EvaluateInt("6 * 7"); err != nil || n != 42 {
		t.Fatalf("EvaluateInt = %d, %v", n, err)
	}
}

func TestBaselineConfigRejectsMultipleProcessors(t *testing.T) {
	c := BaselineConfig()
	c.Processors = 3
	if _, err := NewSystem(c); err == nil {
		t.Fatal("baseline with 3 processors accepted")
	}
}

func TestBaselineSystemRuns(t *testing.T) {
	s := newSystem(t, func(c *Config) {
		c.Mode = ModeBaseline
		c.Processors = 1
	})
	if n, err := s.EvaluateInt("3 + 4"); err != nil || n != 7 {
		t.Fatalf("baseline eval = %d, %v", n, err)
	}
	for _, ls := range s.Stats().Locks {
		if ls.Acquisitions != 0 {
			t.Errorf("lock %q used in baseline mode", ls.Name)
		}
	}
}

func TestIdleProcessesKeepRunning(t *testing.T) {
	s := newSystem(t, nil)
	if err := s.SpawnIdleProcesses(4); err != nil {
		t.Fatal(err)
	}
	if s.BackgroundProcesses() != 4 {
		t.Fatalf("background = %d", s.BackgroundProcesses())
	}
	// Evaluation still works with idle competition, and the idle
	// Processes consume processor time on the other processors.
	if n, err := s.EvaluateInt("| s | s := 0. 1 to: 2000 do: [:i | s := s + i]. s"); err != nil || n != 2001000 {
		t.Fatalf("eval under idle = %d, %v", n, err)
	}
	busyProcs := 0
	for _, ps := range s.Stats().Procs {
		if ps.Busy > 1000 {
			busyProcs++
		}
	}
	if busyProcs < 2 {
		t.Errorf("idle processes did not occupy other processors (busy on %d)", busyProcs)
	}
}

func TestBusyProcessesInterfere(t *testing.T) {
	s := newSystem(t, nil)
	if err := s.SpawnBusyProcesses(2); err != nil {
		t.Fatal(err)
	}
	if n, err := s.EvaluateInt("| s | s := 0. 1 to: 2000 do: [:i | s := s + i]. s"); err != nil || n != 2001000 {
		t.Fatalf("eval under busy = %d, %v", n, err)
	}
	// Busy workers allocate and post to the display.
	if s.VM.Disp.CommandCount() == 0 {
		t.Error("busy workers never touched the display")
	}
	if s.Stats().Heap.Allocations == 0 {
		t.Error("no allocations recorded")
	}
}

func TestStatsAggregation(t *testing.T) {
	s := newSystem(t, nil)
	if _, err := s.EvaluateInt("(Array new: 100) size"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Interp.Bytecodes == 0 || st.Interp.Sends == 0 {
		t.Errorf("interp stats empty: %+v", st.Interp)
	}
	if st.Heap.Allocations == 0 {
		t.Error("heap stats empty")
	}
	if len(st.Procs) != 5 || len(st.Locks) == 0 {
		t.Errorf("procs=%d locks=%d", len(st.Procs), len(st.Locks))
	}
	if s.VirtualTime() == 0 {
		t.Error("virtual time did not advance")
	}
}

func TestAlternativePoliciesBoot(t *testing.T) {
	policies := []func(*Config){
		func(c *Config) { c.MethodCache = interp.CacheSharedLocked },
		func(c *Config) { c.FreeContexts = interp.FreeCtxSharedLocked },
		func(c *Config) { c.Alloc = heap.AllocPerProcessor },
	}
	for i, mutate := range policies {
		s := newSystem(t, mutate)
		if n, err := s.EvaluateInt("| s | s := 0. 1 to: 100 do: [:i | s := s + i]. s"); err != nil || n != 5050 {
			t.Fatalf("policy %d: %d, %v", i, n, err)
		}
		s.Shutdown()
	}
}

func TestExtraSources(t *testing.T) {
	src := `Object subclass: #Greeter
	instanceVariableNames: ''
	category: 'Apps'!

!Greeter methodsFor: 'greeting'!
greet
	^'hello from extra source'! !
`
	s := newSystem(t, func(c *Config) { c.ExtraSources = append(c.ExtraSources, src) })
	got, err := s.Evaluate("Greeter new greet")
	if err != nil {
		t.Fatal(err)
	}
	if got != "'hello from extra source'" {
		t.Fatalf("greet = %q", got)
	}
}

func TestTranscriptCapture(t *testing.T) {
	s := newSystem(t, nil)
	if _, err := s.EvaluateRaw("Transcript show: 'out'"); err != nil {
		t.Fatal(err)
	}
	if s.TranscriptText() != "out" {
		t.Fatalf("transcript = %q", s.TranscriptText())
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() firefly.Time {
		s, err := NewSystem(smallConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		if err := s.SpawnBusyProcesses(2); err != nil {
			t.Fatal(err)
		}
		if _, err := s.EvaluateInt("| s | s := 0. 1 to: 3000 do: [:i | s := s + i]. s"); err != nil {
			t.Fatal(err)
		}
		return s.VirtualTime()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual times differ across identical runs: %v vs %v", a, b)
	}
}
