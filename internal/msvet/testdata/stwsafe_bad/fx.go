// Package fixture injects one stwsafe violation: refill allocates and
// is statically reachable (through one call) from inside the
// stop-the-world window in Collect.
package fixture

type Proc struct{ id int }

type Machine struct{ stopped bool }

func (m *Machine) StopTheWorld(p *Proc) bool { m.stopped = true; return true }
func (m *Machine) ResumeTheWorld(p *Proc)    { m.stopped = false }

type Heap struct {
	m    *Machine
	next uint64
}

func (h *Heap) Allocate(p *Proc, words uint64) uint64 {
	a := h.next
	h.next += words
	return a
}

// refill is only ever called from inside the window; the Allocate call
// below is the injected violation.
func (h *Heap) refill(p *Proc) uint64 {
	return h.Allocate(p, 8)
}

func (h *Heap) Collect(p *Proc) {
	if !h.m.StopTheWorld(p) {
		return
	}
	defer h.m.ResumeTheWorld(p)
	h.refill(p)
}
