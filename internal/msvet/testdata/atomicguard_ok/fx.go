// Package fixture is the clean twin of atomicguard_bad: the plain read
// sits in a function annotated //msvet:atomic-excluded, and the other
// accesses are atomic, length-only, or of untracked fields.
package fixture

import "sync/atomic"

type Counter struct {
	hits uint64
	cold uint64
}

func (c *Counter) Bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *Counter) Load() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// Snapshot folds the counter after the run.
//
//msvet:atomic-excluded read-only snapshot taken after every worker goroutine has joined
func (c *Counter) Snapshot() uint64 {
	return c.hits + c.cold
}
