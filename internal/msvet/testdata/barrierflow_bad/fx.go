// Package fixture injects one barrierflow violation: poke launders a
// raw heap store past the annotated funnel through an extra call
// level, and is reachable from the exported Tweak.
package fixture

type Proc struct{ id int }

type Heap struct {
	mem []uint64
}

// storeWord is the audited funnel every checked store goes through.
//
//msvet:heap-writer the single barrier exit point of this fixture
func (h *Heap) storeWord(i, v uint64) { h.mem[i] = v }

func (h *Heap) Store(p *Proc, i, v uint64) { h.storeWord(i, v) }

// poke launders a raw store past the funnel — the injected violation.
func (h *Heap) poke(i, v uint64) {
	h.mem[i] = v
}

func (h *Heap) Tweak(p *Proc, i, v uint64) { h.poke(i, v) }
