// Package fixture is the clean twin of stwsafe_bad: the helper called
// from the window does not allocate, and the one lock acquired inside
// the window carries a //msvet:stw-safe annotation.
package fixture

type Proc struct{ id int }

type Machine struct{ stopped bool }

func (m *Machine) StopTheWorld(p *Proc) bool { m.stopped = true; return true }
func (m *Machine) ResumeTheWorld(p *Proc)    { m.stopped = false }

type Spinlock struct{ name string }

func NewSpinlock(name string, m *Machine) *Spinlock { return &Spinlock{name: name} }

func (l *Spinlock) Acquire(p *Proc) {}
func (l *Spinlock) Release(p *Proc) {}

type Heap struct {
	m    *Machine
	next uint64
	//msvet:stw-safe collector bookkeeping lock: taken only by the collector inside the window, never held by a parked mutator
	gcMu *Spinlock
}

func NewHeap(m *Machine) *Heap {
	h := &Heap{m: m}
	h.gcMu = NewSpinlock("gc", m)
	return h
}

// refill bumps the scan pointer without allocating.
func (h *Heap) refill(p *Proc) uint64 {
	h.next += 8
	return h.next
}

func (h *Heap) Collect(p *Proc) {
	if !h.m.StopTheWorld(p) {
		return
	}
	defer h.m.ResumeTheWorld(p)
	h.gcMu.Acquire(p)
	h.refill(p)
	h.gcMu.Release(p)
}
