// Package fixture is the clean twin of lockorder_bad: every path takes
// alpha before beta, including the interprocedural one through grab.
package fixture

type Proc struct{ id int }

type Machine struct{}

type Spinlock struct{ name string }

func NewSpinlock(name string, m *Machine) *Spinlock { return &Spinlock{name: name} }

func (l *Spinlock) Acquire(p *Proc) {}
func (l *Spinlock) Release(p *Proc) {}

type Sched struct {
	alpha *Spinlock
	beta  *Spinlock
}

func NewSched(m *Machine) *Sched {
	return &Sched{
		alpha: NewSpinlock("alpha", m),
		beta:  NewSpinlock("beta", m),
	}
}

// grab takes beta on behalf of a caller already holding alpha: the
// alpha -> beta edge is discovered interprocedurally.
func (s *Sched) grab(p *Proc) {
	s.beta.Acquire(p)
	s.beta.Release(p)
}

func (s *Sched) Forward(p *Proc) {
	s.alpha.Acquire(p)
	s.grab(p)
	s.alpha.Release(p)
}

func (s *Sched) Direct(p *Proc) {
	s.alpha.Acquire(p)
	s.beta.Acquire(p)
	s.beta.Release(p)
	s.alpha.Release(p)
}
