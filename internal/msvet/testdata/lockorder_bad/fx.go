// Package fixture injects one static lock-order cycle: Forward
// acquires alpha before beta, Backward acquires beta before alpha.
package fixture

type Proc struct{ id int }

type Machine struct{}

type Spinlock struct{ name string }

func NewSpinlock(name string, m *Machine) *Spinlock { return &Spinlock{name: name} }

func (l *Spinlock) Acquire(p *Proc) {}
func (l *Spinlock) Release(p *Proc) {}

type Sched struct {
	alpha *Spinlock
	beta  *Spinlock
}

func NewSched(m *Machine) *Sched {
	return &Sched{
		alpha: NewSpinlock("alpha", m),
		beta:  NewSpinlock("beta", m),
	}
}

// Forward acquires alpha then beta.
func (s *Sched) Forward(p *Proc) {
	s.alpha.Acquire(p)
	s.beta.Acquire(p)
	s.beta.Release(p)
	s.alpha.Release(p)
}

// Backward acquires beta then alpha — the injected cycle.
func (s *Sched) Backward(p *Proc) {
	s.beta.Acquire(p)
	s.alpha.Acquire(p)
	s.alpha.Release(p)
	s.beta.Release(p)
}
