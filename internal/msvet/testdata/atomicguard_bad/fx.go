// Package fixture injects one atomicguard violation: hits is written
// through sync/atomic in Bump but read plain in Snapshot, with no
// exclusion annotation and no STW cover.
package fixture

import "sync/atomic"

type Counter struct {
	hits uint64
	cold uint64 // never touched atomically: not tracked
}

func (c *Counter) Bump() {
	atomic.AddUint64(&c.hits, 1)
}

// Snapshot reads hits without atomic — the injected violation.
func (c *Counter) Snapshot() uint64 {
	return c.hits + c.cold
}
