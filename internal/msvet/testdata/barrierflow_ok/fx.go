// Package fixture is the clean twin of barrierflow_bad: every store of
// a heap word funnels through the one annotated writer.
package fixture

type Proc struct{ id int }

type Heap struct {
	mem []uint64
}

// storeWord is the audited funnel every checked store goes through.
//
//msvet:heap-writer the single barrier exit point of this fixture
func (h *Heap) storeWord(i, v uint64) { h.mem[i] = v }

func (h *Heap) Store(p *Proc, i, v uint64) { h.storeWord(i, v) }

func (h *Heap) Fill(p *Proc, lo, hi, v uint64) {
	for i := lo; i < hi; i++ {
		h.Store(p, i, v)
	}
}
