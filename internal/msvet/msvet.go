// Package msvet is a custom vet suite enforcing the host-code
// discipline this repository's virtual-time simulation depends on.
//
// Lexical single-file analyzers:
//
//   - virttime:   no time.Now / math/rand in virtual-time packages —
//     host wall-clock or host randomness anywhere in the simulated
//     machine would break bit-identical determinism.
//   - lockpair:   every Spinlock/RWSpinlock acquire is paired with the
//     matching release — lexically somewhere in the same function, and
//     (by path simulation) never still definitely held at a return.
//   - traceguard: trace/sanitize hook emissions are guarded by nil
//     checks, so detached observers cost one pointer test and can
//     never panic.
//   - heapwrite:  fast lexical pre-pass: no raw writes to heap words
//     (`.mem[...]`) outside internal/heap (and none at all in the
//     read-only write-barrier verifier); inside internal/heap the
//     flow-based barrierflow analyzer polices function granularity.
//   - costcharge: internal/jit never invents a virtual-time cost —
//     literal firefly.Time values, .Advance calls, and literal Cost
//     fields are forbidden there; compiled bytecodes must charge
//     through the interpreter's shared cost table.
//
// Call-graph-aware module analyzers (type-checked via go/types over
// the whole module, sharing one loader and one callee-resolution call
// graph — see loader.go, callgraph.go, annotations.go):
//
//   - stwsafe:     computes the set of functions reachable from inside
//     the stop-the-world window (the region between a StopTheWorld
//     call and its matching ResumeTheWorld, plus //msvet:stw-entry
//     roots) and reports any reachable allocation, channel operation,
//     or acquisition of a lock not annotated //msvet:stw-safe.
//   - atomicguard: any struct field accessed through sync/atomic
//     anywhere in the module must be accessed atomically everywhere —
//     plain reads/writes are flagged outside STW-reachable code and
//     //msvet:atomic-excluded functions.
//   - barrierflow: every raw store into object memory (`.mem[...]`)
//     must sit in a //msvet:heap-writer-annotated funnel or in
//     STW-reachable collector code, so helper-function indirection
//     cannot smuggle an unbarriered store past the old file allowlist.
//   - lockorder:   extracts the static lock-acquisition-order graph
//     across the call graph, reports static cycles, and emits the
//     graph as deterministic JSON (`msvet -lockgraph`) for mscheck's
//     runtime subgraph cross-check.
//
// The suite is intentionally stdlib-only (go/ast + go/parser +
// go/types with the source importer): the build environment has no
// module proxy access, so the golang.org/x/tools go/analysis driver
// (and the `go vet -vettool` unitchecker protocol that requires it)
// is unavailable. The Analyzer and Pass types mirror the go/analysis
// API shape so the analyzers could be ported to real
// analysis.Analyzers by swapping the driver.
// Run it as: go run ./cmd/msvet ./...
package msvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one static check, go/analysis style. Lexical analyzers
// set Run and are applied per package; call-graph-aware analyzers set
// RunModule and are applied once to the type-checked module. An
// analyzer sets exactly one of the two.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Pass carries one package's worth of parsed files into an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path relative to the module root
	// (e.g. "internal/firefly"; "." for the root package).
	Path string
	// Files maps each parsed file to its file name (base name only).
	Files []*File

	report func(Finding)
}

// File is one parsed source file.
type File struct {
	Name string // base name, e.g. "lock.go"
	Test bool   // *_test.go
	AST  *ast.File
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported problem.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the full suite in a fixed order: the fast lexical
// passes first, then the call-graph-aware module passes.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		VirttimeAnalyzer,
		LockpairAnalyzer,
		TraceguardAnalyzer,
		HeapwriteAnalyzer,
		CostchargeAnalyzer,
		StwsafeAnalyzer,
		AtomicguardAnalyzer,
		BarrierflowAnalyzer,
		LockorderAnalyzer,
	}
}

// Package is one directory's parsed files.
type Package struct {
	Path  string // module-relative dir ("." for root)
	Fset  *token.FileSet
	Files []*File
}

// LoadModule parses every package under root (the directory containing
// go.mod), skipping .git and testdata directories.
func LoadModule(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	byDir := map[string][]*File{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("msvet: %v", err)
		}
		dir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		byDir[filepath.ToSlash(dir)] = append(byDir[filepath.ToSlash(dir)], &File{
			Name: info.Name(),
			Test: strings.HasSuffix(info.Name(), "_test.go"),
			AST:  f,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	var dirs []string
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		files := byDir[d]
		sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
		pkgs = append(pkgs, &Package{Path: d, Fset: fset, Files: files})
	}
	return pkgs, nil
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				report:   func(f Finding) { findings = append(findings, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("msvet: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// ModulePass carries the whole type-checked module into a
// call-graph-aware analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Mod.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunSuite applies the full suite — lexical analyzers per package,
// module analyzers once — and returns the merged findings sorted by
// position.
func RunSuite(mod *Module, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				report:   report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("msvet: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Mod: mod, report: report}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("msvet: %s: %v", a.Name, err)
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// exprString renders an expression compactly for matching and
// messages (selector chains, identifiers, calls, indexes).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
