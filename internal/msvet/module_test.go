package msvet

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// The testdata fixtures are self-contained mini-modules (module
// "fixture"), one injected violation per call-graph-aware analyzer
// plus a clean twin. Loading one type-checks it against GOROOT source,
// exactly like the real msvet run.

func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	mod, err := LoadTyped(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("LoadTyped(%s): %v", name, err)
	}
	return mod
}

// fixtureFindings runs exactly one analyzer over one fixture module.
func fixtureFindings(t *testing.T, a *Analyzer, fixture string) []Finding {
	t.Helper()
	findings, err := RunSuite(loadFixture(t, fixture), []*Analyzer{a})
	if err != nil {
		t.Fatalf("RunSuite(%s, %s): %v", a.Name, fixture, err)
	}
	return findings
}

// wantFixtureFinding asserts exactly one finding, at an exact
// file:line:col, whose message contains each fragment.
func wantFixtureFinding(t *testing.T, got []Finding, line, col int, fragments ...string) {
	t.Helper()
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(got), got)
	}
	f := got[0]
	if filepath.Base(f.Pos.Filename) != "fx.go" || f.Pos.Line != line || f.Pos.Column != col {
		t.Errorf("finding at %s:%d:%d, want fx.go:%d:%d",
			filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, line, col)
	}
	for _, frag := range fragments {
		if !strings.Contains(f.Message, frag) {
			t.Errorf("finding %q does not mention %q", f.Message, frag)
		}
	}
}

// ---- stwsafe ----

func TestStwsafeFixtureFlagsReachableAllocation(t *testing.T) {
	got := fixtureFindings(t, StwsafeAnalyzer, "stwsafe_bad")
	// The allocation is one call away from the window: the finding is
	// inside refill, proving the check follows the call graph.
	wantFixtureFinding(t, got, 27, 9, "allocation h.Allocate", "STW window")
}

func TestStwsafeFixtureCleanTwin(t *testing.T) {
	got := fixtureFindings(t, StwsafeAnalyzer, "stwsafe_ok")
	if len(got) != 0 {
		t.Fatalf("clean twin has findings: %v", got)
	}
}

func TestStwsafeFixtureReachability(t *testing.T) {
	mod := loadFixture(t, "stwsafe_bad")
	reachable := map[string]bool{}
	for node := range mod.STWReachable() {
		reachable[node.Decl.Name.Name] = true
	}
	if !reachable["refill"] {
		t.Errorf("refill not STW-reachable; got %v", reachable)
	}
	if reachable["Allocate"] {
		t.Errorf("Allocate entered the STW set (the walk must stop at alloc calls)")
	}
}

// ---- atomicguard ----

func TestAtomicguardFixtureFlagsMixedAccess(t *testing.T) {
	got := fixtureFindings(t, AtomicguardAnalyzer, "atomicguard_bad")
	// Only the tracked field's plain read fires; cold is untracked.
	wantFixtureFinding(t, got, 19, 9, "plain access to c.hits", "atomic-excluded")
}

func TestAtomicguardFixtureCleanTwin(t *testing.T) {
	got := fixtureFindings(t, AtomicguardAnalyzer, "atomicguard_ok")
	if len(got) != 0 {
		t.Fatalf("clean twin has findings: %v", got)
	}
}

// ---- barrierflow ----

func TestBarrierflowFixtureFlagsLaunderedStore(t *testing.T) {
	got := fixtureFindings(t, BarrierflowAnalyzer, "barrierflow_bad")
	// The store hides in unexported poke; the message names the
	// exported entry point it is reachable from.
	wantFixtureFinding(t, got, 21, 2,
		"raw heap store h.mem[...]", "reachable from exported fixture.*Heap.Tweak")
}

func TestBarrierflowFixtureCleanTwin(t *testing.T) {
	got := fixtureFindings(t, BarrierflowAnalyzer, "barrierflow_ok")
	if len(got) != 0 {
		t.Fatalf("clean twin has findings: %v", got)
	}
}

// ---- lockorder ----

func TestLockorderFixtureFlagsCycle(t *testing.T) {
	got := fixtureFindings(t, LockorderAnalyzer, "lockorder_bad")
	// Witness position: the alpha acquire in Backward, the edge that
	// closes the cycle.
	wantFixtureFinding(t, got, 39, 2, "static lock-order cycle: alpha -> beta -> alpha")
}

func TestLockorderFixtureCleanTwin(t *testing.T) {
	got := fixtureFindings(t, LockorderAnalyzer, "lockorder_ok")
	if len(got) != 0 {
		t.Fatalf("clean twin has findings: %v", got)
	}
}

func TestLockorderFixtureInterproceduralEdge(t *testing.T) {
	mod := loadFixture(t, "lockorder_ok")
	data := mod.LockGraph().Data()
	if want := []string{"alpha", "beta"}; len(data.Nodes) != 2 ||
		data.Nodes[0] != want[0] || data.Nodes[1] != want[1] {
		t.Fatalf("nodes = %v, want %v", data.Nodes, want)
	}
	edges := data.EdgeStrings()
	if len(edges) != 1 || edges[0] != "alpha -> beta" {
		t.Fatalf("edges = %v, want [alpha -> beta] (discovered through grab)", edges)
	}
}

func TestLockGraphJSONDeterministic(t *testing.T) {
	a := loadFixture(t, "lockorder_bad").LockGraph().Data().JSON()
	b := loadFixture(t, "lockorder_bad").LockGraph().Data().JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("lock graph JSON differs across loads:\n%s\n---\n%s", a, b)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Errorf("lock graph JSON is not newline-terminated")
	}
}

// ---- annotations ----

func TestAnnotationsCollected(t *testing.T) {
	mod := loadFixture(t, "stwsafe_ok")
	var gotField string
	for _, just := range mod.Ann.StwSafeField {
		gotField = just
	}
	if !strings.Contains(gotField, "collector bookkeeping lock") {
		t.Errorf("stw-safe field justification = %q", gotField)
	}

	mod = loadFixture(t, "atomicguard_ok")
	var gotFunc string
	for _, just := range mod.Ann.AtomicExcluded {
		gotFunc = just
	}
	if !strings.Contains(gotFunc, "after every worker goroutine has joined") {
		t.Errorf("atomic-excluded justification = %q", gotFunc)
	}
}

// ---- full suite over the clean twins ----

func TestFullSuiteCleanOnOkFixtures(t *testing.T) {
	for _, fixture := range []string{"stwsafe_ok", "atomicguard_ok", "barrierflow_ok", "lockorder_ok"} {
		findings, err := RunSuite(loadFixture(t, fixture), Analyzers())
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", fixture, err)
		}
		if len(findings) != 0 {
			t.Errorf("%s: full suite found %v", fixture, findings)
		}
	}
}
