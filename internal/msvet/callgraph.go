package msvet

import (
	"go/ast"
	"go/types"
	"sort"
)

// The call graph: one node per function or method *declared in the
// module with a body*. Function literals are merged into the enclosing
// declared function — a closure's calls are attributed to the function
// that lexically contains it, which matches how the STW analyses need
// to see `RunStopped(p, func(q) { ... })`: the closure body belongs to
// the caller's window.
//
// Edges are static calls only, resolved through the type-checker:
// plain identifiers (go/types Uses), qualified identifiers, and
// method selections (go/types Selections). Calls through interface
// values, function-typed fields (the heap's preGC/postGC hooks), and
// stored closures are not resolved — each analyzer that consumes the
// graph documents what that soundness gap means for it.
type CallGraph struct {
	// Nodes in deterministic (file, offset) order.
	Nodes  []*FuncNode
	ByFunc map[*types.Func]*FuncNode
}

// FuncNode is one declared function in the call graph.
type FuncNode struct {
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	File    *File
	Callees []*FuncNode // deduped, deterministic order

	callees map[*FuncNode]bool
}

// Graph builds (once) and returns the module call graph.
func (m *Module) Graph() *CallGraph {
	if m.graph != nil {
		return m.graph
	}
	g := &CallGraph{ByFunc: map[*types.Func]*FuncNode{}}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := m.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &FuncNode{
					Fn: fn, Decl: fd, Pkg: pkg, File: f,
					callees: map[*FuncNode]bool{},
				}
				g.Nodes = append(g.Nodes, node)
				g.ByFunc[fn] = node
			}
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		return g.Nodes[i].Decl.Pos() < g.Nodes[j].Decl.Pos()
	})
	for _, node := range g.Nodes {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := m.Callee(call); fn != nil {
				if callee := g.ByFunc[fn]; callee != nil {
					node.callees[callee] = true
				}
			}
			return true
		})
		for callee := range node.callees {
			node.Callees = append(node.Callees, callee)
		}
		sort.Slice(node.Callees, func(i, j int) bool {
			return node.Callees[i].Decl.Pos() < node.Callees[j].Decl.Pos()
		})
	}
	m.graph = g
	return g
}

// Callee resolves a call expression to the statically-known callee, or
// nil for dynamic calls (interface methods, function values) and
// builtins.
func (m *Module) Callee(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := m.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := m.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := m.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CalleeNode resolves a call to its module-declared node, or nil.
func (m *Module) CalleeNode(call *ast.CallExpr) *FuncNode {
	fn := m.Callee(call)
	if fn == nil {
		return nil
	}
	return m.Graph().ByFunc[fn]
}

// selectedVar resolves the object a selector (or bare identifier)
// denotes — typically the struct field a lock or atomic word lives in.
// Returns nil when the expression is not a variable reference.
func (m *Module) selectedVar(e ast.Expr) *types.Var {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := m.Info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := m.Info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := m.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := m.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return m.selectedVar(e.X)
	}
	return nil
}
