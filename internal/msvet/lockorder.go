package msvet

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// lockorder: the static lock-acquisition-order graph, extracted across
// the call graph.
//
// Lock identity is registration-based: a lock is a struct field (or
// variable) assigned from `m.NewSpinlock("name", ...)` or
// `m.NewRWSpinlock("name", ...)` with a literal name — exactly the
// names mscheck's runtime lockset checker sees in OnAcquire. Hold
// regions are lexical, from an Acquire/TryAcquire/AcquireRead/
// AcquireWrite to the first matching release on the same receiver (to
// the end of the function for deferred releases) — sound because the
// lockpair analyzer separately guarantees no spinlock outlives its
// acquiring function. Edges are held-lock -> acquired-lock, both for
// direct acquisitions inside a region and, interprocedurally, for
// calls to functions that may transitively acquire a lock (a fixpoint
// over the call graph). The result is a superset of any order the
// runtime can exhibit through static calls; mscheck cross-checks the
// observed order is a subgraph (Checker.StaticOrderViolations).
//
// Soundness: acquisitions reached only through dynamic calls
// (interface methods, stored closures) are invisible, as are locks
// registered with computed names. TryAcquire regions are included even
// though the failure path never holds the lock — a superset, which is
// the direction the subgraph cross-check needs.
//
// The analyzer reports static cycles; `msvet -lockgraph` emits the
// graph as deterministic JSON (nodes sorted, edges sorted, first
// witness positions from a deterministic walk).
var LockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "the static lock-acquisition-order graph must be acyclic",
	RunModule: func(pass *ModulePass) error {
		lg := pass.Mod.LockGraph()
		for _, cyc := range lg.cycles() {
			pass.report(Finding{
				Analyzer: pass.Analyzer.Name,
				Pos:      pass.Mod.Fset.Position(cyc.pos),
				Message:  "static lock-order cycle: " + cyc.desc + " (deadlock if the paths interleave; pick one global order)",
			})
		}
		return nil
	},
}

// LockGraphData is the deterministic JSON shape `msvet -lockgraph`
// emits and `msbench -sanitize -lockgraph` consumes.
type LockGraphData struct {
	Nodes []string       `json:"nodes"`
	Edges []LockEdgeData `json:"edges"`
}

// LockEdgeData is one held->acquired edge with its first static
// witness.
type LockEdgeData struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
}

// EdgeStrings renders the edges as "from -> to" lines, the exchange
// format mscheck's StaticOrderViolations takes.
func (lg *LockGraphData) EdgeStrings() []string {
	out := make([]string, 0, len(lg.Edges))
	for _, e := range lg.Edges {
		out = append(out, e.From+" -> "+e.To)
	}
	return out
}

// JSON renders the graph as stable, byte-identical-across-runs JSON.
func (lg *LockGraphData) JSON() []byte {
	b, err := json.MarshalIndent(lg, "", "  ")
	if err != nil {
		panic("msvet: lock graph marshal: " + err.Error())
	}
	return append(b, '\n')
}

var lockReleaseFor = map[string]string{
	"Acquire":      "Release",
	"TryAcquire":   "Release",
	"AcquireRead":  "ReleaseRead",
	"AcquireWrite": "ReleaseWrite",
}

type lockGraph struct {
	data  *LockGraphData
	edges map[[2]string]token.Pos // first witness in deterministic walk order
	names []string
}

// LockGraph extracts (once) the static lock-order graph.
func (m *Module) LockGraph() *lockGraph {
	if m.lockg != nil {
		return m.lockg
	}
	lg := &lockGraph{edges: map[[2]string]token.Pos{}}
	g := m.Graph()
	lockVars := m.lockRegistrations()

	nameSet := map[string]bool{}
	for _, name := range lockVars {
		nameSet[name] = true
	}
	for name := range nameSet {
		lg.names = append(lg.names, name)
	}
	sort.Strings(lg.names)

	// acquire events and lexical hold regions, per function.
	type acqEvent struct {
		name string
		pos  token.Pos
		r    posRange
	}
	events := map[*FuncNode][]acqEvent{}
	for _, node := range g.Nodes {
		var acqs []acqEvent
		type relEvent struct {
			method string
			recv   string
			pos    token.Pos
		}
		var rels []relEvent
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if _, isAcq := lockReleaseFor[method]; isAcq {
				v := m.selectedVar(sel.X)
				if name := lockVars[v]; name != "" {
					acqs = append(acqs, acqEvent{name: name, pos: call.Pos()})
					// region filled below once releases are known
				}
			}
			if !deferred[call] && isReleaseMethod(method) {
				rels = append(rels, relEvent{method, exprString(sel.X), call.Pos()})
			}
			return true
		})
		// Pair each acquire with the first matching non-deferred
		// release after it; deferred or missing -> to end of function.
		i := 0
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || i >= len(acqs) {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || call.Pos() != acqs[i].pos {
				return true
			}
			want := lockReleaseFor[sel.Sel.Name]
			recv := exprString(sel.X)
			end := node.Decl.Body.End()
			for _, rel := range rels {
				if rel.pos > call.Pos() && rel.pos < end && rel.method == want && rel.recv == recv {
					end = rel.pos
				}
			}
			acqs[i].r = posRange{call.End(), end}
			i++
			return true
		})
		if len(acqs) > 0 {
			events[node] = acqs
		}
	}

	// Fixpoint: the set of lock names a function may acquire, directly
	// or through static callees.
	acquiredIn := map[*FuncNode]map[string]bool{}
	for _, node := range g.Nodes {
		set := map[string]bool{}
		for _, a := range events[node] {
			set[a.name] = true
		}
		acquiredIn[node] = set
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes {
			set := acquiredIn[node]
			for _, callee := range node.Callees {
				for name := range acquiredIn[callee] {
					if !set[name] {
						set[name] = true
						changed = true
					}
				}
			}
		}
	}

	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if _, ok := lg.edges[key]; !ok {
			lg.edges[key] = pos
		}
	}

	// Edges: inside each hold region, direct acquires of other locks
	// and calls into functions that may acquire.
	for _, node := range g.Nodes {
		for _, held := range events[node] {
			for _, other := range events[node] {
				if other.pos != held.pos && held.r.contains(other.pos) {
					addEdge(held.name, other.name, other.pos)
				}
			}
			r := held.r
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !r.contains(call.Pos()) {
					return true
				}
				callee := g.ByFunc[m.Callee(call)]
				if callee == nil {
					return true
				}
				var acquired []string
				for name := range acquiredIn[callee] {
					acquired = append(acquired, name)
				}
				sort.Strings(acquired)
				for _, name := range acquired {
					addEdge(held.name, name, call.Pos())
				}
				return true
			})
		}
	}

	data := &LockGraphData{Nodes: lg.names}
	var keys [][2]string
	for k := range lg.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		data.Edges = append(data.Edges, LockEdgeData{From: k[0], To: k[1], Pos: m.relPos(lg.edges[k])})
	}
	lg.data = data
	m.lockg = lg
	return lg
}

// Data returns the JSON-shaped graph.
func (lg *lockGraph) Data() *LockGraphData { return lg.data }

func isReleaseMethod(name string) bool {
	switch name {
	case "Release", "ReleaseRead", "ReleaseWrite":
		return true
	}
	return false
}

// lockRegistrations maps each lock-holding variable to its registered
// name: `x.field = m.NewSpinlock("name", ...)` and the composite-
// literal form `T{field: m.NewSpinlock("name", ...)}`.
func (m *Module) lockRegistrations() map[*types.Var]string {
	out := map[*types.Var]string{}
	record := func(v *types.Var, call *ast.CallExpr) {
		if v == nil || len(call.Args) == 0 {
			return
		}
		lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || name == "" {
			return
		}
		if _, seen := out[v]; !seen {
			out[v] = name
		}
	}
	isCtor := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		name := calleeSelName(call)
		return call, name == "NewSpinlock" || name == "NewRWSpinlock"
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, rhs := range n.Rhs {
						if call, ok := isCtor(rhs); ok {
							record(m.selectedVar(n.Lhs[i]), call)
						}
					}
				case *ast.KeyValueExpr:
					if call, ok := isCtor(n.Value); ok {
						if id, ok := n.Key.(*ast.Ident); ok {
							if v, ok := m.Info.Uses[id].(*types.Var); ok {
								record(v, call)
							}
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// cycle is one static lock-order cycle.
type lockCycle struct {
	desc string
	pos  token.Pos
}

// cycles finds every elementary cycle reachable in the edge set via a
// deterministic DFS, canonicalized (rotated to start at the lexically
// smallest lock) and deduplicated — the same presentation mscheck uses
// for its runtime lock-order cycles.
func (lg *lockGraph) cycles() []lockCycle {
	adj := map[string][]string{}
	for k := range lg.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, outs := range adj {
		sort.Strings(outs)
	}
	seen := map[string]bool{}
	var out []lockCycle
	var stack []string
	onStack := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		stack = append(stack, n)
		onStack[n] = true
		for _, next := range adj[n] {
			if onStack[next] {
				// Extract stack[i:] where stack[i] == next.
				i := 0
				for stack[i] != next {
					i++
				}
				cyc := append(append([]string{}, stack[i:]...), next)
				desc := canonicalLockCycle(cyc)
				if !seen[desc] {
					seen[desc] = true
					out = append(out, lockCycle{desc: desc, pos: lg.edges[[2]string{n, next}]})
				}
				continue
			}
			visit(next)
		}
		stack = stack[:len(stack)-1]
		onStack[n] = false
	}
	for _, n := range lg.names {
		if !onStack[n] {
			visit(n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].desc < out[j].desc })
	return out
}

// canonicalLockCycle rotates a cycle (first == last) so it starts at
// the lexically smallest lock, and renders "a -> b -> a".
func canonicalLockCycle(cyc []string) string {
	body := cyc[:len(cyc)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	rot = append(rot, rot[0])
	return strings.Join(rot, " -> ")
}
