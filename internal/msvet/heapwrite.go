package msvet

import (
	"go/ast"
)

// heapwrite is the fast lexical pre-pass of the heap-store discipline;
// the flow-based barrierflow analyzer is the real check. The division
// of labor since the file allowlist was retired:
//
//   - Outside internal/heap, a raw heap word write (`X.mem[...] = v`,
//     `copy(X.mem[...], ...)`) is flagged here unless the enclosing
//     function carries a lexical `//msvet:heap-writer` annotation —
//     no type information needed, so this runs on every package in
//     milliseconds and catches the common case (interpreter, display,
//     image loader) with a precise local message.
//   - Inside internal/heap, function-granular policing is barrierflow's
//     job (annotated funnels or STW-reachable collector code), with one
//     lexical exception kept here: verify.go, the write-barrier
//     *verifier*, is read-only by construction and must stay that way —
//     a write there would let the checker perturb what it checks, and
//     barrierflow alone would wave it through (the verifier runs inside
//     the STW window).
var HeapwriteAnalyzer = &Analyzer{
	Name: "heapwrite",
	Doc:  "no raw heap word writes outside internal/heap; the barrier verifier stays read-only",
	Run: func(pass *Pass) error {
		inHeap := pass.Path == "internal/heap"
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			if inHeap && f.Name != "verify.go" {
				continue
			}
			verifier := inHeap && f.Name == "verify.go"
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !verifier && hasLexicalDirective(fd, annHeapWriter) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range n.Lhs {
							if memTarget(lhs) {
								pass.Reportf(lhs.Pos(), heapwriteMsg(verifier, exprString(lhs)))
							}
						}
					case *ast.IncDecStmt:
						if memTarget(n.X) {
							pass.Reportf(n.Pos(), heapwriteMsg(verifier, exprString(n.X)))
						}
					case *ast.CallExpr:
						if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) > 0 {
							if memSlice(n.Args[0]) {
								pass.Reportf(n.Pos(), heapwriteMsg(verifier, "copy into heap memory"))
							}
						}
					}
					return true
				})
			}
		}
		return nil
	},
}

func heapwriteMsg(verifier bool, what string) string {
	if verifier {
		return "write-barrier verifier must stay read-only: " + what + " writes heap memory"
	}
	return "direct heap word write " + what + " bypasses the store check; use the barrier API (Store/StoreNoCheck)"
}

// hasLexicalDirective checks a function's doc comment for a //msvet:
// directive without type information (this pass also runs on fixture
// packages and pre-type-check).
func hasLexicalDirective(fd *ast.FuncDecl, kind string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if k, _, ok := parseDirective(c.Text); ok && k == kind {
			return true
		}
	}
	return false
}

// memTarget reports whether e is an index into a `.mem` field
// (or a local named mem).
func memTarget(e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	return isMemExpr(idx.X)
}

// memSlice reports whether e slices or names heap memory
// (`X.mem[a:b]`, `X.mem`).
func memSlice(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return isMemExpr(e.X)
	case *ast.IndexExpr:
		return isMemExpr(e.X)
	default:
		return isMemExpr(e)
	}
}

func isMemExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "mem"
	case *ast.Ident:
		return e.Name == "mem"
	default:
		return false
	}
}
