package msvet

import (
	"go/ast"
)

// heapwriteAllow lists the only files permitted to write heap words
// directly: the allocator (zeroing fresh space), the collectors
// (moving objects wholesale), and the heap core (Store / StoreNoCheck,
// the barrier API itself). Everything else — interpreter, display,
// image loader, the write-barrier *verifier* — must go through the
// barrier API so the store check (Table 3's entry-table serialization)
// can never be bypassed silently. verify.go is deliberately absent:
// the verifier is read-only by construction, and this analyzer keeps
// it that way.
var heapwriteAllow = map[string]map[string]bool{
	"internal/heap": {
		"alloc.go":       true,
		"fullgc.go":      true,
		"heap.go":        true,
		"parscavenge.go": true, // the parallel collector's copy loop, collector-class
		"scavenge.go":    true,
		"snapshot.go":    true, // stop-the-world wholesale restore, collector-class
	},
}

// HeapwriteAnalyzer flags direct heap word writes (`X.mem[...] = v`,
// `copy(X.mem[...], ...)`) outside the allowlist.
var HeapwriteAnalyzer = &Analyzer{
	Name: "heapwrite",
	Doc:  "no direct heap word writes outside the barrier/collector files",
	Run: func(pass *Pass) error {
		allowed := heapwriteAllow[pass.Path]
		for _, f := range pass.Files {
			if f.Test || allowed[f.Name] {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if memTarget(lhs) {
							pass.Reportf(lhs.Pos(),
								"direct heap word write %s bypasses the store check; use the barrier API (Store/StoreNoCheck)",
								exprString(lhs))
						}
					}
				case *ast.IncDecStmt:
					if memTarget(n.X) {
						pass.Reportf(n.Pos(),
							"direct heap word write %s bypasses the store check; use the barrier API",
							exprString(n.X))
					}
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) > 0 {
						if memSlice(n.Args[0]) {
							pass.Reportf(n.Pos(),
								"copy into heap memory bypasses the store check; use the barrier API")
						}
					}
				}
				return true
			})
		}
		return nil
	},
}

// memTarget reports whether e is an index into a `.mem` field
// (or a local named mem).
func memTarget(e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	return isMemExpr(idx.X)
}

// memSlice reports whether e slices or names heap memory
// (`X.mem[a:b]`, `X.mem`).
func memSlice(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return isMemExpr(e.X)
	case *ast.IndexExpr:
		return isMemExpr(e.X)
	default:
		return isMemExpr(e)
	}
}

func isMemExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "mem"
	case *ast.Ident:
		return e.Name == "mem"
	default:
		return false
	}
}
