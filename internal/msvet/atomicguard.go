package msvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicguard: a struct field that is accessed through sync/atomic
// anywhere in the module (the CAS-claimed forwarding words in
// h.mem, for example) must be accessed atomically *everywhere* — one
// plain read racing one atomic write is still a data race, and the
// det-mode-only "it's single-threaded there" argument must be written
// down, not implied.
//
// Exemptions, in decreasing order of preference:
//   - STW-reachable functions (Module.STWReachable): the world is
//     stopped, mutators are parked at safepoints, plain access is the
//     point of stopping.
//   - `//msvet:atomic-excluded` functions: audited det-mode-only or
//     pre-publication paths; the justification is echoed by -v.
//   - lexical shapes that are not data accesses: the field passed by
//     address to sync/atomic itself, len/cap of it, and index-only
//     `for i := range f` (reads only the immutable length).
//
// Fields of the typed atomic kinds (atomic.Uint64 &c.) need no
// checking — the type system already forbids plain access.
var AtomicguardAnalyzer = &Analyzer{
	Name: "atomicguard",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	RunModule: func(pass *ModulePass) error {
		m := pass.Mod
		tracked := m.atomicFields()
		if len(tracked) == 0 {
			return nil
		}
		stw := m.STWReachable()
		for _, node := range m.Graph().Nodes {
			if _, excluded := m.Ann.AtomicExcluded[node.Fn]; excluded {
				continue
			}
			if stw[node] {
				continue
			}
			scanPlainUses(pass, node, tracked)
		}
		return nil
	},
}

// atomicFields maps every struct field passed by address to a
// sync/atomic function to the position of its first (in deterministic
// load order) atomic access.
func (m *Module) atomicFields() map[*types.Var]token.Pos {
	tracked := map[*types.Var]token.Pos{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !m.isAtomicCall(call) {
					return true
				}
				for _, arg := range call.Args {
					u, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					v := m.selectedVar(u.X)
					if v == nil || !v.IsField() {
						continue
					}
					if _, seen := tracked[v]; !seen {
						tracked[v] = call.Pos()
					}
				}
				return true
			})
		}
	}
	return tracked
}

// isAtomicCall reports whether call is a direct sync/atomic function
// call (atomic.LoadUint64, atomic.CompareAndSwapUint64, ...).
func (m *Module) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := m.Info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// scanPlainUses reports every non-exempt use of a tracked field inside
// one function body.
func scanPlainUses(pass *ModulePass, node *FuncNode, tracked map[*types.Var]token.Pos) {
	m := pass.Mod
	exempt := map[ast.Node]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if m.isAtomicCall(e) {
				for _, arg := range e.Args {
					if u, ok := unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						exempt[arg] = true
					}
				}
			} else if id, ok := unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := m.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
					for _, arg := range e.Args {
						exempt[arg] = true
					}
				}
			}
		case *ast.RangeStmt:
			if e.Value == nil {
				// Index-only range reads the length, not the words.
				exempt[e.X] = true
			}
		}
		return true
	})
	report := func(e ast.Expr, v *types.Var) {
		if m.STWCovered(node, e.Pos()) {
			// Inside the function's own lexical STW window (FullCollect,
			// Scavenge): the world is stopped, plain access is the point.
			return
		}
		first := m.relPos(tracked[v])
		pass.Reportf(e.Pos(),
			"plain access to %s: field %s is accessed atomically elsewhere (e.g. %s); use sync/atomic, or annotate the enclosing function //msvet:atomic-excluded with a justification",
			exprString(e), v.Name(), first)
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if exempt[n] {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if v := m.selectedVar(e); v != nil {
				if _, ok := tracked[v]; ok {
					report(e, v)
					return false
				}
			}
			ast.Inspect(e.X, visit)
			return false
		case *ast.Ident:
			if v, ok := m.Info.Uses[e].(*types.Var); ok {
				if _, isTracked := tracked[v]; isTracked {
					report(e, v)
				}
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, visit)
}
