package msvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// hookMethods are the observer entry points (trace recorder, sanitizer,
// latency histograms, allocation-site profiler) that instrumented code
// calls. Observers are optional — the field holding them is nil unless
// attached — so every call site must sit under a nil guard. The two
// accepted shapes:
//
//	if s := h.san; s != nil { s.OnAccess(...) }     // enclosing guard
//	san := h.san
//	if san == nil { return }                        // early return
//	... san.ReportWriteBarrier(...) ...
//
// A guard on a receiver prefix counts: `if lh := m.lat; lh != nil {
// lh.Dispatch.Record(...) }` is guarded because Dispatch is a value
// field of the guarded *LatencyHists.
//
// Guarding keeps the detached cost at one pointer test and makes a
// nil-dereference panic in instrumented hot paths impossible.
var hookMethods = map[string]bool{
	"Emit":               true,
	"OnAccess":           true,
	"OnOwnedAccess":      true,
	"OnAcquire":          true,
	"OnRelease":          true,
	"ReportWriteBarrier": true,
	"NoteBarrierScan":    true,
	// Latency histograms (PR 7).
	"Record":          true,
	"AddCriticalPath": true,
	// Allocation-site profiler (PR 7).
	"RecordAlloc":  true,
	"NoteSurvived": true,
	"NoteTenured":  true,
	"NoteAge":      true,
}

// traceguardSkip: the observer packages themselves call their own
// methods on non-nil receivers, and msvet's tests construct calls
// deliberately.
var traceguardSkip = map[string]bool{
	"internal/trace":    true,
	"internal/sanitize": true,
	"internal/msvet":    true,
}

// TraceguardAnalyzer verifies every trace/sanitize hook emission is
// nil-guarded.
var TraceguardAnalyzer = &Analyzer{
	Name: "traceguard",
	Doc:  "trace/sanitize hook calls must be nil-guarded",
	Run: func(pass *Pass) error {
		if traceguardSkip[pass.Path] {
			return nil
		}
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g := &guardWalker{pass: pass}
				g.walkBlock(fd.Body.List, map[string]bool{})
			}
		}
		return nil
	},
}

type guardWalker struct {
	pass *Pass
}

func cloneGuards(g map[string]bool) map[string]bool {
	c := make(map[string]bool, len(g))
	for k := range g {
		c[k] = true
	}
	return c
}

// walkBlock walks statements in order. guards is mutated in place when
// an `if X == nil { return }` statement guards the remainder of the
// block (and, transitively, nested literals).
func (g *guardWalker) walkBlock(stmts []ast.Stmt, guards map[string]bool) {
	for _, stmt := range stmts {
		g.walkStmt(stmt, guards)
	}
}

func (g *guardWalker) walkStmt(stmt ast.Stmt, guards map[string]bool) {
	switch st := stmt.(type) {
	case *ast.IfStmt:
		g.walkIf(st, guards)
	case *ast.BlockStmt:
		g.walkBlock(st.List, cloneGuards(guards))
	case *ast.ForStmt:
		g.inspect(st.Init, guards)
		g.inspectExpr(st.Cond, guards)
		g.inspect(st.Post, guards)
		g.walkBlock(st.Body.List, cloneGuards(guards))
	case *ast.RangeStmt:
		g.inspectExpr(st.X, guards)
		g.walkBlock(st.Body.List, cloneGuards(guards))
	case *ast.SwitchStmt:
		g.inspect(st.Init, guards)
		g.inspectExpr(st.Tag, guards)
		g.walkClauses(st.Body, guards)
	case *ast.TypeSwitchStmt:
		g.inspect(st.Init, guards)
		g.walkClauses(st.Body, guards)
	case *ast.SelectStmt:
		g.walkClauses(st.Body, guards)
	case *ast.LabeledStmt:
		g.walkStmt(st.Stmt, guards)
	default:
		g.inspect(stmt, guards)
	}
}

func (g *guardWalker) walkClauses(body *ast.BlockStmt, guards map[string]bool) {
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				g.inspect(cc.Comm, guards)
			}
			stmts = cc.Body
		}
		g.walkBlock(stmts, cloneGuards(guards))
	}
}

// walkIf adds nil-guard knowledge from the condition to the branch
// scopes, and — for the early-return shape — to the rest of the
// enclosing block via the caller-shared guards map.
func (g *guardWalker) walkIf(st *ast.IfStmt, guards map[string]bool) {
	if st.Init != nil {
		g.inspect(st.Init, guards)
	}
	g.inspectExpr(st.Cond, guards)

	thenGuards := cloneGuards(guards)
	for _, e := range nonNilOperands(st.Cond) {
		thenGuards[e] = true
	}
	g.walkBlock(st.Body.List, thenGuards)

	if st.Else != nil {
		elseGuards := cloneGuards(guards)
		for _, e := range nilOperands(st.Cond) {
			elseGuards[e] = true
		}
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			g.walkBlock(e.List, elseGuards)
		case *ast.IfStmt:
			g.walkIf(e, elseGuards)
		}
	}

	// if X == nil { return } guards X for the remainder of the block.
	if blockTerminates(st.Body) {
		for _, e := range nilOperands(st.Cond) {
			guards[e] = true
		}
	}
}

// nonNilOperands returns the expressions cond proves non-nil when
// true: `X != nil`, possibly conjoined with &&.
func nonNilOperands(cond ast.Expr) []string {
	var out []string
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		b, ok := e.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch b.Op {
		case token.LAND:
			visit(b.X)
			visit(b.Y)
		case token.NEQ:
			if isNilIdent(b.Y) {
				out = append(out, exprString(b.X))
			} else if isNilIdent(b.X) {
				out = append(out, exprString(b.Y))
			}
		}
	}
	visit(cond)
	return out
}

// nilOperands returns the expressions cond proves nil when true:
// `X == nil`, possibly disjoined with || (so the negation proves all
// of them non-nil).
func nilOperands(cond ast.Expr) []string {
	var out []string
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		b, ok := e.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch b.Op {
		case token.LOR:
			visit(b.X)
			visit(b.Y)
		case token.EQL:
			if isNilIdent(b.Y) {
				out = append(out, exprString(b.X))
			} else if isNilIdent(b.X) {
				out = append(out, exprString(b.Y))
			}
		}
	}
	visit(cond)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockTerminates reports whether the block's last statement leaves
// the enclosing flow (return, panic, break/continue/goto).
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// inspect scans a statement's expressions for hook calls, descending
// into function literals with the current guard set (a literal defined
// under a guard is assumed to run under it — the heap verifier's
// helper-closure pattern).
func (g *guardWalker) inspect(stmt ast.Stmt, guards map[string]bool) {
	if stmt == nil {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.walkBlock(n.Body.List, cloneGuards(guards))
			return false
		case *ast.IfStmt:
			g.walkIf(n, guards)
			return false
		case *ast.CallExpr:
			g.checkCall(n, guards)
		}
		return true
	})
}

func (g *guardWalker) inspectExpr(e ast.Expr, guards map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.walkBlock(n.Body.List, cloneGuards(guards))
			return false
		case *ast.CallExpr:
			g.checkCall(n, guards)
		}
		return true
	})
}

func (g *guardWalker) checkCall(call *ast.CallExpr, guards map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !hookMethods[sel.Sel.Name] {
		return
	}
	// "Emit" is a generic name (the bytecode assembler has one too).
	// Recorder emissions are distinguished by their first argument:
	// always a trace.K* event-kind constant.
	if sel.Sel.Name == "Emit" && !isTraceKindArg(call) {
		return
	}
	recv := exprString(sel.X)
	// A guard on the receiver or on any prefix of it satisfies the
	// check: guarding `lh` proves `lh.Dispatch` (a value field of the
	// guarded pointer) is safe to call through.
	for r := recv; ; {
		if guards[r] {
			return
		}
		i := strings.LastIndexByte(r, '.')
		if i < 0 {
			break
		}
		r = r[:i]
	}
	g.pass.Reportf(call.Pos(),
		"hook call %s.%s is not nil-guarded (wrap in `if %s != nil` or add an early `if %s == nil { return }`)",
		recv, sel.Sel.Name, recv, recv)
}

// isTraceKindArg reports whether the call's first argument is a
// trace.K* event-kind constant (possibly dot-imported as K*).
func isTraceKindArg(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch a := call.Args[0].(type) {
	case *ast.SelectorExpr:
		return len(a.Sel.Name) > 1 && a.Sel.Name[0] == 'K' && a.Sel.Name[1] >= 'A' && a.Sel.Name[1] <= 'Z'
	case *ast.Ident:
		return len(a.Name) > 1 && a.Name[0] == 'K' && a.Name[1] >= 'A' && a.Name[1] <= 'Z'
	}
	return false
}
