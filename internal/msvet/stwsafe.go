package msvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// stwsafe: nothing reachable from inside the stop-the-world window may
// allocate, touch a channel, or take a lock that is not explicitly
// marked safe for the window.
//
// The window is lexical: from a `StopTheWorld` call to its matching
// `ResumeTheWorld` in the same function (to the end of the function
// when the resume is deferred — the canonical
// `if !h.m.StopTheWorld(p) { return }; defer h.m.ResumeTheWorld(p)`
// shape). Every function statically callable from inside a window
// (plus `//msvet:stw-entry` roots) is STW-reachable in its entirety;
// the walk is a fixpoint over the module call graph.
//
// Soundness: dynamic calls (interface methods, function-typed fields
// such as the heap's preGC/postGC hooks, stored closures) are not in
// the call graph, so code reachable only through them is not checked —
// the hook registrars are the audit points for those. Conversely the
// lexical window over-approximates det-mode runs (where StopTheWorld
// is a no-op): code on the det-only side of an `h.par` branch inside
// the window is still held to the STW rules, which is what we want —
// the same code runs in parallel mode.
//
// The walk does not descend into: lock acquire/release methods and
// StopTheWorld/ResumeTheWorld themselves (the synchronization
// boundary is audited in firefly, not re-derived), functions annotated
// //msvet:stw-safe, and calls already reported as violations.
var StwsafeAnalyzer = &Analyzer{
	Name: "stwsafe",
	Doc:  "no allocation, channel ops, or unsafe lock acquisition reachable from the STW window",
	RunModule: func(pass *ModulePass) error {
		for _, f := range pass.Mod.stwCompute().findings {
			pass.report(Finding{Analyzer: pass.Analyzer.Name, Pos: pass.Mod.Fset.Position(f.pos), Message: f.msg})
		}
		return nil
	},
}

type posRange struct{ start, end token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.start && p < r.end }

type stwFinding struct {
	pos token.Pos
	msg string
}

type stwResult struct {
	whole    map[*FuncNode]bool       // functions STW-reachable in their entirety
	windows  map[*FuncNode][]posRange // lexical STW windows per function
	findings []stwFinding
}

// allocMethods: calling these inside the window is the violation the
// concurrent-marking roadmap item must never see — GC allocating while
// the world is stopped.
var allocMethods = map[string]bool{"Allocate": true, "AllocateNoGC": true}

// lockBoundaryMethods are the synchronization entry points the walk
// treats as opaque: acquires are checked against //msvet:stw-safe at
// the call site, and the implementations (firefly's spinlock loops,
// the rendezvous itself) are their own audit domain.
var acquireMethods = map[string]bool{
	"Acquire": true, "TryAcquire": true, "AcquireRead": true, "AcquireWrite": true,
}
var hostAcquireMethods = map[string]bool{"Lock": true, "RLock": true}
var noDescendMethods = map[string]bool{
	"Acquire": true, "TryAcquire": true, "AcquireRead": true, "AcquireWrite": true,
	"Release": true, "ReleaseRead": true, "ReleaseWrite": true,
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
	"StopTheWorld": true, "ResumeTheWorld": true,
}

// STWReachable returns the set of functions whose whole body is
// statically reachable from inside a stop-the-world window. Shared by
// stwsafe (violations), atomicguard (STW-only sections are excluded
// from the atomic-discipline check), and barrierflow (collector code
// may write heap words raw).
func (m *Module) STWReachable() map[*FuncNode]bool {
	return m.stwCompute().whole
}

// STWCovered reports whether a position in node's body runs with the
// world stopped: the whole function is STW-reachable, or the position
// sits inside one of the function's own lexical windows (FullCollect
// and Scavenge contain their windows rather than being called from
// one).
func (m *Module) STWCovered(node *FuncNode, pos token.Pos) bool {
	res := m.stwCompute()
	if res.whole[node] {
		return true
	}
	for _, r := range res.windows[node] {
		if r.contains(pos) {
			return true
		}
	}
	return false
}

func (m *Module) stwCompute() *stwResult {
	if m.stw != nil {
		return m.stw
	}
	g := m.Graph()
	res := &stwResult{whole: map[*FuncNode]bool{}, windows: map[*FuncNode][]posRange{}}

	var queue []*FuncNode
	enqueue := func(n *FuncNode) {
		if !res.whole[n] {
			res.whole[n] = true
			queue = append(queue, n)
		}
	}

	// descendCallees walks calls in one lexical range of node's body
	// and enqueues every statically-resolved callee the STW rules
	// follow into.
	descendCallees := func(node *FuncNode, r posRange) {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !r.contains(call.Pos()) {
				return true
			}
			name := calleeSelName(call)
			if noDescendMethods[name] || allocMethods[name] {
				return true
			}
			callee := g.ByFunc[m.Callee(call)]
			if callee == nil {
				return true
			}
			if _, safe := m.Ann.StwSafeFunc[callee.Fn]; safe {
				return true
			}
			enqueue(callee)
			return true
		})
	}

	// Seeds: //msvet:stw-entry roots and every lexical window.
	for _, node := range g.Nodes {
		if _, ok := m.Ann.StwEntry[node.Fn]; ok {
			enqueue(node)
		}
	}
	type seededRange struct {
		node *FuncNode
		r    posRange
	}
	var windows []seededRange
	for _, node := range g.Nodes {
		for _, r := range stwWindows(node) {
			windows = append(windows, seededRange{node, r})
			res.windows[node] = append(res.windows[node], r)
			descendCallees(node, r)
		}
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		descendCallees(node, posRange{node.Decl.Body.Pos(), node.Decl.Body.End()})
	}

	// Violation scan: whole bodies once, then windows of functions not
	// already covered whole.
	for _, node := range g.Nodes {
		if res.whole[node] {
			m.stwScan(res, node, posRange{node.Decl.Body.Pos(), node.Decl.Body.End()})
		}
	}
	for _, w := range windows {
		if !res.whole[w.node] {
			m.stwScan(res, w.node, w.r)
		}
	}
	m.stw = res
	return res
}

// stwScan reports every STW violation inside one lexical range.
func (m *Module) stwScan(res *stwResult, node *FuncNode, r posRange) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		res.findings = append(res.findings, stwFinding{pos, fmt.Sprintf(format, args...)})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !r.contains(n.Pos()) {
				return true
			}
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" &&
				len(n.Args) == 1 && m.isChanType(n.Args[0]) {
				report(n.Pos(), "channel close inside the STW window (the rendezvous must not touch channels)")
				return true
			}
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			callee := m.Callee(n)
			if callee != nil {
				if _, safe := m.Ann.StwSafeFunc[callee]; safe {
					return true
				}
			}
			switch {
			case allocMethods[name]:
				report(n.Pos(), "allocation %s.%s inside the STW window (GC must not allocate; mark the callee //msvet:stw-safe only after auditing)",
					exprString(sel.X), name)
			case acquireMethods[name], hostAcquireMethods[name] && m.isSyncMutex(sel.X):
				if v := m.selectedVar(sel.X); v != nil {
					if _, safe := m.Ann.StwSafeField[v]; safe {
						return true
					}
				}
				report(n.Pos(), "lock %s acquired inside the STW window without //msvet:stw-safe",
					exprString(sel.X))
			}
		case *ast.SendStmt:
			if r.contains(n.Pos()) {
				report(n.Arrow, "channel send inside the STW window (the rendezvous must not touch channels)")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && r.contains(n.Pos()) {
				report(n.Pos(), "channel receive inside the STW window (the rendezvous must not touch channels)")
			}
		case *ast.SelectStmt:
			if r.contains(n.Pos()) {
				report(n.Pos(), "select inside the STW window (the rendezvous must not touch channels)")
			}
		case *ast.RangeStmt:
			if r.contains(n.Pos()) && m.isChanType(n.X) {
				report(n.Pos(), "range over channel inside the STW window (the rendezvous must not touch channels)")
			}
		}
		return true
	})
}

// isSyncMutex reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func (m *Module) isSyncMutex(e ast.Expr) bool {
	tv, ok := m.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func (m *Module) isChanType(e ast.Expr) bool {
	tv, ok := m.Info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// calleeSelName returns the lexical method/function name of a call.
func calleeSelName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// stwWindows finds the lexical stop-the-world windows in one function:
// each StopTheWorld call opens a window that closes at the first
// following non-deferred ResumeTheWorld, or at the end of the function
// when the resume is deferred (or missing — conservative).
func stwWindows(node *FuncNode) []posRange {
	body := node.Decl.Body
	var stops []token.Pos   // End() of each StopTheWorld call
	var resumes []token.Pos // Pos() of each non-deferred ResumeTheWorld call
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeSelName(call) {
		case "StopTheWorld":
			stops = append(stops, call.End())
		case "ResumeTheWorld":
			if !deferred[call] {
				resumes = append(resumes, call.Pos())
			}
		}
		return true
	})
	var out []posRange
	for _, start := range stops {
		end := body.End()
		for _, r := range resumes {
			if r > start && r < end {
				end = r
			}
		}
		out = append(out, posRange{start, end})
	}
	return out
}
