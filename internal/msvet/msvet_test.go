package msvet

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// runOn parses the given sources (name → content) as one package at
// pkgPath and runs a single analyzer over it.
func runOn(t *testing.T, a *Analyzer, pkgPath string, sources map[string]string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	var files []*File
	for name, src := range sources {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, &File{
			Name: name,
			Test: strings.HasSuffix(name, "_test.go"),
			AST:  f,
		})
	}
	var findings []Finding
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Path:     pkgPath,
		Files:    files,
		report:   func(f Finding) { findings = append(findings, f) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return findings
}

func wantFindings(t *testing.T, got []Finding, n int, contains string) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d findings, want %d: %v", len(got), n, got)
	}
	if n > 0 && contains != "" && !strings.Contains(got[0].Message, contains) {
		t.Errorf("finding %q does not mention %q", got[0].Message, contains)
	}
}

// ---- virttime ----

func TestVirttimeFlagsHostClock(t *testing.T) {
	got := runOn(t, VirttimeAnalyzer, "internal/firefly", map[string]string{
		"bad.go": `package firefly
import "time"
var t0 = time.Now()
`,
	})
	wantFindings(t, got, 1, "determinism")
}

func TestVirttimeAllowsHostPackagesAndTests(t *testing.T) {
	got := runOn(t, VirttimeAnalyzer, "internal/bench", map[string]string{
		"ok.go": `package bench
import "time"
var t0 = time.Now()
`,
	})
	wantFindings(t, got, 0, "")
	got = runOn(t, VirttimeAnalyzer, "internal/firefly", map[string]string{
		"ok_test.go": `package firefly
import "time"
var t0 = time.Now()
`,
	})
	wantFindings(t, got, 0, "")
}

func TestVirttimeFlagsMathRand(t *testing.T) {
	got := runOn(t, VirttimeAnalyzer, "internal/interp", map[string]string{
		"bad.go": `package interp
import "math/rand"
var x = rand.Int()
`,
	})
	wantFindings(t, got, 1, "randomness")
}

// ---- lockpair ----

func TestLockpairFlagsMissingRelease(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/x", map[string]string{
		"bad.go": `package x
func f(l *Spinlock, p *Proc) {
	l.Acquire(p)
	work()
}
`,
	})
	// Both the lexical check and the path simulation fire.
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (lexical + path): %v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "never released") {
		t.Errorf("first finding: %q", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "still held") {
		t.Errorf("second finding: %q", got[1].Message)
	}
}

func TestLockpairFlagsLeakOnOnePath(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/x", map[string]string{
		"bad.go": `package x
func f(l *Spinlock, p *Proc, cond bool) {
	l.Acquire(p)
	if cond {
		return // BUG: still holding l
	}
	l.Release(p)
}
`,
	})
	wantFindings(t, got, 1, "still held")
}

func TestLockpairCleanPatterns(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/x", map[string]string{
		"ok.go": `package x
func plain(l *Spinlock, p *Proc) {
	l.Acquire(p)
	work()
	l.Release(p)
}
func deferred(l *Spinlock, p *Proc) {
	l.Acquire(p)
	defer l.Release(p)
	work()
}
func earlyOut(l *Spinlock, p *Proc, n int) {
	l.Acquire(p)
	if n > 0 {
		l.Release(p)
		return
	}
	work()
	l.Release(p)
}
func tryBail(l *Spinlock, p *Proc) {
	if !l.TryAcquire(p) {
		p.CheckYield()
		return
	}
	work()
	l.Release(p)
}
func tryBlock(l *Spinlock, p *Proc) {
	if l.TryAcquire(p) {
		work()
		l.Release(p)
	}
}
func rw(l *RWSpinlock, p *Proc) {
	l.AcquireRead(p)
	work()
	l.ReleaseRead(p)
	l.AcquireWrite(p)
	work()
	l.ReleaseWrite(p)
}
func panics(l *Spinlock, p *Proc, bad bool) {
	l.Acquire(p)
	if bad {
		l.Release(p)
		panic("bad")
	}
	l.Release(p)
}
func correlated(l *RWSpinlock, p *Proc, shared bool) {
	locked := false
	if shared {
		l.AcquireRead(p)
		locked = true
	}
	work()
	if locked {
		l.ReleaseRead(p)
	}
}
func loops(l *Spinlock, p *Proc, n int) {
	for i := 0; i < n; i++ {
		l.Acquire(p)
		work()
		l.Release(p)
	}
}
`,
	})
	wantFindings(t, got, 0, "")
}

func TestLockpairFlagsReadWriteMismatch(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/x", map[string]string{
		"bad.go": `package x
func f(l *RWSpinlock, p *Proc) {
	l.AcquireWrite(p)
	work()
	l.ReleaseRead(p) // BUG: wrong release flavor
}
`,
	})
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (lexical + path): %v", len(got), got)
	}
}

func TestLockpairSkipsTestFiles(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/x", map[string]string{
		"fault_test.go": `package x
func f(l *Spinlock, p *Proc) {
	l.Acquire(p) // deliberate fault injection
}
`,
	})
	wantFindings(t, got, 0, "")
}

func TestLockpairFuncLitIsOwnScope(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/x", map[string]string{
		"bad.go": `package x
func f(l *Spinlock, m *Machine) {
	m.Start(0, func(p *Proc) {
		l.Acquire(p)
		work()
	})
}
`,
	})
	// Lexical check (whole decl) and the literal's own path simulation.
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
}

func TestLockpairFlagsStopTheWorldWithoutResume(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/heap", map[string]string{
		"bad.go": `package heap
func f(m *Machine, p *Proc) {
	m.StopTheWorld(p)
	work()
}
`,
	})
	// Lexical only: the bool result makes the path state maybe-held.
	wantFindings(t, got, 1, "never released")
}

func TestLockpairFlagsWorldStoppedOnOnePath(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/heap", map[string]string{
		"bad.go": `package heap
func f(m *Machine, p *Proc, cond bool) {
	if !m.StopTheWorld(p) {
		return
	}
	if cond {
		return // BUG: the world is still stopped
	}
	m.ResumeTheWorld(p)
}
`,
	})
	wantFindings(t, got, 1, "still held")
}

func TestLockpairStopTheWorldCleanPatterns(t *testing.T) {
	got := runOn(t, LockpairAnalyzer, "internal/heap", map[string]string{
		"ok.go": `package heap
func deferred(m *Machine, p *Proc) {
	if !m.StopTheWorld(p) {
		return
	}
	defer m.ResumeTheWorld(p)
	work()
}
func straightline(m *Machine, p *Proc) {
	if !m.StopTheWorld(p) {
		return
	}
	work()
	m.ResumeTheWorld(p)
}
`,
	})
	wantFindings(t, got, 0, "")
}

// ---- traceguard ----

func TestTraceguardFlagsUnguardedHook(t *testing.T) {
	got := runOn(t, TraceguardAnalyzer, "internal/heap", map[string]string{
		"bad.go": `package heap
func f(h *Heap, p *Proc) {
	h.rec.Emit(trace.KSend, p.ID(), 0, 0, 0, "")
	h.san.OnAccess(p.ID(), 0, "eden")
}
`,
	})
	wantFindings(t, got, 2, "not nil-guarded")
}

func TestTraceguardAcceptsGuardIdioms(t *testing.T) {
	got := runOn(t, TraceguardAnalyzer, "internal/heap", map[string]string{
		"ok.go": `package heap
func enclosing(h *Heap, p *Proc) {
	if h.rec != nil {
		h.rec.Emit(trace.KSend, p.ID(), 0, 0, 0, "")
	}
}
func ifInit(h *Heap, p *Proc) {
	if s := h.san; s != nil {
		s.OnAccess(p.ID(), 0, "eden")
	}
}
func earlyReturn(h *Heap, p *Proc) {
	san := h.san
	if san == nil {
		return
	}
	check := func(o uint64) {
		san.ReportWriteBarrier(0, 0, "x", "y")
	}
	check(0)
	san.NoteBarrierScan(12)
}
func conjoined(h *Heap, p *Proc) {
	if h.rec != nil && p != nil {
		h.rec.Emit(trace.KSend, p.ID(), 0, 0, 0, "")
	}
}
func elseOfNil(h *Heap, p *Proc) {
	if h.san == nil {
		work()
	} else {
		h.san.OnAccess(p.ID(), 0, "eden")
	}
}
`,
	})
	wantFindings(t, got, 0, "")
}

func TestTraceguardIgnoresAssemblerEmit(t *testing.T) {
	got := runOn(t, TraceguardAnalyzer, "internal/compiler", map[string]string{
		"ok.go": `package compiler
func f(g *gen) {
	g.asm.Emit(bytecode.OpPushSelf, 0)
}
`,
	})
	wantFindings(t, got, 0, "")
}

func TestTraceguardGuardDoesNotLeakAcrossBranches(t *testing.T) {
	got := runOn(t, TraceguardAnalyzer, "internal/heap", map[string]string{
		"bad.go": `package heap
func f(h *Heap, p *Proc, cond bool) {
	if h.san == nil {
		work() // no return: the guard proves nothing below
	}
	h.san.OnAccess(p.ID(), 0, "eden")
}
`,
	})
	wantFindings(t, got, 1, "not nil-guarded")
}

func TestTraceguardCoversParallelDriver(t *testing.T) {
	// The parallel driver (real goroutine processors) emits into the
	// sharded recorder through the same nil-guarded field; an unguarded
	// emission in the park/stop paths must still be flagged.
	got := runOn(t, TraceguardAnalyzer, "internal/firefly", map[string]string{
		"ok.go": `package firefly
func parkStop(m *Machine, p *Proc) {
	if r := m.rec; r != nil {
		r.Emit(trace.KQuantumEnd, p.id, int64(p.clock), 0, 0, "")
	}
}
`,
		"bad.go": `package firefly
func parSlow(m *Machine, p *Proc) {
	m.rec.Emit(trace.KQuantumStart, p.id, int64(p.clock), 0, 0, "")
}
`,
	})
	wantFindings(t, got, 1, "not nil-guarded")
}

func TestTraceguardCoversHistogramHooks(t *testing.T) {
	// PR 7's latency histograms and allocation-site profiler hooks are
	// optional observers like the recorder: every Record/Note* emission
	// must be nil-guarded. A guard on a receiver prefix counts — the
	// histograms are value fields of the guarded *LatencyHists.
	got := runOn(t, TraceguardAnalyzer, "internal/heap", map[string]string{
		"ok.go": `package heap
func pause(h *Heap, ticks int64) {
	if lh := h.lat; lh != nil {
		lh.ScavengePause.Record(ticks)
		lh.AddCriticalPath(cp)
	}
}
func site(h *Heap, id int, words int64) {
	ap := h.alp
	if ap == nil {
		return
	}
	ap.RecordAlloc(id, words)
	ap.NoteSurvived(id, words)
	ap.NoteTenured(id, words)
	ap.NoteAge(3, words)
}
`,
		"bad.go": `package heap
func unguardedPause(h *Heap, ticks int64) {
	h.lat.ScavengePause.Record(ticks)
}
func unguardedSite(h *Heap, id int, words int64) {
	h.alp.RecordAlloc(id, words)
}
`,
	})
	wantFindings(t, got, 2, "not nil-guarded")
}

// ---- heapwrite ----

func TestHeapwriteFlagsDirectWrite(t *testing.T) {
	got := runOn(t, HeapwriteAnalyzer, "internal/interp", map[string]string{
		"bad.go": `package interp
func f(h *Heap, addr uint64, v uint64) {
	h.mem[addr] = v
	copy(h.mem[addr:], []uint64{v})
}
`,
	})
	wantFindings(t, got, 2, "store check")
}

func TestHeapwriteVerifierStaysReadOnly(t *testing.T) {
	got := runOn(t, HeapwriteAnalyzer, "internal/heap", map[string]string{
		"verify.go": `package heap
func (h *Heap) patch(addr uint64, v uint64) {
	h.mem[addr] = v
}
`,
	})
	wantFindings(t, got, 1, "read-only")
}

func TestHeapwriteAllowsCollectorFiles(t *testing.T) {
	got := runOn(t, HeapwriteAnalyzer, "internal/heap", map[string]string{
		"scavenge.go": `package heap
func (h *Heap) move(dst, src uint64, n uint64) {
	for i := uint64(0); i < n; i++ {
		h.mem[dst+i] = h.mem[src+i]
	}
}
`,
	})
	wantFindings(t, got, 0, "")
}

func TestHeapwriteInsideHeapOnlyVerifierChecked(t *testing.T) {
	// Since the file allowlist was retired, the lexical pass inside
	// internal/heap polices only the write-barrier verifier (read-only
	// by construction); every other collector file is barrierflow's
	// call-graph-aware job.
	got := runOn(t, HeapwriteAnalyzer, "internal/heap", map[string]string{
		"worklist.go": `package heap
func (w *worklist) stash(h *Heap, addr, v uint64) {
	h.mem[addr] = v
}
`,
		"verify.go": `package heap
func (h *Heap) patch(addr, v uint64) {
	h.mem[addr] = v
}
`,
	})
	wantFindings(t, got, 1, "read-only")
	if got[0].Pos.Filename != "verify.go" {
		t.Errorf("finding in %s, want verify.go", got[0].Pos.Filename)
	}
}

func TestHeapwriteHonorsFunnelAnnotation(t *testing.T) {
	// Outside internal/heap a lexical //msvet:heap-writer doc directive
	// exempts the function (the flow-based analyzers audit the
	// annotation's honesty).
	got := runOn(t, HeapwriteAnalyzer, "internal/interp", map[string]string{
		"mixed.go": `package interp
//msvet:heap-writer image loader writing pre-publication memory
func load(h *Heap, addr, v uint64) {
	h.mem[addr] = v
}
func poke(h *Heap, addr, v uint64) {
	h.mem[addr] = v
}
`,
	})
	wantFindings(t, got, 1, "store check")
	if got[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want 7 (the unannotated poke)", got[0].Pos.Line)
	}
}

// ---- costcharge ----

func TestCostchargeFlagsInventedCosts(t *testing.T) {
	got := runOn(t, CostchargeAnalyzer, "internal/jit", map[string]string{
		"bad.go": `package jit
func price(p *Proc) {
	c := firefly.Time(3)
	p.Advance(c)
	t := Template{Cost: 7}
	use(t)
}
`,
	})
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "cost") && !strings.Contains(f.Message, "charg") {
			t.Errorf("finding %q does not mention costs or charging", f.Message)
		}
	}
}

func TestCostchargeAllowsTableDerivedCharges(t *testing.T) {
	got := runOn(t, CostchargeAnalyzer, "internal/jit", map[string]string{
		"ok.go": `package jit
func plan(p *Program, n int) firefly.Time {
	return firefly.Time(n-1) * p.DispatchCost
}
func zero() firefly.Time {
	return firefly.Time(0)
}
`,
	})
	wantFindings(t, got, 0, "")
}

func TestCostchargeScopedToJITPackage(t *testing.T) {
	got := runOn(t, CostchargeAnalyzer, "internal/interp", map[string]string{
		"ok.go": `package interp
func charge(in *Interp) {
	in.p.Advance(firefly.Time(1))
}
`,
	})
	wantFindings(t, got, 0, "")
}

// ---- framework ----

func TestFindingsSortedAndFormatted(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "b.go", `package x
import "time"
var t0 = time.Now()
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "internal/firefly", Fset: fset,
		Files: []*File{{Name: "b.go", AST: f}}}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{VirttimeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings: %v", findings)
	}
	s := findings[0].String()
	if !strings.HasPrefix(s, "b.go:2:") || !strings.Contains(s, "[virttime]") {
		t.Errorf("formatting: %q", s)
	}
}

func TestAnalyzersComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	for _, want := range []string{
		"virttime", "lockpair", "traceguard", "heapwrite", "costcharge",
		"stwsafe", "atomicguard", "barrierflow", "lockorder",
	} {
		if !names[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
	if len(names) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(names))
	}
}
