package msvet

import "strings"

// virtualTimePackages are the packages that execute inside (or feed
// state into) the deterministic virtual-time simulation. None of them
// may consult the host clock or host randomness: a run's virtual times
// and counters must be a pure function of the configuration.
// Host-side packages (bench, cmd/*, examples) measure wall-clock
// deliberately and are exempt.
var virtualTimePackages = map[string]bool{
	"internal/firefly":  true,
	"internal/object":   true,
	"internal/bytecode": true,
	"internal/compiler": true,
	"internal/heap":     true,
	"internal/interp":   true,
	"internal/jit":      true,
	"internal/display":  true,
	"internal/image":    true,
	"internal/trace":    true,
	"internal/sanitize": true,
	"internal/core":     true,
	// The image server's scheduling and its open-loop arrival generator
	// are virtual-time: every latency and every admission decision must
	// replay bit-identically from the seed.
	"internal/serve":         true,
	"internal/serve/loadgen": true,
}

// forbiddenImports maps import path → why it is forbidden.
var forbiddenImports = map[string]string{
	"time":         "host wall-clock breaks virtual-time determinism",
	"math/rand":    "host randomness breaks virtual-time determinism",
	"math/rand/v2": "host randomness breaks virtual-time determinism",
}

// VirttimeAnalyzer forbids time and math/rand imports in virtual-time
// packages (non-test files; property tests may seed their own
// generators deterministically or measure host time for reporting).
var VirttimeAnalyzer = &Analyzer{
	Name: "virttime",
	Doc:  "forbid host time/randomness imports in virtual-time packages",
	Run: func(pass *Pass) error {
		if !virtualTimePackages[pass.Path] {
			return nil
		}
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			for _, imp := range f.AST.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if why, bad := forbiddenImports[path]; bad {
					pass.Reportf(imp.Pos(), "virtual-time package %s imports %q: %s",
						pass.Path, path, why)
				}
			}
		}
		return nil
	},
}
