package msvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The //msvet: annotation grammar. Annotations are single-line
// directives in a declaration's doc comment (functions) or a struct
// field's doc/trailing comment (fields). Everything after the
// directive word is a free-form justification, echoed by `msvet -v`;
// an empty justification is legal but frowned upon.
//
//	//msvet:stw-entry [why]        (func)  the function body runs inside
//	                                       the STW window even though no
//	                                       lexical StopTheWorld call
//	                                       dominates it; stwsafe seeds
//	                                       its reachability walk here.
//	//msvet:stw-safe [why]         (func)  audited by hand: safe to call
//	                                       from inside the STW window;
//	                                       stwsafe does not descend.
//	//msvet:stw-safe [why]         (field) this lock/mutex may be
//	                                       acquired inside the STW
//	                                       window (it is never held
//	                                       across a GC entry by a
//	                                       stopped mutator).
//	//msvet:atomic-excluded [why]  (func)  plain access to atomically-
//	                                       accessed fields is allowed
//	                                       here (init before publication
//	                                       or det-mode single-threaded
//	                                       paths).
//	//msvet:heap-writer [why]      (func)  audited raw heap-word writer:
//	                                       the barrier funnel itself, or
//	                                       a writer of fresh unpublished
//	                                       memory.
const (
	annStwEntry       = "stw-entry"
	annStwSafe        = "stw-safe"
	annAtomicExcluded = "atomic-excluded"
	annHeapWriter     = "heap-writer"
)

// Annotation is one parsed //msvet: directive.
type Annotation struct {
	Kind          string
	Pos           token.Pos
	Target        string // rendered target (func or field name) for -v
	Justification string
}

// Annotations is the module-wide directive table, keyed by the
// type-checker object each directive attaches to.
type Annotations struct {
	StwEntry       map[*types.Func]string
	StwSafeFunc    map[*types.Func]string
	StwSafeField   map[*types.Var]string
	AtomicExcluded map[*types.Func]string
	HeapWriter     map[*types.Func]string
	All            []Annotation // sorted by position, for -v
}

// parseDirective splits a "//msvet:kind justification" comment line.
func parseDirective(text string) (kind, justification string, ok bool) {
	rest, found := strings.CutPrefix(text, "//msvet:")
	if !found {
		return "", "", false
	}
	kind, justification, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(kind), strings.TrimSpace(justification), kind != ""
}

func collectAnnotations(m *Module) *Annotations {
	ann := &Annotations{
		StwEntry:       map[*types.Func]string{},
		StwSafeFunc:    map[*types.Func]string{},
		StwSafeField:   map[*types.Var]string{},
		AtomicExcluded: map[*types.Func]string{},
		HeapWriter:     map[*types.Func]string{},
	}
	addFunc := func(fd *ast.FuncDecl) {
		fn, _ := m.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return
		}
		for _, c := range commentList(fd.Doc) {
			kind, just, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			switch kind {
			case annStwEntry:
				ann.StwEntry[fn] = just
			case annStwSafe:
				ann.StwSafeFunc[fn] = just
			case annAtomicExcluded:
				ann.AtomicExcluded[fn] = just
			case annHeapWriter:
				ann.HeapWriter[fn] = just
			default:
				continue
			}
			ann.All = append(ann.All, Annotation{
				Kind: kind, Pos: c.Pos(),
				Target: funcDisplayName(fn), Justification: just,
			})
		}
	}
	addField := func(field *ast.Field) {
		for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
			for _, c := range commentList(group) {
				kind, just, ok := parseDirective(c.Text)
				if !ok || kind != annStwSafe {
					continue
				}
				for _, name := range field.Names {
					v, _ := m.Info.Defs[name].(*types.Var)
					if v == nil {
						continue
					}
					ann.StwSafeField[v] = just
					ann.All = append(ann.All, Annotation{
						Kind: kind, Pos: c.Pos(),
						Target: name.Name, Justification: just,
					})
				}
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					addFunc(d)
				case *ast.GenDecl:
					ast.Inspect(d, func(n ast.Node) bool {
						if st, ok := n.(*ast.StructType); ok {
							for _, field := range st.Fields.List {
								addField(field)
							}
						}
						return true
					})
				}
			}
		}
	}
	sort.Slice(ann.All, func(i, j int) bool { return ann.All[i].Pos < ann.All[j].Pos })
	return ann
}

func commentList(g *ast.CommentGroup) []*ast.Comment {
	if g == nil {
		return nil
	}
	return g.List
}

// funcDisplayName renders "pkg.Func" or "pkg.(*Recv).Method".
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		name = types.TypeString(t, func(p *types.Package) string { return "" }) + "." + name
		name = strings.TrimPrefix(name, ".")
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
