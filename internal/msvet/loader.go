package msvet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is the whole type-checked module: every package's parsed
// files (from LoadModule), one shared go/types universe across them,
// the //msvet: annotation table, and — built lazily because only the
// module analyzers need them — the callee-resolution call graph and
// the STW-reachable set.
//
// The loader is stdlib-only: intra-module imports resolve against the
// packages type-checked earlier in dependency order, and everything
// else (sync, sync/atomic, ...) goes to go/importer's source importer,
// which type-checks the standard library from GOROOT source. No module
// proxy, no export data, no golang.org/x/tools.
type Module struct {
	Root string // directory containing go.mod
	Path string // module path from go.mod (e.g. "mst")
	Fset *token.FileSet
	Pkgs []*Package

	// Types maps Package.Path (module-relative dir, "." for root) to
	// the type-checked package. Only non-test files are type-checked;
	// the module analyzers skip test files for the same reason.
	Types map[string]*types.Package
	// Info is one shared type-checker fact table across all packages.
	Info *types.Info
	// Ann is the parsed //msvet: annotation table.
	Ann *Annotations

	graph *CallGraph
	stw   *stwResult
	lockg *lockGraph
}

// LoadTyped parses and type-checks the module rooted at root (the
// directory containing go.mod).
func LoadTyped(root string) (*Module, error) {
	pkgs, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("msvet: no Go packages under %s", root)
	}
	mod := &Module{
		Root:  root,
		Path:  modPath,
		Fset:  pkgs[0].Fset,
		Pkgs:  pkgs,
		Types: map[string]*types.Package{},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	order, err := topoOrder(mod)
	if err != nil {
		return nil, err
	}
	std := importer.ForCompiler(mod.Fset, "source", nil)
	conf := types.Config{Importer: &moduleImporter{mod: mod, std: std}}
	for _, pkg := range order {
		var files []*ast.File
		for _, f := range pkg.Files {
			if !f.Test {
				files = append(files, f.AST)
			}
		}
		if len(files) == 0 {
			continue
		}
		tp, err := conf.Check(mod.importPath(pkg.Path), mod.Fset, files, mod.Info)
		if err != nil {
			return nil, fmt.Errorf("msvet: type-checking %s: %v", pkg.Path, err)
		}
		mod.Types[pkg.Path] = tp
	}
	mod.Ann = collectAnnotations(mod)
	return mod, nil
}

// importPath maps a module-relative dir to its import path.
func (m *Module) importPath(dir string) string {
	if dir == "." {
		return m.Path
	}
	return m.Path + "/" + dir
}

// relPos renders pos as a root-relative, slash-separated position
// string — stable across checkouts, used for deterministic output.
func (m *Module) relPos(pos token.Pos) string {
	p := m.Fset.Position(pos)
	name := p.Filename
	if rel, err := filepath.Rel(m.Root, name); err == nil {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", filepath.ToSlash(name), p.Line, p.Column)
}

// moduleImporter resolves intra-module import paths against the
// packages type-checked so far (dependency order guarantees they are
// present) and delegates everything else to the GOROOT source
// importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if dir, ok := im.mod.relDir(path); ok {
		tp := im.mod.Types[dir]
		if tp == nil {
			return nil, fmt.Errorf("intra-module import %s not yet type-checked (import cycle?)", path)
		}
		return tp, nil
	}
	return im.std.Import(path)
}

// relDir maps an import path to a module-relative dir, reporting
// whether the path belongs to this module.
func (m *Module) relDir(path string) (string, bool) {
	if path == m.Path {
		return ".", true
	}
	if strings.HasPrefix(path, m.Path+"/") {
		return path[len(m.Path)+1:], true
	}
	return "", false
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("no module path in %s/go.mod", root)
}

// topoOrder sorts packages so every package is type-checked after the
// intra-module packages it imports. Ties (and everything else) stay in
// LoadModule's sorted-directory order, so the result is deterministic.
func topoOrder(m *Module) ([]*Package, error) {
	byDir := map[string]*Package{}
	for _, p := range m.Pkgs {
		byDir[p.Path] = p
	}
	deps := map[string][]string{}
	for _, p := range m.Pkgs {
		seen := map[string]bool{}
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, imp := range f.AST.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if dir, ok := m.relDir(path); ok && byDir[dir] != nil && !seen[dir] {
					seen[dir] = true
					deps[p.Path] = append(deps[p.Path], dir)
				}
			}
		}
		sort.Strings(deps[p.Path])
	}
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(dir string) error
	visit = func(dir string) error {
		switch state[dir] {
		case 1:
			return fmt.Errorf("msvet: import cycle through %s", dir)
		case 2:
			return nil
		}
		state[dir] = 1
		for _, d := range deps[dir] {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[dir] = 2
		order = append(order, byDir[dir])
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p.Path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
