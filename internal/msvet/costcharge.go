package msvet

import "go/ast"

// CostchargeAnalyzer enforces the msjit tier's bit-identity discipline
// at the source level: internal/jit describes work, it never prices it.
// Every virtual-time charge for a compiled bytecode must flow through
// the interpreter's shared cost table (interp.costTable), so the
// compiled and interpreted tiers cannot drift apart by construction.
// Three shapes betray a hand-invented cost in internal/jit:
//
//   - firefly.Time(<integer literal>) with a nonzero literal — a
//     constant cost conjured outside the table;
//   - any .Advance(...) call — advancing a clock is the executor's job,
//     and the executor lives in internal/interp;
//   - a `Cost: <literal>` composite-literal field — pricing a template
//     at build time instead of referencing the table.
//
// Derived quantities like firefly.Time(n-1) * p.DispatchCost are fine:
// the magnitude still comes from the table.
var CostchargeAnalyzer = &Analyzer{
	Name: "costcharge",
	Doc:  "internal/jit charges virtual time only through the shared cost table",
	Run: func(pass *Pass) error {
		if pass.Path != "internal/jit" {
			return nil
		}
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "firefly" &&
						sel.Sel.Name == "Time" && len(n.Args) == 1 {
						if lit, ok := n.Args[0].(*ast.BasicLit); ok && lit.Value != "0" {
							pass.Reportf(n.Pos(),
								"firefly.Time(%s) invents a cost outside the shared cost table",
								lit.Value)
						}
					}
					if sel.Sel.Name == "Advance" {
						pass.Reportf(n.Pos(),
							"%s charges virtual time in internal/jit; charging belongs to the executor in internal/interp",
							exprString(n.Fun))
					}
				case *ast.KeyValueExpr:
					if id, ok := n.Key.(*ast.Ident); ok && id.Name == "Cost" {
						if lit, ok := n.Value.(*ast.BasicLit); ok && lit.Value != "0" {
							pass.Reportf(n.Pos(),
								"Cost: %s prices a template with a literal instead of the shared cost table",
								lit.Value)
						}
					}
				}
				return true
			})
		}
		return nil
	},
}
