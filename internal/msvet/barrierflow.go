package msvet

import (
	"go/ast"
	"go/token"
)

// barrierflow: flow-based replacement for heapwrite's old file
// allowlist. The invariant: every store of a word into object memory
// (`X.mem[i] = v`, `copy(X.mem[...], ...)`, atomic stores/CAS on
// `&X.mem[i]`) must reach the write barrier's store check — which in
// this codebase means the store must sit in one of exactly two kinds
// of function:
//
//   - a `//msvet:heap-writer` funnel: storeWord (the barrier API's
//     single exit point), the allocator writing fresh unpublished
//     words, the CAS-claimed header updater, the snapshot restorer;
//   - STW-reachable collector code (Module.STWReachable): while the
//     world is stopped there are no concurrent mutators and the
//     collector moves objects wholesale.
//
// Everything else is a finding, *wherever* the store lexically lives —
// a helper function can no longer launder an unbarriered store past a
// file- or package-level allowlist, because the check is per function
// over the call-graph-derived STW set, not per file. When the
// offending function is reachable from an exported entry point the
// message names one such path root, which is the smoking gun for
// mutator-visible barrier bypass.
//
// Soundness: function granularity, not per-store def-use chains — a
// function that both zeroes fresh memory and stores mutator-visible
// OOPs would need (and deserve) a split before it could be annotated
// honestly. Dynamic calls are invisible to the STW set, so a collector
// helper invoked only through a function value must carry its own
// annotation.
var BarrierflowAnalyzer = &Analyzer{
	Name: "barrierflow",
	Doc:  "every raw store into object memory must be an annotated funnel or STW collector code",
	RunModule: func(pass *ModulePass) error {
		m := pass.Mod
		stw := m.STWReachable()
		roots := m.exportedReach()
		for _, node := range m.Graph().Nodes {
			stores := rawMemStores(m, node)
			if len(stores) == 0 {
				continue
			}
			if _, ok := m.Ann.HeapWriter[node.Fn]; ok {
				continue
			}
			if stw[node] {
				continue
			}
			suffix := ""
			if root := roots[node]; root != nil {
				suffix = " and is reachable from exported " + funcDisplayName(root.Fn)
			}
			for _, s := range stores {
				if m.STWCovered(node, s.pos) {
					// The store sits inside the function's own lexical
					// STW window (FullCollect, Scavenge).
					continue
				}
				pass.Reportf(s.pos,
					"raw heap store %s: %s is neither a //msvet:heap-writer funnel nor STW collector code%s; route the store through the barrier API (Store/StoreNoCheck)",
					s.expr, funcDisplayName(node.Fn), suffix)
			}
		}
		return nil
	},
}

type rawStore struct {
	pos  token.Pos
	expr string
}

// rawMemStores collects every raw object-memory store in one function:
// plain writes, increments, wholesale copies, and atomic stores/CAS
// targeting `&X.mem[i]`.
func rawMemStores(m *Module, node *FuncNode) []rawStore {
	var out []rawStore
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if memTarget(lhs) {
					out = append(out, rawStore{lhs.Pos(), exprString(lhs)})
				}
			}
		case *ast.IncDecStmt:
			if memTarget(n.X) {
				out = append(out, rawStore{n.Pos(), exprString(n.X)})
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) > 0 {
				if memSlice(n.Args[0]) {
					out = append(out, rawStore{n.Pos(), "copy(" + exprString(n.Args[0]) + ", ...)"})
				}
				return true
			}
			if m.isAtomicCall(n) {
				sel := unparen(n.Fun).(*ast.SelectorExpr)
				name := sel.Sel.Name
				if !atomicStoresArg(name) {
					return true
				}
				for _, arg := range n.Args {
					u, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					if memTarget(u.X) {
						out = append(out, rawStore{arg.Pos(), "atomic " + name + "(" + exprString(arg) + ")"})
					}
					break // only the address argument can be the target
				}
			}
		}
		return true
	})
	return out
}

// atomicStoresArg reports whether the named sync/atomic function
// writes through its address argument.
func atomicStoresArg(name string) bool {
	switch {
	case len(name) >= 5 && name[:5] == "Store":
		return true
	case len(name) >= 14 && name[:14] == "CompareAndSwap":
		return true
	case len(name) >= 4 && name[:4] == "Swap":
		return true
	case len(name) >= 3 && name[:3] == "Add":
		return true
	}
	return false
}

// exportedReach computes, for every node reachable from an exported
// function (or main/init), one deterministic exported root — used to
// point out that a barrier bypass is mutator-visible. The walk stops
// at annotated heap-writer funnels and STW entry calls (those are the
// sanctioned boundaries).
func (m *Module) exportedReach() map[*FuncNode]*FuncNode {
	g := m.Graph()
	stw := m.STWReachable()
	roots := map[*FuncNode]*FuncNode{}
	var queue []*FuncNode
	for _, node := range g.Nodes {
		name := node.Decl.Name.Name
		if !ast.IsExported(name) && name != "main" && name != "init" {
			continue
		}
		if roots[node] == nil {
			roots[node] = node
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, callee := range node.Callees {
			if roots[callee] != nil || stw[callee] {
				continue
			}
			if _, ok := m.Ann.HeapWriter[callee.Fn]; ok {
				continue
			}
			roots[callee] = roots[node]
			queue = append(queue, callee)
		}
	}
	return roots
}
