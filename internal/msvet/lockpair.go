package msvet

import (
	"go/ast"
	"go/token"
	"sort"
)

// LockpairAnalyzer checks that every virtual-spinlock acquisition is
// paired with its matching release:
//
//  1. Lexically: a function (or method) that calls X.Acquire must call
//     X.Release somewhere in the same declaration (likewise
//     AcquireRead/ReleaseRead, AcquireWrite/ReleaseWrite, and the
//     parallel mode's StopTheWorld/ResumeTheWorld rendezvous, with
//     TryAcquire pairing like Acquire). Catching the
//     forgot-the-release-entirely bug.
//  2. By path simulation: walking each function's statements with a
//     held-lock state (definite / maybe, branches merged), no lock
//     acquired in the function may be *definitely* held at a return.
//     Catching the released-on-one-path-only bug. Locks whose state is
//     merely "maybe" (conditional acquire patterns such as the
//     shared-cache `locked` flag) are not flagged — the simulator does
//     not track boolean correlations, and a false positive would teach
//     people to ignore the tool.
//
// Test files are excluded: fault-injection tests acquire without
// releasing on purpose.
var LockpairAnalyzer = &Analyzer{
	Name: "lockpair",
	Doc:  "every Spinlock acquire must pair with its release on all paths",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLexicalPairs(pass, fd)
				sim := &lockSim{pass: pass}
				sim.runBody(fd.Body)
				// Nested function literals are separate scopes: a lock
				// acquired inside one must be released inside it.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						inner := &lockSim{pass: pass}
						inner.runBody(lit.Body)
						return false
					}
					return true
				})
			}
		}
		return nil
	},
}

// releaseFor maps acquire method names to their release counterparts.
// StopTheWorld is the parallel host mode's rendezvous: it parks every
// other processor and MUST be undone by ResumeTheWorld, so it pairs
// exactly like a lock acquire.
var releaseFor = map[string]string{
	"Acquire":      "Release",
	"TryAcquire":   "Release",
	"AcquireRead":  "ReleaseRead",
	"AcquireWrite": "ReleaseWrite",
	"StopTheWorld": "ResumeTheWorld",
}

// condAcquire marks the acquire methods that return a bool and only
// take the lock when it is true: TryAcquire, and StopTheWorld (false
// means another processor won the race and stopped the world first —
// the caller must NOT resume).
var condAcquire = map[string]bool{
	"TryAcquire":   true,
	"StopTheWorld": true,
}

// isRelease recognizes the release-side method names.
func isRelease(method string) bool {
	switch method {
	case "Release", "ReleaseRead", "ReleaseWrite", "ResumeTheWorld":
		return true
	}
	return false
}

// lockCall decomposes a call expression into (receiver key, method);
// ok is false for non-method calls.
func lockCall(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

// checkLexicalPairs flags acquire calls with no matching release call
// anywhere in the same declaration (including nested literals — the
// path simulation handles scope strictness).
func checkLexicalPairs(pass *Pass, fd *ast.FuncDecl) {
	type site struct {
		pos  ast.Node
		recv string
	}
	acquires := map[string][]site{} // key recv+"#"+release → sites
	releases := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := lockCall(call)
		if !ok {
			return true
		}
		if rel, isAcq := releaseFor[method]; isAcq {
			key := recv + "#" + rel
			acquires[key] = append(acquires[key], site{pos: call, recv: recv})
		}
		if isRelease(method) {
			releases[recv+"#"+method] = true
		}
		return true
	})
	var keys []string
	for k := range acquires {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if releases[k] {
			continue
		}
		for _, s := range acquires[k] {
			pass.Reportf(s.pos.Pos(), "%s is acquired in %s but never released in the same function",
				s.recv, fd.Name.Name)
		}
	}
}

// ---- Path simulation ----

const (
	heldMaybe    = 1
	heldDefinite = 2
)

type lockState map[string]int

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge combines two non-terminated path states: definite only where
// both paths agree, maybe elsewhere.
func merge(a, b lockState) lockState {
	out := lockState{}
	for k, v := range a {
		if b[k] == heldDefinite && v == heldDefinite {
			out[k] = heldDefinite
		} else {
			out[k] = heldMaybe
		}
	}
	for k := range b {
		if _, seen := a[k]; !seen {
			out[k] = heldMaybe
		}
	}
	return out
}

type lockSim struct {
	pass *Pass
}

func (s *lockSim) runBody(body *ast.BlockStmt) {
	state := lockState{}
	terminated := s.simBlock(state, body)
	if !terminated {
		s.checkExit(state, body.End())
	}
}

// checkExit reports locks definitely held when control leaves the
// function.
func (s *lockSim) checkExit(state lockState, pos token.Pos) {
	var keys []string
	for k, v := range state {
		if v == heldDefinite {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		recv := k
		for i := 0; i < len(k); i++ {
			if k[i] == '#' {
				recv = k[:i]
				break
			}
		}
		s.pass.Reportf(pos, "%s is still held when the function returns on this path", recv)
	}
}

// simBlock simulates stmts in order, mutating state; reports whether
// the path terminated (return/panic/branch).
func (s *lockSim) simBlock(state lockState, block *ast.BlockStmt) bool {
	for _, st := range block.List {
		if s.simStmt(state, st) {
			return true
		}
	}
	return false
}

func (s *lockSim) simStmt(state lockState, stmt ast.Stmt) bool {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			s.applyCall(state, call, true)
		}
		return false
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			ast.Inspect(rhs, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					// An acquire whose result flows into a variable:
					// conservatively maybe-held.
					s.applyCall(state, call, false)
				}
				return true
			})
		}
		return false
	case *ast.ReturnStmt:
		s.checkExit(state, st.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; the loop merge
		// below already treats loop bodies as may-execute.
		return true
	case *ast.DeferStmt:
		// A deferred release covers every exit: drop the lock from the
		// state entirely.
		if recv, method, ok := lockCall(st.Call); ok && isRelease(method) {
			delete(state, recv+"#"+method)
		}
		return false
	case *ast.BlockStmt:
		return s.simBlock(state, st)
	case *ast.LabeledStmt:
		return s.simStmt(state, st.Stmt)
	case *ast.IfStmt:
		return s.simIf(state, st)
	case *ast.ForStmt:
		if st.Init != nil {
			s.simStmt(state, st.Init)
		}
		s.mergeLoopBody(state, st.Body)
		return false
	case *ast.RangeStmt:
		s.mergeLoopBody(state, st.Body)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		s.simCases(state, stmt)
		return false
	case *ast.GoStmt:
		return false
	default:
		return false
	}
}

// applyCall updates state for an acquire/release call. definite is
// false when the call's result flows somewhere we cannot track.
func (s *lockSim) applyCall(state lockState, call *ast.CallExpr, definite bool) {
	recv, method, ok := lockCall(call)
	if !ok {
		return
	}
	if rel, isAcq := releaseFor[method]; isAcq {
		v := heldDefinite
		if !definite || condAcquire[method] {
			v = heldMaybe
		}
		state[recv+"#"+rel] = v
		return
	}
	if isRelease(method) {
		delete(state, recv+"#"+method)
	}
}

// simIf handles if statements, with special cases for the conditional
// acquires (TryAcquire, StopTheWorld): `if !X.TryAcquire(p) {
// ...bail... }` and `if X.TryAcquire(p) { ...locked section... }` —
// the heap's `if !m.StopTheWorld(p) { return }` is the same shape.
func (s *lockSim) simIf(state lockState, st *ast.IfStmt) bool {
	if st.Init != nil {
		s.simStmt(state, st.Init)
	}

	cond := st.Cond
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op.String() == "!" {
		cond, negated = u.X, true
	}
	if call, ok := cond.(*ast.CallExpr); ok {
		if recv, method, isLock := lockCall(call); isLock && condAcquire[method] {
			key := recv + "#" + releaseFor[method]
			if negated {
				// if !X.TryAcquire: then-branch runs unlocked; the
				// fall-through (and else) path holds the lock.
				thenState := state.clone()
				thenTerm := s.simBlock(thenState, st.Body)
				heldState := state.clone()
				heldState[key] = heldDefinite
				if st.Else != nil {
					elseTerm := s.simElse(heldState, st.Else)
					if thenTerm && elseTerm {
						return true
					}
					if thenTerm {
						replace(state, heldState)
						return false
					}
					if elseTerm {
						replace(state, thenState)
						return false
					}
					replace(state, merge(thenState, heldState))
					return false
				}
				if thenTerm {
					replace(state, heldState)
					return false
				}
				replace(state, merge(thenState, heldState))
				return false
			}
			// if X.TryAcquire: the then-branch holds the lock.
			thenState := state.clone()
			thenState[key] = heldDefinite
			thenTerm := s.simBlock(thenState, st.Body)
			elseState := state.clone()
			elseTerm := false
			if st.Else != nil {
				elseTerm = s.simElse(elseState, st.Else)
			}
			return s.joinIf(state, thenState, thenTerm, elseState, elseTerm)
		}
	}

	thenState := state.clone()
	thenTerm := s.simBlock(thenState, st.Body)
	elseState := state.clone()
	elseTerm := false
	if st.Else != nil {
		elseTerm = s.simElse(elseState, st.Else)
	}
	return s.joinIf(state, thenState, thenTerm, elseState, elseTerm)
}

func (s *lockSim) simElse(state lockState, els ast.Stmt) bool {
	switch e := els.(type) {
	case *ast.BlockStmt:
		return s.simBlock(state, e)
	case *ast.IfStmt:
		return s.simIf(state, e)
	default:
		return s.simStmt(state, e)
	}
}

// joinIf merges the two branch outcomes back into state; reports
// whether both branches terminated.
func (s *lockSim) joinIf(state, thenState lockState, thenTerm bool, elseState lockState, elseTerm bool) bool {
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		replace(state, elseState)
	case elseTerm:
		replace(state, thenState)
	default:
		replace(state, merge(thenState, elseState))
	}
	return false
}

// mergeLoopBody simulates a loop body that may run zero or more times:
// the post-loop state is the merge of skipping and one execution.
func (s *lockSim) mergeLoopBody(state lockState, body *ast.BlockStmt) {
	bodyState := state.clone()
	terminated := s.simBlock(bodyState, body)
	if terminated {
		return // every in-body path returns/branches; fall-through keeps state
	}
	replace(state, merge(state, bodyState))
}

// simCases merges every case clause of a switch/select.
func (s *lockSim) simCases(state lockState, stmt ast.Stmt) {
	var body *ast.BlockStmt
	var init ast.Stmt
	hasDefault := false
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		body, init = st.Body, st.Init
	case *ast.TypeSwitchStmt:
		body, init = st.Body, st.Init
	case *ast.SelectStmt:
		body = st.Body
	}
	if init != nil {
		s.simStmt(state, init)
	}
	outcomes := []lockState{}
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		cs := state.clone()
		term := false
		for _, cstmt := range stmts {
			if s.simStmt(cs, cstmt) {
				term = true
				break
			}
		}
		if !term {
			outcomes = append(outcomes, cs)
		}
	}
	if !hasDefault {
		outcomes = append(outcomes, state.clone())
	}
	if len(outcomes) == 0 {
		return
	}
	acc := outcomes[0]
	for _, o := range outcomes[1:] {
		acc = merge(acc, o)
	}
	replace(state, acc)
}

// replace overwrites state's contents with src (maps are passed by
// reference; callers mutate the caller-visible state in place).
func replace(state, src lockState) {
	for k := range state {
		delete(state, k)
	}
	for k, v := range src {
		state[k] = v
	}
}
