package bench

import (
	"strings"
	"testing"

	"mst/internal/core"
)

func TestStandardStates(t *testing.T) {
	states := StandardStates()
	if len(states) != 4 {
		t.Fatalf("states = %d", len(states))
	}
	if states[0].Name != "baseline" || states[3].Name != "ms-busy" {
		t.Fatal("state order wrong")
	}
	if states[0].Config().Mode != core.ModeBaseline {
		t.Fatal("baseline state not in baseline mode")
	}
}

func TestMacroBenchmarksRunIndividually(t *testing.T) {
	sys, err := NewBenchSystem(StandardStates()[1]) // MS, no background
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	for _, b := range MacroBenchmarks {
		ms, err := RunMacro(sys, b.Selector)
		if err != nil {
			t.Fatalf("%s: %v (errors: %v)", b.Selector, err, sys.VM.Errors())
		}
		if ms <= 0 {
			t.Errorf("%s took %dms, want > 0", b.Selector, ms)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	run := func() int64 {
		sys, err := NewBenchSystem(StandardStates()[1])
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		ms, err := RunMacro(sys, "printClassHierarchy")
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("benchmark not deterministic: %d vs %d", a, b)
	}
}

func TestStateOrderingHolds(t *testing.T) {
	// The paper's fundamental shape on one representative benchmark:
	// baseline <= MS <= MS+idle <= MS+busy.
	var times []int64
	for _, st := range StandardStates() {
		sys, err := NewBenchSystem(st)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := RunMacro(sys, "printClassHierarchy")
		sys.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, ms)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("state ordering violated: %v", times)
		}
	}
	// Static overhead small; busy overhead substantial.
	static := float64(times[1])/float64(times[0]) - 1
	busy := float64(times[3])/float64(times[0]) - 1
	if static > 0.20 {
		t.Errorf("MS static overhead %.0f%% exceeds 20%%", static*100)
	}
	if busy < 0.10 {
		t.Errorf("busy overhead %.0f%% suspiciously low", busy*100)
	}
}

func TestTable2Formatting(t *testing.T) {
	tbl := &Table2{
		States:  StandardStates(),
		Benches: []string{"a", "b"},
		Ms: [][]int64{
			{100, 200}, {110, 210}, {120, 240}, {150, 300},
		},
	}
	tbl.Benches = nil
	for _, b := range MacroBenchmarks[:2] {
		tbl.Benches = append(tbl.Benches, b.Paper)
	}
	out := tbl.Format()
	if !strings.Contains(out, "Baseline BS on multiprocessor") ||
		!strings.Contains(out, "MS with four busy Processes") {
		t.Errorf("table:\n%s", out)
	}
	fig := tbl.FormatFigure2()
	if !strings.Contains(fig, "normalized") || !strings.Contains(fig, "#") {
		t.Errorf("figure:\n%s", fig)
	}
	norm := tbl.Normalized()
	if norm[0][0] != 1.0 || norm[3][0] != 1.5 {
		t.Errorf("normalized = %v", norm)
	}
	ov := tbl.Overheads()
	if got := ov["ms-busy"].Worst; got < 0.49 || got > 0.51 {
		t.Errorf("busy worst overhead = %v", got)
	}
}

func TestTable3Static(t *testing.T) {
	out := FormatTable3()
	for _, want := range []string{"Serialization", "Replication", "Reorganization",
		"allocation", "method caches", "active process"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFreeListAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	a, err := RunFreeListAblation()
	if err != nil {
		t.Fatal(err)
	}
	locked := a.WorstOverhead(1)
	replicated := a.WorstOverhead(2)
	if locked <= replicated {
		t.Errorf("locked free list (%.0f%%) not worse than replicated (%.0f%%)",
			locked*100, replicated*100)
	}
	if locked < 2*replicated {
		t.Errorf("replication recovered too little: locked %.0f%%, replicated %.0f%% (paper: 160%% -> 65%%)",
			locked*100, replicated*100)
	}
	if out := a.Format(); !strings.Contains(out, "worst ovh") {
		t.Errorf("format:\n%s", out)
	}
}

func TestScavengeExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scavenge sweep is slow")
	}
	rows, err := RunScavengeExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// GC time share must stay small (paper: ~3%).
	for _, r := range rows {
		if r.GCTimeShare > 0.15 {
			t.Errorf("k=%d: gc share %.1f%% too large", r.Processors, r.GCTimeShare*100)
		}
	}
	out := FormatScavenge(rows)
	if !strings.Contains(out, "gc share") {
		t.Errorf("format:\n%s", out)
	}
}

func TestProcessorSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	rows, err := RunProcessorSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Normalized != 1.0 {
		t.Fatalf("rows = %+v", rows)
	}
	// Overhead must be monotonically non-decreasing with processors.
	for i := 1; i < len(rows); i++ {
		if rows[i].Normalized < rows[i-1].Normalized-0.02 {
			t.Fatalf("sweep not monotone: %+v", rows)
		}
	}
	if out := FormatSweep(rows); !strings.Contains(out, "normalized") {
		t.Errorf("format:\n%s", out)
	}
}

func TestContentionReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("contention report is slow")
	}
	r, err := RunContentionReport()
	if err != nil {
		t.Fatal(err)
	}
	locks := r.Locks()
	if len(r.States) != 4 || len(r.Metrics) != 4 || len(locks) == 0 {
		t.Fatalf("report shape: states=%v locks=%v", r.States, locks)
	}
	// Baseline uses no locks at all.
	for _, l := range r.Metrics[0].Locks {
		if l.Acquisitions != 0 {
			t.Errorf("baseline acquired lock %s", l.Name)
		}
	}
	// The busy state contends the alloc lock (the paper's suspicion).
	busy := r.Metrics[len(r.Metrics)-1]
	allocIdx := -1
	for i, l := range busy.Locks {
		if l.Name == "alloc" {
			allocIdx = i
		}
	}
	if allocIdx < 0 || busy.Locks[allocIdx].Contentions == 0 {
		t.Error("no alloc-lock contention in the busy state")
	}
	// The busy state's processors spin; percentages must be derived.
	var spinPct float64
	for _, p := range busy.Procs {
		spinPct += p.SpinPct
	}
	if spinPct <= 0 {
		t.Error("busy state reports no per-processor spin share")
	}
	out := r.Format()
	if !strings.Contains(out, "alloc") || !strings.Contains(out, "spin ") {
		t.Errorf("format:\n%s", out)
	}
}

func TestMicroSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("micro suite is slow")
	}
	r, err := RunMicroSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline) != len(MicroBenchmarks) || len(r.MS) != len(MicroBenchmarks) {
		t.Fatalf("result = %+v", r)
	}
	for i, name := range r.Names {
		if r.Baseline[i] <= 0 {
			t.Errorf("%s: zero baseline time", name)
		}
		over := float64(r.MS[i])/float64(r.Baseline[i]) - 1
		if over < -0.05 || over > 0.25 {
			t.Errorf("%s: static overhead %.0f%% outside [-5%%, 25%%]", name, over*100)
		}
	}
	if out := r.Format(); !strings.Contains(out, "testHanoi") {
		t.Errorf("format:\n%s", out)
	}
}

func TestParadigmsAgreeAndComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("paradigm comparison is slow")
	}
	r, err := RunParadigms()
	if err != nil {
		t.Fatal(err)
	}
	if r.SharedTotal != r.QueuedTotal || r.SharedTotal == 0 {
		t.Fatalf("totals: shared=%d queued=%d", r.SharedTotal, r.QueuedTotal)
	}
	if r.SharedMS <= 0 || r.QueuedMS <= 0 {
		t.Fatalf("times: %d / %d", r.SharedMS, r.QueuedMS)
	}
	if out := r.Format(); !strings.Contains(out, "SharedQueue") {
		t.Errorf("format:\n%s", out)
	}
}
