package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mst/internal/core"
)

// The msjit ablation (msbench -ablation jit): run send-heavy workloads
// twice on identically configured systems — once interpreted, once with
// the template tier on — and report the host-side speedup. Virtual
// times are bit-identical between the tiers by construction (the tier
// charges through the same cost table at the same points), and the
// runner enforces that: any divergence is an error, which makes the
// ablation double as a differential correctness check. The virtual
// columns (virtual ms, compile and deopt counts, compiled-bytecode
// share) are deterministic and ride in the gate and the fingerprint;
// the host nanoseconds and speedups are machine-bound and are zeroed
// in the fingerprint like every other host time.

// JITSpeedupFloor is the minimum acceptable median host speedup of the
// template tier over the interpreter on the ablation workloads; the
// gate fails a fresh run below it. The suite mixes the two regimes the
// tier serves: loop and dispatch kernels, where template execution and
// superinstruction fusion measure ~1.7-2x, and the Table 2 environment
// macros, where the ratio is diluted toward ~1.4x by work the tiers
// share bit-for-bit (allocation, scavenges, primitives). The floor
// binds the suite median.
const JITSpeedupFloor = 1.5

// jitReps repeats each workload per tier; the host timing takes the
// fastest repetition, and the virtual times of every repetition must
// match between tiers, not just the first.
const jitReps = 7

// jitWorkloads are the ablation's shapes: three Table 2 macro
// benchmarks plus three kernels aimed at the tier's mechanisms — a
// dynamic-dispatch storm (the BenchmarkSendDispatch loop as a macro
// benchmark), a counted-loop integer kernel for the superinstruction
// fuser, and an instance-variable loop for the fused ivar read/write
// paths.
var jitWorkloads = []string{
	"printClassHierarchy",
	"findAllImplementors",
	"decompileClass",
	"sendStorm",
	"intLoops",
	"ivarStorm",
}

// jitStormSource is filed in only by the ablation systems (never by
// the standard bench states, whose boot heaps feed the goldens).
const jitStormSource = `
"Send-dispatch storm for the msjit ablation."!

Object subclass: #JITDispatchProbe
	instanceVariableNames: ''
	category: 'Benchmarks'!

!JITDispatchProbe methodsFor: 'probing'!
one
	^1!
two
	^2!
answerFor: i
	^i \\ 2 = 0 ifTrue: [self one] ifFalse: [self two]! !

Object subclass: #JITCounterProbe
	instanceVariableNames: 'count limit'
	category: 'Benchmarks'!

!JITCounterProbe methodsFor: 'probing'!
reset: n
	count := 0.
	limit := n!
spin
	[count < limit] whileTrue: [count := count + 3 - 2].
	^count! !

!MacroBenchmark methodsFor: 'benchmarks'!
sendStorm
	"A tight loop of dynamically dispatched sends (the
	 BenchmarkSendDispatch shape), hot enough that every method here
	 crosses the compile threshold."
	| r s |
	r := JITDispatchProbe new.
	s := 0.
	1 to: 20000 do: [:i | s := s + r one + r two + (r answerFor: i)].
	^s!
intLoops
	"Straight-line integer arithmetic in nested counted loops — the
	 superinstruction fuser's best case: every body bytecode lands in
	 a fused group."
	| s t |
	s := 0.
	1 to: 200 do: [:i |
		t := 0.
		1 to: 120 do: [:j | t := t + (i * j) - (j // 2)].
		s := s + t - i].
	^s!
ivarStorm
	"Instance-variable reads and writes under an inlined whileTrue —
	 the fused ivar load path plus checked ivar stores."
	| p s |
	p := JITCounterProbe new.
	s := 0.
	1 to: 12 do: [:i |
		p reset: 2000.
		s := s + p spin].
	^s! !
`

// JITRow is one workload measured on both tiers.
type JITRow struct {
	Workload  string  `json:"workload"`
	VirtualMS int64   `json:"virtual_ms"`         // summed over reps; identical on both tiers
	InterpNS  int64   `json:"interp_host_ns"`     // host time, tier off
	JITNS     int64   `json:"jit_host_ns"`        // host time, tier on
	Speedup   float64 `json:"speedup"`            // InterpNS / JITNS
	Compiles  uint64  `json:"jit_compiles"`       // methods compiled during the workload
	Deopts    uint64  `json:"jit_deopts"`         // bailouts during the workload
	JITShare  float64 `json:"jit_bytecode_share"` // fraction of bytecodes run compiled
}

// JITReport is the full ablation.
type JITReport struct {
	Rows          []JITRow `json:"rows"`
	MedianSpeedup float64  `json:"median_speedup"`
}

func jitTierSystem(jit bool) (*core.System, error) {
	// The tier runs in its designed configuration — under the inline
	// caches (MSPlus): jitKeep persistence and the megamorphic gate key
	// off per-method IC state, so without ICs every scavenge forces
	// wholesale recompilation and the measurement is mostly compile
	// churn. Both tiers get the identical configuration, so the virtual
	// cross-check below still binds them bit-for-bit.
	cfg := core.MSPlusConfig()
	// One processor: the ablation isolates the mutator's host cost.
	// With the full five, the four idle processors burn identical host
	// time on both tiers and dilute the measured ratio toward 1.
	cfg.Processors = 1
	cfg.JIT = jit
	cfg.ExtraSources = append(cfg.ExtraSources, benchmarkSource, jitStormSource)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: jit ablation boot (jit=%v): %w", jit, err)
	}
	return sys, nil
}

// RunJITAblation measures every workload on both tiers and verifies
// the tiers agree on every virtual time.
func RunJITAblation() (*JITReport, error) {
	isys, err := jitTierSystem(false)
	if err != nil {
		return nil, err
	}
	defer isys.Shutdown()
	jsys, err := jitTierSystem(true)
	if err != nil {
		return nil, err
	}
	defer jsys.Shutdown()

	r := &JITReport{}
	var speedups []float64
	for _, w := range jitWorkloads {
		ibefore := isys.Stats().Interp
		jbefore := jsys.Stats().Interp
		var sum, ihost, jhost int64
		// The repetitions interleave the tiers — rep r runs on the
		// interpreter system, then immediately on the jit system — so
		// slow drift in host speed (frequency scaling, a noisy
		// neighbour) hits both tiers alike instead of biasing whichever
		// tier ran second. Host time is the fastest repetition per
		// tier: the first jit rep carries tier warm-up (hotness
		// counting, template compilation) and any rep can be perturbed
		// by the machine. Every rep's virtual time rides into the tier
		// cross-check, not just the first.
		for rep := 0; rep < jitReps; rep++ {
			t0 := time.Now()
			iv, err := RunMacro(isys, w)
			ins := time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("bench: jit ablation %s (jit=false): %w", w, err)
			}
			t0 = time.Now()
			jv, err := RunMacro(jsys, w)
			jns := time.Since(t0).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("bench: jit ablation %s (jit=true): %w", w, err)
			}
			if iv != jv {
				return nil, fmt.Errorf(
					"bench: jit ablation %s rep %d: virtual time diverged — interpreter %d ms, jit %d ms",
					w, rep, iv, jv)
			}
			sum += iv
			if rep == 0 || ins < ihost {
				ihost = ins
			}
			if rep == 0 || jns < jhost {
				jhost = jns
			}
		}
		iafter := isys.Stats().Interp
		jafter := jsys.Stats().Interp
		row := JITRow{
			Workload:  w,
			VirtualMS: sum,
			InterpNS:  ihost,
			JITNS:     jhost,
			Compiles:  jafter.JITCompiles - jbefore.JITCompiles,
			Deopts:    jafter.JITDeopts - jbefore.JITDeopts,
		}
		if row.JITNS > 0 {
			row.Speedup = float64(row.InterpNS) / float64(row.JITNS)
			speedups = append(speedups, row.Speedup)
		}
		if bc := jafter.Bytecodes - jbefore.Bytecodes; bc > 0 {
			row.JITShare = float64(jafter.JITBytecodes-jbefore.JITBytecodes) / float64(bc)
		}
		ic := (iafter.JITCompiles - ibefore.JITCompiles) +
			(iafter.JITDeopts - ibefore.JITDeopts) +
			(iafter.JITBytecodes - ibefore.JITBytecodes)
		if ic != 0 {
			return nil, fmt.Errorf("bench: jit ablation %s: interpreter tier ran jit machinery (%d)", w, ic)
		}
		r.Rows = append(r.Rows, row)
	}
	sort.Float64s(speedups)
	if n := len(speedups); n > 0 {
		r.MedianSpeedup = speedups[n/2]
	}
	return r, nil
}

// Format renders the ablation for terminal output.
func (r *JITReport) Format() string {
	var b strings.Builder
	b.WriteString("msjit ablation: host speedup of the template tier (virtual times bit-identical)\n\n")
	fmt.Fprintf(&b, "%-22s %10s %12s %12s %8s %9s %7s %9s\n",
		"workload", "virt ms", "interp ns", "jit ns", "speedup", "compiles", "deopts", "jit share")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %10d %12d %12d %7.2fx %9d %7d %8.1f%%\n",
			row.Workload, row.VirtualMS, row.InterpNS, row.JITNS, row.Speedup,
			row.Compiles, row.Deopts, 100*row.JITShare)
	}
	fmt.Fprintf(&b, "\nmedian speedup: %.2fx (gate floor %.2fx)\n", r.MedianSpeedup, JITSpeedupFloor)
	return b.String()
}
