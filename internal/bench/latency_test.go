package bench

import (
	"reflect"
	"strings"
	"testing"

	"mst/internal/core"
	"mst/internal/trace"
)

// latencyRun boots the ms-busy state with histograms on (parallel
// selects the true-parallel host mode) and returns the latency
// snapshot plus the scavenge count.
func latencyRun(t *testing.T, parallel bool) (*trace.LatencyMetrics, uint64) {
	t.Helper()
	states := StandardStates()
	st := states[len(states)-1] // ms-busy
	base := st.Config
	st.Config = func() core.Config {
		cfg := base()
		cfg.Histograms = true
		cfg.Parallel = parallel
		return cfg
	}
	sys, err := NewBenchSystem(st)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	if _, err := RunMacro(sys, "printClassHierarchy"); err != nil {
		t.Fatal(err)
	}
	return sys.Metrics().Latency, sys.Stats().Heap.Scavenges
}

// TestLatencyBucketsScheduleIndependent: in deterministic mode the
// histogram bucket counts are pure virtual-time facts — two runs of the
// same configuration produce bit-identical snapshots, percentiles and
// all, which is what lets the bench gate compare them exactly.
func TestLatencyBucketsScheduleIndependent(t *testing.T) {
	a, scavA := latencyRun(t, false)
	b, scavB := latencyRun(t, false)
	if a == nil || b == nil {
		t.Fatal("latency section missing from an instrumented run")
	}
	if scavA != scavB {
		t.Fatalf("scavenge counts diverge across identical det runs: %d vs %d", scavA, scavB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("latency snapshots diverge across identical det runs:\n%+v\nvs\n%+v", a, b)
	}
	if a.ScavengePause.Count == 0 || int64(scavA) != a.ScavengePause.Count {
		t.Errorf("pause samples (%d) != scavenges (%d)", a.ScavengePause.Count, scavA)
	}
	if a.Dispatch.Count == 0 {
		t.Error("det run recorded no dispatch latencies")
	}
	if len(a.LockWait) == 0 {
		t.Error("det run recorded no lock-wait series")
	}
}

// TestLatencyParallelHostSane: in true-parallel host mode the virtual
// pause values are host-schedule-dependent, so nothing is compared
// against the deterministic run — but the histograms (atomic, shared
// across goroutine processors) must still be internally consistent:
// one pause sample per scavenge, phase series aligned with pauses, and
// a renderable report.
func TestLatencyParallelHostSane(t *testing.T) {
	lat, scav := latencyRun(t, true)
	if lat == nil {
		t.Fatal("latency section missing from a parallel instrumented run")
	}
	if scav > 0 && lat.ScavengePause.Count != int64(scav) {
		t.Errorf("pause samples (%d) != scavenges (%d)", lat.ScavengePause.Count, scav)
	}
	if lat.ScavRendezvous.Count != lat.ScavengePause.Count {
		t.Errorf("rendezvous samples (%d) != pause samples (%d)",
			lat.ScavRendezvous.Count, lat.ScavengePause.Count)
	}
	// The baton scheduler runs only during the deterministic boot phase
	// (SetParallel flips after boot), so dispatch samples exist but stop
	// accumulating once the goroutine processors take over. Nothing to
	// pin beyond the series being well-formed.
	if lat.Dispatch.Count < 0 || lat.Dispatch.Sum < 0 {
		t.Errorf("malformed dispatch series: %+v", lat.Dispatch)
	}
}

// TestGCReportRenders: the msbench -gcreport rollup carries every
// section end-to-end — distributions with percentiles, lock waits, the
// critical-path table (parallel scavenger on), the allocation-site
// table, and the age census.
func TestGCReportRenders(t *testing.T) {
	rep, err := RunGCReport(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"latency distributions", "scavenge.pause", "p50", "p99",
		"lock acquire-wait", "parallel scavenge critical path",
		"allocation sites", "object demographics",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("gc report missing %q:\n%s", want, rep)
		}
	}
}
