package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
)

// The GC latency rollup (msbench -gcreport): one observed run of the
// ms-busy standard state with the latency registry and the
// allocation-site profiler attached, rendered as a human-readable
// report — pause and phase percentiles, dispatch latency, lock waits,
// parallel-scavenge critical paths, the top allocation sites with
// survivor/tenure rates, and the object-age census.

// RunGCReport runs the rollup workload and renders the report.
// parScavenge selects the cooperative parallel scavenger so the
// critical-path section has material.
func RunGCReport(parScavenge bool) (string, error) {
	states := StandardStates()
	st := states[len(states)-1] // ms-busy: locks contend, the scavenger runs
	base := st.Config
	st.Config = func() core.Config {
		cfg := base()
		cfg.Histograms = true
		cfg.AllocProfile = true
		cfg.ParScavenge = parScavenge
		return cfg
	}
	sys, err := NewBenchSystem(st)
	if err != nil {
		return "", err
	}
	defer sys.Shutdown()

	const selector = "printClassHierarchy"
	ms, err := RunMacro(sys, selector)
	if err != nil {
		return "", fmt.Errorf("bench: gcreport %s/%s: %w", st.Name, selector, err)
	}

	gc, err := sys.GCReport()
	if err != nil {
		return "", err
	}
	alloc, err := sys.AllocProfileReport(10)
	if err != nil {
		return "", err
	}
	hs := sys.VM.H.Stats()

	var b strings.Builder
	fmt.Fprintf(&b, "GC report: %s on %s (%d virtual ms)\n", selector, st.Name, ms)
	fmt.Fprintf(&b, "scavenges: %d (%d parallel), full collections: %d, max pause %d / %d ticks\n\n",
		hs.Scavenges, hs.ParScavenges, hs.FullCollections,
		int64(hs.ScavengeMaxPause), int64(hs.FullGCMaxPause))
	b.WriteString(gc)
	b.WriteString("\n")
	b.WriteString(alloc)
	return b.String(), nil
}
