package bench

import (
	"fmt"
	"testing"

	"mst/internal/core"
)

// checksumSource is a pure computation whose answer is independent of
// scheduling: the parallel host mode must produce the same value the
// deterministic mode does, whatever interleaving the host picked.
const checksumSource = `| s | s := 0. 1 to: 50000 do: [:i | s := (s + (i * 3)) \\ 1000003]. s`

// TestParallelCrossCheck runs the standard states in parallel host mode
// across processor counts and cross-checks the workload's invariants
// against a deterministic run of the same configuration: the computed
// value matches exactly; for states whose background Processes send no
// messages the total send count matches exactly too (only the eval
// Process sends); the heap passes its structural walk; and no VM errors
// accumulate. Virtual times are NOT compared — parallel clocks are
// host-schedule-dependent by design.
//
// The scheduler has no same-priority time slicing (a running Process
// keeps its processor), so states with N background Processes need at
// least N+1 processors for the evaluation to run at all; the matrix
// respects that.
func TestParallelCrossCheck(t *testing.T) {
	type combo struct {
		state State
		procs int
	}
	var combos []combo
	for _, st := range StandardStates() {
		switch st.Name {
		case "baseline":
			combos = append(combos, combo{st, 1})
		case "ms":
			combos = append(combos, combo{st, 2}, combo{st, 4})
		default: // four background Processes: need all five processors
			combos = append(combos, combo{st, 5})
		}
	}
	for _, c := range combos {
		c := c
		t.Run(fmt.Sprintf("%s-procs%d", c.state.Name, c.procs), func(t *testing.T) {
			run := func(parallel bool) (val int64, sends uint64, scavenges uint64) {
				st := c.state
				base := st.Config
				st.Config = func() core.Config {
					cfg := base()
					cfg.Processors = c.procs
					cfg.Parallel = parallel
					return cfg
				}
				sys, err := NewBenchSystem(st)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				if _, err := RunMacro(sys, "decompileClass"); err != nil {
					t.Fatal(err)
				}
				val, err = sys.EvaluateInt(checksumSource)
				if err != nil {
					t.Fatal(err)
				}
				// The heap must be structurally sound after the run
				// (CheckInvariants panics on corruption).
				sys.VM.H.CheckInvariants()
				if errs := sys.VM.Errors(); len(errs) != 0 {
					t.Fatalf("parallel=%v: VM errors: %v", parallel, errs)
				}
				st2 := sys.Stats()
				return val, st2.Interp.Sends, st2.Heap.Scavenges
			}
			detVal, detSends, _ := run(false)
			parVal, parSends, parScav := run(true)
			if parVal != detVal {
				t.Errorf("checksum diverged: deterministic %d, parallel %d", detVal, parVal)
			}
			if c.state.Name != "ms-busy" && parSends != detSends {
				// Busy workers send for as long as the host lets them
				// run; every other state's sends come only from the
				// eval Process and are schedule-independent.
				t.Errorf("sends diverged: deterministic %d, parallel %d", detSends, parSends)
			}
			if c.state.Name == "ms-busy" && parScav == 0 {
				t.Error("ms-busy parallel run never scavenged; the stop-the-world path went unexercised")
			}
		})
	}
}
