package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
	"mst/internal/firefly"
	"mst/internal/trace"
)

// The paper's §6 plans "to add sufficient instrumentation to MS to
// gather data about how different concurrent programming paradigms
// affect memory reference patterns and contention for resources, and
// how architectural constraints... influence the system." The simulator
// records all of this; these reports expose it.

// SweepRow is one processor-count measurement.
type SweepRow struct {
	Processors int
	ElapsedMS  int64
	Normalized float64 // vs the 1-processor MS run
}

// RunProcessorSweep measures how the busy-competition overhead grows
// with the processor count: MS with k processors and k-1 busy
// Processes, k = 1..5, on one representative benchmark. This probes the
// architectural question (shared-bus pressure and lock contention as
// processors are added) the paper defers to future work.
func RunProcessorSweep() ([]SweepRow, error) {
	var rows []SweepRow
	var base int64
	for k := 1; k <= 5; k++ {
		k := k
		cfg := core.DefaultConfig()
		cfg.Processors = k
		st := State{
			Name:   fmt.Sprintf("ms-%dproc", k),
			Config: func() core.Config { return cfg },
			Background: func(s *core.System) error {
				return s.SpawnBusyProcesses(k - 1)
			},
		}
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		ms, err := RunMacro(sys, "printClassHierarchy")
		sys.Shutdown()
		if err != nil {
			return nil, err
		}
		if k == 1 {
			base = ms
		}
		rows = append(rows, SweepRow{
			Processors: k,
			ElapsedMS:  ms,
			Normalized: float64(ms) / float64(base),
		})
	}
	return rows, nil
}

// FormatSweep renders the processor sweep.
func FormatSweep(rows []SweepRow) string {
	var b strings.Builder
	b.WriteString("Processor sweep (extension; paper §6 future work):\n")
	b.WriteString("MS with k processors, k-1 busy Processes, one measured benchmark\n\n")
	fmt.Fprintf(&b, "%6s %12s %12s\n", "procs", "elapsed", "normalized")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10dms %12.2f\n", r.Processors, r.ElapsedMS, r.Normalized)
	}
	return b.String()
}

// ContentionReport is the per-state contention view of the unified
// metrics registry: every lock's statistics (under the lock's single
// registration name) plus each processor's spin and stall time as a
// share of that processor's own clock.
type ContentionReport struct {
	States  []string
	Metrics []trace.Metrics // one snapshot per state, same order
}

// Locks returns the lock registration names (identical across states;
// locks are registered in a fixed order at boot).
func (r *ContentionReport) Locks() []string {
	if len(r.Metrics) == 0 {
		return nil
	}
	names := make([]string, len(r.Metrics[0].Locks))
	for i, l := range r.Metrics[0].Locks {
		names[i] = l.Name
	}
	return names
}

// RunContentionReport runs one benchmark under each standard state and
// snapshots the metrics registry — the resource-contention
// instrumentation the paper planned.
func RunContentionReport() (*ContentionReport, error) {
	r := &ContentionReport{}
	for _, st := range StandardStates() {
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		if _, err := RunMacro(sys, "readWriteClassOrganization"); err != nil {
			sys.Shutdown()
			return nil, err
		}
		m := sys.Metrics()
		sys.Shutdown()
		r.States = append(r.States, st.Name)
		r.Metrics = append(r.Metrics, m)
	}
	return r, nil
}

// Format renders the contention report: the per-lock table, then the
// per-processor spin/stall shares.
func (r *ContentionReport) Format() string {
	var b strings.Builder
	b.WriteString("Lock contention by system state (extension; paper §6 instrumentation):\n")
	b.WriteString("acquisitions / contended attempts / spin time, per lock\n\n")
	fmt.Fprintf(&b, "%-14s", "lock")
	for _, s := range r.States {
		fmt.Fprintf(&b, "%28s", s)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 14+28*len(r.States)))
	b.WriteString("\n")
	for li, lock := range r.Locks() {
		fmt.Fprintf(&b, "%-14s", lock)
		for si := range r.States {
			l := r.Metrics[si].Locks[li]
			cell := fmt.Sprintf("%d/%d/%s",
				l.Acquisitions, l.Contentions, firefly.Time(l.SpinTicks))
			fmt.Fprintf(&b, "%28s", cell)
		}
		b.WriteString("\n")
	}

	b.WriteString("\nPer-processor spin and stall time (% of that processor's clock):\n\n")
	fmt.Fprintf(&b, "%-14s", "proc")
	for _, s := range r.States {
		fmt.Fprintf(&b, "%28s", s)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 14+28*len(r.States)))
	b.WriteString("\n")
	maxProcs := 0
	for _, m := range r.Metrics {
		if len(m.Procs) > maxProcs {
			maxProcs = len(m.Procs)
		}
	}
	for pi := 0; pi < maxProcs; pi++ {
		fmt.Fprintf(&b, "cpu %-10d", pi)
		for si := range r.States {
			if pi >= len(r.Metrics[si].Procs) {
				fmt.Fprintf(&b, "%28s", "-")
				continue
			}
			p := r.Metrics[si].Procs[pi]
			cell := fmt.Sprintf("spin %.2f%% stall %.2f%%", p.SpinPct, p.StallPct)
			fmt.Fprintf(&b, "%28s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
