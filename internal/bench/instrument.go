package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
	"mst/internal/firefly"
)

// The paper's §6 plans "to add sufficient instrumentation to MS to
// gather data about how different concurrent programming paradigms
// affect memory reference patterns and contention for resources, and
// how architectural constraints... influence the system." The simulator
// records all of this; these reports expose it.

// SweepRow is one processor-count measurement.
type SweepRow struct {
	Processors int
	ElapsedMS  int64
	Normalized float64 // vs the 1-processor MS run
}

// RunProcessorSweep measures how the busy-competition overhead grows
// with the processor count: MS with k processors and k-1 busy
// Processes, k = 1..5, on one representative benchmark. This probes the
// architectural question (shared-bus pressure and lock contention as
// processors are added) the paper defers to future work.
func RunProcessorSweep() ([]SweepRow, error) {
	var rows []SweepRow
	var base int64
	for k := 1; k <= 5; k++ {
		k := k
		cfg := core.DefaultConfig()
		cfg.Processors = k
		st := State{
			Name:   fmt.Sprintf("ms-%dproc", k),
			Config: func() core.Config { return cfg },
			Background: func(s *core.System) error {
				return s.SpawnBusyProcesses(k - 1)
			},
		}
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		ms, err := RunMacro(sys, "printClassHierarchy")
		sys.Shutdown()
		if err != nil {
			return nil, err
		}
		if k == 1 {
			base = ms
		}
		rows = append(rows, SweepRow{
			Processors: k,
			ElapsedMS:  ms,
			Normalized: float64(ms) / float64(base),
		})
	}
	return rows, nil
}

// FormatSweep renders the processor sweep.
func FormatSweep(rows []SweepRow) string {
	var b strings.Builder
	b.WriteString("Processor sweep (extension; paper §6 future work):\n")
	b.WriteString("MS with k processors, k-1 busy Processes, one measured benchmark\n\n")
	fmt.Fprintf(&b, "%6s %12s %12s\n", "procs", "elapsed", "normalized")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10dms %12.2f\n", r.Processors, r.ElapsedMS, r.Normalized)
	}
	return b.String()
}

// ContentionReport is the per-state lock-contention table.
type ContentionReport struct {
	States []string
	Locks  []string
	// Contentions[state][lock], Spin[state][lock] in virtual time.
	Acquisitions [][]uint64
	Contentions  [][]uint64
	Spin         [][]firefly.Time
}

// RunContentionReport runs one benchmark under each standard state and
// collects every lock's acquisition/contention/spin statistics — the
// resource-contention instrumentation the paper planned.
func RunContentionReport() (*ContentionReport, error) {
	r := &ContentionReport{}
	for _, st := range StandardStates() {
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		if _, err := RunMacro(sys, "readWriteClassOrganization"); err != nil {
			sys.Shutdown()
			return nil, err
		}
		stats := sys.Stats()
		sys.Shutdown()
		if r.Locks == nil {
			for _, l := range stats.Locks {
				r.Locks = append(r.Locks, l.Name)
			}
		}
		r.States = append(r.States, st.Name)
		var acq, cont []uint64
		var spin []firefly.Time
		for _, l := range stats.Locks {
			acq = append(acq, l.Acquisitions)
			cont = append(cont, l.Contentions)
			spin = append(spin, l.SpinTime)
		}
		r.Acquisitions = append(r.Acquisitions, acq)
		r.Contentions = append(r.Contentions, cont)
		r.Spin = append(r.Spin, spin)
	}
	return r, nil
}

// Format renders the contention report.
func (r *ContentionReport) Format() string {
	var b strings.Builder
	b.WriteString("Lock contention by system state (extension; paper §6 instrumentation):\n")
	b.WriteString("acquisitions / contended attempts / spin time, per lock\n\n")
	fmt.Fprintf(&b, "%-14s", "lock")
	for _, s := range r.States {
		fmt.Fprintf(&b, "%28s", s)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 14+28*len(r.States)))
	b.WriteString("\n")
	for li, lock := range r.Locks {
		fmt.Fprintf(&b, "%-14s", lock)
		for si := range r.States {
			cell := fmt.Sprintf("%d/%d/%s",
				r.Acquisitions[si][li], r.Contentions[si][li], r.Spin[si][li])
			fmt.Fprintf(&b, "%28s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
