package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"time"

	"mst/internal/core"
	"mst/internal/sanitize"
)

// msbench -sanitize: run every standard state's macro benchmarks twice,
// without and with the mscheck invariant sanitizer, and report three
// things per state:
//
//   - the verdict: zero violations on the real workload;
//   - the determinism sentinel: the sanitized run's virtual times and
//     full metrics registry are bit-identical to the plain run (the
//     checker observes, never perturbs);
//   - the host-side cost of checking (the only place the sanitizer is
//     allowed to cost anything).

// SanitizeRow is one state's sanitized-versus-plain comparison.
type SanitizeRow struct {
	State string `json:"state"`
	// VirtualMS is the per-benchmark virtual times (identical in both
	// runs whenever Identical is true).
	VirtualMS []int64 `json:"virtual_ms"`
	// Identical reports the determinism sentinel: virtual times and
	// the whole metrics registry match between plain and sanitized
	// runs. Divergences lists what differed (empty when Identical).
	Identical   bool     `json:"identical"`
	Divergences []string `json:"divergences,omitempty"`
	// Violations and Cycles are the checker's findings on the real
	// workload (both empty on a correct build).
	Violations int      `json:"violations"`
	Cycles     []string `json:"lock_order_cycles,omitempty"`
	// OrderViolations lists runtime acquisition-order edges absent from
	// the static lock graph (msvet -lockgraph) when one was supplied —
	// the static analysis missed an acquire path.
	OrderViolations []string `json:"order_violations,omitempty"`
	// Checker work volume and host-side cost.
	LockEvents   uint64  `json:"lock_events"`
	AccessChecks uint64  `json:"access_checks"`
	BarrierScans uint64  `json:"barrier_scans"`
	BarrierWords uint64  `json:"barrier_words"`
	HostPlainNS  int64   `json:"host_plain_ns"`
	HostCheckNS  int64   `json:"host_checked_ns"`
	OverheadPct  float64 `json:"host_overhead_pct"`
}

// SanitizeReport is the full msbench -sanitize result.
type SanitizeReport struct {
	Benches []string      `json:"benches"`
	Rows    []SanitizeRow `json:"rows"`
}

// Clean reports whether every state ran violation-free, cycle-free, and
// bit-identical to its unsanitized twin.
func (r *SanitizeReport) Clean() bool {
	for _, row := range r.Rows {
		if row.Violations != 0 || len(row.Cycles) != 0 || len(row.OrderViolations) != 0 || !row.Identical {
			return false
		}
	}
	return true
}

// sanitizeRun boots one state (optionally sanitized), runs the macro
// benchmarks, and returns the per-benchmark virtual times, the final
// metrics fingerprint, the checker (nil when off), and host wall time.
func sanitizeRun(st State, sanitized bool) ([]int64, map[string]int64, *sanitize.Checker, int64, error) {
	cfg := st.Config()
	cfg.Sanitize = sanitized
	cfg.ExtraSources = append(cfg.ExtraSources, benchmarkSource)
	t0 := time.Now()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("bench: sanitize boot %s: %w", st.Name, err)
	}
	defer sys.Shutdown()
	if st.Background != nil {
		if err := st.Background(sys); err != nil {
			return nil, nil, nil, 0, fmt.Errorf("bench: sanitize background %s: %w", st.Name, err)
		}
	}
	var ms []int64
	for _, b := range MacroBenchmarks {
		v, err := RunMacro(sys, b.Selector)
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("bench: sanitize %s/%s: %w", st.Name, b.Selector, err)
		}
		ms = append(ms, v)
	}
	host := time.Since(t0).Nanoseconds()
	fp := metricsFingerprint(sys)
	return ms, fp, sys.Sanitizer(), host, nil
}

// metricsFingerprint flattens the system's full metrics registry into
// counter-name → value, the shape sanitize.FingerprintDiff compares.
// Floats are scaled to parts-per-million; strings are folded into the
// key so a changed name shows up as a missing counter.
func metricsFingerprint(sys *core.System) map[string]int64 {
	out := map[string]int64{}
	data, err := json.Marshal(sys.Metrics())
	if err != nil {
		out["!marshal-error"] = 1
		return out
	}
	var v interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		out["!unmarshal-error"] = 1
		return out
	}
	flattenJSON("metrics", v, out)
	return out
}

func flattenJSON(key string, v interface{}, out map[string]int64) {
	switch v := v.(type) {
	case map[string]interface{}:
		for k, sub := range v {
			flattenJSON(key+"."+k, sub, out)
		}
	case []interface{}:
		for i, sub := range v {
			flattenJSON(fmt.Sprintf("%s[%d]", key, i), sub, out)
		}
	case float64:
		out[key] = int64(v * 1e6)
	case bool:
		if v {
			out[key] = 1
		}
	case string:
		out[key+"="+v] = 1
	}
}

// RunSanitize measures every standard state plain and sanitized.
func RunSanitize() (*SanitizeReport, error) {
	return RunSanitizeStatic(nil)
}

// RunSanitizeStatic is RunSanitize plus the static cross-check: when
// staticEdges is non-nil (the "a -> b" strings of msvet -lockgraph),
// every state's observed acquisition-order edges are verified to be a
// subgraph of the static graph.
func RunSanitizeStatic(staticEdges []string) (*SanitizeReport, error) {
	r := &SanitizeReport{}
	for _, b := range MacroBenchmarks {
		r.Benches = append(r.Benches, b.Selector)
	}
	for _, st := range StandardStates() {
		plainMs, plainFP, _, plainHost, err := sanitizeRun(st, false)
		if err != nil {
			return nil, err
		}
		checkMs, checkFP, san, checkHost, err := sanitizeRun(st, true)
		if err != nil {
			return nil, err
		}
		if san == nil {
			return nil, fmt.Errorf("bench: sanitize %s: checker did not attach", st.Name)
		}
		row := SanitizeRow{
			State:       st.Name,
			VirtualMS:   checkMs,
			Violations:  len(san.Violations()),
			Cycles:      san.LockOrderCycles(),
			HostPlainNS: plainHost,
			HostCheckNS: checkHost,
		}
		if staticEdges != nil {
			row.OrderViolations = san.StaticOrderViolations(staticEdges)
		}
		cs := san.Stats()
		row.LockEvents = cs.LockEvents
		row.AccessChecks = cs.AccessChecks
		row.BarrierScans = cs.BarrierScans
		row.BarrierWords = cs.BarrierWords
		if plainHost > 0 {
			row.OverheadPct = 100 * float64(checkHost-plainHost) / float64(plainHost)
		}
		if !reflect.DeepEqual(plainMs, checkMs) {
			row.Divergences = append(row.Divergences,
				fmt.Sprintf("virtual times: off=%v on=%v", plainMs, checkMs))
		}
		row.Divergences = append(row.Divergences, sanitize.FingerprintDiff(plainFP, checkFP)...)
		row.Identical = len(row.Divergences) == 0
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Format renders the report as a table plus any findings.
func (r *SanitizeReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mscheck sanitizer over the standard states (%d macro benchmarks each)\n", len(r.Benches))
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %12s %9s %10s %9s\n",
		"state", "violations", "lock-events", "accesses", "barrier-wds", "identical", "host-ms", "overhead")
	for _, row := range r.Rows {
		ident := "yes"
		if !row.Identical {
			ident = "NO"
		}
		fmt.Fprintf(&b, "%-10s %10d %12d %12d %12d %9s %10.1f %8.1f%%\n",
			row.State, row.Violations, row.LockEvents, row.AccessChecks, row.BarrierWords,
			ident, float64(row.HostCheckNS)/1e6, row.OverheadPct)
	}
	for _, row := range r.Rows {
		for _, c := range row.Cycles {
			fmt.Fprintf(&b, "  %s: lock-order cycle: %s\n", row.State, c)
		}
		for _, e := range row.OrderViolations {
			fmt.Fprintf(&b, "  %s: edge missing from static lock graph: %s\n", row.State, e)
		}
		for _, d := range row.Divergences {
			fmt.Fprintf(&b, "  %s: DIVERGENCE: %s\n", row.State, d)
		}
	}
	if r.Clean() {
		b.WriteString("mscheck: clean — zero violations, all states bit-identical with the sanitizer on\n")
	} else {
		b.WriteString("mscheck: FAILED — see findings above\n")
	}
	return b.String()
}
