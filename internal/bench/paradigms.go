package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
)

// The paper's §6: "we expect to report on our experiences in using
// parallelism in MS, perhaps including some comparisons of various
// concurrent programming approaches." This experiment realizes that
// plan: the same producer/consumer pipeline written in two styles —
// shared state under a mutual-exclusion Semaphore versus message
// passing through SharedQueues — run on the five-processor machine and
// compared on elapsed virtual time and resource contention.

const paradigmsSource = `
"Two implementations of the same job: P producers each push N work items
 (an integer to factor-count) to C consumers; the result is the total
 count of prime factors. Style A shares an OrderedCollection guarded by
 one mutual-exclusion Semaphore; style B connects the Processes with a
 SharedQueue."!

Object subclass: #ParadigmJob
	instanceVariableNames: ''
	category: 'Benchmarks'!

!ParadigmJob methodsFor: 'work'!
factorCount: n
	"The per-item computation: number of prime factors of n."
	| count m d |
	count := 0.
	m := n.
	d := 2.
	[d * d <= m] whileTrue: [
		[m \\ d = 0] whileTrue: [count := count + 1. m := m // d].
		d := d + 1].
	m > 1 ifTrue: [count := count + 1].
	^count! !

!ParadigmJob methodsFor: 'shared state'!
runShared: items
	"Producers append to a shared buffer under a mutex; consumers poll
	 it under the same mutex. Two producers, two consumers."
	| buffer mutex done totals t0 |
	buffer := OrderedCollection new.
	mutex := Semaphore forMutualExclusion.
	done := Semaphore new.
	"One accumulator slot per consumer: Processes must not share an
	 unprotected counter."
	totals := Array with: 0 with: 0.
	t0 := self millisecondClockValue.
	[self produceShared: items into: buffer mutex: mutex. done signal] fork.
	[self produceShared: items into: buffer mutex: mutex. done signal] fork.
	[self consumeShared: items from: buffer mutex: mutex into: totals at: 1. done signal] fork.
	[self consumeShared: items from: buffer mutex: mutex into: totals at: 2. done signal] fork.
	done wait. done wait. done wait. done wait.
	^Array with: (totals at: 1) + (totals at: 2) with: self millisecondClockValue - t0!
produceShared: n into: buffer mutex: mutex
	1 to: n do: [:i |
		mutex critical: [buffer add: i + 100].
		Processor yield]!
consumeShared: n from: buffer mutex: mutex into: totals at: slot
	| got item |
	got := 0.
	[got < n] whileTrue: [
		item := mutex critical: [
			buffer isEmpty ifTrue: [nil] ifFalse: [buffer removeFirst]].
		item isNil
			ifTrue: [Processor yield]
			ifFalse: [
				totals at: slot put: (totals at: slot) + (self factorCount: item).
				got := got + 1]]! !

!ParadigmJob methodsFor: 'message passing'!
runQueued: items
	"The same job connected by a SharedQueue: consumers block instead
	 of polling."
	| q done totals t0 |
	q := SharedQueue new.
	done := Semaphore new.
	totals := Array with: 0 with: 0.
	t0 := self millisecondClockValue.
	[self produceQueued: items into: q. done signal] fork.
	[self produceQueued: items into: q. done signal] fork.
	[self consumeQueued: items from: q into: totals at: 1. done signal] fork.
	[self consumeQueued: items from: q into: totals at: 2. done signal] fork.
	done wait. done wait. done wait. done wait.
	^Array with: (totals at: 1) + (totals at: 2) with: self millisecondClockValue - t0!
produceQueued: n into: q
	1 to: n do: [:i | q nextPut: i + 100]!
consumeQueued: n from: q into: totals at: slot
	1 to: n do: [:i |
		totals at: slot put: (totals at: slot) + (self factorCount: q next)]! !
`

// ParadigmResult compares the two styles.
type ParadigmResult struct {
	Items            int
	SharedTotal      int64
	SharedMS         int64
	SharedSchedOps   uint64 // scheduler-lock acquisitions
	QueuedTotal      int64
	QueuedMS         int64
	QueuedSchedOps   uint64
	SharedSemSignals uint64
	QueuedSemSignals uint64
}

// RunParadigms runs both implementations on fresh five-processor
// systems and reports times plus scheduling pressure.
func RunParadigms() (*ParadigmResult, error) {
	const items = 150
	res := &ParadigmResult{Items: items}
	run := func(selector string) (total, ms int64, sched, signals uint64, err error) {
		cfg := core.DefaultConfig()
		cfg.ExtraSources = append(cfg.ExtraSources, paradigmsSource)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer sys.Shutdown()
		out, err := sys.Evaluate(fmt.Sprintf("ParadigmJob new %s: %d", selector, items))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if _, err := fmt.Sscanf(out, "(%d %d )", &total, &ms); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("bench: paradigm result %q: %w", out, err)
		}
		st := sys.Stats()
		for _, l := range st.Locks {
			if l.Name == "scheduler" {
				sched = l.Acquisitions
			}
		}
		return total, ms, sched, st.Interp.SemSignals, nil
	}
	var err error
	if res.SharedTotal, res.SharedMS, res.SharedSchedOps, res.SharedSemSignals, err = run("runShared"); err != nil {
		return nil, err
	}
	if res.QueuedTotal, res.QueuedMS, res.QueuedSchedOps, res.QueuedSemSignals, err = run("runQueued"); err != nil {
		return nil, err
	}
	if res.SharedTotal != res.QueuedTotal {
		return nil, fmt.Errorf("bench: paradigm results disagree: %d vs %d",
			res.SharedTotal, res.QueuedTotal)
	}
	return res, nil
}

// Format renders the comparison.
func (r *ParadigmResult) Format() string {
	var b strings.Builder
	b.WriteString("Concurrent-programming paradigms (extension; paper §6 future work):\n")
	fmt.Fprintf(&b, "2 producers + 2 consumers, %d items each, 5 processors; both styles\n", r.Items)
	fmt.Fprintf(&b, "compute the same answer (%d)\n\n", r.SharedTotal)
	fmt.Fprintf(&b, "%-34s %10s %14s %14s\n", "style", "elapsed", "sched-lock acq", "sem signals")
	fmt.Fprintf(&b, "%-34s %8dms %14d %14d\n",
		"shared buffer + mutex (polling)", r.SharedMS, r.SharedSchedOps, r.SharedSemSignals)
	fmt.Fprintf(&b, "%-34s %8dms %14d %14d\n",
		"SharedQueue (blocking)", r.QueuedMS, r.QueuedSchedOps, r.QueuedSemSignals)
	return b.String()
}
