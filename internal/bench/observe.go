package bench

import (
	"fmt"
	"io"
	"os"

	"mst/internal/core"
	"mst/internal/trace"
)

// ObserveResult is one observed benchmark run: the flight-recorder
// trace, the selector profile, and the metrics snapshot, produced
// together by RunObserved for the msbench -trace / -profile flags.
type ObserveResult struct {
	State        string
	Benchmark    string
	VirtualMS    int64
	Metrics      trace.Metrics
	Profile      string // empty unless profiling was requested
	AllocProfile string // empty unless allocation profiling was requested
}

// RunObserved runs one macro benchmark on the ms-busy standard state
// with the flight recorder attached (and, when profile or allocProfile
// are set, the matching profilers). The busy state is the interesting
// one to observe: all five processors execute, the locks contend, and
// the scavenger runs. The trace is written to tracePath when non-empty.
func RunObserved(tracePath string, profile, allocProfile bool) (*ObserveResult, error) {
	states := StandardStates()
	st := states[len(states)-1] // ms-busy
	base := st.Config
	st.Config = func() core.Config {
		cfg := base()
		cfg.TraceEvents = trace.DefaultRingSize
		cfg.Profile = profile
		cfg.AllocProfile = allocProfile
		return cfg
	}
	sys, err := NewBenchSystem(st)
	if err != nil {
		return nil, err
	}
	defer sys.Shutdown()

	const selector = "printClassHierarchy"
	ms, err := RunMacro(sys, selector)
	if err != nil {
		return nil, fmt.Errorf("bench: observed %s/%s: %w", st.Name, selector, err)
	}
	res := &ObserveResult{
		State:     st.Name,
		Benchmark: selector,
		VirtualMS: ms,
		Metrics:   sys.Metrics(),
	}
	if profile {
		rep, err := sys.ProfileReport(25)
		if err != nil {
			return nil, err
		}
		res.Profile = rep
	}
	if allocProfile {
		rep, err := sys.AllocProfileReport(10)
		if err != nil {
			return nil, err
		}
		res.AllocProfile = rep
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := sys.WriteTrace(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Format renders the observed run's summary.
func (r *ObserveResult) Format(w io.Writer) {
	fmt.Fprintf(w, "observed %s on %s: %d virtual ms\n", r.Benchmark, r.State, r.VirtualMS)
	fmt.Fprintf(w, "flight recorder: %d events emitted, %d overwritten by the ring\n",
		r.Metrics.Trace.Events, r.Metrics.Trace.Dropped)
	if r.Profile != "" {
		fmt.Fprintf(w, "\n%s", r.Profile)
	}
	if r.AllocProfile != "" {
		fmt.Fprintf(w, "\n%s", r.AllocProfile)
	}
}
