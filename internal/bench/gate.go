package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mst/internal/trace"
)

// The benchmark-regression gate (msbench -gate): compare a fresh run
// against a checked-in baseline report (BENCH_prN.json). The simulator
// is deterministic, so virtual times and every interpreter/heap counter
// must match the baseline EXACTLY — any drift is either a real change
// (update the baseline deliberately, in the same commit) or a bug.
//
// Host-side wall time is the one machine-dependent number in the
// report, so it cannot be compared directly: CI machines and laptops
// differ by integer factors. Instead the gate compares each state's
// *relative* host cost — host ns per virtual ms, summed over the
// state's benchmarks and normalized by the run-wide median of that
// ratio. A uniformly slower machine scales every ratio equally and
// passes; a change that makes one state's host-side execution
// disproportionately slower moves its normalized ratio and fails. The
// comparison is per state, not per benchmark: individual benchmarks
// run for a few host milliseconds, where scheduler noise on a small CI
// machine routinely exceeds any sensible tolerance. The tolerance
// (default 0.20) bounds how far a normalized ratio may drift from the
// baseline's.

// GateFinding is one detected regression or mismatch.
type GateFinding struct {
	Where  string `json:"where"`
	Detail string `json:"detail"`
}

// GateReport is the outcome of one gate comparison.
type GateReport struct {
	BaselinePath string        `json:"baseline"`
	Tolerance    float64       `json:"tolerance"`
	Exact        int           `json:"exact_checks"`
	Host         int           `json:"host_checks"`
	SkippedHost  int           `json:"host_checks_skipped"`
	Findings     []GateFinding `json:"findings"`
}

// OK reports whether the fresh run passed the gate.
func (g *GateReport) OK() bool { return len(g.Findings) == 0 }

func (g *GateReport) fail(where, format string, args ...any) {
	g.Findings = append(g.Findings, GateFinding{Where: where, Detail: fmt.Sprintf(format, args...)})
}

// exactly compares one deterministic quantity.
func gateExact[T comparable](g *GateReport, where, what string, base, fresh T) {
	g.Exact++
	if base != fresh {
		g.fail(where, "%s: baseline %v, got %v", what, base, fresh)
	}
}

// LoadBaseline reads a checked-in msbench JSON report.
func LoadBaseline(path string) (*JSONReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: gate baseline: %w", err)
	}
	defer f.Close()
	var r JSONReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: gate baseline %s: %w", path, err)
	}
	if len(r.Table2) == 0 {
		return nil, fmt.Errorf("bench: gate baseline %s: no table2 states", path)
	}
	return &r, nil
}

// hostRatios returns each state's host-ns-per-virtual-ms (summed over
// its benchmarks) normalized by the run-wide median, keyed by state
// name. States too short to time reliably are omitted.
func hostRatios(r *JSONReport) map[string]float64 {
	raw := map[string]float64{}
	var all []float64
	for _, st := range r.Table2 {
		var hostNS, virtMS int64
		for _, b := range st.Benches {
			hostNS += b.HostNS
			virtMS += b.VirtualMS
		}
		if virtMS < 5 || hostNS <= 0 {
			continue
		}
		v := float64(hostNS) / float64(virtMS)
		raw[st.State] = v
		all = append(all, v)
	}
	if len(all) == 0 {
		return raw
	}
	sort.Float64s(all)
	med := all[len(all)/2]
	if med <= 0 {
		return map[string]float64{}
	}
	for k, v := range raw {
		raw[k] = v / med
	}
	return raw
}

// RunGate compares a fresh report against the baseline. Deterministic
// quantities (virtual times, interpreter and heap counters, inline-cache
// ablation) must be bit-equal; normalized host-time ratios may drift by
// at most tol.
func RunGate(baseline, fresh *JSONReport, baselinePath string, tol float64) *GateReport {
	g := &GateReport{BaselinePath: baselinePath, Tolerance: tol}

	gateExact(g, "schema", "schemaVersion", baseline.SchemaVersion, fresh.SchemaVersion)

	freshStates := map[string]*JSONState{}
	for i := range fresh.Table2 {
		freshStates[fresh.Table2[i].State] = &fresh.Table2[i]
	}
	for i := range baseline.Table2 {
		bs := &baseline.Table2[i]
		fs, ok := freshStates[bs.State]
		if !ok {
			g.fail(bs.State, "state missing from fresh run")
			continue
		}
		freshBenches := map[string]JSONBench{}
		for _, b := range fs.Benches {
			freshBenches[b.Name] = b
		}
		for _, bb := range bs.Benches {
			where := bs.State + "/" + bb.Name
			fb, ok := freshBenches[bb.Name]
			if !ok {
				g.fail(where, "benchmark missing from fresh run")
				continue
			}
			gateExact(g, where, "virtual_ms", bb.VirtualMS, fb.VirtualMS)
		}
		gateMetrics(g, bs.State, &bs.Metrics, &fs.Metrics)
	}

	// Inline-cache ablation rows, keyed by (state, policy).
	freshIC := map[string]*JSONICRow{}
	for i := range fresh.InlineCache {
		r := &fresh.InlineCache[i]
		freshIC[r.State+"/"+r.Policy] = r
	}
	for i := range baseline.InlineCache {
		br := &baseline.InlineCache[i]
		where := "ic/" + br.State + "/" + br.Policy
		fr, ok := freshIC[where[3:]]
		if !ok {
			g.fail(where, "ablation row missing from fresh run")
			continue
		}
		gateExact(g, where, "virtual_ms rows", fmt.Sprint(br.Benches), fmt.Sprint(fr.Benches))
		gateExact(g, where, "ic_fills", br.ICFills, fr.ICFills)
		gateExact(g, where, "ic_poly_sites", br.ICPolySites, fr.ICPolySites)
		gateExact(g, where, "ic_mega_sites", br.ICMegaSites, fr.ICMegaSites)
	}

	// Parallel-scavenge ablation rows, keyed by processor count. Every
	// column but the derived speedup is deterministic.
	if baseline.ParScavenge != nil {
		freshPS := map[int]*ParScavRow{}
		if fresh.ParScavenge != nil {
			for i := range fresh.ParScavenge.Rows {
				r := &fresh.ParScavenge.Rows[i]
				freshPS[r.Procs] = r
			}
		}
		for i := range baseline.ParScavenge.Rows {
			br := &baseline.ParScavenge.Rows[i]
			where := fmt.Sprintf("parscavenge/procs=%d", br.Procs)
			fr, ok := freshPS[br.Procs]
			if !ok {
				g.fail(where, "ablation row missing from fresh run")
				continue
			}
			gateExact(g, where, "serial_scavenge_ticks", br.SerialTicks, fr.SerialTicks)
			gateExact(g, where, "parallel_scavenge_ticks", br.ParallelTicks, fr.ParallelTicks)
			gateExact(g, where, "scavenges", br.Scavenges, fr.Scavenges)
			gateExact(g, where, "copied_words", br.CopiedWords, fr.CopiedWords)
			gateExact(g, where, "steals", br.Steals, fr.Steals)
			gateExact(g, where, "serial_pause", fmt.Sprint(br.SerialPause), fmt.Sprint(fr.SerialPause))
			gateExact(g, where, "parallel_pause", fmt.Sprint(br.ParallelPause), fmt.Sprint(fr.ParallelPause))
		}
	}

	// The msjit ablation, keyed by workload. The virtual columns are
	// deterministic and compared exactly; the host-side speedup is
	// machine-bound, so instead of comparing it to the baseline the
	// gate holds the fresh run to the absolute floor.
	if baseline.JIT != nil {
		freshJIT := map[string]*JITRow{}
		if fresh.JIT != nil {
			for i := range fresh.JIT.Rows {
				r := &fresh.JIT.Rows[i]
				freshJIT[r.Workload] = r
			}
		}
		for i := range baseline.JIT.Rows {
			br := &baseline.JIT.Rows[i]
			where := "jit/" + br.Workload
			fr, ok := freshJIT[br.Workload]
			if !ok {
				g.fail(where, "ablation row missing from fresh run")
				continue
			}
			gateExact(g, where, "virtual_ms", br.VirtualMS, fr.VirtualMS)
			gateExact(g, where, "jit_compiles", br.Compiles, fr.Compiles)
			gateExact(g, where, "jit_deopts", br.Deopts, fr.Deopts)
		}
		if fresh.JIT != nil {
			g.Host++
			if fresh.JIT.MedianSpeedup < JITSpeedupFloor {
				g.fail("jit/median_speedup", "template tier %.2fx, floor %.2fx",
					fresh.JIT.MedianSpeedup, JITSpeedupFloor)
			}
		}
	}

	// The concurrent-marking ablation, keyed by live-window size. Every
	// column is deterministic and compared exactly; on top of that, the
	// fresh run is held to the pause-bound property itself — the
	// concurrent marker's longest stop-the-world window must undercut
	// the serial full-GC pause — so a scheduling change that erodes the
	// bound fails even if someone refreshes the baseline mechanically.
	if baseline.ConcMark != nil {
		freshCM := map[int]*ConcMarkRow{}
		if fresh.ConcMark != nil {
			for i := range fresh.ConcMark.Rows {
				r := &fresh.ConcMark.Rows[i]
				freshCM[r.Keep] = r
			}
		}
		for i := range baseline.ConcMark.Rows {
			br := &baseline.ConcMark.Rows[i]
			where := fmt.Sprintf("concmark/keep=%d", br.Keep)
			fr, ok := freshCM[br.Keep]
			if !ok {
				g.fail(where, "ablation row missing from fresh run")
				continue
			}
			gateExact(g, where, "full_collections", br.FullCollects, fr.FullCollects)
			gateExact(g, where, "serial_full_gc_ticks", br.SerialTicks, fr.SerialTicks)
			gateExact(g, where, "conc_full_gc_ticks", br.ConcTicks, fr.ConcTicks)
			gateExact(g, where, "serial_max_pause_ticks", br.SerialMaxPause, fr.SerialMaxPause)
			gateExact(g, where, "conc_max_pause_ticks", br.ConcMaxPause, fr.ConcMaxPause)
			gateExact(g, where, "conc_mark_cycles", br.Cycles, fr.Cycles)
			gateExact(g, where, "conc_mark_slices", br.Slices, fr.Slices)
			gateExact(g, where, "conc_mark_marked_objects", br.Marked, fr.Marked)
			gateExact(g, where, "conc_mark_barrier_shades", br.Shaded, fr.Shaded)
			gateExact(g, where, "conc_reclaimed_old_words", br.ReclaimedWords, fr.ReclaimedWords)
			gateExact(g, where, "serial_pause", fmt.Sprint(br.SerialPause), fmt.Sprint(fr.SerialPause))
			gateExact(g, where, "conc_pause", fmt.Sprint(br.ConcPause), fmt.Sprint(fr.ConcPause))
			gateExact(g, where, "conc_slice", fmt.Sprint(br.ConcSlice), fmt.Sprint(fr.ConcSlice))
			g.Exact++
			if fr.ConcMaxPause >= fr.SerialMaxPause {
				g.fail(where, "pause bound broken: concurrent max pause %d ticks >= serial max pause %d ticks",
					fr.ConcMaxPause, fr.SerialMaxPause)
			}
		}
	}

	// The serve benchmark, keyed by (executors, parallel). Counts,
	// makespan, and the latency summaries are deterministic; the
	// parallel-equivalence verdict is pinned true.
	if baseline.Serve != nil {
		freshServe := map[string]*ServeRow{}
		if fresh.Serve != nil {
			for i := range fresh.Serve.Rows {
				r := &fresh.Serve.Rows[i]
				freshServe[fmt.Sprintf("%d/%v", r.Executors, r.Parallel)] = r
			}
		}
		for i := range baseline.Serve.Rows {
			br := &baseline.Serve.Rows[i]
			key := fmt.Sprintf("%d/%v", br.Executors, br.Parallel)
			where := "serve/executors=" + key
			fr, ok := freshServe[key]
			if !ok {
				g.fail(where, "serve row missing from fresh run")
				continue
			}
			gateExact(g, where, "offered", br.Offered, fr.Offered)
			gateExact(g, where, "admitted", br.Admitted, fr.Admitted)
			gateExact(g, where, "rejected", br.Rejected, fr.Rejected)
			gateExact(g, where, "rejected_share", br.RejectedShare, fr.RejectedShare)
			gateExact(g, where, "completed", br.Completed, fr.Completed)
			gateExact(g, where, "errors", br.Errors, fr.Errors)
			gateExact(g, where, "makespan_ticks", br.MakespanTicks, fr.MakespanTicks)
			gateServeHist(g, where, "latency", &br.Latency, &fr.Latency)
			gateServeHist(g, where, "wait", &br.Wait, &fr.Wait)
			gateServeHist(g, where, "service", &br.Service, &fr.Service)
		}
		if fresh.Serve != nil {
			gateExact(g, "serve", "parallel_matches_det", true, fresh.Serve.ParallelMatchesDet)
		}
	}

	// Host-time drift, on normalized ratios.
	baseRatio, freshRatio := hostRatios(baseline), hostRatios(fresh)
	keys := make([]string, 0, len(baseRatio))
	for k := range baseRatio {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		br := baseRatio[k]
		fr, ok := freshRatio[k]
		if !ok || br <= 0 {
			g.SkippedHost++
			continue
		}
		g.Host++
		if drift := fr/br - 1; drift > tol {
			g.fail(k, "normalized host cost +%.0f%% over baseline (ratio %.2f -> %.2f, tolerance %.0f%%)",
				100*drift, br, fr, 100*tol)
		}
	}
	return g
}

// gateMetrics compares the deterministic counters of one state's
// metrics block. Everything in the registry is virtual-time-derived and
// schedule-deterministic, so the comparison is exact.
func gateMetrics(g *GateReport, state string, base, fresh *trace.Metrics) {
	w := state + "/metrics"
	gateExact(g, w, "machine.switches", base.Machine.Switches, fresh.Machine.Switches)
	gateExact(g, w, "machine.virtual_time_ticks", base.Machine.VirtualTimeTicks, fresh.Machine.VirtualTimeTicks)
	gateExact(g, w, "interp.bytecodes", base.Interp.Bytecodes, fresh.Interp.Bytecodes)
	gateExact(g, w, "interp.sends", base.Interp.Sends, fresh.Interp.Sends)
	gateExact(g, w, "interp.cache_hits", base.Interp.CacheHits, fresh.Interp.CacheHits)
	gateExact(g, w, "interp.cache_misses", base.Interp.CacheMisses, fresh.Interp.CacheMisses)
	gateExact(g, w, "interp.ic_hits", base.Interp.ICHits, fresh.Interp.ICHits)
	gateExact(g, w, "interp.ic_misses", base.Interp.ICMisses, fresh.Interp.ICMisses)
	gateExact(g, w, "interp.dict_probes", base.Interp.DictProbes, fresh.Interp.DictProbes)
	gateExact(g, w, "interp.primitives", base.Interp.Primitives, fresh.Interp.Primitives)
	gateExact(g, w, "interp.process_switches", base.Interp.ProcessSwitches, fresh.Interp.ProcessSwitches)
	// The standard states run with the template tier off, so these pin
	// the default to zero: a tier that turns itself on shows up here.
	gateExact(g, w, "interp.jit_compiles", base.Interp.JITCompiles, fresh.Interp.JITCompiles)
	gateExact(g, w, "interp.jit_deopts", base.Interp.JITDeopts, fresh.Interp.JITDeopts)
	gateExact(g, w, "interp.jit_bytecodes", base.Interp.JITBytecodes, fresh.Interp.JITBytecodes)
	gateExact(g, w, "heap.allocations", base.Heap.Allocations, fresh.Heap.Allocations)
	gateExact(g, w, "heap.allocated_words", base.Heap.AllocatedWords, fresh.Heap.AllocatedWords)
	gateExact(g, w, "heap.scavenges", base.Heap.Scavenges, fresh.Heap.Scavenges)
	gateExact(g, w, "heap.store_checks", base.Heap.StoreChecks, fresh.Heap.StoreChecks)
	gateExact(g, w, "heap.scavenge_ticks", base.Heap.ScavengeTicks, fresh.Heap.ScavengeTicks)
	gateExact(g, w, "heap.scavenge_max_pause_ticks", base.Heap.ScavengeMaxPause, fresh.Heap.ScavengeMaxPause)
	gateExact(g, w, "heap.full_gc_max_pause_ticks", base.Heap.FullGCMaxPause, fresh.Heap.FullGCMaxPause)
	gateLatency(g, w+"/latency", base.Latency, fresh.Latency)
}

// gateHist pins one histogram exactly: the counts are virtual-time
// samples dropped into fixed buckets, so in deterministic mode every
// bucket is bit-reproducible — the derived percentiles follow for free.
func gateHist(g *GateReport, where, what string, base, fresh *trace.HistSnapshot) {
	gateExact(g, where, what+".count", base.Count, fresh.Count)
	gateExact(g, where, what+".sum", base.Sum, fresh.Sum)
	gateExact(g, where, what+".max", base.Max, fresh.Max)
	gateExact(g, where, what+".buckets", fmt.Sprint(base.Buckets), fmt.Sprint(fresh.Buckets))
}

// gateServeHist pins a serve latency summary: the serve rows drop
// their bucket vectors to keep the report small, so the gate compares
// the summary columns (which the percentiles are derived from) exactly.
func gateServeHist(g *GateReport, where, what string, base, fresh *trace.HistSnapshot) {
	gateExact(g, where, what+".count", base.Count, fresh.Count)
	gateExact(g, where, what+".sum", base.Sum, fresh.Sum)
	gateExact(g, where, what+".max", base.Max, fresh.Max)
	gateExact(g, where, what+".p50", base.P50, fresh.P50)
	gateExact(g, where, what+".p95", base.P95, fresh.P95)
	gateExact(g, where, what+".p99", base.P99, fresh.P99)
}

// gateLatency compares the schema-3 latency section. Either both runs
// carry it or neither does; an asymmetry means the histograms knob
// changed, which is itself a regression.
func gateLatency(g *GateReport, w string, base, fresh *trace.LatencyMetrics) {
	if base == nil && fresh == nil {
		return
	}
	if base == nil || fresh == nil {
		g.fail(w, "latency section present=%v in baseline, present=%v in fresh run",
			base != nil, fresh != nil)
		return
	}
	gateHist(g, w, "scavenge_pause", &base.ScavengePause, &fresh.ScavengePause)
	gateHist(g, w, "scav_rendezvous", &base.ScavRendezvous, &fresh.ScavRendezvous)
	gateHist(g, w, "scav_copy", &base.ScavCopy, &fresh.ScavCopy)
	gateHist(g, w, "scav_term", &base.ScavTerm, &fresh.ScavTerm)
	gateHist(g, w, "full_gc_pause", &base.FullGCPause, &fresh.FullGCPause)
	gateHist(g, w, "conc_mark_pause", &base.ConcMarkPause, &fresh.ConcMarkPause)
	gateHist(g, w, "conc_mark_slice", &base.ConcMarkSlice, &fresh.ConcMarkSlice)
	gateHist(g, w, "dispatch", &base.Dispatch, &fresh.Dispatch)
	freshLocks := map[string]*trace.LockWaitSnapshot{}
	for i := range fresh.LockWait {
		freshLocks[fresh.LockWait[i].Name] = &fresh.LockWait[i]
	}
	gateExact(g, w, "lock_wait series", len(base.LockWait), len(fresh.LockWait))
	for i := range base.LockWait {
		bl := &base.LockWait[i]
		fl, ok := freshLocks[bl.Name]
		if !ok {
			g.fail(w, "lock-wait series %q missing from fresh run", bl.Name)
			continue
		}
		gateHist(g, w, "lock_wait/"+bl.Name, &bl.Hist, &fl.Hist)
	}
	gateExact(g, w, "critical_paths", fmt.Sprint(base.CriticalPaths), fmt.Sprint(fresh.CriticalPaths))
}

// Format renders the gate verdict for terminal output.
func (g *GateReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench gate vs %s (tolerance %.0f%%)\n", g.BaselinePath, 100*g.Tolerance)
	fmt.Fprintf(&b, "  %d exact checks, %d host-ratio checks (%d skipped under noise floor)\n",
		g.Exact, g.Host, g.SkippedHost)
	if g.OK() {
		b.WriteString("  PASS\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  FAIL: %d finding(s)\n", len(g.Findings))
	for _, f := range g.Findings {
		fmt.Fprintf(&b, "    %-40s %s\n", f.Where, f.Detail)
	}
	return b.String()
}

// Fingerprint writes the report with every host-time field zeroed —
// the deterministic residue. The CI determinism job runs the suite
// twice and diffs the two fingerprints byte-for-byte; any difference
// means the simulator leaked host state into virtual results.
func Fingerprint(r *JSONReport, w io.Writer) error {
	cp := *r
	cp.Table2 = make([]JSONState, len(r.Table2))
	for i, st := range r.Table2 {
		cp.Table2[i] = st
		cp.Table2[i].Benches = make([]JSONBench, len(st.Benches))
		for j, b := range st.Benches {
			b.HostNS = 0
			cp.Table2[i].Benches[j] = b
		}
	}
	if r.Sanitize != nil {
		san := *r.Sanitize
		san.Rows = make([]SanitizeRow, len(r.Sanitize.Rows))
		for i, row := range r.Sanitize.Rows {
			row.HostPlainNS, row.HostCheckNS, row.OverheadPct = 0, 0, 0
			san.Rows[i] = row
		}
		cp.Sanitize = &san
	}
	cp.Parallel = nil // wall-clock by definition
	// ParScavenge and ConcMark stay: their columns are virtual ticks
	// and counters, deterministic by construction.
	if r.JIT != nil {
		jr := *r.JIT
		jr.Rows = make([]JITRow, len(r.JIT.Rows))
		for i, row := range r.JIT.Rows {
			row.InterpNS, row.JITNS, row.Speedup = 0, 0, 0
			jr.Rows[i] = row
		}
		jr.MedianSpeedup = 0
		cp.JIT = &jr
	}
	if r.Serve != nil {
		sr := *r.Serve
		sr.Rows = make([]ServeRow, len(r.Serve.Rows))
		for i, row := range r.Serve.Rows {
			row.HostNS = 0
			sr.Rows[i] = row
		}
		cp.Serve = &sr
	}
	return cp.Write(w)
}
