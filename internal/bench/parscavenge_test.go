package bench

import (
	"reflect"
	"strings"
	"testing"
)

// The ablation's headline claim: with the cooperative scavenger on,
// total scavenge virtual time strictly decreases from 1 to 4 simulated
// processors (and keeps decreasing at 8 on this workload), while the
// serial scavenger's time is processor-count-independent.
func TestParScavengeAblationScales(t *testing.T) {
	r, err := RunParScavengeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(parScavProcCounts) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(parScavProcCounts))
	}
	for i, row := range r.Rows {
		if row.Procs != parScavProcCounts[i] {
			t.Fatalf("row %d measures procs=%d, want %d", i, row.Procs, parScavProcCounts[i])
		}
		if row.Scavenges == 0 || row.CopiedWords == 0 {
			t.Fatalf("procs=%d: no collection work measured: %+v", row.Procs, row)
		}
		if row.SerialTicks != r.Rows[0].SerialTicks {
			t.Errorf("serial scavenge time varies with processor count: %d at procs=%d vs %d at procs=1",
				row.SerialTicks, row.Procs, r.Rows[0].SerialTicks)
		}
		if i > 0 {
			prev := r.Rows[i-1]
			if row.ParallelTicks >= prev.ParallelTicks {
				t.Errorf("parallel scavenge time not strictly decreasing: %d ticks at procs=%d, %d at procs=%d",
					prev.ParallelTicks, prev.Procs, row.ParallelTicks, row.Procs)
			}
			if row.Steals == 0 {
				t.Errorf("procs=%d: no steals; the deques never interacted", row.Procs)
			}
		}
	}
}

// The ablation is virtual-time deterministic: two runs produce
// identical rows (speedup included), so the gate may compare them
// exactly and the fingerprint may retain them.
func TestParScavengeAblationDeterministic(t *testing.T) {
	a, err := RunParScavengeAblation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParScavengeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ablation not deterministic:\n%+v\n%+v", a, b)
	}
	out := FormatParScavenge(a)
	if !strings.Contains(out, "procs") || !strings.Contains(out, "speedup") {
		t.Errorf("format output missing columns:\n%s", out)
	}
}
