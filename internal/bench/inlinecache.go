package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
	"mst/internal/interp"
)

// The inline-cache ablation (extension; Deutsch–Schiffman/Hölzle
// lineage): the same four system states as Table 2, each run with the
// send-site inline caches off, monomorphic, and polymorphic, reporting
// virtual times and the hit/miss counters of both lookup levels.

// ICPolicies are the ablation's inline-cache configurations, in order.
var ICPolicies = []struct {
	Name   string
	Policy interp.ICPolicy
}{
	{"ic-off", interp.ICOff},
	{"mic", interp.ICMono},
	{"pic", interp.ICPoly},
}

// ICRow is one (state, policy) measurement.
type ICRow struct {
	State  string
	Policy string
	Ms     []int64 // per ablation benchmark, virtual milliseconds

	Sends       uint64
	ICHits      uint64
	ICMisses    uint64
	ICFills     uint64
	ICPolySites uint64
	ICMegaSites uint64
	CacheHits   uint64
	CacheMisses uint64
}

// ICHitRate is hits over inline-cache probes (0 when ICs are off).
func (r *ICRow) ICHitRate() float64 {
	t := r.ICHits + r.ICMisses
	if t == 0 {
		return 0
	}
	return float64(r.ICHits) / float64(t)
}

// CacheHitRate is hits over method-cache probes.
func (r *ICRow) CacheHitRate() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(t)
}

// ICAblation is the full matrix.
type ICAblation struct {
	Benches []string
	Iters   int
	Rows    []ICRow
}

// icIters runs each benchmark several times per system: inline caches
// warm once and persist (they survive scavenges as GC roots), while the
// flushed-per-scavenge method cache keeps re-warming, so the steady
// state only emerges past the first iteration.
const icIters = 3

// RunInlineCacheAblation measures the four standard states under each
// inline-cache policy. Only InlineCache varies (the method cache stays
// the state's own direct-mapped organization) so the two lookup levels
// are compared on equal footing.
func RunInlineCacheAblation() (*ICAblation, error) {
	a := &ICAblation{Benches: ablationBenches, Iters: icIters}
	for _, st := range StandardStates() {
		for _, pol := range ICPolicies {
			st, pol := st, pol
			wrapped := st
			wrapped.Config = func() core.Config {
				c := st.Config()
				c.InlineCache = pol.Policy
				return c
			}
			sys, err := NewBenchSystem(wrapped)
			if err != nil {
				return nil, err
			}
			row := ICRow{State: st.Name, Policy: pol.Name}
			for _, b := range ablationBenches {
				var total int64
				for it := 0; it < icIters; it++ {
					ms, err := RunMacro(sys, b)
					if err != nil {
						sys.Shutdown()
						return nil, fmt.Errorf("bench: inlinecache %s/%s/%s: %w", st.Name, pol.Name, b, err)
					}
					total += ms
				}
				row.Ms = append(row.Ms, total)
			}
			s := sys.Stats().Interp
			sys.Shutdown()
			row.Sends = s.Sends
			row.ICHits, row.ICMisses = s.ICHits, s.ICMisses
			row.ICFills, row.ICPolySites = s.ICFills, s.ICPolySites
			row.ICMegaSites = s.ICMegaSites
			row.CacheHits, row.CacheMisses = s.CacheHits, s.CacheMisses
			a.Rows = append(a.Rows, row)
		}
	}
	return a, nil
}

// Format renders the ablation as a table grouped by state.
func (a *ICAblation) Format() string {
	var b strings.Builder
	b.WriteString("Ablation: per-send-site inline caches (extension beyond the paper)\n")
	b.WriteString("ic-off = method cache only; mic = monomorphic sites; pic = polymorphic sites\n")
	fmt.Fprintf(&b, "virtual times are the sum of %d iterations per benchmark\n\n", a.Iters)
	fmt.Fprintf(&b, "%-10s %-8s", "state", "policy")
	for _, bench := range a.Benches {
		fmt.Fprintf(&b, "%22s", bench)
	}
	fmt.Fprintf(&b, "%10s %10s %10s %10s %6s\n", "IC hit%", "MC hit%", "IC fills", "polysites", "mega")
	b.WriteString(strings.Repeat("-", 10+1+8+22*len(a.Benches)+4*10+10))
	b.WriteString("\n")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-10s %-8s", r.State, r.Policy)
		for _, ms := range r.Ms {
			fmt.Fprintf(&b, "%20dms", ms)
		}
		if r.Policy == "ic-off" {
			fmt.Fprintf(&b, "%10s", "—")
		} else {
			fmt.Fprintf(&b, "%9.1f%%", r.ICHitRate()*100)
		}
		fmt.Fprintf(&b, "%9.1f%% %10d %10d %6d\n", r.CacheHitRate()*100, r.ICFills, r.ICPolySites, r.ICMegaSites)
	}
	return b.String()
}
