package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mst/internal/core"
	"mst/internal/trace"
)

// Machine-readable benchmark results (msbench -json): one file captures
// the Table 2 matrix with interpreter counters and host-side wall time,
// plus the inline-cache ablation, so successive PRs leave a comparable
// perf trajectory (BENCH_*.json).

// JSONBench is one benchmark on one state.
type JSONBench struct {
	Name      string `json:"name"`
	VirtualMS int64  `json:"virtual_ms"`
	HostNS    int64  `json:"host_ns"`
}

// JSONState is one system state's results: per-benchmark times plus the
// unified metrics registry snapshot accumulated across the state's full
// run (boot + all benchmarks). The metrics block replaced the ad-hoc
// counters struct in schema msbench/2.
type JSONState struct {
	State   string        `json:"state"`
	Benches []JSONBench   `json:"benches"`
	Metrics trace.Metrics `json:"metrics"`
}

// JSONICRow mirrors ICRow with hit rates precomputed.
type JSONICRow struct {
	State        string  `json:"state"`
	Policy       string  `json:"policy"`
	Benches      []int64 `json:"virtual_ms"`
	ICHitRate    float64 `json:"ic_hit_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	ICFills      uint64  `json:"ic_fills"`
	ICPolySites  uint64  `json:"ic_poly_sites"`
	ICMegaSites  uint64  `json:"ic_mega_sites"`
}

// JSONReport is the full machine-readable result set. SchemaVersion
// tracks trace.MetricsSchemaVersion; Schema is its human-readable twin.
type JSONReport struct {
	Schema        string      `json:"schema"`
	SchemaVersion int         `json:"schemaVersion"`
	Table2        []JSONState `json:"table2"`
	ICBenches     []string    `json:"inline_cache_benches"`
	ICIterations  int         `json:"inline_cache_iterations"`
	InlineCache   []JSONICRow `json:"inline_cache"`
	// Sanitize is additive (schema msbench/3 readers tolerate its
	// absence): the mscheck verdict and host-side checker overhead per
	// state.
	Sanitize *SanitizeReport `json:"sanitize,omitempty"`
	// Parallel is additive too: the -parallel host sweep, present only
	// when it was requested (its wall-clock numbers are machine-bound,
	// so it never participates in the gate or the fingerprint).
	Parallel *ParallelReport `json:"parallel,omitempty"`
	// ParScavenge is the parallel-scavenging ablation. Unlike the host
	// sweep it is virtual-time deterministic, so it rides in the gate
	// and the fingerprint.
	ParScavenge *ParScavReport `json:"parscavenge,omitempty"`
	// JIT is the msjit ablation (msbench -jit): present only when
	// requested. Its virtual columns (virtual_ms, compiles, deopts,
	// compiled-bytecode share) are deterministic and ride in the gate
	// and the fingerprint; the host nanoseconds and speedups are zeroed
	// in the fingerprint like every other host time.
	JIT *JITReport `json:"jit,omitempty"`
	// ConcMark is the concurrent-marking ablation (msbench -concmark):
	// present only when requested. Every column is virtual-time
	// deterministic, so the rows ride in the gate and the fingerprint;
	// the gate additionally holds the fresh run to the pause-bound
	// property (concurrent max pause strictly below the serial one).
	ConcMark *ConcMarkReport `json:"concmark,omitempty"`
	// Serve is the multi-tenant image-server benchmark (cmd/msserve):
	// one open-loop schedule at 1/2/4/8 executors plus the parallel
	// equivalence row. Virtual columns ride the gate and fingerprint.
	Serve *ServeBenchReport `json:"serve,omitempty"`
}

// RunJSONReport measures the Table 2 matrix (virtual ms plus host wall
// time per benchmark, counters per state) and the inline-cache
// ablation. includeJIT adds the msjit ablation (msbench -jit);
// includeConcMark adds the concurrent-marking ablation (msbench
// -concmark).
func RunJSONReport(includeJIT, includeConcMark bool) (*JSONReport, error) {
	r := &JSONReport{
		Schema:        fmt.Sprintf("msbench/%d", trace.MetricsSchemaVersion),
		SchemaVersion: trace.MetricsSchemaVersion,
	}
	for _, st := range StandardStates() {
		// The latency registry rides every standard state: histograms
		// are pure observation (TestGoldenHistogramInvariance), so the
		// Table 2 numbers are unchanged and the gate can pin the pause,
		// dispatch, and lock-wait bucket counts exactly.
		base := st.Config
		st.Config = func() core.Config {
			cfg := base()
			cfg.Histograms = true
			return cfg
		}
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		js := JSONState{State: st.Name}
		for _, b := range MacroBenchmarks {
			t0 := time.Now()
			ms, err := RunMacro(sys, b.Selector)
			if err != nil {
				sys.Shutdown()
				return nil, fmt.Errorf("bench: json %s/%s: %w", st.Name, b.Selector, err)
			}
			js.Benches = append(js.Benches, JSONBench{
				Name:      b.Selector,
				VirtualMS: ms,
				HostNS:    time.Since(t0).Nanoseconds(),
			})
		}
		js.Metrics = sys.Metrics()
		sys.Shutdown()
		r.Table2 = append(r.Table2, js)
	}

	san, err := RunSanitize()
	if err != nil {
		return nil, err
	}
	r.Sanitize = san

	ps, err := RunParScavengeAblation()
	if err != nil {
		return nil, err
	}
	r.ParScavenge = ps

	sv, err := RunServeBench()
	if err != nil {
		return nil, err
	}
	r.Serve = sv

	if includeJIT {
		jr, err := RunJITAblation()
		if err != nil {
			return nil, err
		}
		r.JIT = jr
	}

	if includeConcMark {
		cr, err := RunConcMarkAblation()
		if err != nil {
			return nil, err
		}
		r.ConcMark = cr
	}

	ic, err := RunInlineCacheAblation()
	if err != nil {
		return nil, err
	}
	r.ICBenches = ic.Benches
	r.ICIterations = ic.Iters
	for i := range ic.Rows {
		row := &ic.Rows[i]
		r.InlineCache = append(r.InlineCache, JSONICRow{
			State:        row.State,
			Policy:       row.Policy,
			Benches:      row.Ms,
			ICHitRate:    row.ICHitRate(),
			CacheHitRate: row.CacheHitRate(),
			ICFills:      row.ICFills,
			ICPolySites:  row.ICPolySites,
			ICMegaSites:  row.ICMegaSites,
		})
	}
	return r, nil
}

// Write emits the report as indented JSON.
func (r *JSONReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
