package bench

import (
	"reflect"
	"strings"
	"testing"

	"mst/internal/sanitize"
)

// One state's plain/sanitized pair: clean checker, identical virtual
// times, identical metrics fingerprint (the cheap slice of what
// msbench -sanitize and TestGoldenSanitizeInvariance run in full).
func TestSanitizeRunIdenticalAndClean(t *testing.T) {
	st := StandardStates()[1] // ms
	plainMs, plainFP, _, _, err := sanitizeRun(st, false)
	if err != nil {
		t.Fatal(err)
	}
	checkMs, checkFP, san, _, err := sanitizeRun(st, true)
	if err != nil {
		t.Fatal(err)
	}
	if san == nil {
		t.Fatal("sanitizer did not attach")
	}
	if !san.Clean() {
		t.Errorf("violations on the real workload:\n%s", san.Report())
	}
	if !reflect.DeepEqual(plainMs, checkMs) {
		t.Errorf("virtual times diverge: off=%v on=%v", plainMs, checkMs)
	}
	if diff := sanitize.FingerprintDiff(plainFP, checkFP); len(diff) != 0 {
		t.Errorf("metrics diverge: %v", diff)
	}
	if cs := san.Stats(); cs.LockEvents == 0 || cs.AccessChecks == 0 || cs.BarrierScans == 0 {
		t.Errorf("checker did no work: %+v", cs)
	}
}

func TestSanitizeReportFormat(t *testing.T) {
	r := &SanitizeReport{
		Benches: []string{"a"},
		Rows: []SanitizeRow{
			{State: "ms", Identical: true, HostPlainNS: 100, HostCheckNS: 120, OverheadPct: 20},
		},
	}
	if !r.Clean() {
		t.Error("clean report not Clean()")
	}
	out := r.Format()
	if !strings.Contains(out, "mscheck: clean") {
		t.Errorf("missing clean marker:\n%s", out)
	}
	r.Rows = append(r.Rows, SanitizeRow{
		State:       "ms-busy",
		Divergences: []string{"virtual times: off=[1] on=[2]"},
	})
	if r.Clean() {
		t.Error("divergent report is Clean()")
	}
	if out := r.Format(); !strings.Contains(out, "DIVERGENCE") {
		t.Errorf("missing divergence line:\n%s", out)
	}
}

func TestMetricsFingerprintFlattens(t *testing.T) {
	out := map[string]int64{}
	flattenJSON("m", map[string]interface{}{
		"counts": []interface{}{float64(3), float64(4.5)},
		"name":   "alloc",
		"on":     true,
	}, out)
	want := map[string]int64{
		"m.counts[0]":  3_000_000,
		"m.counts[1]":  4_500_000,
		"m.name=alloc": 1,
		"m.on":         1,
	}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("flatten = %v, want %v", out, want)
	}
}
