package bench

import (
	"fmt"
	"strings"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/object"
	"mst/internal/trace"
)

// The concurrent-marking ablation (msbench -ablation concmark): a
// heap-only workload — a seeded deterministic object graph churned
// through scavenges and explicit full collections — run once with the
// stop-the-world mark-compact collector and once with the SATB
// concurrent marker, over a growing rooted live set. The interesting
// column is the maximum full-GC pause: the serial collector's pause
// grows with the live set, while the concurrent marker's longest
// stop-the-world window (snapshot or finalize) stays bounded.
// Everything is virtual-time deterministic, so the rows participate in
// the regression gate and the determinism fingerprint.

const (
	concMarkRounds = 6 // alloc/scavenge rounds; every second one full-collects
	concMarkFulls  = 3 // full collections per run (rounds/2)
)

// concMarkKeepSizes are the rooted live-window sizes measured; the
// serial full-GC pause scales with them, the concurrent windows do not.
var concMarkKeepSizes = []int{1000, 2000, 4000}

// ConcMarkRow is one live-set size's measurements. Ticks and pauses are
// virtual; the pause snapshots drop their bucket vectors (the summary
// columns suffice and the gate pins them exactly).
type ConcMarkRow struct {
	Keep           int    `json:"keep"`
	FullCollects   uint64 `json:"full_collections"`
	SerialTicks    int64  `json:"serial_full_gc_ticks"`
	ConcTicks      int64  `json:"conc_full_gc_ticks"`
	SerialMaxPause int64  `json:"serial_max_pause_ticks"`
	ConcMaxPause   int64  `json:"conc_max_pause_ticks"`
	Cycles         uint64 `json:"conc_mark_cycles"`
	Slices         uint64 `json:"conc_mark_slices"`
	Marked         uint64 `json:"conc_mark_marked_objects"`
	Shaded         uint64 `json:"conc_mark_barrier_shades"`
	ReclaimedWords uint64 `json:"conc_reclaimed_old_words"`
	// Per-window STW pause distributions (virtual ticks): every serial
	// full-GC pause vs every concurrent-marking stop-the-world window.
	SerialPause trace.HistSnapshot `json:"serial_pause"`
	ConcPause   trace.HistSnapshot `json:"conc_pause"`
	ConcSlice   trace.HistSnapshot `json:"conc_slice"`
}

// ConcMarkReport is the full ablation.
type ConcMarkReport struct {
	Rows []ConcMarkRow `json:"rows"`
}

// concMarkMutator builds and churns the seeded graph on processor 0: a
// sliding window of rooted objects with LCG-derived (fully
// deterministic) edges into the recent past. Each round allocates a
// batch, overwrites old edges (the SATB deletion-barrier workload when
// a mark cycle is active on the collector processor), and scavenges.
// *round counts completed rounds for the collector's pacing. The
// sequence never reads an address or a clock, so the serial and
// concurrent collectors replay identical mutations.
func concMarkMutator(h *heap.Heap, p *firefly.Proc, keep int, round *int) {
	var roots []object.OOP
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range roots {
			visit(&roots[i])
		}
	})
	x := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for r := 0; r < concMarkRounds; r++ {
		for i := 0; i < keep; i++ {
			fields := 2 + next(5)
			o := h.Allocate(p, object.Nil, fields, object.FmtPointers)
			if len(roots) > 0 {
				h.Store(p, o, 1, roots[next(len(roots))])
				// Overwrite an existing edge: under an active mark
				// cycle this exercises the deletion barrier.
				h.Store(p, roots[next(len(roots))], 0, o)
			}
			roots = append(roots, o)
			if len(roots) > keep {
				k := next(len(roots))
				roots = append(roots[:k], roots[k+1:]...)
			}
			// Safepoint: without it the raw-heap workload would run to
			// completion in one quantum and the collector processor
			// could never interleave with the mutation.
			p.CheckYield()
		}
		h.Scavenge(p)
		*round = r + 1
	}
}

// concMarkCollector triggers the full collections from processor 1
// while the mutator keeps running on processor 0. Under the serial
// collector the mutator stalls for the whole mark-compact; under
// ConcMark it runs between mark slices, so its edge overwrites land on
// the deletion barrier and its allocations are born black. Pacing is
// by completed mutator rounds (read at safepoints — deterministic
// under the cooperative scheduler), so every collection lands mid-
// round with a tenured population proportional to the live window.
func concMarkCollector(h *heap.Heap, p *firefly.Proc, round *int) {
	for _, target := range [concMarkFulls]int{1, 2, 4} {
		for *round < target {
			p.AdvanceIdle(200)
			p.Yield()
		}
		h.FullCollect(p)
	}
}

// runConcMarkOnce runs the workload on a fresh machine and returns the
// heap statistics plus the pause distributions. The latency registry
// attaches before heap.New so the heap caches it.
func runConcMarkOnce(keep int, concMark bool) (heap.Stats, *trace.LatencyMetrics, error) {
	m := firefly.New(4, firefly.DefaultCosts())
	lh := trace.NewLatencyHists()
	m.SetLatencyHists(lh)
	cfg := heap.Config{
		OldWords:      1 << 20,
		EdenWords:     32 << 10,
		SurvivorWords: 16 << 10,
		TenureAge:     2,
		Policy:        heap.AllocSerialized,
		LocksEnabled:  true,
		ConcMark:      concMark,
	}
	h := heap.New(m, cfg)
	round := 0
	m.Start(0, func(p *firefly.Proc) { concMarkMutator(h, p, keep, &round) })
	m.Start(1, func(p *firefly.Proc) { concMarkCollector(h, p, &round) })
	if r := m.Run(nil); r != firefly.StopAllDone {
		return heap.Stats{}, nil, fmt.Errorf(
			"bench: concmark (keep=%d conc=%v): machine stopped with %v",
			keep, concMark, r)
	}
	h.CheckInvariants()
	lm := lh.Snapshot()
	return h.Stats(), lm, nil
}

// RunConcMarkAblation measures the ablation. The mutation sequence is
// identical across the two collectors (it never reads an address or a
// clock); the GC interleaving is not, so the rows cross-check only the
// schedule-independent facts — both runs performed every requested
// full collection, and the concurrent marker's longest stop-the-world
// window undercuts the serial pause. The gate then pins every column
// exactly.
func RunConcMarkAblation() (*ConcMarkReport, error) {
	r := &ConcMarkReport{}
	for _, keep := range concMarkKeepSizes {
		serial, slat, err := runConcMarkOnce(keep, false)
		if err != nil {
			return nil, err
		}
		conc, clat, err := runConcMarkOnce(keep, true)
		if err != nil {
			return nil, err
		}
		if serial.FullCollections != conc.FullCollections {
			return nil, fmt.Errorf(
				"bench: concmark keep=%d: full-collection counts diverge (serial %d, concurrent %d)",
				keep, serial.FullCollections, conc.FullCollections)
		}
		if conc.FullGCMaxPause >= serial.FullGCMaxPause {
			return nil, fmt.Errorf(
				"bench: concmark keep=%d: concurrent max pause %d ticks is not below the serial max pause %d ticks",
				keep, conc.FullGCMaxPause, serial.FullGCMaxPause)
		}
		row := ConcMarkRow{
			Keep:           keep,
			FullCollects:   conc.FullCollections,
			SerialTicks:    int64(serial.FullGCTime),
			ConcTicks:      int64(conc.FullGCTime),
			SerialMaxPause: int64(serial.FullGCMaxPause),
			ConcMaxPause:   int64(conc.FullGCMaxPause),
			Cycles:         conc.ConcMarkCycles,
			Slices:         conc.ConcMarkSlices,
			Marked:         conc.ConcMarkMarked,
			Shaded:         conc.ConcMarkShaded,
			ReclaimedWords: conc.ReclaimedOldWords,
			SerialPause:    slat.FullGCPause,
			ConcPause:      clat.ConcMarkPause,
			ConcSlice:      clat.ConcMarkSlice,
		}
		// The summary columns suffice for the ablation rows.
		row.SerialPause.Buckets = nil
		row.ConcPause.Buckets = nil
		row.ConcSlice.Buckets = nil
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// FormatConcMark renders the ablation for terminal output.
func FormatConcMark(r *ConcMarkReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent marking ablation: %d rounds, %d full collections per run\n\n",
		concMarkRounds, concMarkFulls)
	fmt.Fprintf(&b, "%6s %6s %14s %14s %12s %12s %7s %7s %8s %8s %10s\n",
		"keep", "fulls", "serial ticks", "conc ticks",
		"serial maxP", "conc maxP", "cycles", "slices", "marked", "shades", "reclaimed")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %6d %14d %14d %12d %12d %7d %7d %8d %8d %10d\n",
			row.Keep, row.FullCollects, row.SerialTicks, row.ConcTicks,
			row.SerialMaxPause, row.ConcMaxPause,
			row.Cycles, row.Slices, row.Marked, row.Shaded, row.ReclaimedWords)
	}
	b.WriteString("\nStop-the-world pause ticks (p50/p90/p99/max)\n")
	fmt.Fprintf(&b, "%6s %27s %27s %27s\n", "keep", "serial full GC", "conc STW windows", "conc mark slices")
	for _, row := range r.Rows {
		s, c, sl := row.SerialPause, row.ConcPause, row.ConcSlice
		fmt.Fprintf(&b, "%6d %27s %27s %27s\n", row.Keep,
			fmt.Sprintf("%d/%d/%d/%d", s.P50, s.P90, s.P99, s.Max),
			fmt.Sprintf("%d/%d/%d/%d", c.P50, c.P90, c.P99, c.Max),
			fmt.Sprintf("%d/%d/%d/%d", sl.P50, sl.P90, sl.P99, sl.Max))
	}
	return b.String()
}
