// Package bench reproduces the paper's evaluation: the macro benchmarks
// of Table 2 / Figure 2 under the four system states, plus the in-text
// ablation experiments (free context lists, method caches, allocation
// policy, scavenge behaviour).
package bench

// benchmarkSource defines the macro-benchmark workloads in Smalltalk.
// They are analogues of the Smalltalk-80 "macro" benchmarks (McCall's
// chapter of "Smalltalk-80: Bits of History, Words of Advice") the paper
// uses: typical programming-environment activities over the live image's
// metaobjects.
const benchmarkSource = `
"The eight macro benchmarks. Each answers its elapsed virtual time in
 milliseconds, measured by the running Process's own clock."!

Object subclass: #DummyCompileTarget
	instanceVariableNames: ''
	category: 'Benchmarks'!

Object subclass: #MacroBenchmark
	instanceVariableNames: ''
	category: 'Benchmarks'!

!MacroBenchmark methodsFor: 'running'!
run: aSymbol
	| t0 |
	t0 := self millisecondClockValue.
	self perform: aSymbol.
	^self millisecondClockValue - t0! !

!MacroBenchmark methodsFor: 'benchmarks'!
readWriteClassOrganization
	"Read every class's method organization, render it to the classic
	 parenthesized category format, store it back, and re-parse it."
	2 timesRepeat: [
		Smalltalk allClassesDo: [:cls |
			| org |
			org := self organizationStringFor: cls.
			cls organization: org.
			self parseOrganization: org]]!
printClassDefinition
	"Generate the class-definition expression for every class."
	3 timesRepeat: [
		Smalltalk allClassesDo: [:cls | cls definitionString]]!
printClassHierarchy
	"Render the indented hierarchy listing below Object."
	6 timesRepeat: [Object printHierarchy]!
findAllCalls
	"Senders search: every method whose literal frame references the
	 selector."
	#(printOn: at:ifAbsent: subclassResponsibility nextPutAll: value:) do: [:sel |
		Smalltalk allCallsOn: sel]!
findAllImplementors
	"Implementors search over every class and metaclass."
	#(printOn: do: at:ifAbsent: size hash value new printString) do: [:sel |
		Smalltalk allImplementorsOf: sel]!
createInspectorView
	"Build inspector views on a spread of objects."
	| subjects |
	subjects := Array
		with: 3 -> 4
		with: (Array with: 'string' with: #symbol with: 42)
		with: Object new
		with: (OrderedCollection new add: 1; add: 2; yourself).
	25 timesRepeat: [
		subjects do: [:each | Inspector on: each]]!
compileDummyMethod
	"Compile a method repeatedly into a scratch class: parsing,
	 literal allocation, installation into a shared method dictionary."
	250 timesRepeat: [
		DummyCompileTarget
			compile: 'dummyMethod: x | t | t := x + 1. t := t * 2. ^t - x'
			classified: 'benchmarks']!
decompileClass
	"Decompile every method of a handful of central classes."
	4 timesRepeat: [
		#(Collection SequenceableCollection String Behavior OrderedCollection Dictionary) do: [:sym |
			| cls |
			cls := Smalltalk classNamed: sym asString.
			cls methodsDo: [:m | m decompileString]]]! !

!MacroBenchmark methodsFor: 'organization'!
organizationStringFor: cls
	| stream |
	stream := WriteStream on: (String new: 128).
	cls categories do: [:cat |
		stream nextPut: $(.
		stream nextPutAll: cat.
		(cls selectorsInCategory: cat) do: [:sel |
			stream space.
			stream nextPutAll: sel asString].
		stream nextPutAll: ') '].
	^stream contents!
parseOrganization: orgString
	"Re-parse the rendered organization into category -> selector
	 token groups."
	| groups current tokens |
	groups := OrderedCollection new.
	current := nil.
	tokens := orgString substrings.
	tokens do: [:tok |
		(tok startsWith: '(')
			ifTrue: [
				current := OrderedCollection new.
				groups add: current.
				current add: (tok copyFrom: 2 to: tok size)]
			ifFalse: [
				(tok endsWith: ')')
					ifTrue: [
						current notNil ifTrue: [
							current add: (tok copyFrom: 1 to: tok size - 1)]]
					ifFalse: [
						current notNil ifTrue: [current add: tok]]]].
	^groups! !
`

// MacroBenchmarks lists the benchmark selectors in Table 2 column order,
// with the paper's display names.
var MacroBenchmarks = []struct {
	Selector string
	Paper    string
}{
	{"readWriteClassOrganization", "read and write class organization"},
	{"printClassDefinition", "print class definition"},
	{"printClassHierarchy", "print class hierarchy"},
	{"findAllCalls", "find all calls"},
	{"findAllImplementors", "find all implementors"},
	{"createInspectorView", "create inspector view"},
	{"compileDummyMethod", "compile dummy method"},
	{"decompileClass", "decompile class"},
}
