package bench

import (
	"fmt"
	"strings"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/object"
	"mst/internal/trace"
)

// The parallel-scavenge ablation (msbench -ablation parscavenge): a
// heap-only workload — a seeded deterministic object graph, mutated
// and explicitly scavenged over several rounds — run at 1/2/4/8
// simulated processors, once with the serial scavenger and once with
// the cooperative parallel one. Everything is virtual-time
// deterministic (the parallel scavenger's simulated schedule is a pure
// function of the heap), so the rows participate in the regression
// gate and the determinism fingerprint, unlike the host-bound
// -parallel sweep.

const (
	parScavRounds = 4    // explicit scavenges
	parScavBatch  = 1500 // objects allocated per round
	parScavKeep   = 600  // rooted live window
)

// parScavProcCounts are the simulated processor counts measured.
var parScavProcCounts = []int{1, 2, 4, 8}

// ParScavRow is one processor count's measurements. Ticks are the
// summed virtual scavenge time over the workload's collections.
type ParScavRow struct {
	Procs         int     `json:"procs"`
	SerialTicks   int64   `json:"serial_scavenge_ticks"`
	ParallelTicks int64   `json:"parallel_scavenge_ticks"`
	Scavenges     uint64  `json:"scavenges"`
	CopiedWords   uint64  `json:"copied_words"`
	Steals        uint64  `json:"steals"`
	Speedup       float64 `json:"speedup"` // serial ticks / parallel ticks
	// Per-scavenge STW pause distributions (virtual ticks), one set per
	// scavenger variant. Deterministic, so they ride the gate.
	SerialPause   trace.HistSnapshot `json:"serial_pause"`
	ParallelPause trace.HistSnapshot `json:"parallel_pause"`
}

// ParScavReport is the full ablation.
type ParScavReport struct {
	Rows []ParScavRow `json:"rows"`
}

// parScavWorkload builds and churns the seeded graph: a sliding window
// of rooted objects with random-looking (LCG-derived, fully
// deterministic) edges into the recent past, scavenged each round. The
// sequence never reads an address or a clock, so every configuration
// replays identical mutations.
func parScavWorkload(h *heap.Heap, p *firefly.Proc) {
	var roots []object.OOP
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range roots {
			visit(&roots[i])
		}
	})
	x := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for r := 0; r < parScavRounds; r++ {
		for i := 0; i < parScavBatch; i++ {
			fields := 2 + next(5)
			o := h.Allocate(p, object.Nil, fields, object.FmtPointers)
			if len(roots) > 0 {
				h.Store(p, o, 1, roots[next(len(roots))])
			}
			roots = append(roots, o)
			if len(roots) > parScavKeep {
				k := next(len(roots))
				roots = append(roots[:k], roots[k+1:]...)
			}
		}
		h.Scavenge(p)
	}
	h.CheckInvariants()
}

// runParScavOnce runs the workload on a fresh machine and returns the
// heap statistics plus the per-scavenge pause distribution. The latency
// registry attaches before heap.New so the heap caches it.
func runParScavOnce(procs int, parScav bool) (heap.Stats, trace.HistSnapshot, error) {
	m := firefly.New(procs, firefly.DefaultCosts())
	lh := trace.NewLatencyHists()
	m.SetLatencyHists(lh)
	cfg := heap.Config{
		OldWords:      1 << 20,
		EdenWords:     32 << 10,
		SurvivorWords: 16 << 10,
		TenureAge:     4,
		Policy:        heap.AllocSerialized,
		LocksEnabled:  true,
		ParScavenge:   parScav,
	}
	h := heap.New(m, cfg)
	m.Start(0, func(p *firefly.Proc) { parScavWorkload(h, p) })
	if r := m.Run(nil); r != firefly.StopAllDone {
		return heap.Stats{}, trace.HistSnapshot{}, fmt.Errorf(
			"bench: parscavenge (procs=%d par=%v): machine stopped with %v",
			procs, parScav, r)
	}
	snap := lh.ScavengePause.Snapshot()
	snap.Buckets = nil // the summary columns suffice for the ablation
	return h.Stats(), snap, nil
}

// RunParScavengeAblation measures the ablation. Each row cross-checks
// that the two scavengers agreed on the amount of live data copied —
// a divergence means a collection bug, not a performance delta.
func RunParScavengeAblation() (*ParScavReport, error) {
	r := &ParScavReport{}
	for _, procs := range parScavProcCounts {
		serial, serialPause, err := runParScavOnce(procs, false)
		if err != nil {
			return nil, err
		}
		par, parPause, err := runParScavOnce(procs, true)
		if err != nil {
			return nil, err
		}
		if serial.CopiedWords != par.CopiedWords || serial.Scavenges != par.Scavenges {
			return nil, fmt.Errorf(
				"bench: parscavenge procs=%d: scavengers diverge (serial %d words/%d collections, parallel %d/%d)",
				procs, serial.CopiedWords, serial.Scavenges, par.CopiedWords, par.Scavenges)
		}
		row := ParScavRow{
			Procs:         procs,
			SerialTicks:   int64(serial.ScavengeTime),
			ParallelTicks: int64(par.ScavengeTime),
			Scavenges:     par.Scavenges,
			CopiedWords:   par.CopiedWords,
			Steals:        par.ScavengeSteals,
			SerialPause:   serialPause,
			ParallelPause: parPause,
		}
		if row.ParallelTicks > 0 {
			row.Speedup = float64(row.SerialTicks) / float64(row.ParallelTicks)
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// FormatParScavenge renders the ablation for terminal output.
func FormatParScavenge(r *ParScavReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel scavenging ablation: %d rounds x %d allocations, ~%d rooted survivors\n\n",
		parScavRounds, parScavBatch, parScavKeep)
	fmt.Fprintf(&b, "%6s %14s %14s %10s %12s %8s %8s\n",
		"procs", "serial ticks", "parallel ticks", "scavenges", "copied words", "steals", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %14d %14d %10d %12d %8d %7.2fx\n",
			row.Procs, row.SerialTicks, row.ParallelTicks,
			row.Scavenges, row.CopiedWords, row.Steals, row.Speedup)
	}
	b.WriteString("\nPer-scavenge STW pause ticks (p50/p90/p99/max)\n")
	fmt.Fprintf(&b, "%6s %31s %31s\n", "procs", "serial", "parallel")
	for _, row := range r.Rows {
		s, p := row.SerialPause, row.ParallelPause
		fmt.Fprintf(&b, "%6d %31s %31s\n", row.Procs,
			fmt.Sprintf("%d/%d/%d/%d", s.P50, s.P90, s.P99, s.Max),
			fmt.Sprintf("%d/%d/%d/%d", p.P50, p.P90, p.P99, p.Max))
	}
	return b.String()
}
