package bench

import (
	"fmt"

	"mst/internal/core"
)

// State is one of the paper's system states (Table 2 rows).
type State struct {
	// Name is a short key; Paper is the row label from Table 2.
	Name  string
	Paper string
	// Config builds the system configuration for this state.
	Config func() core.Config
	// Background spawns this state's competing Processes.
	Background func(*core.System) error
}

// StandardStates returns the four states of Table 2, in row order.
func StandardStates() []State {
	return []State{
		{
			Name:   "baseline",
			Paper:  "Baseline BS on multiprocessor",
			Config: core.BaselineConfig,
		},
		{
			Name:   "ms",
			Paper:  "MS on multiprocessor",
			Config: core.DefaultConfig,
		},
		{
			Name:   "ms-idle",
			Paper:  "MS with four idle Processes",
			Config: core.DefaultConfig,
			Background: func(s *core.System) error {
				return s.SpawnIdleProcesses(4)
			},
		},
		{
			Name:   "ms-busy",
			Paper:  "MS with four busy Processes",
			Config: core.DefaultConfig,
			Background: func(s *core.System) error {
				return s.SpawnBusyProcesses(4)
			},
		},
	}
}

// NewBenchSystem boots a system with the macro-benchmark sources filed
// in for the given state, with its background Processes running.
func NewBenchSystem(st State) (*core.System, error) {
	cfg := st.Config()
	cfg.ExtraSources = append(cfg.ExtraSources, benchmarkSource)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: boot %s: %w", st.Name, err)
	}
	if st.Background != nil {
		if err := st.Background(sys); err != nil {
			sys.Shutdown()
			return nil, fmt.Errorf("bench: background %s: %w", st.Name, err)
		}
	}
	return sys, nil
}

// RunMacro runs one macro benchmark on a booted system and returns its
// virtual elapsed milliseconds (measured by the benchmark Process's own
// clock, so lock spinning, bus contention, and scavenge stalls are all
// included).
func RunMacro(sys *core.System, selector string) (int64, error) {
	return sys.EvaluateInt(fmt.Sprintf("MacroBenchmark new run: #%s", selector))
}

// Table2 holds the measured matrix: Ms[state][bench] in virtual
// milliseconds.
type Table2 struct {
	States  []State
	Benches []string // paper display names
	Ms      [][]int64
}

// RunTable2 boots each state and runs the eight macro benchmarks,
// reproducing the paper's Table 2.
func RunTable2() (*Table2, error) {
	states := StandardStates()
	t := &Table2{States: states}
	for _, b := range MacroBenchmarks {
		t.Benches = append(t.Benches, b.Paper)
	}
	for _, st := range states {
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		row := make([]int64, 0, len(MacroBenchmarks))
		for _, b := range MacroBenchmarks {
			ms, err := RunMacro(sys, b.Selector)
			if err != nil {
				sys.Shutdown()
				return nil, fmt.Errorf("bench: %s/%s: %w", st.Name, b.Selector, err)
			}
			row = append(row, ms)
		}
		t.Ms = append(t.Ms, row)
		sys.Shutdown()
	}
	return t, nil
}

// Normalized returns each state's times divided by the baseline row
// (Figure 2's series).
func (t *Table2) Normalized() [][]float64 {
	out := make([][]float64, len(t.Ms))
	for i, row := range t.Ms {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			base := t.Ms[0][j]
			if base == 0 {
				base = 1
			}
			out[i][j] = float64(v) / float64(base)
		}
	}
	return out
}

// Overheads answers, per non-baseline state, the (worst, average)
// fractional overhead versus the baseline — the numbers §4 quotes
// ("the architectural changes cost less than 15% in the worst case",
// "an additional 30% of overhead... in the worst case" for idle, "65%
// in the worst case, about 40% on average" for busy).
func (t *Table2) Overheads() map[string]struct{ Worst, Avg float64 } {
	norm := t.Normalized()
	out := map[string]struct{ Worst, Avg float64 }{}
	for i := 1; i < len(norm); i++ {
		worst, sum := 0.0, 0.0
		for _, v := range norm[i] {
			over := v - 1
			if over > worst {
				worst = over
			}
			sum += over
		}
		out[t.States[i].Name] = struct{ Worst, Avg float64 }{
			Worst: worst,
			Avg:   sum / float64(len(norm[i])),
		}
	}
	return out
}
