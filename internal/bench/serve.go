package bench

import (
	"fmt"
	"strings"
	"time"

	"mst/internal/core"
	"mst/internal/serve"
	"mst/internal/serve/loadgen"
	"mst/internal/trace"
)

// The msserve benchmark (the `serve` section of msbench -json): one
// fixed open-loop schedule against the multi-tenant image server at
// 1/2/4/8 executors, plus a parallel-host equivalence row. Every column
// is virtual-time derived, so the rows ride the exact regression gate
// and the determinism fingerprint; host wall time is zeroed in the
// fingerprint like every other host number.

const (
	serveBenchTenants  = 8
	serveBenchRequests = 320
	serveBenchGapTicks = 700
	serveBenchSeed     = 1988
)

// serveExecCounts are the front-end sizes measured. The offered rate is
// fixed, so the sweep shows admission control shedding at 1 executor
// and latency collapsing as executors absorb the conflict classes.
var serveExecCounts = []int{1, 2, 4, 8}

// ServeRow is one front-end configuration's results.
type ServeRow struct {
	Executors     int                `json:"executors"`
	Parallel      bool               `json:"parallel"`
	Offered       int                `json:"offered"`
	Admitted      int                `json:"admitted"`
	Rejected      int                `json:"rejected"`
	RejectedShare int                `json:"rejected_share"`
	Completed     int                `json:"completed"`
	Errors        int                `json:"errors"`
	MakespanTicks int64              `json:"makespan_ticks"`
	ThroughputRPS float64            `json:"throughput_rps"` // virtual req/s, derived
	Latency       trace.HistSnapshot `json:"latency"`
	Wait          trace.HistSnapshot `json:"wait"`
	Service       trace.HistSnapshot `json:"service"`
	HostNS        int64              `json:"host_ns"`
}

// ServeBenchReport is the full serve section.
type ServeBenchReport struct {
	Tenants      int        `json:"tenants"`
	Requests     int        `json:"requests"`
	MeanGapTicks int64      `json:"mean_gap_ticks"`
	Seed         uint64     `json:"seed"`
	QueueDepth   int        `json:"queue_depth"`
	TenantShare  int        `json:"tenant_share"`
	Rows         []ServeRow `json:"rows"`
	// ParallelMatchesDet records the early-scheduling equivalence check:
	// the 4-executor schedule served by real goroutines rendered a
	// report identical (modulo the mode banner) to the deterministic
	// driver's. Gated to stay true.
	ParallelMatchesDet bool `json:"parallel_matches_det"`
}

// runServeOnce serves the schedule on a fresh server (sharing the
// booted checkpoint) and flattens the report into a row.
func runServeOnce(cp *core.Checkpoint, executors int, parallel bool, arrivals []loadgen.Arrival) (ServeRow, *serve.Report, error) {
	srv, err := serve.NewServer(serve.Config{
		Tenants:    serveBenchTenants,
		Executors:  executors,
		Parallel:   parallel,
		Checkpoint: cp,
	})
	if err != nil {
		return ServeRow{}, nil, err
	}
	defer srv.Shutdown()
	t0 := time.Now()
	rep, err := srv.Run(arrivals)
	if err != nil {
		return ServeRow{}, nil, fmt.Errorf("bench: serve (executors=%d par=%v): %w", executors, parallel, err)
	}
	row := ServeRow{
		Executors:     executors,
		Parallel:      parallel,
		Offered:       rep.Offered,
		Admitted:      rep.Admitted,
		Rejected:      rep.Rejected,
		RejectedShare: rep.RejectedShare,
		Completed:     rep.Completed,
		Errors:        rep.Errors,
		MakespanTicks: rep.MakespanTicks,
		ThroughputRPS: rep.ThroughputRPS(),
		Latency:       rep.Latency,
		Wait:          rep.Wait,
		Service:       rep.Service,
		HostNS:        time.Since(t0).Nanoseconds(),
	}
	// The summary columns (count/sum/max/percentiles) suffice for the
	// gate; the full bucket vectors would dominate the report size.
	row.Latency.Buckets, row.Wait.Buckets, row.Service.Buckets = nil, nil, nil
	return row, rep, nil
}

// RunServeBench measures the serve section: the executor sweep in
// deterministic mode, then the parallel equivalence row.
func RunServeBench() (*ServeBenchReport, error) {
	cp, err := serve.BootCheckpoint()
	if err != nil {
		return nil, err
	}
	arrivals := loadgen.Schedule(loadgen.Config{
		Seed:         serveBenchSeed,
		Requests:     serveBenchRequests,
		MeanGapTicks: serveBenchGapTicks,
		Tenants:      serveBenchTenants,
		Kinds:        len(serve.Catalog),
		HotTenant:    -1,
	})
	r := &ServeBenchReport{
		Tenants:      serveBenchTenants,
		Requests:     serveBenchRequests,
		MeanGapTicks: serveBenchGapTicks,
		Seed:         serveBenchSeed,
		QueueDepth:   serve.DefaultQueueDepth,
		TenantShare:  serve.DefaultQueueDepth / 2,
	}
	var det4 *serve.Report
	for _, ex := range serveExecCounts {
		row, rep, err := runServeOnce(cp, ex, false, arrivals)
		if err != nil {
			return nil, err
		}
		if ex == 4 {
			det4 = rep
		}
		r.Rows = append(r.Rows, row)
	}
	parRow, parRep, err := runServeOnce(cp, 4, true, arrivals)
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, parRow)
	r.ParallelMatchesDet = strings.Replace(det4.Format(), "(det)", "(parallel)", 1) == parRep.Format()
	return r, nil
}

// Format renders the serve section as the throughput/latency table the
// experiment log quotes.
func (r *ServeBenchReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msserve: %d tenants, %d open-loop requests (mean gap %d ticks, seed %d), queue %d, share %d\n",
		r.Tenants, r.Requests, r.MeanGapTicks, r.Seed, r.QueueDepth, r.TenantShare)
	fmt.Fprintf(&b, "  %-10s %9s %9s %10s %12s %8s %8s %8s %8s\n",
		"executors", "admitted", "rejected", "completed", "throughput", "p50", "p95", "p99", "max")
	for _, row := range r.Rows {
		name := fmt.Sprintf("%d", row.Executors)
		if row.Parallel {
			name += " (par)"
		}
		fmt.Fprintf(&b, "  %-10s %9d %9d %10d %10.1f/s %8d %8d %8d %8d\n",
			name, row.Admitted, row.Rejected, row.Completed, row.ThroughputRPS,
			row.Latency.P50, row.Latency.P95, row.Latency.P99, row.Latency.Max)
	}
	fmt.Fprintf(&b, "  parallel matches det: %v\n", r.ParallelMatchesDet)
	return b.String()
}
