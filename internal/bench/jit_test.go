package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The ablation's headline claim: the template tier clears the gate
// floor on the suite median, every workload actually exercises the
// tier (compiles and compiled-bytecode share), and the interpreter
// control system never touches jit machinery.
func TestJITAblationSpeedupAndCoverage(t *testing.T) {
	r, err := RunJITAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(jitWorkloads) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(jitWorkloads))
	}
	for i, row := range r.Rows {
		if row.Workload != jitWorkloads[i] {
			t.Fatalf("row %d measures %q, want %q", i, row.Workload, jitWorkloads[i])
		}
		if row.VirtualMS == 0 {
			t.Errorf("%s: no virtual time measured", row.Workload)
		}
		if row.Compiles == 0 {
			t.Errorf("%s: tier compiled nothing", row.Workload)
		}
		if row.JITShare <= 0 {
			t.Errorf("%s: no bytecodes ran compiled", row.Workload)
		}
	}
	if r.MedianSpeedup < JITSpeedupFloor {
		t.Errorf("median speedup %.2fx under the %.2fx floor", r.MedianSpeedup, JITSpeedupFloor)
	}
	out := r.Format()
	for _, col := range []string{"workload", "speedup", "compiles", "jit share", "median speedup"} {
		if !strings.Contains(out, col) {
			t.Errorf("format output missing %q:\n%s", col, out)
		}
	}
}

// The ablation's virtual columns are deterministic: two runs agree on
// every virtual time, compile count, deopt count, and bytecode share —
// so the gate may compare them exactly — and the fingerprints of the
// two runs (host fields zeroed) are byte-identical.
func TestJITAblationFingerprintByteDiff(t *testing.T) {
	a, err := RunJITAblation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunJITAblation()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.VirtualMS != rb.VirtualMS || ra.Compiles != rb.Compiles ||
			ra.Deopts != rb.Deopts || ra.JITShare != rb.JITShare {
			t.Errorf("%s: virtual columns diverge between runs:\n%+v\n%+v",
				ra.Workload, ra, rb)
		}
	}
	var fa, fb bytes.Buffer
	if err := Fingerprint(&JSONReport{JIT: a}, &fa); err != nil {
		t.Fatal(err)
	}
	if err := Fingerprint(&JSONReport{JIT: b}, &fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
		t.Errorf("fingerprints differ byte-for-byte:\n%s\nvs\n%s", fa.String(), fb.String())
	}
	// The fingerprint really did zero the host columns: perturbing a
	// host field must not change it.
	a.Rows[0].InterpNS += 12345
	a.MedianSpeedup += 9.9
	var fc bytes.Buffer
	if err := Fingerprint(&JSONReport{JIT: a}, &fc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa.Bytes(), fc.Bytes()) {
		t.Error("fingerprint moved when only host-time fields changed")
	}
}
