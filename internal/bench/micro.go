package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
)

// microSource defines analogues of the McCall *micro* benchmarks (the
// other half of the standard Smalltalk-80 benchmark suite; the paper
// uses only the macros, so these are an extension for calibrating the
// interpreter's primitive operations).
const microSource = `
Object subclass: #MicroBenchmark
	instanceVariableNames: 'ivar'
	category: 'Benchmarks'!

!MicroBenchmark methodsFor: 'running'!
run: aSymbol
	| t0 |
	t0 := self millisecondClockValue.
	self perform: aSymbol.
	^self millisecondClockValue - t0! !

!MicroBenchmark methodsFor: 'micro'!
testAdd
	| s |
	s := 0.
	1 to: 30000 do: [:i | s := s + 1]!
testLoadInstVar
	| s |
	ivar := 17.
	s := 0.
	1 to: 30000 do: [:i | s := ivar]!
testSend
	1 to: 15000 do: [:i | self probe]!
probe
	^nil!
testWhileLoop
	| i |
	i := 0.
	[i < 30000] whileTrue: [i := i + 1]!
testArrayAt
	| a s |
	a := Array new: 100.
	1 to: 100 do: [:i | a at: i put: i].
	s := 0.
	1 to: 300 do: [:k | 1 to: 100 do: [:i | s := s + (a at: i)]]!
testArrayAtPut
	| a |
	a := Array new: 100.
	1 to: 300 do: [:k | 1 to: 100 do: [:i | a at: i put: i]]!
testStringReplace
	| a b |
	a := String new: 200.
	b := String new: 200.
	1 to: 200 do: [:i | b at: i put: $x].
	1 to: 500 do: [:k |
		a replaceFrom: 1 to: 200 with: b startingAt: 1]!
testDictionaryAtPut
	| d |
	d := Dictionary new.
	1 to: 60 do: [:i | d at: i put: i].
	1 to: 100 do: [:k | 1 to: 60 do: [:i | d at: i put: i + k]]!
testCreation
	1 to: 8000 do: [:i | Array new: 8]!
testBlockValue
	| b s |
	b := [:x | x + 1].
	s := 0.
	1 to: 10000 do: [:i | s := b value: s]!
testHanoi
	self hanoi: 12 from: 1 to: 3 via: 2!
hanoi: n from: a to: c via: b
	n = 0 ifTrue: [^self].
	self hanoi: n - 1 from: a to: b via: c.
	self hanoi: n - 1 from: b to: c via: a!
testStringCompare
	| a b s |
	a := 'the quick brown fox jumps over the lazy dog'.
	b := 'the quick brown fox jumps over the lazy dot'.
	s := 0.
	1 to: 2000 do: [:i | (a < b) ifTrue: [s := s + 1]]! !
`

// MicroBenchmarks lists the micro suite in display order.
var MicroBenchmarks = []string{
	"testAdd", "testLoadInstVar", "testSend", "testWhileLoop",
	"testArrayAt", "testArrayAtPut", "testStringReplace",
	"testDictionaryAtPut", "testCreation", "testBlockValue",
	"testHanoi", "testStringCompare",
}

// MicroResult is the micro suite's times under baseline BS and MS, in
// virtual milliseconds.
type MicroResult struct {
	Names    []string
	Baseline []int64
	MS       []int64
}

// RunMicroSuite measures every micro benchmark under baseline BS and
// uniprocessor-competition-free MS, exposing the static cost of the
// multiprocessor support per operation class.
func RunMicroSuite() (*MicroResult, error) {
	r := &MicroResult{Names: MicroBenchmarks}
	for i, cfgFn := range []func() core.Config{core.BaselineConfig, core.DefaultConfig} {
		cfg := cfgFn()
		cfg.ExtraSources = append(cfg.ExtraSources, microSource)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		for _, name := range MicroBenchmarks {
			ms, err := sys.EvaluateInt(fmt.Sprintf("MicroBenchmark new run: #%s", name))
			if err != nil {
				sys.Shutdown()
				return nil, fmt.Errorf("bench: micro %s: %w", name, err)
			}
			if i == 0 {
				r.Baseline = append(r.Baseline, ms)
			} else {
				r.MS = append(r.MS, ms)
			}
		}
		sys.Shutdown()
	}
	return r, nil
}

// Format renders the micro suite comparison.
func (r *MicroResult) Format() string {
	var b strings.Builder
	b.WriteString("Micro benchmarks (extension: the McCall suite's other half):\n")
	b.WriteString("per-operation-class static cost of the multiprocessor support\n\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "benchmark", "baseline", "MS", "overhead")
	for i, name := range r.Names {
		over := float64(r.MS[i])/float64(r.Baseline[i]) - 1
		fmt.Fprintf(&b, "%-22s %10dms %10dms %9.0f%%\n",
			name, r.Baseline[i], r.MS[i], over*100)
	}
	return b.String()
}
