package bench

import (
	"fmt"
	"strings"

	"mst/internal/core"
	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/interp"
)

// ablationBenches is the subset of macro benchmarks the ablations sweep
// (long enough to time reliably, short enough to run many configs).
var ablationBenches = []string{
	"printClassHierarchy", "createInspectorView", "decompileClass",
}

// Ablation is one design-alternative experiment: a set of labelled
// configurations measured on the ablation benchmarks against baseline
// BS, reporting per-benchmark overheads.
type Ablation struct {
	Name    string
	Claim   string // what the paper says
	Labels  []string
	Benches []string
	// Ms[label][bench], with an extra leading row for baseline BS.
	Ms [][]int64
}

type ablationCase struct {
	label  string
	config func() core.Config
	busy   int
}

func runAblation(name, claim string, cases []ablationCase) (*Ablation, error) {
	a := &Ablation{Name: name, Claim: claim, Benches: ablationBenches}
	all := append([]ablationCase{{label: "baseline BS", config: core.BaselineConfig}}, cases...)
	for _, c := range all {
		st := State{Name: c.label, Config: c.config}
		sys, err := NewBenchSystem(st)
		if err != nil {
			return nil, err
		}
		if c.busy > 0 {
			if err := sys.SpawnBusyProcesses(c.busy); err != nil {
				sys.Shutdown()
				return nil, err
			}
		}
		row := make([]int64, 0, len(ablationBenches))
		for _, b := range ablationBenches {
			ms, err := RunMacro(sys, b)
			if err != nil {
				sys.Shutdown()
				return nil, fmt.Errorf("bench: ablation %s/%s/%s: %w", name, c.label, b, err)
			}
			row = append(row, ms)
		}
		sys.Shutdown()
		a.Labels = append(a.Labels, c.label)
		a.Ms = append(a.Ms, row)
	}
	return a, nil
}

// WorstOverhead answers the worst-case fractional overhead of row i
// (skipping the baseline row 0) versus baseline.
func (a *Ablation) WorstOverhead(i int) float64 {
	worst := 0.0
	for j := range a.Benches {
		over := float64(a.Ms[i][j])/float64(a.Ms[0][j]) - 1
		if over > worst {
			worst = over
		}
	}
	return worst
}

// Format renders the ablation as a table plus the worst-case summary.
func (a *Ablation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\nPaper: %s\n\n", a.Name, a.Claim)
	fmt.Fprintf(&b, "%-34s", "Configuration")
	for _, bench := range a.Benches {
		fmt.Fprintf(&b, "%22s", bench)
	}
	fmt.Fprintf(&b, "%12s\n", "worst ovh")
	b.WriteString(strings.Repeat("-", 34+22*len(a.Benches)+12))
	b.WriteString("\n")
	for i, label := range a.Labels {
		fmt.Fprintf(&b, "%-34s", label)
		for j := range a.Benches {
			fmt.Fprintf(&b, "%20dms", a.Ms[i][j])
		}
		if i == 0 {
			fmt.Fprintf(&b, "%12s\n", "—")
		} else {
			fmt.Fprintf(&b, "%11.0f%%\n", a.WorstOverhead(i)*100)
		}
	}
	return b.String()
}

// RunFreeListAblation reproduces the paper's §3.2 free-context-list
// claim: "Replication of the free context list yielded a reduction in
// the worst-case overhead from 160% to 65%."
func RunFreeListAblation() (*Ablation, error) {
	return runAblation(
		"free context list (busy state)",
		"replication reduced worst-case overhead from 160% to 65%",
		[]ablationCase{
			{label: "MS + 4 busy, shared locked list", busy: 4, config: func() core.Config {
				c := core.DefaultConfig()
				c.FreeContexts = interp.FreeCtxSharedLocked
				return c
			}},
			{label: "MS + 4 busy, replicated lists", busy: 4, config: core.DefaultConfig},
		})
}

// RunMethodCacheAblation reproduces the §3.2 method-cache claim: the
// serialized cache made the system run "much too slowly" until it was
// replicated per processor.
func RunMethodCacheAblation() (*Ablation, error) {
	return runAblation(
		"method cache (busy state)",
		"the serialized cache caused the system to run much too slowly; replication solved it",
		[]ablationCase{
			{label: "MS + 4 busy, shared locked cache", busy: 4, config: func() core.Config {
				c := core.DefaultConfig()
				c.MethodCache = interp.CacheSharedLocked
				return c
			}},
			{label: "MS + 4 busy, replicated caches", busy: 4, config: core.DefaultConfig},
		})
}

// RunAllocAblation measures the paper's §4 suggestion: "replication of
// the new-object space should have significant benefits."
func RunAllocAblation() (*Ablation, error) {
	return runAblation(
		"allocation area (busy state)",
		"future work: replicating the new-object space should have significant benefits",
		[]ablationCase{
			{label: "MS + 4 busy, serialized allocation", busy: 4, config: core.DefaultConfig},
			{label: "MS + 4 busy, per-processor areas", busy: 4, config: func() core.Config {
				c := core.DefaultConfig()
				c.Alloc = heap.AllocPerProcessor
				return c
			}},
		})
}

// ScavengeRow is one line of the scavenge experiment.
type ScavengeRow struct {
	Processors  int
	EdenWords   int
	Scavenges   uint64
	ElapsedMS   int64
	GCTimeShare float64 // scavenging time / benchmark elapsed time
}

// RunScavengeExperiment reproduces §3.1's scavenging arithmetic: with a
// fixed allocation-heavy workload per processor, scaling the eden with
// the processor count (the paper's k·s rule) keeps the scavenge count
// roughly constant, and the scavenge time share stays small (paper: ~3%
// of processor time on a uniprocessor).
func RunScavengeExperiment() ([]ScavengeRow, error) {
	const edenPerProc = 8 << 10
	var rows []ScavengeRow
	for k := 1; k <= 5; k++ {
		cfg := core.DefaultConfig()
		cfg.Processors = k
		cfg.EdenWords = edenPerProc * k
		cfg.SurvivorWords = (2 << 10) * k
		cfg.ExtraSources = append(cfg.ExtraSources, benchmarkSource)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		// k-1 busy allocators plus the measured allocation loop: total
		// allocation pressure scales with k, eden scales with k.
		if err := sys.SpawnBusyProcesses(k - 1); err != nil {
			sys.Shutdown()
			return nil, err
		}
		before := sys.Stats().Heap
		// An interactive-style mix: mostly computation and sends, an
		// allocation every few iterations (the paper notes allocation
		// is "comparatively infrequent" in the interpreter).
		elapsed, err := sys.EvaluateInt(
			"| t0 s | t0 := self millisecondClockValue. s := 0. " +
				"1 to: 30000 do: [:i | s := s + (i bitAnd: 255). " +
				"i \\\\ 10 = 0 ifTrue: [(Array new: 8) at: 1 put: i]]. " +
				"self millisecondClockValue - t0")
		if err != nil {
			sys.Shutdown()
			return nil, err
		}
		after := sys.Stats().Heap
		share := 0.0
		if elapsed > 0 {
			share = float64((after.ScavengeTime-before.ScavengeTime)/firefly.TicksPerMS) / float64(elapsed)
		}
		rows = append(rows, ScavengeRow{
			Processors:  k,
			EdenWords:   cfg.EdenWords,
			Scavenges:   after.Scavenges - before.Scavenges,
			ElapsedMS:   elapsed,
			GCTimeShare: share,
		})
		sys.Shutdown()
	}
	return rows, nil
}

// FormatScavenge renders the scavenge experiment.
func FormatScavenge(rows []ScavengeRow) string {
	var b strings.Builder
	b.WriteString("Scavenge experiment (paper §3.1): eden scaled as k·s with k processors\n")
	b.WriteString("(k-1 busy allocators + a fixed allocation loop; paper: scavenge\n")
	b.WriteString(" frequency stays constant, scavenging ≈3% of time on a uniprocessor)\n\n")
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s\n",
		"procs", "eden(words)", "scavenges", "elapsed", "gc share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12d %12d %10dms %11.1f%%\n",
			r.Processors, r.EdenWords, r.Scavenges, r.ElapsedMS, r.GCTimeShare*100)
	}
	return b.String()
}
