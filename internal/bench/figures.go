package bench

import (
	"fmt"
	"strings"
)

// shortNames abbreviates benchmark names for table headers, mirroring
// the paper's two-line column headers.
var shortNames = []string{
	"r/w class org", "print def", "print hier", "find calls",
	"find impl", "inspector", "compile", "decompile",
}

// Format renders the measured Table 2 in the paper's orientation:
// states as rows, benchmarks as columns, times in virtual milliseconds.
func (t *Table2) Format() string {
	var b strings.Builder
	b.WriteString("Table 2: Preliminary performance results (reproduction)\n")
	b.WriteString("All times in virtual milliseconds on the simulated Firefly.\n\n")
	fmt.Fprintf(&b, "%-34s", "State")
	for _, n := range shortNames {
		fmt.Fprintf(&b, "%14s", n)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 34+14*len(shortNames)))
	b.WriteString("\n")
	for i, st := range t.States {
		fmt.Fprintf(&b, "%-34s", st.Paper)
		for _, v := range t.Ms[i] {
			fmt.Fprintf(&b, "%14d", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure2 renders Figure 2: per-benchmark times normalized to the
// baseline system, as numbers and ASCII bars.
func (t *Table2) FormatFigure2() string {
	norm := t.Normalized()
	var b strings.Builder
	b.WriteString("Figure 2: Preliminary overhead measurements — normalized\n")
	b.WriteString("(each benchmark's time divided by the baseline BS time)\n\n")
	for j, bench := range t.Benches {
		fmt.Fprintf(&b, "%s\n", bench)
		for i, st := range t.States {
			v := norm[i][j]
			bar := strings.Repeat("#", int(v*24+0.5))
			fmt.Fprintf(&b, "  %-14s %5.2f  %s\n", st.Name, v, bar)
		}
		b.WriteString("\n")
	}
	ov := t.Overheads()
	b.WriteString("Overheads versus baseline (paper §4 claims in brackets):\n")
	if o, ok := ov["ms"]; ok {
		fmt.Fprintf(&b, "  MS static overhead:       worst %4.0f%%  avg %4.0f%%   [paper: <15%% worst]\n",
			o.Worst*100, o.Avg*100)
	}
	if o, ok := ov["ms-idle"]; ok {
		fmt.Fprintf(&b, "  four idle Processes:      worst %4.0f%%  avg %4.0f%%   [paper: ≤ +30%% over MS]\n",
			o.Worst*100, o.Avg*100)
	}
	if o, ok := ov["ms-busy"]; ok {
		fmt.Fprintf(&b, "  four busy Processes:      worst %4.0f%%  avg %4.0f%%   [paper: 65%% worst, ~40%% avg]\n",
			o.Worst*100, o.Avg*100)
	}
	return b.String()
}

// FormatTable3 renders Table 3 — the strategy/application matrix — with
// pointers to the modules and the ablation that measures each row.
func FormatTable3() string {
	return `Table 3: Applications of the three strategies (reproduction)

Serialization                 Replication                  Reorganization
-----------------------------------------------------------------------------
allocation                    interpretation               active process
  (heap: alloc lock;            (interp: one Interp per      (interp/sched:
   ablation: -ablation alloc)    virtual processor)           thisProcess and
garbage collection            method caches                  canRun: primitives;
  (heap: stop-the-world         (interp: per-processor        running Processes
   scavenger;                    caches; ablation:            stay on the ready
   -ablation scavenge)           -ablation methodcache)       queue)
entry tables                  free contexts
  (heap: entry-table lock       (interp: per-processor
   on store checks)              free lists; ablation:
scheduling                       -ablation freelist)
  (interp: single ready
   queue under one lock)
I/O queues
  (display: output queue,
   input sensor locks)
`
}
