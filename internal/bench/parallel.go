package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"mst/internal/core"
)

// The parallel host sweep (msbench -parallel): the same fixed workload
// — a pool of sweep-hand-style BusyWorkers splitting a constant number
// of steps — run at increasing processor counts, once under the
// deterministic baton driver and once with real goroutine processors,
// measuring host wall-clock time. Virtual time answers the paper's
// questions; this sweep answers the host's: does giving the simulated
// processors real cores make the simulation itself faster? Speedup is
// bounded by runtime.NumCPU() — on a single-core host the parallel
// mode can only break even minus synchronization overhead, and the
// report says so rather than pretending otherwise.

// parallelTotalSteps is the constant amount of work split across the
// workers, chosen so one run takes a few hundred host milliseconds —
// long enough to dwarf scheduler noise, short enough for CI.
const parallelTotalSteps = 20000

// ParallelRow is one processor count's measurements.
type ParallelRow struct {
	Procs     int     `json:"procs"`
	Workers   int     `json:"workers"`
	Value     int64   `json:"value"`      // workload checksum; must match Det
	VirtualMS int64   `json:"virtual_ms"` // parallel run's virtual time (schedule-dependent)
	DetWallNS int64   `json:"det_wall_ns"`
	ParWallNS int64   `json:"par_wall_ns"`
	Speedup   float64 `json:"speedup"` // parallel wall at 1 proc / parallel wall here
}

// ParallelReport is the full sweep.
type ParallelReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	TotalSteps int           `json:"total_steps"`
	Rows       []ParallelRow `json:"rows"`
	Note       string        `json:"note,omitempty"`
}

// parallelSweepSource defines the sweep's worker: a bounded BusyWorker
// run that deposits a per-worker token in its own Array slot and
// signals. All per-worker state travels through instance variables set
// before the fork — the forked block must not capture temps from an
// enclosing block activation (blocks here have BlueBook semantics:
// contexts are recycled on return, so only the BusyWorker-spawn shape,
// forking from a method context, is safe).
const parallelSweepSource = `
Object subclass: #SweepWorker
	instanceVariableNames: 'steps slot results done'
	category: 'Benchmarks'!

!SweepWorker class methodsFor: 'instance creation'!
steps: n slot: k results: res signal: sem
	| w |
	w := self new.
	w setSteps: n slot: k results: res signal: sem.
	[w run] fork.
	^w! !

!SweepWorker methodsFor: 'running'!
setSteps: n slot: k results: res signal: sem
	steps := n. slot := k. results := res. done := sem!
run
	| w |
	w := BusyWorker new.
	w setTicks.
	1 to: steps do: [:i | w step].
	results at: slot put: (w nudge: slot * 1000).
	done signal! !
`

// parallelWorkload forks workers SweepWorkers, waits for all of them,
// and sums their tokens. The sum is independent of scheduling, so the
// deterministic and parallel runs must agree on it exactly.
func parallelWorkload(workers, steps int) string {
	return fmt.Sprintf(`| done res total |
done := Semaphore new.
res := Array new: %d.
1 to: %d do: [:k | SweepWorker steps: %d slot: k results: res signal: done].
1 to: %d do: [:i | done wait].
total := 0.
1 to: %d do: [:k | total := total + (res at: k)].
total`, workers, workers, steps, workers, workers)
}

// parallelWorkloadValue is the sum the workload must produce for a
// given worker count: sum over k of k*1000 + 1.
func parallelWorkloadValue(workers int) int64 {
	return int64(workers)*(int64(workers)+1)/2*1000 + int64(workers)
}

// runParallelOnce boots one system and times the workload.
func runParallelOnce(procs, workers, steps int, parallel bool) (val int64, virtualMS int64, wall int64, err error) {
	cfg := core.DefaultConfig()
	cfg.Processors = procs
	cfg.Parallel = parallel
	cfg.ExtraSources = append(cfg.ExtraSources, parallelSweepSource)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bench: parallel boot (procs=%d parallel=%v): %w", procs, parallel, err)
	}
	defer sys.Shutdown()
	t0 := time.Now()
	val, err = sys.EvaluateInt(parallelWorkload(workers, steps))
	wall = time.Since(t0).Nanoseconds()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bench: parallel workload (procs=%d parallel=%v): %w", procs, parallel, err)
	}
	sys.VM.H.CheckInvariants()
	if errs := sys.VM.Errors(); len(errs) != 0 {
		return 0, 0, 0, fmt.Errorf("bench: parallel run (procs=%d parallel=%v): VM errors: %v", procs, parallel, errs)
	}
	return val, int64(sys.VirtualTime()) / 1000, wall, nil
}

// sweepProcCounts returns the processor counts to measure: 1, 2, 4,
// then GOMAXPROCS if larger. The small counts always run so the
// parallel machinery is exercised even on small hosts.
func sweepProcCounts() []int {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		counts = append(counts, g)
	}
	return counts
}

// RunParallelSweep measures the sweep. Each row cross-checks the
// parallel run's workload value against the deterministic run's (and
// both against the closed form) — a wrong interleaving shows up as a
// wrong sum, not just a slow one.
func RunParallelSweep() (*ParallelReport, error) {
	r := &ParallelReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TotalSteps: parallelTotalSteps,
	}
	if r.NumCPU == 1 {
		r.Note = "single-CPU host: goroutine processors time-share one core, so speedup ~1.0 is the physical ceiling"
	}
	var base int64
	for _, procs := range sweepProcCounts() {
		workers := procs
		steps := parallelTotalSteps / workers
		want := parallelWorkloadValue(workers)

		detVal, _, detWall, err := runParallelOnce(procs, workers, steps, false)
		if err != nil {
			return nil, err
		}
		parVal, virtMS, parWall, err := runParallelOnce(procs, workers, steps, true)
		if err != nil {
			return nil, err
		}
		if detVal != want || parVal != want {
			return nil, fmt.Errorf("bench: parallel sweep procs=%d: workload sum deterministic=%d parallel=%d want=%d",
				procs, detVal, parVal, want)
		}
		if base == 0 {
			base = parWall
		}
		row := ParallelRow{
			Procs:     procs,
			Workers:   workers,
			Value:     parVal,
			VirtualMS: virtMS,
			DetWallNS: detWall,
			ParWallNS: parWall,
		}
		if parWall > 0 {
			row.Speedup = float64(base) / float64(parWall)
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// FormatParallel renders the sweep for terminal output.
func FormatParallel(r *ParallelReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel host sweep: %d BusyWorker steps split across N workers on N processors\n",
		r.TotalSteps)
	fmt.Fprintf(&b, "(host: %d CPU, GOMAXPROCS %d)\n\n", r.NumCPU, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%6s %8s %12s %12s %12s %8s\n",
		"procs", "workers", "det wall ms", "par wall ms", "virtual ms", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %8d %12.1f %12.1f %12d %7.2fx\n",
			row.Procs, row.Workers,
			float64(row.DetWallNS)/1e6, float64(row.ParWallNS)/1e6,
			row.VirtualMS, row.Speedup)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "\nnote: %s\n", r.Note)
	}
	return b.String()
}
