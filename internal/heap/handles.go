package heap

import (
	"mst/internal/firefly"
	"mst/internal/object"
)

// A handlePool is a per-processor stack of GC-protected oops. The
// scavenger visits every live handle slot and updates it when the object
// moves, so native (Go) code can hold references across operations that
// may scavenge. Pools are per processor because processors interleave:
// one processor's scope must not pop another's handles.
type handlePool struct {
	slots []object.OOP
}

func (hp *handlePool) add(o object.OOP) int {
	hp.slots = append(hp.slots, o)
	return len(hp.slots) - 1
}

func (hp *handlePool) get(i int) object.OOP    { return hp.slots[i] }
func (hp *handlePool) set(i int, o object.OOP) { hp.slots[i] = o }
func (hp *handlePool) release(i int)           { hp.slots = hp.slots[:i] }
func (hp *handlePool) truncate(n int)          { hp.slots = hp.slots[:n] }

// HandleScope protects a group of oops on one processor for the duration
// of a native operation. Scopes nest in LIFO order per processor.
type HandleScope struct {
	hp   *handlePool
	base int
}

// Handles opens a handle scope on processor p. Always pair with Close:
//
//	hs := h.Handles(p)
//	defer hs.Close()
//	obj := hs.Add(obj)          // returns a Handle
//	...allocate (may scavenge)...
//	use obj.Get()
func (h *Heap) Handles(p *firefly.Proc) *HandleScope {
	id := 0
	if p != nil {
		id = p.ID() // nil means bootstrap: no GC possible, pool 0 is fine
	}
	hp := h.handlePools[id]
	return &HandleScope{hp: hp, base: len(hp.slots)}
}

// Add protects o and returns its handle.
func (s *HandleScope) Add(o object.OOP) Handle {
	return Handle{hp: s.hp, idx: s.hp.add(o)}
}

// Close releases every handle opened in this scope.
func (s *HandleScope) Close() { s.hp.truncate(s.base) }

// Handle is one protected slot; Get always returns the current (possibly
// moved) oop.
type Handle struct {
	hp  *handlePool
	idx int
}

// Get returns the protected oop, updated across scavenges.
func (h Handle) Get() object.OOP { return h.hp.get(h.idx) }

// Set replaces the protected oop.
func (h Handle) Set(o object.OOP) { h.hp.set(h.idx, o) }
