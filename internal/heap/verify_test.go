package heap

import (
	"strings"
	"testing"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/sanitize"
)

// Fault-injection tests for the write-barrier verifier against the
// parallel scavenger's heap shape: survivors live in per-worker copy
// buffers with filler-capped gaps between them, so the verifier walks
// the survivor space and admits only real object starts. A bare range
// check (the verifier's original form, which assumed the serial
// scavenger's single contiguous copy cursor) would bless a pointer
// into a gap or into the middle of an object; these tests prove the
// walked form catches both, plus a remembered-set omission.

// parSanHeap runs fn on processor 0 of a four-processor machine with
// the parallel scavenger enabled and a sanitizer attached.
func parSanHeap(t *testing.T, fn func(h *Heap, p *firefly.Proc)) *sanitize.Checker {
	t.Helper()
	cfg := fuzzConfig()
	cfg.ParScavenge = true
	m := firefly.New(4, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	m.Start(0, func(p *firefly.Proc) { fn(h, p) })
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("machine stopped with %v", r)
	}
	return san
}

// seedSurvivors builds enough rooted young objects that a parallel
// scavenge spreads copies across every worker's buffer, then scavenges
// once. Returns the roots (now survivor-space objects).
func seedSurvivors(h *Heap, p *firefly.Proc, roots *[]object.OOP) {
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range *roots {
			visit(&(*roots)[i])
		}
	})
	for i := 0; i < 100; i++ {
		o := h.Allocate(p, object.Nil, 4, object.FmtPointers)
		h.StoreNoCheck(o, 0, object.FromInt(int64(i)))
		*roots = append(*roots, o)
	}
	h.Scavenge(p)
}

// findFillerGap locates a retired copy-buffer filler in the live
// survivor space.
func findFillerGap(h *Heap) (uint64, bool) {
	live := h.surv[h.past]
	for a := live.base; a < live.next; {
		if h.isScavFiller(a) {
			return a, true
		}
		a += uint64(object.Header(h.mem[a]).SizeWords())
	}
	return 0, false
}

func barrierViolations(san *sanitize.Checker, substr string) int {
	n := 0
	for _, v := range san.Violations() {
		if v.Kind == sanitize.KindWriteBarrier && strings.Contains(v.Detail, substr) {
			n++
		}
	}
	return n
}

// An old object pointing into a copy-buffer gap (where a bare range
// check would see "valid new space") must be flagged as a dangling
// reference.
func TestVerifierCatchesPointerIntoCopyBufferGap(t *testing.T) {
	san := parSanHeap(t, func(h *Heap, p *firefly.Proc) {
		var roots []object.OOP
		seedSurvivors(h, p, &roots)
		gap, ok := findFillerGap(h)
		if !ok {
			t.Fatal("no copy-buffer filler in survivor space; workload too small")
		}
		old := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		// FAULT: a pointer into the filler gap, planted behind the
		// barrier's back (test-only reach into the representation).
		h.mem[old.Addr()+object.HeaderWords] = uint64(object.FromAddr(gap))
		h.verifyWriteBarrier(p)
	})
	if barrierViolations(san, "reclaimed new space") == 0 {
		t.Fatalf("pointer into a copy-buffer gap not detected:\n%s", san.Report())
	}
}

// A corrupted forwarding pointer shows up as an old object referencing
// the middle of a survivor object — a new-space address that is not an
// object start. The verifier must reject it.
func TestVerifierCatchesCorruptedForwardingPointer(t *testing.T) {
	san := parSanHeap(t, func(h *Heap, p *firefly.Proc) {
		var roots []object.OOP
		seedSurvivors(h, p, &roots)
		old := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.Store(p, old, 0, roots[0])
		// FAULT: as if a racing worker had published a forwarding
		// pointer off by a word — the referent is now mid-object.
		h.mem[old.Addr()+object.HeaderWords] = uint64(object.FromAddr(roots[0].Addr() + 2))
		h.verifyWriteBarrier(p)
	})
	if barrierViolations(san, "reclaimed new space") == 0 {
		t.Fatalf("corrupted forwarding pointer not detected:\n%s", san.Report())
	}
}

// An old object that references new space but is missing from the
// entry table (a remembered-set omission — e.g. a worker losing a kept
// entry while the sets are merged) must be flagged.
func TestVerifierCatchesRememberedSetOmission(t *testing.T) {
	san := parSanHeap(t, func(h *Heap, p *firefly.Proc) {
		var roots []object.OOP
		seedSurvivors(h, p, &roots)
		old := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.Store(p, old, 0, roots[0])
		h.Scavenge(p)
		// FAULT: drop the entry from the table, keeping the header bit
		// and the old→new reference.
		kept := h.remembered[:0]
		for _, o := range h.remembered {
			if o != old {
				kept = append(kept, o)
			}
		}
		if len(kept) == len(h.remembered) {
			t.Fatal("old object never entered the entry table; bad setup")
		}
		h.remembered = kept
		h.verifyWriteBarrier(p)
	})
	if barrierViolations(san, "is not in the entry table") == 0 {
		t.Fatalf("remembered-set omission not detected:\n%s", san.Report())
	}
	if barrierViolations(san, "disagrees") == 0 {
		t.Fatalf("header-bit/table disagreement not reported:\n%s", san.Report())
	}
}

// The same workload with no fault injected is verifier-clean: the
// walked survivor space (fillers and all) produces no false positives.
func TestVerifierCleanOnParallelScavengeHeap(t *testing.T) {
	san := parSanHeap(t, func(h *Heap, p *firefly.Proc) {
		var roots []object.OOP
		seedSurvivors(h, p, &roots)
		old := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.Store(p, old, 0, roots[0])
		h.Scavenge(p)
		h.CheckInvariants()
	})
	if vs := san.Violations(); len(vs) != 0 {
		t.Fatalf("clean parallel-scavenge workload reported violations:\n%s", san.Report())
	}
}
