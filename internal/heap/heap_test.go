package heap

import (
	"testing"

	"mst/internal/firefly"
	"mst/internal/object"
)

// testHeap builds a small heap and runs fn on a one-processor machine.
func testHeap(t *testing.T, cfg Config, fn func(h *Heap, p *firefly.Proc)) {
	t.Helper()
	m := firefly.New(1, firefly.DefaultCosts())
	h := New(m, cfg)
	m.Start(0, func(p *firefly.Proc) { fn(h, p) })
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("machine stopped with %v", r)
	}
}

func smallConfig() Config {
	return Config{
		OldWords:      8192,
		EdenWords:     1024,
		SurvivorWords: 512,
		TenureAge:     2,
		Policy:        AllocSerialized,
		LocksEnabled:  true,
	}
}

func TestAllocateAndAccessPointers(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		o := h.Allocate(p, object.Nil, 3, object.FmtPointers)
		if h.FieldCount(o) != 3 {
			t.Errorf("FieldCount = %d, want 3", h.FieldCount(o))
		}
		for i := 0; i < 3; i++ {
			if h.Fetch(o, i) != object.Nil {
				t.Errorf("field %d not nil", i)
			}
		}
		h.Store(p, o, 1, object.FromInt(99))
		if got := h.Fetch(o, 1); got.Int() != 99 {
			t.Errorf("field 1 = %v", got)
		}
		if h.ClassOf(o) != object.Nil {
			t.Errorf("class = %v", h.ClassOf(o))
		}
	})
}

func TestAllocateBytes(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		for _, n := range []int{0, 1, 7, 8, 9, 16, 23, 100} {
			o := h.Allocate(p, object.Nil, n, object.FmtBytes)
			if h.ByteLen(o) != n {
				t.Fatalf("ByteLen = %d, want %d", h.ByteLen(o), n)
			}
			for i := 0; i < n; i++ {
				h.StoreByte(o, i, byte(i*7))
			}
			for i := 0; i < n; i++ {
				if h.FetchByte(o, i) != byte(i*7) {
					t.Fatalf("byte %d wrong", i)
				}
			}
		}
		o := h.Allocate(p, object.Nil, 5, object.FmtBytes)
		h.WriteBytes(o, []byte("hello"))
		if string(h.Bytes(o)) != "hello" {
			t.Fatalf("Bytes = %q", h.Bytes(o))
		}
	})
}

func TestAllocateWords(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		o := h.Allocate(p, object.Nil, 2, object.FmtWords)
		h.StoreWord(o, 0, 0xDEADBEEF)
		h.StoreWord(o, 1, ^uint64(0))
		if h.FetchWord(o, 0) != 0xDEADBEEF || h.FetchWord(o, 1) != ^uint64(0) {
			t.Fatal("raw words corrupted")
		}
	})
}

func TestScavengePreservesReachableGraph(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		// Build a linked list of 10 nodes, each [value, next].
		root = object.Nil
		for i := 0; i < 10; i++ {
			hs := h.Handles(p)
			node := h.Allocate(p, object.Nil, 2, object.FmtPointers)
			h.StoreNoCheck(node, 0, object.FromInt(int64(i)))
			h.Store(p, node, 1, root)
			root = node
			hs.Close()
		}
		before := h.Stats().Scavenges
		h.Scavenge(p)
		if h.Stats().Scavenges != before+1 {
			t.Fatal("scavenge not counted")
		}
		// Walk the list: must still hold 9..0.
		n := root
		for i := 9; i >= 0; i-- {
			if n == object.Nil {
				t.Fatalf("list truncated at %d", i)
			}
			if got := h.Fetch(n, 0).Int(); got != int64(i) {
				t.Fatalf("node value = %d, want %d", got, i)
			}
			n = h.Fetch(n, 1)
		}
		if n != object.Nil {
			t.Fatal("list has extra nodes")
		}
		h.CheckInvariants()
	})
}

func TestScavengeCollectsGarbage(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		root = h.Allocate(p, object.Nil, 2, object.FmtPointers)
		// Allocate plenty of garbage.
		for i := 0; i < 50; i++ {
			h.Allocate(p, object.Nil, 4, object.FmtPointers)
		}
		h.Scavenge(p)
		s := h.Stats()
		// Only the root object (4 words) should have survived.
		if s.LastSurvivors > 8 {
			t.Fatalf("survivors = %d words, want tiny", s.LastSurvivors)
		}
	})
}

func TestEdenExhaustionTriggersScavenge(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		for i := 0; i < 200; i++ { // 200 * 8 words >> eden of 1024
			h.Allocate(p, object.Nil, 6, object.FmtPointers)
		}
		if h.Stats().Scavenges == 0 {
			t.Fatal("no scavenge despite eden exhaustion")
		}
	})
}

func TestHandlesSurviveScavenge(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		hs := h.Handles(p)
		defer hs.Close()
		o := h.Allocate(p, object.Nil, 1, object.FmtPointers)
		h.StoreNoCheck(o, 0, object.FromInt(77))
		hd := hs.Add(o)
		h.Scavenge(p)
		moved := hd.Get()
		if moved == o {
			t.Fatal("object did not move (test assumes it was in eden)")
		}
		if h.Fetch(moved, 0).Int() != 77 {
			t.Fatal("contents lost after move")
		}
	})
}

func TestTenuringAfterTenureAge(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		root = h.Allocate(p, object.Nil, 2, object.FmtPointers)
		for i := 0; i < 3; i++ { // TenureAge is 2
			h.Scavenge(p)
		}
		if !h.InOldSpace(root) {
			t.Fatalf("object not tenured after %d scavenges", 3)
		}
		if h.Stats().TenuredObjects == 0 {
			t.Fatal("tenure not counted")
		}
	})
}

func TestRememberedSetTracksOldToNew(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var old object.OOP
		h.AddRoot(&old)
		old = h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		if !h.InOldSpace(old) {
			t.Fatal("AllocateNoGC did not allocate in old space")
		}
		// Store a new-space pointer into the old object: must be
		// remembered, and the young object must survive a scavenge
		// even though the only reference is from old space.
		young := h.Allocate(p, object.Nil, 1, object.FmtPointers)
		h.StoreNoCheck(young, 0, object.FromInt(123))
		h.Store(p, old, 0, young)
		if h.RememberedCount() != 1 {
			t.Fatalf("remembered = %d, want 1", h.RememberedCount())
		}
		// A second store must not duplicate the entry.
		h.Store(p, old, 1, young)
		if h.RememberedCount() != 1 {
			t.Fatalf("remembered = %d after second store, want 1", h.RememberedCount())
		}
		h.Scavenge(p)
		got := h.Fetch(old, 0)
		if !h.InNewSpace(got) {
			t.Fatal("young object not in new space after scavenge")
		}
		if h.Fetch(got, 0).Int() != 123 {
			t.Fatal("young object contents lost")
		}
	})
}

func TestRememberedSetShrinksWhenRefsDie(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var old object.OOP
		h.AddRoot(&old)
		old = h.AllocateNoGC(object.Nil, 1, object.FmtPointers)
		young := h.Allocate(p, object.Nil, 0, object.FmtPointers)
		h.Store(p, old, 0, young)
		if h.RememberedCount() != 1 {
			t.Fatal("not remembered")
		}
		// Overwrite the reference; after the next scavenge the old
		// object no longer refers to new space and must leave the set.
		h.Store(p, old, 0, object.Nil)
		h.Scavenge(p)
		if h.RememberedCount() != 0 {
			t.Fatalf("remembered = %d after refs died, want 0", h.RememberedCount())
		}
		if h.Header(old).Remembered() {
			t.Fatal("remembered bit still set")
		}
	})
}

func TestSmallIntStoresAreNotRemembered(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		old := h.AllocateNoGC(object.Nil, 1, object.FmtPointers)
		h.Store(p, old, 0, object.FromInt(5))
		if h.RememberedCount() != 0 {
			t.Fatal("SmallInteger store entered the entry table")
		}
	})
}

func TestIdentityHashStableAcrossScavenge(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		hs := h.Handles(p)
		defer hs.Close()
		o := h.Allocate(p, object.Nil, 1, object.FmtPointers)
		hd := hs.Add(o)
		h1 := h.IdentityHash(o)
		if h1 == 0 {
			t.Fatal("hash 0 assigned")
		}
		if h.IdentityHash(o) != h1 {
			t.Fatal("hash changed on re-read")
		}
		h.Scavenge(p)
		if h.IdentityHash(hd.Get()) != h1 {
			t.Fatal("hash changed after move")
		}
	})
}

func TestIdentityHashDistinct(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		a := h.AllocateNoGC(object.Nil, 0, object.FmtPointers)
		b := h.AllocateNoGC(object.Nil, 0, object.FmtPointers)
		if h.IdentityHash(a) == h.IdentityHash(b) {
			t.Fatal("hashes collide immediately")
		}
	})
}

func TestLargeObjectsGoToOldSpace(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		// survivor = 512, so >= 128 words is "large".
		o := h.Allocate(p, object.Nil, 200, object.FmtPointers)
		if !h.InOldSpace(o) {
			t.Fatal("large object not in old space")
		}
		if h.FieldCount(o) != 200 {
			t.Fatalf("FieldCount = %d", h.FieldCount(o))
		}
	})
}

func TestBytesRoundTripAcrossScavenge(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		hs := h.Handles(p)
		defer hs.Close()
		o := h.Allocate(p, object.Nil, 13, object.FmtBytes)
		h.WriteBytes(o, []byte("hello, world!"))
		hd := hs.Add(o)
		h.Scavenge(p)
		if got := string(h.Bytes(hd.Get())); got != "hello, world!" {
			t.Fatalf("bytes after scavenge = %q", got)
		}
	})
}

func TestTortureGCManyObjects(t *testing.T) {
	cfg := smallConfig()
	cfg.TortureGC = true
	testHeap(t, cfg, func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		root = object.Nil
		// Build a list under constant scavenging; every allocation
		// moves everything.
		for i := 0; i < 30; i++ {
			hs := h.Handles(p)
			node := h.Allocate(p, object.Nil, 2, object.FmtPointers)
			h.StoreNoCheck(node, 0, object.FromInt(int64(i)))
			h.Store(p, node, 1, root)
			root = node
			hs.Close()
		}
		n := root
		for i := 29; i >= 0; i-- {
			if h.Fetch(n, 0).Int() != int64(i) {
				t.Fatalf("node %d corrupted", i)
			}
			n = h.Fetch(n, 1)
		}
		h.CheckInvariants()
		if h.Stats().Scavenges < 30 {
			t.Fatalf("torture mode ran %d scavenges", h.Stats().Scavenges)
		}
	})
}

func TestPerProcessorAllocationPolicy(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = AllocPerProcessor
	m := firefly.New(3, firefly.DefaultCosts())
	h := New(m, cfg)
	roots := make([]object.OOP, 3)
	for i := range roots {
		h.AddRoot(&roots[i])
	}
	for i := 0; i < 3; i++ {
		m.Start(i, func(p *firefly.Proc) {
			for k := 0; k < 100; k++ {
				hs := h.Handles(p)
				node := h.Allocate(p, object.Nil, 2, object.FmtPointers)
				h.StoreNoCheck(node, 0, object.FromInt(int64(k)))
				h.Store(p, node, 1, roots[p.ID()])
				roots[p.ID()] = node
				hs.Close()
				p.CheckYield()
			}
		})
	}
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("machine stopped with %v", r)
	}
	if h.Stats().TLABRefills == 0 {
		t.Fatal("no TLAB refills recorded")
	}
	for i := range roots {
		n := roots[i]
		for k := 99; k >= 0; k-- {
			if h.Fetch(n, 0).Int() != int64(k) {
				t.Fatalf("proc %d node %d corrupted", i, k)
			}
			n = h.Fetch(n, 1)
		}
	}
}

func TestConcurrentAllocationContentionIsEmergent(t *testing.T) {
	// Under the serialized policy many processors allocating must
	// contend on the alloc lock; under per-processor chunks they must
	// contend far less. This is the paper's §4 hypothesis.
	contentions := func(policy AllocPolicy) uint64 {
		cfg := smallConfig()
		cfg.EdenWords = 4096
		cfg.Policy = policy
		m := firefly.New(4, firefly.DefaultCosts())
		m.SetQuantum(20)
		h := New(m, cfg)
		for i := 0; i < 4; i++ {
			m.Start(i, func(p *firefly.Proc) {
				for k := 0; k < 300; k++ {
					h.Allocate(p, object.Nil, 4, object.FmtPointers)
					p.CheckYield()
				}
			})
		}
		m.Run(nil)
		for _, ls := range m.LockStats() {
			if ls.Name == "alloc" {
				return ls.Contentions
			}
		}
		return 0
	}
	serial := contentions(AllocSerialized)
	tlab := contentions(AllocPerProcessor)
	if serial == 0 {
		t.Fatal("no contention under serialized allocation")
	}
	if tlab*2 >= serial {
		t.Fatalf("per-processor contention %d not well below serialized %d", tlab, serial)
	}
}

func TestOOMPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.OldWords = 1024
	testHeap(t, cfg, func(h *Heap, p *firefly.Proc) {
		defer func() {
			if _, ok := recover().(OOMError); !ok {
				t.Error("expected OOMError panic")
			}
		}()
		for i := 0; i < 100; i++ {
			h.AllocateNoGC(object.Nil, 63, object.FmtPointers)
		}
	})
}

func TestRootFuncsAreVisited(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		table := make([]object.OOP, 0, 4)
		h.AddRootFunc(func(visit func(*object.OOP)) {
			for i := range table {
				visit(&table[i])
			}
		})
		o := h.Allocate(p, object.Nil, 1, object.FmtPointers)
		h.StoreNoCheck(o, 0, object.FromInt(31))
		table = append(table, o)
		h.Scavenge(p)
		if table[0] == o {
			t.Fatal("root func slot not updated")
		}
		if h.Fetch(table[0], 0).Int() != 31 {
			t.Fatal("object behind root func lost")
		}
	})
}

func TestPrePostScavengeHooks(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var order []string
		h.OnPreScavenge(func() { order = append(order, "pre") })
		h.OnPostScavenge(func() { order = append(order, "post") })
		h.Scavenge(p)
		if len(order) != 2 || order[0] != "pre" || order[1] != "post" {
			t.Fatalf("hook order = %v", order)
		}
	})
}

func TestScavengeStallsOtherProcessors(t *testing.T) {
	m := firefly.New(2, firefly.DefaultCosts())
	cfg := smallConfig()
	h := New(m, cfg)
	m.Start(0, func(p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		for i := 0; i < 40; i++ {
			root = h.Allocate(p, object.Nil, 40, object.FmtPointers)
			p.CheckYield()
		}
		h.Scavenge(p)
	})
	m.Start(1, func(p *firefly.Proc) {
		for i := 0; i < 5000; i++ {
			p.Advance(3)
			p.CheckYield()
		}
	})
	m.Run(nil)
	if m.Proc(1).Stats().Stall == 0 {
		t.Fatal("processor 1 never stalled for the scavenge")
	}
}

func TestChainedScavengesDeepGraph(t *testing.T) {
	// A binary tree bigger than a survivor space forces tenuring via
	// overflow; the graph must stay intact across repeated scavenges.
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		var build func(depth int) object.OOP
		build = func(depth int) object.OOP {
			if depth == 0 {
				return object.FromInt(int64(depth))
			}
			hs := h.Handles(p)
			defer hs.Close()
			l := hs.Add(build(depth - 1))
			r := hs.Add(build(depth - 1))
			n := h.Allocate(p, object.Nil, 2, object.FmtPointers)
			h.Store(p, n, 0, l.Get())
			h.Store(p, n, 1, r.Get())
			return n
		}
		root = build(7) // 127 nodes * 4 words
		for i := 0; i < 5; i++ {
			h.Scavenge(p)
		}
		var count func(o object.OOP) int
		count = func(o object.OOP) int {
			if o.IsInt() {
				return 0
			}
			return 1 + count(h.Fetch(o, 0)) + count(h.Fetch(o, 1))
		}
		if got := count(root); got != 127 {
			t.Fatalf("tree nodes = %d, want 127", got)
		}
		h.CheckInvariants()
	})
}
