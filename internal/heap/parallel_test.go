package heap

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mst/internal/firefly"
	"mst/internal/object"
)

// TestParallelScavengeRendezvous: with the heap in parallel mode, real
// goroutine processors allocate concurrently out of a tiny eden, so
// scavenges happen while the other processors are genuinely running.
// Each scavenge must stop the world (the rendezvous in Scavenge), keep
// every processor's rooted object alive across the copy, and leave the
// heap structurally sound.
func TestParallelScavengeRendezvous(t *testing.T) {
	testParallelRendezvous(t, false)
}

// The same rendezvous workload with the cooperative parallel scavenger
// engaged: scavenges are triggered by whichever processor fills eden,
// and the parked processors join the copy through the GC-assist
// handoff. Under -race this exercises the claim/publish protocol with
// genuinely concurrent workers.
func TestParallelScavengeRendezvousParScavenge(t *testing.T) {
	testParallelRendezvous(t, true)
}

func testParallelRendezvous(t *testing.T, parScav bool) {
	const procs, iters, fields = 4, 400, 8
	cfg := smallConfig()
	cfg.Parallel = true
	cfg.ParScavenge = parScav
	m := firefly.New(procs, firefly.DefaultCosts())
	h := New(m, cfg)

	// One root slot per processor, updated by the scavenger when the
	// object moves (so re-reading it after a safepoint is the correct
	// discipline, exactly as the interpreter's registers work).
	roots := make([]object.OOP, procs)
	for i := range roots {
		roots[i] = object.Nil
		h.AddRoot(&roots[i])
	}

	var done atomic.Int32
	work := func(p *firefly.Proc) {
		id := p.ID()
		for i := 0; i < iters && !p.Stopped(); i++ {
			o := h.Allocate(p, object.Nil, fields, object.FmtPointers)
			for j := 0; j < fields; j++ {
				h.Store(p, o, j, object.FromInt(int64(id*1_000_000+i*fields+j)))
			}
			roots[id] = o
			p.Advance(5)
			p.CheckYield()
			// A scavenge may have moved the object at the safepoint;
			// the root slot tracks it.
			cur := roots[id]
			for j := 0; j < fields; j++ {
				if got := h.Fetch(cur, j).Int(); got != int64(id*1_000_000+i*fields+j) {
					panic(fmt.Sprintf("proc %d iter %d field %d = %d after scavenge", id, i, j, got))
				}
			}
		}
		done.Add(1)
		for !p.Stopped() {
			p.AdvanceIdle(10)
			p.Yield()
		}
	}
	for i := 0; i < procs; i++ {
		m.Start(i, work)
	}
	m.SetParallel(true)
	if r := m.Run(func() bool { return done.Load() == procs }); r != firefly.StopUntil {
		t.Fatalf("Run returned %v", r)
	}
	if h.Stats().Scavenges == 0 {
		t.Fatal("eden never filled; the rendezvous went unexercised")
	}
	h.CheckInvariants()
	for i := range roots {
		for j := 0; j < fields; j++ {
			if got := h.Fetch(roots[i], j).Int(); got != int64(i*1_000_000+(iters-1)*fields+j) {
				t.Errorf("root %d field %d = %d after final scavenge", i, j, got)
			}
		}
	}
	m.Shutdown()
}
