package heap

import (
	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// Allocate creates a new object of the given class with bodyWords logical
// fields (or raw words) and returns its OOP. Pointer bodies are
// initialized to nil, raw bodies to zero.
//
// Allocation follows the paper: under the serialized policy it is "little
// more than incrementing a pointer" guarded by a spinlock; under the
// per-processor policy it bumps a local chunk, refilling from eden under
// the lock. Allocation MAY SCAVENGE, and scavenging moves objects: the
// caller must re-read any raw oops held in locals from handles or
// registered roots afterwards (class is protected internally).
//
//msvet:heap-writer allocator initialization writes target the freshly carved, still-unpublished words of the new object; no other processor holds its OOP until Allocate returns
//msvet:atomic-excluded the fresh words written here are invisible to every other processor (the bump pointer is published under the allocation lock, which is the release fence)
func (h *Heap) Allocate(p *firefly.Proc, class object.OOP, bodyWords int, f object.Format) object.OOP {
	var words, slack int
	if f == object.FmtBytes {
		// bodyWords is a byte count for byte objects.
		words, slack = object.BodyWordsForBytes(bodyWords)
	} else {
		words, slack = object.BodyWordsForFields(bodyWords)
	}
	total := words + object.HeaderWords

	// Protect class across a possible scavenge inside ensureSpace.
	hp := h.handlePools[p.ID()]
	ch := hp.add(class)

	if h.cfg.TortureGC && !h.inGC {
		h.Scavenge(p)
	}

	addr := h.reserve(p, total)
	class = hp.get(ch)
	hp.release(ch)

	hd := object.MakeHeader(total, f, slack)
	if h.allocBlack(addr) {
		// Old-space allocation while the concurrent marker is active:
		// born black so the sweep never reclaims it (concmark.go).
		hd = hd.SetMarked(true)
	}
	h.mem[addr] = uint64(hd)
	h.mem[addr+1] = uint64(class)
	fill := uint64(0)
	if f == object.FmtPointers {
		fill = uint64(object.Nil)
	}
	for i := addr + object.HeaderWords; i < addr+uint64(total); i++ {
		h.mem[i] = fill
	}

	c := h.m.Costs()
	p.Advance(c.Alloc + c.AllocPerWord*firefly.Time(total))
	sh := &h.allocShards[p.ID()]
	sh.allocations.Add(1)
	sh.allocatedWords.Add(uint64(total))
	if ap := h.alp; ap != nil {
		id := h.allocSiteID(p.ID())
		ap.RecordAlloc(id, int64(total))
		if addr >= h.newBase {
			// Old-space (large-object) allocations are attributed but
			// not tracked through the scavenger.
			h.siteByAddr[addr] = id
		}
	}

	o := object.FromAddr(addr)
	if addr < h.newBase && h.InNewSpace(class) {
		// Rare: object allocated directly in old space with a class
		// still in new space must enter the entry table.
		h.storeCheck(p, o, class)
	}
	return o
}

// AllocateNoGC creates an object that is guaranteed not to trigger a
// scavenge; it is used by genesis before the interpreter exists and
// allocates directly in old space. It panics if old space is full.
//
//msvet:heap-writer genesis/old-space allocator writing freshly carved, unpublished words under the allocation lock
//msvet:atomic-excluded runs during genesis or under the allocation lock on words no other processor can yet reference
func (h *Heap) AllocateNoGC(class object.OOP, bodyWords int, f object.Format) object.OOP {
	var words, slack int
	if f == object.FmtBytes {
		words, slack = object.BodyWordsForBytes(bodyWords)
	} else {
		words, slack = object.BodyWordsForFields(bodyWords)
	}
	total := words + object.HeaderWords
	addr, ok := h.carveOldFree(total)
	if !ok {
		if h.old.free() < total {
			panic(OOMError{NeedWords: total})
		}
		addr = h.old.next
		h.old.next += uint64(total)
	}
	hd := object.MakeHeader(total, f, slack)
	if h.allocBlack(addr) {
		hd = hd.SetMarked(true)
	}
	h.mem[addr] = uint64(hd)
	h.mem[addr+1] = uint64(class)
	fill := uint64(0)
	if f == object.FmtPointers {
		fill = uint64(object.Nil)
	}
	for i := addr + object.HeaderWords; i < addr+uint64(total); i++ {
		h.mem[i] = fill
	}
	h.stats.Allocations++
	h.stats.AllocatedWords += uint64(total)
	return object.FromAddr(addr)
}

// largeObjectWords is the size beyond which objects are allocated
// directly in old space (they would not fit a survivor space anyway).
func (h *Heap) largeObjectWords() int { return h.cfg.SurvivorWords / 4 }

// reserve returns the address of a fresh block of total words, scavenging
// if eden is exhausted.
func (h *Heap) reserve(p *firefly.Proc, total int) uint64 {
	if total >= h.largeObjectWords() {
		return h.reserveOld(p, total)
	}
	if h.cfg.Policy == AllocPerProcessor {
		return h.reserveTLAB(p, total)
	}
	c := h.m.Costs()
	for attempt := 0; ; attempt++ {
		h.allocLock.Acquire(p)
		h.sanAccess(p, "eden")
		if h.eden.free() >= total {
			addr := h.eden.next
			h.eden.next += uint64(total)
			h.allocLock.Release(p)
			return addr
		}
		h.allocLock.Release(p)
		if attempt > 0 {
			// A scavenge just ran and eden still cannot hold the
			// request; treat it as a large object.
			return h.reserveOld(p, total)
		}
		p.Advance(c.Alloc)
		if h.rec != nil {
			h.rec.Emit(trace.KEdenFull, p.ID(), int64(p.Now()), int64(total), 0, "")
		}
		h.Scavenge(p)
	}
}

// reserveTLAB bumps the processor's local chunk, refilling from eden.
func (h *Heap) reserveTLAB(p *firefly.Proc, total int) uint64 {
	t := &h.tlabs[p.ID()]
	if s := h.san; s != nil {
		// A TLAB is a Table-3 replication row: only its owner bumps it.
		s.OnOwnedAccess(p.ID(), p.ID(), int64(p.Now()), "tlab")
	}
	if t.limit-t.next >= uint64(total) {
		addr := t.next
		t.next += uint64(total)
		return addr
	}
	c := h.m.Costs()
	chunk := h.cfg.EdenWords / (8 * len(h.tlabs))
	if chunk < total*2 {
		chunk = total * 2
	}
	chunk &^= 1 // chunks must keep object addresses even
	for attempt := 0; ; attempt++ {
		h.allocLock.Acquire(p)
		h.sanAccess(p, "eden")
		if h.eden.free() >= total {
			n := chunk
			if n > h.eden.free() {
				n = h.eden.free() &^ 1
			}
			t.next = h.eden.next
			t.limit = h.eden.next + uint64(n)
			h.eden.next = t.limit
			h.allocLock.Release(p)
			p.Advance(c.TLABRefill)
			h.allocShards[p.ID()].tlabRefills.Add(1)
			addr := t.next
			t.next += uint64(total)
			return addr
		}
		h.allocLock.Release(p)
		if attempt > 0 {
			return h.reserveOld(p, total)
		}
		if h.rec != nil {
			h.rec.Emit(trace.KEdenFull, p.ID(), int64(p.Now()), int64(total), 0, "")
		}
		h.Scavenge(p)
	}
}

// reserveOld allocates directly in old space (large objects). Under
// ConcMark the sweep's free list is consulted first-fit before the
// bump pointer, so reclaimed old space is reused without compaction.
func (h *Heap) reserveOld(p *firefly.Proc, total int) uint64 {
	h.allocLock.Acquire(p)
	h.sanAccess(p, "old-space")
	if addr, ok := h.carveOldFree(total); ok {
		h.allocLock.Release(p)
		return addr
	}
	if h.old.free() < total {
		h.allocLock.Release(p)
		panic(OOMError{NeedWords: total})
	}
	addr := h.old.next
	h.old.next += uint64(total)
	h.allocLock.Release(p)
	return addr
}

// ResetTLABs invalidates every processor's local chunk (after a scavenge
// emptied eden).
func (h *Heap) resetTLABs() {
	for i := range h.tlabs {
		h.tlabs[i] = tlab{}
	}
}
