package heap

import (
	"sync"

	"mst/internal/object"
)

// The parallel scavenger's grey-object work lists. Each worker owns one
// deque; it pushes and pops at the tail (LIFO, for locality with the
// Cheney copy it just made) while thieves take from the head (FIFO, so
// a steal grabs the oldest — typically largest-subgraph — item). A
// host mutex per deque keeps the implementation simple and obviously
// correct; the deques are short-lived (one stop-the-world window) and
// uncontended except when a worker runs dry, so the lock is not a
// scalability concern at the simulated processor counts (≤ 8). In
// deterministic mode the same structure is driven by a single
// goroutine and the mutex is never contended.
//
// This file deliberately contains no h.mem writes (msvet's heapwrite
// analyzer enforces that): work items carry OOPs and root-slot
// pointers, never raw heap words.

// greyItem is one unit of scavenge work. Exactly one of the two views
// is active: a root-slot item (slot != nil) forwards *slot and updates
// it in place; a grey-object item (slot == nil) scans obj's class word
// and pointer fields.
type greyItem struct {
	obj  object.OOP
	slot *object.OOP
}

// worklist is one worker's grey deque.
type worklist struct {
	//msvet:stw-safe grey-deque lock: the deques exist only while the world is stopped, shared solely among scavenge workers; no mutator can be parked holding it
	mu   sync.Mutex
	head int // index of the oldest unconsumed item
	buf  []greyItem
}

// push appends an item at the tail. Only the owning worker pushes.
func (w *worklist) push(it greyItem) {
	w.mu.Lock()
	w.buf = append(w.buf, it)
	w.mu.Unlock()
}

// pop removes the newest item (tail). Owner only.
func (w *worklist) pop() (greyItem, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head >= len(w.buf) {
		return greyItem{}, false
	}
	it := w.buf[len(w.buf)-1]
	w.buf = w.buf[:len(w.buf)-1]
	if w.head >= len(w.buf) {
		w.head = 0
		w.buf = w.buf[:0]
	}
	return it, true
}

// steal removes the oldest item (head); any worker may call it.
func (w *worklist) steal() (greyItem, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head >= len(w.buf) {
		return greyItem{}, false
	}
	it := w.buf[w.head]
	w.buf[w.head] = greyItem{}
	w.head++
	if w.head >= len(w.buf) {
		w.head = 0
		w.buf = w.buf[:0]
	} else if w.head > 64 && w.head > len(w.buf)/2 {
		// Compact so a long steal run does not pin the whole backing
		// array behind a sliding head.
		n := copy(w.buf, w.buf[w.head:])
		w.buf = w.buf[:n]
		w.head = 0
	}
	return it, true
}

// size returns the current item count.
func (w *worklist) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf) - w.head
}
