package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mst/internal/firefly"
	"mst/internal/object"
)

// buildRandomGraph allocates n objects with pseudo-random shapes and
// wiring (driven by seed), returning the root. Objects mix pointer
// fields (to earlier objects or SmallIntegers) and byte payloads.
func buildRandomGraph(h *Heap, p *firefly.Proc, seed int64, n int) object.OOP {
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]object.OOP, 0, n)
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range nodes {
			visit(&nodes[i])
		}
	})
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			// A byte object.
			size := rng.Intn(24)
			o := h.Allocate(p, object.Nil, size, object.FmtBytes)
			for j := 0; j < size; j++ {
				h.StoreByte(o, j, byte(rng.Intn(256)))
			}
			nodes = append(nodes, o)
			continue
		}
		fields := 1 + rng.Intn(5)
		o := h.Allocate(p, object.Nil, fields, object.FmtPointers)
		for j := 0; j < fields; j++ {
			switch {
			case len(nodes) > 0 && rng.Intn(2) == 0:
				h.Store(p, o, j, nodes[rng.Intn(len(nodes))])
			default:
				h.Store(p, o, j, object.FromInt(int64(rng.Intn(1000))))
			}
		}
		nodes = append(nodes, o)
	}
	// Wire a few random back-edges (cycles).
	for i := 0; i < n/4; i++ {
		a := nodes[rng.Intn(len(nodes))]
		if h.Header(a).Format() != object.FmtPointers {
			continue
		}
		b := nodes[rng.Intn(len(nodes))]
		h.Store(p, a, rng.Intn(h.Header(a).FieldCount()), b)
	}
	root := h.Allocate(p, object.Nil, len(nodes), object.FmtPointers)
	for i, nd := range nodes {
		h.Store(p, root, i, nd)
	}
	nodes = append(nodes[:0], root)
	return root
}

// signature walks the graph from root producing a structural trace that
// is invariant under object motion (field values, byte contents, and
// visit order; identity via discovery index).
func signature(h *Heap, root object.OOP) []int64 {
	index := map[object.OOP]int{}
	var sig []int64
	var walk func(o object.OOP)
	walk = func(o object.OOP) {
		if o.IsInt() {
			sig = append(sig, o.Int())
			return
		}
		if o == object.Nil {
			sig = append(sig, -1)
			return
		}
		if i, seen := index[o]; seen {
			sig = append(sig, -1000-int64(i))
			return
		}
		index[o] = len(index)
		hd := h.Header(o)
		sig = append(sig, int64(hd.SizeWords()), int64(hd.Format()))
		switch hd.Format() {
		case object.FmtBytes:
			for i := 0; i < hd.ByteLen(); i++ {
				sig = append(sig, int64(h.FetchByte(o, i)))
			}
		case object.FmtPointers:
			for i := 0; i < hd.BodyWords(); i++ {
				walk(h.Fetch(o, i))
			}
		}
	}
	walk(root)
	return sig
}

func sigEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyGraphSurvivesCollections: any randomly-shaped object graph
// is structurally identical after scavenges and a full collection.
func TestPropertyGraphSurvivesCollections(t *testing.T) {
	prop := func(seed int64, sizeRaw uint8) bool {
		n := 5 + int(sizeRaw%60)
		ok := true
		m := firefly.New(1, firefly.DefaultCosts())
		h := New(m, smallConfig())
		m.Start(0, func(p *firefly.Proc) {
			var root object.OOP
			h.AddRoot(&root)
			root = buildRandomGraph(h, p, seed, n)
			before := signature(h, root)
			h.Scavenge(p)
			if !sigEqual(before, signature(h, root)) {
				ok = false
				return
			}
			h.Scavenge(p)
			h.FullCollect(p)
			if !sigEqual(before, signature(h, root)) {
				ok = false
				return
			}
			h.CheckInvariants()
		})
		m.Run(nil)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTortureAllocation: under scavenge-on-every-allocation, a
// random graph built incrementally stays intact.
func TestPropertyTortureAllocation(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := smallConfig()
		cfg.TortureGC = true
		ok := true
		m := firefly.New(1, firefly.DefaultCosts())
		h := New(m, cfg)
		m.Start(0, func(p *firefly.Proc) {
			var root object.OOP
			h.AddRoot(&root)
			root = buildRandomGraph(h, p, seed, 25)
			before := signature(h, root)
			h.Allocate(p, object.Nil, 4, object.FmtPointers) // one more torture GC
			ok = sigEqual(before, signature(h, root))
		})
		m.Run(nil)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByteContents: byte objects of every length round-trip
// through a move.
func TestPropertyByteContents(t *testing.T) {
	prop := func(data []byte) bool {
		ok := true
		m := firefly.New(1, firefly.DefaultCosts())
		h := New(m, smallConfig())
		m.Start(0, func(p *firefly.Proc) {
			if len(data) > 200 {
				data = data[:200]
			}
			var o object.OOP
			h.AddRoot(&o)
			o = h.Allocate(p, object.Nil, len(data), object.FmtBytes)
			h.WriteBytes(o, data)
			h.Scavenge(p)
			got := h.Bytes(o)
			if len(got) != len(data) {
				ok = false
				return
			}
			for i := range data {
				if got[i] != data[i] {
					ok = false
					return
				}
			}
		})
		m.Run(nil)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
