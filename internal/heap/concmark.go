package heap

import (
	"sync"
	"sync/atomic"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// The concurrent old-space marker (Config.ConcMark): FullCollect becomes
// a snapshot-at-the-beginning (SATB, Yuasa-style) marking cycle instead
// of the stop-the-world mark-compact in fullgc.go.
//
//   - Snapshot window (stop-the-world): one scavenge empties eden, then
//     the old-space referents of every root slot, every immortal, and
//     every object in the surviving new space are shaded grey. Young
//     space is never traced after this point, so the window is O(young
//     + roots), not O(old).
//   - Concurrent phase: grey old objects are blackened in bounded
//     slices. In deterministic mode the initiating processor drains one
//     slice per quantum, yielding between slices so the mutators'
//     quanta interleave; in parallel host mode every processor also
//     drains a slice at its safepoint (the machine's conc-assist hook).
//     A deletion barrier in the pointer-store funnels shades the old
//     referent a store is about to overwrite, which keeps every
//     snapshot-reachable object markable; objects allocated or tenured
//     into old space while marking is active are allocated black.
//   - Finalize window (stop-the-world): the residual grey stack is
//     drained (SATB guarantees it runs dry — no mutator runs to refill
//     it), the tri-color invariant is verified, and the entry table is
//     pruned to marked objects. O(residual + table), not O(old).
//   - Lazy sweep (outside the pauses): old space is walked once; live
//     objects have their mark bit cleared, dead runs are coalesced into
//     filler pseudo-objects and published as a free list that the
//     old-space allocators consult before bumping. Old space is never
//     compacted, so no pointer ever needs fixing up.
//
// The recorded full-GC pause under ConcMark is the longest single
// stop-the-world window, which stays bounded as old space grows; the
// serial collector's pause is O(live old data).

// concMarkSliceObjects bounds one concurrent mark slice; at the default
// costs a slice is the same order as a scheduling quantum.
const concMarkSliceObjects = 64

// concMarkSweepBatch is how many old objects the lazy sweep walks
// between safepoints.
const concMarkSweepBatch = 256

// maxFillerWords is the largest dead run one filler header can cover
// (header sizes must be even); longer runs are split into several
// fillers.
const maxFillerWords = object.MaxObjectWords - 1

// freeSpan is one sweep-reclaimed run of dead old-space words, capped
// by a filler pseudo-object so old space stays linearly walkable. The
// old-space allocators carve from spans first-fit before bumping.
type freeSpan struct {
	base  uint64
	words int
}

// concMark is the state of the concurrent marker. It exists for the
// heap's lifetime when Config.ConcMark is on (the store funnels check
// the pointer); a cycle is delimited by startConcMark/finishConcMark.
type concMark struct {
	h *Heap

	// cycle is true for the whole fullCollectConc span (marking and
	// sweep); a second processor requesting a full collection while a
	// cycle runs skips its own, like the parallel scavenger's
	// lost-the-race path.
	cycle atomic.Bool
	// active is true between the snapshot and finalize windows; the
	// store funnels, the allocators, and the machine's assist hook
	// read it from any processor.
	active atomic.Bool
	// sweepPending is true from the finalize window until the lazy
	// sweep publishes its free list: old space then holds dead
	// objects awaiting reclamation, so free-list carving is disabled
	// and the write-barrier verifier skips unmarked objects.
	sweepPending atomic.Bool

	// mu guards the grey stack and the cycle counters: the deletion
	// barrier and the parallel-mode assists push and drain from any
	// processor. Uncontended in deterministic mode.
	//msvet:stw-safe grey-stack lock: shades and slice batches hold it for bounded straight-line work with no safepoint inside, so no mutator is ever parked holding it
	mu     sync.Mutex
	grey   []object.OOP
	marked uint64 // objects blackened this cycle
	shaded uint64 // deletion-barrier shades this cycle
	slices uint64 // bounded slices drained outside the windows

	proc       int          // initiating processor
	at         int64        // cycle begin time (trace attribution)
	work       firefly.Time // collector ticks charged this cycle
	sweepLimit uint64       // old.next at finalize: the sweep walks [old.base, sweepLimit)
}

// push appends o to the grey stack.
func (cm *concMark) push(o object.OOP) {
	cm.mu.Lock()
	cm.grey = append(cm.grey, o)
	cm.mu.Unlock()
}

// take removes up to budget grey objects (newest first, for locality
// with the slice that pushed them).
func (cm *concMark) take(budget int, buf []object.OOP) []object.OOP {
	cm.mu.Lock()
	n := len(cm.grey)
	if n > budget {
		n = budget
	}
	buf = append(buf[:0], cm.grey[len(cm.grey)-n:]...)
	cm.grey = cm.grey[:len(cm.grey)-n]
	cm.mu.Unlock()
	return buf
}

// shadeRef shades v grey if it is an unmarked old-space object. Values
// outside old space — SmallIntegers, immortals, young pointers — are
// ignored: young space is covered by the snapshot window and is never
// traced. Reports whether this call claimed the object.
func (cm *concMark) shadeRef(proc int, v object.OOP) bool {
	h := cm.h
	if !v.IsPtr() || v == object.Invalid {
		return false
	}
	a := v.Addr()
	if a < h.old.base || a >= h.newBase {
		return false
	}
	// White → grey claim. The mark bit is the claim token: exactly one
	// shader wins, so an object is pushed (and later scanned) once.
	if h.par {
		claimed := false
		h.casHeader(v, func(hd object.Header) object.Header {
			claimed = !hd.Marked()
			return hd.SetMarked(true)
		})
		if !claimed {
			return false
		}
	} else {
		hd := h.Header(v)
		if hd.Marked() {
			return false
		}
		h.SetHeader(v, hd.SetMarked(true))
	}
	if san := h.san; san != nil {
		san.OnMarkGrey(proc, cm.at, a)
	}
	cm.push(v)
	return true
}

// deletionBarrier is the SATB write barrier, called from the
// pointer-store funnels (Store, StoreNoCheck, SetClass) before the
// slot at idx is overwritten: the old-space object the slot currently
// references is shaded grey, so a reference that existed at the
// snapshot stays markable even if the mutator erases every copy of it.
// p is nil for StoreNoCheck (no processor at that call site);
// attribution then falls back to the marking processor. The shade
// itself is charged no virtual time — the cost lands when the slice
// scan blackens the object.
func (h *Heap) deletionBarrier(p *firefly.Proc, idx uint64) {
	cm := h.cm
	if !cm.active.Load() {
		return
	}
	old := object.OOP(h.loadWord(idx))
	if !old.IsPtr() || old == object.Invalid {
		return
	}
	a := old.Addr()
	if a < h.old.base || a >= h.newBase {
		return
	}
	proc, at := cm.proc, cm.at
	if p != nil {
		proc, at = p.ID(), int64(p.Now())
	}
	if !h.skipBarrier {
		if cm.shadeRef(proc, old) {
			cm.mu.Lock()
			cm.shaded++
			cm.mu.Unlock()
		}
	}
	if san := h.san; san != nil {
		san.OnDeletionBarrier(proc, at, a, object.Header(h.loadWord(a)).Marked())
	}
}

// allocBlack reports whether a fresh old-space object at addr must be
// allocated with its mark bit set: while marking is active, a new
// object cannot be reached by the tracer (it was not in the snapshot),
// so it is born black to survive the sweep.
func (h *Heap) allocBlack(addr uint64) bool {
	return addr < h.newBase && h.cm != nil && h.cm.active.Load()
}

// carveOldFree carves total words from the sweep's free list,
// first-fit, leaving the remainder of the span as a fresh filler so
// old space stays walkable. The caller must serialize calls (the
// allocation lock in mutator paths; AllocateNoGC is deterministic-mode
// only). Carving is disabled while a sweep is rebuilding the list.
func (h *Heap) carveOldFree(total int) (uint64, bool) {
	cm := h.cm
	if cm == nil || cm.sweepPending.Load() {
		return 0, false
	}
	for i := range h.oldFree {
		s := &h.oldFree[i]
		if s.words < total {
			continue
		}
		base := s.base
		rest := s.words - total
		if rest > 0 {
			// Re-cap the tail so the space stays linearly walkable.
			h.storeWord(base+uint64(total), uint64(object.MakeHeader(rest, object.FmtWords, 0)))
			h.storeWord(base+uint64(total)+1, uint64(object.Invalid))
			s.base, s.words = base+uint64(total), rest
		} else {
			h.oldFree = append(h.oldFree[:i], h.oldFree[i+1:]...)
		}
		return base, true
	}
	return 0, false
}

// startConcMark opens a marking cycle. The world is stopped (parallel
// host mode: by the caller; deterministic mode: by construction). One
// scavenge empties eden and the future survivor space, so the only
// young objects are a linear walk of the past survivor space; their
// old-space referents — and the roots' and the immortals' — are shaded
// grey. This conservative young shade closes the SATB hole where a
// young holder of the only young→old edge dies mid-mark: the edge was
// captured here. The remembered set is not a marking root.
func (h *Heap) startConcMark(p *firefly.Proc) {
	cm := h.cm
	if cm.active.Load() {
		panic("heap: concurrent mark cycle already active")
	}
	start := p.Now()
	if h.rec != nil {
		h.rec.Emit(trace.KFullGCBegin, p.ID(), int64(start), 0, 0, "")
	}
	h.Scavenge(p)
	for _, f := range h.preGC {
		f()
	}

	cm.mu.Lock()
	cm.grey = cm.grey[:0]
	cm.marked, cm.shaded, cm.slices, cm.work = 0, 0, 0, 0
	cm.mu.Unlock()
	cm.proc, cm.at = p.ID(), int64(start)

	shadedObjs := uint64(0)
	shade := func(v object.OOP) {
		if cm.shadeRef(p.ID(), v) {
			shadedObjs++
		}
	}
	h.visitAllRoots(func(slot *object.OOP) { shade(*slot) })

	// The immortal objects never move and are never collected, but
	// their class words (and nil's fields) reference old space.
	walkObj := func(a uint64) uint64 {
		hd := object.Header(h.loadWord(a))
		shade(object.OOP(h.loadWord(a + 1)))
		if hd.Format() == object.FmtPointers {
			for i := 0; i < hd.BodyWords(); i++ {
				shade(object.OOP(h.loadWord(a + object.HeaderWords + uint64(i))))
			}
		}
		return uint64(hd.SizeWords())
	}
	words := uint64(0)
	for _, fixed := range []object.OOP{object.Nil, object.True, object.False} {
		words += walkObj(fixed.Addr())
	}
	past := &h.surv[h.past]
	for a := past.base; a < past.next; {
		if h.isScavFiller(a) {
			a += uint64(object.Header(h.loadWord(a)).SizeWords())
			continue
		}
		n := walkObj(a)
		words += n
		a += n
	}

	c := h.m.Costs()
	p.Advance(c.ConcMarkBegin + c.ConcMarkPerWord*firefly.Time(words))
	h.m.StallOthers(p, p.Now())
	pause := p.Now() - start
	cm.work += pause
	if pause > h.stats.FullGCMaxPause {
		h.stats.FullGCMaxPause = pause
	}
	if lh := h.lat; lh != nil {
		lh.FullGCPause.Record(int64(pause))
		lh.ConcMarkPause.Record(int64(pause))
	}
	if h.rec != nil {
		h.rec.Emit(trace.KConcMarkBegin, p.ID(), int64(p.Now()), int64(shadedObjs), 0, "")
		h.rec.Emit(trace.KGCPause, p.ID(), int64(p.Now()), int64(pause), 1, "")
	}

	cm.active.Store(true)
	h.m.SetConcMarkActive(true)
}

// scanBlack blackens one grey old object: its class word and pointer
// fields are read (atomically in parallel host mode — the mutators are
// running) and their old-space referents shaded. Returns the object's
// size in words for cost accounting.
func (h *Heap) scanBlack(proc int, o object.OOP) int {
	cm := h.cm
	addr := o.Addr()
	hd := object.Header(h.loadWord(addr))
	cm.shadeRef(proc, object.OOP(h.loadWord(addr+1)))
	if hd.Format() == object.FmtPointers {
		for i := 0; i < hd.BodyWords(); i++ {
			cm.shadeRef(proc, object.OOP(h.loadWord(addr+object.HeaderWords+uint64(i))))
		}
	}
	return hd.SizeWords()
}

// concMarkSlice drains up to budget grey objects as one bounded slice,
// charging p for the scan. Returns the number of objects blackened
// (0 = the stack was empty). fromAssist suppresses the histogram
// record: only the initiating processor's slices are recorded, so the
// deterministic distributions never race with host-mode assists.
func (h *Heap) concMarkSlice(p *firefly.Proc, budget int, fromAssist bool) int {
	cm := h.cm
	batch := cm.take(budget, nil)
	if len(batch) == 0 {
		return 0
	}
	words := 0
	for _, o := range batch {
		words += h.scanBlack(p.ID(), o)
	}
	c := h.m.Costs()
	cost := c.ConcMarkPerObject*firefly.Time(len(batch)) +
		c.ConcMarkPerWord*firefly.Time(words)
	p.Advance(cost)
	cm.mu.Lock()
	cm.marked += uint64(len(batch))
	cm.slices++
	cm.work += cost
	cm.mu.Unlock()
	if !fromAssist {
		if lh := h.lat; lh != nil {
			lh.ConcMarkSlice.Record(int64(cost))
		}
	}
	if h.rec != nil {
		h.rec.Emit(trace.KConcMarkSlice, p.ID(), int64(p.Now()), int64(len(batch)), int64(cost), "")
	}
	return len(batch)
}

// concAssist is the machine's safepoint hook in parallel host mode:
// a processor passing its quantum boundary while marking is active
// donates one bounded slice, charged to its own clock.
func (h *Heap) concAssist(p *firefly.Proc) {
	cm := h.cm
	if cm == nil || !cm.active.Load() {
		return
	}
	h.concMarkSlice(p, concMarkSliceObjects, true)
}

// finishConcMark closes the cycle under a stopped world: the residual
// grey stack is drained (no mutator runs, so SATB guarantees it
// empties), the tri-color invariant is verified, the entry table is
// pruned to marked objects, and the sweep bounds are captured. The
// lazy sweep itself runs after the world resumes.
func (h *Heap) finishConcMark(p *firefly.Proc) {
	cm := h.cm
	if !cm.active.Load() {
		panic("heap: finishConcMark without an active cycle")
	}
	start := p.Now()
	cm.active.Store(false)
	h.m.SetConcMarkActive(false)

	// Residual drain: barrier shades and in-flight assists may have
	// left grey objects behind.
	residual, words := 0, 0
	for {
		batch := cm.take(concMarkSliceObjects, nil)
		if len(batch) == 0 {
			break
		}
		for _, o := range batch {
			words += h.scanBlack(p.ID(), o)
		}
		residual += len(batch)
	}
	cm.mu.Lock()
	cm.marked += uint64(residual)
	cm.mu.Unlock()

	h.verifyTriColor(p)

	// Prune the entry table to marked objects, exactly as the serial
	// collector does: a dead entry's young referents die with it at
	// the next scavenge. The dead object itself is reclaimed by the
	// sweep; clearing its remembered bit here keeps the header
	// consistent with table membership in the interim.
	kept := h.remembered[:0]
	for _, o := range h.remembered {
		if h.Header(o).Marked() {
			kept = append(kept, o)
		} else {
			h.SetHeader(o, h.Header(o).SetRemembered(false))
		}
	}
	h.remembered = kept

	// Sweep bounds: objects allocated after this window are unmarked
	// but live above the limit, so the sweep never sees them. The free
	// list is rebuilt from scratch — carving stays disabled until the
	// sweep publishes the new spans.
	cm.sweepLimit = h.old.next
	cm.sweepPending.Store(true)
	h.oldFree = h.oldFree[:0]

	c := h.m.Costs()
	p.Advance(c.ConcMarkFinal +
		c.ConcMarkPerObject*firefly.Time(residual) +
		c.ConcMarkPerWord*firefly.Time(words))
	h.m.StallOthers(p, p.Now())
	pause := p.Now() - start
	cm.work += pause
	if pause > h.stats.FullGCMaxPause {
		h.stats.FullGCMaxPause = pause
	}
	if lh := h.lat; lh != nil {
		lh.FullGCPause.Record(int64(pause))
		lh.ConcMarkPause.Record(int64(pause))
	}
	if h.rec != nil {
		h.rec.Emit(trace.KConcMarkFinal, p.ID(), int64(p.Now()), int64(residual), int64(pause), "")
		h.rec.Emit(trace.KGCPause, p.ID(), int64(p.Now()), int64(pause), 1, "")
	}

	// Merge the cycle counters under the stopped world.
	h.stats.ConcMarkCycles++
	h.stats.ConcMarkSlices += cm.slices
	h.stats.ConcMarkMarked += cm.marked
	h.stats.ConcMarkShaded += cm.shaded

	for _, f := range h.postGC {
		f()
	}
	if h.san != nil {
		h.san.ResetMarkClaims()
	}
}

// clearMark resets o's mark bit for the next cycle. In parallel host
// mode the sweep runs concurrently with mutators that may be setting
// the remembered bit or assigning an identity hash, so the update must
// CAS.
func (h *Heap) clearMark(o object.OOP) {
	if h.par {
		h.casHeader(o, func(hd object.Header) object.Header {
			return hd.SetMarked(false)
		})
		return
	}
	h.SetHeader(o, h.Header(o).SetMarked(false))
}

// concMarkSweep walks old space once, outside the pauses: marked
// objects have their bit cleared; dead runs (unmarked objects and
// stale fillers) are coalesced into fresh fillers and published as the
// allocators' free list. Nothing moves, so no reference needs fixing.
// The walk yields every concMarkSweepBatch objects so mutators (and
// their scavenges) interleave; dead objects are unreachable, which is
// what makes the concurrent overwrite safe.
func (h *Heap) concMarkSweep(p *firefly.Proc) {
	cm := h.cm
	c := h.m.Costs()

	var spans []freeSpan
	reclaimedWords, reclaimedObjs := uint64(0), uint64(0)
	runBase, runLen := uint64(0), uint64(0)
	flush := func() {
		for runLen > 0 {
			n := runLen
			if n > maxFillerWords {
				n = maxFillerWords
			}
			h.storeWord(runBase, uint64(object.MakeHeader(int(n), object.FmtWords, 0)))
			h.storeWord(runBase+1, uint64(object.Invalid))
			spans = append(spans, freeSpan{base: runBase, words: int(n)})
			runBase += n
			runLen -= n
		}
	}

	batch := 0
	for a := h.old.base; a < cm.sweepLimit; {
		hd := object.Header(h.loadWord(a))
		size := uint64(hd.SizeWords())
		if hd.Marked() {
			h.clearMark(object.FromAddr(a))
			flush()
		} else {
			if runLen == 0 {
				runBase = a
			}
			runLen += size
			if !h.isScavFiller(a) {
				reclaimedWords += size
				reclaimedObjs++
			}
		}
		a += size
		batch++
		if batch >= concMarkSweepBatch {
			p.Advance(c.ConcMarkSweepObj * firefly.Time(batch))
			cm.mu.Lock()
			cm.work += c.ConcMarkSweepObj * firefly.Time(batch)
			cm.mu.Unlock()
			batch = 0
			p.Yield()
		}
	}
	flush()
	if batch > 0 {
		p.Advance(c.ConcMarkSweepObj * firefly.Time(batch))
		cm.mu.Lock()
		cm.work += c.ConcMarkSweepObj * firefly.Time(batch)
		cm.mu.Unlock()
	}

	// Publish the rebuilt free list and re-enable carving. The
	// allocation lock orders the publication against concurrent
	// old-space carves in parallel host mode.
	h.allocLock.Acquire(p)
	h.oldFree = spans
	cm.sweepPending.Store(false)
	h.allocLock.Release(p)

	h.stats.ReclaimedOldWords += reclaimedWords
	if h.rec != nil {
		h.rec.Emit(trace.KConcMarkSweep, p.ID(), int64(p.Now()),
			int64(reclaimedObjs), int64(reclaimedWords), "")
	}
}

// fullCollectConc is FullCollect's ConcMark body: the whole cycle runs
// synchronously on the requesting processor (begin window → bounded
// slices with yields between them → finalize window → lazy sweep), so
// callers observe the same contract as the serial collector — on
// return, dead old space has been reclaimed. Concurrency comes from
// what happens *during* the call: mutator quanta interleave with the
// slices and the sweep instead of stalling for the whole collection.
func (h *Heap) fullCollectConc(p *firefly.Proc) {
	cm := h.cm
	if !cm.cycle.CompareAndSwap(false, true) {
		// Another processor's cycle is in flight (parallel host mode);
		// it will reclaim the space this caller wanted.
		return
	}
	defer cm.cycle.Store(false)

	if h.par {
		if !h.m.StopTheWorld(p) {
			return
		}
	}
	h.startConcMark(p)
	if h.par {
		h.m.ResumeTheWorld(p)
	}

	for h.concMarkSlice(p, concMarkSliceObjects, false) > 0 {
		p.Yield()
	}

	if h.par {
		for !h.m.StopTheWorld(p) {
			// A scavenge ran while we waited — legal mid-cycle; we
			// still own the marking cycle and must finalize it.
		}
	}
	h.finishConcMark(p)
	if h.par {
		h.m.ResumeTheWorld(p)
	}

	h.concMarkSweep(p)

	h.stats.FullCollections++
	h.stats.FullGCTime += cm.work
	if h.rec != nil {
		h.rec.Emit(trace.KFullGCEnd, p.ID(), int64(p.Now()), int64(h.stats.ReclaimedOldWords), 0, "")
		h.rec.Emit(trace.KHeapOccupancy, p.ID(), int64(p.Now()),
			int64(h.eden.next-h.eden.base), int64(h.old.next-h.old.base), "")
	}
}
