package heap

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// The parallel generation scavenger (Config.ParScavenge): instead of
// the paper's single scavenging processor (Table 3 serializes GC),
// every rendezvoused processor cooperatively copies survivors during
// the stop-the-world window.
//
//   - Work: one grey-object work-stealing deque per worker
//     (worklist.go), seeded deterministically from the root slots,
//     handle pools, and remembered set.
//   - Space: per-worker copy buffers — TLAB-style chunks carved from
//     the shared future-survivor and old spaces under a host mutex;
//     a retired buffer's unused tail is capped with a filler object
//     so the spaces stay linearly walkable.
//   - Claiming: the first worker to CAS an object's header to the
//     busy sentinel owns the copy; it publishes the forwarding
//     pointer and then the forwarded header, release-ordered, so a
//     racing worker that loses the CAS spins briefly and reads the
//     winner's forwarding pointer. The sanitizer models the claim as
//     an ownership transfer (OnGCClaim/OnGCPublish).
//   - Termination: in host mode an active-worker count detects
//     quiescence (the last worker to run dry has just swept every
//     deque, and only active workers produce work); the owner then
//     waits out RunStopped's join barrier before resuming the world.
//
// In deterministic mode the same code is driven by a single goroutine
// simulating the parallel schedule: the worker with the smallest
// accumulated virtual cost acts next (stealing from the fullest deque
// when it runs dry), so the schedule is a pure function of the heap
// contents, and the scavenge wall time is ScavengeBase + the maximum
// worker cost + the termination barrier. With ParScavenge off none of
// this runs and the serial scavenger's behavior is bit-identical.

// parScavChunkWords is the copy-buffer chunk size carved from the
// shared spaces. Small enough that per-worker fragmentation (one
// filler-capped tail per worker per space) stays a fraction of a
// survivor space, large enough that carving is rare.
const parScavChunkWords = 256

// scavBusyHeader is the claim sentinel a worker CASes into an object's
// header while it copies the object: forwarded bit set, size zero. No
// real header (sizes are >= HeaderWords) and no final forwarding
// header (which keeps the original size bits) ever looks like it.
var scavBusyHeader = object.Header(0).SetForwarded()

// errParScavAbort unwinds helper workers after another worker failed
// (old-space OOM): spinning on a busy header would otherwise deadlock
// on a claim that will never be published.
var errParScavAbort = errors.New("heap: parallel scavenge aborted")

// scavBuf is one worker's bump region inside a shared space.
type scavBuf struct{ next, limit uint64 }

// scavWorker is one processor's share of a parallel scavenge.
type scavWorker struct {
	id  int
	wl  worklist
	to  scavBuf // copy buffer in the future survivor space
	old scavBuf // copy buffer in old space (tenuring)

	cost           firefly.Time // virtual copy + coordination cost
	steals         uint64
	chunks         uint64
	copiedObjects  uint64
	copiedWords    uint64
	tenuredObjects uint64
	tenuredWords   uint64
	remembered     []object.OOP // old objects still referencing new space
}

// parScav is the state of one parallel scavenge.
type parScav struct {
	h  *Heap
	ws []*scavWorker

	// Host-mode termination detection and failure plumbing.
	active  atomic.Int32
	done    atomic.Bool
	aborted atomic.Bool
	//msvet:stw-safe worker panic-recovery lock: exists only for the duration of one scavenge window; the parked mutators can never observe it held
	errMu sync.Mutex
	err   any
}

// newParScav builds the per-worker state and seeds the deques.
// Seeding is deterministic: root slots (deduplicated, in registration
// order — root functions such as the interpreter's inline-cache
// visitor already visit in sorted-oop order) round-robin across
// workers; each handle pool goes to the worker whose processor owns
// it (a replication row); remembered-set entries round-robin in table
// order. The remembered set is rebuilt from the workers' kept lists
// when the scavenge finishes.
func (h *Heap) newParScav() *parScav {
	nw := h.m.NumProcs()
	s := &parScav{h: h, ws: make([]*scavWorker, nw)}
	for i := range s.ws {
		s.ws[i] = &scavWorker{id: i}
	}
	seen := make(map[*object.OOP]struct{})
	n := 0
	add := func(slot *object.OOP) {
		if slot == nil {
			return
		}
		if _, dup := seen[slot]; dup {
			return
		}
		seen[slot] = struct{}{}
		if v := *slot; !v.IsPtr() || v.Addr() < h.newBase {
			return
		}
		s.ws[n%nw].wl.push(greyItem{slot: slot})
		n++
	}
	for _, slot := range h.rootSlots {
		add(slot)
	}
	for _, f := range h.rootFuncs {
		f(add)
	}
	for pi, hp := range h.handlePools {
		w := s.ws[pi%nw]
		for i := range hp.slots {
			if v := hp.slots[i]; !v.IsPtr() || v.Addr() < h.newBase {
				continue
			}
			w.wl.push(greyItem{slot: &hp.slots[i]})
		}
	}
	for i, o := range h.remembered {
		s.ws[i%nw].wl.push(greyItem{obj: o})
	}
	h.remembered = h.remembered[:0]
	return s
}

// parScavenge replaces the serial scavenger's phases 1–3: drain the
// seeded deques (simulated or host-parallel), then merge the workers'
// results and charge the virtual cost. Called from Scavenge with the
// world stopped and h.to reset; the caller runs the common epilogue
// (flip, stats, verifier, hooks).
func (h *Heap) parScavenge(p *firefly.Proc, start firefly.Time) {
	s := h.newParScav()
	if h.par {
		h.m.RunStopped(p, func(q *firefly.Proc) {
			w := s.ws[q.ID()]
			if h.scavDelay != nil {
				h.scavDelay(w.id)
			}
			s.drainHost(h, w)
			q.Advance(w.cost)
		})
		if s.err != nil {
			panic(s.err)
		}
	} else {
		s.drainDet(h)
	}
	h.finishParScav(s, p, start)
}

// drainDet simulates the parallel drain deterministically: the worker
// with the smallest accumulated virtual cost (ties to the lowest id)
// processes one item per step, stealing from the victim with the most
// queued work when its own deque is dry. The schedule — and therefore
// every copy decision and the final heap layout — is a pure function
// of the seeded work.
func (s *parScav) drainDet(h *Heap) {
	c := h.m.Costs()
	for {
		total := 0
		for _, w := range s.ws {
			total += w.wl.size()
		}
		if total == 0 {
			return
		}
		w := s.ws[0]
		for _, x := range s.ws[1:] {
			if x.cost < w.cost {
				w = x
			}
		}
		it, ok := w.wl.pop()
		if !ok {
			var victim *scavWorker
			best := 0
			for _, x := range s.ws {
				if x == w {
					continue
				}
				if sz := x.wl.size(); sz > best {
					best, victim = sz, x
				}
			}
			it, _ = victim.wl.steal()
			w.steals++
			w.cost += c.ScavengeSteal
			if h.rec != nil {
				h.rec.Emit(trace.KScavSteal, w.id, h.gcAt+int64(w.cost), int64(victim.id), 0, "")
			}
		}
		h.scanGrey(s, w, it)
	}
}

// drainHost is one worker's real drain loop in parallel host mode.
// Termination: a worker leaves the active set only after its own pop
// and a full steal sweep both failed; when the count hits zero the
// last worker has just seen every deque empty and no active producer
// remains, so the scavenge is complete. A worker that sees new work
// re-joins the active set before taking any.
func (s *parScav) drainHost(h *Heap, w *scavWorker) {
	defer func() {
		if r := recover(); r != nil {
			if r != errParScavAbort {
				s.errMu.Lock()
				if s.err == nil {
					s.err = r
				}
				s.errMu.Unlock()
			}
			s.aborted.Store(true)
			s.done.Store(true)
			s.active.Add(-1)
		}
	}()
	if s.done.Load() {
		return
	}
	s.active.Add(1)
	for {
		it, ok := w.wl.pop()
		if !ok {
			it, ok = s.stealHost(h, w)
		}
		if ok {
			h.scanGrey(s, w, it)
			continue
		}
		if s.active.Add(-1) == 0 {
			s.done.Store(true)
			return
		}
		for {
			if s.done.Load() {
				return
			}
			if s.anyWork() {
				s.active.Add(1)
				break
			}
			runtime.Gosched()
		}
	}
}

// stealHost sweeps the other workers' deques once, starting just past
// this worker's id.
func (s *parScav) stealHost(h *Heap, w *scavWorker) (greyItem, bool) {
	nw := len(s.ws)
	for i := 1; i < nw; i++ {
		victim := s.ws[(w.id+i)%nw]
		if it, ok := victim.wl.steal(); ok {
			w.steals++
			w.cost += h.m.Costs().ScavengeSteal
			if h.rec != nil {
				h.rec.Emit(trace.KScavSteal, w.id, h.gcAt+int64(w.cost), int64(victim.id), 0, "")
			}
			return it, true
		}
	}
	return greyItem{}, false
}

// anyWork reports whether any deque holds an item.
func (s *parScav) anyWork() bool {
	for _, w := range s.ws {
		if w.wl.size() > 0 {
			return true
		}
	}
	return false
}

// scanGrey processes one work item: forward a root slot in place, or
// scan a grey object's class word and pointer fields, maintaining
// entry-table membership for old objects (remembered entries and
// fresh tenurees alike).
func (h *Heap) scanGrey(s *parScav, w *scavWorker, it greyItem) {
	if it.slot != nil {
		*it.slot = h.parForward(s, w, *it.slot)
		return
	}
	addr := it.obj.Addr()
	hd := object.Header(h.loadWord(addr))
	refsNew := false
	cls := object.OOP(h.loadWord(addr + 1))
	if ncls := h.parForward(s, w, cls); ncls != cls {
		h.storeWord(addr+1, uint64(ncls))
		cls = ncls
	}
	if h.InNewSpace(cls) {
		refsNew = true
	}
	if hd.Format() == object.FmtPointers {
		body := hd.BodyWords()
		for i := 0; i < body; i++ {
			fa := addr + object.HeaderWords + uint64(i)
			f := object.OOP(h.loadWord(fa))
			if !f.IsPtr() || f == object.Invalid {
				continue
			}
			if nf := h.parForward(s, w, f); nf != f {
				h.storeWord(fa, uint64(nf))
				f = nf
			}
			if h.InNewSpace(f) {
				refsNew = true
			}
		}
	}
	if addr >= h.newBase {
		return
	}
	if refsNew {
		if !hd.Remembered() {
			h.SetHeader(it.obj, h.Header(it.obj).SetRemembered(true))
		}
		w.remembered = append(w.remembered, it.obj)
	} else if hd.Remembered() {
		h.SetHeader(it.obj, h.Header(it.obj).SetRemembered(false))
	}
}

// parForward returns the new location of o, claiming and copying it if
// this worker gets there first. The claim CAS swaps the header for the
// busy sentinel; losers spin until the winner publishes the forwarding
// pointer (host mode only — the deterministic simulation never
// contends). The copy is pushed onto this worker's deque for scanning.
func (h *Heap) parForward(s *parScav, w *scavWorker, o object.OOP) object.OOP {
	if !o.IsPtr() || o.Addr() < h.newBase {
		return o
	}
	addr := o.Addr()
	for {
		hd := object.Header(atomic.LoadUint64(&h.mem[addr]))
		if hd == scavBusyHeader {
			if s.aborted.Load() {
				panic(errParScavAbort)
			}
			runtime.Gosched()
			continue
		}
		if hd.Forwarded() {
			return object.OOP(atomic.LoadUint64(&h.mem[addr+1]))
		}
		if !atomic.CompareAndSwapUint64(&h.mem[addr], uint64(hd), uint64(scavBusyHeader)) {
			continue
		}
		if san := h.san; san != nil {
			san.OnGCClaim(w.id, h.gcAt, addr)
		}
		size := hd.SizeWords()
		age := hd.Age() + 1
		if ap := h.alp; ap != nil {
			// Allocation-site profiling is deterministic-mode only
			// (enforced by core), where the drain runs on one
			// goroutine, so the site maps never race.
			ap.NoteAge(int(age), int64(size))
		}
		dst, tenured := w.allocCopy(h, size, age >= h.cfg.TenureAge)
		if tenured {
			age = 0
			w.tenuredObjects++
			w.tenuredWords += uint64(size)
			if h.rec != nil {
				h.rec.Emit(trace.KTenure, w.id, h.gcAt+int64(w.cost), int64(size), 0, "")
			}
			if ap := h.alp; ap != nil {
				if id, ok := h.siteByAddr[addr]; ok {
					ap.NoteTenured(id, int64(size))
				}
			}
		} else if ap := h.alp; ap != nil {
			if id, ok := h.siteByAddr[addr]; ok {
				if addr >= h.eden.base {
					ap.NoteSurvived(id, int64(size))
				}
				h.siteNext[dst] = id
			}
		}
		copy(h.mem[dst+1:dst+uint64(size)], h.mem[addr+1:addr+uint64(size)])
		nh := hd.SetAge(age).SetRemembered(false)
		if tenured && h.allocBlack(dst) {
			// Born black under an active concurrent mark (concmark.go).
			nh = nh.SetMarked(true)
		}
		h.storeWord(dst, uint64(nh))
		if san := h.san; san != nil {
			san.OnGCPublish(w.id, h.gcAt, addr)
		}
		atomic.StoreUint64(&h.mem[addr+1], dst)
		atomic.StoreUint64(&h.mem[addr], uint64(hd.SetForwarded()))
		c := h.m.Costs()
		w.cost += c.ScavengePerObject + c.ScavengePerWord*firefly.Time(size)
		w.copiedObjects++
		w.copiedWords += uint64(size)
		w.wl.push(greyItem{obj: object.FromAddr(dst)})
		return object.FromAddr(dst)
	}
}

// allocCopy bump-allocates size words from this worker's copy buffer
// in the requested space, carving a fresh chunk when the buffer is
// dry. A survivor-space request falls back to tenuring when the
// future survivor space cannot supply a chunk (overflow tenuring, as
// in the serial scavenger); old-space exhaustion is fatal, exactly as
// in the serial path.
func (w *scavWorker) allocCopy(h *Heap, size int, tenure bool) (dst uint64, inOld bool) {
	if !tenure {
		if int(w.to.limit-w.to.next) >= size {
			dst = w.to.next
			w.to.next += uint64(size)
			return dst, false
		}
		if h.carveChunk(w, &w.to, h.to, size) {
			dst = w.to.next
			w.to.next += uint64(size)
			return dst, false
		}
	}
	if int(w.old.limit-w.old.next) >= size {
		dst = w.old.next
		w.old.next += uint64(size)
		return dst, true
	}
	if !h.carveChunk(w, &w.old, &h.old, size) {
		panic(OOMError{NeedWords: size})
	}
	dst = w.old.next
	w.old.next += uint64(size)
	return dst, true
}

// carveChunk retires the worker's current buffer (capping its unused
// tail with a filler) and carves a fresh chunk of at least size words
// from the shared space. The host mutex serializes only the carve;
// the virtual cost is the ScavengeChunk charge.
func (h *Heap) carveChunk(w *scavWorker, buf *scavBuf, sp *space, size int) bool {
	h.gcMu.Lock()
	free := int(sp.limit - sp.next)
	if free < size {
		h.gcMu.Unlock()
		return false
	}
	n := parScavChunkWords
	if n < size {
		n = size
	}
	if n > free {
		n = free
	}
	h.fillGap(buf.next, buf.limit)
	buf.next = sp.next
	buf.limit = sp.next + uint64(n)
	sp.next = buf.limit
	h.gcMu.Unlock()
	w.chunks++
	w.cost += h.m.Costs().ScavengeChunk
	return true
}

// fillGap caps a retired buffer's unused tail [next, limit) with a
// filler pseudo-object — raw-words format, Invalid class — so the
// containing space remains linearly walkable by CheckInvariants, the
// write-barrier verifier, the full collector (which reclaims unmarked
// fillers), and snapshots. Allocation sizes are even, so any gap is
// an even word count >= HeaderWords (or zero).
func (h *Heap) fillGap(base, limit uint64) {
	if limit <= base {
		return
	}
	gap := int(limit - base)
	h.mem[base] = uint64(object.MakeHeader(gap, object.FmtWords, 0))
	h.mem[base+1] = uint64(object.Invalid)
}

// isScavFiller reports whether the object starting at a is a retired
// copy-buffer filler.
func (h *Heap) isScavFiller(a uint64) bool {
	return object.OOP(h.mem[a+1]) == object.Invalid &&
		object.Header(h.mem[a]).Format() == object.FmtWords
}

// finishParScav retires every worker's buffers, merges worker results
// into the heap statistics and the rebuilt remembered set (worker
// order, deterministic in the simulated schedule), emits the
// per-worker trace slices, and charges virtual time. Deterministic
// mode: every worker's processor is charged its own cost, and the
// scavenging processor stalls to the slowest worker plus the
// termination barrier — scavenge wall time = ScavengeBase +
// max(worker costs) + ScavengeTerm. Host mode: each worker charged
// itself inside RunStopped; the owner pays the fixed costs here.
func (h *Heap) finishParScav(s *parScav, p *firefly.Proc, start firefly.Time) {
	for _, w := range s.ws {
		h.fillGap(w.to.next, w.to.limit)
		h.fillGap(w.old.next, w.old.limit)
		h.stats.CopiedObjects += w.copiedObjects
		h.stats.CopiedWords += w.copiedWords
		h.stats.TenuredObjects += w.tenuredObjects
		h.stats.TenuredWords += w.tenuredWords
		h.stats.ScavengeSteals += w.steals
		h.remembered = append(h.remembered, w.remembered...)
	}
	if len(h.remembered) > h.stats.RememberedPeak {
		h.stats.RememberedPeak = len(h.remembered)
	}
	h.stats.ParScavenges++

	c := h.m.Costs()
	longPole, maxCost := 0, firefly.Time(0)
	var sumCost firefly.Time
	var sumSteals uint64
	for i, w := range s.ws {
		if w.cost > maxCost {
			longPole, maxCost = i, w.cost
		}
		sumCost += w.cost
		sumSteals += w.steals
	}
	if h.par {
		p.Advance(c.ScavengeBase + c.ScavengeTerm)
	} else {
		end := start + c.ScavengeBase + maxCost + c.ScavengeTerm
		for i, w := range s.ws {
			if q := h.m.Proc(i); q != p {
				q.Advance(w.cost)
			}
		}
		p.Advance(c.ScavengeBase + s.ws[p.ID()].cost + c.ScavengeTerm)
		p.StallUntil(end)
		h.m.StallOthers(p, end)
	}
	if lh := h.lat; lh != nil {
		// Parallel phase split: rendezvous is the base charge, the copy
		// phase lasts until the slowest worker (the long pole) finishes,
		// and the termination barrier is the fixed join cost.
		lh.ScavRendezvous.Record(int64(c.ScavengeBase))
		lh.ScavCopy.Record(int64(maxCost))
		lh.ScavTerm.Record(int64(c.ScavengeTerm))
		lh.AddCriticalPath(trace.GCCriticalPath{
			Scavenge:      h.stats.ParScavenges,
			LongPole:      longPole,
			LongPoleTicks: int64(maxCost),
			SumTicks:      int64(sumCost),
			Workers:       len(s.ws),
			Steals:        sumSteals,
		})
	}

	if h.rec != nil {
		for i, w := range s.ws {
			h.rec.Emit(trace.KScavWorkerBegin, i, h.gcAt, int64(w.steals), 0, "")
			h.rec.Emit(trace.KScavWorkerEnd, i, h.gcAt+int64(w.cost),
				int64(w.copiedObjects), int64(w.copiedWords), "")
		}
	}
	if h.san != nil {
		h.san.ResetGCClaims()
	}
}
