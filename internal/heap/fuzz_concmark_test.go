package heap

import (
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/sanitize"
)

// The differential concurrent-marking fuzzer: a seeded random
// object-graph builder and mutator runs the identical operation
// sequence through the serial stop-the-world collector and the SATB
// concurrent marker, then compares the surviving graphs — live set,
// per-object tenure decision and age, remembered-set contents — object
// by object, reusing the address-free canonical form from the scavenge
// fuzzer.
//
// The concurrent run opens a mark cycle a third of the way into the
// operation stream and finalizes it two thirds in, draining bounded
// slices between the mutations. Everything the SATB design has to
// survive happens in that window: pointer deletions erase the only
// copy of a snapshot-reachable edge (the deletion barrier's case),
// old→old and old→young edges are rewired, roots are dropped, and
// explicit scavenges move young objects and tenure into old space
// between slices. The serial run replays the same operations with a
// plain scavenge at the cycle-open index (matching the snapshot
// window's internal scavenge), so both runs see identical ages.
//
// Divergence is then forced to converge: each run ends with a full
// collection and a trailing scavenge. The concurrent cycle may float
// garbage that dies mid-mark (SATB keeps the snapshot alive by
// design); the final quiescent cycle collects it, so the surviving
// graphs must be exactly equal.

// fuzzConcOps drives the seeded workload. conc selects the manually
// driven mid-stream mark cycle; the operation sequence is a pure
// function of the seed either way.
func fuzzConcOps(h *Heap, p *firefly.Proc, seed int64, conc bool) (young, olds []object.OOP) {
	// Unlike the scavenge fuzzer, full collections reclaim dead old
	// objects here, so the old anchors must be genuine roots: garbage
	// is created only by explicitly dropping an anchor (or a young
	// root), and dropped objects are never touched again.
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range young {
			visit(&young[i])
		}
		for i := range olds {
			visit(&olds[i])
		}
	})
	rng := rand.New(rand.NewSource(seed))
	nextID := int64(1)
	stamp := func(o object.OOP) object.OOP {
		h.StoreNoCheck(o, 0, object.FromInt(nextID))
		nextID++
		return o
	}

	n := 150 + rng.Intn(151)
	k1, k2 := n/3, (2*n)/3
	for op := 0; op < n; op++ {
		if op == k1 {
			if conc {
				h.startConcMark(p)
			} else {
				// The snapshot window scavenges; the serial run must
				// too, so ages and tenure decisions stay aligned.
				h.Scavenge(p)
			}
		}
		if op == k2 && conc {
			h.finishConcMark(p)
			h.concMarkSweep(p)
		}
		if conc && h.cm.active.Load() && op%2 == 0 {
			// One bounded slice between mutator quanta.
			h.concMarkSlice(p, 8, false)
		}
		switch r := rng.Intn(100); {
		case r < 42: // allocate a young object, wiring some edges
			fields := 2 + rng.Intn(5)
			o := stamp(h.Allocate(p, object.Nil, fields, object.FmtPointers))
			for i := 1; i < fields; i++ {
				if len(young) > 0 && rng.Intn(100) < 40 {
					h.Store(p, o, i, young[rng.Intn(len(young))])
				}
			}
			young = append(young, o)
		case r < 55: // young→young edge
			if len(young) >= 2 {
				a := young[rng.Intn(len(young))]
				b := young[rng.Intn(len(young))]
				h.Store(p, a, 1+rng.Intn(h.FieldCount(a)-1), b)
			}
		case r < 63: // drop a young root: the subgraph may become garbage
			if len(young) > 0 {
				k := rng.Intn(len(young))
				young = append(young[:k], young[k+1:]...)
			}
		case r < 72: // allocate an old object referencing new space
			fields := 2 + rng.Intn(3)
			o := stamp(h.AllocateNoGC(object.Nil, fields, object.FmtPointers))
			if len(young) > 0 {
				h.Store(p, o, 1+rng.Intn(fields-1), young[rng.Intn(len(young))])
			}
			if len(olds) > 0 && rng.Intn(100) < 40 {
				// Hang it off an anchor instead of rooting it: reachable
				// only through that one field, so it stays white at the
				// snapshot until a slice traces it — and a later rewrite
				// of the field is exactly the deletion-barrier case.
				a := olds[rng.Intn(len(olds))]
				h.Store(p, a, 1+rng.Intn(h.FieldCount(a)-1), o)
			} else {
				olds = append(olds, o)
			}
		case r < 80: // old→young edge (or severing one with nil)
			if len(olds) > 0 && len(young) > 0 {
				o := olds[rng.Intn(len(olds))]
				v := young[rng.Intn(len(young))]
				if rng.Intn(100) < 20 {
					v = object.Nil
				}
				h.Store(p, o, 1+rng.Intn(h.FieldCount(o)-1), v)
			}
		case r < 88: // old→old edge, or deleting one: the SATB hard case
			if len(olds) >= 2 {
				o := olds[rng.Intn(len(olds))]
				v := olds[rng.Intn(len(olds))]
				if rng.Intn(100) < 30 {
					v = object.Nil
				}
				h.Store(p, o, 1+rng.Intn(h.FieldCount(o)-1), v)
			}
		case r < 94: // drop an old anchor: old-space garbage for the
			// sweep (or the compactor) to reclaim
			if len(olds) > 0 {
				k := rng.Intn(len(olds))
				olds = append(olds[:k], olds[k+1:]...)
			}
		default: // explicit scavenge, including between mark slices
			h.Scavenge(p)
		}
	}

	// Converge: a full collection (the concurrent heap runs a fresh
	// quiescent cycle — no mutator interleaves, so it is as precise as
	// the serial mark-compact), a remembered-set-refreshing mutation,
	// and a trailing scavenge.
	h.FullCollect(p)
	if len(olds) > 0 && len(young) > 0 {
		h.Store(p, olds[0], 1, young[len(young)-1])
	}
	h.Scavenge(p)
	h.CheckInvariants()
	return young, olds
}

// runConcFuzzDet runs one seeded workload deterministically on a
// four-processor machine (driver on processor 0) and returns the
// canonical surviving state. The sanitizer rides along and must stay
// clean — it is watching the deletion barrier and the tri-color
// invariant in the concurrent runs.
func runConcFuzzDet(t *testing.T, seed int64, conc bool) (fuzzResult, Stats) {
	t.Helper()
	cfg := fuzzConfig()
	cfg.ConcMark = conc
	m := firefly.New(4, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	var res fuzzResult
	m.Start(0, func(p *firefly.Proc) {
		young, olds := fuzzConcOps(h, p, seed, conc)
		res = canonicalize(t, h, young, olds)
	})
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("seed %d (concmark=%v): machine stopped with %v", seed, conc, r)
	}
	if vs := san.Violations(); len(vs) != 0 {
		t.Fatalf("seed %d (concmark=%v): sanitizer violations:\n%s", seed, conc, san.Report())
	}
	return res, h.Stats()
}

// TestConcMarkFuzzDifferential is the differential fuzzer: 200 seeds,
// each replayed through the serial collector and the concurrent
// marker, with the surviving graphs compared exactly. A failure names
// the seed.
func TestConcMarkFuzzDifferential(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	var cycles, shades, marked uint64
	for seed := int64(0); seed < int64(seeds); seed++ {
		serial, _ := runConcFuzzDet(t, seed, false)
		conc, st := runConcFuzzDet(t, seed, true)
		if !reflect.DeepEqual(serial, conc) {
			t.Fatalf("seed %d: serial and concurrent collectors diverge\nserial:     %+v\nconcurrent: %+v",
				seed, serial, conc)
		}
		if st.ConcMarkCycles != 2 {
			t.Fatalf("seed %d: want 2 mark cycles (mid-stream + final), got %d", seed, st.ConcMarkCycles)
		}
		cycles += st.ConcMarkCycles
		shades += st.ConcMarkShaded
		marked += st.ConcMarkMarked
	}
	// The aggregate must show the machinery actually engaged: every run
	// marked objects, and across the seed corpus the deletion barrier
	// fired (individual seeds may legitimately never delete a white
	// old-space reference mid-cycle).
	if marked == 0 {
		t.Fatal("no objects were ever marked; the fuzzer exercised nothing")
	}
	if shades == 0 {
		t.Fatalf("the deletion barrier never shaded across %d seeds (%d cycles); the SATB case went unexercised",
			seeds, cycles)
	}
}

// assertConcViolation fails unless the sanitizer holds at least one
// violation of the given kind whose detail contains want, and no
// violation of any other kind.
func assertConcViolation(t *testing.T, san *sanitize.Checker, kind sanitize.Kind, want string) {
	t.Helper()
	vs := san.Violations()
	if len(vs) == 0 {
		t.Fatalf("injected fault not detected (want %v violation containing %q)", kind, want)
	}
	found := false
	for _, v := range vs {
		if v.Kind != kind {
			t.Errorf("unexpected violation kind %v (want only %v): %s", v.Kind, kind, v)
			continue
		}
		if strings.Contains(v.Detail, want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %v violation mentions %q:\n%s", kind, want, san.Report())
	}
}

// TestConcMarkSkippedBarrierCaught is the fault-injection test for the
// sanitizer's concmark rule: with the deletion barrier disabled (the
// skipBarrier test knob), overwriting the only reference to a white
// old-space object during an active cycle must be reported — the
// checker sees an unshaded snapshot-reachable referent go unmarkable.
func TestConcMarkSkippedBarrierCaught(t *testing.T) {
	cfg := fuzzConfig()
	cfg.ConcMark = true
	m := firefly.New(2, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	m.Start(0, func(p *firefly.Proc) {
		a := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		x := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.Store(p, a, 1, x)
		h.AddRoot(&a)

		h.startConcMark(p)
		// a is grey (shaded as a root), x still white: no slice has
		// scanned a yet. Erase the only reference to x with the barrier
		// disabled — the exact bug the rule exists to catch.
		h.skipBarrier = true
		h.Store(p, a, 1, object.Nil)
		h.skipBarrier = false
		h.finishConcMark(p)
		h.concMarkSweep(p)
	})
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("machine stopped with %v", r)
	}
	assertConcViolation(t, san, sanitize.KindConcMark, "deletion barrier skipped")
}

// TestConcMarkTriColorViolationCaught is the fault-injection test for
// the finalize window's verifier: a reachable old-space object whose
// mark bit is lost mid-cycle (simulating a dropped shade) must be
// reported by the tri-color check before the sweep would reclaim it.
func TestConcMarkTriColorViolationCaught(t *testing.T) {
	cfg := fuzzConfig()
	cfg.ConcMark = true
	m := firefly.New(2, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	m.Start(0, func(p *firefly.Proc) {
		a := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		x := h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.Store(p, a, 1, x)
		h.AddRoot(&a)

		h.startConcMark(p)
		for h.concMarkSlice(p, concMarkSliceObjects, false) > 0 {
		}
		// Marking is complete and x is black. Lose its mark — the
		// injected equivalent of a missed shade — and finalize: the
		// tri-color verifier must see a reachable white object.
		h.SetHeader(x, h.Header(x).SetMarked(false))
		h.finishConcMark(p)
	})
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("machine stopped with %v", r)
	}
	assertConcViolation(t, san, sanitize.KindConcMark, "tri-color invariant broken")
}

// concPauseWorkload tenures a sliding window of keep rooted objects
// into old space and full-collects three times; it mirrors the
// msbench concmark ablation's mutator at test scale.
func concPauseWorkload(h *Heap, p *firefly.Proc, keep int) {
	var roots []object.OOP
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range roots {
			visit(&roots[i])
		}
	})
	x := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for r := 0; r < 6; r++ {
		for i := 0; i < keep; i++ {
			o := h.Allocate(p, object.Nil, 2+next(5), object.FmtPointers)
			if len(roots) > 0 {
				h.Store(p, o, 1, roots[next(len(roots))])
				h.Store(p, roots[next(len(roots))], 0, o)
			}
			roots = append(roots, o)
			if len(roots) > keep {
				k := next(len(roots))
				roots = append(roots[:k], roots[k+1:]...)
			}
		}
		h.Scavenge(p)
		if r%2 == 1 {
			h.FullCollect(p)
		}
	}
	h.CheckInvariants()
}

// concPauseBudgetTicks bounds the concurrent marker's longest
// stop-the-world window on the enlarged pause-regression heap: the
// snapshot window is O(young + roots) and the finalize window is
// O(residual + entry table), so the bound holds as the tenured
// population grows — the serial collector's pause does not.
const concPauseBudgetTicks = 40000

// TestConcMarkPauseBound is the pause-bound regression test: on an
// enlarged old space the concurrent marker's max full-GC pause must
// stay under a fixed tick budget, and strictly below the serial
// collector's max pause on the identical workload.
func TestConcMarkPauseBound(t *testing.T) {
	run := func(conc bool) Stats {
		m := firefly.New(2, firefly.DefaultCosts())
		cfg := Config{
			OldWords:      1 << 20,
			EdenWords:     32 << 10,
			SurvivorWords: 16 << 10,
			TenureAge:     2,
			Policy:        AllocSerialized,
			LocksEnabled:  true,
			ConcMark:      conc,
		}
		h := New(m, cfg)
		m.Start(0, func(p *firefly.Proc) { concPauseWorkload(h, p, 4000) })
		if r := m.Run(nil); r != firefly.StopAllDone {
			t.Fatalf("concmark=%v: machine stopped with %v", conc, r)
		}
		return h.Stats()
	}
	serial := run(false)
	conc := run(true)
	if serial.FullCollections == 0 || conc.FullCollections != serial.FullCollections {
		t.Fatalf("full collections diverge: serial %d, concurrent %d",
			serial.FullCollections, conc.FullCollections)
	}
	if conc.FullGCMaxPause >= serial.FullGCMaxPause {
		t.Fatalf("concurrent max pause %d ticks is not below the serial max pause %d ticks",
			conc.FullGCMaxPause, serial.FullGCMaxPause)
	}
	if conc.FullGCMaxPause > concPauseBudgetTicks {
		t.Fatalf("concurrent max pause %d ticks exceeds the %d-tick budget",
			conc.FullGCMaxPause, concPauseBudgetTicks)
	}
}

// TestConcMarkHostParallelStress replays a fuzzer workload in parallel
// host mode (real goroutine processors, ConcMark on): the driver
// mutates and full-collects while the other processors spin through
// their safepoints, donating mark-assist slices whenever a cycle is
// active. Under -race this is the data-race certificate for the
// barrier, the assist hook, and the sweep's publication protocol; the
// surviving graph must match the deterministic serial collector's.
func TestConcMarkHostParallelStress(t *testing.T) {
	seed := int64(7)
	want, _ := runConcFuzzDet(t, seed, false)

	cfg := fuzzConfig()
	cfg.Parallel = true
	cfg.ConcMark = true
	m := firefly.New(4, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	var res fuzzResult
	var done atomic.Bool
	m.Start(0, func(p *firefly.Proc) {
		young, olds := fuzzConcOps(h, p, seed, false)
		res = canonicalize(t, h, young, olds)
		done.Store(true)
	})
	for i := 1; i < 4; i++ {
		m.Start(i, func(p *firefly.Proc) {
			for !p.Stopped() {
				p.AdvanceIdle(10)
				p.Yield()
				// Give the host scheduler room to interleave the
				// assists with the driver's slices.
				time.Sleep(time.Microsecond)
			}
		})
	}
	m.SetParallel(true)
	if r := m.Run(func() bool { return done.Load() }); r != firefly.StopUntil {
		t.Fatalf("host run: Run returned %v", r)
	}
	m.Shutdown()
	if vs := san.Violations(); len(vs) != 0 {
		t.Fatalf("host run: sanitizer violations:\n%s", san.Report())
	}
	if h.Stats().ConcMarkCycles == 0 {
		t.Fatal("host run: no concurrent mark cycle ran")
	}
	if !reflect.DeepEqual(want, res) {
		t.Fatalf("host-parallel surviving graph diverges from serial\nwant: %+v\ngot:  %+v", want, res)
	}
}
