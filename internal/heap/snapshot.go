package heap

import (
	"fmt"

	"mst/internal/firefly"
	"mst/internal/object"
)

// SnapshotState is the serializable state of an object memory: the
// geometry, the used portion of every space, and the entry table.
// Object addresses are absolute, so a snapshot restores only into a
// heap with identical geometry.
type SnapshotState struct {
	Config Config

	OldUsed  []uint64
	PastUsed []uint64
	EdenUsed []uint64
	Past     int

	Remembered []object.OOP
	HashSeed   uint32
}

// SnapshotState captures the heap for serialization. The caller must
// have quiesced the mutators (all interpreter registers flushed into
// heap objects).
//
//msvet:atomic-excluded wholesale read of a caller-quiesced world; no mutator runs while the image is serialized
func (h *Heap) SnapshotState() *SnapshotState {
	past := &h.surv[h.past]
	s := &SnapshotState{
		Config:     h.cfg,
		OldUsed:    append([]uint64(nil), h.mem[:h.old.next]...),
		PastUsed:   append([]uint64(nil), h.mem[past.base:past.next]...),
		EdenUsed:   append([]uint64(nil), h.mem[h.eden.base:h.eden.next]...),
		Past:       h.past,
		Remembered: append([]object.OOP(nil), h.remembered...),
		HashSeed:   h.hashSeed,
	}
	return s
}

// RestoreHeap builds a heap on machine m from a snapshot. The returned
// heap has the snapshot's geometry, contents, and entry table; roots
// must be re-registered by the caller (the VM layer).
//
//msvet:heap-writer wholesale image restore into a heap no processor has seen yet; the store check has nothing to track until the VM layer re-registers roots
//msvet:atomic-excluded mutators do not exist yet when the image is copied in
func RestoreHeap(m *firefly.Machine, s *SnapshotState) (*Heap, error) {
	h := New(m, s.Config)
	if len(s.OldUsed) > int(h.old.limit) {
		return nil, fmt.Errorf("heap: snapshot old space (%d words) exceeds geometry", len(s.OldUsed))
	}
	copy(h.mem, s.OldUsed)
	h.old.next = uint64(len(s.OldUsed))
	if h.old.next < h.old.base {
		h.old.next = h.old.base
	}
	h.past = s.Past
	past := &h.surv[h.past]
	if len(s.PastUsed) > int(past.limit-past.base) {
		return nil, fmt.Errorf("heap: snapshot survivor space too large")
	}
	copy(h.mem[past.base:], s.PastUsed)
	past.next = past.base + uint64(len(s.PastUsed))
	if len(s.EdenUsed) > int(h.eden.limit-h.eden.base) {
		return nil, fmt.Errorf("heap: snapshot eden too large")
	}
	copy(h.mem[h.eden.base:], s.EdenUsed)
	h.eden.next = h.eden.base + uint64(len(s.EdenUsed))
	h.remembered = append([]object.OOP(nil), s.Remembered...)
	h.hashSeed = s.HashSeed
	return h, nil
}
