package heap

import (
	"fmt"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// Scavenge performs one stop-the-world generation scavenge on processor
// p, which acts as the single scavenger (the paper applies serialization
// to garbage collection: "all of the processes are synchronized with a
// global flag and the V interprocess communication mechanism").
//
// Live new-space objects are copied to the future survivor space (or
// tenured into old space once they have survived TenureAge scavenges, or
// when the survivor space overflows); eden and the past survivor space
// are then reset. Every registered root slot, root function, and handle
// is updated; pre/post hooks let the interpreter flush caches of raw
// oops. On return, every other processor's clock has been advanced to
// the scavenge end, modelling the rendezvous stall.
func (h *Heap) Scavenge(p *firefly.Proc) {
	if h.par {
		// Parallel host mode: really stop the world. A false return
		// means another processor collected while we waited our turn;
		// our allocation failure is resolved, so skip the collection
		// and let the caller retry.
		if !h.m.StopTheWorld(p) {
			return
		}
		defer h.m.ResumeTheWorld(p)
	}
	if h.inGC {
		panic("heap: recursive scavenge")
	}
	h.inGC = true
	defer func() { h.inGC = false }()

	start := p.Now()
	if h.rec != nil {
		h.rec.Emit(trace.KScavengeBegin, p.ID(), int64(start), 0, 0, "")
		h.rec.Emit(trace.KHeapOccupancy, p.ID(), int64(start),
			int64(h.eden.next-h.eden.base), int64(h.old.next-h.old.base), "")
	}
	h.gcProc, h.gcAt = p.ID(), int64(start)
	for _, f := range h.preGC {
		f()
	}
	if h.alp != nil {
		// The copy pass re-keys each surviving object's allocation site
		// from its old address to its new one.
		h.siteNext = make(map[uint64]int)
	}

	objsBefore := h.stats.CopiedObjects
	wordsBefore := h.stats.CopiedWords

	to := &h.surv[1-h.past]
	to.next = to.base
	h.to = to

	// Phases 1–3 and their cost accounting: serial Cheney scan, or the
	// cooperative parallel copy (parscavenge.go).
	if h.cfg.ParScavenge {
		h.parScavenge(p, start)
	} else {
		h.serialScavenge(p)
	}

	objs := h.stats.CopiedObjects - objsBefore
	words := h.stats.CopiedWords - wordsBefore

	// Phase 4: flip. Eden and the old past-survivor space are free.
	h.eden.next = h.eden.base
	h.surv[h.past].next = h.surv[h.past].base
	h.past = 1 - h.past
	h.resetTLABs()
	h.to = nil
	if h.alp != nil {
		h.siteByAddr = h.siteNext
		h.siteNext = nil
	}

	pause := p.Now() - start
	h.stats.Scavenges++
	h.stats.LastSurvivors = words
	h.stats.ScavengeTime += pause
	if pause > h.stats.ScavengeMaxPause {
		h.stats.ScavengeMaxPause = pause
	}
	if lh := h.lat; lh != nil {
		lh.ScavengePause.Record(int64(pause))
	}
	if h.rec != nil {
		h.rec.Emit(trace.KScavengeEnd, p.ID(), int64(p.Now()), int64(objs), int64(words), "")
		h.rec.Emit(trace.KGCPause, p.ID(), int64(p.Now()), int64(pause), 0, "")
		h.rec.Emit(trace.KHeapOccupancy, p.ID(), int64(p.Now()),
			int64(h.eden.next-h.eden.base), int64(h.old.next-h.old.base), "")
	}
	h.verifyWriteBarrier(p)

	for _, f := range h.postGC {
		f()
	}
}

// serialScavenge is the paper's single-scavenger path: phases 1–3 of
// the collection plus the cost accounting (the scavenger pays base +
// per-object + per-word; every other processor stalls until it
// finishes). The caller has already reset h.to.
func (h *Heap) serialScavenge(p *firefly.Proc) {
	objsBefore := h.stats.CopiedObjects
	wordsBefore := h.stats.CopiedWords
	to := h.to
	h.oldScan = h.old.next

	// Phase 1: forward the roots.
	visit := func(slot *object.OOP) { *slot = h.forward(*slot) }
	for _, slot := range h.rootSlots {
		visit(slot)
	}
	for _, f := range h.rootFuncs {
		f(visit)
	}
	for _, hp := range h.handlePools {
		for i := range hp.slots {
			visit(&hp.slots[i])
		}
	}

	// Phase 2: scan the entry table. Remembered old objects may hold
	// the only references to live new objects. After scanning, an
	// object stays in the table only if it still refers to new space.
	kept := h.remembered[:0]
	for _, o := range h.remembered {
		if h.scanObject(o) {
			kept = append(kept, o)
		} else {
			h.SetHeader(o, h.Header(o).SetRemembered(false))
		}
	}
	h.remembered = kept

	// Phase 3: Cheney scan of the future survivor space and of objects
	// tenured during this scavenge, until both frontiers are exhausted.
	scan := to.base
	for scan < to.next || h.oldScan < h.old.next {
		for scan < to.next {
			o := object.FromAddr(scan)
			h.scanObject(o)
			scan += uint64(h.Header(o).SizeWords())
		}
		for h.oldScan < h.old.next {
			o := object.FromAddr(h.oldScan)
			h.oldScan += uint64(h.Header(o).SizeWords())
			if h.scanObject(o) {
				// A tenured object still referencing new space
				// enters the entry table.
				hd := h.Header(o)
				if !hd.Remembered() {
					h.SetHeader(o, hd.SetRemembered(true))
					h.remembered = append(h.remembered, o)
				}
			}
		}
	}

	objs := h.stats.CopiedObjects - objsBefore
	words := h.stats.CopiedWords - wordsBefore
	c := h.m.Costs()
	copyTicks := c.ScavengePerObject*firefly.Time(objs) +
		c.ScavengePerWord*firefly.Time(words)
	if lh := h.lat; lh != nil {
		// Serial phase split: the base charge models the rendezvous,
		// the per-object/word charge is the copy work, and termination
		// is immediate (one scavenger, nothing to join).
		lh.ScavRendezvous.Record(int64(c.ScavengeBase))
		lh.ScavCopy.Record(int64(copyTicks))
		lh.ScavTerm.Record(0)
	}
	p.Advance(c.ScavengeBase + copyTicks)
	h.m.StallOthers(p, p.Now())
}

// forward returns the new location of o, copying it out of from-space if
// this is its first visit. Non-pointers and old/immortal objects are
// returned unchanged.
func (h *Heap) forward(o object.OOP) object.OOP {
	if !o.IsPtr() || o.Addr() < h.newBase {
		return o
	}
	hd := h.Header(o)
	if hd.Forwarded() {
		return object.OOP(h.mem[o.Addr()+1])
	}
	size := hd.SizeWords()
	age := hd.Age() + 1
	if ap := h.alp; ap != nil {
		ap.NoteAge(int(age), int64(size))
	}

	var dst uint64
	tenure := age >= h.cfg.TenureAge || h.to.free() < size
	if tenure {
		if h.old.free() < size {
			panic(OOMError{NeedWords: size})
		}
		dst = h.old.next
		h.old.next += uint64(size)
		h.stats.TenuredObjects++
		h.stats.TenuredWords += uint64(size)
		if h.rec != nil {
			h.rec.Emit(trace.KTenure, h.gcProc, h.gcAt, int64(size), 0, "")
		}
		if ap := h.alp; ap != nil {
			if id, ok := h.siteByAddr[o.Addr()]; ok {
				ap.NoteTenured(id, int64(size))
			}
		}
		age = 0
	} else {
		dst = h.to.next
		h.to.next += uint64(size)
		if ap := h.alp; ap != nil {
			if id, ok := h.siteByAddr[o.Addr()]; ok {
				if o.Addr() >= h.eden.base {
					// First scavenge for an eden-born object: it
					// survived.
					ap.NoteSurvived(id, int64(size))
				}
				h.siteNext[dst] = id
			}
		}
	}

	copy(h.mem[dst:dst+uint64(size)], h.mem[o.Addr():o.Addr()+uint64(size)])
	// The copy starts life unremembered and unforwarded at its new age.
	nh := hd.SetAge(age).SetRemembered(false)
	if tenure && h.allocBlack(dst) {
		// Tenured into old space while the concurrent marker is active:
		// born black. Its old-space referents are already shaded — the
		// object was young at the snapshot, so the begin window (or the
		// deletion barrier since) captured them.
		nh = nh.SetMarked(true)
	}
	h.mem[dst] = uint64(nh)

	// Leave a forwarding pointer in the old copy.
	h.mem[o.Addr()] = uint64(hd.SetForwarded())
	h.mem[o.Addr()+1] = dst

	h.stats.CopiedObjects++
	h.stats.CopiedWords += uint64(size)
	return object.FromAddr(dst)
}

// scanObject forwards the class word and every pointer field of o,
// reporting whether o still references new space afterwards.
func (h *Heap) scanObject(o object.OOP) bool {
	refsNew := false
	addr := o.Addr()
	cls := object.OOP(h.mem[addr+1])
	cls = h.forward(cls)
	h.mem[addr+1] = uint64(cls)
	if h.InNewSpace(cls) {
		refsNew = true
	}
	hd := object.Header(h.mem[addr])
	if hd.Format() == object.FmtPointers {
		body := hd.BodyWords()
		for i := 0; i < body; i++ {
			f := object.OOP(h.mem[addr+object.HeaderWords+uint64(i)])
			if !f.IsPtr() || f == object.Invalid {
				continue
			}
			f = h.forward(f)
			h.mem[addr+object.HeaderWords+uint64(i)] = uint64(f)
			if h.InNewSpace(f) {
				refsNew = true
			}
		}
	}
	return refsNew
}

// CheckInvariants walks the heap verifying structural invariants; it is
// used by tests and panics on corruption.
//
//msvet:atomic-excluded test-only invariant walk over a quiesced heap; callers stop the mutators before calling
func (h *Heap) CheckInvariants() {
	checkRegion := func(name string, base, next uint64) {
		a := base
		for a < next {
			hd := object.Header(h.mem[a])
			size := hd.SizeWords()
			if size < object.HeaderWords || a+uint64(size) > next {
				panic(fmt.Sprintf("heap: bad object size %d at %d in %s", size, a, name))
			}
			if hd.Forwarded() {
				panic(fmt.Sprintf("heap: forwarded object at %d in %s outside scavenge", a, name))
			}
			if hd.Format() == object.FmtPointers {
				for i := 0; i < hd.BodyWords(); i++ {
					f := object.OOP(h.mem[a+object.HeaderWords+uint64(i)])
					if f.IsPtr() && f != object.Invalid {
						h.checkPointer(name, a, f)
					}
				}
			}
			cls := object.OOP(h.mem[a+1])
			if cls.IsPtr() && cls != object.Invalid {
				h.checkPointer(name, a, cls)
			}
			a += uint64(size)
		}
	}
	checkRegion("old", h.old.base, h.old.next)
	checkRegion("past-survivor", h.surv[h.past].base, h.surv[h.past].next)
	if h.cfg.Policy == AllocSerialized {
		// Under per-processor allocation, eden has per-chunk gaps of
		// unallocated words and cannot be walked linearly.
		checkRegion("eden", h.eden.base, h.eden.next)
	}
}

func (h *Heap) checkPointer(region string, from uint64, f object.OOP) {
	a := f.Addr()
	ok := a < uint64(object.FirstFreeAddress) ||
		(a >= h.old.base && a < h.old.next) ||
		h.surv[h.past].contains(a) && a < h.surv[h.past].next ||
		(a >= h.eden.base && a < h.eden.next)
	// Pointers into TLAB-reserved but unallocated eden are also fine;
	// contains-check above uses eden.next which covers reserved chunks.
	if !ok {
		panic(fmt.Sprintf("heap: object at %d in %s points to dead region (%d)", from, region, a))
	}
}
