package heap

import (
	"testing"

	"mst/internal/firefly"
	"mst/internal/object"
)

func TestFullCollectReclaimsDeadOldObjects(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var keep object.OOP
		h.AddRoot(&keep)
		keep = h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.StoreNoCheck(keep, 0, object.FromInt(7))
		// Dead weight in old space.
		for i := 0; i < 50; i++ {
			h.AllocateNoGC(object.Nil, 10, object.FmtPointers)
		}
		usedBefore := h.Stats().OldWordsInUse
		h.FullCollect(p)
		st := h.Stats()
		if st.FullCollections != 1 {
			t.Fatalf("collections = %d", st.FullCollections)
		}
		if st.OldWordsInUse >= usedBefore {
			t.Fatalf("old space did not shrink: %d -> %d", usedBefore, st.OldWordsInUse)
		}
		if st.ReclaimedOldWords == 0 {
			t.Fatal("nothing reclaimed")
		}
		if h.Fetch(keep, 0).Int() != 7 {
			t.Fatal("live object corrupted")
		}
		h.CheckInvariants()
	})
}

func TestFullCollectSlidesAndRewires(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		// dead, live-a, dead, live-b with live-a -> live-b: after
		// compaction both move and the reference must follow.
		h.AllocateNoGC(object.Nil, 20, object.FmtPointers)
		var a object.OOP
		h.AddRoot(&a)
		a = h.AllocateNoGC(object.Nil, 2, object.FmtPointers)
		h.AllocateNoGC(object.Nil, 20, object.FmtPointers)
		b := h.AllocateNoGC(object.Nil, 1, object.FmtPointers)
		h.StoreNoCheck(b, 0, object.FromInt(99))
		h.Store(p, a, 0, b)

		aBefore := a
		h.FullCollect(p)
		if a == aBefore {
			t.Fatal("object did not slide despite dead predecessor")
		}
		moved := h.Fetch(a, 0)
		if h.Fetch(moved, 0).Int() != 99 {
			t.Fatal("reference to slid object broken")
		}
		h.CheckInvariants()
	})
}

func TestFullCollectPreservesNewSpace(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		root = h.Allocate(p, object.Nil, 2, object.FmtPointers)
		h.StoreNoCheck(root, 0, object.FromInt(123))
		// An old object referencing a new one (remembered set entry).
		var old object.OOP
		h.AddRoot(&old)
		old = h.AllocateNoGC(object.Nil, 1, object.FmtPointers)
		h.Store(p, old, 0, root)

		h.FullCollect(p)
		if h.Fetch(root, 0).Int() != 123 {
			t.Fatal("new-space object corrupted")
		}
		if got := h.Fetch(old, 0); got != root {
			t.Fatalf("old->new reference broken: %v vs %v", got, root)
		}
		// The young object must still be scavengeable afterwards.
		h.Scavenge(p)
		if h.Fetch(h.Fetch(old, 0), 0).Int() != 123 {
			t.Fatal("remembered set lost across full collection")
		}
		h.CheckInvariants()
	})
}

func TestFullCollectDropsDeadRememberedEntries(t *testing.T) {
	testHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		// A dead old object remembered for referencing new space: the
		// entry must vanish with its object.
		dead := h.AllocateNoGC(object.Nil, 1, object.FmtPointers)
		young := h.Allocate(p, object.Nil, 0, object.FmtPointers)
		h.Store(p, dead, 0, young)
		if h.RememberedCount() != 1 {
			t.Fatal("setup: not remembered")
		}
		h.FullCollect(p)
		if h.RememberedCount() != 0 {
			t.Fatalf("remembered = %d after full GC", h.RememberedCount())
		}
	})
}

func TestFullCollectChained(t *testing.T) {
	cfg := smallConfig()
	testHeap(t, cfg, func(h *Heap, p *firefly.Proc) {
		var root object.OOP
		h.AddRoot(&root)
		// Build, collect, verify repeatedly while creating garbage.
		for round := 0; round < 5; round++ {
			root = object.Nil
			for i := 0; i < 30; i++ {
				hs := h.Handles(p)
				n := h.Allocate(p, object.Nil, 2, object.FmtPointers)
				h.StoreNoCheck(n, 0, object.FromInt(int64(i)))
				h.Store(p, n, 1, root)
				root = n
				hs.Close()
			}
			for i := 0; i < 10; i++ {
				h.AllocateNoGC(object.Nil, 8, object.FmtPointers)
			}
			h.FullCollect(p)
			n := root
			for i := 29; i >= 0; i-- {
				if h.Fetch(n, 0).Int() != int64(i) {
					t.Fatalf("round %d: node %d corrupted", round, i)
				}
				n = h.Fetch(n, 1)
			}
			h.CheckInvariants()
		}
		if h.Stats().FullCollections != 5 {
			t.Fatalf("collections = %d", h.Stats().FullCollections)
		}
	})
}

func TestFullCollectStallsOthers(t *testing.T) {
	m := firefly.New(2, firefly.DefaultCosts())
	h := New(m, smallConfig())
	m.Start(0, func(p *firefly.Proc) {
		for i := 0; i < 40; i++ {
			h.AllocateNoGC(object.Nil, 16, object.FmtPointers)
		}
		p.Advance(100)
		h.FullCollect(p)
	})
	m.Start(1, func(p *firefly.Proc) {
		for i := 0; i < 3000; i++ {
			p.Advance(1)
			p.CheckYield()
		}
	})
	m.Run(nil)
	if m.Proc(1).Stats().Stall == 0 {
		t.Fatal("full collection did not stall the other processor")
	}
}
