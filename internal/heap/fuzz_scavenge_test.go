package heap

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/sanitize"
)

// The differential GC fuzzer: a seeded random object-graph builder and
// mutator runs the identical operation sequence through the serial
// scavenger and the parallel one, then compares the surviving graphs —
// live set, per-object tenure decision and age, remembered-set
// contents — object by object. Objects are identified by a unique
// SmallInteger stamped into field 0 at allocation, so the comparison
// is insensitive to addresses (the parallel scavenger's per-worker
// copy buffers place survivors differently by design).
//
// The survivor space is sized so overflow tenuring never triggers:
// age-driven tenuring is order-independent, so the two scavengers must
// agree exactly. (Overflow tenuring is the one documented behavioral
// deviation: the serial scavenger overflows at a precise fill point,
// the parallel one when a chunk carve fails.)

// fuzzConfig sizes the heap so the fuzzer's live set (a few hundred
// words) never overflow-tenures even with per-worker chunk
// fragmentation eating into the survivor space.
func fuzzConfig() Config {
	return Config{
		OldWords:      16384,
		EdenWords:     2048,
		SurvivorWords: 4096,
		TenureAge:     3,
		Policy:        AllocSerialized,
		LocksEnabled:  true,
	}
}

// canonObj is one live object in address-free form.
type canonObj struct {
	Old        bool
	Age        int
	Remembered bool
	Fields     []string
}

// fuzzResult is one run's surviving state in address-free form.
type fuzzResult struct {
	Roots      []string
	Objs       map[int64]canonObj
	Remembered []int64
}

// fuzzOps drives the seeded random workload on h, registering the
// young list as a root set (so scavenges triggered mid-build update
// it), and runs the final scavenge pair. The operation sequence is a
// pure function of the seed: no decision feeds back from heap
// addresses or clocks into the generator, so a serial and a parallel
// run replay identical mutations.
func fuzzOps(h *Heap, p *firefly.Proc, seed int64) (young, olds []object.OOP) {
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range young {
			visit(&young[i])
		}
	})
	rng := rand.New(rand.NewSource(seed))
	nextID := int64(1)
	stamp := func(o object.OOP) object.OOP {
		h.StoreNoCheck(o, 0, object.FromInt(nextID))
		nextID++
		return o
	}

	n := 150 + rng.Intn(151)
	for op := 0; op < n; op++ {
		switch r := rng.Intn(100); {
		case r < 50: // allocate a young object, wiring some edges
			fields := 2 + rng.Intn(5)
			o := stamp(h.Allocate(p, object.Nil, fields, object.FmtPointers))
			for i := 1; i < fields; i++ {
				if len(young) > 0 && rng.Intn(100) < 40 {
					h.Store(p, o, i, young[rng.Intn(len(young))])
				}
			}
			young = append(young, o)
		case r < 65: // young→young edge
			if len(young) >= 2 {
				a := young[rng.Intn(len(young))]
				b := young[rng.Intn(len(young))]
				h.Store(p, a, 1+rng.Intn(h.FieldCount(a)-1), b)
			}
		case r < 75: // drop a root: the subgraph may become garbage
			if len(young) > 0 {
				k := rng.Intn(len(young))
				young = append(young[:k], young[k+1:]...)
			}
		case r < 85: // allocate an old object referencing new space
			fields := 2 + rng.Intn(3)
			o := stamp(h.AllocateNoGC(object.Nil, fields, object.FmtPointers))
			if len(young) > 0 {
				h.Store(p, o, 1+rng.Intn(fields-1), young[rng.Intn(len(young))])
			}
			olds = append(olds, o)
		case r < 95: // old→young edge (or severing one with nil)
			if len(olds) > 0 && len(young) > 0 {
				o := olds[rng.Intn(len(olds))]
				v := young[rng.Intn(len(young))]
				if rng.Intn(100) < 20 {
					v = object.Nil
				}
				h.Store(p, o, 1+rng.Intn(h.FieldCount(o)-1), v)
			}
		default: // explicit scavenge mid-build
			h.Scavenge(p)
		}
	}
	h.Scavenge(p)
	// Mutate between the final pair of scavenges so the second one
	// re-derives the remembered set from fresh stores.
	if len(olds) > 0 && len(young) > 0 {
		h.Store(p, olds[0], 1, young[len(young)-1])
	}
	if len(young) >= 2 {
		h.Store(p, young[0], 1, young[len(young)-1])
	}
	h.Scavenge(p)
	h.CheckInvariants()
	return young, olds
}

// canonicalize walks the surviving graph breadth-first from the roots
// and the old-space anchors, keying every object by its field-0 ID.
func canonicalize(t *testing.T, h *Heap, young, olds []object.OOP) fuzzResult {
	t.Helper()
	idOf := func(o object.OOP) int64 { return h.Fetch(o, 0).Int() }
	enc := func(v object.OOP) string {
		switch {
		case v == object.Nil:
			return "nil"
		case v.IsInt():
			return fmt.Sprintf("i%d", v.Int())
		case !v.IsPtr():
			return fmt.Sprintf("raw%#x", uint64(v))
		default:
			return fmt.Sprintf("#%d", idOf(v))
		}
	}
	res := fuzzResult{Objs: map[int64]canonObj{}}
	var queue []object.OOP
	seen := map[object.OOP]bool{}
	push := func(o object.OOP) {
		if o.IsPtr() && o != object.Nil && !seen[o] {
			seen[o] = true
			queue = append(queue, o)
		}
	}
	for _, o := range young {
		res.Roots = append(res.Roots, enc(o))
		push(o)
	}
	for _, o := range olds {
		push(o)
	}
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		hd := h.Header(o)
		co := canonObj{
			Old:        h.InOldSpace(o),
			Age:        hd.Age(),
			Remembered: hd.Remembered(),
		}
		for i := 1; i < h.FieldCount(o); i++ {
			v := h.Fetch(o, i)
			co.Fields = append(co.Fields, enc(v))
			push(v)
		}
		id := idOf(o)
		if _, dup := res.Objs[id]; dup {
			t.Fatalf("duplicate live object ID %d: an object was copied twice", id)
		}
		res.Objs[id] = co
	}
	for _, o := range h.remembered {
		res.Remembered = append(res.Remembered, idOf(o))
	}
	sort.Slice(res.Remembered, func(i, j int) bool { return res.Remembered[i] < res.Remembered[j] })
	return res
}

// runScavFuzzDet runs one seeded workload deterministically on a
// four-processor machine (driver on processor 0) and returns the
// canonical surviving state. The sanitizer rides along and must stay
// clean.
func runScavFuzzDet(t *testing.T, seed int64, parScav bool) fuzzResult {
	t.Helper()
	cfg := fuzzConfig()
	cfg.ParScavenge = parScav
	m := firefly.New(4, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	var res fuzzResult
	m.Start(0, func(p *firefly.Proc) {
		young, olds := fuzzOps(h, p, seed)
		res = canonicalize(t, h, young, olds)
	})
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("seed %d (parscavenge=%v): machine stopped with %v", seed, parScav, r)
	}
	if vs := san.Violations(); len(vs) != 0 {
		t.Fatalf("seed %d (parscavenge=%v): sanitizer violations:\n%s", seed, parScav, san.Report())
	}
	if h.Stats().Scavenges == 0 {
		t.Fatalf("seed %d: no scavenge ran; the fuzzer exercised nothing", seed)
	}
	return res
}

// TestScavengeFuzzDifferential is the differential fuzzer: 200 seeds,
// each replayed through the serial and the parallel scavenger, with
// the surviving graphs compared exactly. A failure names the seed.
func TestScavengeFuzzDifferential(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		serial := runScavFuzzDet(t, seed, false)
		parallel := runScavFuzzDet(t, seed, true)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: serial and parallel scavengers diverge\nserial:   %+v\nparallel: %+v",
				seed, serial, parallel)
		}
	}
}

// runScavFuzzHost replays a seeded workload in parallel host mode
// (real goroutine processors, ParScavenge on) with injected per-worker
// delays and a permuted-by-delay start order, and returns the
// canonical surviving state.
func runScavFuzzHost(t *testing.T, seed int64, delays []time.Duration) fuzzResult {
	t.Helper()
	const procs = 4
	cfg := fuzzConfig()
	cfg.Parallel = true
	cfg.ParScavenge = true
	m := firefly.New(procs, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	h.scavDelay = func(worker int) {
		if worker < len(delays) && delays[worker] > 0 {
			time.Sleep(delays[worker])
		}
	}
	var res fuzzResult
	var done atomic.Bool
	m.Start(0, func(p *firefly.Proc) {
		young, olds := fuzzOps(h, p, seed)
		res = canonicalize(t, h, young, olds)
		done.Store(true)
	})
	for i := 1; i < procs; i++ {
		m.Start(i, func(p *firefly.Proc) {
			for !p.Stopped() {
				p.AdvanceIdle(10)
				p.Yield()
			}
		})
	}
	m.SetParallel(true)
	if r := m.Run(func() bool { return done.Load() }); r != firefly.StopUntil {
		t.Fatalf("host run (delays %v): Run returned %v", delays, r)
	}
	m.Shutdown()
	if vs := san.Violations(); len(vs) != 0 {
		t.Fatalf("host run (delays %v): sanitizer violations:\n%s", delays, san.Report())
	}
	return res
}

// TestParScavengeScheduleIndependence is the schedule-exploration
// test: the host-parallel scavenger runs the same workload under
// different injected per-worker delay patterns (skewing which workers
// start copying first and who steals from whom), and every schedule
// must produce the identical surviving graph — which must also match
// the deterministic serial scavenger's. Run under -race this doubles
// as the data-race certificate for the claim/publish protocol.
func TestParScavengeScheduleIndependence(t *testing.T) {
	const seed = 7
	want := runScavFuzzDet(t, seed, false)
	schedules := [][]time.Duration{
		nil,                             // unperturbed
		{2 * time.Millisecond, 0, 0, 0}, // owner lags: helpers drain the roots
		{0, 2 * time.Millisecond, time.Millisecond, 0}, // staggered helpers
		{0, 0, 0, 2 * time.Millisecond},                // one straggler forces steals
	}
	for i, delays := range schedules {
		got := runScavFuzzHost(t, seed, delays)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("schedule %d (delays %v): surviving graph diverges from serial\nwant: %+v\ngot:  %+v",
				i, delays, want, got)
		}
	}
}
