package heap

import (
	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// FullCollect performs a stop-the-world full collection: a scavenge to
// empty eden, then mark-and-compact over old space (Berkeley Smalltalk
// reclaimed its old space with offline compaction; MS inherits the
// design — the world is stopped either way).
//
// The compactor is a classic sliding (Lisp-2 style) collector with the
// forwarding table held outside the heap. Everything below old space
// (the immortal nil/true/false area) never moves.
func (h *Heap) FullCollect(p *firefly.Proc) {
	if h.cfg.ConcMark {
		// Concurrent marking replaces the stop-the-world mark-compact:
		// same synchronous contract, bounded pauses (concmark.go).
		h.fullCollectConc(p)
		return
	}
	if h.par {
		if !h.m.StopTheWorld(p) {
			// Another processor collected while we waited; whatever
			// space pressure prompted this call has been relieved.
			return
		}
		defer h.m.ResumeTheWorld(p)
	}
	start := p.Now()
	if h.rec != nil {
		h.rec.Emit(trace.KFullGCBegin, p.ID(), int64(start), 0, 0, "")
	}

	// Empty eden and one survivor space first, so new space holds only
	// the past-survivor objects and every other live object is in old
	// space.
	h.Scavenge(p)
	for _, f := range h.preGC {
		f()
	}
	h.inGC = true
	defer func() { h.inGC = false }()

	// ---- Mark phase: trace the full graph from the registered roots.
	var stack []object.OOP
	markValue := func(o object.OOP) {
		if !o.IsPtr() || o == object.Invalid || o.Addr() < h.old.base {
			return
		}
		hd := h.Header(o)
		if hd.Marked() {
			return
		}
		h.SetHeader(o, hd.SetMarked(true))
		stack = append(stack, o)
	}
	visit := func(slot *object.OOP) { markValue(*slot) }
	h.visitAllRoots(visit)
	marked := uint64(0)
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		marked++
		addr := o.Addr()
		markValue(object.OOP(h.mem[addr+1])) // class
		hd := h.Header(o)
		if hd.Format() == object.FmtPointers {
			for i := 0; i < hd.BodyWords(); i++ {
				markValue(object.OOP(h.mem[addr+object.HeaderWords+uint64(i)]))
			}
		}
	}

	// ---- Plan phase: compute sliding forwarding addresses for marked
	// old-space objects. The table lives outside the heap.
	forwarding := map[uint64]uint64{}
	dst := h.old.base
	reclaimed := uint64(0)
	for a := h.old.base; a < h.old.next; {
		hd := object.Header(h.mem[a])
		size := uint64(hd.SizeWords())
		if hd.Marked() {
			if dst != a {
				forwarding[a] = dst
			}
			dst += size
		} else {
			reclaimed += size
		}
		a += size
	}

	fwd := func(o object.OOP) object.OOP {
		if !o.IsPtr() || o == object.Invalid {
			return o
		}
		if na, ok := forwarding[o.Addr()]; ok {
			return object.FromAddr(na)
		}
		return o
	}

	// ---- Fixup phase: update every reference — roots, live old-space
	// objects, and everything in the surviving new space. In new space,
	// a reference to an *unmarked* old object can only occur inside a
	// dead survivor (one kept alive by the last scavenge's remembered
	// set through a now-dead old object); such references are nilled so
	// they never dangle into compacted-over memory.
	h.visitAllRoots(func(slot *object.OOP) { *slot = fwd(*slot) })
	fixWord := func(idx uint64, nilDead bool) {
		o := object.OOP(h.mem[idx])
		if !o.IsPtr() || o == object.Invalid {
			return
		}
		if nilDead && o.Addr() >= h.old.base && o.Addr() < h.old.next &&
			!object.Header(h.mem[o.Addr()]).Marked() {
			h.mem[idx] = uint64(object.Nil)
			return
		}
		h.mem[idx] = uint64(fwd(o))
	}
	fixObject := func(a uint64, nilDead bool) {
		hd := object.Header(h.mem[a])
		fixWord(a+1, nilDead)
		if hd.Format() == object.FmtPointers {
			for i := 0; i < hd.BodyWords(); i++ {
				fixWord(a+object.HeaderWords+uint64(i), nilDead)
			}
		}
	}
	for a := h.old.base; a < h.old.next; {
		hd := object.Header(h.mem[a])
		if hd.Marked() {
			fixObject(a, false)
		}
		a += uint64(hd.SizeWords())
	}
	past := &h.surv[h.past]
	for a := past.base; a < past.next; {
		fixObject(a, true)
		a += uint64(object.Header(h.mem[a]).SizeWords())
	}

	// The remembered set references old objects: forward the entries
	// (dead entries were unmarked old objects; they can only be dead if
	// nothing references them, and the set is not a root, so drop them).
	kept := h.remembered[:0]
	for _, o := range h.remembered {
		if h.Header(o).Marked() {
			kept = append(kept, fwd(o))
		}
	}
	h.remembered = kept

	// ---- Move phase: slide marked objects down, clearing mark bits.
	for a := h.old.base; a < h.old.next; {
		hd := object.Header(h.mem[a])
		size := uint64(hd.SizeWords())
		if hd.Marked() {
			target := a
			if na, ok := forwarding[a]; ok {
				target = na
			}
			h.mem[target] = uint64(hd.SetMarked(false))
			copy(h.mem[target+1:target+size], h.mem[a+1:a+size])
			a += size
			continue
		}
		a += size
	}
	h.old.next = dst
	// Clear mark bits in the surviving new space too.
	for a := past.base; a < past.next; {
		hd := object.Header(h.mem[a])
		h.mem[a] = uint64(hd.SetMarked(false))
		a += uint64(hd.SizeWords())
	}

	// Accounting: a full collection costs per live object and word,
	// and stalls every other processor.
	c := h.m.Costs()
	p.Advance(c.ScavengeBase*4 +
		c.ScavengePerObject*firefly.Time(marked) +
		c.ScavengePerWord*firefly.Time(dst-h.old.base))
	h.m.StallOthers(p, p.Now())

	pause := p.Now() - start
	h.stats.FullCollections++
	h.stats.FullGCTime += pause
	if pause > h.stats.FullGCMaxPause {
		h.stats.FullGCMaxPause = pause
	}
	h.stats.ReclaimedOldWords += reclaimed
	if lh := h.lat; lh != nil {
		// The pause includes the nested eden-emptying scavenge, which
		// also recorded itself in ScavengePause — the distributions
		// overlap by design, like FullGCTime and ScavengeTime.
		lh.FullGCPause.Record(int64(pause))
	}
	if h.rec != nil {
		h.rec.Emit(trace.KFullGCEnd, p.ID(), int64(p.Now()), int64(reclaimed), 0, "")
		h.rec.Emit(trace.KGCPause, p.ID(), int64(p.Now()), int64(pause), 1, "")
		h.rec.Emit(trace.KHeapOccupancy, p.ID(), int64(p.Now()),
			int64(h.eden.next-h.eden.base), int64(h.old.next-h.old.base), "")
	}

	for _, f := range h.postGC {
		f()
	}
}

// visitAllRoots applies visit to every registered root slot, root
// function, and handle.
func (h *Heap) visitAllRoots(visit func(*object.OOP)) {
	for _, slot := range h.rootSlots {
		visit(slot)
	}
	for _, f := range h.rootFuncs {
		f(visit)
	}
	for _, hp := range h.handlePools {
		for i := range hp.slots {
			visit(&hp.slots[i])
		}
	}
}
