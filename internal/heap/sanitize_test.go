package heap

import (
	"strings"
	"testing"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/sanitize"
)

// sanHeap builds a small heap on a machine with an attached sanitizer
// and runs fn on one processor.
func sanHeap(t *testing.T, cfg Config, fn func(h *Heap, p *firefly.Proc)) *sanitize.Checker {
	t.Helper()
	m := firefly.New(1, firefly.DefaultCosts())
	san := sanitize.New()
	m.SetSanitizer(san)
	h := New(m, cfg)
	m.Start(0, func(p *firefly.Proc) { fn(h, p) })
	if r := m.Run(nil); r != firefly.StopAllDone {
		t.Fatalf("machine stopped with %v", r)
	}
	return san
}

// A normal allocate/store/scavenge workload must be completely clean
// under the sanitizer, and the write-barrier verifier must have run.
func TestSanitizerCleanWorkload(t *testing.T) {
	san := sanHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		// Build an old object, then make it reference new space through
		// the proper barrier, then scavenge repeatedly.
		old := h.AllocateNoGC(object.Nil, 4, object.FmtPointers)
		var root object.OOP = object.Nil
		h.AddRoot(&root)
		for i := 0; i < 5; i++ {
			young := h.Allocate(p, object.Nil, 2, object.FmtPointers)
			root = young
			h.Store(p, old, 0, young)
			h.Scavenge(p)
		}
	})
	if vs := san.Violations(); len(vs) != 0 {
		t.Fatalf("clean workload reported violations:\n%s", san.Report())
	}
	st := san.Stats()
	if st.BarrierScans == 0 {
		t.Error("write-barrier verifier never ran")
	}
	if st.AccessChecks == 0 || st.LockEvents == 0 {
		t.Errorf("no checking happened: %+v", st)
	}
}

// Fault injection: a store that bypasses the store check (StoreNoCheck
// misused on an old object with a new-space value) must be caught by
// the write-barrier verifier at the next scavenge — and by nothing
// else (exactly the intended engine fires).
func TestSanitizerCatchesStoreCheckBypass(t *testing.T) {
	san := sanHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		old := h.AllocateNoGC(object.Nil, 4, object.FmtPointers)
		young := h.Allocate(p, object.Nil, 2, object.FmtPointers)
		// BUG UNDER TEST: this store needs the store check; without it
		// the scavenger never learns `old` references new space.
		h.StoreNoCheck(old, 1, young)
		h.Scavenge(p)
	})
	vs := san.Violations()
	if len(vs) == 0 {
		t.Fatal("store-check bypass not detected")
	}
	for _, v := range vs {
		if v.Kind != sanitize.KindWriteBarrier {
			t.Errorf("unexpected violation kind %v (want only write-barrier): %s", v.Kind, v)
		}
	}
	if !strings.Contains(vs[0].String(), "store check") {
		t.Errorf("violation does not name the store check: %s", vs[0])
	}
}

// The converse fault: an entry-table entry whose object no longer
// references new space would mean the scavenger failed to prune it.
// Simulate by appending a stale entry directly (test-only reach into
// the representation) and verifying the next scavenge's scan flags the
// header-bit/table disagreement.
func TestSanitizerCatchesStaleEntryTableBit(t *testing.T) {
	san := sanHeap(t, smallConfig(), func(h *Heap, p *firefly.Proc) {
		old := h.AllocateNoGC(object.Nil, 4, object.FmtPointers)
		h.Scavenge(p) // establish a clean baseline scan
		// BUG UNDER TEST: table membership without the header bit. The
		// scavenger would prune this entry in phase 2, so drive the
		// verifier directly, as the post-scavenge hook would.
		h.remembered = append(h.remembered, old)
		h.verifyWriteBarrier(p)
	})
	found := false
	for _, v := range san.Violations() {
		if v.Kind == sanitize.KindWriteBarrier && strings.Contains(v.Detail, "disagrees") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale entry-table bit not detected:\n%s", san.Report())
	}
}

// The sanitizer must leave the heap's behaviour untouched: identical
// stats with and without it (determinism sentinel at the heap level).
func TestSanitizerHeapDeterminism(t *testing.T) {
	run := func(sanitized bool) (Stats, firefly.Time) {
		m := firefly.New(1, firefly.DefaultCosts())
		if sanitized {
			m.SetSanitizer(sanitize.New())
		}
		h := New(m, smallConfig())
		var at firefly.Time
		m.Start(0, func(p *firefly.Proc) {
			var root object.OOP = object.Nil
			h.AddRoot(&root)
			old := h.AllocateNoGC(object.Nil, 4, object.FmtPointers)
			for i := 0; i < 200; i++ {
				o := h.Allocate(p, object.Nil, 8, object.FmtPointers)
				root = o
				if i%17 == 0 {
					h.Store(p, old, 0, o)
				}
			}
			at = p.Now()
		})
		if r := m.Run(nil); r != firefly.StopAllDone {
			t.Fatalf("machine stopped with %v", r)
		}
		return h.Stats(), at
	}
	plain, plainAt := run(false)
	checked, checkedAt := run(true)
	if plain != checked {
		t.Errorf("heap stats diverge under sanitizer:\noff: %+v\non:  %+v", plain, checked)
	}
	if plainAt != checkedAt {
		t.Errorf("virtual time diverges under sanitizer: off=%v on=%v", plainAt, checkedAt)
	}
}
