package heap

import (
	"fmt"

	"mst/internal/firefly"
	"mst/internal/object"
)

// verifyWriteBarrier is mscheck's write-barrier engine: an independent,
// read-only rescan of old space (plus the immortal area) run at the end
// of every scavenge when a sanitizer is attached. A scavenge has just
// reset eden and the previous survivor semispace, so the entry table is
// exactly the set of old objects that reference new space; any old→new
// pointer in an object outside the table means a store bypassed the
// store check, and any pointer into a reclaimed region is the dangling
// reference such a bypass leaves behind once the target is collected or
// moved. Violations go to the checker; nothing in the heap is written.
//
// This file is intentionally read-only (it never assigns to h.mem);
// msvet's heapwrite analyzer keeps it that way by excluding it from the
// barrier-API allowlist.
func (h *Heap) verifyWriteBarrier(p *firefly.Proc) {
	san := h.san
	if san == nil {
		return
	}

	// Live new space right after a scavenge: the (new) past survivor
	// space up to its allocation frontier. Eden and the other semispace
	// were just reclaimed. The parallel scavenger copies through
	// per-worker buffers, so the space is not one contiguous prefix of
	// survivors: retired buffers leave filler-capped gaps, and a bare
	// range check would bless a pointer into a gap (or into the middle
	// of an object). Walk the space once and admit only the start
	// addresses of real (non-filler) objects.
	live := h.surv[h.past]
	starts := make(map[uint64]bool)
	for a := live.base; a < live.next; {
		hd := object.Header(h.mem[a])
		size := hd.SizeWords()
		if size < object.HeaderWords {
			break // corrupt header; CheckInvariants reports the details
		}
		if !h.isScavFiller(a) {
			starts[a] = true
		}
		a += uint64(size)
	}
	liveNew := func(a uint64) bool { return starts[a] }

	inTable := make(map[object.OOP]bool, len(h.remembered))
	for _, o := range h.remembered {
		inTable[o] = true
	}

	at := int64(p.Now())
	words := h.old.next - h.old.base

	checkField := func(o object.OOP, what string, v object.OOP) bool {
		if !v.IsPtr() || v == object.Invalid || v.Addr() < h.newBase {
			return false
		}
		if !liveNew(v.Addr()) {
			san.ReportWriteBarrier(p.ID(), at, fmt.Sprintf(
				"old object %#x %s points into reclaimed new space (%#x): a store bypassed the store check",
				o.Addr(), what, v.Addr()))
			return false
		}
		return true
	}

	scan := func(o object.OOP) {
		addr := o.Addr()
		hd := object.Header(h.mem[addr])
		refsNew := checkField(o, "class word", object.OOP(h.mem[addr+1]))
		if hd.Format() == object.FmtPointers {
			for i := 0; i < hd.BodyWords(); i++ {
				v := object.OOP(h.mem[addr+object.HeaderWords+uint64(i)])
				if checkField(o, fmt.Sprintf("field %d", i), v) {
					refsNew = true
				}
			}
		}
		if refsNew && !inTable[o] {
			san.ReportWriteBarrier(p.ID(), at, fmt.Sprintf(
				"old object %#x references new space but is not in the entry table: a store bypassed the store check",
				o.Addr()))
		}
		if !refsNew && inTable[o] {
			san.ReportWriteBarrier(p.ID(), at, fmt.Sprintf(
				"entry table retains old object %#x which no longer references new space",
				o.Addr()))
		}
		if inTable[o] != hd.Remembered() {
			san.ReportWriteBarrier(p.ID(), at, fmt.Sprintf(
				"old object %#x: remembered header bit (%v) disagrees with entry-table membership (%v)",
				o.Addr(), hd.Remembered(), inTable[o]))
		}
	}

	for _, fixed := range []object.OOP{object.Nil, object.True, object.False} {
		scan(fixed)
		words += uint64(object.Header(h.mem[fixed.Addr()]).SizeWords())
	}
	// Between a concurrent mark's finalize window and the end of its
	// lazy sweep, old space still holds dead objects whose entry-table
	// pruning already happened; their stale young references are about
	// to be overwritten with fillers, not fixed. Skip unmarked objects
	// in that interim — the next scavenge after the sweep verifies the
	// full space again.
	sweepPending := h.cm != nil && h.cm.sweepPending.Load()
	a := h.old.base
	for a < h.old.next {
		o := object.FromAddr(a)
		if !sweepPending || object.Header(h.mem[a]).Marked() {
			scan(o)
		}
		a += uint64(object.Header(h.mem[a]).SizeWords())
	}
	san.NoteBarrierScan(words)
}

// verifyTriColor is the concurrent marker's finalize-window check: a
// read-only traversal from the registered roots (through young objects
// — young space is not traced by the marker, but its referents were
// shaded at the snapshot) asserting that every reachable old-space
// object is marked. A white reachable object here means a deletion
// barrier was skipped or a shade was lost, and the sweep would turn a
// live object into a dangling reference. Violations go to the checker;
// nothing in the heap is written.
func (h *Heap) verifyTriColor(p *firefly.Proc) {
	san := h.san
	if san == nil {
		return
	}
	at := int64(p.Now())
	seen := make(map[uint64]bool)
	var stack []uint64
	visit := func(o object.OOP) {
		if !o.IsPtr() || o == object.Invalid {
			return
		}
		a := o.Addr()
		if a < h.old.base {
			return // the immortals are never collected
		}
		if seen[a] {
			return
		}
		seen[a] = true
		if a < h.newBase && !object.Header(h.mem[a]).Marked() {
			san.ReportConcMark(p.ID(), at, fmt.Sprintf(
				"tri-color invariant broken: old object %#x is reachable but unmarked at finalize",
				a))
		}
		stack = append(stack, a)
	}
	h.visitAllRoots(func(slot *object.OOP) { visit(*slot) })
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		hd := object.Header(h.mem[a])
		visit(object.OOP(h.mem[a+1]))
		if hd.Format() == object.FmtPointers {
			for i := 0; i < hd.BodyWords(); i++ {
				visit(object.OOP(h.mem[a+object.HeaderWords+uint64(i)]))
			}
		}
	}
}
