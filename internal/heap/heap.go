// Package heap implements the MS object memory: a single shared word
// array holding old space, an eden, and two survivor semispaces, reclaimed
// by Ungar's Generation Scavenging (the collector used by Berkeley
// Smalltalk and MS, stop-and-copy with tenuring and no object table).
//
// Concurrency follows the paper's strategies: allocation is *serialized*
// under a virtual spinlock (with the paper's future-work alternative,
// *replicated* per-processor allocation areas, available as a policy);
// entry-table maintenance (store checks recording old→new references) is
// serialized; and scavenging stops the world — the allocating processor
// becomes the scavenger and every other processor's clock is advanced to
// the scavenge end, modelling the global-flag + IPC rendezvous.
package heap

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/sanitize"
	"mst/internal/trace"
)

// AllocPolicy selects how new-space allocation is synchronized.
type AllocPolicy int

const (
	// AllocSerialized is the paper's design: one shared allocation
	// pointer guarded by a spinlock.
	AllocSerialized AllocPolicy = iota
	// AllocPerProcessor gives each processor its own allocation chunk
	// refilled from eden under the lock (the paper's §4 suggestion that
	// "replication of the new-object space should have significant
	// benefits").
	AllocPerProcessor
)

func (p AllocPolicy) String() string {
	switch p {
	case AllocSerialized:
		return "serialized"
	case AllocPerProcessor:
		return "per-processor"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// Config sizes and configures an object memory. All sizes are in 8-byte
// words.
type Config struct {
	// OldWords is the old-space size. The Firefly had 16 MB of shared
	// memory; the default models a generous old space.
	OldWords int
	// EdenWords is the allocation space size (the paper's s, 80 KB).
	EdenWords int
	// SurvivorWords is the size of each of the two survivor semispaces.
	SurvivorWords int
	// TenureAge is the number of scavenges an object must survive
	// before being promoted to old space.
	TenureAge int
	// Policy selects the allocation synchronization strategy.
	Policy AllocPolicy
	// LocksEnabled enables the virtual locks (MS mode). When false
	// (baseline BS), lock operations cost nothing, modelling the system
	// without multiprocessor support compiled in.
	LocksEnabled bool
	// TortureGC forces a scavenge before every allocation; test use.
	TortureGC bool
	// Parallel marks the heap for parallel host mode: word accessors
	// become host-atomic, allocation statistics are sharded per
	// processor, identity-hash assignment takes a host mutex, and the
	// scavenger stops the world through the machine's rendezvous
	// barrier instead of assuming the baton protocol stopped it.
	Parallel bool
	// ParScavenge enables the parallel generation scavenger: during the
	// stop-the-world window every processor cooperatively copies
	// survivors from per-processor work-stealing deques into
	// per-processor copy buffers, with CAS-claimed forwarding pointers.
	// In deterministic mode the parallel scan is simulated (scavenge
	// wall time = max over workers of their charged copy costs); in
	// parallel host mode the deques and the forwarding CAS are real.
	// Off by default: the paper serializes GC (Table 3).
	ParScavenge bool
	// ConcMark enables the concurrent old-space marker: FullCollect
	// becomes a snapshot-at-the-beginning marking cycle whose tracing
	// work runs in bounded slices interleaved with mutator quanta (or
	// by cooperative assist in parallel host mode), bracketed by two
	// short stop-the-world windows (snapshot and finalize), followed
	// by a lazy sweep that turns dead old objects into reusable
	// free-list space instead of compacting. A Dijkstra-style deletion
	// barrier in the pointer-store funnels keeps the snapshot sound.
	// Off by default: the paper stops the world for every collection.
	ConcMark bool
}

// DefaultConfig returns a config mirroring the paper's memory setup,
// scaled for 8-byte words: an 80 KB-equivalent eden, two survivor spaces,
// and a large old space.
func DefaultConfig() Config {
	return Config{
		OldWords:      4 << 20, // 32 MB
		EdenWords:     64 << 10,
		SurvivorWords: 16 << 10,
		TenureAge:     4,
		Policy:        AllocSerialized,
		LocksEnabled:  true,
	}
}

type space struct {
	base, limit uint64 // word indices; [base, limit)
	next        uint64
}

func (s *space) contains(a uint64) bool { return a >= s.base && a < s.limit }
func (s *space) free() int              { return int(s.limit - s.next) }

// tlab is a per-processor allocation chunk carved from eden.
type tlab struct {
	next, limit uint64
}

// Stats counts heap activity since creation.
type Stats struct {
	Allocations       uint64
	AllocatedWords    uint64
	TLABRefills       uint64
	Scavenges         uint64
	CopiedObjects     uint64
	CopiedWords       uint64
	TenuredObjects    uint64
	TenuredWords      uint64
	StoreChecks       uint64 // taken store checks (entry-table recordings)
	ParScavenges      uint64 // scavenges run by the parallel scavenger
	ScavengeSteals    uint64 // grey objects stolen between scavenge workers
	ScavengeTime      firefly.Time
	ScavengeMaxPause  firefly.Time // longest single stop-the-world scavenge
	LastSurvivors     uint64       // words surviving the most recent scavenge
	RememberedPeak    int
	OldWordsInUse     uint64
	EdenWordsInUse    uint64
	FullCollections   uint64
	FullGCTime        firefly.Time
	FullGCMaxPause    firefly.Time // longest single full collection (under ConcMark: longest STW window)
	ReclaimedOldWords uint64
	ConcMarkCycles    uint64 // completed concurrent marking cycles
	ConcMarkSlices    uint64 // bounded mark slices drained outside the pauses
	ConcMarkMarked    uint64 // old objects blackened by the concurrent marker
	ConcMarkShaded    uint64 // old objects shaded grey by the deletion barrier
}

// Heap is the shared object memory.
type Heap struct {
	cfg Config
	m   *firefly.Machine
	mem []uint64

	old  space
	surv [2]space
	past int // index into surv of the past-survivor space
	eden space

	newBase uint64 // everything at or above this address is new space

	allocLock *firefly.Spinlock
	entryLock *firefly.Spinlock
	tlabs     []tlab

	// remembered is the entry table: old objects that may hold
	// references into new space.
	remembered []object.OOP

	rootSlots []*object.OOP
	rootFuncs []func(visit func(*object.OOP))
	preGC     []func()
	postGC    []func()

	handlePools []*handlePool

	// scavenge working state
	inGC    bool
	to      *space
	oldScan uint64

	// cm is the concurrent old-space marker (nil unless cfg.ConcMark);
	// the pointer-store funnels consult it for the deletion barrier.
	// oldFree is the sweep-produced free list of old-space spans that
	// reserveOld and AllocateNoGC consult before bumping. skipBarrier
	// is a test-only fault-injection knob: when set, the deletion
	// barrier reports to the sanitizer but skips the shade, so the
	// concmark rule can prove it catches a missing barrier.
	cm          *concMark
	oldFree     []freeSpan
	skipBarrier bool

	// gcMu serializes copy-buffer chunk carving from the shared spaces
	// during a parallel host-mode scavenge. Host machinery only: the
	// virtual cost of a refill is charged separately (ScavengeChunk).
	//msvet:stw-safe collector-only lock: carveChunk runs exclusively inside the scavenge window, where every mutator is parked at the rendezvous and cannot hold it
	gcMu sync.Mutex

	// scavDelay, when non-nil, is called by each parallel-scavenge
	// worker as it joins the drain loop. Test hook: the
	// schedule-exploration test injects per-worker host delays through
	// it to perturb the work-stealing interleaving.
	scavDelay func(worker int)

	hashSeed uint32
	// hashMu serializes lazy identity-hash assignment in parallel mode
	// (the only header mutation that can race outside a lock).
	hashMu sync.Mutex

	// par caches cfg.Parallel for the accessor hot paths.
	par bool

	// allocShards holds per-processor allocation counters in parallel
	// mode (a Table-3 replication row: no synchronization because each
	// processor owns its shard); Stats sums them. Padded to keep the
	// shards on separate cache lines.
	allocShards []allocShard

	// rec is the machine's flight recorder (nil when tracing is off),
	// cached here so hot allocation paths pay one pointer check. gcProc
	// and gcAt identify the in-progress scavenge for events emitted from
	// deep inside forward(), which has no processor parameter.
	rec    *trace.Recorder
	gcProc int
	gcAt   int64

	// san is the machine's invariant checker (nil when sanitizing is
	// off), cached like rec. Access hooks fire inside the locked
	// sections; the scavenger emits none (stop-the-world mutation is
	// legitimately lock-free) but triggers the write-barrier verifier.
	san *sanitize.Checker

	// lat is the machine's latency-histogram registry (nil when the
	// distributions are off), cached like rec. The scavenger records
	// its pause and phase durations into it; recording never charges
	// virtual time.
	lat *trace.LatencyHists

	// alp is the allocation-site profiler (nil when off). allocSiteID
	// resolves the currently-allocating site for a processor — the
	// interpreter's executing Class>>selector — so this package stays
	// free of interpreter imports. siteByAddr maps live new-space
	// object addresses to their allocation site; each scavenge rebuilds
	// it into siteNext as objects move (tenured objects drop out — old
	// space is not tracked).
	alp         *trace.AllocProfiler
	allocSiteID func(proc int) int
	siteByAddr  map[uint64]int
	siteNext    map[uint64]int

	stats Stats
}

// OOMError is thrown (as a panic) when old space is exhausted; the virtual
// machine recovers it at the interpreter boundary.
type OOMError struct {
	NeedWords int
}

func (e OOMError) Error() string {
	return fmt.Sprintf("heap: old space exhausted allocating %d words", e.NeedWords)
}

// New builds an object memory on machine m and creates the three immortal
// objects nil, true, and false at their fixed addresses (their class words
// are patched by the image bootstrap).
//
//msvet:heap-writer single-threaded construction: the immortal-object words are written before the heap pointer escapes to any processor
//msvet:atomic-excluded no goroutine but the constructor can reach h.mem until New returns
func New(m *firefly.Machine, cfg Config) *Heap {
	if cfg.OldWords < 1024 || cfg.EdenWords < 256 || cfg.SurvivorWords < 128 {
		panic("heap: configuration too small")
	}
	total := object.FirstFreeAddress + cfg.OldWords + 2*cfg.SurvivorWords + cfg.EdenWords
	h := &Heap{
		cfg: cfg,
		m:   m,
		par: cfg.Parallel,
		mem: make([]uint64, total),
		rec: m.Recorder(),
		san: m.Sanitizer(),
		lat: m.LatencyHists(),
	}
	h.allocShards = make([]allocShard, m.NumProcs())
	base := uint64(object.FirstFreeAddress)
	h.old = space{base: base, limit: base + uint64(cfg.OldWords), next: base}
	a := h.old.limit
	h.surv[0] = space{base: a, limit: a + uint64(cfg.SurvivorWords), next: a}
	a = h.surv[0].limit
	h.surv[1] = space{base: a, limit: a + uint64(cfg.SurvivorWords), next: a}
	a = h.surv[1].limit
	h.eden = space{base: a, limit: a + uint64(cfg.EdenWords), next: a}
	h.newBase = h.surv[0].base
	h.past = 0

	h.allocLock = m.NewSpinlock("alloc", cfg.LocksEnabled)
	h.entryLock = m.NewSpinlock("entry-table", cfg.LocksEnabled)
	if h.san != nil {
		// Table-3 serialization rows owned by the heap: the shared
		// allocation pointers (eden and old space) and the entry table.
		h.san.RegisterGuard("eden", "alloc")
		h.san.RegisterGuard("old-space", "alloc")
		h.san.RegisterGuard("remembered-set", "entry-table")
	}
	h.tlabs = make([]tlab, m.NumProcs())
	h.handlePools = make([]*handlePool, m.NumProcs())
	for i := range h.handlePools {
		h.handlePools[i] = &handlePool{}
	}
	if cfg.ConcMark {
		h.cm = &concMark{h: h}
		m.SetConcAssist(h.concAssist)
	}

	// The immortal objects live below old space at fixed addresses.
	for _, fixed := range []object.OOP{object.Nil, object.True, object.False} {
		h.mem[fixed.Addr()] = uint64(object.MakeHeader(2, object.FmtPointers, 0))
		h.mem[fixed.Addr()+1] = uint64(object.Invalid) // class patched at genesis
	}
	return h
}

// Machine returns the machine this heap charges time to.
func (h *Heap) Machine() *firefly.Machine { return h.m }

// Config returns the heap's configuration.
func (h *Heap) Config() Config { return h.cfg }

// SetAllocProfiler attaches the allocation-site profiler. siteID
// resolves the currently-allocating site for a processor (the
// interpreter supplies "Class>>selector" ids). Deterministic mode
// only: attribution reads unsynchronized interpreter state and the
// site maps are unguarded — the core config layer enforces this.
func (h *Heap) SetAllocProfiler(a *trace.AllocProfiler, siteID func(proc int) int) {
	h.alp = a
	h.allocSiteID = siteID
	h.siteByAddr = make(map[uint64]int)
}

// Stats returns a snapshot of heap statistics. Per-processor shards
// are summed in, so the totals match the unsharded accounting exactly.
// The shard loads are atomic, making Stats safe to call (for racy but
// per-counter-consistent values) while parallel processors allocate.
func (h *Heap) Stats() Stats {
	s := h.stats
	for i := range h.allocShards {
		sh := &h.allocShards[i]
		s.Allocations += sh.allocations.Load()
		s.AllocatedWords += sh.allocatedWords.Load()
		s.TLABRefills += sh.tlabRefills.Load()
	}
	s.OldWordsInUse = h.old.next - h.old.base
	s.EdenWordsInUse = h.eden.next - h.eden.base
	return s
}

// allocShard is one processor's private allocation counters; the pad
// keeps concurrent bumps off each other's cache lines. The fields are
// atomic only so readers (the stat primitive, msbench) never race the
// owner's bumps — each shard still has exactly one writer.
type allocShard struct {
	allocations    atomic.Uint64
	allocatedWords atomic.Uint64
	tlabRefills    atomic.Uint64
	_              [5]uint64
}

// InNewSpace reports whether a pointer OOP refers to new space (eden or a
// survivor semispace).
func (h *Heap) InNewSpace(o object.OOP) bool {
	return o.IsPtr() && o.Addr() >= h.newBase
}

// InOldSpace reports whether a pointer OOP refers to old space or the
// immortal area.
func (h *Heap) InOldSpace(o object.OOP) bool {
	return o.IsPtr() && o != object.Invalid && o.Addr() < h.newBase
}

// loadWord/storeWord are the two memory primitives every accessor
// funnels through. In parallel host mode they are host-atomic: the
// simulated words are genuinely shared between processor goroutines,
// and a word store on the modeled hardware is atomic, so the host must
// match it. The deterministic mode keeps the plain loads and stores
// (no host-synchronization cost, bit-identical behavior). Higher-level
// races — two Smalltalk processes storing into the same object without
// a lock — remain exactly as visible as they would be on the Firefly.
func (h *Heap) loadWord(i uint64) uint64 {
	if h.par {
		return atomic.LoadUint64(&h.mem[i])
	}
	return h.mem[i]
}

//msvet:heap-writer the single exit point of the barrier API: every checked store (Store/StoreNoCheck) and collector copy funnels through here
func (h *Heap) storeWord(i uint64, v uint64) {
	if h.par {
		atomic.StoreUint64(&h.mem[i], v)
		return
	}
	h.mem[i] = v
}

// casHeader applies f to o's header with a compare-and-swap loop. The
// header word carries independently-locked bits (the remembered bit
// under the entry-table lock, the identity hash under hashMu), so in
// parallel mode a plain read-modify-write could lose the other lock's
// update; the CAS makes each bit-field update atomic with respect to
// the whole word.
//
//msvet:heap-writer the CAS loop IS the header-word store discipline; header bits never hold OOPs, so no store check applies
func (h *Heap) casHeader(o object.OOP, f func(object.Header) object.Header) object.Header {
	addr := o.Addr()
	for {
		old := atomic.LoadUint64(&h.mem[addr])
		hd := f(object.Header(old))
		if atomic.CompareAndSwapUint64(&h.mem[addr], old, uint64(hd)) {
			return hd
		}
	}
}

// Header returns the object header of o.
func (h *Heap) Header(o object.OOP) object.Header {
	return object.Header(h.loadWord(o.Addr()))
}

// SetHeader replaces the object header of o.
func (h *Heap) SetHeader(o object.OOP, hd object.Header) {
	h.storeWord(o.Addr(), uint64(hd))
}

// ClassOf returns the class word of a pointer OOP. SmallIntegers have no
// class word; the interpreter maps them to the SmallInteger class.
func (h *Heap) ClassOf(o object.OOP) object.OOP {
	return object.OOP(h.loadWord(o.Addr() + 1))
}

// SetClass stores the class word of o, with a store check (a class in new
// space referenced from an old object must be remembered).
func (h *Heap) SetClass(p *firefly.Proc, o, class object.OOP) {
	if h.cm != nil {
		h.deletionBarrier(p, o.Addr()+1)
	}
	h.storeWord(o.Addr()+1, uint64(class))
	h.storeCheck(p, o, class)
}

// Fetch returns pointer field i (0-based, past the header) of o.
func (h *Heap) Fetch(o object.OOP, i int) object.OOP {
	return object.OOP(h.loadWord(o.Addr() + object.HeaderWords + uint64(i)))
}

// Store writes pointer field i of o with the generation-scavenging store
// check: recording an old object that now references new space in the
// entry table, serialized under the entry-table lock (paper §3.1).
func (h *Heap) Store(p *firefly.Proc, o object.OOP, i int, v object.OOP) {
	if h.cm != nil {
		h.deletionBarrier(p, o.Addr()+object.HeaderWords+uint64(i))
	}
	h.storeWord(o.Addr()+object.HeaderWords+uint64(i), uint64(v))
	h.storeCheck(p, o, v)
}

// StoreNoCheck writes pointer field i of o without a store check. Use only
// when v is provably not a new-space reference (SmallIntegers, nil) or o
// is provably in new space.
func (h *Heap) StoreNoCheck(o object.OOP, i int, v object.OOP) {
	if h.cm != nil {
		h.deletionBarrier(nil, o.Addr()+object.HeaderWords+uint64(i))
	}
	h.storeWord(o.Addr()+object.HeaderWords+uint64(i), uint64(v))
}

// sanAccess reports an access to a serialized heap structure to the
// invariant checker; call it from inside the guarding critical
// section. The scavenger deliberately calls nothing here: during a
// stop-the-world collection the scavenging processor mutates every
// space lock-free, which is the reorganization the paper's rendezvous
// makes safe.
func (h *Heap) sanAccess(p *firefly.Proc, structure string) {
	if s := h.san; s != nil {
		s.OnAccess(p.ID(), int64(p.Now()), structure)
	}
}

func (h *Heap) storeCheck(p *firefly.Proc, o, v object.OOP) {
	if o.Addr() >= h.newBase || !h.InNewSpace(v) {
		return
	}
	if p == nil {
		// Bootstrap-time store; everything lives in old space and no
		// collection can run, so no entry is needed. Reaching here
		// with a new-space value would be a genesis bug.
		panic("heap: store check with no processor")
	}
	hd := h.Header(o)
	if hd.Remembered() {
		return
	}
	h.entryLock.Acquire(p)
	h.sanAccess(p, "remembered-set")
	hd = h.Header(o) // re-read under the lock
	if !hd.Remembered() {
		if h.par {
			h.casHeader(o, func(hd object.Header) object.Header {
				return hd.SetRemembered(true)
			})
		} else {
			h.SetHeader(o, hd.SetRemembered(true))
		}
		h.remembered = append(h.remembered, o)
		if len(h.remembered) > h.stats.RememberedPeak {
			h.stats.RememberedPeak = len(h.remembered)
		}
		h.stats.StoreChecks++
		p.Advance(h.m.Costs().StoreCheck)
	}
	h.entryLock.Release(p)
}

// RememberedCount returns the current entry-table population.
func (h *Heap) RememberedCount() int { return len(h.remembered) }

// FetchByte returns byte i of a FmtBytes object.
func (h *Heap) FetchByte(o object.OOP, i int) byte {
	w := h.loadWord(o.Addr() + object.HeaderWords + uint64(i>>3))
	return byte(w >> (uint(i&7) * 8))
}

// StoreByte writes byte i of a FmtBytes object. The read-modify-write
// is word-atomic in parallel mode but not interlocked: concurrent
// unsynchronized byte stores into the same word can lose an update,
// exactly as adjacent byte stores could on the modeled hardware.
func (h *Heap) StoreByte(o object.OOP, i int, b byte) {
	idx := o.Addr() + object.HeaderWords + uint64(i>>3)
	shift := uint(i&7) * 8
	h.storeWord(idx, h.loadWord(idx)&^(0xFF<<shift)|uint64(b)<<shift)
}

// ByteLen returns the logical byte length of a FmtBytes object.
func (h *Heap) ByteLen(o object.OOP) int { return h.Header(o).ByteLen() }

// Bytes copies out the contents of a FmtBytes object.
func (h *Heap) Bytes(o object.OOP) []byte {
	n := h.ByteLen(o)
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = h.FetchByte(o, i)
	}
	return out
}

// WriteBytes fills a FmtBytes object from b (which must fit exactly or be
// shorter than the object).
func (h *Heap) WriteBytes(o object.OOP, b []byte) {
	if len(b) > h.ByteLen(o) {
		panic("heap: WriteBytes overflow")
	}
	for i, c := range b {
		h.StoreByte(o, i, c)
	}
}

// FetchWord returns raw word i of a FmtWords object.
func (h *Heap) FetchWord(o object.OOP, i int) uint64 {
	return h.loadWord(o.Addr() + object.HeaderWords + uint64(i))
}

// StoreWord writes raw word i of a FmtWords object.
func (h *Heap) StoreWord(o object.OOP, i int, w uint64) {
	h.storeWord(o.Addr()+object.HeaderWords+uint64(i), w)
}

// FieldCount returns the logical field count of a pointers/words object.
func (h *Heap) FieldCount(o object.OOP) int { return h.Header(o).FieldCount() }

// IdentityHash returns o's identity hash, assigning one lazily. Hashes are
// stable across scavenges (they live in the header), which is what lets
// method dictionaries hash on object identity even though objects move.
func (h *Heap) IdentityHash(o object.OOP) uint32 {
	if o.IsInt() {
		return uint32(o.Int()) & object.MaxHash
	}
	hd := h.Header(o)
	if v := hd.Hash(); v != 0 {
		return v
	}
	if h.par {
		// Assignment mutates the header outside any virtual lock; a
		// host mutex keeps the seed and the double-checked header
		// update consistent across processors.
		h.hashMu.Lock()
		defer h.hashMu.Unlock()
		hd = h.Header(o)
		if v := hd.Hash(); v != 0 {
			return v
		}
	}
	h.hashSeed++
	v := h.hashSeed & object.MaxHash
	if v == 0 {
		h.hashSeed++
		v = 1
	}
	if h.par {
		h.casHeader(o, func(hd object.Header) object.Header { return hd.SetHash(v) })
	} else {
		h.SetHeader(o, hd.SetHash(v))
	}
	return v
}

// AddRoot registers a VM-level slot holding an OOP the scavenger must
// treat as a root and update when the object moves.
func (h *Heap) AddRoot(slot *object.OOP) {
	h.rootSlots = append(h.rootSlots, slot)
}

// AddRootFunc registers a callback that visits a dynamic set of root
// slots (for example a symbol table held in a Go slice).
func (h *Heap) AddRootFunc(f func(visit func(*object.OOP))) {
	h.rootFuncs = append(h.rootFuncs, f)
}

// OnPreScavenge registers a hook run before each scavenge (for example to
// flush method caches holding raw oops).
func (h *Heap) OnPreScavenge(f func()) { h.preGC = append(h.preGC, f) }

// OnPostScavenge registers a hook run after each scavenge.
func (h *Heap) OnPostScavenge(f func()) { h.postGC = append(h.postGC, f) }
