package compiler

// Node is any AST node.
type Node interface {
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// MethodNode is a parsed method: selector pattern, temporaries, optional
// primitive pragma, and body statements.
type MethodNode struct {
	pos
	Selector  string
	Params    []string
	Temps     []string
	Primitive int // 0 = none
	Body      []Stmt
}

// Stmt is a statement: an expression or a return.
type Stmt interface{ Node }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	pos
	X Expr
}

// ReturnStmt is ^expr.
type ReturnStmt struct {
	pos
	X Expr
}

// Expr is an expression node.
type Expr interface{ Node }

// VarNode is a variable reference (including self, super, true, false,
// nil, thisContext, which the code generator special-cases).
type VarNode struct {
	pos
	Name string
}

// AssignNode is name := value.
type AssignNode struct {
	pos
	Name  string
	Value Expr
}

// LitKind classifies literal nodes.
type LitKind int

const (
	LitInt LitKind = iota
	LitFloat
	LitChar
	LitString
	LitSymbol
	LitArray
	LitTrue
	LitFalse
	LitNil
)

// LiteralNode is a literal constant.
type LiteralNode struct {
	pos
	Kind LitKind
	Int  int64
	Flt  float64
	Str  string        // string/symbol text
	Rune rune          // character
	Arr  []LiteralNode // array elements
}

// SendNode is a message send.
type SendNode struct {
	pos
	Receiver Expr // nil means the receiver is `super` handled via Super
	Super    bool
	Selector string
	Args     []Expr
}

// CascadeMsg is one `; selector args` in a cascade.
type CascadeMsg struct {
	pos
	Selector string
	Args     []Expr
}

// CascadeNode sends several messages to one receiver; its value is the
// value of the last message.
type CascadeNode struct {
	pos
	Receiver Expr
	Super    bool
	Msgs     []CascadeMsg
}

// BlockNode is [:a :b | temps | statements].
type BlockNode struct {
	pos
	Params []string
	Temps  []string
	Body   []Stmt
}
