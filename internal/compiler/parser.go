package compiler

import "fmt"

// Parser builds an AST from Smalltalk source.
type Parser struct {
	lex *Lexer
	cur Token
}

// NewParser returns a parser over src.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &Error{Line: p.cur.Line, Col: p.cur.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) at(k TokKind) bool { return p.cur.Kind == k }

func (p *Parser) expect(k TokKind, what string) (Token, error) {
	if p.cur.Kind != k {
		return Token{}, p.errf("expected %s, found %s", what, p.cur)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *Parser) posOf(t Token) pos { return pos{t.Line, t.Col} }

// ParseMethod parses a complete method definition: selector pattern,
// temporaries, optional primitive pragma, statements.
func ParseMethod(src string) (*MethodNode, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	m := &MethodNode{pos: p.posOf(p.cur)}
	if err := p.parsePattern(m); err != nil {
		return nil, err
	}
	if err := p.parseBody(m); err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, p.errf("unexpected %s after method body", p.cur)
	}
	return m, nil
}

// ParseExpression parses a statement sequence (with optional leading
// temporaries) as a DoIt method body; the value of the last statement is
// returned implicitly.
func ParseExpression(src string) (*MethodNode, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	m := &MethodNode{pos: p.posOf(p.cur), Selector: "DoIt"}
	if err := p.parseBody(m); err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, p.errf("unexpected %s after expression", p.cur)
	}
	// Make the last expression statement an implicit return.
	for i := len(m.Body) - 1; i >= 0; i-- {
		if es, ok := m.Body[i].(*ExprStmt); ok && i == len(m.Body)-1 {
			m.Body[i] = &ReturnStmt{pos: es.pos, X: es.X}
		}
		break
	}
	return m, nil
}

func (p *Parser) parsePattern(m *MethodNode) error {
	switch p.cur.Kind {
	case TokIdent:
		m.Selector = p.cur.Text
		return p.advance()
	case TokBinary, TokPipe:
		// `|` can be a binary selector being defined (Boolean>>|).
		m.Selector = p.cur.Text
		if err := p.advance(); err != nil {
			return err
		}
		arg, err := p.expect(TokIdent, "argument name")
		if err != nil {
			return err
		}
		m.Params = append(m.Params, arg.Text)
		return nil
	case TokKeyword:
		for p.at(TokKeyword) {
			m.Selector += p.cur.Text
			if err := p.advance(); err != nil {
				return err
			}
			arg, err := p.expect(TokIdent, "argument name")
			if err != nil {
				return err
			}
			m.Params = append(m.Params, arg.Text)
		}
		return nil
	default:
		return p.errf("expected method pattern, found %s", p.cur)
	}
}

// parseBody parses temporaries, an optional primitive pragma, and
// statements up to EOF.
func (p *Parser) parseBody(m *MethodNode) error {
	temps, err := p.parseTemps()
	if err != nil {
		return err
	}
	m.Temps = temps
	prim, err := p.parsePragma()
	if err != nil {
		return err
	}
	m.Primitive = prim
	body, err := p.parseStatements(TokEOF)
	if err != nil {
		return err
	}
	m.Body = body
	return nil
}

func (p *Parser) parseTemps() ([]string, error) {
	if !p.at(TokPipe) {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var temps []string
	for p.at(TokIdent) {
		temps = append(temps, p.cur.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokPipe, "'|' closing temporaries"); err != nil {
		return nil, err
	}
	if temps == nil {
		temps = []string{}
	}
	return temps, nil
}

// parsePragma recognizes `<primitive: N>`.
func (p *Parser) parsePragma() (int, error) {
	if !p.at(TokBinary) || p.cur.Text != "<" {
		return 0, nil
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	kw, err := p.expect(TokKeyword, "primitive:")
	if err != nil {
		return 0, err
	}
	if kw.Text != "primitive:" {
		return 0, p.errf("unknown pragma %q", kw.Text)
	}
	num, err := p.expect(TokInt, "primitive number")
	if err != nil {
		return 0, err
	}
	if !p.at(TokBinary) || p.cur.Text != ">" {
		return 0, p.errf("expected '>' closing pragma")
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if num.Int <= 0 {
		return 0, p.errf("bad primitive number %d", num.Int)
	}
	return int(num.Int), nil
}

func (p *Parser) parseStatements(end TokKind) ([]Stmt, error) {
	stmts := []Stmt{}
	for {
		if p.at(end) || p.at(TokEOF) {
			return stmts, nil
		}
		if p.at(TokCaret) {
			start := p.cur
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, &ReturnStmt{pos: p.posOf(start), X: x})
			if p.at(TokDot) {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if !p.at(end) && !p.at(TokEOF) {
				return nil, p.errf("statement after return")
			}
			return stmts, nil
		}
		start := p.cur
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, &ExprStmt{pos: p.posOf(start), X: x})
		if p.at(TokDot) {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.at(end) || p.at(TokEOF) {
			return stmts, nil
		}
		return nil, p.errf("expected '.' between statements, found %s", p.cur)
	}
}

// parseExpr handles assignment (right-associative) atop cascades.
func (p *Parser) parseExpr() (Expr, error) {
	if p.at(TokIdent) {
		// Possible assignment: ident ':=' expr.
		save := *p.lex
		name := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.at(TokAssign) {
			if err := p.advance(); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignNode{pos: p.posOf(name), Name: name.Text, Value: val}, nil
		}
		// Not an assignment: rewind the lexer and reparse.
		*p.lex = save
		p.cur = name
	}
	return p.parseCascade()
}

func (p *Parser) parseCascade() (Expr, error) {
	x, err := p.parseKeywordExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		return x, nil
	}
	send, ok := x.(*SendNode)
	if !ok {
		return nil, p.errf("cascade must follow a message send")
	}
	casc := &CascadeNode{
		pos:      send.pos,
		Receiver: send.Receiver,
		Super:    send.Super,
		Msgs:     []CascadeMsg{{pos: send.pos, Selector: send.Selector, Args: send.Args}},
	}
	for p.at(TokSemi) {
		if err := p.advance(); err != nil {
			return nil, err
		}
		msg, err := p.parseCascadeMsg()
		if err != nil {
			return nil, err
		}
		casc.Msgs = append(casc.Msgs, msg)
	}
	return casc, nil
}

// parseCascadeMsg parses one message after a ';': a unary selector, a
// binary selector and argument, or keyword parts.
func (p *Parser) parseCascadeMsg() (CascadeMsg, error) {
	start := p.cur
	switch p.cur.Kind {
	case TokIdent:
		sel := p.cur.Text
		if err := p.advance(); err != nil {
			return CascadeMsg{}, err
		}
		return CascadeMsg{pos: p.posOf(start), Selector: sel}, nil
	case TokBinary:
		sel := p.cur.Text
		if err := p.advance(); err != nil {
			return CascadeMsg{}, err
		}
		arg, err := p.parseUnaryExpr()
		if err != nil {
			return CascadeMsg{}, err
		}
		return CascadeMsg{pos: p.posOf(start), Selector: sel, Args: []Expr{arg}}, nil
	case TokKeyword:
		var sel string
		var args []Expr
		for p.at(TokKeyword) {
			sel += p.cur.Text
			if err := p.advance(); err != nil {
				return CascadeMsg{}, err
			}
			arg, err := p.parseBinaryExpr()
			if err != nil {
				return CascadeMsg{}, err
			}
			args = append(args, arg)
		}
		return CascadeMsg{pos: p.posOf(start), Selector: sel, Args: args}, nil
	default:
		return CascadeMsg{}, p.errf("expected message after ';', found %s", p.cur)
	}
}

func (p *Parser) parseKeywordExpr() (Expr, error) {
	recv, err := p.parseBinaryExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokKeyword) {
		return recv, nil
	}
	start := p.cur
	var sel string
	var args []Expr
	for p.at(TokKeyword) {
		sel += p.cur.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseBinaryExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return p.makeSend(recv, sel, args, p.posOf(start)), nil
}

func (p *Parser) parseBinaryExpr() (Expr, error) {
	x, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokBinary) || p.at(TokPipe) {
		// `|` as a binary message (Boolean or).
		sel := p.cur.Text
		start := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		x = p.makeSend(x, sel, []Expr{arg}, p.posOf(start))
	}
	return x, nil
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(TokIdent) {
		sel := p.cur.Text
		start := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		x = p.makeSend(x, sel, nil, p.posOf(start))
	}
	return x, nil
}

// makeSend constructs a SendNode, marking super sends.
func (p *Parser) makeSend(recv Expr, sel string, args []Expr, at pos) Expr {
	if v, ok := recv.(*VarNode); ok && v.Name == "super" {
		return &SendNode{pos: at, Receiver: &VarNode{pos: v.pos, Name: "self"},
			Super: true, Selector: sel, Args: args}
	}
	return &SendNode{pos: at, Receiver: recv, Selector: sel, Args: args}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur
	switch t.Kind {
	case TokIdent:
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch t.Text {
		case "true":
			return &LiteralNode{pos: p.posOf(t), Kind: LitTrue}, nil
		case "false":
			return &LiteralNode{pos: p.posOf(t), Kind: LitFalse}, nil
		case "nil":
			return &LiteralNode{pos: p.posOf(t), Kind: LitNil}, nil
		}
		return &VarNode{pos: p.posOf(t), Name: t.Text}, nil
	case TokInt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &LiteralNode{pos: p.posOf(t), Kind: LitInt, Int: t.Int}, nil
	case TokFloat:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &LiteralNode{pos: p.posOf(t), Kind: LitFloat, Flt: t.Flt}, nil
	case TokChar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &LiteralNode{pos: p.posOf(t), Kind: LitChar, Rune: t.Rune}, nil
	case TokString:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &LiteralNode{pos: p.posOf(t), Kind: LitString, Str: t.Text}, nil
	case TokSymbol:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &LiteralNode{pos: p.posOf(t), Kind: LitSymbol, Str: t.Text}, nil
	case TokArrayStart:
		return p.parseLiteralArray()
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case TokLBracket:
		return p.parseBlock()
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}

func (p *Parser) parseBlock() (Expr, error) {
	start := p.cur
	if err := p.advance(); err != nil {
		return nil, err
	}
	b := &BlockNode{pos: p.posOf(start)}
	for p.at(TokBlockArg) {
		b.Params = append(b.Params, p.cur.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if len(b.Params) > 0 {
		if _, err := p.expect(TokPipe, "'|' after block arguments"); err != nil {
			return nil, err
		}
	}
	temps, err := p.parseTemps()
	if err != nil {
		return nil, err
	}
	b.Temps = temps
	body, err := p.parseStatements(TokRBracket)
	if err != nil {
		return nil, err
	}
	b.Body = body
	if _, err := p.expect(TokRBracket, "']'"); err != nil {
		return nil, err
	}
	return b, nil
}

// parseLiteralArray parses #( ... ); inside, bare identifiers are
// symbols, nested parens are nested arrays, and true/false/nil denote
// the constants, following Smalltalk-80.
func (p *Parser) parseLiteralArray() (Expr, error) {
	start := p.cur
	if err := p.advance(); err != nil {
		return nil, err
	}
	lit, err := p.parseLiteralArrayBody(p.posOf(start))
	if err != nil {
		return nil, err
	}
	return lit, nil
}

func (p *Parser) parseLiteralArrayBody(at pos) (*LiteralNode, error) {
	p.lex.arrayDepth++
	defer func() { p.lex.arrayDepth-- }()
	arr := &LiteralNode{pos: at, Kind: LitArray, Arr: []LiteralNode{}}
	for {
		t := p.cur
		switch t.Kind {
		case TokRParen:
			if err := p.advance(); err != nil {
				return nil, err
			}
			return arr, nil
		case TokEOF:
			return nil, p.errf("unterminated literal array")
		case TokInt:
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitInt, Int: t.Int})
		case TokFloat:
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitFloat, Flt: t.Flt})
		case TokChar:
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitChar, Rune: t.Rune})
		case TokString:
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitString, Str: t.Text})
		case TokSymbol:
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitSymbol, Str: t.Text})
		case TokIdent:
			switch t.Text {
			case "true":
				arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitTrue})
			case "false":
				arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitFalse})
			case "nil":
				arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitNil})
			default:
				arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitSymbol, Str: t.Text})
			}
		case TokKeyword:
			// Adjacent keywords in a literal array form one symbol.
			sym := t.Text
			for {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.at(TokKeyword) {
					sym += p.cur.Text
					continue
				}
				break
			}
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitSymbol, Str: sym})
			continue // already advanced
		case TokBinary, TokPipe:
			arr.Arr = append(arr.Arr, LiteralNode{pos: p.posOf(t), Kind: LitSymbol, Str: t.Text})
		case TokLParen, TokArrayStart:
			if err := p.advance(); err != nil {
				return nil, err
			}
			sub, err := p.parseLiteralArrayBody(p.posOf(t))
			if err != nil {
				return nil, err
			}
			arr.Arr = append(arr.Arr, *sub)
			continue // already advanced past ')'
		default:
			return nil, p.errf("bad literal array element %s", t)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}
