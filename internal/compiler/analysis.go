package compiler

import (
	"fmt"

	"mst/internal/bytecode"
)

// maxStack computes the maximum operand-stack depth of code[start:end)
// beginning at startDepth, by abstract interpretation over the control-
// flow graph. Structured bytecode has a unique static depth at every pc;
// a mismatch indicates a code-generator bug and is reported as an error.
// Block bodies are analyzed from depth 0 (they run on their own
// context's stack); their depth is folded into the result, which makes
// the caller's context sizing conservative.
func maxStack(code []byte, start, end, startDepth int) (int, error) {
	depths := map[int]int{}
	max := startDepth
	type item struct{ pc, d int }
	work := []item{{start, startDepth}}

	// trace follows one straight-line path, pushing branch targets onto
	// the worklist, until it reaches a terminal, the range end, or an
	// already-visited pc.
	trace := func(pc, d int) error {
		for {
			if pc == end {
				return nil
			}
			if pc < start || pc > end {
				return fmt.Errorf("pc %d escapes range [%d,%d)", pc, start, end)
			}
			if prev, seen := depths[pc]; seen {
				if prev != d {
					return fmt.Errorf("inconsistent stack depth at pc %d: %d vs %d", pc, prev, d)
				}
				return nil
			}
			depths[pc] = d

			op := bytecode.Op(code[pc])
			opnd := pc + 1
			next := opnd + bytecode.OperandLen(op)

			switch {
			case op == bytecode.OpPushSelf, op == bytecode.OpPushNil,
				op == bytecode.OpPushTrue, op == bytecode.OpPushFalse,
				op == bytecode.OpPushTemp, op == bytecode.OpPushInstVar,
				op == bytecode.OpPushLiteral, op == bytecode.OpPushGlobal,
				op == bytecode.OpPushInt8, op == bytecode.OpPushThisContext,
				op == bytecode.OpDup:
				d++
			case op == bytecode.OpPop, op == bytecode.OpPopTemp,
				op == bytecode.OpPopInstVar, op == bytecode.OpPopGlobal:
				d--
			case op == bytecode.OpStoreTemp, op == bytecode.OpStoreInstVar,
				op == bytecode.OpStoreGlobal:
				// depth unchanged
			case op == bytecode.OpJump:
				pc = next + bytecode.I16(code, opnd)
				continue
			case op == bytecode.OpJumpFalse, op == bytecode.OpJumpTrue:
				d--
				if d < 0 {
					return fmt.Errorf("stack underflow at pc %d", pc)
				}
				work = append(work, item{next + bytecode.I16(code, opnd), d})
				pc = next
				continue
			case op == bytecode.OpPushBlock:
				bodyLen := bytecode.U16(code, opnd+2)
				sub, err := maxStack(code, next, next+bodyLen, 0)
				if err != nil {
					return err
				}
				if sub > max {
					max = sub
				}
				d++
				if d > max {
					max = d
				}
				pc = next + bodyLen
				continue
			case op == bytecode.OpReturnTop, op == bytecode.OpBlockReturn:
				if d < 1 {
					return fmt.Errorf("return with empty stack at pc %d", pc)
				}
				return nil
			case op == bytecode.OpReturnSelf:
				return nil
			case op == bytecode.OpSend, op == bytecode.OpSendSuper:
				d -= bytecode.U8(code, opnd+1)
			case bytecode.IsSpecialSend(op):
				d -= bytecode.Special(op).NumArgs
			default:
				return fmt.Errorf("unknown opcode %d at pc %d", op, pc)
			}
			if d < 0 {
				return fmt.Errorf("stack underflow at pc %d", pc)
			}
			if d > max {
				max = d
			}
			pc = next
		}
	}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if err := trace(it.pc, it.d); err != nil {
			return 0, err
		}
	}
	return max, nil
}
