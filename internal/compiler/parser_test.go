package compiler

import (
	"testing"
)

func parseM(t *testing.T, src string) *MethodNode {
	t.Helper()
	m, err := ParseMethod(src)
	if err != nil {
		t.Fatalf("ParseMethod(%q): %v", src, err)
	}
	return m
}

func TestParseUnaryPattern(t *testing.T) {
	m := parseM(t, "size ^0")
	if m.Selector != "size" || len(m.Params) != 0 {
		t.Fatalf("m = %+v", m)
	}
	if len(m.Body) != 1 {
		t.Fatalf("body = %v", m.Body)
	}
	if _, ok := m.Body[0].(*ReturnStmt); !ok {
		t.Fatal("body not a return")
	}
}

func TestParseBinaryPattern(t *testing.T) {
	m := parseM(t, "+ aNumber ^aNumber")
	if m.Selector != "+" || len(m.Params) != 1 || m.Params[0] != "aNumber" {
		t.Fatalf("m = %+v", m)
	}
}

func TestParseKeywordPattern(t *testing.T) {
	m := parseM(t, "at: key put: value ^value")
	if m.Selector != "at:put:" || len(m.Params) != 2 {
		t.Fatalf("m = %+v", m)
	}
}

func TestParseTempsAndPragma(t *testing.T) {
	m := parseM(t, "foo | a b c | <primitive: 60> ^a")
	if len(m.Temps) != 3 || m.Primitive != 60 {
		t.Fatalf("temps = %v prim = %d", m.Temps, m.Primitive)
	}
}

func TestParsePrecedence(t *testing.T) {
	// unary > binary > keyword: `a foo + b bar at: c baz`
	m := parseM(t, "test ^a foo + b bar at: c baz")
	ret := m.Body[0].(*ReturnStmt)
	kw := ret.X.(*SendNode)
	if kw.Selector != "at:" {
		t.Fatalf("outer = %q", kw.Selector)
	}
	bin := kw.Receiver.(*SendNode)
	if bin.Selector != "+" {
		t.Fatalf("mid = %q", bin.Selector)
	}
	lhs := bin.Receiver.(*SendNode)
	if lhs.Selector != "foo" {
		t.Fatalf("lhs = %q", lhs.Selector)
	}
	arg := kw.Args[0].(*SendNode)
	if arg.Selector != "baz" {
		t.Fatalf("kwarg = %q", arg.Selector)
	}
}

func TestParseBinaryLeftAssociative(t *testing.T) {
	m := parseM(t, "test ^1 + 2 * 3")
	mul := m.Body[0].(*ReturnStmt).X.(*SendNode)
	if mul.Selector != "*" {
		t.Fatalf("outer = %q", mul.Selector)
	}
	add := mul.Receiver.(*SendNode)
	if add.Selector != "+" {
		t.Fatalf("inner = %q", add.Selector)
	}
}

func TestParseAssignmentChain(t *testing.T) {
	m := parseM(t, "test | a b | a := b := 3 + 4")
	st := m.Body[0].(*ExprStmt)
	outer := st.X.(*AssignNode)
	if outer.Name != "a" {
		t.Fatalf("outer = %+v", outer)
	}
	inner := outer.Value.(*AssignNode)
	if inner.Name != "b" {
		t.Fatalf("inner = %+v", inner)
	}
}

func TestParseCascade(t *testing.T) {
	m := parseM(t, "test Transcript show: 'a'; cr; show: 'b' , 'c'")
	c := m.Body[0].(*ExprStmt).X.(*CascadeNode)
	recv := c.Receiver.(*VarNode)
	if recv.Name != "Transcript" {
		t.Fatalf("receiver = %+v", recv)
	}
	if len(c.Msgs) != 3 {
		t.Fatalf("msgs = %d", len(c.Msgs))
	}
	if c.Msgs[0].Selector != "show:" || c.Msgs[1].Selector != "cr" || c.Msgs[2].Selector != "show:" {
		t.Fatalf("selectors = %v %v %v", c.Msgs[0].Selector, c.Msgs[1].Selector, c.Msgs[2].Selector)
	}
	if _, ok := c.Msgs[2].Args[0].(*SendNode); !ok {
		t.Fatal("cascade arg should be a binary send")
	}
}

func TestParseBlocks(t *testing.T) {
	m := parseM(t, "test ^[:x :y | | t | t := x + y. t]")
	b := m.Body[0].(*ReturnStmt).X.(*BlockNode)
	if len(b.Params) != 2 || len(b.Temps) != 1 || len(b.Body) != 2 {
		t.Fatalf("block = %+v", b)
	}
}

func TestParseEmptyBlock(t *testing.T) {
	m := parseM(t, "test ^[]")
	b := m.Body[0].(*ReturnStmt).X.(*BlockNode)
	if len(b.Params) != 0 || len(b.Body) != 0 {
		t.Fatalf("block = %+v", b)
	}
}

func TestParseSuperSend(t *testing.T) {
	m := parseM(t, "initialize super initialize. ^self")
	s := m.Body[0].(*ExprStmt).X.(*SendNode)
	if !s.Super || s.Selector != "initialize" {
		t.Fatalf("send = %+v", s)
	}
}

func TestParseLiteralArray(t *testing.T) {
	m := parseM(t, "test ^#(1 2.5 $a 'str' #sym bare at:put: (3 4) true nil +)")
	lit := m.Body[0].(*ReturnStmt).X.(*LiteralNode)
	if lit.Kind != LitArray {
		t.Fatalf("lit = %+v", lit)
	}
	kinds := []LitKind{LitInt, LitFloat, LitChar, LitString, LitSymbol, LitSymbol,
		LitSymbol, LitArray, LitTrue, LitNil, LitSymbol}
	if len(lit.Arr) != len(kinds) {
		t.Fatalf("got %d elements, want %d: %+v", len(lit.Arr), len(kinds), lit.Arr)
	}
	for i, k := range kinds {
		if lit.Arr[i].Kind != k {
			t.Errorf("element %d kind = %v, want %v", i, lit.Arr[i].Kind, k)
		}
	}
	if lit.Arr[6].Str != "at:put:" {
		t.Errorf("keyword symbol = %q", lit.Arr[6].Str)
	}
	if len(lit.Arr[7].Arr) != 2 {
		t.Errorf("nested array = %+v", lit.Arr[7])
	}
}

func TestParseExpressionImplicitReturn(t *testing.T) {
	m, err := ParseExpression("3 + 4")
	if err != nil {
		t.Fatal(err)
	}
	if m.Selector != "DoIt" || len(m.Body) != 1 {
		t.Fatalf("m = %+v", m)
	}
	if _, ok := m.Body[0].(*ReturnStmt); !ok {
		t.Fatal("last statement not converted to return")
	}
}

func TestParseExpressionWithTemps(t *testing.T) {
	m, err := ParseExpression("| x | x := 5. x * x")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Temps) != 1 || len(m.Body) != 2 {
		t.Fatalf("m = %+v", m)
	}
}

func TestParsePipeAsBinarySelector(t *testing.T) {
	m := parseM(t, "| aBoolean ^self")
	if m.Selector != "|" || len(m.Params) != 1 {
		t.Fatalf("m = %+v", m)
	}
	m = parseM(t, "test ^a | b")
	s := m.Body[0].(*ReturnStmt).X.(*SendNode)
	if s.Selector != "|" {
		t.Fatalf("send = %+v", s)
	}
}

func TestParseKeywordMessageMultipart(t *testing.T) {
	m := parseM(t, "test ^d at: 1 put: 2")
	s := m.Body[0].(*ReturnStmt).X.(*SendNode)
	if s.Selector != "at:put:" || len(s.Args) != 2 {
		t.Fatalf("send = %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                    // no pattern
		"foo ^1. ^2",          // statement after return
		"foo | a ",            // unterminated temps
		"foo bar baz: ",       // missing argument
		"foo (1 + 2",          // unbalanced paren
		"foo [:x | x",         // unbalanced bracket
		"foo 3; bar",          // cascade on non-send
		"at: ^1",              // keyword pattern missing arg name
		"foo <primitive: 0>",  // bad primitive number
		"foo <frobnicate: 1>", // unknown pragma
		"foo #(1 2",           // unterminated array
		"foo 1 2",             // missing period
	}
	for _, src := range cases {
		if _, err := ParseMethod(src); err == nil {
			t.Errorf("ParseMethod(%q) succeeded, want error", src)
		}
	}
}

func TestParseIfTrueShape(t *testing.T) {
	m := parseM(t, "test x > 0 ifTrue: [^1] ifFalse: [^2]")
	s := m.Body[0].(*ExprStmt).X.(*SendNode)
	if s.Selector != "ifTrue:ifFalse:" {
		t.Fatalf("selector = %q", s.Selector)
	}
	if _, ok := s.Args[0].(*BlockNode); !ok {
		t.Fatal("arg0 not a block")
	}
}
