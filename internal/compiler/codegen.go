package compiler

import (
	"fmt"

	"mst/internal/bytecode"
)

// LitGlobal is an extra literal kind produced only by the code
// generator: a reference to a global variable's Association in the
// system dictionary.
const LitGlobal LitKind = 99

// Lit is a literal descriptor in a compiled method's literal frame. The
// image layer materializes Lits as heap objects (interning symbols and
// resolving globals to Associations).
type Lit struct {
	Kind LitKind
	Int  int64
	Flt  float64
	Str  string // string, symbol, or global name
	Rune rune
	Arr  []Lit
}

func (l Lit) key() string {
	switch l.Kind {
	case LitArray:
		k := "a("
		for _, e := range l.Arr {
			k += e.key() + " "
		}
		return k + ")"
	default:
		return fmt.Sprintf("%d:%d:%g:%q:%c", l.Kind, l.Int, l.Flt, l.Str, l.Rune)
	}
}

// Method is a compiled method, ready to be materialized into the image.
type Method struct {
	Selector  string
	NumArgs   int
	NumTemps  int // total temporary slots, arguments included
	Primitive int
	Clean     bool // creates no blocks, never touches thisContext
	MaxStack  int
	// NumSendSites counts the send instructions in Code (general,
	// super, and special sends alike). The interpreter's inline-cache
	// layer allocates one cache slot per site.
	NumSendSites int
	Code         []byte
	Literals     []Lit
	Source       string
}

// Env resolves names the compiler cannot: instance variables (from the
// class the method is compiled into) and globals (from the system
// dictionary).
type Env interface {
	// InstVarIndex returns the 0-based field index for an instance
	// variable name visible in the target class.
	InstVarIndex(name string) (int, bool)
	// IsGlobal reports whether name is (or should become) a global.
	IsGlobal(name string) bool
}

// MapEnv is a simple Env for tests and tools.
type MapEnv struct {
	InstVars []string
	Globals  map[string]bool
}

// InstVarIndex implements Env.
func (e MapEnv) InstVarIndex(name string) (int, bool) {
	for i, n := range e.InstVars {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// IsGlobal implements Env.
func (e MapEnv) IsGlobal(name string) bool { return e.Globals[name] }

// CompileMethod parses and compiles a method definition.
func CompileMethod(src string, env Env) (*Method, error) {
	node, err := ParseMethod(src)
	if err != nil {
		return nil, err
	}
	return Generate(node, env, src)
}

// CompileExpression parses and compiles a statement sequence as a DoIt
// method whose last statement's value is returned.
func CompileExpression(src string, env Env) (*Method, error) {
	node, err := ParseExpression(src)
	if err != nil {
		return nil, err
	}
	return Generate(node, env, src)
}

// gen is the code generator state for one method.
type gen struct {
	asm    bytecode.Assembler
	env    Env
	scopes []map[string]int // name -> temp slot, innermost last
	nTemps int
	lits   []Lit
	litIdx map[string]int

	usesBlocks bool
	usesCtx    bool
}

// Generate compiles a parsed method against env.
func Generate(m *MethodNode, env Env, source string) (out *Method, err error) {
	// The assembler panics on operand-range overflows (too many
	// literals in one send, oversized jumps); report those as
	// compilation errors rather than crashing the host.
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("compiler: %s: %v", m.Selector, r)
		}
	}()
	g := &gen{env: env, litIdx: map[string]int{}}
	top := map[string]int{}
	for _, p := range m.Params {
		if _, dup := top[p]; dup {
			return nil, fmt.Errorf("compiler: duplicate argument %q", p)
		}
		top[p] = g.nTemps
		g.nTemps++
	}
	for _, t := range m.Temps {
		if _, dup := top[t]; dup {
			return nil, fmt.Errorf("compiler: duplicate temporary %q", t)
		}
		top[t] = g.nTemps
		g.nTemps++
	}
	g.scopes = append(g.scopes, top)

	if err := g.genMethodBody(m.Body); err != nil {
		return nil, err
	}
	if g.nTemps > 255 {
		return nil, fmt.Errorf("compiler: method %s has too many temporaries", m.Selector)
	}
	if len(g.lits) > 255 {
		return nil, fmt.Errorf("compiler: method %s has too many literals", m.Selector)
	}
	code := g.asm.Code()
	maxD, err := maxStack(code, 0, len(code), 0)
	if err != nil {
		return nil, fmt.Errorf("compiler: %s: %v", m.Selector, err)
	}
	return &Method{
		Selector:     m.Selector,
		NumArgs:      len(m.Params),
		NumTemps:     g.nTemps,
		Primitive:    m.Primitive,
		Clean:        !g.usesBlocks && !g.usesCtx,
		MaxStack:     maxD,
		NumSendSites: len(bytecode.SendSites(code)),
		Code:         code,
		Literals:     g.lits,
		Source:       source,
	}, nil
}

func (g *gen) errf(n Node, format string, args ...interface{}) error {
	line, col := n.Pos()
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (g *gen) lookupTemp(name string) (int, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if idx, ok := g.scopes[i][name]; ok {
			return idx, true
		}
	}
	return 0, false
}

func (g *gen) literal(l Lit) int {
	k := l.key()
	if i, ok := g.litIdx[k]; ok {
		return i
	}
	i := len(g.lits)
	g.lits = append(g.lits, l)
	g.litIdx[k] = i
	return i
}

// genMethodBody emits statements; falls off the end with returnSelf.
func (g *gen) genMethodBody(body []Stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case *ReturnStmt:
			if err := g.genExpr(s.X); err != nil {
				return err
			}
			g.asm.Emit(bytecode.OpReturnTop)
			return nil
		case *ExprStmt:
			if err := g.genForEffect(s.X); err != nil {
				return err
			}
		}
	}
	g.asm.Emit(bytecode.OpReturnSelf)
	return nil
}

// genForEffect evaluates x and discards the value, folding stores.
func (g *gen) genForEffect(x Expr) error {
	if a, ok := x.(*AssignNode); ok {
		if err := g.genExpr(a.Value); err != nil {
			return err
		}
		return g.genStore(a, true)
	}
	if err := g.genExpr(x); err != nil {
		return err
	}
	g.asm.Emit(bytecode.OpPop)
	return nil
}

// genStore emits the store for an assignment target; pop selects the
// discarding variant.
func (g *gen) genStore(a *AssignNode, pop bool) error {
	pick := func(keep, discard bytecode.Op) bytecode.Op {
		if pop {
			return discard
		}
		return keep
	}
	if idx, ok := g.lookupTemp(a.Name); ok {
		g.asm.EmitU8(pick(bytecode.OpStoreTemp, bytecode.OpPopTemp), idx)
		return nil
	}
	if idx, ok := g.env.InstVarIndex(a.Name); ok {
		g.asm.EmitU8(pick(bytecode.OpStoreInstVar, bytecode.OpPopInstVar), idx)
		return nil
	}
	if g.env.IsGlobal(a.Name) {
		lit := g.literal(Lit{Kind: LitGlobal, Str: a.Name})
		g.asm.EmitU8(pick(bytecode.OpStoreGlobal, bytecode.OpPopGlobal), lit)
		return nil
	}
	return g.errf(a, "undeclared variable %q", a.Name)
}

func (g *gen) genExpr(x Expr) error {
	switch x := x.(type) {
	case *LiteralNode:
		return g.genLiteral(x)
	case *VarNode:
		return g.genVar(x)
	case *AssignNode:
		if err := g.genExpr(x.Value); err != nil {
			return err
		}
		return g.genStore(x, false)
	case *SendNode:
		return g.genSend(x)
	case *CascadeNode:
		return g.genCascade(x)
	case *BlockNode:
		return g.genBlock(x)
	default:
		return g.errf(x, "cannot compile %T", x)
	}
}

func (g *gen) genLiteral(x *LiteralNode) error {
	switch x.Kind {
	case LitNil:
		g.asm.Emit(bytecode.OpPushNil)
	case LitTrue:
		g.asm.Emit(bytecode.OpPushTrue)
	case LitFalse:
		g.asm.Emit(bytecode.OpPushFalse)
	case LitInt:
		if x.Int >= -128 && x.Int <= 127 {
			g.asm.EmitI8(bytecode.OpPushInt8, int(x.Int))
		} else {
			g.asm.EmitU8(bytecode.OpPushLiteral, g.literal(Lit{Kind: LitInt, Int: x.Int}))
		}
	default:
		g.asm.EmitU8(bytecode.OpPushLiteral, g.literal(litFromNode(x)))
	}
	return nil
}

func litFromNode(x *LiteralNode) Lit {
	l := Lit{Kind: x.Kind, Int: x.Int, Flt: x.Flt, Str: x.Str, Rune: x.Rune}
	if x.Kind == LitArray {
		for _, e := range x.Arr {
			l.Arr = append(l.Arr, litFromNode(&e))
		}
	}
	return l
}

func (g *gen) genVar(x *VarNode) error {
	switch x.Name {
	case "self":
		g.asm.Emit(bytecode.OpPushSelf)
		return nil
	case "thisContext":
		g.usesCtx = true
		g.asm.Emit(bytecode.OpPushThisContext)
		return nil
	case "super":
		return g.errf(x, "super may only be a message receiver")
	}
	if idx, ok := g.lookupTemp(x.Name); ok {
		g.asm.EmitU8(bytecode.OpPushTemp, idx)
		return nil
	}
	if idx, ok := g.env.InstVarIndex(x.Name); ok {
		g.asm.EmitU8(bytecode.OpPushInstVar, idx)
		return nil
	}
	if g.env.IsGlobal(x.Name) {
		g.asm.EmitU8(bytecode.OpPushGlobal, g.literal(Lit{Kind: LitGlobal, Str: x.Name}))
		return nil
	}
	return g.errf(x, "undeclared variable %q", x.Name)
}

// genSend compiles a message send, inlining the standard control-flow
// selectors when their block arguments are literal blocks (as every
// Smalltalk-80 compiler does — the paper's idle Process, [true]
// whileTrue, relies on this compiling to pure jumps).
func (g *gen) genSend(x *SendNode) error {
	if !x.Super {
		if done, err := g.tryInline(x); done || err != nil {
			return err
		}
	}
	if err := g.genExpr(x.Receiver); err != nil {
		return err
	}
	for _, a := range x.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
	}
	g.emitSendOp(x.Super, x.Selector, len(x.Args))
	return nil
}

func (g *gen) emitSendOp(super bool, selector string, nargs int) {
	if !super {
		if op, ok := bytecode.SpecialSendFor(selector); ok {
			g.asm.Emit(op)
			return
		}
	}
	op := bytecode.OpSend
	if super {
		op = bytecode.OpSendSuper
	}
	g.asm.EmitSend(op, g.literal(Lit{Kind: LitSymbol, Str: selector}), nargs)
}

func (g *gen) genCascade(x *CascadeNode) error {
	if err := g.genExpr(x.Receiver); err != nil {
		return err
	}
	for i, msg := range x.Msgs {
		last := i == len(x.Msgs)-1
		if !last {
			g.asm.Emit(bytecode.OpDup)
		}
		for _, a := range msg.Args {
			if err := g.genExpr(a); err != nil {
				return err
			}
		}
		g.emitSendOp(x.Super, msg.Selector, len(msg.Args))
		if !last {
			g.asm.Emit(bytecode.OpPop)
		}
	}
	return nil
}

// genBlock compiles a real (non-inlined) block: its arguments and
// temporaries live in the home method's frame, Smalltalk-80 style.
func (g *gen) genBlock(x *BlockNode) error {
	g.usesBlocks = true
	scope := map[string]int{}
	firstArg := g.nTemps
	for _, p := range x.Params {
		if _, dup := scope[p]; dup {
			return g.errf(x, "duplicate block argument %q", p)
		}
		scope[p] = g.nTemps
		g.nTemps++
	}
	for _, t := range x.Temps {
		if _, dup := scope[t]; dup {
			return g.errf(x, "duplicate block temporary %q", t)
		}
		scope[t] = g.nTemps
		g.nTemps++
	}
	patch := g.asm.EmitPushBlock(len(x.Params), firstArg)
	g.scopes = append(g.scopes, scope)
	if err := g.genBlockBody(x.Body); err != nil {
		return err
	}
	g.scopes = g.scopes[:len(g.scopes)-1]
	g.asm.PatchBlock(patch)
	return nil
}

// genBlockBody emits block statements ending in a BlockReturn of the
// last value (or nil for an empty block). A ^return inside compiles to
// ReturnTop: a non-local return from the home method.
func (g *gen) genBlockBody(body []Stmt) error {
	if len(body) == 0 {
		g.asm.Emit(bytecode.OpPushNil)
		g.asm.Emit(bytecode.OpBlockReturn)
		return nil
	}
	for i, s := range body {
		last := i == len(body)-1
		switch s := s.(type) {
		case *ReturnStmt:
			if err := g.genExpr(s.X); err != nil {
				return err
			}
			g.asm.Emit(bytecode.OpReturnTop)
			return nil
		case *ExprStmt:
			if last {
				if err := g.genExpr(s.X); err != nil {
					return err
				}
				g.asm.Emit(bytecode.OpBlockReturn)
			} else {
				if err := g.genForEffect(s.X); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// genInlineValue emits an inlined block's statements, leaving the value
// of the last statement on the stack (nil for an empty block). The
// block's parameters/temps (if any) must already be bound by the caller.
func (g *gen) genInlineValue(b *BlockNode) error {
	scope := map[string]int{}
	for _, t := range b.Temps {
		scope[t] = g.nTemps
		g.nTemps++
	}
	g.scopes = append(g.scopes, scope)
	defer func() { g.scopes = g.scopes[:len(g.scopes)-1] }()
	if len(b.Body) == 0 {
		g.asm.Emit(bytecode.OpPushNil)
		return nil
	}
	for i, s := range b.Body {
		last := i == len(b.Body)-1
		switch s := s.(type) {
		case *ReturnStmt:
			if err := g.genExpr(s.X); err != nil {
				return err
			}
			g.asm.Emit(bytecode.OpReturnTop)
			if last {
				// Unreachable, but keep stack shape consistent
				// for the analyzer.
				g.asm.Emit(bytecode.OpPushNil)
			}
			return nil
		case *ExprStmt:
			if last {
				if err := g.genExpr(s.X); err != nil {
					return err
				}
			} else {
				if err := g.genForEffect(s.X); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// literalBlock returns x as a zero-argument literal block, or nil.
func literalBlock(x Expr, nparams int) *BlockNode {
	if b, ok := x.(*BlockNode); ok && len(b.Params) == nparams {
		return b
	}
	return nil
}

// tryInline handles control-flow selectors with literal block operands.
// It reports whether it emitted code.
func (g *gen) tryInline(x *SendNode) (bool, error) {
	switch x.Selector {
	case "ifTrue:":
		if t := literalBlock(x.Args[0], 0); t != nil {
			return true, g.genIf(x.Receiver, t, nil)
		}
	case "ifFalse:":
		if f := literalBlock(x.Args[0], 0); f != nil {
			return true, g.genIf(x.Receiver, nil, f)
		}
	case "ifTrue:ifFalse:":
		t, f := literalBlock(x.Args[0], 0), literalBlock(x.Args[1], 0)
		if t != nil && f != nil {
			return true, g.genIf(x.Receiver, t, f)
		}
	case "ifFalse:ifTrue:":
		f, t := literalBlock(x.Args[0], 0), literalBlock(x.Args[1], 0)
		if t != nil && f != nil {
			return true, g.genIf(x.Receiver, t, f)
		}
	case "and:":
		if b := literalBlock(x.Args[0], 0); b != nil {
			return true, g.genAndOr(x.Receiver, b, true)
		}
	case "or:":
		if b := literalBlock(x.Args[0], 0); b != nil {
			return true, g.genAndOr(x.Receiver, b, false)
		}
	case "whileTrue:":
		c, b := literalBlock(x.Receiver, 0), literalBlock(x.Args[0], 0)
		if c != nil && b != nil {
			return true, g.genWhile(c, b, true)
		}
	case "whileFalse:":
		c, b := literalBlock(x.Receiver, 0), literalBlock(x.Args[0], 0)
		if c != nil && b != nil {
			return true, g.genWhile(c, b, false)
		}
	case "whileTrue":
		if c := literalBlock(x.Receiver, 0); c != nil {
			return true, g.genWhile(c, nil, true)
		}
	case "whileFalse":
		if c := literalBlock(x.Receiver, 0); c != nil {
			return true, g.genWhile(c, nil, false)
		}
	case "repeat":
		if b := literalBlock(x.Receiver, 0); b != nil {
			return true, g.genRepeat(b)
		}
	case "to:do:":
		if b := literalBlock(x.Args[1], 1); b != nil {
			return true, g.genToDo(x.Receiver, x.Args[0], 1, b)
		}
	case "to:by:do:":
		step, isLit := x.Args[1].(*LiteralNode)
		b := literalBlock(x.Args[2], 1)
		if b != nil && isLit && step.Kind == LitInt && step.Int != 0 &&
			step.Int >= -128 && step.Int <= 127 {
			return true, g.genToDo(x.Receiver, x.Args[0], step.Int, b)
		}
	}
	return false, nil
}

func (g *gen) genIf(cond Expr, thenB, elseB *BlockNode) error {
	if err := g.genExpr(cond); err != nil {
		return err
	}
	toElse := g.asm.EmitJump(bytecode.OpJumpFalse)
	if thenB != nil {
		if err := g.genInlineValue(thenB); err != nil {
			return err
		}
	} else {
		g.asm.Emit(bytecode.OpPushNil)
	}
	toEnd := g.asm.EmitJump(bytecode.OpJump)
	g.asm.PatchJump(toElse)
	if elseB != nil {
		if err := g.genInlineValue(elseB); err != nil {
			return err
		}
	} else {
		g.asm.Emit(bytecode.OpPushNil)
	}
	g.asm.PatchJump(toEnd)
	return nil
}

func (g *gen) genAndOr(cond Expr, b *BlockNode, isAnd bool) error {
	if err := g.genExpr(cond); err != nil {
		return err
	}
	op := bytecode.OpJumpFalse
	if !isAnd {
		op = bytecode.OpJumpTrue
	}
	short := g.asm.EmitJump(op)
	if err := g.genInlineValue(b); err != nil {
		return err
	}
	toEnd := g.asm.EmitJump(bytecode.OpJump)
	g.asm.PatchJump(short)
	if isAnd {
		g.asm.Emit(bytecode.OpPushFalse)
	} else {
		g.asm.Emit(bytecode.OpPushTrue)
	}
	g.asm.PatchJump(toEnd)
	return nil
}

// genWhile emits [cond] whileTrue: [body]; the expression value is nil.
func (g *gen) genWhile(cond, body *BlockNode, whileTrue bool) error {
	top := g.asm.Len()
	if err := g.genInlineValue(cond); err != nil {
		return err
	}
	op := bytecode.OpJumpFalse
	if !whileTrue {
		op = bytecode.OpJumpTrue
	}
	exit := g.asm.EmitJump(op)
	if body != nil {
		if err := g.genInlineValue(body); err != nil {
			return err
		}
		g.asm.Emit(bytecode.OpPop)
	}
	g.asm.EmitJumpBack(bytecode.OpJump, top)
	g.asm.PatchJump(exit)
	g.asm.Emit(bytecode.OpPushNil)
	return nil
}

func (g *gen) genRepeat(body *BlockNode) error {
	top := g.asm.Len()
	if err := g.genInlineValue(body); err != nil {
		return err
	}
	g.asm.Emit(bytecode.OpPop)
	g.asm.EmitJumpBack(bytecode.OpJump, top)
	// A repeat never falls through, but the analyzer wants a value.
	g.asm.Emit(bytecode.OpPushNil)
	return nil
}

// genToDo inlines `start to: limit by: step do: [:i | body]`; its value
// is the start value, per Smalltalk-80.
func (g *gen) genToDo(start, limit Expr, step int64, body *BlockNode) error {
	iVar := g.nTemps
	g.nTemps++
	limitVar := g.nTemps
	g.nTemps++
	scope := map[string]int{body.Params[0]: iVar}
	for _, t := range body.Temps {
		scope[t] = g.nTemps
		g.nTemps++
	}

	if err := g.genExpr(start); err != nil {
		return err
	}
	g.asm.Emit(bytecode.OpDup) // keep the start value as the result
	g.asm.EmitU8(bytecode.OpPopTemp, iVar)
	if err := g.genExpr(limit); err != nil {
		return err
	}
	g.asm.EmitU8(bytecode.OpPopTemp, limitVar)

	top := g.asm.Len()
	g.asm.EmitU8(bytecode.OpPushTemp, iVar)
	g.asm.EmitU8(bytecode.OpPushTemp, limitVar)
	if step > 0 {
		g.asm.Emit(bytecode.OpSendLE)
	} else {
		g.asm.Emit(bytecode.OpSendGE)
	}
	exit := g.asm.EmitJump(bytecode.OpJumpFalse)

	g.scopes = append(g.scopes, scope)
	for _, s := range body.Body {
		switch s := s.(type) {
		case *ReturnStmt:
			if err := g.genExpr(s.X); err != nil {
				g.scopes = g.scopes[:len(g.scopes)-1]
				return err
			}
			g.asm.Emit(bytecode.OpReturnTop)
		case *ExprStmt:
			if err := g.genForEffect(s.X); err != nil {
				g.scopes = g.scopes[:len(g.scopes)-1]
				return err
			}
		}
	}
	g.scopes = g.scopes[:len(g.scopes)-1]

	g.asm.EmitU8(bytecode.OpPushTemp, iVar)
	g.asm.EmitI8(bytecode.OpPushInt8, int(step))
	g.asm.Emit(bytecode.OpSendAdd)
	g.asm.EmitU8(bytecode.OpPopTemp, iVar)
	g.asm.EmitJumpBack(bytecode.OpJump, top)
	g.asm.PatchJump(exit)
	return nil
}
