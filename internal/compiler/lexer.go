// Package compiler implements the Multiprocessor Smalltalk compiler:
// lexer, recursive-descent parser, and bytecode generator for the
// Smalltalk-80 language subset used by the image. The compiler is pure —
// it produces a Method description whose literals are Go values; the
// image layer materializes them as heap objects and installs the method
// in a class's method dictionary.
package compiler

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword // trailing colon, e.g. "at:"
	TokBinary  // binary selector, e.g. "+", "<="
	TokInt
	TokFloat
	TokChar
	TokString
	TokSymbol     // #foo, #at:put:, #+, #'quoted'
	TokArrayStart // #(
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokDot
	TokSemi
	TokCaret
	TokAssign   // :=
	TokPipe     // |
	TokBlockArg // :name
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Flt  float64
	Rune rune
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a compilation error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

const binaryChars = "+-*/~<>=&|@%,?!\\"

func isBinaryChar(r rune) bool { return strings.ContainsRune(binaryChars, r) }

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// Lexer tokenizes Smalltalk source.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
	prev TokKind // previous significant token, for negative-number context

	// arrayDepth tracks literal-array nesting: inside #( ... ) a minus
	// adjacent to digits is always a negative literal (Smalltalk-80
	// literal arrays hold no expressions).
	arrayDepth int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

func (l *Lexer) errf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) rune {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipBlanks consumes whitespace and comments ("..." with doubled quotes).
func (l *Lexer) skipBlanks() error {
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		if r == '"' {
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated comment")
				}
				if l.advance() == '"' {
					if l.peek() == '"' {
						l.advance() // doubled quote inside comment
						continue
					}
					break
				}
			}
			continue
		}
		break
	}
	return nil
}

// operandEnd reports whether the previous token could end an operand, in
// which case a following "-digit" is a binary minus, not a negative
// literal.
func operandEnd(k TokKind) bool {
	switch k {
	case TokIdent, TokInt, TokFloat, TokChar, TokString, TokSymbol,
		TokRParen, TokRBracket:
		return true
	}
	return false
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	t, err := l.next()
	if err == nil {
		l.prev = t.Kind
	}
	return t, err
}

func (l *Lexer) next() (Token, error) {
	if err := l.skipBlanks(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	r := l.peek()
	switch {
	case isIdentStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		if l.peek() == ':' && l.peekAt(1) != '=' {
			l.advance()
			tok.Kind = TokKeyword
			tok.Text = text + ":"
			return tok, nil
		}
		tok.Kind = TokIdent
		tok.Text = text
		return tok, nil

	case unicode.IsDigit(r):
		return l.lexNumber(tok, false)

	case r == '-' && unicode.IsDigit(l.peekAt(1)) && (l.arrayDepth > 0 || !operandEnd(l.prev)):
		l.advance()
		return l.lexNumber(tok, true)

	case r == '$':
		l.advance()
		if l.pos >= len(l.src) {
			return tok, l.errf("character literal at end of input")
		}
		tok.Kind = TokChar
		tok.Rune = l.advance()
		tok.Text = "$" + string(tok.Rune)
		return tok, nil

	case r == '\'':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, l.errf("unterminated string")
			}
			c := l.advance()
			if c == '\'' {
				if l.peek() == '\'' {
					l.advance()
					b.WriteRune('\'')
					continue
				}
				break
			}
			b.WriteRune(c)
		}
		tok.Kind = TokString
		tok.Text = b.String()
		return tok, nil

	case r == '#':
		l.advance()
		switch {
		case l.peek() == '(':
			l.advance()
			tok.Kind = TokArrayStart
			tok.Text = "#("
			return tok, nil
		case l.peek() == '\'':
			l.advance()
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return tok, l.errf("unterminated symbol")
				}
				c := l.advance()
				if c == '\'' {
					if l.peek() == '\'' {
						l.advance()
						b.WriteRune('\'')
						continue
					}
					break
				}
				b.WriteRune(c)
			}
			tok.Kind = TokSymbol
			tok.Text = b.String()
			return tok, nil
		case isIdentStart(l.peek()):
			var b strings.Builder
			for {
				start := l.pos
				for l.pos < len(l.src) && isIdentPart(l.peek()) {
					l.advance()
				}
				b.WriteString(string(l.src[start:l.pos]))
				if l.peek() == ':' {
					l.advance()
					b.WriteByte(':')
					if isIdentStart(l.peek()) {
						continue // multi-keyword symbol
					}
				}
				break
			}
			tok.Kind = TokSymbol
			tok.Text = b.String()
			return tok, nil
		case isBinaryChar(l.peek()):
			var b strings.Builder
			for l.pos < len(l.src) && isBinaryChar(l.peek()) {
				b.WriteRune(l.advance())
			}
			tok.Kind = TokSymbol
			tok.Text = b.String()
			return tok, nil
		default:
			return tok, l.errf("malformed symbol after #")
		}

	case r == '(':
		l.advance()
		tok.Kind = TokLParen
		tok.Text = "("
		return tok, nil
	case r == ')':
		l.advance()
		tok.Kind = TokRParen
		tok.Text = ")"
		return tok, nil
	case r == '[':
		l.advance()
		tok.Kind = TokLBracket
		tok.Text = "["
		return tok, nil
	case r == ']':
		l.advance()
		tok.Kind = TokRBracket
		tok.Text = "]"
		return tok, nil
	case r == '.':
		l.advance()
		tok.Kind = TokDot
		tok.Text = "."
		return tok, nil
	case r == ';':
		l.advance()
		tok.Kind = TokSemi
		tok.Text = ";"
		return tok, nil
	case r == '^':
		l.advance()
		tok.Kind = TokCaret
		tok.Text = "^"
		return tok, nil
	case r == ':':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			tok.Kind = TokAssign
			tok.Text = ":="
			return tok, nil
		}
		if isIdentStart(l.peek()) {
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
			tok.Kind = TokBlockArg
			tok.Text = string(l.src[start:l.pos])
			return tok, nil
		}
		return tok, l.errf("unexpected ':'")

	case isBinaryChar(r):
		var b strings.Builder
		for l.pos < len(l.src) && isBinaryChar(l.peek()) {
			b.WriteRune(l.advance())
		}
		text := b.String()
		if text == "|" {
			tok.Kind = TokPipe
			tok.Text = "|"
			return tok, nil
		}
		tok.Kind = TokBinary
		tok.Text = text
		return tok, nil

	default:
		return tok, l.errf("unexpected character %q", r)
	}
}

// lexNumber scans an integer or float, with optional radix (16rFF) and
// exponent (1.5e3). neg applies a leading minus already consumed.
func (l *Lexer) lexNumber(tok Token, neg bool) (Token, error) {
	digits := func(valid func(rune) bool) string {
		start := l.pos
		for l.pos < len(l.src) && valid(l.peek()) {
			l.advance()
		}
		return string(l.src[start:l.pos])
	}
	intPart := digits(unicode.IsDigit)

	// Radix integer: 16rFF, 2r1010.
	if l.peek() == 'r' {
		var radix int64
		for _, c := range intPart {
			radix = radix*10 + int64(c-'0')
		}
		if radix < 2 || radix > 36 {
			return tok, l.errf("bad radix %s", intPart)
		}
		l.advance()
		start := l.pos
		var v int64
		for l.pos < len(l.src) {
			c := l.peek()
			var d int64 = -1
			switch {
			case unicode.IsDigit(c):
				d = int64(c - '0')
			case c >= 'A' && c <= 'Z':
				d = int64(c-'A') + 10
			}
			if d < 0 || d >= radix {
				break
			}
			v = v*radix + d
			l.advance()
		}
		if l.pos == start {
			return tok, l.errf("missing digits after radix")
		}
		if neg {
			v = -v
		}
		tok.Kind = TokInt
		tok.Int = v
		tok.Text = fmt.Sprintf("%d", v)
		return tok, nil
	}

	isFloat := false
	fracPart := ""
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		l.advance()
		isFloat = true
		fracPart = digits(unicode.IsDigit)
	}
	expPart := ""
	if l.peek() == 'e' && (unicode.IsDigit(l.peekAt(1)) ||
		(l.peekAt(1) == '-' && unicode.IsDigit(l.peekAt(2)))) {
		l.advance()
		isFloat = true
		if l.peek() == '-' {
			l.advance()
			expPart = "-"
		}
		expPart += digits(unicode.IsDigit)
	}

	if isFloat {
		var f float64
		text := intPart
		if fracPart != "" {
			text += "." + fracPart
		}
		if expPart != "" {
			text += "e" + expPart
		}
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return tok, l.errf("bad float %q", text)
		}
		if neg {
			f = -f
		}
		tok.Kind = TokFloat
		tok.Flt = f
		tok.Text = text
		return tok, nil
	}

	var v int64
	for _, c := range intPart {
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	tok.Kind = TokInt
	tok.Int = v
	tok.Text = fmt.Sprintf("%d", v)
	return tok, nil
}
