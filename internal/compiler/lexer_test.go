package compiler

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	l := NewLexer(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == TokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexIdentifiersAndKeywords(t *testing.T) {
	toks := lexAll(t, "foo at:put: Bar_1")
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "foo" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokKeyword || toks[1].Text != "at:" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TokKeyword || toks[2].Text != "put:" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TokIdent || toks[3].Text != "Bar_1" {
		t.Fatalf("tok3 = %+v", toks[3])
	}
}

func TestLexAssignVsKeyword(t *testing.T) {
	toks := lexAll(t, "x := y")
	if len(toks) != 3 || toks[1].Kind != TokAssign {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexAll(t, "42 16rFF 2r101 3.25 1.5e3 1e-2 0")
	wantInts := map[int]int64{0: 42, 1: 255, 2: 5, 6: 0}
	for i, v := range wantInts {
		if toks[i].Kind != TokInt || toks[i].Int != v {
			t.Errorf("tok%d = %+v, want int %d", i, toks[i], v)
		}
	}
	if toks[3].Kind != TokFloat || toks[3].Flt != 3.25 {
		t.Errorf("tok3 = %+v", toks[3])
	}
	if toks[4].Kind != TokFloat || toks[4].Flt != 1500 {
		t.Errorf("tok4 = %+v", toks[4])
	}
	if toks[5].Kind != TokFloat || toks[5].Flt != 0.01 {
		t.Errorf("tok5 = %+v", toks[5])
	}
}

func TestLexNegativeNumbersVsMinus(t *testing.T) {
	toks := lexAll(t, "3 - 4")
	if len(toks) != 3 || toks[1].Kind != TokBinary {
		t.Fatalf("spaced minus: %v", toks)
	}
	toks = lexAll(t, "3 -4") // binary minus in Smalltalk-80 terms? No: operand follows operand
	// Our rule: after an operand, "-4" is binary minus then 4.
	if len(toks) != 3 || toks[1].Kind != TokBinary || toks[2].Int != 4 {
		t.Fatalf("adjacent minus after operand: %v", toks)
	}
	toks = lexAll(t, "foo: -4")
	if len(toks) != 2 || toks[1].Kind != TokInt || toks[1].Int != -4 {
		t.Fatalf("negative literal after keyword: %v", toks)
	}
	toks = lexAll(t, "(-4)")
	if toks[1].Kind != TokInt || toks[1].Int != -4 {
		t.Fatalf("negative after lparen: %v", toks)
	}
}

func TestLexStringsAndChars(t *testing.T) {
	toks := lexAll(t, "'it''s' $a $  'x'")
	if toks[0].Kind != TokString || toks[0].Text != "it's" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokChar || toks[1].Rune != 'a' {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TokChar || toks[2].Rune != ' ' {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TokString || toks[3].Text != "x" {
		t.Fatalf("tok3 = %+v", toks[3])
	}
}

func TestLexSymbols(t *testing.T) {
	toks := lexAll(t, "#foo #at:put: #+ #'hello world' #(1 2)")
	if toks[0].Kind != TokSymbol || toks[0].Text != "foo" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokSymbol || toks[1].Text != "at:put:" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TokSymbol || toks[2].Text != "+" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TokSymbol || toks[3].Text != "hello world" {
		t.Fatalf("tok3 = %+v", toks[3])
	}
	if toks[4].Kind != TokArrayStart {
		t.Fatalf("tok4 = %+v", toks[4])
	}
}

func TestLexBinarySelectors(t *testing.T) {
	toks := lexAll(t, "a <= b ~= c // d \\\\ e @ f")
	kinds := []string{"<=", "~=", "//", "\\\\", "@"}
	j := 0
	for _, tok := range toks {
		if tok.Kind == TokBinary {
			if tok.Text != kinds[j] {
				t.Fatalf("binary %d = %q, want %q", j, tok.Text, kinds[j])
			}
			j++
		}
	}
	if j != len(kinds) {
		t.Fatalf("found %d binaries", j)
	}
}

func TestLexCommentsSkipped(t *testing.T) {
	toks := lexAll(t, `foo "a comment" bar "with ""quotes"" inside" baz`)
	if len(toks) != 3 {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexBlockTokens(t *testing.T) {
	toks := lexAll(t, "[:x :y | x + y]")
	if toks[0].Kind != TokLBracket ||
		toks[1].Kind != TokBlockArg || toks[1].Text != "x" ||
		toks[2].Kind != TokBlockArg || toks[2].Text != "y" ||
		toks[3].Kind != TokPipe {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexPunctuation(t *testing.T) {
	toks := lexAll(t, "^ x . ; ( ) [ ]")
	want := []TokKind{TokCaret, TokIdent, TokDot, TokSemi, TokLParen, TokRParen, TokLBracket, TokRBracket}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("tok%d = %+v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "#", "3r999", "{"} {
		l := NewLexer(src)
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			var tok Token
			tok, err = l.Next()
			if tok.Kind == TokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lexing %q produced no error", src)
		}
	}
}

func TestLexLineTracking(t *testing.T) {
	toks := lexAll(t, "a\nb\n  c")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 || toks[2].Col != 3 {
		t.Fatalf("positions: %v", toks)
	}
}
