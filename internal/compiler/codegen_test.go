package compiler

import (
	"fmt"
	"strings"
	"testing"

	"mst/internal/bytecode"
)

func testEnv() MapEnv {
	return MapEnv{
		InstVars: []string{"x", "y"},
		Globals:  map[string]bool{"Transcript": true, "Smalltalk": true, "Object": true},
	}
}

func compileM(t *testing.T, src string) *Method {
	t.Helper()
	m, err := CompileMethod(src, testEnv())
	if err != nil {
		t.Fatalf("CompileMethod(%q): %v", src, err)
	}
	return m
}

func ops(m *Method) []bytecode.Op {
	var out []bytecode.Op
	pc := 0
	for pc < len(m.Code) {
		op := bytecode.Op(m.Code[pc])
		out = append(out, op)
		pc += 1 + bytecode.OperandLen(op)
	}
	return out
}

func hasOp(m *Method, want bytecode.Op) bool {
	for _, op := range ops(m) {
		if op == want {
			return true
		}
	}
	return false
}

func TestGenReturnConstant(t *testing.T) {
	m := compileM(t, "three ^3")
	want := []bytecode.Op{bytecode.OpPushInt8, bytecode.OpReturnTop}
	got := ops(m)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ops = %v", got)
	}
	if m.NumArgs != 0 || m.NumTemps != 0 || !m.Clean {
		t.Fatalf("method = %+v", m)
	}
}

func TestGenFallsOffEndReturnsSelf(t *testing.T) {
	m := compileM(t, "doNothing self size")
	got := ops(m)
	if got[len(got)-1] != bytecode.OpReturnSelf {
		t.Fatalf("ops = %v", got)
	}
}

func TestGenSpecialSends(t *testing.T) {
	m := compileM(t, "test ^1 + 2 * 3")
	got := ops(m)
	want := []bytecode.Op{bytecode.OpPushInt8, bytecode.OpPushInt8, bytecode.OpSendAdd,
		bytecode.OpPushInt8, bytecode.OpSendMul, bytecode.OpReturnTop}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
	if len(m.Literals) != 0 {
		t.Fatalf("special sends should use no literals: %v", m.Literals)
	}
}

func TestGenGenericSendUsesLiteral(t *testing.T) {
	m := compileM(t, "test ^self frobnicate: 1 with: 2")
	if !hasOp(m, bytecode.OpSend) {
		t.Fatal("no generic send emitted")
	}
	if len(m.Literals) != 1 || m.Literals[0].Kind != LitSymbol || m.Literals[0].Str != "frobnicate:with:" {
		t.Fatalf("literals = %+v", m.Literals)
	}
}

func TestGenVariableKinds(t *testing.T) {
	m := compileM(t, "test: a | t | t := a. x := t. Transcript")
	if !hasOp(m, bytecode.OpPushTemp) || !hasOp(m, bytecode.OpPopTemp) ||
		!hasOp(m, bytecode.OpPopInstVar) || !hasOp(m, bytecode.OpPushGlobal) {
		t.Fatalf("ops = %v", ops(m))
	}
	if m.NumArgs != 1 || m.NumTemps != 2 {
		t.Fatalf("args/temps = %d/%d", m.NumArgs, m.NumTemps)
	}
}

func TestGenAssignmentAsExpressionKeepsValue(t *testing.T) {
	m := compileM(t, "test | t | ^t := 5")
	got := ops(m)
	want := []bytecode.Op{bytecode.OpPushInt8, bytecode.OpStoreTemp, bytecode.OpReturnTop}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v", got)
		}
	}
}

func TestGenUndeclaredVariableError(t *testing.T) {
	if _, err := CompileMethod("test ^zork", testEnv()); err == nil {
		t.Fatal("undeclared variable compiled")
	}
	if _, err := CompileMethod("test zork := 1", testEnv()); err == nil {
		t.Fatal("undeclared assignment compiled")
	}
}

func TestGenIfTrueInlines(t *testing.T) {
	m := compileM(t, "test ^x > 0 ifTrue: ['pos'] ifFalse: ['neg']")
	if hasOp(m, bytecode.OpSend) || hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("ifTrue:ifFalse: not inlined: %v", ops(m))
	}
	if !hasOp(m, bytecode.OpJumpFalse) || !hasOp(m, bytecode.OpJump) {
		t.Fatalf("no jumps: %v", ops(m))
	}
	if !m.Clean {
		t.Fatal("inlined blocks should leave the method clean")
	}
}

func TestGenIfWithoutElsePushesNil(t *testing.T) {
	m := compileM(t, "test ^x > 0 ifTrue: [1]")
	if !hasOp(m, bytecode.OpPushNil) {
		t.Fatalf("no nil for missing else: %v", ops(m))
	}
}

func TestGenWhileTrueIsPureJumps(t *testing.T) {
	// The paper's idle Process: [true] whileTrue — must compile to
	// bytecode that "neither looks up messages nor allocates memory".
	m := compileM(t, "idle [true] whileTrue")
	for _, op := range ops(m) {
		switch op {
		case bytecode.OpSend, bytecode.OpSendSuper, bytecode.OpPushBlock:
			t.Fatalf("idle loop contains %v: %v", op.Name(), ops(m))
		}
	}
	if !hasOp(m, bytecode.OpJumpFalse) {
		t.Fatalf("no loop: %v", ops(m))
	}
}

func TestGenWhileTrueWithBody(t *testing.T) {
	m := compileM(t, "test | i | i := 0. [i < 10] whileTrue: [i := i + 1]. ^i")
	if hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("whileTrue: not inlined: %v", ops(m))
	}
}

func TestGenAndOrShortCircuit(t *testing.T) {
	m := compileM(t, "test ^(x > 0 and: [y > 0]) or: [x = y]")
	if hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("and:/or: not inlined: %v", ops(m))
	}
	if !hasOp(m, bytecode.OpJumpFalse) || !hasOp(m, bytecode.OpJumpTrue) {
		t.Fatalf("ops = %v", ops(m))
	}
}

func TestGenToDoInlines(t *testing.T) {
	m := compileM(t, "test | s | s := 0. 1 to: 10 do: [:i | s := s + i]. ^s")
	if hasOp(m, bytecode.OpPushBlock) || hasOp(m, bytecode.OpSend) {
		t.Fatalf("to:do: not inlined: %v", ops(m))
	}
	// s, hidden i, hidden limit
	if m.NumTemps != 3 {
		t.Fatalf("temps = %d, want 3", m.NumTemps)
	}
}

func TestGenToByDoNegativeStep(t *testing.T) {
	m := compileM(t, "test | s | s := 0. 10 to: 1 by: -1 do: [:i | s := s + i]. ^s")
	if hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("to:by:do: not inlined: %v", ops(m))
	}
	if !hasOp(m, bytecode.OpSendGE) {
		t.Fatalf("negative step must compare with >=: %v", ops(m))
	}
}

func TestGenNonLiteralBlockFallsBackToSend(t *testing.T) {
	m := compileM(t, "test: aBlock ^x > 0 ifTrue: aBlock")
	if !hasOp(m, bytecode.OpSend) {
		t.Fatalf("non-literal block arg must be a real send: %v", ops(m))
	}
}

func TestGenRealBlock(t *testing.T) {
	m := compileM(t, "test ^[:a | a + 1]")
	if !hasOp(m, bytecode.OpPushBlock) || !hasOp(m, bytecode.OpBlockReturn) {
		t.Fatalf("ops = %v", ops(m))
	}
	if m.Clean {
		t.Fatal("method with block must not be clean")
	}
	if m.NumTemps != 1 {
		t.Fatalf("block arg should use a home temp: %d", m.NumTemps)
	}
}

func TestGenBlockNonLocalReturn(t *testing.T) {
	m := compileM(t, "test self do: [:e | e > 0 ifTrue: [^e]]. ^nil")
	// The ^e inside the block must be ReturnTop (non-local), not
	// BlockReturn.
	if !hasOp(m, bytecode.OpReturnTop) {
		t.Fatalf("ops = %v", ops(m))
	}
}

func TestGenCascade(t *testing.T) {
	m := compileM(t, "test Transcript show: 'a'; cr; show: 'b'")
	got := ops(m)
	dups := 0
	for _, op := range got {
		if op == bytecode.OpDup {
			dups++
		}
	}
	if dups != 2 {
		t.Fatalf("cascade dups = %d, want 2: %v", dups, got)
	}
}

func TestGenSuperSend(t *testing.T) {
	m := compileM(t, "test ^super size")
	if !hasOp(m, bytecode.OpSendSuper) {
		t.Fatalf("ops = %v", ops(m))
	}
	// Even special selectors go through the literal frame with super.
	m = compileM(t, "test ^super + 1")
	if !hasOp(m, bytecode.OpSendSuper) || hasOp(m, bytecode.OpSendAdd) {
		t.Fatalf("super + must not use the special send: %v", ops(m))
	}
}

func TestGenLiteralDeduplication(t *testing.T) {
	m := compileM(t, "test ^self foo: #bar with: #bar with: 'baz' with: 'baz'")
	syms, strs := 0, 0
	for _, l := range m.Literals {
		switch l.Kind {
		case LitSymbol:
			if l.Str == "bar" {
				syms++
			}
		case LitString:
			strs++
		}
	}
	if syms != 1 || strs != 1 {
		t.Fatalf("literals not deduplicated: %+v", m.Literals)
	}
}

func TestGenLargeIntegerLiteral(t *testing.T) {
	m := compileM(t, "test ^123456789")
	if len(m.Literals) != 1 || m.Literals[0].Kind != LitInt || m.Literals[0].Int != 123456789 {
		t.Fatalf("literals = %+v", m.Literals)
	}
	if !hasOp(m, bytecode.OpPushLiteral) {
		t.Fatalf("ops = %v", ops(m))
	}
}

func TestGenPrimitiveMethod(t *testing.T) {
	m := compileM(t, "basicNew <primitive: 70> ^self error: 'allocation failed'")
	if m.Primitive != 70 {
		t.Fatalf("primitive = %d", m.Primitive)
	}
	// The fallback code must still be present.
	if !hasOp(m, bytecode.OpSend) {
		t.Fatalf("no fallback code: %v", ops(m))
	}
}

func TestGenMaxStackSimple(t *testing.T) {
	m := compileM(t, "test ^1 + 2 + 3")
	if m.MaxStack != 2 {
		t.Fatalf("MaxStack = %d, want 2", m.MaxStack)
	}
	m = compileM(t, "test ^self foo: 1 bar: 2 baz: 3")
	if m.MaxStack != 4 {
		t.Fatalf("MaxStack = %d, want 4", m.MaxStack)
	}
}

func TestGenThisContextMarksUnclean(t *testing.T) {
	m := compileM(t, "test ^thisContext")
	if m.Clean {
		t.Fatal("thisContext method must not be clean")
	}
}

func TestGenExpression(t *testing.T) {
	m, err := CompileExpression("3 + 4", testEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := ops(m)
	if got[len(got)-1] != bytecode.OpReturnTop {
		t.Fatalf("expression must return its value: %v", got)
	}
}

func TestGenRepeatLoop(t *testing.T) {
	m := compileM(t, "test [self size. x > 3 ifTrue: [^x]] repeat")
	if hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("repeat not inlined: %v", ops(m))
	}
}

func TestGenDisassemblesCleanly(t *testing.T) {
	m := compileM(t, "test: n | s | s := 0. 1 to: n do: [:i | s := s + i]. ^s")
	text := bytecode.Disassemble(m.Code, func(i int) string { return m.Literals[i].Str })
	if !strings.Contains(text, "jump") {
		t.Fatalf("disassembly:\n%s", text)
	}
}

func TestGenInstVarAccess(t *testing.T) {
	m := compileM(t, "getY ^y")
	got := ops(m)
	if got[0] != bytecode.OpPushInstVar || m.Code[1] != 1 {
		t.Fatalf("ops = %v code=%v", got, m.Code)
	}
}

func TestGenNestedBlocks(t *testing.T) {
	m := compileM(t, "test ^[:a | [:b | a + b]]")
	count := 0
	for _, op := range ops(m) {
		if op == bytecode.OpPushBlock {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("nested blocks = %d, want 2: %v", count, ops(m))
	}
	if m.NumTemps != 2 {
		t.Fatalf("temps = %d, want 2 (both block args hoisted)", m.NumTemps)
	}
}

func TestGenInlinedBlockWithTemps(t *testing.T) {
	m := compileM(t, "test ^x > 0 ifTrue: [| t | t := x + 1. t * 2]")
	if hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("inlined block with temps created a real block: %v", ops(m))
	}
	if m.NumTemps != 1 {
		t.Fatalf("temps = %d, want 1 (inlined block temp)", m.NumTemps)
	}
}

func TestGenNestedInlining(t *testing.T) {
	src := `test | s | s := 0.
		1 to: 10 do: [:i |
			i even ifTrue: [
				| j | j := i.
				[j > 0] whileTrue: [s := s + j. j := j - 1]]].
		^s`
	m := compileM(t, src)
	if hasOp(m, bytecode.OpPushBlock) {
		t.Fatalf("nested control flow not fully inlined: %v", ops(m))
	}
	if !m.Clean {
		t.Fatal("fully inlined method should be clean")
	}
}

func TestGenCascadeValueIsLastMessage(t *testing.T) {
	// Cascade compiles receiver once and leaves the last send's value.
	m := compileM(t, "test ^self foo: 1; bar; baz: 2")
	code := ops(m)
	if code[len(code)-1] != bytecode.OpReturnTop {
		t.Fatalf("ops = %v", code)
	}
	pops := 0
	for _, op := range code {
		if op == bytecode.OpPop {
			pops++
		}
	}
	if pops != 2 { // two non-final cascade messages discarded
		t.Fatalf("pops = %d, want 2: %v", pops, code)
	}
}

func TestGenLiteralArrayWithNegatives(t *testing.T) {
	m := compileM(t, "test ^#(-1 -200 3)")
	if len(m.Literals) != 1 || m.Literals[0].Kind != LitArray {
		t.Fatalf("literals = %+v", m.Literals)
	}
	arr := m.Literals[0].Arr
	if arr[0].Int != -1 || arr[1].Int != -200 || arr[2].Int != 3 {
		t.Fatalf("array = %+v", arr)
	}
}

func TestGenReturnOnlyStatement(t *testing.T) {
	m := compileM(t, "test ^self")
	got := ops(m)
	if len(got) != 2 || got[0] != bytecode.OpPushSelf || got[1] != bytecode.OpReturnTop {
		t.Fatalf("ops = %v", got)
	}
}

func TestGenCommentsIgnored(t *testing.T) {
	m := compileM(t, `test "header comment" | a | "temp comment" a := 1. "trailing" ^a`)
	if m.NumTemps != 1 {
		t.Fatalf("temps = %d", m.NumTemps)
	}
}

func TestGenBlockReturningBlock(t *testing.T) {
	m := compileM(t, "test ^[[42]]")
	count := 0
	for _, op := range ops(m) {
		if op == bytecode.OpPushBlock {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("blocks = %d", count)
	}
}

func TestGenManyLiteralsError(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("test ")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "self foo%d. ", i)
	}
	if _, err := CompileMethod(sb.String(), testEnv()); err == nil {
		t.Fatal("300 distinct selectors fit in a byte-indexed literal frame?")
	}
}

func TestGenWhileTrueNonLiteralReceiverFallsBack(t *testing.T) {
	m := compileM(t, "test: b b whileTrue: [self foo]")
	// Receiver is a variable: must be a real send of whileTrue:.
	found := false
	for _, l := range m.Literals {
		if l.Kind == LitSymbol && l.Str == "whileTrue:" {
			found = true
		}
	}
	if !found {
		t.Fatalf("whileTrue: on variable not sent: %v", m.Literals)
	}
}

func TestGenIfNonBlockArgumentsFallBack(t *testing.T) {
	m := compileM(t, "test: b ^x > 0 ifTrue: b ifFalse: [2]")
	found := false
	for _, l := range m.Literals {
		if l.Kind == LitSymbol && l.Str == "ifTrue:ifFalse:" {
			found = true
		}
	}
	if !found {
		t.Fatal("mixed block/non-block ifTrue:ifFalse: should be a real send")
	}
}
