// Package sanitize is mscheck, the Table-3 invariant sanitizer: an
// always-compilable, off-by-default checker layer that turns the
// paper's concurrency discipline — every piece of shared VM state is
// covered by exactly one of serialization, replication, or
// reorganization — into executable checks.
//
// Three engines:
//
//   - The Eraser-style lockset checker validates the *serialization*
//     rows: each shared structure (allocation pointer, entry table,
//     ready queue, I/O queues, shared method cache, shared free lists)
//     is registered with its guarding virtual spinlock, and every
//     instrumented access is checked against the locks the accessing
//     virtual processor currently holds. Acquisition order is tracked
//     pairwise and potential deadlock cycles are reported.
//   - The ownership checker validates the *replication* rows: a
//     replicated structure (per-processor method cache, TLAB, free
//     context list) may only ever be touched by the processor that
//     owns it.
//   - The write-barrier verifier (implemented in internal/heap, which
//     owns the memory; violations are reported here) independently
//     rescans old space after every scavenge and cross-checks old→new
//     pointers against the entry table, catching any store that
//     bypassed the store check.
//
// The determinism sentinel is the package's meta-invariant: a checker
// is pure observation, so a sanitizer-on run must leave virtual time
// and every counter bit-identical to a sanitizer-off run.
// FingerprintDiff compares two counter snapshots deterministically;
// the golden tests assert the full invariant.
//
// Like internal/trace, this package sits below every other layer (it
// imports nothing from the repository) so that firefly, heap, interp,
// and display can all feed one checker through nil-checked hook
// points. A nil *Checker costs each hook site exactly one pointer
// check. The checker itself never charges virtual time and never
// touches the simulated heap.
package sanitize

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies one sanitizer violation.
type Kind int

const (
	// KindUnlockedAccess: a serialized structure was accessed by a
	// processor not holding its guarding lock.
	KindUnlockedAccess Kind = iota
	// KindUnknownStructure: an access hook fired for a structure that
	// was never registered with a guard (a wiring bug).
	KindUnknownStructure
	// KindDoubleAcquire: a processor acquired a lock it already holds
	// (the virtual spinlocks are not recursive).
	KindDoubleAcquire
	// KindReleaseNotHeld: a processor released a lock it does not hold.
	KindReleaseNotHeld
	// KindLockOrderCycle: the pairwise acquisition-order graph contains
	// a cycle — a potential deadlock on real hardware.
	KindLockOrderCycle
	// KindForeignAccess: a replicated (per-processor) structure was
	// accessed by a processor other than its owner.
	KindForeignAccess
	// KindWriteBarrier: the post-scavenge old-space scan found an
	// old→new pointer that is not covered by the entry table (a store
	// that bypassed the store check), or a dangling pointer into
	// reclaimed new space left behind by such a store.
	KindWriteBarrier
	// KindGCClaim: the parallel scavenger's CAS-claimed forwarding
	// discipline was broken — two workers both claimed the same object
	// for copying, or a worker published a forwarding pointer for an
	// object it never claimed. Claiming is the *reorganization* analogue
	// of lock ownership: the winning CAS transfers the object to exactly
	// one worker until it publishes the copy.
	KindGCClaim
	// KindConcMark: the concurrent-marking discipline was broken — an
	// object was claimed grey twice in one cycle (the white→grey CAS
	// failed to serialize the markers), a pointer store overwrote an
	// old-space reference during active marking without the deletion
	// barrier shading it (the snapshot-at-the-beginning invariant), or
	// the finalize-window tri-color scan found a reachable white object.
	KindConcMark
)

var kindNames = map[Kind]string{
	KindUnlockedAccess:   "unlocked-access",
	KindUnknownStructure: "unknown-structure",
	KindDoubleAcquire:    "double-acquire",
	KindReleaseNotHeld:   "release-not-held",
	KindLockOrderCycle:   "lock-order-cycle",
	KindForeignAccess:    "foreign-access",
	KindWriteBarrier:     "write-barrier",
	KindGCClaim:          "gc-claim",
	KindConcMark:         "conc-mark",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Violation is one detected invariant breach. At is virtual ticks on
// the offending processor's clock when the hook fired.
type Violation struct {
	Kind      Kind
	Proc      int
	At        int64
	Structure string // structure or lock the violation concerns
	Lock      string // guarding lock, when applicable
	Detail    string
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mscheck %s: proc %d at %d", v.Kind, v.Proc, v.At)
	if v.Structure != "" {
		fmt.Fprintf(&b, " structure %q", v.Structure)
	}
	if v.Lock != "" {
		fmt.Fprintf(&b, " lock %q", v.Lock)
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	return b.String()
}

// orderEdge is one first-witnessed "acquired b while holding a".
type orderEdge struct{ a, b string }

type orderWitness struct {
	proc int
	at   int64
}

// Checker is the mscheck run-time state. A host-side mutex makes every
// hook safe to call from any goroutine: the deterministic baton mode
// has a single writer anyway (the lock is never contended there), and
// parallel host mode feeds the checker from all processors at once.
// The mutex is pure host machinery — it never charges virtual time, so
// the determinism sentinel still holds.
type Checker struct {
	//msvet:stw-safe checker bookkeeping lock: held for bounded map updates only, never across a safepoint or while acquiring any simulated lock
	mu         sync.Mutex
	locks      map[string]bool   // lock name → enabled
	guards     map[string]string // structure → guarding lock name
	replicated map[string]bool   // replicated structure names seen

	held [][]string // per-proc ordered list of held lock names

	// gcClaims maps a from-space object address to the parallel-scavenge
	// worker that CAS-claimed it for copying. Populated between
	// OnGCClaim and ResetGCClaims (scavenge end); from-space addresses
	// are recycled by the next scavenge, so the table must be cleared.
	gcClaims map[uint64]int

	// markClaims maps an old-space object address to the processor that
	// won its white→grey claim in the current concurrent-mark cycle.
	// Populated between OnMarkGrey and ResetMarkClaims (cycle end); old
	// addresses are reusable after the sweep, so the table must be
	// cleared.
	markClaims map[uint64]int

	edges map[orderEdge]orderWitness

	violations []Violation

	lockEvents   uint64 // acquire/release hooks validated
	accessChecks uint64 // structure accesses validated
	barrierScans uint64 // post-scavenge write-barrier verifications
	barrierWords uint64 // old-space words scanned by the verifier
}

// New creates an empty checker. Attach it to a machine before the
// system boots so every lock and structure registers itself.
func New() *Checker {
	return &Checker{
		locks:      map[string]bool{},
		guards:     map[string]string{},
		replicated: map[string]bool{},
		edges:      map[orderEdge]orderWitness{},
	}
}

// RegisterLock records a virtual spinlock. A disabled lock (baseline
// BS mode, multiprocessor support compiled out) exempts every
// structure it guards: the accesses are single-threaded by
// construction, so the lockset rule does not apply.
func (c *Checker) RegisterLock(name string, enabled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.locks[name] = enabled
}

// RegisterGuard declares that the named shared structure is protected
// by the named lock (a Table-3 serialization row).
func (c *Checker) RegisterGuard(structure, lock string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.guards[structure] = lock
}

// procHeld returns the held-lock list for proc, growing the table.
func (c *Checker) procHeld(proc int) *[]string {
	for proc >= len(c.held) {
		c.held = append(c.held, nil)
	}
	return &c.held[proc]
}

func (c *Checker) report(v Violation) { c.violations = append(c.violations, v) }

// OnAcquire records that proc now holds lock, validating against
// double acquisition and recording pairwise acquisition order.
func (c *Checker) OnAcquire(proc int, at int64, lock string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lockEvents++
	held := c.procHeld(proc)
	for _, h := range *held {
		if h == lock {
			c.report(Violation{Kind: KindDoubleAcquire, Proc: proc, At: at, Lock: lock,
				Detail: "lock acquired while already held by this processor"})
			return
		}
	}
	for _, h := range *held {
		e := orderEdge{a: h, b: lock}
		if _, ok := c.edges[e]; !ok {
			c.edges[e] = orderWitness{proc: proc, at: at}
		}
	}
	*held = append(*held, lock)
}

// OnRelease records that proc dropped lock.
func (c *Checker) OnRelease(proc int, at int64, lock string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lockEvents++
	held := c.procHeld(proc)
	for i, h := range *held {
		if h == lock {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
	c.report(Violation{Kind: KindReleaseNotHeld, Proc: proc, At: at, Lock: lock,
		Detail: "lock released by a processor that does not hold it"})
}

// OnAccess validates an access to a registered serialized structure:
// the accessing processor must hold the structure's guard, unless the
// guard is a disabled (baseline) lock.
func (c *Checker) OnAccess(proc int, at int64, structure string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessChecks++
	lock, ok := c.guards[structure]
	if !ok {
		c.report(Violation{Kind: KindUnknownStructure, Proc: proc, At: at, Structure: structure,
			Detail: "access to a structure with no registered guard"})
		return
	}
	if enabled, known := c.locks[lock]; known && !enabled {
		return // baseline mode: lock compiled out, access is single-threaded
	}
	for _, h := range *c.procHeld(proc) {
		if h == lock {
			return
		}
	}
	c.report(Violation{Kind: KindUnlockedAccess, Proc: proc, At: at,
		Structure: structure, Lock: lock,
		Detail: "serialized structure accessed without its guard"})
}

// OnOwnedAccess validates an access to a replicated (per-processor)
// structure: only the owning processor may touch it.
func (c *Checker) OnOwnedAccess(proc, owner int, at int64, structure string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessChecks++
	c.replicated[structure] = true
	if proc != owner {
		c.report(Violation{Kind: KindForeignAccess, Proc: proc, At: at, Structure: structure,
			Detail: fmt.Sprintf("replicated structure owned by processor %d", owner)})
	}
}

// OnGCClaim records that parallel-scavenge worker proc won the CAS
// claim on the object at addr. Two claims on the same address in one
// scavenge mean the claim CAS failed to serialize the copiers.
func (c *Checker) OnGCClaim(proc int, at int64, addr uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessChecks++
	if c.gcClaims == nil {
		c.gcClaims = map[uint64]int{}
	}
	if prev, dup := c.gcClaims[addr]; dup {
		c.report(Violation{Kind: KindGCClaim, Proc: proc, At: at, Structure: "forwarding-pointer",
			Detail: fmt.Sprintf("object %#x claimed twice (first by processor %d)", addr, prev)})
		return
	}
	c.gcClaims[addr] = proc
}

// OnGCPublish records that worker proc published the forwarding pointer
// for the object at addr; it must be the worker that claimed it.
func (c *Checker) OnGCPublish(proc int, at int64, addr uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessChecks++
	owner, ok := c.gcClaims[addr]
	if !ok {
		c.report(Violation{Kind: KindGCClaim, Proc: proc, At: at, Structure: "forwarding-pointer",
			Detail: fmt.Sprintf("forwarding pointer for %#x published without a claim", addr)})
		return
	}
	if owner != proc {
		c.report(Violation{Kind: KindGCClaim, Proc: proc, At: at, Structure: "forwarding-pointer",
			Detail: fmt.Sprintf("forwarding pointer for %#x published by processor %d, claimed by %d", addr, proc, owner)})
	}
}

// ResetGCClaims clears the claim table at the end of a scavenge.
func (c *Checker) ResetGCClaims() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gcClaims = nil
}

// OnMarkGrey records that proc won the white→grey claim on the
// old-space object at addr during a concurrent-mark cycle. Two claims
// on the same address in one cycle mean the claiming CAS failed to
// serialize the markers.
func (c *Checker) OnMarkGrey(proc int, at int64, addr uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessChecks++
	if c.markClaims == nil {
		c.markClaims = map[uint64]int{}
	}
	if prev, dup := c.markClaims[addr]; dup {
		c.report(Violation{Kind: KindConcMark, Proc: proc, At: at, Structure: "mark-state",
			Detail: fmt.Sprintf("object %#x claimed grey twice (first by processor %d)", addr, prev)})
		return
	}
	c.markClaims[addr] = proc
}

// OnDeletionBarrier validates one snapshot-at-the-beginning deletion
// barrier firing: a pointer store during active marking overwrote an
// old-space reference, and by the time the store completed the
// overwritten referent must carry the mark bit (the barrier shades it
// before the old edge is lost). shaded is the referent's mark state as
// re-read after the barrier ran.
func (c *Checker) OnDeletionBarrier(proc int, at int64, addr uint64, shaded bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accessChecks++
	if !shaded {
		c.report(Violation{Kind: KindConcMark, Proc: proc, At: at, Structure: "mark-state",
			Detail: fmt.Sprintf("deletion barrier skipped: overwritten old-space referent %#x is unshaded during active marking", addr)})
	}
}

// ReportConcMark records one concurrent-marking finding made by the
// heap's own scans (the tri-color verifier lives in internal/heap,
// which owns the memory).
func (c *Checker) ReportConcMark(proc int, at int64, detail string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report(Violation{Kind: KindConcMark, Proc: proc, At: at,
		Structure: "mark-state", Detail: detail})
}

// ResetMarkClaims clears the grey-claim table at the end of a
// concurrent-mark cycle.
func (c *Checker) ResetMarkClaims() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markClaims = nil
}

// ReportWriteBarrier records one write-barrier verifier finding (the
// scan itself lives in internal/heap, which owns the memory).
func (c *Checker) ReportWriteBarrier(proc int, at int64, detail string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report(Violation{Kind: KindWriteBarrier, Proc: proc, At: at,
		Structure: "remembered-set", Detail: detail})
}

// NoteBarrierScan accounts one verifier pass over words of old space.
func (c *Checker) NoteBarrierScan(words uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.barrierScans++
	c.barrierWords += words
}

// Violations returns every event-ordered violation recorded so far
// (deterministic: the simulation is deterministic and the checker is
// fed from its single-threaded hook points).
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violations
}

// LockOrderCycles detects cycles in the pairwise acquisition-order
// graph and returns each one once, as a canonical "a -> b -> a"
// string, in sorted order. The result is deterministic for a given
// set of edges regardless of map iteration order.
func (c *Checker) LockOrderCycles() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lockOrderCycles()
}

// OrderEdges returns the runtime-observed pairwise acquisition-order
// edges as sorted "a -> b" strings. Deterministic for a given run: the
// edge set is a pure function of the simulated schedule.
func (c *Checker) OrderEdges() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.edges))
	for e := range c.edges {
		out = append(out, e.a+" -> "+e.b)
	}
	sort.Strings(out)
	return out
}

// StaticOrderViolations cross-checks the run against the static
// lock-order graph (msvet -lockgraph): every acquisition-order edge
// observed at runtime must already be predicted by the static
// analysis, so the runtime graph is a subgraph of the static one. A
// returned edge means the static call graph missed an acquire path
// (usually dynamic dispatch) — an audit gap, reported with the
// first-witness processor and virtual time.
func (c *Checker) StaticOrderViolations(staticEdges []string) []string {
	static := map[string]bool{}
	for _, e := range staticEdges {
		static[e] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for e, w := range c.edges {
		s := e.a + " -> " + e.b
		if !static[s] {
			out = append(out, fmt.Sprintf("%s (first witnessed on proc %d at %d)", s, w.proc, w.at))
		}
	}
	sort.Strings(out)
	return out
}

func (c *Checker) lockOrderCycles() []string {
	// Adjacency with sorted neighbor lists for deterministic DFS.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range c.edges {
		adj[e.a] = append(adj[e.a], e.b)
		nodes[e.a], nodes[e.b] = true, true
	}
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(adj[n])
	}

	seen := map[string]bool{} // canonical cycle strings
	var cycles []string
	var stack []string
	onStack := map[string]int{} // name → index in stack

	var dfs func(n string)
	dfs = func(n string) {
		if idx, ok := onStack[n]; ok {
			cyc := append([]string(nil), stack[idx:]...)
			canon := canonicalCycle(cyc)
			if !seen[canon] {
				seen[canon] = true
				cycles = append(cycles, canon)
			}
			return
		}
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, m := range adj[n] {
			dfs(m)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range names {
		dfs(n)
	}
	sort.Strings(cycles)
	return cycles
}

// canonicalCycle rotates a cycle so its lexically smallest lock comes
// first and renders it "a -> b -> a".
func canonicalCycle(cyc []string) string {
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cyc[min:]...), cyc[:min]...)
	rot = append(rot, rot[0])
	return strings.Join(rot, " -> ")
}

// Clean reports whether the run finished with no violations and no
// lock-order cycles.
func (c *Checker) Clean() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations) == 0 && len(c.lockOrderCycles()) == 0
}

// Stats summarizes how much checking a run performed; reports print
// it so a "clean" result is distinguishable from "nothing checked".
type Stats struct {
	Locks        int
	Guards       int
	Replicated   int
	LockEvents   uint64
	AccessChecks uint64
	BarrierScans uint64
	BarrierWords uint64
	Violations   int
	OrderCycles  int
}

// Stats returns the checker's work counters.
func (c *Checker) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats()
}

func (c *Checker) stats() Stats {
	return Stats{
		Locks:        len(c.locks),
		Guards:       len(c.guards),
		Replicated:   len(c.replicated),
		LockEvents:   c.lockEvents,
		AccessChecks: c.accessChecks,
		BarrierScans: c.barrierScans,
		BarrierWords: c.barrierWords,
		Violations:   len(c.violations),
		OrderCycles:  len(c.lockOrderCycles()),
	}
}

// Report renders a deterministic human-readable summary: registered
// locks and guards, work counters, then every violation and cycle.
func (c *Checker) Report() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	st := c.stats()
	fmt.Fprintf(&b, "mscheck: %d locks, %d serialized structures, %d replicated structures\n",
		st.Locks, st.Guards, st.Replicated)
	fmt.Fprintf(&b, "mscheck: %d lock events, %d access checks, %d barrier scans (%d words)\n",
		st.LockEvents, st.AccessChecks, st.BarrierScans, st.BarrierWords)

	var guards []string
	for s, l := range c.guards {
		enabled := ""
		if on, known := c.locks[l]; known && !on {
			enabled = " (disabled: baseline)"
		}
		guards = append(guards, fmt.Sprintf("  %s guarded by %s%s", s, l, enabled))
	}
	sort.Strings(guards)
	for _, g := range guards {
		b.WriteString(g + "\n")
	}

	cycles := c.lockOrderCycles()
	if len(c.violations) == 0 && len(cycles) == 0 {
		b.WriteString("mscheck: clean (0 violations)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "mscheck: %d violations, %d lock-order cycles\n",
		len(c.violations), len(cycles))
	for _, v := range c.violations {
		b.WriteString("  " + v.String() + "\n")
	}
	for _, cyc := range cycles {
		fmt.Fprintf(&b, "  mscheck lock-order-cycle: %s\n", cyc)
	}
	return b.String()
}
