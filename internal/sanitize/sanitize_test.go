package sanitize

import (
	"reflect"
	"strings"
	"testing"
)

func kinds(vs []Violation) []Kind {
	var ks []Kind
	for _, v := range vs {
		ks = append(ks, v.Kind)
	}
	return ks
}

func TestCleanLockedAccess(t *testing.T) {
	c := New()
	c.RegisterLock("scheduler", true)
	c.RegisterGuard("ready-queue", "scheduler")
	c.OnAcquire(0, 10, "scheduler")
	c.OnAccess(0, 11, "ready-queue")
	c.OnRelease(0, 12, "scheduler")
	if !c.Clean() {
		t.Fatalf("clean sequence reported violations: %v", c.Violations())
	}
	st := c.Stats()
	if st.LockEvents != 2 || st.AccessChecks != 1 {
		t.Errorf("stats = %+v, want 2 lock events, 1 access check", st)
	}
}

func TestUnlockedAccess(t *testing.T) {
	c := New()
	c.RegisterLock("scheduler", true)
	c.RegisterGuard("ready-queue", "scheduler")
	c.OnAccess(1, 5, "ready-queue")
	got := kinds(c.Violations())
	if !reflect.DeepEqual(got, []Kind{KindUnlockedAccess}) {
		t.Fatalf("violations = %v, want exactly [unlocked-access]", got)
	}
	v := c.Violations()[0]
	if v.Proc != 1 || v.At != 5 || v.Structure != "ready-queue" || v.Lock != "scheduler" {
		t.Errorf("violation detail wrong: %+v", v)
	}
}

func TestWrongLockHeldIsStillUnlocked(t *testing.T) {
	c := New()
	c.RegisterLock("scheduler", true)
	c.RegisterLock("alloc", true)
	c.RegisterGuard("ready-queue", "scheduler")
	c.OnAcquire(0, 1, "alloc")
	c.OnAccess(0, 2, "ready-queue")
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindUnlockedAccess}) {
		t.Fatalf("holding an unrelated lock must not satisfy the guard: %v", c.Violations())
	}
}

// Disabled locks model baseline BS: multiprocessor support compiled
// out, so accesses are single-threaded by construction and exempt.
func TestDisabledLockExemptsAccess(t *testing.T) {
	c := New()
	c.RegisterLock("scheduler", false)
	c.RegisterGuard("ready-queue", "scheduler")
	c.OnAccess(0, 1, "ready-queue")
	if !c.Clean() {
		t.Fatalf("disabled-lock access flagged: %v", c.Violations())
	}
}

func TestUnknownStructure(t *testing.T) {
	c := New()
	c.OnAccess(0, 1, "mystery")
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindUnknownStructure}) {
		t.Fatalf("violations = %v", c.Violations())
	}
}

func TestDoubleAcquire(t *testing.T) {
	c := New()
	c.RegisterLock("alloc", true)
	c.OnAcquire(2, 1, "alloc")
	c.OnAcquire(2, 2, "alloc")
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindDoubleAcquire}) {
		t.Fatalf("violations = %v", c.Violations())
	}
	// The first acquisition must still be tracked.
	c.OnRelease(2, 3, "alloc")
	if len(c.Violations()) != 1 {
		t.Errorf("release after double-acquire report added violations: %v", c.Violations())
	}
}

func TestReleaseNotHeld(t *testing.T) {
	c := New()
	c.RegisterLock("alloc", true)
	c.OnRelease(0, 1, "alloc")
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindReleaseNotHeld}) {
		t.Fatalf("violations = %v", c.Violations())
	}
}

func TestReleaseByOtherProcNotHeld(t *testing.T) {
	c := New()
	c.RegisterLock("alloc", true)
	c.OnAcquire(0, 1, "alloc")
	c.OnRelease(1, 2, "alloc")
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindReleaseNotHeld}) {
		t.Fatalf("violations = %v", c.Violations())
	}
}

func TestForeignAccess(t *testing.T) {
	c := New()
	c.OnOwnedAccess(0, 0, 1, "tlab")
	c.OnOwnedAccess(1, 0, 2, "tlab")
	got := kinds(c.Violations())
	if !reflect.DeepEqual(got, []Kind{KindForeignAccess}) {
		t.Fatalf("violations = %v, want exactly one foreign-access", c.Violations())
	}
	if c.Violations()[0].Proc != 1 {
		t.Errorf("foreign access attributed to proc %d, want 1", c.Violations()[0].Proc)
	}
}

func TestWriteBarrierReport(t *testing.T) {
	c := New()
	c.ReportWriteBarrier(0, 99, "old object 0x40 slot 2 -> new 0x8 not remembered")
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != KindWriteBarrier {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "not remembered") {
		t.Errorf("detail lost: %s", vs[0])
	}
}

func TestLockOrderCycleDetection(t *testing.T) {
	c := New()
	c.RegisterLock("a", true)
	c.RegisterLock("b", true)
	// proc 0: a then b; proc 1: b then a — classic deadlock potential.
	c.OnAcquire(0, 1, "a")
	c.OnAcquire(0, 2, "b")
	c.OnRelease(0, 3, "b")
	c.OnRelease(0, 4, "a")
	c.OnAcquire(1, 1, "b")
	c.OnAcquire(1, 2, "a")
	c.OnRelease(1, 3, "a")
	c.OnRelease(1, 4, "b")
	cycles := c.LockOrderCycles()
	if !reflect.DeepEqual(cycles, []string{"a -> b -> a"}) {
		t.Fatalf("cycles = %v, want [a -> b -> a]", cycles)
	}
	if c.Clean() {
		t.Error("checker with an order cycle reported Clean")
	}
}

func TestLockOrderNoCycleWhenConsistent(t *testing.T) {
	c := New()
	// Both processors acquire in the same order: no cycle.
	for proc := 0; proc < 2; proc++ {
		c.OnAcquire(proc, 1, "a")
		c.OnAcquire(proc, 2, "b")
		c.OnRelease(proc, 3, "b")
		c.OnRelease(proc, 4, "a")
	}
	if cycles := c.LockOrderCycles(); len(cycles) != 0 {
		t.Fatalf("consistent order produced cycles: %v", cycles)
	}
}

// Cycle reporting must be deterministic: the same scenario replayed
// into two checkers yields identical strings, including for a
// three-lock cycle where the canonical rotation matters.
func TestLockOrderCycleDeterminism(t *testing.T) {
	scenario := func() *Checker {
		c := New()
		// c -> a, a -> b, b -> c: one 3-cycle, witnessed in an order
		// that starts DFS from different entry points.
		c.OnAcquire(0, 1, "c")
		c.OnAcquire(0, 2, "a")
		c.OnRelease(0, 3, "a")
		c.OnRelease(0, 4, "c")
		c.OnAcquire(1, 1, "a")
		c.OnAcquire(1, 2, "b")
		c.OnRelease(1, 3, "b")
		c.OnRelease(1, 4, "a")
		c.OnAcquire(2, 1, "b")
		c.OnAcquire(2, 2, "c")
		c.OnRelease(2, 3, "c")
		c.OnRelease(2, 4, "b")
		return c
	}
	want := []string{"a -> b -> c -> a"}
	for i := 0; i < 10; i++ {
		got := scenario().LockOrderCycles()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: cycles = %v, want %v", i, got, want)
		}
	}
}

func TestFingerprintDiff(t *testing.T) {
	a := map[string]int64{"vms": 100, "sends": 500, "scavenges": 3}
	b := map[string]int64{"vms": 100, "sends": 501, "scavenges": 3}
	if d := FingerprintDiff(a, a); len(d) != 0 {
		t.Fatalf("identical fingerprints diff: %v", d)
	}
	d := FingerprintDiff(a, b)
	if len(d) != 1 || !strings.Contains(d[0], "sends") {
		t.Fatalf("diff = %v, want one line naming sends", d)
	}
	// Missing keys on either side are reported, deterministically sorted.
	c := map[string]int64{"vms": 100}
	d = FingerprintDiff(a, c)
	if len(d) != 2 || !strings.Contains(d[0], "scavenges") || !strings.Contains(d[1], "sends") {
		t.Fatalf("diff = %v, want sorted lines for scavenges and sends", d)
	}
}

func TestReportCleanAndDirty(t *testing.T) {
	c := New()
	c.RegisterLock("scheduler", true)
	c.RegisterGuard("ready-queue", "scheduler")
	if r := c.Report(); !strings.Contains(r, "clean (0 violations)") {
		t.Errorf("clean report missing marker:\n%s", r)
	}
	c.OnAccess(0, 1, "ready-queue")
	r := c.Report()
	if !strings.Contains(r, "unlocked-access") || strings.Contains(r, "clean (0") {
		t.Errorf("dirty report wrong:\n%s", r)
	}
}

// ---- GC claim/publish (parallel scavenger forwarding protocol) ----

func TestGCClaimPublishClean(t *testing.T) {
	c := New()
	c.OnGCClaim(0, 100, 0x4000)
	c.OnGCClaim(1, 100, 0x4010)
	c.OnGCPublish(0, 101, 0x4000)
	c.OnGCPublish(1, 101, 0x4010)
	if !c.Clean() {
		t.Fatalf("clean claim/publish pairs reported violations: %v", c.Violations())
	}
}

func TestGCDoubleClaim(t *testing.T) {
	c := New()
	c.OnGCClaim(0, 100, 0x4000)
	c.OnGCClaim(2, 101, 0x4000)
	got := kinds(c.Violations())
	if !reflect.DeepEqual(got, []Kind{KindGCClaim}) {
		t.Fatalf("violations = %v, want exactly [gc-claim]", got)
	}
	v := c.Violations()[0]
	if v.Proc != 2 || !strings.Contains(v.Detail, "claimed twice") ||
		!strings.Contains(v.Detail, "processor 0") {
		t.Errorf("violation detail wrong: %+v", v)
	}
}

func TestGCPublishWithoutClaim(t *testing.T) {
	c := New()
	c.OnGCPublish(1, 50, 0x4000)
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindGCClaim}) {
		t.Fatalf("violations = %v, want exactly [gc-claim]", c.Violations())
	}
	if !strings.Contains(c.Violations()[0].Detail, "without a claim") {
		t.Errorf("violation detail wrong: %+v", c.Violations()[0])
	}
}

func TestGCPublishByForeignProc(t *testing.T) {
	c := New()
	c.OnGCClaim(0, 50, 0x4000)
	c.OnGCPublish(3, 51, 0x4000)
	if !reflect.DeepEqual(kinds(c.Violations()), []Kind{KindGCClaim}) {
		t.Fatalf("violations = %v, want exactly [gc-claim]", c.Violations())
	}
	if !strings.Contains(c.Violations()[0].Detail, "claimed by") {
		t.Errorf("violation detail wrong: %+v", c.Violations()[0])
	}
}

func TestGCClaimsResetBetweenScavenges(t *testing.T) {
	c := New()
	c.OnGCClaim(0, 100, 0x4000)
	c.OnGCPublish(0, 101, 0x4000)
	c.ResetGCClaims()
	// A fresh scavenge may claim the same address again (new objects
	// live there now).
	c.OnGCClaim(1, 200, 0x4000)
	c.OnGCPublish(1, 201, 0x4000)
	if !c.Clean() {
		t.Fatalf("claims across a reset reported violations: %v", c.Violations())
	}
}
