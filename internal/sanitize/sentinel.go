package sanitize

import (
	"fmt"
	"sort"
)

// FingerprintDiff is the determinism sentinel's comparison primitive:
// given two named-counter snapshots (virtual times, interpreter and
// heap counters) from a sanitizer-off and a sanitizer-on run, it
// returns one line per divergent or missing counter, sorted by name.
// An empty result means the runs are bit-identical — the checker was
// pure observation. The golden tests build the fingerprints from
// core.Stats and the per-benchmark virtual times.
func FingerprintDiff(off, on map[string]int64) []string {
	names := map[string]bool{}
	for k := range off {
		names[k] = true
	}
	for k := range on {
		names[k] = true
	}
	var diffs []string
	for k := range names {
		a, aok := off[k]
		b, bok := on[k]
		switch {
		case !aok:
			diffs = append(diffs, fmt.Sprintf("%s: missing in sanitizer-off run (on=%d)", k, b))
		case !bok:
			diffs = append(diffs, fmt.Sprintf("%s: missing in sanitizer-on run (off=%d)", k, a))
		case a != b:
			diffs = append(diffs, fmt.Sprintf("%s: off=%d on=%d", k, a, b))
		}
	}
	sort.Strings(diffs)
	return diffs
}
