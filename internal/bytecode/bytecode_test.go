package bytecode

import (
	"strings"
	"testing"
)

func TestSpecialSendLookup(t *testing.T) {
	op, ok := SpecialSendFor("+")
	if !ok || op != OpSendAdd {
		t.Fatalf("SpecialSendFor(+) = %v %v", op, ok)
	}
	if s := Special(op); s.Selector != "+" || s.NumArgs != 1 {
		t.Fatalf("Special(+) = %+v", s)
	}
	op, ok = SpecialSendFor("at:put:")
	if !ok || Special(op).NumArgs != 2 {
		t.Fatalf("at:put: wrong: %v %v", op, ok)
	}
	if _, ok := SpecialSendFor("frobnicate:"); ok {
		t.Fatal("unexpected special selector")
	}
	if !IsSpecialSend(OpSendAdd) || !IsSpecialSend(OpSendNewSize) || IsSpecialSend(OpSend) {
		t.Fatal("IsSpecialSend range wrong")
	}
}

func TestSpecialSendsTableComplete(t *testing.T) {
	want := int(LastSpecialSend-FirstSpecialSend) + 1
	if len(SpecialSends) != want {
		t.Fatalf("SpecialSends has %d entries, opcode range has %d", len(SpecialSends), want)
	}
	seen := map[string]bool{}
	for _, s := range SpecialSends {
		if s.Selector == "" || seen[s.Selector] {
			t.Fatalf("bad or duplicate selector %q", s.Selector)
		}
		seen[s.Selector] = true
	}
}

func TestOperandLenCoversAllOps(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		n := OperandLen(op)
		if n < 0 || n > 4 {
			t.Fatalf("OperandLen(%s) = %d", op.Name(), n)
		}
	}
}

func TestAssembleSimpleSequence(t *testing.T) {
	var a Assembler
	a.Emit(OpPushSelf)
	a.EmitI8(OpPushInt8, -5)
	a.Emit(OpSendAdd)
	a.Emit(OpReturnTop)
	code := a.Code()
	want := []byte{byte(OpPushSelf), byte(OpPushInt8), 0xFB, byte(OpSendAdd), byte(OpReturnTop)}
	if len(code) != len(want) {
		t.Fatalf("code = %v", code)
	}
	for i := range want {
		if code[i] != want[i] {
			t.Fatalf("code[%d] = %d, want %d", i, code[i], want[i])
		}
	}
	if I8(code, 2) != -5 {
		t.Fatalf("I8 = %d", I8(code, 2))
	}
}

func TestJumpPatchForward(t *testing.T) {
	var a Assembler
	a.Emit(OpPushTrue)
	patch := a.EmitJump(OpJumpFalse)
	a.Emit(OpPushNil)
	a.Emit(OpPop)
	a.PatchJump(patch)
	a.Emit(OpReturnSelf)
	code := a.Code()
	// jumpFalse at pc=1, operand at 2..3, next=4; target is 6 (returnSelf).
	if got := I16(code, 2); 4+got != 6 {
		t.Fatalf("jump lands at %d, want 6", 4+got)
	}
}

func TestJumpBack(t *testing.T) {
	var a Assembler
	top := a.Len()
	a.Emit(OpPushTrue)
	a.EmitJumpBack(OpJump, top)
	code := a.Code()
	next := 4 // jump at 1, operands 2..3
	if got := I16(code, 2); next+got != top {
		t.Fatalf("backward jump lands at %d, want %d", next+got, top)
	}
}

func TestPushBlockPatch(t *testing.T) {
	var a Assembler
	patch := a.EmitPushBlock(2, 1)
	a.Emit(OpPushTemp) // fake body
	a.Emit(OpBlockReturn)
	a.PatchBlock(patch)
	a.Emit(OpReturnSelf)
	code := a.Code()
	if U8(code, 1) != 2 || U8(code, 2) != 1 {
		t.Fatal("block header wrong")
	}
	body := U16(code, 3)
	// Body starts at 5 and is 2 bytes; execution resumes at 7.
	if 5+body != 7 {
		t.Fatalf("block end = %d, want 7", 5+body)
	}
}

func TestOperandRangePanics(t *testing.T) {
	cases := []func(a *Assembler){
		func(a *Assembler) { a.EmitU8(OpPushTemp, 256) },
		func(a *Assembler) { a.EmitU8(OpPushTemp, -1) },
		func(a *Assembler) { a.EmitI8(OpPushInt8, 128) },
		func(a *Assembler) { a.EmitI8(OpPushInt8, -129) },
		func(a *Assembler) { a.EmitSend(OpSend, 300, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			var a Assembler
			f(&a)
		}()
	}
}

func TestDisassembleRendersEveryInstruction(t *testing.T) {
	var a Assembler
	a.Emit(OpPushSelf)
	a.EmitU8(OpPushTemp, 1)
	a.EmitU8(OpPushLiteral, 0)
	a.EmitSend(OpSend, 1, 2)
	a.Emit(OpSendAdd)
	patch := a.EmitJump(OpJump)
	a.PatchJump(patch)
	bp := a.EmitPushBlock(0, 0)
	a.Emit(OpBlockReturn)
	a.PatchBlock(bp)
	a.Emit(OpReturnTop)

	out := Disassemble(a.Code(), func(i int) string { return []string{"#foo", "#bar:baz:"}[i] })
	for _, want := range []string{"pushSelf", "pushTemp 1", "pushLiteral #foo",
		"send #bar:baz: (2 args)", "send +", "jump", "pushBlock", "blockReturn", "returnTop"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	if Disassemble(a.Code(), nil) == "" {
		t.Error("nil resolver produced empty output")
	}
}

func TestI16RoundTrip(t *testing.T) {
	var a Assembler
	a.EmitJumpBack(OpJump, -1000) // arbitrary: offset = -1000 - 3
	code := a.Code()
	if got := I16(code, 1); got != -1003 {
		t.Fatalf("I16 = %d, want -1003", got)
	}
}

func TestOpNames(t *testing.T) {
	if OpPushSelf.Name() != "pushSelf" {
		t.Fatal("name wrong")
	}
	if OpSendAdd.Name() != "send +" {
		t.Fatalf("special name = %q", OpSendAdd.Name())
	}
	if NumOps.Name() == "" {
		t.Fatal("unknown op has empty name")
	}
}
