// Package bytecode defines the instruction set of the Multiprocessor
// Smalltalk virtual machine: a stack bytecode in the tradition of the
// Smalltalk-80 Blue Book, regularized to one opcode byte plus explicit
// operand bytes. The interpreter dispatches on these opcodes; the
// compiler emits them; the disassembler renders them for the
// "decompile class" macro benchmark.
package bytecode

import (
	"fmt"
	"strings"
)

// Op is an opcode.
type Op byte

// Opcodes. Operand layout is given in the comment: u8 is one unsigned
// byte, i8 one signed byte, i16/u16 two bytes big-endian.
const (
	// Pushes.
	OpPushSelf        Op = iota // push the receiver
	OpPushNil                   // push nil
	OpPushTrue                  // push true
	OpPushFalse                 // push false
	OpPushTemp                  // u8: push argument/temporary n
	OpPushInstVar               // u8: push receiver's instance variable n
	OpPushLiteral               // u8: push literal frame entry n
	OpPushGlobal                // u8: push value of Association literal n
	OpPushInt8                  // i8: push immediate SmallInteger
	OpPushThisContext           // push the active context
	OpDup                       // duplicate top of stack
	OpPop                       // discard top of stack

	// Stores.
	OpStoreTemp    // u8: store top into temporary n (keep on stack)
	OpStoreInstVar // u8
	OpStoreGlobal  // u8: store into Association literal n's value
	OpPopTemp      // u8: store top into temporary n and pop
	OpPopInstVar   // u8
	OpPopGlobal    // u8

	// Control.
	OpJump        // i16: relative jump from next instruction
	OpJumpFalse   // i16: pop; jump when false (must be a Boolean)
	OpJumpTrue    // i16: pop; jump when true
	OpPushBlock   // u8 nargs, u8 ntemps, u16 bodyLen: push a BlockContext
	OpReturnTop   // return top of stack from the home method
	OpReturnSelf  // return the receiver from the home method
	OpBlockReturn // return top of stack from the block to its caller

	// Sends.
	OpSend      // u8 selector-literal, u8 nargs
	OpSendSuper // u8 selector-literal, u8 nargs: lookup above methodClass

	// Special-selector sends (no operands). These are sends of fixed,
	// frequent selectors; the interpreter has inline fast paths and
	// falls back to a normal lookup when the fast path fails. They
	// also keep the common selectors out of literal frames, exactly as
	// the Smalltalk-80 special selector bytecodes do.
	OpSendAdd      // +
	OpSendSub      // -
	OpSendMul      // *
	OpSendDiv      // /
	OpSendIntDiv   // //
	OpSendMod      // \\
	OpSendLT       // <
	OpSendGT       // >
	OpSendLE       // <=
	OpSendGE       // >=
	OpSendEq       // =
	OpSendNE       // ~=
	OpSendBitAnd   // bitAnd:
	OpSendBitOr    // bitOr:
	OpSendBitXor   // bitXor:
	OpSendBitShift // bitShift:
	OpSendIdent    // ==
	OpSendNotIdent // ~~
	OpSendClass    // class
	OpSendSize     // size
	OpSendAt       // at:
	OpSendAtPut    // at:put:
	OpSendValue    // value
	OpSendValue1   // value:
	OpSendIsNil    // isNil
	OpSendNotNil   // notNil
	OpSendNot      // not
	OpSendNew      // new
	OpSendNewSize  // new:

	NumOps // sentinel
)

// FirstSpecialSend and LastSpecialSend bound the special-selector range.
const (
	FirstSpecialSend = OpSendAdd
	LastSpecialSend  = OpSendNewSize
)

// SpecialSend describes one special-selector send.
type SpecialSend struct {
	Selector string
	NumArgs  int
}

// SpecialSends maps Op-FirstSpecialSend to selector and arity.
var SpecialSends = [...]SpecialSend{
	{"+", 1}, {"-", 1}, {"*", 1}, {"/", 1}, {"//", 1}, {"\\\\", 1},
	{"<", 1}, {">", 1}, {"<=", 1}, {">=", 1}, {"=", 1}, {"~=", 1},
	{"bitAnd:", 1}, {"bitOr:", 1}, {"bitXor:", 1}, {"bitShift:", 1},
	{"==", 1}, {"~~", 1},
	{"class", 0}, {"size", 0},
	{"at:", 1}, {"at:put:", 2},
	{"value", 0}, {"value:", 1},
	{"isNil", 0}, {"notNil", 0}, {"not", 0},
	{"new", 0}, {"new:", 1},
}

// SpecialSendFor returns the special-send opcode for a selector, if any.
func SpecialSendFor(selector string) (Op, bool) {
	for i, s := range SpecialSends {
		if s.Selector == selector {
			return FirstSpecialSend + Op(i), true
		}
	}
	return 0, false
}

// IsSpecialSend reports whether op is a special-selector send.
func IsSpecialSend(op Op) bool {
	return op >= FirstSpecialSend && op <= LastSpecialSend
}

// IsSend reports whether op is any message-send instruction: a general
// send, a super send, or a special-selector send. Every IsSend opcode is
// a send site eligible for a per-site inline cache (the special sends
// reach the full lookup path only when their inline fast path fails).
func IsSend(op Op) bool {
	return op == OpSend || op == OpSendSuper || IsSpecialSend(op)
}

// SendSites scans code and returns the pc of every send instruction, in
// ascending order. The compiler uses it to count a method's send sites;
// the interpreter's inline-cache layer uses it to index them.
func SendSites(code []byte) []int {
	var pcs []int
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		if IsSend(op) {
			pcs = append(pcs, pc)
		}
		pc += 1 + OperandLen(op)
	}
	return pcs
}

// Special returns the selector/arity of a special send opcode.
func Special(op Op) SpecialSend { return SpecialSends[op-FirstSpecialSend] }

var opNames = map[Op]string{
	OpPushSelf: "pushSelf", OpPushNil: "pushNil", OpPushTrue: "pushTrue",
	OpPushFalse: "pushFalse", OpPushTemp: "pushTemp", OpPushInstVar: "pushInstVar",
	OpPushLiteral: "pushLiteral", OpPushGlobal: "pushGlobal", OpPushInt8: "pushInt",
	OpPushThisContext: "pushThisContext", OpDup: "dup", OpPop: "pop",
	OpStoreTemp: "storeTemp", OpStoreInstVar: "storeInstVar", OpStoreGlobal: "storeGlobal",
	OpPopTemp: "popTemp", OpPopInstVar: "popInstVar", OpPopGlobal: "popGlobal",
	OpJump: "jump", OpJumpFalse: "jumpFalse", OpJumpTrue: "jumpTrue",
	OpPushBlock: "pushBlock", OpReturnTop: "returnTop", OpReturnSelf: "returnSelf",
	OpBlockReturn: "blockReturn", OpSend: "send", OpSendSuper: "sendSuper",
}

// Name returns a mnemonic for op.
func (op Op) Name() string {
	if IsSpecialSend(op) {
		return "send " + Special(op).Selector
	}
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", byte(op))
}

// OperandLen returns the number of operand bytes following op.
func OperandLen(op Op) int {
	switch op {
	case OpPushTemp, OpPushInstVar, OpPushLiteral, OpPushGlobal, OpPushInt8,
		OpStoreTemp, OpStoreInstVar, OpStoreGlobal,
		OpPopTemp, OpPopInstVar, OpPopGlobal:
		return 1
	case OpJump, OpJumpFalse, OpJumpTrue, OpSend, OpSendSuper:
		return 2
	case OpPushBlock:
		return 4
	default:
		return 0
	}
}

// Assembler builds a bytecode vector.
type Assembler struct {
	code []byte
}

// Code returns the assembled bytes.
func (a *Assembler) Code() []byte { return a.code }

// Len returns the current code length (the pc of the next instruction).
func (a *Assembler) Len() int { return len(a.code) }

// Emit appends an opcode with no operands.
func (a *Assembler) Emit(op Op) { a.code = append(a.code, byte(op)) }

// EmitU8 appends an opcode with one unsigned byte operand.
func (a *Assembler) EmitU8(op Op, v int) {
	if v < 0 || v > 255 {
		panic(fmt.Sprintf("bytecode: operand %d out of u8 range for %s", v, op.Name()))
	}
	a.code = append(a.code, byte(op), byte(v))
}

// EmitI8 appends an opcode with one signed byte operand.
func (a *Assembler) EmitI8(op Op, v int) {
	if v < -128 || v > 127 {
		panic(fmt.Sprintf("bytecode: operand %d out of i8 range for %s", v, op.Name()))
	}
	a.code = append(a.code, byte(op), byte(int8(v)))
}

// EmitSend appends a send with a selector literal index and arity.
func (a *Assembler) EmitSend(op Op, lit, nargs int) {
	if lit < 0 || lit > 255 || nargs < 0 || nargs > 255 {
		panic("bytecode: send operands out of range")
	}
	a.code = append(a.code, byte(op), byte(lit), byte(nargs))
}

// EmitJump appends a jump with a placeholder offset and returns the
// position to patch.
func (a *Assembler) EmitJump(op Op) int {
	a.code = append(a.code, byte(op), 0, 0)
	return len(a.code) - 2
}

// PatchJump sets the jump at patchPos (returned by EmitJump) to land on
// the current end of code.
func (a *Assembler) PatchJump(patchPos int) {
	target := len(a.code)
	next := patchPos + 2 // pc after the operand bytes
	off := target - next
	a.patchOffset(patchPos, off)
}

// EmitJumpBack appends a backward jump to target (an existing pc).
func (a *Assembler) EmitJumpBack(op Op, target int) {
	a.code = append(a.code, byte(op), 0, 0)
	next := len(a.code)
	a.patchOffset(next-2, target-next)
}

func (a *Assembler) patchOffset(pos, off int) {
	if off < -32768 || off > 32767 {
		panic(fmt.Sprintf("bytecode: jump offset %d out of i16 range", off))
	}
	a.code[pos] = byte(uint16(off) >> 8)
	a.code[pos+1] = byte(uint16(off))
}

// EmitPushBlock appends a block-creation instruction; body bytes follow
// immediately. Call PatchBlock with the returned position once the body
// (ending in a BlockReturn) has been emitted.
func (a *Assembler) EmitPushBlock(nargs, ntemps int) int {
	if nargs > 255 || ntemps > 255 {
		panic("bytecode: too many block arguments")
	}
	a.code = append(a.code, byte(OpPushBlock), byte(nargs), byte(ntemps), 0, 0)
	return len(a.code) - 2
}

// PatchBlock fixes the body length of the block whose size field is at
// patchPos so that execution resumes after the body.
func (a *Assembler) PatchBlock(patchPos int) {
	bodyLen := len(a.code) - (patchPos + 2)
	if bodyLen < 0 || bodyLen > 65535 {
		panic("bytecode: block body out of range")
	}
	a.code[patchPos] = byte(uint16(bodyLen) >> 8)
	a.code[patchPos+1] = byte(uint16(bodyLen))
}

// U8 reads an unsigned byte operand at pc.
func U8(code []byte, pc int) int { return int(code[pc]) }

// I8 reads a signed byte operand at pc.
func I8(code []byte, pc int) int { return int(int8(code[pc])) }

// I16 reads a signed 16-bit big-endian operand at pc.
func I16(code []byte, pc int) int {
	return int(int16(uint16(code[pc])<<8 | uint16(code[pc+1])))
}

// U16 reads an unsigned 16-bit big-endian operand at pc.
func U16(code []byte, pc int) int {
	return int(uint16(code[pc])<<8 | uint16(code[pc+1]))
}

// LiteralResolver renders literal frame entry i for disassembly.
type LiteralResolver func(i int) string

// Disassemble renders code as one instruction per line. resolve may be
// nil, in which case literal indices print numerically. This is the
// engine behind the "decompile class" macro benchmark.
func Disassemble(code []byte, resolve LiteralResolver) string {
	var b strings.Builder
	lit := func(i int) string {
		if resolve == nil {
			return fmt.Sprintf("literal %d", i)
		}
		return resolve(i)
	}
	pc := 0
	for pc < len(code) {
		op := Op(code[pc])
		fmt.Fprintf(&b, "%4d  ", pc)
		opnd := pc + 1
		pc = opnd + OperandLen(op)
		switch op {
		case OpPushTemp, OpStoreTemp, OpPopTemp:
			fmt.Fprintf(&b, "%s %d", op.Name(), U8(code, opnd))
		case OpPushInstVar, OpStoreInstVar, OpPopInstVar:
			fmt.Fprintf(&b, "%s %d", op.Name(), U8(code, opnd))
		case OpPushLiteral:
			fmt.Fprintf(&b, "%s %s", op.Name(), lit(U8(code, opnd)))
		case OpPushGlobal, OpStoreGlobal, OpPopGlobal:
			fmt.Fprintf(&b, "%s %s", op.Name(), lit(U8(code, opnd)))
		case OpPushInt8:
			fmt.Fprintf(&b, "%s %d", op.Name(), I8(code, opnd))
		case OpJump, OpJumpFalse, OpJumpTrue:
			fmt.Fprintf(&b, "%s -> %d", op.Name(), pc+I16(code, opnd))
		case OpPushBlock:
			nargs := U8(code, opnd)
			ntemps := U8(code, opnd+1)
			body := U16(code, opnd+2)
			fmt.Fprintf(&b, "%s nargs=%d ntemps=%d end=%d", op.Name(), nargs, ntemps, pc+body)
		case OpSend, OpSendSuper:
			fmt.Fprintf(&b, "%s %s (%d args)", op.Name(), lit(U8(code, opnd)), U8(code, opnd+1))
		default:
			b.WriteString(op.Name())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
