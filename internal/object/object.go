// Package object defines the Smalltalk object model shared by the heap,
// interpreter, and compiler: tagged object pointers (OOPs) and the
// two-word object header.
//
// Following Berkeley Smalltalk, there is no object table: an OOP is the
// direct address (word index) of the object's header in the single shared
// object memory, so the scavenger must forward every reference when it
// moves an object. SmallIntegers are immediate values distinguished by a
// low tag bit and carry 63 bits of signed value.
package object

import "fmt"

// OOP is an object pointer. Bit 0 distinguishes the two kinds:
//
//	xxxx...xxx1  SmallInteger, value in the upper 63 bits (two's complement)
//	xxxx...xxx0  pointer: word index of the object header in the heap
//
// Object addresses are always even (objects are allocated in two-word
// units), so a pointer OOP is simply the address. OOP(0) is never a valid
// object address (the first heap words are reserved) and serves as an
// "absent" marker inside the virtual machine; the Smalltalk nil is a real
// object at the fixed address Nil.
type OOP uint64

// The first objects created at genesis live at fixed, immortal addresses,
// so the well-known oops are compile-time constants.
const (
	// Invalid is the VM-internal absent marker, never a Smalltalk value.
	Invalid OOP = 0
	// Nil is the Smalltalk nil object.
	Nil OOP = 2
	// True is the Smalltalk true object.
	True OOP = 4
	// False is the Smalltalk false object.
	False OOP = 6
	// FirstFreeAddress is where genesis continues allocating after the
	// three fixed objects.
	FirstFreeAddress = 8
)

// MinSmallInt and MaxSmallInt bound the immediate integer range.
const (
	MaxSmallInt = 1<<62 - 1
	MinSmallInt = -(1 << 62)
)

// FromInt makes a SmallInteger OOP. Values outside the 63-bit range are a
// programming error (the interpreter's arithmetic primitives fail over to
// Smalltalk code before overflowing).
func FromInt(v int64) OOP {
	if v > MaxSmallInt || v < MinSmallInt {
		panic(fmt.Sprintf("object: SmallInteger overflow: %d", v))
	}
	return OOP(uint64(v)<<1 | 1)
}

// IsInt reports whether o is a SmallInteger.
func (o OOP) IsInt() bool { return o&1 == 1 }

// IsPtr reports whether o is an object pointer (including Nil).
func (o OOP) IsPtr() bool { return o&1 == 0 }

// Int returns the SmallInteger value; o must satisfy IsInt.
func (o OOP) Int() int64 { return int64(o) >> 1 }

// Addr returns the word address of a pointer OOP.
func (o OOP) Addr() uint64 { return uint64(o) }

// FromAddr makes a pointer OOP from a word address (must be even).
func FromAddr(a uint64) OOP {
	if a&1 != 0 {
		panic(fmt.Sprintf("object: odd object address %d", a))
	}
	return OOP(a)
}

// FromBool converts a Go bool to the Smalltalk true or false object.
func FromBool(b bool) OOP {
	if b {
		return True
	}
	return False
}

// Format describes how an object's body is interpreted.
type Format uint8

const (
	// FmtPointers means every body word is an OOP (scanned by the GC).
	FmtPointers Format = iota
	// FmtBytes means the body is raw bytes packed into words.
	FmtBytes
	// FmtWords means the body is raw 64-bit words (e.g. Float).
	FmtWords
)

func (f Format) String() string {
	switch f {
	case FmtPointers:
		return "pointers"
	case FmtBytes:
		return "bytes"
	case FmtWords:
		return "words"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// HeaderWords is the size of the object header: word 0 holds the packed
// Header bits; word 1 holds the class OOP, or the forwarding pointer when
// the forwarded flag is set during a scavenge.
const HeaderWords = 2

// MaxAge is the largest survivor age representable in the header; objects
// reaching the tenure threshold move to old space.
const MaxAge = 7

// Header is the packed first word of every object:
//
//	bits  0..23  size in words, including the two header words (even)
//	bits 24..26  format
//	bit  27      remembered (object is in the entry table)
//	bit  28      forwarded (word 1 is the forwarding OOP)
//	bit  29      marked (full-collection mark bit)
//	bits 30..32  age (number of scavenges survived)
//	bits 33..36  slack: padding not part of the object's logical contents
//	             (bytes for FmtBytes, whole words for the other formats;
//	             objects are padded to even word sizes to keep addresses
//	             even)
//	bits 37..59  identity hash (0 = not yet assigned)
type Header uint64

const (
	sizeBits   = 24
	sizeMask   = 1<<sizeBits - 1
	fmtShift   = 24
	fmtMask    = 0x7
	remBit     = 1 << 27
	fwdBit     = 1 << 28
	markBit    = 1 << 29
	ageShift   = 30
	ageMask    = 0x7
	slackShift = 33
	slackMask  = 0xF
	hashShift  = 37
	hashBits   = 23
	hashMask   = 1<<hashBits - 1
)

// MaxObjectWords is the largest encodable object size.
const MaxObjectWords = sizeMask

// MaxHash is the largest identity hash value.
const MaxHash = hashMask

// MakeHeader packs a fresh header. Size includes the header words and must
// be even. Slack is the padding at the end of the body: a byte count
// (0..15) for FmtBytes, a word count (0 or 1) for the other formats.
func MakeHeader(sizeWords int, f Format, slack int) Header {
	if sizeWords < HeaderWords || sizeWords > MaxObjectWords || sizeWords%2 != 0 {
		panic(fmt.Sprintf("object: bad object size %d words", sizeWords))
	}
	if slack < 0 || slack > slackMask {
		panic(fmt.Sprintf("object: bad slack %d", slack))
	}
	return Header(uint64(sizeWords) | uint64(f)<<fmtShift | uint64(slack)<<slackShift)
}

// SizeWords returns the total object size in words, header included.
func (h Header) SizeWords() int { return int(h & sizeMask) }

// BodyWords returns the number of body words.
func (h Header) BodyWords() int { return h.SizeWords() - HeaderWords }

// Format returns the body format.
func (h Header) Format() Format { return Format(h >> fmtShift & fmtMask) }

// Slack returns the body padding (bytes for FmtBytes, words otherwise).
func (h Header) Slack() int { return int(h >> slackShift & slackMask) }

// ByteLen returns the byte length of a FmtBytes object.
func (h Header) ByteLen() int { return h.BodyWords()*8 - h.Slack() }

// FieldCount returns the logical field/element count of a FmtPointers or
// FmtWords object (the body minus padding words).
func (h Header) FieldCount() int { return h.BodyWords() - h.Slack() }

// Remembered reports the entry-table flag.
func (h Header) Remembered() bool { return h&remBit != 0 }

// SetRemembered returns h with the entry-table flag set to v.
func (h Header) SetRemembered(v bool) Header {
	if v {
		return h | remBit
	}
	return h &^ remBit
}

// Forwarded reports whether the object has been moved by a scavenge in
// progress (the class word holds the forwarding pointer).
func (h Header) Forwarded() bool { return h&fwdBit != 0 }

// SetForwarded returns h with the forwarded flag set.
func (h Header) SetForwarded() Header { return h | fwdBit }

// Marked reports the full-collection mark bit.
func (h Header) Marked() bool { return h&markBit != 0 }

// SetMarked returns h with the mark bit set to v.
func (h Header) SetMarked(v bool) Header {
	if v {
		return h | markBit
	}
	return h &^ markBit
}

// Age returns how many scavenges the object has survived.
func (h Header) Age() int { return int(h >> ageShift & ageMask) }

// SetAge returns h with the age field set.
func (h Header) SetAge(a int) Header {
	if a > MaxAge {
		a = MaxAge
	}
	return h&^(ageMask<<ageShift) | Header(a)<<ageShift
}

// Hash returns the identity hash field (0 when unassigned).
func (h Header) Hash() uint32 { return uint32(h >> hashShift & hashMask) }

// SetHash returns h with the identity hash field set.
func (h Header) SetHash(v uint32) Header {
	return h&^(Header(hashMask)<<hashShift) | Header(v&hashMask)<<hashShift
}

// BodyWordsForBytes returns the body word count (padded so the total
// object size is even) and the slack needed to hold n bytes.
func BodyWordsForBytes(n int) (words, slack int) {
	words = (n + 7) / 8
	if (words+HeaderWords)%2 != 0 {
		words++
	}
	slack = words*8 - n
	return words, slack
}

// BodyWordsForFields returns the body word count (padded even) and the
// slack in words needed to hold n pointer or raw-word fields.
func BodyWordsForFields(n int) (words, slack int) {
	words = n
	if (words+HeaderWords)%2 != 0 {
		words++
	}
	return words, words - n
}
