package object

import (
	"testing"
	"testing/quick"
)

func TestSmallIntegerRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 42, -42, MaxSmallInt, MinSmallInt, 1 << 40, -(1 << 40)}
	for _, v := range cases {
		o := FromInt(v)
		if !o.IsInt() {
			t.Fatalf("FromInt(%d).IsInt() = false", v)
		}
		if o.IsPtr() {
			t.Fatalf("FromInt(%d).IsPtr() = true", v)
		}
		if got := o.Int(); got != v {
			t.Fatalf("FromInt(%d).Int() = %d", v, got)
		}
	}
}

func TestSmallIntegerRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		if v > MaxSmallInt || v < MinSmallInt {
			v >>= 1
		}
		return FromInt(v).Int() == v && FromInt(v).IsInt()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSmallIntegerOverflowPanics(t *testing.T) {
	for _, v := range []int64{MaxSmallInt + 1, MinSmallInt - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromInt(%d) did not panic", v)
				}
			}()
			FromInt(v)
		}()
	}
}

func TestPointerOOPs(t *testing.T) {
	o := FromAddr(1234)
	if !o.IsPtr() || o.IsInt() {
		t.Fatal("pointer OOP misclassified")
	}
	if o.Addr() != 1234 {
		t.Fatalf("Addr = %d", o.Addr())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd address did not panic")
			}
		}()
		FromAddr(7)
	}()
}

func TestWellKnownOOPs(t *testing.T) {
	if Nil == Invalid || True == Nil || False == True {
		t.Fatal("well-known oops collide")
	}
	for _, o := range []OOP{Nil, True, False} {
		if !o.IsPtr() {
			t.Fatalf("%v is not a pointer", o)
		}
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Fatal("FromBool wrong")
	}
}

func TestHeaderFields(t *testing.T) {
	h := MakeHeader(10, FmtBytes, 3)
	if h.SizeWords() != 10 || h.BodyWords() != 8 {
		t.Fatalf("size = %d body = %d", h.SizeWords(), h.BodyWords())
	}
	if h.Format() != FmtBytes {
		t.Fatalf("format = %v", h.Format())
	}
	if h.Slack() != 3 || h.ByteLen() != 8*8-3 {
		t.Fatalf("slack = %d byteLen = %d", h.Slack(), h.ByteLen())
	}
	if h.Remembered() || h.Forwarded() || h.Marked() || h.Age() != 0 || h.Hash() != 0 {
		t.Fatal("fresh header has flags set")
	}
}

func TestHeaderFlagIndependence(t *testing.T) {
	h := MakeHeader(4, FmtPointers, 0)
	h = h.SetRemembered(true).SetMarked(true).SetAge(5).SetHash(0x2BCDEF)
	if !h.Remembered() || !h.Marked() || h.Age() != 5 || h.Hash() != 0x2BCDEF {
		t.Fatalf("flags lost: %+v", h)
	}
	if h.SizeWords() != 4 || h.Format() != FmtPointers {
		t.Fatal("flags clobbered size/format")
	}
	h = h.SetRemembered(false)
	if h.Remembered() || !h.Marked() || h.Age() != 5 {
		t.Fatal("clearing remembered disturbed other fields")
	}
	h = h.SetForwarded()
	if !h.Forwarded() || h.Hash() != 0x2BCDEF {
		t.Fatal("forwarding disturbed hash")
	}
}

func TestHeaderProperty(t *testing.T) {
	f := func(size uint16, fmtRaw uint8, slack uint8, rem bool, age uint8, hash uint32) bool {
		sw := int(size)*2 + HeaderWords // even, >= 2
		if sw > MaxObjectWords {
			sw = MaxObjectWords - 1 // keep even: MaxObjectWords is odd
		}
		format := Format(fmtRaw % 3)
		h := MakeHeader(sw, format, int(slack%16))
		h = h.SetRemembered(rem).SetAge(int(age % 8)).SetHash(hash & MaxHash)
		return h.SizeWords() == sw &&
			h.Format() == format &&
			h.Slack() == int(slack%16) &&
			h.Remembered() == rem &&
			h.Age() == int(age%8) &&
			h.Hash() == hash&MaxHash
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAgeSaturates(t *testing.T) {
	h := MakeHeader(4, FmtPointers, 0).SetAge(99)
	if h.Age() != MaxAge {
		t.Fatalf("age = %d, want %d", h.Age(), MaxAge)
	}
}

func TestBodyWordsForBytes(t *testing.T) {
	for n := 0; n < 100; n++ {
		w, slack := BodyWordsForBytes(n)
		if w*8-slack != n {
			t.Fatalf("n=%d: words=%d slack=%d", n, w, slack)
		}
		if slack < 0 || slack > 15 {
			t.Fatalf("n=%d: slack=%d out of range", n, slack)
		}
		if (w+HeaderWords)%2 != 0 {
			t.Fatalf("n=%d: total size %d is odd", n, w+HeaderWords)
		}
	}
}

func TestBodyWordsForFields(t *testing.T) {
	for n := 0; n < 100; n++ {
		w, slack := BodyWordsForFields(n)
		if w-slack != n {
			t.Fatalf("n=%d: words=%d slack=%d", n, w, slack)
		}
		if (w+HeaderWords)%2 != 0 {
			t.Fatalf("n=%d: total size %d is odd", n, w+HeaderWords)
		}
		h := MakeHeader(w+HeaderWords, FmtPointers, slack)
		if h.FieldCount() != n {
			t.Fatalf("n=%d: FieldCount=%d", n, h.FieldCount())
		}
	}
}

func TestBadHeaderPanics(t *testing.T) {
	for _, sz := range []int{0, 1, 3, 5, MaxObjectWords + 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeHeader(%d) did not panic", sz)
				}
			}()
			MakeHeader(sz, FmtPointers, 0)
		}()
	}
}

func TestFormatString(t *testing.T) {
	if FmtPointers.String() != "pointers" || FmtBytes.String() != "bytes" || FmtWords.String() != "words" {
		t.Fatal("Format.String wrong")
	}
}
