package interp

import (
	"testing"

	"mst/internal/heap"
	"mst/internal/object"
)

func TestPriorityPreemptionOnSignal(t *testing.T) {
	vm := testVM(t, 1, nil)
	// A high-priority Process blocked on a semaphore preempts the
	// signalling lower-priority Process the moment it is signalled:
	// the order array must show the high-priority side ran first
	// after the signal.
	src := `| sem order slot |
		sem := Semaphore new.
		order := Array new: 4.
		slot := Array with: 1.
		[sem wait.
		 order at: (slot at: 1) put: #high.
		 slot at: 1 put: (slot at: 1) + 1] fork.
		Processor yield.
		(Processor thisProcess) priority: 4.
		1 to: 200 do: [:i | i + i].
		sem signal.
		order at: (slot at: 1) put: #low.
		order at: 1`
	// The forked process runs at priority 5 (inherited); the main
	// process lowers itself to 4 before signalling.
	res := evalOOP(t, vm, src)
	if vm.SymbolName(res) != "high" {
		t.Fatalf("first after signal = %s, want high", vm.DescribeOOP(res))
	}
}

func TestSuspendAndResumeFromAnotherProcess(t *testing.T) {
	vm := testVM(t, 2, nil)
	src := `| worker log sem |
		log := Array with: 0.
		sem := Semaphore new.
		worker := [[true] whileTrue: [log at: 1 put: (log at: 1) + 1]] newProcess.
		worker resume.
		1 to: 2000 do: [:i | i].
		worker suspend.
		sem signal.
		sem wait.
		log at: 1`
	n := evalInt(t, vm, src)
	if n == 0 {
		t.Fatal("worker never ran before suspension")
	}
	// After suspension the worker must not be runnable.
	if got := evalOOP(t, vm, "| p | p := [nil] newProcess. p canRun"); got != object.False {
		t.Fatalf("fresh process canRun = %v", got)
	}
}

func TestTerminateBlockedProcess(t *testing.T) {
	vm := testVM(t, 1, nil)
	src := `| sem p |
		sem := Semaphore new.
		p := [sem wait. 99] newProcess.
		p resume.
		Processor yield.
		p terminate.
		p canRun`
	if got := evalOOP(t, vm, src); got != object.False {
		t.Fatalf("terminated process canRun = %s", vm.DescribeOOP(got))
	}
}

func TestCanRunDoesNotDistinguishReadyFromRunning(t *testing.T) {
	vm := testVM(t, 1, nil)
	// The running Process itself answers true (it is on the ready
	// queue in state Running — the paper's §3.3 semantics).
	if got := evalOOP(t, vm, "Processor canRun: Processor thisProcess"); got != object.True {
		t.Fatalf("canRun: thisProcess = %s", vm.DescribeOOP(got))
	}
	// A ready-but-not-running Process also answers true.
	src := `| p |
		p := [1 to: 1000 do: [:i | i]] newProcess.
		p resume.
		Processor canRun: p`
	if got := evalOOP(t, vm, src); got != object.True {
		t.Fatalf("canRun: ready = %s", vm.DescribeOOP(got))
	}
}

func TestReadyQueueContainsRunningProcess(t *testing.T) {
	vm := testVM(t, 1, nil)
	// MS keeps running Processes on the ready queue: the current
	// Process must be linked on its priority's list.
	src := `| me list found link |
		me := Processor thisProcess.
		found := false.
		list := (Processor instVarAt: 1) at: 5.
		link := list instVarAt: 1.
		[link isNil] whileFalse: [
			link == me ifTrue: [found := true].
			link := link instVarAt: 4].
		found`
	if got := evalOOP(t, vm, src); got != object.True {
		t.Fatal("running Process not on the ready queue")
	}
}

func TestSemaphoreExcessSignals(t *testing.T) {
	vm := testVM(t, 1, nil)
	src := `| sem |
		sem := Semaphore new.
		sem signal. sem signal. sem signal.
		sem wait. sem wait. sem wait.
		42`
	if got := evalInt(t, vm, src); got != 42 {
		t.Fatalf("excess signals = %d", got)
	}
}

func TestManyProcessesFewProcessors(t *testing.T) {
	vm := testVM(t, 2, nil)
	// Eight workers on two processors: all must complete.
	src := `| sem count |
		sem := Semaphore new.
		count := Array with: 0.
		8 timesRepeat: [
			[count at: 1 put: (count at: 1) + 1. sem signal] fork].
		8 timesRepeat: [sem wait].
		count at: 1`
	if got := evalInt(t, vm, src); got != 8 {
		t.Fatalf("completed workers = %d", got)
	}
}

func TestProcessPriorities(t *testing.T) {
	vm := testVM(t, 1, nil)
	// On one processor, a ready high-priority Process runs before a
	// ready low-priority one once the main Process blocks.
	src := `| sem order slot p1 p2 |
		sem := Semaphore new.
		order := Array new: 2.
		slot := Array with: 1.
		p1 := [order at: (slot at: 1) put: #low. slot at: 1 put: 2. sem signal] newProcess.
		p1 priority: 2.
		p2 := [order at: (slot at: 1) put: #high. slot at: 1 put: 2. sem signal] newProcess.
		p2 priority: 7.
		p1 resume.
		p2 resume.
		sem wait. sem wait.
		order at: 1`
	res := evalOOP(t, vm, src)
	if vm.SymbolName(res) != "high" {
		t.Fatalf("first completed = %s, want high", vm.DescribeOOP(res))
	}
}

func TestSchedulerStateVisibleFromSmalltalk(t *testing.T) {
	vm := testVM(t, 1, nil)
	// The ready queue is an ordinary object graph ("one of the few
	// systems in which one can directly examine the ready queue").
	if got := evalOOP(t, vm, "(Processor instVarAt: 1) class == Array"); got != object.True {
		t.Fatal("quiescentProcessLists not an Array")
	}
}

func TestYieldRoundRobin(t *testing.T) {
	vm := testVM(t, 1, nil)
	// Two cooperating processes interleave via yield on a single
	// processor; both make progress in strict alternation.
	src := `| a done |
		a := Array new: 20.
		done := Semaphore new.
		[1 to: 10 do: [:i | a at: i * 2 - 1 put: #one. Processor yield]. done signal] fork.
		[1 to: 10 do: [:i | a at: i * 2 put: #two. Processor yield]. done signal] fork.
		done wait. done wait.
		((a at: 1) == #one and: [(a at: 2) == #two]) ifTrue: [1] ifFalse: [0]`
	if got := evalInt(t, vm, src); got != 1 {
		t.Fatal("yield did not interleave processes")
	}
}

func TestBusFactorChargesActiveProcessors(t *testing.T) {
	// The same computation takes longer (in its own virtual time) when
	// other processors are actively executing Smalltalk.
	elapsed := func(background int) int64 {
		vm := testVM(t, 5, func(cfg *Config, hcfg *heap.Config) {})
		for i := 0; i < background; i++ {
			if _, err := vm.Evaluate("[[true] whileTrue] fork"); err != nil {
				t.Fatal(err)
			}
		}
		return evalInt(t, vm,
			"| t | t := 0. 1 to: 5000 do: [:i | t := t + i]. t")
	}
	// Identical results, but not identical virtual cost: measure via
	// the machine clock instead. Simplest check: with background the
	// result is the same; the timing effect is asserted end-to-end in
	// the bench package.
	if elapsed(0) != elapsed(4) {
		t.Fatal("computation result changed under load")
	}
}
