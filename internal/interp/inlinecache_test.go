package interp

import (
	"fmt"
	"strings"
	"testing"

	"mst/internal/heap"
	"mst/internal/object"
)

// icTestVM boots a test VM with the given inline-cache policy.
func icTestVM(t *testing.T, nprocs int, pol ICPolicy, mutate func(*Config, *heap.Config)) *VM {
	t.Helper()
	return testVM(t, nprocs, func(cfg *Config, hcfg *heap.Config) {
		cfg.InlineCache = pol
		if mutate != nil {
			mutate(cfg, hcfg)
		}
	})
}

// polySrc sends #report through ONE send site to alternating receiver
// classes — a polymorphic site a MIC rebinds on every class change and
// a PIC holds steady.
const polySrc = `| a b sum |
	a := ICA new. b := ICB new.
	sum := 0.
	1 to: 20 do: [:i |
		| r |
		r := i \\ 2 = 0 ifTrue: [a] ifFalse: [b].
		sum := sum + r report].
	"A second, monomorphic send site: even a MIC hits here."
	1 to: 5 do: [:i | sum := sum + a report].
	sum`

// polyWant is polySrc's value: 10 sends to each class through the
// polymorphic site, 5 to ICA through the monomorphic one.
const polyWant = 10*10 + 10*1 + 5*1

func installICClasses(t *testing.T, vm *VM) {
	t.Helper()
	p := vm.Interps[0].p
	for _, def := range []struct{ name, src string }{
		{"ICA", "report ^1"},
		{"ICB", "report ^10"},
	} {
		cls := vm.CreateClass(p, def.name, vm.Specials.Object, nil, KindFixed, "Tests")
		if _, err := vm.CompileAndInstall(p, cls, def.src, "tests"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInlineCachePoliciesAgree runs the same polymorphic program under
// every inline-cache policy: results must be identical (the caches are
// a pure lookup accelerator), and the enabled policies must actually
// hit.
func TestInlineCachePoliciesAgree(t *testing.T) {
	for _, pol := range []ICPolicy{ICOff, ICMono, ICPoly} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			vm := icTestVM(t, 1, pol, nil)
			installICClasses(t, vm)
			if got := evalInt(t, vm, polySrc); got != polyWant {
				t.Errorf("result under %v = %d, want %d", pol, got, polyWant)
			}
			st := vm.Stats()
			if pol == ICOff {
				if st.ICHits+st.ICMisses+st.ICFills != 0 {
					t.Errorf("IC counters nonzero with ICs off: hits=%d misses=%d fills=%d",
						st.ICHits, st.ICMisses, st.ICFills)
				}
			} else if st.ICHits == 0 {
				t.Errorf("no IC hits under %v", pol)
			}
		})
	}
}

// TestPICBeatsMICOnPolymorphicSite checks the structural difference
// between the policies on one polymorphic send site: the MIC rebinds
// (fills) on every receiver-class change while the PIC fills once per
// class.
func TestPICBeatsMICOnPolymorphicSite(t *testing.T) {
	fills := map[ICPolicy]uint64{}
	for _, pol := range []ICPolicy{ICMono, ICPoly} {
		vm := icTestVM(t, 1, pol, nil)
		installICClasses(t, vm)
		before := vm.Stats().ICFills
		evalInt(t, vm, polySrc)
		fills[pol] = vm.Stats().ICFills - before
	}
	if fills[ICPoly] >= fills[ICMono] {
		t.Errorf("PIC fills (%d) not below MIC fills (%d) on a polymorphic site",
			fills[ICPoly], fills[ICMono])
	}
	vm := icTestVM(t, 1, ICPoly, nil)
	installICClasses(t, vm)
	evalInt(t, vm, polySrc)
	if vm.Stats().ICPolySites == 0 {
		t.Error("no site went polymorphic under ICPoly")
	}
}

// TestMegamorphicSiteRetires drives one send site with more receiver
// classes than a PIC holds: the site must retire (megamorphic) rather
// than thrash, and keep answering correctly through the method cache.
func TestMegamorphicSiteRetires(t *testing.T) {
	vm := icTestVM(t, 1, ICPoly, nil)
	p := vm.Interps[0].p
	n := icWays + 2
	var sb strings.Builder
	sb.WriteString("| sum all |\nall := Array new: ")
	fmt.Fprintf(&sb, "%d.\n", n)
	for i := 0; i < n; i++ {
		cls := vm.CreateClass(p, fmt.Sprintf("Mega%d", i), vm.Specials.Object, nil, KindFixed, "Tests")
		if _, err := vm.CompileAndInstall(p, cls, fmt.Sprintf("report ^%d", i), "tests"); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "all at: %d put: Mega%d new.\n", i+1, i)
	}
	// Two passes so the retired site is exercised again after retiring.
	fmt.Fprintf(&sb, "sum := 0.\n1 to: 2 do: [:pass | 1 to: %d do: [:i | sum := sum + (all at: i) report]].\nsum", n)
	want := int64(2 * n * (n - 1) / 2)
	if got := evalInt(t, vm, sb.String()); got != want {
		t.Errorf("megamorphic sum = %d, want %d", got, want)
	}
	if vm.Stats().ICMegaSites == 0 {
		t.Errorf("no site retired as megamorphic after %d classes (icWays=%d)", n, icWays)
	}
}

// TestInlineCacheInvalidatedByInstall recompiles a method from inside a
// running evaluation — through the compile primitive, so the send site
// is warm in the inline cache when the install happens — and checks the
// next send sees the new method. This is the stale-cache regression for
// the inline-cache level.
func TestInlineCacheInvalidatedByInstall(t *testing.T) {
	for _, pol := range []ICPolicy{ICOff, ICMono, ICPoly} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			vm := icTestVM(t, 1, pol, nil)
			p := vm.Interps[0].p
			cls := vm.CreateClass(p, "Probe", vm.Specials.Object, nil, KindFixed, "Tests")
			mustInstall := func(c object.OOP, src string) {
				t.Helper()
				if _, err := vm.CompileAndInstall(p, c, src, "tests"); err != nil {
					t.Fatal(err)
				}
			}
			mustInstall(cls, "answer ^1")
			mustInstall(vm.H.ClassOf(cls),
				"compile: src classified: cat <primitive: 85> ^self error: 'compile failed'")
			src := `| a r1 r2 |
				a := Probe new.
				r1 := a answer.
				1 to: 3 do: [:i | r1 := a answer].
				Probe compile: 'answer ^2' classified: 'gen'.
				r2 := a answer.
				r1 * 10 + r2`
			if got := evalInt(t, vm, src); got != 12 {
				t.Errorf("under %v: warm-then-recompile = %d, want 12", pol, got)
			}
		})
	}
}

// TestTwoWayMethodCache runs the MS+ cache organization (2-way set
// associative) and confirms plain execution and recompilation still
// behave.
func TestTwoWayMethodCache(t *testing.T) {
	vm := icTestVM(t, 2, ICPoly, func(cfg *Config, hcfg *heap.Config) {
		cfg.CacheWays = 2
	})
	installICClasses(t, vm)
	if got := evalInt(t, vm, polySrc); got != polyWant {
		t.Errorf("two-way cache result = %d, want %d", got, polyWant)
	}
	// With PICs absorbing the repeats, the method cache sees mostly
	// cold probes — assert it was exercised, not that it hit.
	st := vm.Stats()
	if st.CacheHits+st.CacheMisses == 0 {
		t.Error("2-way method cache never probed")
	}
}

// TestInlineCacheSurvivesScavenges forces many scavenges while the
// inline caches are live: their entries are GC roots, re-keyed after
// each scavenge, so execution must stay correct and the caches keep
// hitting.
func TestInlineCacheSurvivesScavenges(t *testing.T) {
	vm := icTestVM(t, 1, ICPoly, func(cfg *Config, hcfg *heap.Config) {
		hcfg.EdenWords = 2 << 10
		hcfg.SurvivorWords = 512
	})
	installICClasses(t, vm)
	src := `| a b sum |
		a := ICA new. b := ICB new.
		sum := 0.
		1 to: 300 do: [:i |
			| r pad |
			pad := Array new: 16.
			pad at: 1 put: i.
			r := i \\ 2 = 0 ifTrue: [a] ifFalse: [b].
			sum := sum + r report + (pad at: 1) - i].
		sum`
	if got := evalInt(t, vm, src); got != 150*10+150*1 {
		t.Errorf("sum across scavenges = %d", got)
	}
	if vm.H.Stats().Scavenges == 0 {
		t.Fatal("no scavenges; test exercised nothing")
	}
	if vm.Stats().ICHits == 0 {
		t.Error("no IC hits across scavenges")
	}
	vm.H.CheckInvariants()
}
