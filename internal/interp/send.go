package interp

import (
	"mst/internal/bytecode"
	"mst/internal/firefly"
	"mst/internal/jit"
	"mst/internal/object"
	"mst/internal/trace"
)

// cacheSize is the method cache size (entries, power of two).
const cacheSize = 512

// mcEntry is one method-cache entry. Keys are raw oops, which is safe
// because every cache is flushed before each scavenge.
type mcEntry struct {
	selector object.OOP
	class    object.OOP
	method   object.OOP
	prim     int
}

func cacheIndex(selector, class object.OOP) int {
	return int((uint64(selector)>>1 ^ uint64(class)>>3) & (cacheSize - 1))
}

// lookup finds (method, primitive) for selector starting at class,
// consulting the configured method cache. Reports ok=false on a miss
// all the way up the chain (doesNotUnderstand:).
func (in *Interp) lookup(class, selector object.OOP) (object.OOP, int, bool) {
	vm := in.vm

	var cache *[cacheSize]mcEntry
	locked := false
	if in.sharedLocked {
		// MS's first design: a shared cache behind a two-level lock
		// (probes take the read side; fills take the write side).
		vm.cacheLock.AcquireRead(in.p)
		locked = true
		cache = vm.sharedCache
		vm.sanAccess(in.p, "shared-method-cache")
	} else {
		cache = in.cache
		if s := vm.san; s != nil {
			// Replicated caches are a Table-3 replication row: each is
			// only ever probed by its owning processor.
			s.OnOwnedAccess(in.p.ID(), in.p.ID(), int64(in.p.Now()), "method-cache-replica")
		}
	}
	idx := cacheIndex(selector, class)
	in.p.Advance(in.probeCost)
	if e := &cache[idx]; e.selector == selector && e.class == class {
		m, prim := e.method, e.prim
		if locked {
			vm.cacheLock.ReleaseRead(in.p)
		}
		in.stats.CacheHits++
		if in.rec != nil {
			in.rec.Emit(trace.KCacheHit, in.p.ID(), int64(in.p.Now()), 0, 0, "")
		}
		return m, prim, true
	}
	if in.twoWay {
		// Extension (CacheWays=2): a second probe of the adjacent entry
		// turns many conflict misses into hits, at one extra probe cost.
		in.p.Advance(in.probeCost)
		if e := &cache[idx^1]; e.selector == selector && e.class == class {
			m, prim := e.method, e.prim
			if locked {
				vm.cacheLock.ReleaseRead(in.p)
			}
			in.stats.CacheHits++
			if in.rec != nil {
				in.rec.Emit(trace.KCacheHit, in.p.ID(), int64(in.p.Now()), 0, 0, "")
			}
			return m, prim, true
		}
	}
	if locked {
		vm.cacheLock.ReleaseRead(in.p)
	}
	in.stats.CacheMisses++
	if in.rec != nil {
		in.rec.Emit(trace.KCacheMiss, in.p.ID(), int64(in.p.Now()), 0, 0, in.selName(selector))
	}

	method, ok := in.walkLookup(class, selector)
	if !ok {
		return object.Nil, 0, false
	}
	prim := headerPrim(vm.H.Fetch(method, CMHeader))

	if in.twoWay && cache[idx].selector != object.Invalid && cache[idx^1].selector == object.Invalid {
		idx ^= 1 // fill the empty way instead of evicting
	}
	if in.sharedLocked {
		vm.cacheLock.AcquireWrite(in.p)
		vm.sanAccess(in.p, "shared-method-cache")
		vm.sharedCache[idx] = mcEntry{selector, class, method, prim}
		vm.cacheLock.ReleaseWrite(in.p)
	} else {
		in.cache[idx] = mcEntry{selector, class, method, prim}
	}
	return method, prim, true
}

// walkLookup probes method dictionaries up the superclass chain.
func (in *Interp) walkLookup(class, selector object.OOP) (object.OOP, bool) {
	vm := in.vm
	h := vm.H
	c := in.costs
	for cls := class; cls != object.Nil; cls = h.Fetch(cls, ClsSuperclass) {
		in.p.Advance(c.LookupPerDict)
		in.stats.DictProbes++
		dict := h.Fetch(cls, ClsMethodDict)
		if m, ok := vm.methodDictLookup(dict, selector); ok {
			return m, true
		}
	}
	return object.Nil, false
}

// methodDictLookup probes one open-addressed method dictionary.
func (vm *VM) methodDictLookup(dict, selector object.OOP) (object.OOP, bool) {
	h := vm.H
	keys := h.Fetch(dict, MDKeys)
	n := h.FieldCount(keys)
	if n == 0 {
		return object.Nil, false
	}
	idx := int(h.IdentityHash(selector)) & (n - 1)
	for i := 0; i < n; i++ {
		k := h.Fetch(keys, (idx+i)&(n-1))
		if k == selector {
			values := h.Fetch(dict, MDValues)
			return h.Fetch(values, (idx+i)&(n-1)), true
		}
		if k == object.Nil {
			return object.Nil, false
		}
	}
	return object.Nil, false
}

// send performs a full message send: inline-cache probe (when enabled),
// then lookup through the method cache, then primitive or method
// activation; on total lookup failure it reships the message as
// doesNotUnderstand:. sitePC is the pc of the send opcode within the
// current method (-1 for sends with no site: perform:, DNU reship),
// which identifies the send site for the inline-cache layer.
func (in *Interp) send(selector object.OOP, nargs int, super bool, sitePC int) {
	var site *icSite
	if in.icPolicy != ICOff && sitePC >= 0 && in.icm != nil {
		if si := in.icm.siteIndex(sitePC); si >= 0 {
			site = &in.icm.sites[si]
		}
	}
	in.sendWithSite(selector, nargs, super, site)
}

// sendWithSite is the send tail after site resolution. The msjit tier
// calls it directly with the site pre-resolved at compile time (and the
// selector pre-fetched from the literal frame), skipping the per-send
// binary search; the virtual charges are identical either way.
func (in *Interp) sendWithSite(selector object.OOP, nargs int, super bool, site *icSite) {
	vm := in.vm
	in.stats.Sends++
	if in.rec != nil {
		in.rec.Emit(trace.KSend, in.p.ID(), int64(in.p.Now()), int64(nargs), 0, in.selName(selector))
	}
	in.p.Advance(in.costs.SendExtra)

	receiver := in.stackAt(nargs)
	var class object.OOP
	if super {
		// Super sends start above the method's defining class.
		mc := vm.H.Fetch(in.method, CMMethodClass)
		class = vm.H.Fetch(mc, ClsSuperclass)
	} else {
		class = vm.ClassOf(receiver)
	}

	var method object.OOP
	var prim int
	hit := false
	var fillSite *icSite
	// Megamorphic sites were retired (Hölzle): the send goes straight
	// to the method cache, paying no probe.
	if site != nil && !site.mega {
		in.p.Advance(in.costs.ICProbe)
		if m, p, ok := site.probe(class); ok {
			in.stats.ICHits++
			if in.rec != nil {
				in.rec.Emit(trace.KICHit, in.p.ID(), int64(in.p.Now()), 0, 0, "")
			}
			method, prim, hit = m, p, true
		} else {
			in.stats.ICMisses++
			if in.rec != nil {
				in.rec.Emit(trace.KICMiss, in.p.ID(), int64(in.p.Now()), 0, 0, in.selName(selector))
			}
			fillSite = site
		}
	}
	if !hit {
		var ok bool
		method, prim, ok = in.lookup(class, selector)
		if !ok {
			in.sendDNU(selector, nargs)
			return
		}
		if fillSite != nil {
			in.icFill(fillSite, class, method, prim)
		}
	}
	if prim > 0 {
		in.stats.Primitives++
		if in.rec != nil {
			in.rec.Emit(trace.KPrimitive, in.p.ID(), int64(in.p.Now()), int64(prim), 0, "")
		}
		in.p.Advance(in.costs.PrimBase)
		if in.callPrimitive(prim, nargs) {
			return
		}
		in.stats.PrimFailures++
	}
	in.activateMethod(method, nargs)
}

// sendDNU converts the failed message into doesNotUnderstand: aMessage.
func (in *Interp) sendDNU(selector object.OOP, nargs int) {
	vm := in.vm
	in.stats.DNUs++
	if in.jitOn && in.jfns != nil {
		// A doesNotUnderstand: reship is an uncommon path the template
		// tier refuses to run compiled: drop the compiled body and let
		// the interpreter carry the reship (clean bytecode boundary —
		// the send closure already advanced in.pc).
		in.jitDiscard(in.method)
		if e := &in.jitTab[jitTabIndex(in.method)]; e.method == in.method {
			e.jc = nil
			e.count = 0
		}
		in.jitDeopt(jit.DeoptDNU)
	}
	vm.hostMu.Lock()
	if len(vm.errors) < 100 { // diagnostic log; DNU may be handled deliberately
		vm.errors = append(vm.errors, "doesNotUnderstand: #"+vm.SymbolName(selector)+
			" sent to "+vm.DescribeOOP(in.stackAt(nargs)))
	}
	vm.hostMu.Unlock()
	hs := vm.H.Handles(in.p)
	defer hs.Close()
	selH := hs.Add(selector)

	// Build the Message object (allocations may scavenge; arguments
	// are read from the context stack afterwards, which is safe).
	args := vm.NewArray(in.p, nargs)
	argsH := hs.Add(args)
	for i := 0; i < nargs; i++ {
		vm.H.Store(in.p, argsH.Get(), i, in.stackAt(nargs-1-i))
	}
	msg := vm.H.Allocate(in.p, vm.Specials.Message, MessageInstSize, object.FmtPointers)
	vm.H.Store(in.p, msg, MsgSelector, selH.Get())
	vm.H.Store(in.p, msg, MsgArgs, argsH.Get())

	// Replace the arguments with the message and re-send.
	in.popN(nargs)
	in.push(msg)

	receiver := in.stackAt(1)
	class := vm.ClassOf(receiver)
	method, prim, ok := in.lookup(class, vm.Specials.SymDNU)
	if !ok {
		vm.vmError("recursive doesNotUnderstand: for %s on %s",
			vm.SymbolName(selH.Get()), vm.DescribeOOP(receiver))
		in.terminateCurrentProcess()
		return
	}
	if prim > 0 && in.callPrimitive(prim, 1) {
		return
	}
	in.activateMethod(method, 1)
}

// activateMethod builds (or recycles) a context for method and makes it
// active. The receiver and nargs arguments are on the caller's stack.
func (in *Interp) activateMethod(method object.OOP, nargs int) {
	if in.jitOn && in.jitActivate(method, nargs) {
		return
	}
	vm := in.vm
	h := vm.H
	hdr := h.Fetch(method, CMHeader)
	ntemps := headerNumTemps(hdr)
	need := ntemps + headerMaxStack(hdr) + 2
	large := need > SmallCtxSlots
	if need > LargeCtxSlots {
		vm.vmError("method %s needs %d context slots", vm.DescribeOOP(method), need)
		in.terminateCurrentProcess()
		return
	}

	hs := h.Handles(in.p)
	mh := hs.Add(method)
	nc := in.allocContext(large) // MAY GC
	method = mh.Get()
	hs.Close()

	// Initialize the fresh context. Everything read from the caller's
	// stack happens after the allocation, via the (GC-updated) ctx root.
	slots := SmallCtxSlots
	if large {
		slots = LargeCtxSlots
	}
	h.StoreNoCheck(nc, CtxPC, object.FromInt(0))
	h.StoreNoCheck(nc, CtxSP, object.FromInt(int64(ntemps)))
	h.Store(in.p, nc, CtxMethod, method)
	receiver := in.stackAt(nargs)
	h.Store(in.p, nc, CtxReceiver, receiver)
	// Arguments into the first temps; remaining temps nil; the rest of
	// the slot area must be nil for the scavenger (recycled contexts
	// hold stale values).
	for i := 0; i < nargs; i++ {
		h.Store(in.p, nc, CtxFixed+i, in.stackAt(nargs-1-i))
	}
	for i := nargs; i < slots; i++ {
		h.StoreNoCheck(nc, CtxFixed+i, object.Nil)
	}
	// Pop receiver+args, link, and switch.
	in.popN(nargs + 1)
	in.flushRegisters()
	h.Store(in.p, nc, CtxSender, in.ctx)

	in.loadContext(nc)
}

// returnValue implements ^-returns. For a block context this is a
// non-local return from the home method's sender.
func (in *Interp) returnValue(val object.OOP, methodReturn bool) {
	vm := in.vm
	h := vm.H

	var target object.OOP
	if in.isBlock && methodReturn {
		// Non-local return: leave via the home context's sender.
		home := in.home
		target = h.Fetch(home, CtxSender)
		// The home method context is now dead.
		h.StoreNoCheck(home, CtxSender, object.Nil)
	} else {
		target = h.Fetch(in.ctx, CtxSender)
		in.recycleContext(in.ctx)
	}

	if target == object.Nil {
		in.processCompleted(val)
		return
	}
	in.loadContext(target)
	in.push(val)
}

// blockReturn returns the top of stack from a block to its caller.
func (in *Interp) blockReturn() {
	val := in.pop()
	target := in.vm.H.Fetch(in.ctx, BCtxCaller)
	if target == object.Nil {
		in.processCompleted(val)
		return
	}
	in.loadContext(target)
	in.push(val)
}

// recycleContext returns a clean method context to the free list
// (paper §3.2: replication of the free context list removed the
// serialization bottleneck).
func (in *Interp) recycleContext(ctx object.OOP) {
	vm := in.vm
	if in.isBlock {
		return
	}
	hdr := vm.H.Fetch(in.method, CMHeader)
	if !headerClean(hdr) {
		// The context may have escaped through a block or
		// thisContext; let the scavenger reclaim it.
		return
	}
	if in.jitOn {
		// Nil-watermark for jitActivate: the pop discipline keeps every
		// slot at or above sp nil, so the dead frame's sp tells the next
		// fast activation how much of the slot area still needs
		// nil-filling ([nargs, sp) — the rest is already clean). The
		// frame is dead and unreachable, so the stash is invisible to
		// the scavenger and to the generic path, which overwrites CtxSP
		// and nil-fills everything regardless.
		vm.H.StoreNoCheck(ctx, CtxSP, object.FromInt(int64(in.sp)))
	}
	large := vm.H.FieldCount(ctx)-CtxFixed > SmallCtxSlots
	const freeListMax = 64
	if vm.Cfg.FreeContexts == FreeCtxSharedLocked {
		which := 0
		if large {
			which = 1
		}
		vm.freeLock.Acquire(in.p)
		vm.sanAccess(in.p, "shared-free-contexts")
		if len(vm.sharedFreeCtx[which]) < freeListMax {
			vm.sharedFreeCtx[which] = append(vm.sharedFreeCtx[which], ctx)
			if in.rec != nil {
				in.rec.Emit(trace.KCtxRecycle, in.p.ID(), int64(in.p.Now()), 0, 0, "")
			}
		}
		vm.freeLock.Release(in.p)
		return
	}
	if s := vm.san; s != nil {
		// Per-processor free context lists are a Table-3 replication
		// row (the paper's fix for the 160% worst-case overhead).
		s.OnOwnedAccess(in.p.ID(), in.p.ID(), int64(in.p.Now()), "free-contexts-replica")
	}
	if large {
		if len(in.freeLarge) < freeListMax {
			in.freeLarge = append(in.freeLarge, ctx)
		}
	} else {
		if len(in.freeSmall) < freeListMax {
			in.freeSmall = append(in.freeSmall, ctx)
		}
	}
	in.stats.ContextsRecycled++
	if in.rec != nil {
		in.rec.Emit(trace.KCtxRecycle, in.p.ID(), int64(in.p.Now()), 0, 0, "")
	}
}

// allocContext takes a method context from the free list or the heap.
// MAY GC when the free list is empty.
func (in *Interp) allocContext(large bool) object.OOP {
	vm := in.vm
	c := in.costs
	if vm.Cfg.FreeContexts == FreeCtxSharedLocked {
		which := 0
		if large {
			which = 1
		}
		vm.freeLock.Acquire(in.p)
		vm.sanAccess(in.p, "shared-free-contexts")
		list := vm.sharedFreeCtx[which]
		if n := len(list); n > 0 {
			ctx := list[n-1]
			vm.sharedFreeCtx[which] = list[:n-1]
			vm.freeLock.Release(in.p)
			in.p.Advance(c.FreeListPop)
			return ctx
		}
		vm.freeLock.Release(in.p)
	} else {
		list := &in.freeSmall
		if large {
			list = &in.freeLarge
		}
		if n := len(*list); n > 0 {
			ctx := (*list)[n-1]
			*list = (*list)[:n-1]
			in.p.Advance(c.FreeListPop)
			return ctx
		}
	}
	slots := SmallCtxSlots
	if large {
		slots = LargeCtxSlots
	}
	in.stats.ContextsAlloc++
	if in.rec != nil {
		in.rec.Emit(trace.KCtxAlloc, in.p.ID(), int64(in.p.Now()), 0, 0, "")
	}
	return vm.H.Allocate(in.p, vm.Specials.MethodContext,
		CtxFixed+slots, object.FmtPointers)
}

// specialSend executes a special-selector send, with inline fast paths
// for the common cases; otherwise it falls back to a normal send of the
// pre-interned selector. sitePC is the pc of the send opcode.
func (in *Interp) specialSend(op bytecode.Op, sitePC int) {
	if in.specialFast(op) {
		return
	}
	// Fast path failed: a real send of the pre-interned selector.
	in.send(in.vm.specialSelectors[op-bytecode.FirstSpecialSend],
		bytecode.Special(op).NumArgs, false, sitePC)
}

// specialFast attempts the inline fast path for a special-selector
// send. It reports whether the send was fully handled; otherwise the
// caller falls back to a real send. Shared by the interpreter and the
// msjit tier so both execute the exact same fast paths.
func (in *Interp) specialFast(op bytecode.Op) bool {
	vm := in.vm
	h := vm.H

	switch op {
	case bytecode.OpSendAdd, bytecode.OpSendSub, bytecode.OpSendMul,
		bytecode.OpSendIntDiv, bytecode.OpSendMod,
		bytecode.OpSendBitAnd, bytecode.OpSendBitOr, bytecode.OpSendBitXor,
		bytecode.OpSendBitShift:
		a := in.stackAt(1)
		b := in.stackAt(0)
		if a.IsInt() && b.IsInt() {
			if r, ok := intArith(op, a.Int(), b.Int()); ok {
				in.popN(2)
				in.push(r)
				return true
			}
		}
	case bytecode.OpSendLT, bytecode.OpSendGT, bytecode.OpSendLE,
		bytecode.OpSendGE, bytecode.OpSendEq, bytecode.OpSendNE:
		a := in.stackAt(1)
		b := in.stackAt(0)
		if a.IsInt() && b.IsInt() {
			in.popN(2)
			in.push(object.FromBool(intCompare(op, a.Int(), b.Int())))
			return true
		}
	case bytecode.OpSendIdent:
		b := in.pop()
		a := in.pop()
		in.push(object.FromBool(a == b))
		return true
	case bytecode.OpSendNotIdent:
		b := in.pop()
		a := in.pop()
		in.push(object.FromBool(a != b))
		return true
	case bytecode.OpSendClass:
		v := in.pop()
		in.push(vm.ClassOf(v))
		return true
	case bytecode.OpSendIsNil:
		v := in.pop()
		in.push(object.FromBool(v == object.Nil))
		return true
	case bytecode.OpSendNotNil:
		v := in.pop()
		in.push(object.FromBool(v != object.Nil))
		return true
	case bytecode.OpSendNot:
		v := in.stackAt(0)
		if v == object.True {
			in.setStackTop(object.False)
			return true
		}
		if v == object.False {
			in.setStackTop(object.True)
			return true
		}
	case bytecode.OpSendAt:
		recv := in.stackAt(1)
		idx := in.stackAt(0)
		if v, ok := in.basicAt(recv, idx); ok {
			in.popN(2)
			in.push(v)
			return true
		}
	case bytecode.OpSendAtPut:
		recv := in.stackAt(2)
		idx := in.stackAt(1)
		val := in.stackAt(0)
		if in.basicAtPut(recv, idx, val) {
			in.popN(3)
			in.push(val)
			return true
		}
	case bytecode.OpSendSize:
		recv := in.stackAt(0)
		if n, ok := in.basicSize(recv); ok {
			in.setStackTop(object.FromInt(int64(n)))
			return true
		}
	case bytecode.OpSendValue:
		recv := in.stackAt(0)
		if recv.IsPtr() && recv != object.Nil && h.ClassOf(recv) == vm.Specials.BlockContext {
			if in.blockValue(recv, 0) {
				return true
			}
		}
	case bytecode.OpSendValue1:
		recv := in.stackAt(1)
		if recv.IsPtr() && recv != object.Nil && h.ClassOf(recv) == vm.Specials.BlockContext {
			if in.blockValue(recv, 1) {
				return true
			}
		}
	}
	return false
}

func intArith(op bytecode.Op, a, b int64) (object.OOP, bool) {
	switch op {
	case bytecode.OpSendAdd:
		r := a + b
		if r > object.MaxSmallInt || r < object.MinSmallInt {
			return 0, false
		}
		return object.FromInt(r), true
	case bytecode.OpSendSub:
		r := a - b
		if r > object.MaxSmallInt || r < object.MinSmallInt {
			return 0, false
		}
		return object.FromInt(r), true
	case bytecode.OpSendMul:
		r := a * b
		if a != 0 && (r/a != b || r > object.MaxSmallInt || r < object.MinSmallInt) {
			return 0, false // overflow
		}
		return object.FromInt(r), true
	case bytecode.OpSendIntDiv:
		if b == 0 {
			return 0, false
		}
		return object.FromInt(floorDiv(a, b)), true
	case bytecode.OpSendMod:
		if b == 0 {
			return 0, false
		}
		return object.FromInt(a - floorDiv(a, b)*b), true
	case bytecode.OpSendBitAnd:
		return object.FromInt(a & b), true
	case bytecode.OpSendBitOr:
		return object.FromInt(a | b), true
	case bytecode.OpSendBitXor:
		return object.FromInt(a ^ b), true
	case bytecode.OpSendBitShift:
		if b >= 0 {
			if b > 60 {
				return 0, false
			}
			r := a << uint(b)
			if r>>uint(b) != a || r > object.MaxSmallInt || r < object.MinSmallInt {
				return 0, false
			}
			return object.FromInt(r), true
		}
		if b < -63 {
			b = -63
		}
		return object.FromInt(a >> uint(-b)), true
	}
	return 0, false
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func intCompare(op bytecode.Op, a, b int64) bool {
	switch op {
	case bytecode.OpSendLT:
		return a < b
	case bytecode.OpSendGT:
		return a > b
	case bytecode.OpSendLE:
		return a <= b
	case bytecode.OpSendGE:
		return a >= b
	case bytecode.OpSendEq:
		return a == b
	case bytecode.OpSendNE:
		return a != b
	}
	return false
}

// basicAt implements 1-based indexed access for indexable objects;
// ok=false falls back to a full send (user-defined at:).
func (in *Interp) basicAt(recv, idx object.OOP) (object.OOP, bool) {
	vm := in.vm
	h := vm.H
	if !idx.IsInt() || !recv.IsPtr() || recv == object.Nil {
		return 0, false
	}
	i := int(idx.Int())
	cls := h.ClassOf(recv)
	instSize, kind := DecodeFormat(h.Fetch(cls, ClsFormat))
	switch kind {
	case KindIdxPointers:
		n := h.FieldCount(recv) - instSize
		if i < 1 || i > n {
			return 0, false
		}
		return h.Fetch(recv, instSize+i-1), true
	case KindIdxBytes:
		if i < 1 || i > h.ByteLen(recv) {
			return 0, false
		}
		return object.FromInt(int64(h.FetchByte(recv, i-1))), true
	case KindIdxChars:
		if i < 1 || i > h.ByteLen(recv) {
			return 0, false
		}
		return vm.CharFor(in.p, rune(h.FetchByte(recv, i-1))), true
	case KindIdxWords:
		n := h.FieldCount(recv)
		if i < 1 || i > n {
			return 0, false
		}
		w := h.FetchWord(recv, i-1)
		if w > uint64(object.MaxSmallInt) {
			return 0, false
		}
		return object.FromInt(int64(w)), true
	}
	return 0, false
}

// basicAtPut implements 1-based indexed store.
func (in *Interp) basicAtPut(recv, idx, val object.OOP) bool {
	vm := in.vm
	h := vm.H
	if !idx.IsInt() || !recv.IsPtr() || recv == object.Nil {
		return false
	}
	i := int(idx.Int())
	cls := h.ClassOf(recv)
	instSize, kind := DecodeFormat(h.Fetch(cls, ClsFormat))
	switch kind {
	case KindIdxPointers:
		n := h.FieldCount(recv) - instSize
		if i < 1 || i > n {
			return false
		}
		h.Store(in.p, recv, instSize+i-1, val)
		return true
	case KindIdxBytes:
		if i < 1 || i > h.ByteLen(recv) || !val.IsInt() {
			return false
		}
		v := val.Int()
		if v < 0 || v > 255 {
			return false
		}
		h.StoreByte(recv, i-1, byte(v))
		return true
	case KindIdxChars:
		if i < 1 || i > h.ByteLen(recv) {
			return false
		}
		if val.IsInt() {
			return false
		}
		if h.ClassOf(val) != vm.Specials.Character {
			return false
		}
		r := vm.CharValueOf(val)
		if r < 0 || r > 255 {
			return false
		}
		h.StoreByte(recv, i-1, byte(r))
		return true
	case KindIdxWords:
		n := h.FieldCount(recv)
		if i < 1 || i > n || !val.IsInt() || val.Int() < 0 {
			return false
		}
		h.StoreWord(recv, i-1, uint64(val.Int()))
		return true
	}
	return false
}

// basicSize returns the indexable size of recv.
func (in *Interp) basicSize(recv object.OOP) (int, bool) {
	vm := in.vm
	h := vm.H
	if !recv.IsPtr() || recv == object.Nil {
		return 0, false
	}
	cls := h.ClassOf(recv)
	instSize, kind := DecodeFormat(h.Fetch(cls, ClsFormat))
	switch kind {
	case KindIdxPointers:
		return h.FieldCount(recv) - instSize, true
	case KindIdxBytes, KindIdxChars:
		return h.ByteLen(recv), true
	case KindIdxWords:
		return h.FieldCount(recv), true
	}
	return 0, false
}

// blockValue activates a block with nargs arguments on the stack (the
// block itself sits below them). Reports false when the arity is wrong
// (the send then falls back to BlockContext>>value..., which errors).
func (in *Interp) blockValue(blk object.OOP, nargs int) bool {
	vm := in.vm
	h := vm.H
	info := h.Fetch(blk, BCtxInfo).Int()
	wantArgs := int(info & 0xFF)
	firstArg := int(info >> 8 & 0xFF)
	if wantArgs != nargs {
		return false
	}
	home := h.Fetch(blk, BCtxHome)
	// Block arguments live in the home context's temporaries.
	for i := 0; i < nargs; i++ {
		h.Store(in.p, home, CtxFixed+firstArg+i, in.stackAt(nargs-1-i))
	}
	in.popN(nargs + 1)
	in.flushRegisters()
	h.Store(in.p, blk, BCtxCaller, in.ctx)
	h.StoreNoCheck(blk, BCtxPC, h.Fetch(blk, BCtxInitialPC))
	h.StoreNoCheck(blk, BCtxSP, object.FromInt(0))
	in.loadContext(blk)
	in.p.Advance(in.costs.SendExtra)
	return true
}

var _ = firefly.Time(0) // keep firefly imported for future use
