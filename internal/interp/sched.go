package interp

import (
	"runtime"

	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// The scheduler follows the paper's design:
//
//   - There is ONE ProcessorScheduler and one priority-queue of ready
//     Processes shared by all interpreters, guarded by a virtual lock
//     ("these events are relatively infrequent, so serialization through
//     a lock on the queue is adequate").
//   - MS does NOT remove a Process from the ready queue when it starts
//     running ("the ready queue contains all Processes which are ready
//     to run including those running"); the state word distinguishes
//     them, and the canRun: primitive answers without distinguishing
//     running from ready.
//   - The activeProcess slot of the ProcessorScheduler is ignored: only
//     the interpreter knows which Process it is executing (thisProcess).

// readyList returns the LinkedList for priority (1-based).
func (vm *VM) readyList(priority int) object.OOP {
	lists := vm.H.Fetch(vm.Specials.Scheduler, SchedLists)
	return vm.H.Fetch(lists, priority-1)
}

// sanAccess reports an access to a serialized interpreter structure to
// the invariant checker; call it from inside the guarding critical
// section.
func (vm *VM) sanAccess(p *firefly.Proc, structure string) {
	if s := vm.san; s != nil {
		s.OnAccess(p.ID(), int64(p.Now()), structure)
	}
}

// listAppend links proc at the tail of list. Caller holds the lock.
func (vm *VM) listAppend(p *firefly.Proc, list, proc object.OOP) {
	h := vm.H
	vm.sanAccess(p, "ready-queue")
	p.Advance(vm.M.Costs().SchedOp)
	h.Store(p, proc, PrMyList, list)
	h.StoreNoCheck(proc, PrNextLink, object.Nil)
	last := h.Fetch(list, LLLast)
	if last == object.Nil {
		h.Store(p, list, LLFirst, proc)
	} else {
		h.Store(p, last, PrNextLink, proc)
	}
	h.Store(p, list, LLLast, proc)
}

// listRemove unlinks proc from list; reports whether it was present.
// Caller holds the lock.
func (vm *VM) listRemove(p *firefly.Proc, list, proc object.OOP) bool {
	h := vm.H
	vm.sanAccess(p, "ready-queue")
	p.Advance(vm.M.Costs().SchedOp)
	prev := object.Nil
	cur := h.Fetch(list, LLFirst)
	for cur != object.Nil {
		if cur == proc {
			next := h.Fetch(cur, PrNextLink)
			if prev == object.Nil {
				h.Store(p, list, LLFirst, next)
			} else {
				h.Store(p, prev, PrNextLink, next)
			}
			if h.Fetch(list, LLLast) == proc {
				h.Store(p, list, LLLast, prev)
			}
			h.StoreNoCheck(proc, PrNextLink, object.Nil)
			h.StoreNoCheck(proc, PrMyList, object.Nil)
			return true
		}
		prev = cur
		cur = h.Fetch(cur, PrNextLink)
	}
	return false
}

// unlinkFromCurrentList removes proc from whatever list it is on.
func (vm *VM) unlinkFromCurrentList(p *firefly.Proc, proc object.OOP) {
	list := vm.H.Fetch(proc, PrMyList)
	if list != object.Nil {
		vm.listRemove(p, list, proc)
	}
}

// findReady returns the highest-priority Process in state Ready (running
// Processes stay on the queue and are skipped). Caller holds the lock.
func (vm *VM) findReady(p *firefly.Proc) object.OOP {
	h := vm.H
	vm.sanAccess(p, "ready-queue")
	for pri := NumPriorities; pri >= 1; pri-- {
		list := vm.readyList(pri)
		cur := h.Fetch(list, LLFirst)
		for cur != object.Nil {
			p.Advance(vm.M.Costs().SchedOp)
			if h.Fetch(cur, PrState).Int() == StateReady {
				return cur
			}
			cur = h.Fetch(cur, PrNextLink)
		}
	}
	return object.Nil
}

// switchToProcess makes proc (state already set to Running, still on the
// ready queue) this interpreter's current Process.
func (in *Interp) switchToProcess(proc object.OOP) {
	vm := in.vm
	in.stats.ProcessSwitches++
	if in.rec != nil {
		// The raw oop value identifies the Process; IdentityHash would
		// lazily assign hash bits (a heap mutation) and so is off-limits.
		in.rec.Emit(trace.KProcessSwitch, in.p.ID(), int64(in.p.Now()), int64(proc), 0, "")
	}
	in.p.Advance(vm.M.Costs().ProcessSwitch)
	in.setProc(proc)
	ctx := vm.H.Fetch(proc, PrSuspendedContext)
	if ctx == object.Nil {
		vm.vmError("process with no suspended context")
		in.setProc(object.Nil)
		return
	}
	in.loadContext(ctx)
}

// parkCurrent flushes the interpreter registers into the current
// Process, leaving it in newState. Caller holds the lock.
func (in *Interp) parkCurrent(newState int64) {
	vm := in.vm
	in.flushRegisters()
	vm.H.Store(in.p, in.proc, PrSuspendedContext, in.ctx)
	vm.H.StoreNoCheck(in.proc, PrState, object.FromInt(newState))
}

// pickNext selects the next ready Process (caller holds the lock) and
// switches to it, or goes idle.
func (in *Interp) pickNext() {
	next := in.vm.findReady(in.p)
	if next == object.Nil {
		in.setProc(object.Nil)
		in.ctx = object.Nil
		if in.vm.prof != nil {
			in.profIdle()
		}
		return
	}
	in.vm.H.StoreNoCheck(next, PrState, object.FromInt(StateRunning))
	in.switchToProcess(next)
}

// abandonCurrent is called when another processor suspended or
// terminated our Process: flush state into it and schedule away.
func (in *Interp) abandonCurrent() {
	vm := in.vm
	vm.schedLock.Acquire(in.p)
	st := vm.H.Fetch(in.proc, PrState).Int()
	if st == StateRunning {
		// It was re-resumed before we noticed; keep going.
		vm.schedLock.Release(in.p)
		return
	}
	in.flushRegisters()
	vm.H.Store(in.p, in.proc, PrSuspendedContext, in.ctx)
	in.pickNext()
	vm.schedLock.Release(in.p)
}

// processCompleted handles a Process returning from its final context.
func (in *Interp) processCompleted(val object.OOP) {
	vm := in.vm
	// The eval rendezvous result must survive until the caller reads
	// it; evalResult is a root.
	vm.hostMu.Lock()
	if in.proc == vm.evalProc && in.proc != object.Nil {
		vm.evalResult = val
		vm.evalDone = true
	}
	vm.hostMu.Unlock()
	vm.schedLock.Acquire(in.p)
	vm.H.StoreNoCheck(in.proc, PrState, object.FromInt(StateTerminated))
	vm.unlinkFromCurrentList(in.p, in.proc)
	vm.H.StoreNoCheck(in.proc, PrSuspendedContext, object.Nil)
	in.pickNext()
	vm.schedLock.Release(in.p)
}

// terminateCurrentProcess kills the running Process after a VM error.
func (in *Interp) terminateCurrentProcess() {
	if in.proc == object.Nil {
		return
	}
	in.vm.hostMu.Lock()
	if in.proc == in.vm.evalProc {
		in.vm.evalFailed = "process terminated by VM error"
		in.vm.evalResult = object.Nil
		in.vm.evalDone = true
	}
	in.vm.hostMu.Unlock()
	in.processCompleted(object.Nil)
}

// scheduleProcess puts proc (suspended) on the ready queue in state
// Ready. Used from Go when spawning evaluation Processes.
func (vm *VM) scheduleProcess(p *firefly.Proc, proc object.OOP) {
	vm.schedLock.Acquire(p)
	vm.H.StoreNoCheck(proc, PrState, object.FromInt(StateReady))
	pri := int(vm.H.Fetch(proc, PrPriority).Int())
	vm.listAppend(p, vm.readyList(pri), proc)
	vm.schedLock.Release(p)
}

// ---- Semaphores ----

// semWait implements Semaphore>>wait on the current Process.
func (in *Interp) semWait(sem object.OOP) {
	vm := in.vm
	h := vm.H
	in.stats.SemWaits++
	vm.schedLock.Acquire(in.p)
	excess := h.Fetch(sem, SemExcess).Int()
	if excess > 0 {
		h.StoreNoCheck(sem, SemExcess, object.FromInt(excess-1))
		vm.schedLock.Release(in.p)
		return
	}
	// Block: off the ready queue, onto the semaphore's list.
	vm.unlinkFromCurrentList(in.p, in.proc)
	in.parkCurrent(StateBlocked)
	vm.listAppendSem(in.p, sem, in.proc)
	in.pickNext()
	vm.schedLock.Release(in.p)
}

// listAppendSem links proc on a semaphore's waiter list (same layout as
// LinkedList).
func (vm *VM) listAppendSem(p *firefly.Proc, sem, proc object.OOP) {
	vm.listAppend(p, sem, proc)
}

// semSignal implements Semaphore>>signal: wake the first waiter, or
// count an excess signal. The signalling interpreter preempts itself
// when it wakes a higher-priority Process (Smalltalk-80 semantics).
func (in *Interp) semSignal(sem object.OOP) {
	vm := in.vm
	h := vm.H
	in.stats.SemSignals++
	vm.schedLock.Acquire(in.p)
	first := h.Fetch(sem, LLFirst)
	if first == object.Nil {
		h.StoreNoCheck(sem, SemExcess,
			object.FromInt(h.Fetch(sem, SemExcess).Int()+1))
		vm.schedLock.Release(in.p)
		return
	}
	vm.listRemove(in.p, sem, first)
	h.StoreNoCheck(first, PrState, object.FromInt(StateReady))
	pri := int(h.Fetch(first, PrPriority).Int())
	vm.listAppend(in.p, vm.readyList(pri), first)

	if in.proc != object.Nil {
		curPri := int(h.Fetch(in.proc, PrPriority).Int())
		if pri > curPri {
			// Preempt ourselves in favour of the woken Process.
			in.parkCurrent(StateReady)
			h.StoreNoCheck(first, PrState, object.FromInt(StateRunning))
			in.switchToProcess(first)
		}
	}
	vm.schedLock.Release(in.p)
}

// semSignalFromGo signals a semaphore outside any Smalltalk Process
// (timer expiry, input events): the calling interpreter does the work
// but never preempts itself.
func (in *Interp) semSignalFromGo(sem object.OOP) {
	vm := in.vm
	h := vm.H
	in.stats.SemSignals++
	vm.schedLock.Acquire(in.p)
	first := h.Fetch(sem, LLFirst)
	if first == object.Nil {
		h.StoreNoCheck(sem, SemExcess,
			object.FromInt(h.Fetch(sem, SemExcess).Int()+1))
	} else {
		vm.listRemove(in.p, sem, first)
		h.StoreNoCheck(first, PrState, object.FromInt(StateReady))
		pri := int(h.Fetch(first, PrPriority).Int())
		vm.listAppend(in.p, vm.readyList(pri), first)
	}
	vm.schedLock.Release(in.p)
}

// ---- Process primitives' cores ----

// procResume makes target runnable; reports primitive success.
func (in *Interp) procResume(target object.OOP) bool {
	vm := in.vm
	h := vm.H
	vm.schedLock.Acquire(in.p)
	st := h.Fetch(target, PrState).Int()
	if st != StateSuspended {
		vm.schedLock.Release(in.p)
		return st == StateReady || st == StateRunning // resume of runnable: no-op
	}
	h.StoreNoCheck(target, PrState, object.FromInt(StateReady))
	pri := int(h.Fetch(target, PrPriority).Int())
	vm.listAppend(in.p, vm.readyList(pri), target)
	if in.proc != object.Nil {
		curPri := int(h.Fetch(in.proc, PrPriority).Int())
		if pri > curPri {
			in.parkCurrent(StateReady)
			h.StoreNoCheck(target, PrState, object.FromInt(StateRunning))
			in.switchToProcess(target)
		}
	}
	vm.schedLock.Release(in.p)
	return true
}

// procSuspend suspends target (possibly the current Process, possibly
// one running on another interpreter — the asynchronous manipulation
// the paper's reorganization section discusses).
func (in *Interp) procSuspend(target object.OOP) bool {
	vm := in.vm
	h := vm.H
	vm.schedLock.Acquire(in.p)
	if target == in.proc {
		vm.unlinkFromCurrentList(in.p, target)
		in.parkCurrent(StateSuspended)
		in.pickNext()
		vm.schedLock.Release(in.p)
		return true
	}
	st := h.Fetch(target, PrState).Int()
	switch st {
	case StateReady, StateBlocked:
		vm.unlinkFromCurrentList(in.p, target)
		h.StoreNoCheck(target, PrState, object.FromInt(StateSuspended))
	case StateRunning:
		// Running on another interpreter: mark suspended and unlink;
		// that interpreter notices at its next quantum boundary.
		vm.unlinkFromCurrentList(in.p, target)
		h.StoreNoCheck(target, PrState, object.FromInt(StateSuspended))
	}
	vm.schedLock.Release(in.p)
	return true
}

// procTerminate kills target.
func (in *Interp) procTerminate(target object.OOP) bool {
	vm := in.vm
	h := vm.H
	if target == in.proc {
		vm.hostMu.Lock()
		if in.proc == vm.evalProc {
			vm.evalResult = object.Nil
			vm.evalDone = true
		}
		vm.hostMu.Unlock()
		in.processCompleted(object.Nil)
		return true
	}
	vm.schedLock.Acquire(in.p)
	vm.unlinkFromCurrentList(in.p, target)
	h.StoreNoCheck(target, PrState, object.FromInt(StateTerminated))
	h.StoreNoCheck(target, PrSuspendedContext, object.Nil)
	vm.schedLock.Release(in.p)
	return true
}

// procYield gives other Processes at the same priority a chance.
func (in *Interp) procYield() {
	vm := in.vm
	vm.schedLock.Acquire(in.p)
	// Move to the back of our priority's queue and reschedule.
	vm.unlinkFromCurrentList(in.p, in.proc)
	in.parkCurrent(StateReady)
	pri := int(vm.H.Fetch(in.proc, PrPriority).Int())
	vm.listAppend(in.p, vm.readyList(pri), in.proc)
	in.pickNext()
	vm.schedLock.Release(in.p)
}

// canRun answers the paper's replacement for activeProcess queries:
// whether the Process is ready or running (deliberately not
// distinguishing the two, since the answer could change concurrently).
func (in *Interp) canRun(target object.OOP) bool {
	st := in.vm.H.Fetch(target, PrState).Int()
	return st == StateReady || st == StateRunning
}

// ---- Idle loop and device polling ----

// idleStep runs when this interpreter has no Process: poll the ready
// queue cheaply, with the V kernel Delay equivalent between polls. In
// parallel host mode an idle interpreter also yields its OS thread so
// busy processors (and single-core hosts) get the cycles.
func (in *Interp) idleStep() {
	vm := in.vm
	if vm.par {
		runtime.Gosched()
	}
	in.p.AdvanceIdle(in.costs.IdlePoll)
	if !vm.schedLock.TryAcquire(in.p) {
		in.p.CheckYield()
		return
	}
	next := vm.findReady(in.p)
	if next != object.Nil {
		vm.H.StoreNoCheck(next, PrState, object.FromInt(StateRunning))
		in.switchToProcess(next)
	}
	vm.schedLock.Release(in.p)
	in.p.CheckYield()
	if in.proc == object.Nil {
		in.p.Yield()
	}
}

// pollDevices transfers expired delays and pending input events into
// the Smalltalk world ("the interpreter must manipulate
// [the scheduler] asynchronously, in response to input events").
// The device queues live under devMu; each expired entry is popped
// under the mutex but signalled outside it, because the semaphore
// signal takes the virtual scheduler lock and host-mutex critical
// sections must stay brief. No safepoint lies between pop and signal,
// so the raw sem oop cannot go stale.
func (in *Interp) pollDevices() {
	vm := in.vm
	in.p.Advance(in.costs.EventPoll)
	// Timers.
	for {
		vm.devMu.Lock()
		if len(vm.delays) == 0 || vm.delays[0].wake > in.p.Now() {
			vm.devMu.Unlock()
			break
		}
		sem := vm.delays[0].sem
		copy(vm.delays, vm.delays[1:])
		vm.delays = vm.delays[:len(vm.delays)-1]
		vm.devMu.Unlock()
		in.semSignalFromGo(sem)
	}
	// Input events: signal the input semaphore once per pending event.
	for vm.Sensor.HasPending() {
		e, ok := vm.Sensor.Take(in.p)
		if !ok {
			break
		}
		vm.devMu.Lock()
		vm.inputQueue = append(vm.inputQueue, e)
		vm.devMu.Unlock()
		in.semSignalFromGo(vm.Specials.InputSem)
	}
}

// registerDelay arranges for sem to be signalled at wake time.
func (vm *VM) registerDelay(wake firefly.Time, sem object.OOP) {
	vm.devMu.Lock()
	vm.delays = append(vm.delays, delayEntry{wake: wake, sem: sem})
	// Keep sorted by wake time (the queue is tiny).
	for i := len(vm.delays) - 1; i > 0 && vm.delays[i].wake < vm.delays[i-1].wake; i-- {
		vm.delays[i], vm.delays[i-1] = vm.delays[i-1], vm.delays[i]
	}
	vm.devMu.Unlock()
}
