package interp

import (
	"fmt"
	"strconv"

	"mst/internal/bytecode"
	"mst/internal/firefly"
	"mst/internal/object"
	"mst/internal/trace"
)

// Interp is one replicated interpreter: the paper's unit of parallelism
// ("we obtain parallelism by replicating the interpreter itself").
// Each interpreter runs on one virtual processor and executes one
// Smalltalk Process at a time; its registers are GC roots.
type Interp struct {
	vm *VM
	p  *firefly.Proc

	// Registers (roots). ctx is the active context; method/receiver/
	// bytes/home are caches derived from it; proc is the Smalltalk
	// Process being executed.
	ctx      object.OOP
	method   object.OOP
	receiver object.OOP
	bytes    object.OOP
	home     object.OOP // == ctx for method contexts
	proc     object.OOP

	pc      int // index into the bytecode array
	sp      int // slots used in the context's slot area (temps included)
	base    int // first slot field index (CtxFixed or BCtxFixed)
	slotCap int // total slot fields in ctx
	isBlock bool

	// busAccum accrues fractional memory-bus contention penalties.
	busAccum firefly.Time

	// Per-processor replicas (paper §3.2).
	cache     *[cacheSize]mcEntry // method cache (CacheReplicated)
	freeSmall []object.OOP        // free context lists (FreeCtxPerProcessor);
	freeLarge []object.OOP        // NOT roots: flushed at every scavenge

	// stats are this interpreter's activity counters — replicated like
	// the caches so parallel host mode counts without contention (or
	// races); VM.Stats() sums them.
	stats Stats

	// Host-side caches of the executing method, derived from the
	// register roots (NOT roots themselves: re-derived after scavenges
	// via refreshCode, flushed with the method caches). code is the
	// decoded bytecode slice, lits the literal frame, icm the method's
	// inline-cache state (nil when ICs are off).
	code []byte
	lits object.OOP
	icm  *icMethod

	codeCache map[object.OOP][]byte    // bytes oop → decoded code
	ic        map[object.OOP]*icMethod // method oop → inline caches

	// Configuration and cost constants hoisted out of the dispatch loop.
	costs        *firefly.Costs
	probeCost    firefly.Time // per method-cache probe, replication included
	sharedLocked bool         // MethodCache == CacheSharedLocked
	twoWay       bool         // CacheWays == 2
	icPolicy     ICPolicy

	// rec caches the machine's flight recorder (nil = tracing off);
	// profFrames is profSync's reusable frame scratch (see profile.go).
	rec        *trace.Recorder
	profFrames []string

	// msjit tier state (Config.JIT; see jit.go). jfns is the compiled
	// code of the executing method (nil = interpret); jcost its
	// pre-specialized per-bytecode dispatch charge. jitTab is the
	// per-processor method-plan table — a direct-mapped replica keyed by
	// raw method oops, flushed before every scavenge like the method
	// cache.
	jitOn  bool
	jfns   []jitFn
	jcost  firefly.Time
	jleft  int // bytecodes left in the running quantum (jit loop only)
	jitTab []jitEntry
	// jitKeep persists compiled bodies across scavenges: closures
	// capture no raw oops (operands are indices resolved through the
	// registers at run time), so a compiled body stays valid as long as
	// its inline-cache state does — and the icMethod instances survive
	// scavenges by design (rekeyIC). Keyed by host pointer: no rekeying,
	// never iterated. Cleared with the inline caches (jitInvalidate).
	jitKeep map[*icMethod]*jitCode
}

func newInterp(vm *VM, p *firefly.Proc) *Interp {
	in := &Interp{vm: vm, p: p, proc: object.Nil, ctx: object.Nil,
		method: object.Nil, receiver: object.Nil, bytes: object.Nil, home: object.Nil,
		lits:         object.Nil,
		codeCache:    map[object.OOP][]byte{},
		costs:        vm.M.Costs(),
		rec:          vm.M.Recorder(),
		sharedLocked: vm.Cfg.MethodCache == CacheSharedLocked,
		twoWay:       vm.Cfg.CacheWays == 2,
		icPolicy:     vm.Cfg.InlineCache,
	}
	in.probeCost = in.costs.CacheProbe
	if vm.Cfg.MSMode && vm.Cfg.MethodCache == CacheReplicated {
		// The paper notes replication's drawback: "more overhead is
		// involved in access to the cache because it is replicated."
		in.probeCost += in.costs.CacheReplica
	}
	if vm.Cfg.MethodCache == CacheReplicated {
		in.cache = new([cacheSize]mcEntry)
	}
	if in.icPolicy != ICOff {
		in.ic = map[object.OOP]*icMethod{}
		vm.H.AddRootFunc(in.icVisitRoots)
	}
	if vm.Cfg.JIT {
		in.jitOn = true
		in.jitTab = make([]jitEntry, jitTabSize)
		in.jitKeep = map[*icMethod]*jitCode{}
	}
	h := vm.H
	h.AddRoot(&in.ctx)
	h.AddRoot(&in.method)
	h.AddRoot(&in.receiver)
	h.AddRoot(&in.bytes)
	h.AddRoot(&in.home)
	h.AddRoot(&in.proc)
	h.OnPostScavenge(in.flushFreeContexts)
	return in
}

// Proc returns the virtual processor this interpreter runs on.
func (in *Interp) Proc() *firefly.Proc { return in.p }

// CurrentProcess returns the Smalltalk Process this interpreter is
// executing (nil oop when idle). Only the interpreter knows this — the
// paper's reorganization of activeProcess.
func (in *Interp) CurrentProcess() object.OOP { return in.proc }

// setProc switches the current Process register, maintaining the
// machine's count of actively-executing processors (the memory-bus
// contention model's input).
func (in *Interp) setProc(o object.OOP) {
	in.proc = o
	in.p.SetActive(o != object.Nil)
}

func (in *Interp) flushCache() {
	if in.cache != nil {
		*in.cache = [cacheSize]mcEntry{}
	}
}

func (in *Interp) flushFreeContexts() {
	in.freeSmall = in.freeSmall[:0]
	in.freeLarge = in.freeLarge[:0]
}

// Run is the interpreter's work function: quanta until shutdown. A
// panic (VM error in strict mode, heap exhaustion) stops this
// interpreter and fails any pending evaluation instead of crashing the
// host process.
func (in *Interp) Run() {
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("interpreter %d died: %v", in.p.ID(), r)
			in.vm.hostMu.Lock()
			in.vm.errors = append(in.vm.errors, msg)
			in.vm.evalFailed = msg
			in.vm.evalDone = true
			in.vm.dead = true
			in.vm.hostMu.Unlock()
		}
	}()
	for !in.p.Stopped() {
		in.Quantum()
	}
}

// Quantum executes a bounded batch of bytecodes (or an idle poll).
func (in *Interp) Quantum() {
	// Interpreter 0 drains Go-side work queued by VM.Do.
	if in == in.vm.Interps[0] && len(in.vm.pendingWork) > 0 {
		w := in.vm.pendingWork[0]
		in.vm.pendingWork = in.vm.pendingWork[1:]
		w(in.p)
	}
	in.pollDevices()
	if in.proc == object.Nil {
		in.idleStep()
		return
	}
	// Another processor may have suspended or terminated our Process
	// asynchronously (the paper's ProcessorScheduler hazards).
	if st := in.vm.H.Fetch(in.proc, PrState); st.Int() != StateRunning {
		in.abandonCurrent()
		return
	}
	n := in.vm.Cfg.QuantumBytecodes
	if in.jitOn {
		// Tiered dispatch: compiled methods run their pre-bound
		// closures (`fns[pc]()`, no decode switch), everything else
		// falls through to step(). Yield checks, bytecode counting,
		// and the dispatch + bus charges stay per-bytecode and
		// identical to the interpreter loop — except inside a fused
		// group (jitfuse.go), which proves up front that none of its
		// internal safepoints could fire, batches the identical
		// charges, and draws the extra bytecodes from jleft so the
		// quantum covers exactly QuantumBytecodes either way.
		in.jleft = n
		for in.jleft > 0 {
			in.p.CheckYield()
			if in.p.Stopped() || in.proc == object.Nil {
				return
			}
			if fns := in.jfns; fns != nil {
				in.jleft--
				in.stats.Bytecodes++
				in.stats.JITBytecodes++
				in.p.Advance(in.jcost)
				in.busCharge()
				fns[in.pc]()
			} else {
				in.jleft--
				in.step()
			}
		}
		in.p.CheckYield()
		return
	}
	for i := 0; i < n; i++ {
		in.p.CheckYield()
		if in.p.Stopped() || in.proc == object.Nil {
			return
		}
		in.step()
	}
	in.p.CheckYield()
}

// fetchByte reads the next code byte (from the decoded host-side copy
// of the method's bytecode; see codeFor).
func (in *Interp) fetchByte() int {
	b := in.code[in.pc]
	in.pc++
	return int(b)
}

func (in *Interp) fetchI8() int {
	v := in.fetchByte()
	return int(int8(v))
}

func (in *Interp) fetchI16() int {
	hi := in.fetchByte()
	lo := in.fetchByte()
	return int(int16(uint16(hi)<<8 | uint16(lo)))
}

func (in *Interp) fetchU16() int {
	hi := in.fetchByte()
	lo := in.fetchByte()
	return int(uint16(hi)<<8 | uint16(lo))
}

// ---- Operand stack. Slots above sp are always nil so the scavenger
// can scan whole contexts without knowing sp. ----

func (in *Interp) push(v object.OOP) {
	if in.sp >= in.slotCap {
		in.vm.vmError("context stack overflow (sp=%d cap=%d)", in.sp, in.slotCap)
		in.terminateCurrentProcess()
		return
	}
	in.vm.H.Store(in.p, in.ctx, in.base+in.sp, v)
	in.sp++
}

func (in *Interp) pop() object.OOP {
	in.sp--
	idx := in.base + in.sp
	v := in.vm.H.Fetch(in.ctx, idx)
	in.vm.H.StoreNoCheck(in.ctx, idx, object.Nil)
	return v
}

// stackAt peeks n slots below the top (0 = top).
func (in *Interp) stackAt(n int) object.OOP {
	return in.vm.H.Fetch(in.ctx, in.base+in.sp-1-n)
}

// setStackTop replaces the top of stack.
func (in *Interp) setStackTop(v object.OOP) {
	in.vm.H.Store(in.p, in.ctx, in.base+in.sp-1, v)
}

// popN discards n slots.
func (in *Interp) popN(n int) {
	for i := 0; i < n; i++ {
		in.sp--
		in.vm.H.StoreNoCheck(in.ctx, in.base+in.sp, object.Nil)
	}
}

// tempIndex maps a temp number to (object, field index): temps of a
// block context live in its home context.
func (in *Interp) tempSlot(n int) (object.OOP, int) {
	if in.isBlock {
		return in.home, CtxFixed + n
	}
	return in.ctx, CtxFixed + n
}

// step executes one bytecode.
func (in *Interp) step() {
	vm := in.vm
	h := vm.H
	in.stats.Bytecodes++
	in.p.Advance(in.costs.Bytecode)
	in.busCharge()

	op := bytecode.Op(in.fetchByte())
	switch op {
	case bytecode.OpPushSelf:
		in.push(in.receiver)
	case bytecode.OpPushNil:
		in.push(object.Nil)
	case bytecode.OpPushTrue:
		in.push(object.True)
	case bytecode.OpPushFalse:
		in.push(object.False)
	case bytecode.OpPushTemp:
		o, idx := in.tempSlot(in.fetchByte())
		in.push(h.Fetch(o, idx))
	case bytecode.OpPushInstVar:
		in.push(h.Fetch(in.receiver, in.fetchByte()))
	case bytecode.OpPushLiteral:
		in.push(in.literalAt(in.fetchByte()))
	case bytecode.OpPushGlobal:
		assoc := in.literalAt(in.fetchByte())
		in.push(h.Fetch(assoc, AsValue))
	case bytecode.OpPushInt8:
		in.push(object.FromInt(int64(in.fetchI8())))
	case bytecode.OpPushThisContext:
		in.flushRegisters()
		in.push(in.ctx)
	case bytecode.OpDup:
		in.push(in.stackAt(0))
	case bytecode.OpPop:
		in.pop()

	case bytecode.OpStoreTemp:
		o, idx := in.tempSlot(in.fetchByte())
		h.Store(in.p, o, idx, in.stackAt(0))
	case bytecode.OpStoreInstVar:
		h.Store(in.p, in.receiver, in.fetchByte(), in.stackAt(0))
	case bytecode.OpStoreGlobal:
		assoc := in.literalAt(in.fetchByte())
		h.Store(in.p, assoc, AsValue, in.stackAt(0))
	case bytecode.OpPopTemp:
		o, idx := in.tempSlot(in.fetchByte())
		h.Store(in.p, o, idx, in.pop())
	case bytecode.OpPopInstVar:
		h.Store(in.p, in.receiver, in.fetchByte(), in.pop())
	case bytecode.OpPopGlobal:
		assoc := in.literalAt(in.fetchByte())
		h.Store(in.p, assoc, AsValue, in.pop())

	case bytecode.OpJump:
		off := in.fetchI16()
		in.pc += off
	case bytecode.OpJumpFalse, bytecode.OpJumpTrue:
		off := in.fetchI16()
		v := in.pop()
		want := object.True
		if op == bytecode.OpJumpFalse {
			want = object.False
		}
		if v == want {
			in.pc += off
		} else if v != object.True && v != object.False {
			in.mustBeBoolean(v)
		}
	case bytecode.OpPushBlock:
		in.pushBlock()
	case bytecode.OpReturnTop:
		in.returnValue(in.pop(), true)
	case bytecode.OpReturnSelf:
		in.returnValue(in.receiver, true)
	case bytecode.OpBlockReturn:
		in.blockReturn()

	case bytecode.OpSend:
		lit := in.fetchByte()
		nargs := in.fetchByte()
		in.send(in.literalAt(lit), nargs, false, in.pc-3)
	case bytecode.OpSendSuper:
		lit := in.fetchByte()
		nargs := in.fetchByte()
		in.send(in.literalAt(lit), nargs, true, in.pc-3)

	default:
		if bytecode.IsSpecialSend(op) {
			in.specialSend(op, in.pc-1)
			return
		}
		vm.vmError("bad bytecode %d at pc %d", op, in.pc-1)
		in.terminateCurrentProcess()
	}
}

// busCharge accrues the shared memory-bus contention penalty: executing
// alongside other active processors costs extra (paper: competition
// overhead; Firefly: five processors on one bus). Both execution tiers
// charge it identically, once per bytecode.
func (in *Interp) busCharge() {
	if d := in.costs.BusDivisor; d > 0 {
		if k := in.vm.M.ActiveProcs() - 1; k > 0 {
			in.busAccum += firefly.Time(k)
			if in.busAccum >= d {
				in.p.Advance(in.busAccum / d)
				in.busAccum %= d
			}
		}
	}
}

// busChargeN accrues n bytecodes' worth of bus contention in one shot
// (fused groups). The floor-divided accumulator telescopes: n single
// charges at a fixed active-processor count advance exactly what one
// n-scaled charge does, remainder included.
func (in *Interp) busChargeN(n int) {
	if d := in.costs.BusDivisor; d > 0 {
		if k := in.vm.M.ActiveProcs() - 1; k > 0 {
			in.busAccum += firefly.Time(n) * firefly.Time(k)
			if in.busAccum >= d {
				in.p.Advance(in.busAccum / d)
				in.busAccum %= d
			}
		}
	}
}

// literalAt returns literal frame entry i of the current method (the
// frame oop is cached in a register-derived slot; see loadContext).
func (in *Interp) literalAt(i int) object.OOP {
	return in.vm.H.Fetch(in.lits, i)
}

// pushBlock creates a BlockContext for a PushBlock bytecode.
func (in *Interp) pushBlock() {
	vm := in.vm
	nargs := in.fetchByte()
	firstArg := in.fetchByte()
	bodyLen := in.fetchU16()
	initialPC := in.pc
	in.pc += bodyLen

	// Allocation may scavenge; registers are roots, so no handles are
	// needed for the interpreter state itself.
	blk := vm.H.Allocate(in.p, vm.Specials.BlockContext,
		BCtxFixed+BlockCtxSlots, object.FmtPointers)
	h := vm.H
	h.StoreNoCheck(blk, BCtxCaller, object.Nil)
	h.StoreNoCheck(blk, BCtxPC, object.FromInt(int64(initialPC)))
	h.StoreNoCheck(blk, BCtxSP, object.FromInt(0))
	h.Store(in.p, blk, BCtxHome, in.home)
	h.StoreNoCheck(blk, BCtxInfo, object.FromInt(int64(nargs)|int64(firstArg)<<8))
	h.StoreNoCheck(blk, BCtxInitialPC, object.FromInt(int64(initialPC)))
	in.push(blk)
}

// mustBeBoolean reports a conditional jump on a non-Boolean.
func (in *Interp) mustBeBoolean(v object.OOP) {
	in.vm.vmError("mustBeBoolean: jump on %s", in.vm.DescribeOOP(v))
	in.terminateCurrentProcess()
}

// flushRegisters writes pc and sp back into the active context.
func (in *Interp) flushRegisters() {
	if in.ctx == object.Nil {
		return
	}
	h := in.vm.H
	h.StoreNoCheck(in.ctx, CtxPC, object.FromInt(int64(in.pc)))
	h.StoreNoCheck(in.ctx, CtxSP, object.FromInt(int64(in.sp)))
}

// loadContext makes ctx the active context and loads the register cache.
func (in *Interp) loadContext(ctx object.OOP) {
	h := in.vm.H
	in.ctx = ctx
	cls := h.ClassOf(ctx)
	in.isBlock = cls == in.vm.Specials.BlockContext
	if in.isBlock {
		in.home = h.Fetch(ctx, BCtxHome)
		in.base = BCtxFixed
	} else {
		in.home = ctx
		in.base = CtxFixed
	}
	in.method = h.Fetch(in.home, CtxMethod)
	in.receiver = h.Fetch(in.home, CtxReceiver)
	// With the tier on, a resident plan replaces the whole derivation
	// below (the literal-frame fetches and two map probes) with a few
	// field copies; the values installed are identical by construction.
	if !in.jitOn || !in.jitLoadFast() {
		in.bytes = h.Fetch(in.method, CMBytes)
		in.lits = h.Fetch(in.method, CMLiterals)
		in.code = in.codeFor(in.bytes)
		if in.icPolicy != ICOff {
			in.icm = in.icFor(in.method, in.code)
		}
		if in.jitOn {
			in.jitEnter()
		}
	}
	in.pc = int(h.Fetch(ctx, CtxPC).Int())
	in.sp = int(h.Fetch(ctx, CtxSP).Int())
	in.slotCap = h.FieldCount(ctx) - in.base
	if in.vm.prof != nil {
		in.profSync()
	}
}

// DescribeOOP renders an oop for diagnostics (Go-side, no image code).
func (vm *VM) DescribeOOP(o object.OOP) string {
	switch {
	case o.IsInt():
		return strconv.FormatInt(o.Int(), 10)
	case o == object.Nil:
		return "nil"
	case o == object.True:
		return "true"
	case o == object.False:
		return "false"
	case o == object.Invalid:
		return "<invalid>"
	}
	cls := vm.H.ClassOf(o)
	if cls == vm.Specials.String || cls == vm.Specials.Symbol {
		return "'" + vm.GoString(o) + "'"
	}
	if cls == object.Invalid {
		return "<unclassed>"
	}
	name := vm.H.Fetch(cls, ClsName)
	if name != object.Nil && vm.H.Header(name).Format() == object.FmtBytes {
		return "a " + vm.GoString(name)
	}
	return "<obj>"
}
