package interp

import (
	"mst/internal/firefly"
	"mst/internal/jit"
	"mst/internal/object"
)

// The executor half of superinstruction fusion (see internal/jit
// fuse.go for the analysis and the exactness argument). jitBuild
// installs a fused closure over the head singleton wherever the
// analyzer finds a profitable group; the singleton stays reachable as
// the closure's fallback and at every interior pc, so jumps into the
// middle of a group, quantum tails, and bailouts all resume exactly.
//
// A fused closure runs in two phases around one gate:
//
//	gate     — the group fits in the quantum's remaining bytecodes
//	           (jleft) and its worst-case charge fits strictly under
//	           the yield deadline (YieldSlack), so every CheckYield it
//	           skips would have been a no-op; and the context is in
//	           new space or already remembered, so the elided stack
//	           stores could not have charged a store check.
//	phase 1  — pure evaluation into host registers. Every proof the
//	           interpreter's fast paths demand (SmallInteger operands,
//	           no overflow, at: applicability, Boolean branch
//	           condition) is checked here, before any state change;
//	           failure falls back to the head singleton, which re-runs
//	           bytecode 0 from unmodified state (the outer loop has
//	           already charged it, exactly as for a singleton).
//	phase 2  — batched accounting (identical totals to n per-bytecode
//	           charges; the partial sums are unobservable without a
//	           yield) and the group's net state commit: final temp and
//	           ivar stores through the checked Store (charge parity),
//	           surviving stack values, nils where the interpreter's
//	           pops nilled, sp, and the terminal pc/return.
//
// fuseBailLimit is how many consecutive phase-1 proof failures retire
// a fused closure: a group whose operands are never SmallIntegers pays
// the evaluation with no payoff, so it patches itself back to the head
// singleton. Gate failures (quantum tail, yield deadline) are
// transient and do not count.
const fuseBailLimit = 8

// fuseAdmit is the shared gate: the group's n1 extra bytecodes must fit
// in the quantum's remaining budget, its worst-case charge (bound, plus
// the group's worst-case bus share) must land strictly before the yield
// deadline, and the context must be in new space or already remembered
// so the elided stack stores could not have charged a store check.
func (in *Interp) fuseAdmit(n1 int, bound firefly.Time, busDiv firefly.Time) bool {
	if in.jleft < n1 {
		return false
	}
	if busDiv > 0 {
		if k := in.vm.M.ActiveProcs() - 1; k > 0 {
			bound += (in.busAccum+firefly.Time(n1)*firefly.Time(k))/busDiv + 1
		}
	}
	if in.p.YieldSlack() <= bound {
		return false
	}
	h := in.vm.H
	return h.InNewSpace(in.ctx) || h.Header(in.ctx).Remembered()
}

// fuseCharge is the shared batched accounting: identical totals to n1
// per-bytecode charges by the outer loop (the partial sums are
// unobservable without a yield, and the gate proved there is none).
func (in *Interp) fuseCharge(n1 int, charge firefly.Time) {
	in.jleft -= n1
	in.stats.Bytecodes += uint64(n1)
	in.stats.JITBytecodes += uint64(n1)
	in.p.Advance(charge)
	in.busChargeN(n1)
}

// fuseLoadable reports micros that evaluate without any proof and
// without touching the value stack, so a specialized executor can run
// them straight into a host local.
func fuseLoadable(k jit.MicroKind) bool {
	switch k {
	case jit.MLoadTemp, jit.MLoadIVar, jit.MLoadSelf, jit.MConst:
		return true
	}
	return false
}

func (in *Interp) fuseLoad(m jit.Micro) object.OOP {
	switch m.Kind {
	case jit.MLoadTemp:
		return in.vm.H.Fetch(in.home, CtxFixed+int(m.A))
	case jit.MLoadIVar:
		return in.vm.H.Fetch(in.receiver, int(m.A))
	case jit.MLoadSelf:
		return in.receiver
	default: // jit.MConst
		return object.OOP(m.K)
	}
}

// jitFuseRetFn specializes the most common group shape by execution
// count: a proof-free load followed by return-top (^self, ^ivar,
// ^temp, ^constant). No register file, no micro loop, no stack
// traffic — the interpreter's push and the return's pop cancel.
func (in *Interp) jitFuseRetFn(f *jit.Fused, single jitFn) jitFn {
	if f.Term != jit.TermReturn || len(f.Prog) != 1 || f.Pops != 0 ||
		len(f.Push) != 0 || len(f.TempWrites) != 0 || len(f.IVarWrites) != 0 ||
		!fuseLoadable(f.Prog[0].Kind) || f.Ret != f.Prog[0].Dst {
		return nil
	}
	n1 := f.N - 1
	charge := f.Charge
	busDiv := in.costs.BusDivisor
	m := f.Prog[0]
	nextPC := f.NextPC
	return func() {
		if !in.fuseAdmit(n1, charge, busDiv) {
			single()
			return
		}
		v := in.fuseLoad(m)
		in.fuseCharge(n1, charge)
		in.pc = nextPC
		in.returnValue(v, true)
	}
}

// jitFuseCmpBranchFn specializes the loop latch: two proof-free loads,
// a SmallInteger compare, and a conditional jump (the `i <= n` whileTrue
// and to:do: back edges). The compare result feeds the branch directly,
// so the Boolean check disappears with the register file.
func (in *Interp) jitFuseCmpBranchFn(f *jit.Fused, single jitFn, fns []jitFn, pc int) jitFn {
	if f.Term != jit.TermBranch || len(f.Prog) != 3 || f.Pops != 0 ||
		len(f.Push) != 0 || len(f.TempWrites) != 0 || len(f.IVarWrites) != 0 {
		return nil
	}
	ma, mb, mc := f.Prog[0], f.Prog[1], f.Prog[2]
	if mc.Kind != jit.MCompare || !fuseLoadable(ma.Kind) || !fuseLoadable(mb.Kind) ||
		mc.A != ma.Dst || mc.B != mb.Dst || f.Cond != mc.Dst {
		return nil
	}
	n1 := f.N - 1
	charge := f.Charge
	busDiv := in.costs.BusDivisor
	op := mc.Op
	nextPC := f.NextPC
	target := f.Target
	wantTrue := f.Want
	var bails uint32
	return func() {
		if !in.fuseAdmit(n1, charge, busDiv) {
			single()
			return
		}
		a := in.fuseLoad(ma)
		b := in.fuseLoad(mb)
		if !a.IsInt() || !b.IsInt() {
			if bails++; bails >= fuseBailLimit {
				fns[pc] = single
			}
			single()
			return
		}
		bails = 0
		in.fuseCharge(n1, charge)
		if intCompare(op, a.Int(), b.Int()) == wantTrue {
			in.pc = target
		} else {
			in.pc = nextPC
		}
	}
}

func (in *Interp) jitFuseFn(f *jit.Fused, single jitFn, fns []jitFn, pc int) jitFn {
	if fn := in.jitFuseRetFn(f, single); fn != nil {
		return fn
	}
	if fn := in.jitFuseCmpBranchFn(f, single, fns, pc); fn != nil {
		return fn
	}
	vm := in.vm
	h := vm.H
	p := in.p
	n1 := f.N - 1
	charge := f.Charge
	wbound := firefly.Time(len(f.TempWrites)+len(f.IVarWrites)) * in.costs.StoreCheck
	busDiv := in.costs.BusDivisor
	prog := f.Prog
	tw := f.TempWrites
	iw := f.IVarWrites
	pops := f.Pops
	push := f.Push
	term := f.Term
	nextPC := f.NextPC
	target := f.Target
	wantTrue := f.Want
	cond := f.Cond
	ret := f.Ret
	var bails uint32

	bail := func() {
		if bails++; bails >= fuseBailLimit {
			fns[pc] = single
		}
		single()
	}

	return func() {
		if in.jleft < n1 {
			single()
			return
		}
		bound := charge + wbound
		if busDiv > 0 {
			if k := vm.M.ActiveProcs() - 1; k > 0 {
				bound += (in.busAccum+firefly.Time(n1)*firefly.Time(k))/busDiv + 1
			}
		}
		if p.YieldSlack() <= bound {
			single()
			return
		}
		ctx := in.ctx
		if !h.InNewSpace(ctx) && !h.Header(ctx).Remembered() {
			single()
			return
		}

		// Phase 1: pure evaluation.
		var regs [16]object.OOP
		base := in.base
		sp := in.sp
		for pi := range prog {
			m := &prog[pi]
			switch m.Kind {
			case jit.MLoadTemp:
				regs[m.Dst] = h.Fetch(in.home, CtxFixed+int(m.A))
			case jit.MLoadStack:
				regs[m.Dst] = h.Fetch(ctx, base+sp-1-int(m.A))
			case jit.MLoadIVar:
				regs[m.Dst] = h.Fetch(in.receiver, int(m.A))
			case jit.MLoadLit:
				regs[m.Dst] = in.literalAt(int(m.A))
			case jit.MLoadGlobal:
				regs[m.Dst] = h.Fetch(in.literalAt(int(m.A)), AsValue)
			case jit.MLoadSelf:
				regs[m.Dst] = in.receiver
			case jit.MConst:
				regs[m.Dst] = object.OOP(m.K)
			case jit.MArith:
				a, b := regs[m.A], regs[m.B]
				if !a.IsInt() || !b.IsInt() {
					bail()
					return
				}
				v, ok := intArith(m.Op, a.Int(), b.Int())
				if !ok {
					bail()
					return
				}
				regs[m.Dst] = v
			case jit.MCompare:
				a, b := regs[m.A], regs[m.B]
				if !a.IsInt() || !b.IsInt() {
					bail()
					return
				}
				regs[m.Dst] = object.FromBool(intCompare(m.Op, a.Int(), b.Int()))
			case jit.MIdent:
				regs[m.Dst] = object.FromBool(regs[m.A] == regs[m.B])
			case jit.MNotIdent:
				regs[m.Dst] = object.FromBool(regs[m.A] != regs[m.B])
			case jit.MIsNil:
				regs[m.Dst] = object.FromBool(regs[m.A] == object.Nil)
			case jit.MNotNil:
				regs[m.Dst] = object.FromBool(regs[m.A] != object.Nil)
			case jit.MNot:
				switch regs[m.A] {
				case object.True:
					regs[m.Dst] = object.False
				case object.False:
					regs[m.Dst] = object.True
				default:
					bail()
					return
				}
			case jit.MAt:
				v, ok := in.basicAt(regs[m.A], regs[m.B])
				if !ok {
					bail()
					return
				}
				regs[m.Dst] = v
			}
		}
		if term == jit.TermBranch {
			if c := regs[cond]; c != object.True && c != object.False {
				bail()
				return
			}
		}

		// Phase 2: accounting, then commit.
		bails = 0
		in.jleft -= n1
		in.stats.Bytecodes += uint64(n1)
		in.stats.JITBytecodes += uint64(n1)
		p.Advance(charge)
		in.busChargeN(n1)
		for i := range tw {
			h.Store(p, in.home, CtxFixed+int(tw[i].Slot), regs[tw[i].Reg])
		}
		for i := range iw {
			h.Store(p, in.receiver, int(iw[i].Slot), regs[iw[i].Reg])
		}
		bot := base + sp - pops
		for i := range push {
			h.StoreNoCheck(ctx, bot+i, regs[push[i]])
		}
		newSP := sp - pops + len(push)
		for i := base + newSP; i < base+sp; i++ {
			h.StoreNoCheck(ctx, i, object.Nil)
		}
		in.sp = newSP
		switch term {
		case jit.TermFall:
			in.pc = nextPC
		case jit.TermJump:
			in.pc = target
		case jit.TermBranch:
			if (regs[cond] == object.True) == wantTrue {
				in.pc = target
			} else {
				in.pc = nextPC
			}
		case jit.TermReturn:
			in.pc = nextPC
			in.returnValue(regs[ret], true)
		}
	}
}
