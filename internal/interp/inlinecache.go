package interp

import (
	"sort"

	"mst/internal/bytecode"
	"mst/internal/jit"
	"mst/internal/object"
)

// Per-send-site inline caches (an extension beyond the paper; see
// ICPolicy). Each send site of a method — identified by the pc of its
// send opcode — remembers the receiver class(es) it has dispatched on
// and the bound method, so a repeated send to the same class skips the
// method cache entirely. A monomorphic site (ICMono) holds one binding
// that is rebound on class change, Deutsch–Schiffman style; a
// polymorphic site (ICPoly) grows up to icWays bindings, Hölzle-style.
//
// Like the method caches, inline caches key on raw oops and are flushed
// before every scavenge and on every method install.

// icWays is the polymorphic inline cache capacity per send site.
const icWays = 8

// icEntry is one class→method binding of a send site.
type icEntry struct {
	class  object.OOP
	method object.OOP
	prim   int
}

// icSite is the inline cache of one send site.
type icSite struct {
	n       int  // bound entries
	mega    bool // ICPoly: overflowed; probes go straight to the method cache
	entries [icWays]icEntry
}

// probe scans the site for class.
func (s *icSite) probe(class object.OOP) (object.OOP, int, bool) {
	for i := 0; i < s.n; i++ {
		if e := &s.entries[i]; e.class == class {
			return e.method, e.prim, true
		}
	}
	return object.Nil, 0, false
}

// icMethod holds the inline caches of one compiled method: the sorted
// pcs of its send opcodes and one icSite per send site. The method oop
// is kept so the structure can be re-keyed after a scavenge.
type icMethod struct {
	method object.OOP
	pcs    []int32
	sites  []icSite
}

// siteIndex maps a send opcode's pc to its site index (binary search
// over the sorted pc list), or -1 when pc is not a known send site.
func (m *icMethod) siteIndex(pc int) int {
	lo, hi := 0, len(m.pcs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(m.pcs[mid]) < pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.pcs) && int(m.pcs[lo]) == pc {
		return lo
	}
	return -1
}

// icFor returns (creating on first use) the inline-cache state for
// method, whose decoded bytecode is code. The method header's send-site
// count serves as a zero-site fast path; the bytecode scan is the
// source of truth for the site list.
func (in *Interp) icFor(method object.OOP, code []byte) *icMethod {
	if m, ok := in.ic[method]; ok {
		return m
	}
	m := &icMethod{method: method}
	if headerSendSites(in.vm.H.Fetch(method, CMHeader)) != 0 {
		pcs := bytecode.SendSites(code)
		m.pcs = make([]int32, len(pcs))
		m.sites = make([]icSite, len(pcs))
		for i, pc := range pcs {
			m.pcs[i] = int32(pc)
		}
	}
	in.ic[method] = m
	return m
}

// icFill (re)binds a site after a miss resolved through the method
// cache / dictionary walk.
func (in *Interp) icFill(site *icSite, class, method object.OOP, prim int) {
	in.p.Advance(in.costs.ICFill)
	in.stats.ICFills++
	if in.icPolicy == ICMono || site.n == 0 {
		site.entries[0] = icEntry{class, method, prim}
		site.n = 1
		return
	}
	if site.n < icWays {
		if site.n == 1 {
			in.stats.ICPolySites++
		}
		site.entries[site.n] = icEntry{class, method, prim}
		site.n++
		return
	}
	// The site has seen more classes than a PIC holds: it is
	// megamorphic. Rather than thrash the entries (a fill per send,
	// near-zero hits), retire the site — Hölzle's PICs rewrite such
	// sends to call the generic lookup directly, which here means the
	// plain method-cache path.
	site.mega = true
	site.n = 0
	in.stats.ICMegaSites++
	if in.jitOn {
		// The compiled body baked in "probe this site"; retirement
		// changes the site's send protocol, so the template tier bails
		// to the interpreter and refuses to recompile this method.
		in.jitBlacklist(in.method)
		in.jitDeopt(jit.DeoptMegamorphic)
	}
}

// flushIC drops every inline-cache binding (a method install made class
// →method bindings stale). Unlike the method caches, inline caches
// survive scavenges: their oops are registered as root slots (see
// icVisitRoots) and re-keyed afterwards (rekeyIC), the way production
// VMs patch inline caches during GC instead of discarding them.
func (in *Interp) flushIC() {
	for k := range in.ic {
		delete(in.ic, k)
	}
	in.icm = nil
}

// icVisitRoots presents every oop held by the inline caches to the
// scavenger as updatable root slots. Registered only when ICs are on,
// so the default configuration's root set — and therefore its scavenge
// work and virtual timing — is untouched.
//
// The methods are visited in sorted-oop order, NOT map order: the
// scavenger copies survivors in the order it first reaches them, so
// root order decides to-space addresses, which decide method-cache
// hashing and hence virtual timing. Go map iteration order would make
// every IC-enabled run differ (the determinism CI job caught this).
//
// The parallel scavenger leans on the same contract: newParScav
// (internal/heap/parscavenge.go) deals root slots round-robin across
// its worker deques in visit order, so a stable visit order is what
// makes the deterministic-mode work partition — and the simulated
// scavenge times derived from it — reproducible.
func (in *Interp) icVisitRoots(visit func(*object.OOP)) {
	keys := make([]object.OOP, 0, len(in.ic))
	for k := range in.ic {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		m := in.ic[k]
		visit(&m.method)
		for i := range m.sites {
			s := &m.sites[i]
			for j := 0; j < s.n; j++ {
				visit(&s.entries[j].class)
				visit(&s.entries[j].method)
			}
		}
	}
}

// rekeyIC rebuilds the method→icMethod map after a scavenge moved the
// key oops (the values' embedded oops were updated as roots).
func (in *Interp) rekeyIC() {
	if len(in.ic) == 0 {
		return
	}
	fresh := make(map[object.OOP]*icMethod, len(in.ic))
	for _, m := range in.ic {
		fresh[m.method] = m
	}
	in.ic = fresh
}

// flushCode drops the decoded-bytecode cache (keyed by raw bytes oops).
func (in *Interp) flushCode() {
	for k := range in.codeCache {
		delete(in.codeCache, k)
	}
	in.code = nil
}

// codeFor returns the decoded code bytes of a method's bytecode object,
// caching the copy so the dispatch loop reads a Go slice instead of
// going through the heap per byte.
func (in *Interp) codeFor(bytes object.OOP) []byte {
	if c, ok := in.codeCache[bytes]; ok {
		return c
	}
	c := in.vm.H.Bytes(bytes)
	in.codeCache[bytes] = c
	return c
}

// refreshCode re-derives the host-side caches of the executing method
// after a scavenge moved everything (the register roots were updated by
// the scavenger; the derived slices and inline-cache pointer were not).
func (in *Interp) refreshCode() {
	if in.method == object.Nil {
		in.code = nil
		in.lits = object.Nil
		in.icm = nil
		return
	}
	in.lits = in.vm.H.Fetch(in.method, CMLiterals)
	in.code = in.codeFor(in.bytes)
	if in.icPolicy != ICOff {
		in.icm = in.icFor(in.method, in.code)
	}
}
