package interp

import (
	"fmt"
	"strings"

	"mst/internal/bytecode"
	"mst/internal/compiler"
	"mst/internal/firefly"
	"mst/internal/object"
)

// classEnv adapts a class to the compiler's name-resolution interface.
type classEnv struct {
	vm       *VM
	instVars []string
}

// EnvForClass builds a compiler.Env resolving instance variables from
// the class's (inherited) declaration order and globals from the system
// dictionary; capitalized unknowns auto-declare as globals so kernel
// sources may forward-reference classes.
func (vm *VM) EnvForClass(class object.OOP) compiler.Env {
	return classEnv{vm: vm, instVars: vm.InstVarNamesOf(class)}
}

// InstVarNamesOf returns the full (superclass-first) instance variable
// list of class.
func (vm *VM) InstVarNamesOf(class object.OOP) []string {
	var chain []object.OOP
	for c := class; c != object.Nil && c != object.Invalid; c = vm.H.Fetch(c, ClsSuperclass) {
		chain = append(chain, c)
	}
	var names []string
	for i := len(chain) - 1; i >= 0; i-- {
		ivn := vm.H.Fetch(chain[i], ClsInstVarNames)
		n := vm.H.FieldCount(ivn)
		for j := 0; j < n; j++ {
			names = append(names, vm.GoString(vm.H.Fetch(ivn, j)))
		}
	}
	return names
}

func (e classEnv) InstVarIndex(name string) (int, bool) {
	for i, n := range e.instVars {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

func (e classEnv) IsGlobal(name string) bool {
	if e.vm.SysDictAt(name) != object.Invalid || e.vm.sysDictFind(name) != object.Invalid {
		return true
	}
	// Capitalized names auto-declare (forward references during file-in).
	return name[0] >= 'A' && name[0] <= 'Z'
}

// MaterializeMethod turns a compiled method into a CompiledMethod heap
// object owned by methodClass. MAY GC.
func (vm *VM) MaterializeMethod(p *firefly.Proc, m *compiler.Method, methodClass object.OOP, category string) object.OOP {
	hs := vm.H.Handles(p)
	defer hs.Close()
	mcH := hs.Add(methodClass)

	litsH := hs.Add(vm.NewArray(p, len(m.Literals)))
	for i, l := range m.Literals {
		v := vm.materializeLit(p, l)
		vm.H.Store(p, litsH.Get(), i, v)
	}

	bytesH := hs.Add(vm.H.Allocate(p, vm.Specials.ByteArray, len(m.Code), object.FmtBytes))
	vm.H.WriteBytes(bytesH.Get(), m.Code)

	selH := hs.Add(vm.InternSymbol(p, m.Selector))
	catH := hs.Add(vm.NewString(p, category))
	srcH := hs.Add(vm.NewString(p, m.Source))

	mo := vm.H.Allocate(p, vm.Specials.CompiledMethod, MethodInstSize, object.FmtPointers)
	vm.H.StoreNoCheck(mo, CMHeader,
		encodeMethodHeader(m.NumArgs, m.NumTemps, m.MaxStack, m.Primitive, m.Clean, m.NumSendSites))
	vm.H.Store(p, mo, CMLiterals, litsH.Get())
	vm.H.Store(p, mo, CMBytes, bytesH.Get())
	vm.H.Store(p, mo, CMSelector, selH.Get())
	vm.H.Store(p, mo, CMMethodClass, mcH.Get())
	vm.H.Store(p, mo, CMCategory, catH.Get())
	vm.H.Store(p, mo, CMSource, srcH.Get())
	return mo
}

func (vm *VM) materializeLit(p *firefly.Proc, l compiler.Lit) object.OOP {
	switch l.Kind {
	case compiler.LitInt:
		return object.FromInt(l.Int)
	case compiler.LitFloat:
		return vm.NewFloat(p, l.Flt)
	case compiler.LitChar:
		return vm.CharFor(p, l.Rune)
	case compiler.LitString:
		return vm.NewString(p, l.Str)
	case compiler.LitSymbol:
		return vm.InternSymbol(p, l.Str)
	case compiler.LitTrue:
		return object.True
	case compiler.LitFalse:
		return object.False
	case compiler.LitNil:
		return object.Nil
	case compiler.LitGlobal:
		return vm.SysDictDefine(p, l.Str, object.Invalid)
	case compiler.LitArray:
		hs := vm.H.Handles(p)
		defer hs.Close()
		ah := hs.Add(vm.NewArray(p, len(l.Arr)))
		for i, e := range l.Arr {
			v := vm.materializeLit(p, e)
			vm.H.Store(p, ah.Get(), i, v)
		}
		return ah.Get()
	default:
		vm.vmError("unknown literal kind %d", l.Kind)
		return object.Nil
	}
}

// CompileAndInstall compiles source as a method of class and installs it
// in the class's method dictionary, flushing the method caches. MAY GC.
func (vm *VM) CompileAndInstall(p *firefly.Proc, class object.OOP, source, category string) (object.OOP, error) {
	hs := vm.H.Handles(p)
	defer hs.Close()
	ch := hs.Add(class)
	m, err := compiler.CompileMethod(source, vm.EnvForClass(class))
	if err != nil {
		return object.Nil, err
	}
	mo := vm.MaterializeMethod(p, m, ch.Get(), category)
	moH := hs.Add(mo)
	vm.installInDict(p, ch, moH)
	return moH.Get(), nil
}

// installInDict inserts the method into the class's method dictionary
// (growing if needed) under its selector, then flushes every cache.
// Both the class and the method arrive as handles because growing the
// dictionary can scavenge.
func (vm *VM) installInDict(p *firefly.Proc, classH, moH heap2Handle) {
	h := vm.H
	dict := h.Fetch(classH.Get(), ClsMethodDict)
	keys := h.Fetch(dict, MDKeys)
	n := h.FieldCount(keys)
	tally := int(h.Fetch(dict, MDTally).Int())
	if (tally+1)*2 > n {
		vm.growMethodDict(p, classH.Get())
		dict = h.Fetch(classH.Get(), ClsMethodDict)
		keys = h.Fetch(dict, MDKeys)
		n = h.FieldCount(keys)
	}
	sel := h.Fetch(moH.Get(), CMSelector)
	values := h.Fetch(dict, MDValues)
	idx := int(h.IdentityHash(sel)) & (n - 1)
	for i := 0; i < n; i++ {
		j := (idx + i) & (n - 1)
		k := h.Fetch(keys, j)
		if k == sel {
			h.Store(p, values, j, moH.Get()) // redefinition
			vm.flushAllCaches()
			return
		}
		if k == object.Nil {
			h.Store(p, keys, j, sel)
			h.Store(p, values, j, moH.Get())
			h.StoreNoCheck(dict, MDTally, object.FromInt(int64(tally+1)))
			vm.flushAllCaches()
			return
		}
	}
	vm.vmError("method dictionary full after grow")
}

// heap2Handle is the heap handle interface used by installInDict (it
// must survive the allocations in growMethodDict).
type heap2Handle interface{ Get() object.OOP }

func (vm *VM) growMethodDict(p *firefly.Proc, class object.OOP) {
	h := vm.H
	hs := h.Handles(p)
	defer hs.Close()
	ch := hs.Add(class)

	oldDict := h.Fetch(class, ClsMethodDict)
	oldKeysH := hs.Add(h.Fetch(oldDict, MDKeys))
	oldValsH := hs.Add(h.Fetch(oldDict, MDValues))
	n := h.FieldCount(oldKeysH.Get())

	newKeysH := hs.Add(vm.NewArray(p, n*2))
	newValsH := hs.Add(vm.NewArray(p, n*2))
	dictH := hs.Add(vm.allocFields(p, vm.Specials.MethodDictionary, MethodDictInstSize))
	h.StoreNoCheck(dictH.Get(), MDTally, h.Fetch(oldDict, MDTally))
	h.Store(p, dictH.Get(), MDKeys, newKeysH.Get())
	h.Store(p, dictH.Get(), MDValues, newValsH.Get())

	for i := 0; i < n; i++ {
		k := h.Fetch(oldKeysH.Get(), i)
		if k == object.Nil {
			continue
		}
		v := h.Fetch(oldValsH.Get(), i)
		idx := int(h.IdentityHash(k)) & (2*n - 1)
		for j := 0; j < 2*n; j++ {
			s := (idx + j) & (2*n - 1)
			if h.Fetch(newKeysH.Get(), s) == object.Nil {
				h.Store(p, newKeysH.Get(), s, k)
				h.Store(p, newValsH.Get(), s, v)
				break
			}
		}
	}
	h.Store(p, ch.Get(), ClsMethodDict, dictH.Get())
}

func (vm *VM) flushAllCaches() {
	if vm.sharedCache != nil {
		*vm.sharedCache = [cacheSize]mcEntry{}
	}
	for _, in := range vm.Interps {
		in.flushCache()
		// Inline caches bind class→method; a (re)definition makes any
		// of them stale. The decoded-code cache stays: bytecode objects
		// are immutable once installed.
		in.flushIC()
		in.refreshCode()
		// Compiled templates bake in IC-site identities; a method
		// install resets the inline-cache state they bind to, so the
		// whole tier — plans and persistent bodies — goes with it.
		in.jitInvalidate()
	}
}

// CreateClass builds a new class (with metaclass) at runtime, registers
// it as a global, and links it under its superclass. MAY GC.
func (vm *VM) CreateClass(p *firefly.Proc, name string, super object.OOP,
	instVars []string, kind ClassKind, category string) object.OOP {
	h := vm.H
	hs := h.Handles(p)
	defer hs.Close()
	superH := hs.Add(super)

	superSize := 0
	if super != object.Nil {
		superSize, _ = DecodeFormat(h.Fetch(super, ClsFormat))
		if kind == KindFixed {
			// Indexability is inherited unless redeclared.
			_, superKind := DecodeFormat(h.Fetch(super, ClsFormat))
			if superKind != KindFixed {
				kind = superKind
			}
		}
	}
	instSize := superSize + len(instVars)

	clsH := hs.Add(vm.allocFields(p, object.Nil, ClassInstSize))
	metaH := hs.Add(vm.allocFields(p, vm.Specials.Metaclass, ClassInstSize))
	h.SetClass(p, clsH.Get(), metaH.Get())

	fill := func(target heap2Handle, nameStr string, isMeta bool) {
		nm := vm.InternSymbol(p, nameStr)
		h.Store(p, target.Get(), ClsName, nm)
		d := vm.newMethodDict(p)
		h.Store(p, target.Get(), ClsMethodDict, d)
		org := vm.NewString(p, "")
		h.Store(p, target.Get(), ClsOrganization, org)
		cat := vm.NewString(p, category)
		h.Store(p, target.Get(), ClsCategory, cat)
		com := vm.NewString(p, "")
		h.Store(p, target.Get(), ClsComment, com)
		sub := vm.NewArray(p, 0)
		h.Store(p, target.Get(), ClsSubclasses, sub)
		if isMeta {
			h.StoreNoCheck(target.Get(), ClsFormat, EncodeFormat(ClassInstSize, KindFixed))
		}
	}
	fill(clsH, name, false)
	fill(metaH, name+" class", true)

	h.StoreNoCheck(clsH.Get(), ClsFormat, EncodeFormat(instSize, kind))
	h.Store(p, clsH.Get(), ClsSuperclass, superH.Get())
	ivnH := hs.Add(vm.NewArray(p, len(instVars)))
	for i, n := range instVars {
		s := vm.NewString(p, n)
		h.Store(p, ivnH.Get(), i, s)
	}
	h.Store(p, clsH.Get(), ClsInstVarNames, ivnH.Get())
	h.Store(p, metaH.Get(), ClsInstVarNames, vm.NewArray(p, 0))
	h.Store(p, metaH.Get(), ClsThisClass, clsH.Get())

	// Metaclass chain: new class's metaclass under super's metaclass.
	if superH.Get() == object.Nil {
		h.Store(p, metaH.Get(), ClsSuperclass, vm.Specials.Class)
	} else {
		h.Store(p, metaH.Get(), ClsSuperclass, h.ClassOf(superH.Get()))
	}

	// Link into the superclass's subclasses array (copy-grow).
	if superH.Get() != object.Nil {
		old := h.Fetch(superH.Get(), ClsSubclasses)
		oldH := hs.Add(old)
		n := h.FieldCount(old)
		grown := vm.NewArray(p, n+1)
		for i := 0; i < n; i++ {
			h.Store(p, grown, i, h.Fetch(oldH.Get(), i))
		}
		h.Store(p, grown, n, clsH.Get())
		h.Store(p, superH.Get(), ClsSubclasses, grown)
	}

	vm.SysDictDefine(p, name, clsH.Get())
	return clsH.Get()
}

// newMethodDict allocates an empty method dictionary at runtime.
func (vm *VM) newMethodDict(p *firefly.Proc) object.OOP {
	const capacity = 8
	hs := vm.H.Handles(p)
	defer hs.Close()
	dH := hs.Add(vm.allocFields(p, vm.Specials.MethodDictionary, MethodDictInstSize))
	vm.H.StoreNoCheck(dH.Get(), MDTally, object.FromInt(0))
	k := vm.NewArray(p, capacity)
	vm.H.Store(p, dH.Get(), MDKeys, k)
	v := vm.NewArray(p, capacity)
	vm.H.Store(p, dH.Get(), MDValues, v)
	return dH.Get()
}

// ---- Evaluation ----

// NewProcessForMethod wraps a zero-argument method in a fresh Process
// (suspended). MAY GC.
func (vm *VM) NewProcessForMethod(p *firefly.Proc, method, receiver object.OOP, priority int) object.OOP {
	h := vm.H
	hs := h.Handles(p)
	defer hs.Close()
	mH := hs.Add(method)
	rH := hs.Add(receiver)

	hdr := h.Fetch(method, CMHeader)
	slots := SmallCtxSlots
	if headerNumTemps(hdr)+headerMaxStack(hdr)+2 > SmallCtxSlots {
		slots = LargeCtxSlots
	}
	ctxH := hs.Add(vm.allocFields(p, vm.Specials.MethodContext, CtxFixed+slots))
	h.StoreNoCheck(ctxH.Get(), CtxSender, object.Nil)
	h.StoreNoCheck(ctxH.Get(), CtxPC, object.FromInt(0))
	h.StoreNoCheck(ctxH.Get(), CtxSP, object.FromInt(int64(headerNumTemps(hdr))))
	h.Store(p, ctxH.Get(), CtxMethod, mH.Get())
	h.Store(p, ctxH.Get(), CtxReceiver, rH.Get())

	proc := vm.allocFields(p, vm.Specials.Process, ProcessInstSize)
	h.Store(p, proc, PrSuspendedContext, ctxH.Get())
	h.StoreNoCheck(proc, PrPriority, object.FromInt(int64(priority)))
	h.StoreNoCheck(proc, PrState, object.FromInt(StateSuspended))
	return proc
}

// EvalResult reports one evaluation.
type EvalResult struct {
	Value  object.OOP
	Reason firefly.StopReason
	Failed string // non-empty when the Process died on a VM error
}

// Do executes f on interpreter 0's virtual processor inside the machine
// loop. Heap-mutating work initiated from Go (method installation,
// evaluation setup) must go through Do once the machine has run: the
// host main goroutine may not touch virtual locks while processors are
// parked mid-acquisition.
func (vm *VM) Do(f func(p *firefly.Proc)) error {
	// done is written by interpreter 0 and read by the stop predicate,
	// which in parallel host mode runs at every processor's safepoints
	// — hence the hostMu handshake.
	done := false
	vm.pendingWork = append(vm.pendingWork, func(p *firefly.Proc) {
		f(p)
		vm.hostMu.Lock()
		done = true
		vm.hostMu.Unlock()
	})
	reason := vm.M.Run(func() bool {
		vm.hostMu.Lock()
		d := done || vm.dead
		vm.hostMu.Unlock()
		return d
	})
	if vm.dead {
		return fmt.Errorf("interp: machine dead: %s", vm.evalFailed)
	}
	if !done {
		return fmt.Errorf("interp: queued work did not run: %v", reason)
	}
	return nil
}

// InstallSource compiles and installs method source into class, safely
// from Go, through the machine loop.
func (vm *VM) InstallSource(class object.OOP, source, category string) error {
	var installErr error
	err := vm.Do(func(p *firefly.Proc) {
		_, installErr = vm.CompileAndInstall(p, class, source, category)
	})
	if err != nil {
		return err
	}
	return installErr
}

// Evaluate compiles source as a DoIt, runs it as a Process at
// UserPriority, and drives the machine until it completes. Background
// Processes spawned earlier keep running during the evaluation. Only one
// Evaluate may be active at a time.
func (vm *VM) Evaluate(source string) (EvalResult, error) {
	m, err := compiler.CompileExpression(source, vm.EnvForClass(vm.Specials.UndefinedObject))
	if err != nil {
		return EvalResult{}, fmt.Errorf("interp: compile DoIt: %w", err)
	}
	vm.evalResult = object.Nil
	vm.evalDone = false
	vm.evalFailed = ""
	if err := vm.Do(func(p *firefly.Proc) {
		mo := vm.MaterializeMethod(p, m, vm.Specials.UndefinedObject, "doits")
		proc := vm.NewProcessForMethod(p, mo, object.Nil, UserPriority)
		vm.hostMu.Lock()
		vm.evalProc = proc
		vm.hostMu.Unlock()
		vm.scheduleProcess(p, proc)
	}); err != nil {
		return EvalResult{}, err
	}

	reason := vm.M.Run(func() bool {
		vm.hostMu.Lock()
		d := vm.evalDone
		vm.hostMu.Unlock()
		return d
	})
	res := EvalResult{Value: vm.evalResult, Reason: reason, Failed: vm.evalFailed}
	vm.evalProc = object.Nil
	if reason != firefly.StopUntil && !vm.evalDone {
		return res, fmt.Errorf("interp: evaluation did not complete: %v", reason)
	}
	if res.Failed != "" {
		return res, fmt.Errorf("interp: %s", res.Failed)
	}
	return res, nil
}

// StartInterpreters installs every interpreter's run loop on its
// processor. Call once, after Genesis and file-in.
func (vm *VM) StartInterpreters() {
	for i, in := range vm.Interps {
		vm.M.Start(i, func(p *firefly.Proc) { in.Run() })
	}
}

// Disassemble renders a CompiledMethod's bytecode (the decompiler behind
// the decompile benchmark).
func (vm *VM) Disassemble(method object.OOP) string {
	h := vm.H
	code := h.Bytes(h.Fetch(method, CMBytes))
	lits := h.Fetch(method, CMLiterals)
	sel := h.Fetch(method, CMSelector)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", vm.SymbolName(sel))
	b.WriteString(bytecode.Disassemble(code, func(i int) string {
		return vm.DescribeOOP(h.Fetch(lits, i))
	}))
	return b.String()
}
