package interp

import (
	"mst/internal/bytecode"
	"mst/internal/firefly"
	"mst/internal/jit"
	"mst/internal/object"
	"mst/internal/trace"
)

// The msjit execution tier: hot methods are template-compiled (see
// internal/jit) into pc-indexed arrays of pre-bound Go closures —
// operands, literal oops, and inline-cache sites resolved once, at
// compile time — and the quantum loop runs `fns[pc]()` with no
// fetch/decode switch. Each closure performs exactly what one step()
// iteration performs and charges exactly what it charges, so virtual
// times, counters, goldens, and fingerprints are bit-identical between
// tiers; the payoff is host nanoseconds only.
//
// The tier state is strictly per-interpreter (the paper's replication
// discipline): each processor owns its plan table, hotness counters,
// and compiled bodies, so parallel host mode compiles without locks.
// The plan table keys by raw method oops and is discarded before every
// scavenge (vm.go OnPreScavenge), like the method cache. The compiled
// bodies capture no raw oops at all — operands are indices resolved
// through the interpreter registers, send sites are host pointers the
// scavenger updates in place — so they survive scavenges (keyed by the
// equally durable icMethod instances) and die only at the
// method-install safepoint that resets the inline caches
// (flushAllCaches) or on a snapshot.
//
// Deopt is trivial by construction: every closure stores the next pc
// into in.pc before doing anything else, so abandoning compiled code is
// just `in.jfns = nil` — the interpreter resumes at the next bytecode
// boundary with no state reconstruction. Reasons: megamorphic IC
// retirement (icFill), decompiler/debugger attach (PrimDecompile),
// snapshot (primSnapshot), uncommon bytecodes (thisContext, compiled as
// a trap), and doesNotUnderstand: (sendDNU).

// jitFrameTag marks profiler frames whose busy ticks accrued while the
// method ran as compiled closures (selector-profiler tier attribution).
const jitFrameTag = trace.JITTag

// jitFn is one compiled bytecode instance, pre-bound to its interpreter.
type jitFn func()

// jitCode is one method's compiled form in one interpreter's cache.
type jitCode struct {
	fns  []jitFn      // indexed by pc; nil at operand bytes
	cost firefly.Time // per-bytecode dispatch charge (jit.Program.DispatchCost)
	n    int          // instruction count (observability)
}

// jitTabSize is the per-processor method-plan table size (entries,
// power of two, direct-mapped). Collisions evict: the loser re-warms
// through jitEnter if it runs again.
const jitTabSize = 4096

func jitTabIndex(method object.OOP) int {
	return int((uint64(method) >> 3) & (jitTabSize - 1))
}

// jitEntry is one method's tier state: the hotness counter, the
// compiled form once hot, and the activation plan — everything
// loadContext re-derives on every context switch (literal-frame
// fetches, the code and inline-cache map probes, the header decode),
// captured once per method. Plans hold raw oops and are only ever
// consulted while the caches are live: the whole table is discarded
// before every scavenge and at the method-install safepoint.
type jitEntry struct {
	method object.OOP // Invalid = empty slot
	count  uint32     // loads seen, toward jit.CompileThreshold
	bad    bool       // ineligible (undecodable, megamorphic, trapped)
	large  bool       // needs a large context
	ntemps int        // temp count from the method header
	bytes  object.OOP
	lits   object.OOP
	code   []byte
	icm    *icMethod
	jc     *jitCode // compiled form; nil until hot
}

// jitEnter, called from loadContext's slow path after the generic
// derivation, claims (or re-claims) the method's plan slot so every
// later load and activation of the method takes the fast path. The
// previous occupant of a colliding slot loses its plan and hotness.
// A body compiled before the last scavenge is resurrected from
// jitKeep: a scavenge invalidates the plans (raw oops), never the
// compiled code.
func (in *Interp) jitEnter() {
	in.jfns = nil
	if in.method == object.Nil {
		return
	}
	hdr := in.vm.H.Fetch(in.method, CMHeader)
	ntemps := headerNumTemps(hdr)
	e := &in.jitTab[jitTabIndex(in.method)]
	*e = jitEntry{
		method: in.method,
		count:  1,
		large:  ntemps+headerMaxStack(hdr)+2 > SmallCtxSlots,
		ntemps: ntemps,
		bytes:  in.bytes,
		lits:   in.lits,
		code:   in.code,
		icm:    in.icm,
	}
	if in.icm != nil {
		if jc, ok := in.jitKeep[in.icm]; ok {
			e.jc = jc
			in.jfns = jc.fns
			in.jcost = jc.cost
		}
	}
}

// jitLoadFast is loadContext's plan-table hit path: install the cached
// derivation and either enter compiled code or advance the hotness
// counter. Reports false (and leaves the registers for the generic
// path) when the method has no resident plan.
func (in *Interp) jitLoadFast() bool {
	e := &in.jitTab[jitTabIndex(in.method)]
	if e.method != in.method {
		in.jfns = nil
		return false
	}
	in.bytes = e.bytes
	in.lits = e.lits
	in.code = e.code
	in.icm = e.icm
	if jc := e.jc; jc != nil {
		in.jfns = jc.fns
		in.jcost = jc.cost
		return true
	}
	in.jfns = nil
	if !e.bad {
		e.count++
		if e.count >= jit.CompileThreshold {
			in.jitCompile(e)
		}
	}
	return true
}

// jitCompile template-compiles the current method into its plan entry.
// Compilation is host work only: it charges no virtual time and
// touches no simulated state, so det and parallel runs stay
// bit-identical with the tier on.
func (in *Interp) jitCompile(e *jitEntry) {
	// Only monomorphic/polymorphic-stable methods: a method that has
	// already retired a send site as megamorphic stays interpreted.
	if e.icm != nil {
		for i := range e.icm.sites {
			if e.icm.sites[i].mega {
				e.bad = true
				return
			}
		}
	}
	// A body compiled before a forget (or a plan eviction) is
	// resurrected rather than rebuilt: the inline-cache state it binds
	// to is unchanged, and resurrection is not a compile (no event, no
	// counter — the tier state just came back).
	if e.icm != nil {
		if jc, ok := in.jitKeep[e.icm]; ok {
			e.jc = jc
			in.jfns = jc.fns
			in.jcost = jc.cost
			return
		}
	}
	prog, err := jit.Compile(e.code)
	if err != nil {
		e.bad = true
		return
	}
	prog.Specialize(in.costs)
	jc := in.jitBuild(prog)
	e.jc = jc
	if e.icm != nil {
		in.jitKeep[e.icm] = jc
	}
	in.jfns = jc.fns
	in.jcost = jc.cost
	in.stats.JITCompiles++
	if in.rec != nil {
		h := in.vm.H
		name := ""
		if sel := h.Fetch(e.method, CMSelector); sel != object.Nil && sel.IsPtr() &&
			h.Header(sel).Format() == object.FmtBytes {
			name = string(h.Bytes(sel))
		}
		in.rec.Emit(trace.KJITCompile, in.p.ID(), int64(in.p.Now()), int64(jc.n), 0, name)
	}
}

// jitActivate is the tier's fast method activation: when the callee has
// a resident plan and a recyclable context on this processor's free
// list, the header decode, the handle dance (a free-list pop cannot
// scavenge), and loadContext's re-derivation all disappear. The heap
// stores, virtual charges, stats, and trace emissions are exactly the
// generic path's. Reports false to fall back (no plan, shared free
// lists, or an empty free list — heap allocation may GC and needs the
// handles).
func (in *Interp) jitActivate(method object.OOP, nargs int) bool {
	e := &in.jitTab[jitTabIndex(method)]
	if e.method != method {
		return false
	}
	vm := in.vm
	if vm.Cfg.FreeContexts == FreeCtxSharedLocked {
		return false
	}
	list := &in.freeSmall
	slots := SmallCtxSlots
	if e.large {
		list = &in.freeLarge
		slots = LargeCtxSlots
	}
	n := len(*list)
	if n == 0 {
		return false
	}
	nc := (*list)[n-1]
	*list = (*list)[:n-1]
	in.p.Advance(in.costs.FreeListPop)

	h := vm.H
	ntemps := e.ntemps
	// The recycle watermark (recycleContext): slots at or above it are
	// already nil in a frame that died cleanly, so the activation
	// nil-fill shrinks from the whole slot area to the part the dead
	// frame actually dirtied.
	wm := int(h.Fetch(nc, CtxSP).Int())
	if wm > slots {
		wm = slots
	}
	h.StoreNoCheck(nc, CtxPC, object.FromInt(0))
	h.StoreNoCheck(nc, CtxSP, object.FromInt(int64(ntemps)))
	h.Store(in.p, nc, CtxMethod, method)
	receiver := in.stackAt(nargs)
	h.Store(in.p, nc, CtxReceiver, receiver)
	for i := 0; i < nargs; i++ {
		h.Store(in.p, nc, CtxFixed+i, in.stackAt(nargs-1-i))
	}
	for i := nargs; i < wm; i++ {
		h.StoreNoCheck(nc, CtxFixed+i, object.Nil)
	}
	in.popN(nargs + 1)
	in.flushRegisters()
	h.Store(in.p, nc, CtxSender, in.ctx)

	// loadContext, with every derivation replaced by the plan (a fresh
	// method context: pc 0, sp at the temps, slot capacity by size
	// class).
	in.ctx = nc
	in.isBlock = false
	in.home = nc
	in.base = CtxFixed
	in.method = method
	in.receiver = receiver
	in.bytes = e.bytes
	in.lits = e.lits
	in.code = e.code
	in.icm = e.icm
	in.pc = 0
	in.sp = ntemps
	in.slotCap = slots
	if jc := e.jc; jc != nil {
		in.jfns = jc.fns
		in.jcost = jc.cost
	} else {
		in.jfns = nil
		if !e.bad {
			e.count++
			if e.count >= jit.CompileThreshold {
				in.jitCompile(e)
			}
		}
	}
	if vm.prof != nil {
		in.profSync()
	}
	return true
}

// jitDeopt abandons the compiled code the interpreter is currently
// running. Every closure maintains in.pc at bytecode-boundary
// precision, so the fallback needs no frame reconstruction.
func (in *Interp) jitDeopt(reason jit.DeoptReason) {
	if in.jfns == nil {
		return
	}
	in.jfns = nil
	in.stats.JITDeopts++
	if in.rec != nil {
		in.rec.Emit(trace.KJITDeopt, in.p.ID(), int64(in.p.Now()), int64(reason), 0, reason.String())
	}
}

// jitBlacklist pins a resident method to the interpreter. A method
// whose plan was evicted loses the mark, which is harmless: the next
// compile attempt re-discovers the ineligibility (megamorphic sites
// persist in the inline caches; traps re-fire).
func (in *Interp) jitBlacklist(method object.OOP) {
	if in.jitTab == nil {
		return
	}
	in.jitDiscard(method)
	if e := &in.jitTab[jitTabIndex(method)]; e.method == method {
		e.bad = true
		e.jc = nil
		e.count = 0
	}
}

// jitDiscard drops a method's persistent compiled body, preventing
// resurrection after the next scavenge.
func (in *Interp) jitDiscard(method object.OOP) {
	if in.ic != nil {
		if icm, ok := in.ic[method]; ok {
			delete(in.jitKeep, icm)
		}
	}
}

// jitForget demotes one method to the interpreter (decompiler/debugger
// attach): its plan loses the compiled code and the hotness restarts,
// so the tool sees pure interpreter activations while attached. The
// compiled body itself is retained in jitKeep — decompiling does not
// change the method (replacement goes through the install safepoint,
// which drops everything), so when the method runs hot again after the
// tool detaches, jitCompile resurrects the body instead of recompiling.
// Only the owning interpreter is touched — the tier state is
// per-processor, so this stays race-free in parallel mode.
func (in *Interp) jitForget(method object.OOP) {
	if !in.jitOn {
		return
	}
	if e := &in.jitTab[jitTabIndex(method)]; e.method == method {
		e.jc = nil
		e.count = 0
		e.bad = false
	}
	if in.method == method {
		in.jitDeopt(jit.DeoptDecompile)
	}
}

// jitFlush discards this interpreter's plan table, called before every
// scavenge: plans hold raw oops. The compiled bodies in jitKeep hold
// none (operands are indices, sites are host pointers the scavenger
// updates in place) and survive — methods re-enter through jitEnter at
// their next load and resurrect compiled. Cache invalidation is not a
// deopt: no event, no counter.
func (in *Interp) jitFlush() {
	if !in.jitOn {
		return
	}
	in.jfns = nil
	clear(in.jitTab)
}

// jitInvalidate discards the whole tier — plans and compiled bodies —
// at the method-install safepoint (flushAllCaches): the inline-cache
// state the bodies bind to is reset there, so everything recompiles.
func (in *Interp) jitInvalidate() {
	if !in.jitOn {
		return
	}
	in.jfns = nil
	clear(in.jitTab)
	clear(in.jitKeep)
}

// jitDeoptAll deopts and fully invalidates every interpreter's tier
// (snapshot: every context must park in a pure interpreter state).
func (vm *VM) jitDeoptAll(reason jit.DeoptReason) {
	for _, in := range vm.Interps {
		if !in.jitOn {
			continue
		}
		in.jitDeopt(reason)
		clear(in.jitTab)
		clear(in.jitKeep)
	}
}

// jitSite resolves a send site's inline cache once, at compile time,
// replacing the per-send binary search of the interpreter path.
func (in *Interp) jitSite(pc int) *icSite {
	if in.icPolicy == ICOff || in.icm == nil {
		return nil
	}
	if si := in.icm.siteIndex(pc); si >= 0 {
		return &in.icm.sites[si]
	}
	return nil
}

// jitBuild turns a template Program into pre-bound closures. Each
// closure body replicates the matching step() case exactly — same
// helpers, same order, same charges — with the fetch/decode work
// already done. Bodies capture only scavenge-stable state: operand
// integers, send-site pointers, and the interpreter itself; anything
// that moves (literals, selectors, globals) is re-read through the
// registers at run time, which is what lets compiled code outlive
// scavenges.
func (in *Interp) jitBuild(prog *jit.Program) *jitCode {
	vm := in.vm
	h := vm.H
	fns := make([]jitFn, prog.CodeLen)
	for i := range prog.Instrs {
		ins := &prog.Instrs[i]
		next := ins.Next
		var fn jitFn
		switch ins.Op {
		case bytecode.OpPushSelf:
			fn = func() { in.pc = next; in.push(in.receiver) }
		case bytecode.OpPushNil:
			fn = func() { in.pc = next; in.push(object.Nil) }
		case bytecode.OpPushTrue:
			fn = func() { in.pc = next; in.push(object.True) }
		case bytecode.OpPushFalse:
			fn = func() { in.pc = next; in.push(object.False) }
		case bytecode.OpPushTemp:
			// Temps always live in the home context, and home == ctx
			// for method contexts, so no isBlock branch survives.
			idx := CtxFixed + ins.A
			fn = func() { in.pc = next; in.push(h.Fetch(in.home, idx)) }
		case bytecode.OpPushInstVar:
			idx := ins.A
			fn = func() { in.pc = next; in.push(h.Fetch(in.receiver, idx)) }
		case bytecode.OpPushLiteral:
			idx := ins.A
			fn = func() { in.pc = next; in.push(in.literalAt(idx)) }
		case bytecode.OpPushGlobal:
			idx := ins.A
			fn = func() { in.pc = next; in.push(h.Fetch(in.literalAt(idx), AsValue)) }
		case bytecode.OpPushInt8:
			v := object.FromInt(int64(ins.A))
			fn = func() { in.pc = next; in.push(v) }
		case bytecode.OpPushThisContext:
			// Uncommon trap: perform the push exactly as the
			// interpreter would, then bail out and pin the method —
			// a reified context couples it to interpreter state.
			fn = func() {
				in.pc = next
				in.flushRegisters()
				in.push(in.ctx)
				in.jitBlacklist(in.method)
				in.jitDeopt(jit.DeoptUncommon)
			}
		case bytecode.OpDup:
			fn = func() { in.pc = next; in.push(in.stackAt(0)) }
		case bytecode.OpPop:
			fn = func() { in.pc = next; in.pop() }

		case bytecode.OpStoreTemp:
			idx := CtxFixed + ins.A
			fn = func() { in.pc = next; h.Store(in.p, in.home, idx, in.stackAt(0)) }
		case bytecode.OpStoreInstVar:
			idx := ins.A
			fn = func() { in.pc = next; h.Store(in.p, in.receiver, idx, in.stackAt(0)) }
		case bytecode.OpStoreGlobal:
			idx := ins.A
			fn = func() { in.pc = next; h.Store(in.p, in.literalAt(idx), AsValue, in.stackAt(0)) }
		case bytecode.OpPopTemp:
			idx := CtxFixed + ins.A
			fn = func() { in.pc = next; h.Store(in.p, in.home, idx, in.pop()) }
		case bytecode.OpPopInstVar:
			idx := ins.A
			fn = func() { in.pc = next; h.Store(in.p, in.receiver, idx, in.pop()) }
		case bytecode.OpPopGlobal:
			idx := ins.A
			fn = func() { in.pc = next; h.Store(in.p, in.literalAt(idx), AsValue, in.pop()) }

		case bytecode.OpJump:
			target := ins.Target
			fn = func() { in.pc = target }
		case bytecode.OpJumpFalse, bytecode.OpJumpTrue:
			target := ins.Target
			want := object.True
			if ins.Op == bytecode.OpJumpFalse {
				want = object.False
			}
			fn = func() {
				in.pc = next
				v := in.pop()
				if v == want {
					in.pc = target
				} else if v != object.True && v != object.False {
					in.mustBeBoolean(v)
				}
			}
		case bytecode.OpPushBlock:
			endPC := ins.Target
			initOop := object.FromInt(int64(next)) // body starts after the operands
			infoOop := object.FromInt(int64(ins.A) | int64(ins.B)<<8)
			fn = func() {
				in.pc = endPC
				blk := h.Allocate(in.p, vm.Specials.BlockContext,
					BCtxFixed+BlockCtxSlots, object.FmtPointers)
				h.StoreNoCheck(blk, BCtxCaller, object.Nil)
				h.StoreNoCheck(blk, BCtxPC, initOop)
				h.StoreNoCheck(blk, BCtxSP, object.FromInt(0))
				h.Store(in.p, blk, BCtxHome, in.home)
				h.StoreNoCheck(blk, BCtxInfo, infoOop)
				h.StoreNoCheck(blk, BCtxInitialPC, initOop)
				in.push(blk)
			}
		case bytecode.OpReturnTop:
			fn = func() { in.pc = next; in.returnValue(in.pop(), true) }
		case bytecode.OpReturnSelf:
			fn = func() { in.pc = next; in.returnValue(in.receiver, true) }
		case bytecode.OpBlockReturn:
			fn = func() { in.pc = next; in.blockReturn() }

		case bytecode.OpSend, bytecode.OpSendSuper:
			// The selector is re-fetched from the literal frame per
			// send (interpreter parity) rather than captured: symbols
			// move at scavenges, and the body must outlive them.
			idx := ins.A
			nargs := ins.B
			super := ins.Op == bytecode.OpSendSuper
			site := in.jitSite(ins.PC)
			fn = func() { in.pc = next; in.sendWithSite(in.literalAt(idx), nargs, super, site) }

		default:
			// jit.Compile admits only known opcodes, so the rest are
			// the special-selector sends: selector read from the
			// (root-updated) interned table, site pre-resolved, fast
			// path shared with the interpreter.
			op := ins.Op
			selIdx := op - bytecode.FirstSpecialSend
			nargs := bytecode.Special(op).NumArgs
			site := in.jitSite(ins.PC)
			fn = func() {
				in.pc = next
				if in.specialFast(op) {
					return
				}
				in.sendWithSite(vm.specialSelectors[selIdx], nargs, false, site)
			}
		}
		fns[ins.PC] = fn
	}
	// Superinstruction pass: wherever a profitable straight-line group
	// starts, a fused closure replaces the head singleton (and keeps it
	// as its fallback). Interior pcs keep their singletons, so jumps
	// into the middle of a group and fallback resumption stay exact.
	for i := range prog.Instrs {
		if f := jit.Fuse(prog, i); f != nil {
			pc := prog.Instrs[i].PC
			fns[pc] = in.jitFuseFn(f, fns[pc], fns, pc)
		}
	}
	return &jitCode{fns: fns, cost: prog.DispatchCost, n: len(prog.Instrs)}
}
